(* Regenerates every table and figure of the paper's evaluation (§5):

     fig7a   — Figure 7a: Ace runtime vs CRL (both SC), five benchmarks
     fig7b   — Figure 7b: SC vs application-specific protocols in Ace
     table4  — Table 4: compiler optimization levels vs hand-written code
     ablation — the design-choice ablations DESIGN.md calls out
     micro   — Bechamel microbenchmarks of simulator primitives (wall clock)

   Times are simulated seconds on the modelled 32-node CM-5 (deterministic;
   absolute values depend on the cost model, shapes are the reproduction
   target — see EXPERIMENTS.md). Run with no arguments for everything
   except micro.

   Options:
     --small       8 procs instead of 32 (quick smoke run)
     --jobs N      worker domains for the experiment grid (default:
                   ACE_JOBS or the domain count; results are identical
                   for any N)
     --json FILE   also write per-experiment wall-clock and simulated
                   seconds as JSON (micro excluded: it has no simulated
                   time)
     --trace FILE  record a representative traced simulation (EM3D on
                   Ace) as Chrome trace-event JSON, and report the
                   traced-vs-untraced wall-clock overhead (also a
                   trace_overhead row in --json)
     --trace-dir D record one trace per grid cell of the selected
                   experiments into D/FIG-ROW-SIDE.trace.json
     --drop P      per-transmission drop probability in [0,1) (default 0)
     --dup P       per-transmission duplication probability (default 0)
     --jitter C    max extra transit cycles per copy (default 0)
     --fault-seed N  RNG seed for the fault model

   The fault flags attach a deterministic fault model to every simulation
   of the selected experiments (the reliable transport retransmits, so
   results stay correct; simulated times change). With none of them given
   the network is perfect and output is bit-identical to older builds.
   The extra selection [faultsweep] runs every benchmark on the Ace
   runtime across drop rates (or just --drop P if given) and reports the
   transport's counters. *)

module E = Ace_harness.Experiments
module T4 = Ace_harness.Table4
module Pool = Ace_harness.Pool
module Faults = Ace_net.Faults
module Driver = Ace_harness.Driver
module Machine = Ace_engine.Machine

let scale = ref { E.nprocs = 32; factor = 1 }
let scaling_max = ref 1024
let jobs : int option ref = ref None
let json_path : string option ref = ref None
let trace_path : string option ref = ref None
let trace_dir : string option ref = ref None
let critpath_file : string option ref = ref None
let drop = ref 0.
let dup = ref 0.
let jitter = ref 0.
let fault_seed = ref Faults.default_seed
let fault_given = ref false
let batch = ref false

(* Simulation engine for the selected experiments (default sequential;
   ACE_ENGINE or --engine overrides). [None] keeps every driver call on
   its historical default path. *)
let engine : Machine.engine option ref =
  ref
    (match Sys.getenv_opt "ACE_ENGINE" with
    | None -> None
    | Some s -> (
        match Driver.engine_of_string s with
        | Ok e -> Some e
        | Error m ->
            Printf.eprintf "ACE_ENGINE: %s\n" m;
            exit 2))

let engine_shards () =
  match !engine with Some (Machine.Par_engine n) -> n | _ -> 1

let engine_name () =
  match !engine with None -> "seq" | Some e -> Driver.engine_to_string e

(* Opt-in bulk-transfer batching for the selected experiments; None keeps
   the default grid bit-identical to older builds. *)
let batch_opt () = if !batch then Some true else None

(* The spec for the selected experiments; None when no fault flag was
   given, so the default run stays bit-identical. Validation happens here,
   once, so a bad probability fails before any simulation starts. *)
let fault_spec () =
  if not !fault_given then None
  else
    Some
      (Faults.spec ~drop:!drop ~dup:!dup ~jitter:!jitter ~seed:!fault_seed ())

let line () = print_endline (String.make 72 '=')

(* ---- JSON report accumulator (hand-rolled; no JSON dep in the image) ---- *)

let json_rows : string list ref = ref []

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips doubles exactly, so the JSON carries the same
   simulated values the determinism tests compare. [messages] adds a
   "net_messages" object of physical message counts (v2 schema). *)
let record ~experiment ~name ~wall ?(messages = []) sims =
  let sim_fields =
    List.map
      (fun (k, v) -> Printf.sprintf "\"%s\": %.17g" (json_escape k) v)
      sims
  in
  let msg_field =
    match messages with
    | [] -> ""
    | ms ->
        Printf.sprintf ", \"net_messages\": {%s}"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\": %.0f" (json_escape k) v)
                ms))
  in
  json_rows :=
    Printf.sprintf
      "    {\"experiment\": \"%s\", \"name\": \"%s\", \"wall_s\": %.6f, \"sim_s\": {%s}%s}"
      (json_escape experiment) (json_escape name) wall
      (String.concat ", " sim_fields)
      msg_field
    :: !json_rows

(* The commit the binary was benchmarked from, for baseline comparisons
   (scripts/bench_guard.py); "unknown" outside a git checkout. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, c when c <> "" -> c
    | _ -> "unknown"
  with _ -> "unknown"

let write_json path ~total_wall =
  let oc = open_out path in
  let fault_cfg =
    match fault_spec () with
    | None -> "null"
    | Some s ->
        Printf.sprintf
          "{\"drop\": %.17g, \"dup\": %.17g, \"jitter\": %.17g, \"seed\": %d}"
          s.Faults.drop s.Faults.dup s.Faults.jitter s.Faults.seed
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"ace-bench-v3\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"nprocs\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"engine\": \"%s\",\n\
    \  \"shards\": %d,\n\
    \  \"batch\": %b,\n\
    \  \"faults\": %s,\n\
    \  \"total_wall_s\": %.6f,\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    (json_escape (git_commit ()))
    !scale.E.nprocs
    (match !jobs with Some j -> j | None -> Pool.default_jobs ())
    (json_escape (engine_name ()))
    (engine_shards ())
    !batch fault_cfg total_wall
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---- figures and tables ---- *)

let fig7a () =
  line ();
  Printf.printf "Figure 7a: Ace runtime system versus CRL (SC protocol, %d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows =
    E.fig7a ~scale:!scale ?jobs:!jobs ?trace_dir:!trace_dir
      ?faults:(fault_spec ()) ?batch:(batch_opt ()) ?engine:!engine ()
  in
  E.print_rows ~left:"CRL" ~right:"Ace" rows;
  List.iter
    (fun r ->
      record ~experiment:"fig7a" ~name:r.E.name ~wall:r.E.wall
        ~messages:[ ("baseline", r.E.base_msgs); ("ace", r.E.ace_msgs) ]
        [ ("baseline", r.E.baseline); ("ace", r.E.ace) ])
    rows;
  print_newline ()

let fig7b () =
  line ();
  Printf.printf
    "Figure 7b: single (SC) protocol vs application-specific protocols (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows =
    E.fig7b ~scale:!scale ?jobs:!jobs ?trace_dir:!trace_dir
      ?faults:(fault_spec ()) ?batch:(batch_opt ()) ?engine:!engine ()
  in
  E.print_rows ~left:"SC" ~right:"custom" rows;
  List.iter
    (fun r ->
      record ~experiment:"fig7b" ~name:r.E.name ~wall:r.E.wall
        ~messages:[ ("baseline", r.E.base_msgs); ("ace", r.E.ace_msgs) ]
        [ ("baseline", r.E.baseline); ("ace", r.E.ace) ])
    rows;
  let avg =
    List.fold_left (fun a r -> a +. E.speedup r) 0. rows
    /. float_of_int (List.length rows)
  in
  Printf.printf "average speedup: %.2fx (paper: range 1.02-5, average ~2)\n\n" avg

let table4 () =
  line ();
  Printf.printf
    "Table 4: effects of compiler optimizations (simulated seconds, %d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows = T4.table4 ~nprocs:!scale.E.nprocs ?jobs:!jobs ?trace_dir:!trace_dir () in
  T4.print_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"table4" ~name:r.T4.name ~wall:r.T4.wall
        [
          ("base", r.T4.base);
          ("li", r.T4.li);
          ("li_mc", r.T4.li_mc);
          ("li_mc_dc", r.T4.li_mc_dc);
          ("hand", r.T4.hand);
        ])
    rows;
  print_newline ()

(* ---- weak scaling (scaling selection) ---- *)

let scaling_exp () =
  line ();
  Printf.printf
    "Weak scaling to %d nodes: invalidation vs update, directory memory\n"
    !scaling_max;
  line ();
  let nprocs_list =
    List.filter (fun n -> n <= !scaling_max) E.default_scaling_nprocs
  in
  let rows = E.scaling ?jobs:!jobs ~nprocs_list ?engine:!engine () in
  E.print_scaling_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"scaling"
        ~name:(Printf.sprintf "%s-%s@%d" r.E.sc_bench r.E.sc_proto r.E.sc_nprocs)
        ~wall:r.E.sc_wall
        ~messages:[ ("total", r.E.sc_messages) ]
        [
          ("seconds", r.E.sc_seconds);
          ("dir_words", r.E.sc_dir_words);
          ("regions", r.E.sc_regions);
          ("words_per_region", E.scaling_words_per_region r);
          ("nprocs", float_of_int r.E.sc_nprocs);
        ])
    rows;
  print_newline ()

(* ---- fault sweep (faultsweep selection) ---- *)

let faultsweep () =
  line ();
  Printf.printf
    "Fault sweep: Ace benchmarks on a lossy network (%d procs, seed %d)\n"
    !scale.E.nprocs !fault_seed;
  line ();
  let base = Faults.spec ~dup:!dup ~jitter:!jitter ~seed:!fault_seed () in
  let drops = if !drop > 0. then Some [ 0.0; !drop ] else None in
  let rows = E.fault_sweep ~scale:!scale ?jobs:!jobs ?drops ~base () in
  E.print_fault_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"faultsweep"
        ~name:(Printf.sprintf "%s@%g" r.E.fr_bench r.E.fr_drop)
        ~wall:r.E.fr_wall
        ~messages:
          [
            ("total", r.E.fr_messages);
            ("acks", r.E.fr_acks);
            ("acks_piggybacked", r.E.fr_acks_piggybacked);
            ("acks_cumulative", r.E.fr_acks_cumulative);
          ]
        [
          ("seconds", r.E.fr_seconds);
          ("retransmits", r.E.fr_retransmits);
          ("timeouts", r.E.fr_timeouts);
          ("dup_suppressed", r.E.fr_dup_suppressed);
          ("dropped", r.E.fr_dropped);
          ("giveups", r.E.fr_giveups);
        ])
    rows;
  print_newline ()

(* ---- adaptive serving (serving selection) ----

   The kvserve workload under each fixed candidate protocol and under
   online per-space adaptation; the adaptive row should match or beat the
   best fixed row on physical messages (guarded in CI). With --trace-dir
   the adaptive cell's trace records the protocol-switch instants for
   acetrace. *)

let serving_exp () =
  line ();
  Printf.printf
    "Adaptive serving: fixed protocols vs online adaptation (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows =
    E.serving ~scale:!scale ?jobs:!jobs ?batch:(batch_opt ())
      ?trace_dir:!trace_dir ()
  in
  E.print_serving_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"serving" ~name:r.E.sv_mode ~wall:r.E.sv_wall
        ~messages:[ ("total", r.E.sv_messages) ]
        ([
           ("seconds", r.E.sv_seconds);
           ("result", r.E.sv_result);
           ("ok", if r.E.sv_ok then 1. else 0.);
           ("switches", r.E.sv_switches);
         ]
        @ List.map
            (fun (name, n) -> ("residency_" ^ name, n))
            r.E.sv_residency))
    rows;
  List.iter
    (fun r ->
      if not r.E.sv_ok then begin
        Printf.eprintf
          "ERROR: serving mode %s computed %.17g, not the reference total\n"
          r.E.sv_mode r.E.sv_result;
        exit 1
      end)
    rows;
  print_newline ()

(* ---- bulk-transfer batching (batching selection) ---- *)

let batching_exp () =
  line ();
  Printf.printf
    "Bulk-transfer batching: physical messages, batching off vs on (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows = E.batching ~scale:!scale ?jobs:!jobs () in
  E.print_batch_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"batching" ~name:r.E.br_bench ~wall:r.E.br_wall
        ~messages:[ ("off", r.E.br_off_msgs); ("on", r.E.br_on_msgs) ]
        [
          ("off", r.E.br_off);
          ("on", r.E.br_on);
          ("coalesced", r.E.br_coalesced);
          ("combined", r.E.br_combined);
          ("reduction", E.batch_reduction r);
        ])
    rows;
  List.iter
    (fun r ->
      if not r.E.br_results_agree then begin
        Printf.eprintf "ERROR: batching changed %s's computed result\n"
          r.E.br_bench;
        exit 1
      end)
    rows;
  print_newline ()

(* ---- ablations (DESIGN.md section 5) ----

   Each ablation compares two independent simulations, so all six cells go
   through the same domain pool as the figures; printing order is fixed. *)

let ablation () =
  line ();
  print_endline "Ablations (DESIGN.md section 5)";
  line ();
  let nprocs = !scale.E.nprocs in
  (* mapping: the "more efficient mapping technique" — rerun EM3D with
     Ace's map and miss costs degraded to CRL's *)
  let run_mapping cost =
    let rt = Ace_runtime.Runtime.create ~cost ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg = { Ace_apps.Em3d.default with Ace_apps.Em3d.steps = 5 } in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx));
    Ace_runtime.Runtime.time_seconds rt
  in
  let crl_costs =
    {
      Ace_net.Cost_model.cm5_ace with
      Ace_net.Cost_model.map_hit =
        Ace_net.Cost_model.cm5_crl.Ace_net.Cost_model.map_hit;
      miss_overhead =
        Ace_net.Cost_model.cm5_crl.Ace_net.Cost_model.miss_overhead;
    }
  in
  (* granularity: user-specified granularity (§2.3): each processor
     repeatedly writes one logical datum. With one datum per region the
     writes are processor-local; with eight data packed into one fixed
     "cache line" region, eight writers false-share the coherence unit and
     it ping-pongs exclusively between them. *)
  let run_granularity ~packed =
    let rt = Ace_runtime.Runtime.create ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    ignore (Ace_runtime.Runtime.new_space rt "SC");
    Ace_runtime.Runtime.run rt (fun ctx ->
        let open Ace_runtime.Ops in
        let my = me ctx in
        let h, slot =
          if packed then begin
            (* processor p writes slot (p mod 8) of region (p / 8), all
               regions homed at node 0 *)
            if my = 0 then
              for _ = 1 to (nprocs ctx + 7) / 8 do
                ignore (alloc ctx ~space:0 ~len:8)
              done;
            barrier ctx ~space:0;
            (map ctx (global_id ctx ~space:0 ~owner:0 ~seq:(my / 8)), my mod 8)
          end
          else begin
            let h = alloc ctx ~space:0 ~len:1 in
            barrier ctx ~space:0;
            (h, 0)
          end
        in
        for _ = 1 to 40 do
          start_write ctx h;
          (data ctx h).(slot) <- (data ctx h).(slot) +. 1.;
          end_write ctx h
        done;
        barrier ctx ~space:0);
    Ace_runtime.Runtime.time_seconds rt
  in
  (* learning window: static update amortization — the learning iterations
     dominate short runs and vanish in long ones *)
  let run_learning steps =
    let rt = Ace_runtime.Runtime.create ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg =
      {
        Ace_apps.Em3d.default with
        Ace_apps.Em3d.steps;
        protocol = Some "STATIC_UPDATE";
      }
    in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx));
    Ace_runtime.Runtime.time_seconds rt
  in
  let cells =
    [|
      Pool.timed (fun () -> run_mapping Ace_net.Cost_model.cm5_ace);
      Pool.timed (fun () -> run_mapping crl_costs);
      Pool.timed (fun () -> run_granularity ~packed:false);
      Pool.timed (fun () -> run_granularity ~packed:true);
      Pool.timed (fun () -> run_learning 3);
      Pool.timed (fun () -> run_learning 12);
    |]
  in
  let out = Pool.run_all ?jobs:!jobs cells in
  let v i = fst out.(i) and w i = snd out.(i) in
  Printf.printf
    "mapping + lean protocol (EM3D): ace=%.6fs, ace-with-CRL-costs=%.6fs (%.2fx)\n"
    (v 0) (v 1) (v 1 /. v 0);
  record ~experiment:"ablation" ~name:"mapping" ~wall:(w 0 +. w 1)
    [ ("ace", v 0); ("ace_with_crl_costs", v 1) ];
  Printf.printf
    "granularity (40 writes/proc): per-datum regions=%.6fs, 8 writers per packed region=%.6fs (%.1fx false-sharing penalty)\n"
    (v 2) (v 3) (v 3 /. v 2);
  record ~experiment:"ablation" ~name:"granularity" ~wall:(w 2 +. w 3)
    [ ("per_datum", v 2); ("packed", v 3) ];
  Printf.printf
    "static-update amortization (EM3D): %.6fs/step at 3 steps vs %.6fs/step at 12\n"
    (v 4 /. 3.) (v 5 /. 12.);
  record ~experiment:"ablation" ~name:"learning_window" ~wall:(w 4 +. w 5)
    [ ("per_step_3", v 4 /. 3.); ("per_step_12", v 5 /. 12.) ];
  print_newline ()

(* ---- tracing overhead (--trace FILE) ----

   Run a representative simulation (EM3D on the Ace runtime) untraced and
   traced, write the trace, and report the wall-clock cost of tracing. The
   simulated seconds must be bit-identical either way — tracing never
   advances a virtual clock — so the row doubles as a determinism check. *)

let trace_overhead out =
  line ();
  Printf.printf "Tracing overhead (EM3D on Ace, %d procs)\n" !scale.E.nprocs;
  line ();
  let nprocs = !scale.E.nprocs in
  let cfg = E.em3d_cfg !scale 3 in
  let module D = Ace_harness.Driver in
  let run trace =
    let t0 = Unix.gettimeofday () in
    let o = D.run_ace ?trace ~nprocs (module Ace_apps.Em3d) cfg in
    (o, Unix.gettimeofday () -. t0)
  in
  let off, wall_off = run None in
  let on_, wall_on = run (Some out) in
  let identical = off.D.seconds = on_.D.seconds in
  Printf.printf
    "untraced: %.3fs wall, traced: %.3fs wall (%+.1f%%); simulated seconds \
     identical: %b\n"
    wall_off wall_on
    (100. *. ((wall_on /. wall_off) -. 1.))
    identical;
  Printf.printf "wrote %s\n\n" out;
  record ~experiment:"trace_overhead" ~name:"em3d-off" ~wall:wall_off
    [ ("seconds", off.D.seconds) ];
  record ~experiment:"trace_overhead" ~name:"em3d-on" ~wall:wall_on
    [ ("seconds", on_.D.seconds) ];
  if not identical then begin
    Printf.eprintf "ERROR: tracing changed simulated time (%.17g vs %.17g)\n"
      off.D.seconds on_.D.seconds;
    exit 1
  end

(* ---- conformance-oracle overhead (check_overhead selection) ----

   Run EM3D on the Ace runtime with and without the coherence oracle
   observing every access section. Recording charges no simulated cycles,
   so simulated seconds and the computed result must be bit-identical; the
   row reports the wall-clock cost of recording (the budget is <5%). *)

let check_overhead () =
  line ();
  Printf.printf "Conformance-oracle overhead (EM3D on Ace, %d procs)\n"
    !scale.E.nprocs;
  line ();
  let nprocs = !scale.E.nprocs in
  let cfg = E.em3d_cfg !scale 3 in
  let module D = Ace_harness.Driver in
  let run wrap =
    let t0 = Unix.gettimeofday () in
    let o = D.run_ace ?wrap ~nprocs (module Ace_apps.Em3d) cfg in
    (o, Unix.gettimeofday () -. t0)
  in
  let off, wall_off = run None in
  let oracle = Ace_check.Oracle.create ~nprocs () in
  let on_, wall_on = run (Some (Ace_check.Observe.wrap oracle)) in
  let identical = off.D.seconds = on_.D.seconds && off.D.result = on_.D.result in
  let overhead = 100. *. ((wall_on /. wall_off) -. 1.) in
  Printf.printf
    "oracle off: %.3fs wall, on: %.3fs wall (%+.1f%%); %d observations; \
     simulated output identical: %b\n\n"
    wall_off wall_on overhead
    (Ace_check.Oracle.observations oracle)
    identical;
  record ~experiment:"check_overhead" ~name:"em3d-off" ~wall:wall_off
    [ ("seconds", off.D.seconds) ];
  record ~experiment:"check_overhead" ~name:"em3d-on" ~wall:wall_on
    [
      ("seconds", on_.D.seconds);
      ("observations", float_of_int (Ace_check.Oracle.observations oracle));
      ("overhead_pct", overhead);
    ];
  if not identical then begin
    Printf.eprintf
      "ERROR: oracle recording changed simulated output (%.17g vs %.17g)\n"
      off.D.seconds on_.D.seconds;
    exit 1
  end;
  if Ace_check.Oracle.observations oracle = 0 then begin
    Printf.eprintf "ERROR: oracle recorded no observations\n";
    exit 1
  end

(* ---- critical-path profiles (critpath selection) ----

   Every benchmark under invalidation and under its application-specific
   protocol, each run with the causal-DAG recorder attached; rows report
   the profile shape (dominant op class, what-if speedups). With
   --trace-dir D each cell's DAG is also written to
   D/critpath-BENCH-PROTO.json for acetrace. *)

let critpath_exp () =
  line ();
  Printf.printf
    "Critical-path profiles: invalidation vs custom protocols (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows = E.critpath ~scale:!scale ?jobs:!jobs ?dir:!trace_dir () in
  E.print_critpath_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"critpath"
        ~name:(Printf.sprintf "%s-%s" r.E.cp_bench r.E.cp_proto)
        ~wall:r.E.cp_wall
        ([
           ("seconds", r.E.cp_seconds);
           ("cycles", r.E.cp_cycles);
           ("dag_nodes", float_of_int r.E.cp_nodes);
           ("path_steps", float_of_int r.E.cp_path);
           ("whatif_net_half", r.E.cp_whatif_net);
           ("whatif_send_half", r.E.cp_whatif_send);
         ]
        @ List.map (fun (k, c) -> ("blame_" ^ k, c)) r.E.cp_blame))
    rows;
  print_newline ()

(* ---- critical-path recording overhead (critpath_overhead selection,
        part of the default grid) ----

   Run EM3D on the Ace runtime with and without a causal-DAG recorder
   attached. Recording charges no simulated cycles, so the simulated
   seconds must be bit-identical; the rows report the wall-clock cost of
   recording (the budget is <5%, guarded in CI). The recorded DAG is then
   validated in place: the critical path's blame must total the run's
   simulated time, and the what-if prediction for halving the AM send
   overhead is checked against an actual re-run under the halved cost
   model (within 10%). With --critpath FILE the DAG is also written out
   for acetrace critpath. *)

let critpath_overhead () =
  line ();
  Printf.printf "Critical-path recording overhead (EM3D on Ace, %d procs)\n"
    !scale.E.nprocs;
  line ();
  let nprocs = !scale.E.nprocs in
  let cfg = E.em3d_cfg !scale 3 in
  let module D = Ace_harness.Driver in
  let module Crit = Ace_engine.Crit in
  let module Critpath = Ace_obs.Critpath in
  let module Cm = Ace_net.Cost_model in
  let run ?crit ?cost () =
    let t0 = Unix.gettimeofday () in
    let o = D.run_ace ?crit ?cost ~nprocs (module Ace_apps.Em3d) cfg in
    (o, Unix.gettimeofday () -. t0)
  in
  (* Wall-clock noise on a sub-second run swamps a 5% budget, so each
     variant runs [reps] times and keeps its fastest wall (the simulated
     output is deterministic, so the runs are interchangeable). *)
  let reps = 3 in
  let best f =
    let out = ref None and w = ref infinity in
    for _ = 1 to reps do
      let o, wall = f () in
      if wall < !w then w := wall;
      out := Some o
    done;
    (Option.get !out, !w)
  in
  let off, wall_off = best (fun () -> run ()) in
  let (cr, on_), wall_on =
    best (fun () ->
        let c = Crit.create ~nprocs () in
        let o, w = run ~crit:c () in
        ((c, o), w))
  in
  let identical = off.D.seconds = on_.D.seconds in
  (match !critpath_file with
  | None -> ()
  | Some path ->
      Crit.write_file cr path;
      Printf.printf "wrote %s\n" path);
  let dag = Critpath.of_crit cr in
  let bp = Critpath.blamed_path dag in
  let blame_s = Critpath.total_blame bp /. Cm.cm5_ace.Cm.cycles_per_sec in
  let blame_err =
    if on_.D.seconds > 0. then
      abs_float (blame_s -. on_.D.seconds) /. on_.D.seconds
    else abs_float blame_s
  in
  let half =
    { Cm.cm5_ace with Cm.am_send_overhead = Cm.cm5_ace.Cm.am_send_overhead /. 2. }
  in
  let actual_half, wall_half = best (fun () -> run ~cost:half ()) in
  let _, pred_end, _ = Critpath.predict dag [ E.whatif_send_half ] in
  let pred_s = pred_end /. Cm.cm5_ace.Cm.cycles_per_sec in
  let whatif_err =
    if actual_half.D.seconds > 0. then
      abs_float (pred_s -. actual_half.D.seconds) /. actual_half.D.seconds
    else abs_float pred_s
  in
  Printf.printf
    "recorder off: %.3fs wall, on: %.3fs wall (%+.1f%%); %d dag nodes; \
     simulated seconds identical: %b\n"
    wall_off wall_on
    (100. *. ((wall_on /. wall_off) -. 1.))
    (Critpath.n_nodes dag) identical;
  Printf.printf
    "path blame %.6fs vs simulated %.6fs; halving am_send_overhead: \
     predicted %.6fs vs actual %.6fs (error %.2f%%)\n\n"
    blame_s on_.D.seconds pred_s actual_half.D.seconds (100. *. whatif_err);
  record ~experiment:"critpath_overhead" ~name:"em3d-off" ~wall:wall_off
    [ ("seconds", off.D.seconds) ];
  record ~experiment:"critpath_overhead" ~name:"em3d-on" ~wall:wall_on
    [
      ("seconds", on_.D.seconds);
      ("dag_nodes", float_of_int (Critpath.n_nodes dag));
      ("blame_total_s", blame_s);
      ("predicted_half_send_s", pred_s);
    ];
  record ~experiment:"critpath_overhead" ~name:"em3d-half-send" ~wall:wall_half
    [ ("seconds", actual_half.D.seconds) ];
  if not identical then begin
    Printf.eprintf
      "ERROR: critpath recording changed simulated time (%.17g vs %.17g)\n"
      off.D.seconds on_.D.seconds;
    exit 1
  end;
  if blame_err > 1e-6 then begin
    Printf.eprintf
      "ERROR: critical-path blame %.17g s does not total simulated time %.17g s\n"
      blame_s on_.D.seconds;
    exit 1
  end;
  if whatif_err > 0.10 then begin
    Printf.eprintf
      "ERROR: what-if prediction off by %.1f%% (predicted %.17g, actual %.17g)\n"
      (100. *. whatif_err) pred_s actual_half.D.seconds;
    exit 1
  end

(* ---- combinator identity (combinator selection) ----

   Each row runs one benchmark under a hand-written protocol and under its
   combinator-built re-expression; simulated seconds, checksums and
   physical message counts must be bit-identical (hard error otherwise).
   The dispatch rows then time EM3D wall-clock under hand SC vs DSL_SC
   (best of 3, like the critpath-overhead guard): the simulated output is
   identical, so any wall gap is compiled-dispatch cost — guarded within
   noise by bench_guard.py --combinator-only. *)

let combinator_exp () =
  line ();
  Printf.printf
    "Combinator-built protocols vs hand-written originals (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows =
    E.combinator ~scale:!scale ?jobs:!jobs ?faults:(fault_spec ())
      ?batch:(batch_opt ()) ?engine:!engine ()
  in
  E.print_rows ~left:"hand" ~right:"DSL" rows;
  let bad = ref [] in
  List.iter
    (fun r ->
      let identical =
        r.E.baseline = r.E.ace
        && r.E.base_result = r.E.ace_result
        && r.E.base_msgs = r.E.ace_msgs
      in
      if not identical then bad := r.E.name :: !bad;
      record ~experiment:"combinator" ~name:r.E.name ~wall:r.E.wall
        ~messages:[ ("hand", r.E.base_msgs); ("dsl", r.E.ace_msgs) ]
        [
          ("hand", r.E.baseline);
          ("dsl", r.E.ace);
          ("identical", (if identical then 1. else 0.));
        ])
    rows;
  let nprocs = !scale.E.nprocs in
  let module D = Ace_harness.Driver in
  let cfg p =
    { (E.em3d_cfg !scale 3) with Ace_apps.Em3d.protocol = Some p }
  in
  let best p =
    let reps = 3 in
    let out = ref None and w = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let o = D.run_ace ~nprocs (module Ace_apps.Em3d) (cfg p) in
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !w then w := wall;
      out := Some o
    done;
    (Option.get !out, !w)
  in
  let hand, wall_hand = best "SC" in
  let dsl, wall_dsl = best "DSL_SC" in
  Printf.printf
    "dispatch overhead (EM3D): hand SC %.3fs wall, DSL_SC %.3fs wall \
     (%+.1f%%); simulated seconds identical: %b\n\n"
    wall_hand wall_dsl
    (100. *. ((wall_dsl /. wall_hand) -. 1.))
    (hand.D.seconds = dsl.D.seconds);
  record ~experiment:"combinator" ~name:"dispatch-em3d-hand" ~wall:wall_hand
    [ ("seconds", hand.D.seconds) ];
  record ~experiment:"combinator" ~name:"dispatch-em3d-dsl" ~wall:wall_dsl
    [ ("seconds", dsl.D.seconds) ];
  if hand.D.seconds <> dsl.D.seconds then begin
    Printf.eprintf
      "ERROR: DSL_SC changed EM3D simulated time (%.17g vs %.17g)\n"
      hand.D.seconds dsl.D.seconds;
    exit 1
  end;
  match !bad with
  | [] -> ()
  | names ->
      Printf.eprintf
        "ERROR: combinator-built protocol diverged from hand-written on: %s\n"
        (String.concat ", " (List.rev names));
      exit 1

(* ---- parallel engine speedup (engine_speedup selection) ----

   Sequential vs sharded engine wall-clock on weak-scaled EM3D and
   Barnes-Hut. Cells run serially (never through the pool): each parallel
   cell wants the host cores for its own shard domains, and the wall-clock
   ratio is the measurement. Any output mismatch between the engines is a
   hard error. *)

let engine_speedup_exp () =
  line ();
  let shards =
    match !engine with Some (Machine.Par_engine n) -> n | _ -> 4
  in
  Printf.printf
    "Parallel engine speedup: seq vs par:%d wall clock (weak-scaled)\n" shards;
  line ();
  let nprocs_list =
    List.filter (fun n -> n <= !scaling_max) E.default_engine_nprocs
  in
  let rows = E.engine_speedup ~shards ~nprocs_list () in
  E.print_engine_rows rows;
  List.iter
    (fun r ->
      record ~experiment:"engine_speedup"
        ~name:(Printf.sprintf "%s@%d" r.E.en_bench r.E.en_nprocs)
        ~wall:(r.E.en_seq_wall +. r.E.en_par_wall)
        ~messages:[ ("total", r.E.en_messages) ]
        [
          ("seconds", r.E.en_seconds);
          ("seq_wall", r.E.en_seq_wall);
          ("par_wall", r.E.en_par_wall);
          ("speedup", E.engine_wall_speedup r);
          ("shards", float_of_int r.E.en_shards);
          ("identical", if r.E.en_identical then 1. else 0.);
          ("nprocs", float_of_int r.E.en_nprocs);
        ])
    rows;
  List.iter
    (fun r ->
      if not r.E.en_identical then begin
        Printf.eprintf
          "ERROR: parallel engine diverged from sequential on %s@%d\n"
          r.E.en_bench r.E.en_nprocs;
        exit 1
      end)
    rows;
  print_newline ()

(* ---- bechamel microbenchmarks (wall-clock cost of the simulator) ---- *)

let micro () =
  let open Bechamel in
  let barrier_bench () =
    let m = Ace_engine.Machine.create ~nprocs:8 () in
    let b = Ace_engine.Machine.Barrier.create m ~cost:(fun _ -> 10.) in
    Ace_engine.Machine.run m (fun p ->
        for _ = 1 to 10 do
          Ace_engine.Machine.Barrier.wait b p
        done)
  in
  let coherence_bench () =
    let rt = Ace_runtime.Runtime.create ~nprocs:4 () in
    ignore (Ace_runtime.Runtime.new_space rt "SC");
    Ace_runtime.Runtime.run rt (fun ctx ->
        let open Ace_runtime.Ops in
        if me ctx = 0 then ignore (alloc ctx ~space:0 ~len:8);
        barrier ctx ~space:0;
        let h = map ctx (global_id ctx ~space:0 ~owner:0 ~seq:0) in
        for _ = 1 to 20 do
          start_write ctx h;
          (data ctx h).(0) <- 1.;
          end_write ctx h;
          barrier ctx ~space:0
        done)
  in
  let em3d_bench () =
    let rt = Ace_runtime.Runtime.create ~nprocs:4 () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg =
      { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }
    in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx))
  in
  let tests =
    Test.make_grouped ~name:"ace"
      [
        Test.make ~name:"barrier-8p-x10" (Staged.stage barrier_bench);
        Test.make ~name:"sc-writes-4p-x20" (Staged.stage coherence_bench);
        Test.make ~name:"em3d-4p-2steps" (Staged.stage em3d_bench);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  line ();
  print_endline "Bechamel microbenchmarks (host wall-clock per simulated run)";
  line ();
  (* Hashtbl.iter order varies run to run; sort by name for stable output *)
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n" name est
         | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name);
  print_newline ()

let usage () =
  Printf.eprintf
    "usage: main [fig7a] [fig7b] [table4] [ablation] [batching] [micro] \
     [trace_overhead] [faultsweep] [check_overhead] [scaling] [critpath] \
     [critpath_overhead] [serving] [engine_speedup] [combinator] [--small] \
     [--nprocs N] [--scaling-max N] [--jobs N] [--engine seq|par:N] \
     [--json FILE] \
     [--trace FILE] [--trace-dir DIR] [--critpath FILE] [--batch] \
     [--drop P] [--dup P] [--jitter C] [--fault-seed N]\n";
  exit 2

let () =
  (* A larger minor heap suits the simulator's allocation profile (closure
     chains and event records): fewer minor collections, identical
     simulated output. Roughly 20%% off the grid's wall clock. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> []
    | "--small" :: rest ->
        scale := { E.nprocs = 8; factor = 1 };
        parse rest
    | "--nprocs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some p when p >= 2 ->
            scale := { !scale with E.nprocs = p };
            parse rest
        | Some _ | None ->
            Printf.eprintf "--nprocs expects an integer >= 2, got %s\n" n;
            exit 2)
    | "--scaling-max" :: n :: rest -> (
        match int_of_string_opt n with
        | Some p when p >= 2 ->
            scaling_max := p;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--scaling-max expects an integer >= 2, got %s\n" n;
            exit 2)
    | "--engine" :: v :: rest -> (
        match Driver.engine_of_string v with
        | Ok e ->
            engine := Some e;
            parse rest
        | Error m ->
            Printf.eprintf "--engine: %s\n" m;
            exit 2)
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j > 0 ->
            jobs := Some j;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 2)
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        parse rest
    | "--trace-dir" :: dir :: rest ->
        trace_dir := Some dir;
        parse rest
    | "--critpath" :: path :: rest ->
        critpath_file := Some path;
        parse rest
    | "--batch" :: rest ->
        batch := true;
        parse rest
    | (("--drop" | "--dup" | "--jitter") as flag) :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0. ->
            (match flag with
            | "--drop" -> drop := f
            | "--dup" -> dup := f
            | _ -> jitter := f);
            fault_given := true;
            parse rest
        | Some _ | None ->
            Printf.eprintf "%s expects a non-negative number, got %s\n" flag v;
            exit 2)
    | "--fault-seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some s ->
            fault_seed := s;
            fault_given := true;
            parse rest
        | None ->
            Printf.eprintf "--fault-seed expects an integer, got %s\n" v;
            exit 2)
    | [ (("--jobs" | "--json" | "--trace" | "--trace-dir" | "--critpath"
        | "--drop" | "--dup" | "--jitter" | "--fault-seed" | "--nprocs"
        | "--scaling-max" | "--engine") as flag) ]
      ->
        Printf.eprintf "missing argument to %s\n" flag;
        usage ()
    | (("fig7a" | "fig7b" | "table4" | "ablation" | "batching" | "micro"
       | "trace_overhead" | "faultsweep" | "check_overhead" | "scaling"
       | "critpath" | "critpath_overhead" | "serving" | "engine_speedup"
       | "combinator")
       as s)
      :: rest ->
        s :: parse rest
    | other :: _ ->
        Printf.eprintf "unknown argument %s\n" other;
        usage ()
  in
  let selections = parse args in
  (* One core budget for both levels of parallelism: with a sharded engine
     and no explicit --jobs, shrink the pool so jobs x shards stays within
     the recommended domain count. *)
  (match (!jobs, !engine) with
  | None, Some (Machine.Par_engine n) ->
      jobs := Some (max 1 (Pool.default_jobs () / n))
  | _ -> ());
  (* fail fast on out-of-range fault probabilities rather than mid-grid *)
  (try ignore (fault_spec ())
   with Invalid_argument m ->
     Printf.eprintf "%s\n" m;
     exit 2);
  (* fail fast on an unwritable report path rather than after the run *)
  (match !json_path with
  | Some p -> (
      try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 p)
      with Sys_error m ->
        Printf.eprintf "cannot write --json file: %s\n" m;
        exit 2)
  | None -> ());
  (match !trace_dir with
  | Some dir when not (Sys.file_exists dir) -> (
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot create --trace-dir: %s\n" (Unix.error_message e);
        exit 2)
  | _ -> ());
  let wants s = selections = [] || List.mem s selections in
  let t0 = Unix.gettimeofday () in
  if wants "fig7a" then fig7a ();
  if wants "fig7b" then fig7b ();
  if wants "table4" then table4 ();
  if wants "ablation" then ablation ();
  if wants "batching" then batching_exp ();
  if wants "critpath_overhead" then critpath_overhead ();
  (match !trace_path with
  | Some out -> trace_overhead out
  | None ->
      if List.mem "trace_overhead" selections then begin
        Printf.eprintf "trace_overhead requires --trace FILE\n";
        exit 2
      end);
  if List.mem "critpath" selections then critpath_exp ();
  if List.mem "faultsweep" selections then faultsweep ();
  if List.mem "check_overhead" selections then check_overhead ();
  if List.mem "scaling" selections then scaling_exp ();
  if List.mem "engine_speedup" selections then engine_speedup_exp ();
  if List.mem "combinator" selections then combinator_exp ();
  if List.mem "serving" selections then serving_exp ();
  if List.mem "micro" selections then micro ();
  match !json_path with
  | Some path -> write_json path ~total_wall:(Unix.gettimeofday () -. t0)
  | None -> ()
