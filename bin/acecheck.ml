(* acecheck: the protocol conformance kit's CLI. Fuzzes small random SPMD
   programs through every registered protocol (plus the CRL baseline)
   across schedule-tie-break x fault x batching grids, differentially
   against the SC reference, with the coherence oracle watching every
   race-free run. A failure is shrunk and written as a replayable .repro
   file; `acecheck --replay FILE` re-runs one.

   `--inject-broken` registers a deliberately broken protocol (dynamic
   update that forgets to propagate writes) and *expects* the kit to catch
   it — a self-test that the oracle and the differential check have
   teeth. *)

module Runner = Ace_check.Runner
module Prog = Ace_check.Prog
module Repro = Ace_check.Repro
module Faults = Ace_net.Faults
module Machine = Ace_engine.Machine

let usage () =
  prerr_endline
    {|usage: acecheck [options]
  --fuzz N         programs to generate (default 200)
  --schedules K    schedule tie-breaks per program (default 32)
  --seed S         fuzz seed (default 42)
  --nprocs N       pin the simulated machine size (default: random 2..4);
                   larger sizes exercise the directory's bitset mode
  --protocols CSV  protocols to test (default: all registered + CRL)
  --no-faults      drop the lossy-network cells from the grid
  --no-batch       drop the bulk-transfer batching cells from the grid
  --out DIR        where to write .repro counterexamples (default .)
  --engine E       seq (default) runs the conformance grid; par or par:N
                   switches to the engine differential: every program runs
                   under the sequential and the sharded parallel engine
                   (same seed, FIFO, no faults) and final heaps, message
                   counts and simulated times must be bit-identical
  --replay FILE    re-run one .repro counterexample and exit
  --switch-heavy   pin the transition-torture shape: generic DRF programs
                   where most epochs end in a mid-run Ace_ChangeProtocol
  --combinators    certify the combinator-built protocol library: one fuzz
                   round per DSL protocol (each differential against SC);
                   with --inject-broken, also demand the broken canary
                   combinator is caught
  --inject-broken  also test a deliberately broken protocol; exit 0 only
                   if the kit catches it|};
  exit 2

type opts = {
  mutable fuzz : int;
  mutable schedules : int;
  mutable seed : int;
  mutable nprocs : int option;
  mutable protocols : string list option;
  mutable faults : bool;
  mutable batch : bool;
  mutable out : string;
  mutable engine : Machine.engine;
  mutable replay : string option;
  mutable switch_heavy : bool;
  mutable combinators : bool;
  mutable inject_broken : bool;
}

let parse_args () =
  let o =
    {
      fuzz = 200;
      schedules = 32;
      seed = 42;
      nprocs = None;
      protocols = None;
      faults = true;
      batch = true;
      out = ".";
      engine = Machine.Seq_engine;
      replay = None;
      switch_heavy = false;
      combinators = false;
      inject_broken = false;
    }
  in
  let int_arg v =
    match int_of_string_opt v with Some n when n > 0 -> n | _ -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--fuzz" :: v :: rest ->
        o.fuzz <- int_arg v;
        go rest
    | "--schedules" :: v :: rest ->
        o.schedules <- int_arg v;
        go rest
    | "--seed" :: v :: rest ->
        o.seed <- int_arg v;
        go rest
    | "--nprocs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 2 -> o.nprocs <- Some n
        | _ -> usage ());
        go rest
    | "--protocols" :: v :: rest ->
        o.protocols <- Some (String.split_on_char ',' v);
        go rest
    | "--no-faults" :: rest ->
        o.faults <- false;
        go rest
    | "--no-batch" :: rest ->
        o.batch <- false;
        go rest
    | "--out" :: v :: rest ->
        o.out <- v;
        go rest
    | "--engine" :: v :: rest ->
        (match Machine.engine_of_string v with
        | Ok e -> o.engine <- e
        | Error m ->
            prerr_endline ("acecheck: " ^ m);
            usage ());
        go rest
    | "--replay" :: v :: rest ->
        o.replay <- Some v;
        go rest
    | "--switch-heavy" :: rest ->
        o.switch_heavy <- true;
        go rest
    | "--combinators" :: rest ->
        o.combinators <- true;
        go rest
    | "--inject-broken" :: rest ->
        o.inject_broken <- true;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* A mild lossy-network cell: enough loss/reordering to shake the
   retransmit paths without making tiny runs crawl. *)
let default_fault_specs =
  [ Faults.spec ~drop:0.03 ~dup:0.02 ~jitter:25. ~seed:11 () ]

let write_repro o cex =
  let r = Runner.to_repro cex in
  let path =
    Filename.concat o.out
      (Printf.sprintf "acecheck-%s-seed%d.repro"
         (String.lowercase_ascii r.Repro.proto)
         o.seed)
  in
  Repro.write path r;
  path

let describe (p, (fl : Runner.failure)) =
  Printf.printf "counterexample (%s):\n  %s\n%s"
    (Runner.cell_to_string fl.Runner.cell)
    fl.Runner.reason (Prog.to_string p)

(* The engine differential: every generated program, sequential vs
   parallel engine, all admissible protocols, batched and unbatched. *)
let run_fuzz_engine o =
  let batch_modes = if o.batch then [ false; true ] else [ false ] in
  let shape = if o.switch_heavy then Some Prog.Switch_heavy else None in
  let label = "engine-diff " ^ Machine.engine_to_string o.engine in
  let report =
    Runner.fuzz_engine ?protocols:o.protocols ?shape ?nprocs:o.nprocs
      ~seed:o.seed ~count:o.fuzz ~engine:o.engine ~batch_modes
      ~log:(fun m -> Printf.printf "[%s] %s\n%!" label m)
      ()
  in
  match report.Runner.counterexample with
  | None ->
      Printf.printf "[%s] %d programs: par bit-identical to seq\n%!" label
        report.Runner.programs;
      true
  | Some cex ->
      let path = write_repro o cex in
      Printf.printf "[%s] DIVERGED after %d programs\n" label
        report.Runner.programs;
      describe cex;
      Printf.printf "  repro written to %s\n%!" path;
      false

let run_fuzz o ~protocols ~label ~expect_failure =
  let fault_specs = if o.faults then default_fault_specs else [] in
  let batch_modes = if o.batch then [ false; true ] else [ false ] in
  let shape = if o.switch_heavy then Some Prog.Switch_heavy else None in
  let report =
    Runner.fuzz ?protocols ?shape ?nprocs:o.nprocs ~seed:o.seed ~count:o.fuzz
      ~schedules:o.schedules ~fault_specs ~batch_modes
      ~log:(fun m -> Printf.printf "[%s] %s\n%!" label m)
      ()
  in
  match report.Runner.counterexample with
  | None ->
      Printf.printf "[%s] %d programs x %d schedules: clean\n%!" label
        report.Runner.programs o.schedules;
      not expect_failure
  | Some cex ->
      let path = write_repro o cex in
      Printf.printf "[%s] FAILED after %d programs\n" label
        report.Runner.programs;
      describe cex;
      Printf.printf "  repro written to %s\n%!" path;
      expect_failure

(* Certification of the combinator-built library: every DSL protocol gets
   its own fuzz round, differential against SC, so a regression in one
   compiled protocol is blamed by name. With --inject-broken the canary
   combinator (SC that never acquires exclusive write access) must be
   caught too. *)
let run_combinators o =
  let name (e : Ace_combinator.Library.entry) =
    e.Ace_combinator.Library.proto.Ace_runtime.Protocol.name
  in
  let ok =
    List.for_all
      (fun e ->
        let n = name e in
        run_fuzz o
          ~protocols:(Some [ "SC"; n ])
          ~label:("combinator " ^ n) ~expect_failure:false)
      Ace_combinator.Library.all
  in
  if not o.inject_broken then ok
  else begin
    let n = name Ace_combinator.Library.broken in
    Printf.printf
      "[broken] injecting %s (SC whose writes never reach the master)\n%!" n;
    let caught =
      run_fuzz o
        ~protocols:(Some [ "SC"; n ])
        ~label:"combinator broken" ~expect_failure:true
    in
    if not caught then
      print_endline
        "[broken] ERROR: the kit failed to catch the broken combinator";
    ok && caught
  end

let () =
  let o = parse_args () in
  match o.replay with
  | Some file -> (
      let r = Repro.read file in
      Printf.printf "replaying %s: %s\n%!" file
        (Runner.cell_to_string
           {
             Runner.proto = r.Repro.proto;
             policy = r.Repro.policy;
             faults = r.Repro.faults;
             batch = r.Repro.batch;
             engine = r.Repro.engine;
           });
      match Runner.replay r with
      | Some fl ->
          Printf.printf "still failing: %s\n" fl.Runner.reason;
          exit 1
      | None ->
          print_endline "no longer failing";
          exit 0)
  | None when o.engine <> Machine.Seq_engine ->
      exit (if run_fuzz_engine o then 0 else 1)
  | None when o.combinators -> exit (if run_combinators o then 0 else 1)
  | None ->
      let ok =
        run_fuzz o ~protocols:o.protocols ~label:"conformance"
          ~expect_failure:false
      in
      let ok =
        if not o.inject_broken then ok
        else begin
          (* The broken protocol admits only single-writer programs, so
             fuzz that shape directly against it. *)
          let protocols =
            Some [ "SC"; Runner.broken_protocol.Ace_runtime.Protocol.name ]
          in
          Printf.printf
            "[broken] injecting %s (an update protocol that drops its \
             propagation)\n%!"
            Runner.broken_protocol.Ace_runtime.Protocol.name;
          let caught = run_fuzz o ~protocols ~label:"broken" ~expect_failure:true in
          if not caught then
            print_endline
              "[broken] ERROR: the kit failed to catch the broken protocol";
          ok && caught
        end
      in
      exit (if ok then 0 else 1)
