(* acetrace: offline analysis of simulator recordings.

   `acetrace summary TRACE.json` prints where simulated time went — per
   protocol call, per region, per space — plus barrier skew and message
   statistics, from the Chrome trace-event JSON that `--trace` options
   write. `acetrace critpath DAG.json` prints critical-path blame and
   what-if latency predictions from the ace-critpath-v1 DAG that
   `--critpath` options write. Times are simulated cycles. *)

module Trace_read = Ace_obs.Trace_read
module Analyze = Ace_obs.Analyze
module Critpath = Ace_obs.Critpath

let subcommands =
  "subcommands:\n\
  \  summary TRACE.json [--top N]\n\
  \      time breakdown of a Chrome trace-event recording (--trace)\n\
  \  critpath DAG.json [--top N] [--what-if SPEC]...\n\
  \      critical-path blame of an ace-critpath-v1 DAG (--critpath);\n\
  \      SPEC scales a cost class in a replay, e.g. link=0->1:0.5,\n\
  \      link=*:0.5, op=send_ovh:0.5, space=2:0.25\n\
  \  help | --help\n\
  \      this message"

let usage () =
  prerr_endline "usage: acetrace SUBCOMMAND [ARGS] (acetrace --help lists subcommands)";
  exit 2

let help () =
  print_endline "usage: acetrace SUBCOMMAND [ARGS]";
  print_endline "";
  print_endline subcommands;
  exit 0

(* ---- summary (trace-event files) ---- *)

let summary_usage () =
  prerr_endline "usage: acetrace summary TRACE.json [--top N]";
  exit 2

let parse_summary_args args =
  let file = ref None and top = ref 10 in
  let rec go = function
    | [] -> ()
    | "--top" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> top := n
        | _ -> summary_usage ());
        go rest
    | ("-h" | "--help") :: _ -> summary_usage ()
    | a :: rest ->
        if String.length a > 0 && a.[0] = '-' then summary_usage ();
        (match !file with None -> file := Some a | Some _ -> summary_usage ());
        go rest
  in
  go args;
  match !file with None -> summary_usage () | Some f -> (f, !top)

let rows title (rows : Analyze.row list) ~top =
  Printf.printf "\n%s\n" title;
  if rows = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %-24s %10s %14s %12s %12s\n" "" "count" "total_cyc"
      "mean_cyc" "max_cyc";
    List.iter
      (fun (r : Analyze.row) ->
        Printf.printf "  %-24s %10d %14.0f %12.1f %12.0f\n" r.Analyze.label
          r.Analyze.count r.Analyze.total r.Analyze.mean r.Analyze.max)
      (Analyze.take top rows);
    let n = List.length rows in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end

let summary_cmd args =
  let file, top = parse_summary_args args in
  let evs =
    try Trace_read.load file
    with
    | Sys_error msg ->
        Printf.eprintf "acetrace: %s\n" msg;
        exit 1
    | Ace_obs.Json.Parse_error msg | Failure msg ->
        Printf.eprintf "acetrace: %s: malformed trace (%s)\n" file msg;
        exit 1
  in
  let real = List.filter (fun e -> not (Trace_read.is_meta e)) evs in
  Printf.printf "%s: %d events, %d simulated procs\n" file (List.length real)
    (Trace_read.nprocs evs);

  rows "Protocol-call breakdown (simulated time under each call):"
    (Analyze.call_breakdown real) ~top;
  rows "Hottest regions (protocol-call + lock-hold time):"
    (Analyze.hottest_regions real) ~top;
  rows "Hottest spaces (protocol-call time):" (Analyze.hottest_spaces real)
    ~top;

  let barriers = Analyze.barrier_skew real in
  Printf.printf "\nBarrier generations (%d):\n" (List.length barriers);
  if barriers = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %6s %9s %14s %12s %12s\n" "gen" "arrivals" "first_ts"
      "skew_cyc" "span_cyc";
    let shown = Analyze.take top barriers in
    List.iter
      (fun (b : Analyze.barrier_row) ->
        Printf.printf "  %6d %9d %14.0f %12.0f %12.0f\n" b.Analyze.gen
          b.Analyze.arrivals b.Analyze.first_ts b.Analyze.skew b.Analyze.span)
      shown;
    let n = List.length barriers in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end;

  let m = Analyze.messages real in
  Printf.printf
    "\nMessages: %d (%d bytes), latency mean %.1f cyc, max %.0f cyc\n"
    m.Analyze.messages m.Analyze.bytes m.Analyze.mean_latency
    m.Analyze.max_latency;
  if m.Analyze.retransmits + m.Analyze.piggybacked + m.Analyze.coalesced > 0
  then
    Printf.printf
      "  %d retransmits, %d ACKs piggybacked, %d messages saved by \
       coalescing\n"
      m.Analyze.retransmits m.Analyze.piggybacked m.Analyze.coalesced;
  if m.Analyze.links <> [] then begin
    Printf.printf "  %-12s %10s %12s %12s %8s %9s %9s\n" "link" "msgs"
      "mean_lat" "max_lat" "rexmit" "piggyack" "coalesced";
    List.iter
      (fun (r : Analyze.link_row) ->
        Printf.printf "  %-12s %10d %12.1f %12.0f %8d %9d %9d\n"
          r.Analyze.link r.Analyze.lmsgs r.Analyze.lmean r.Analyze.lmax
          r.Analyze.lretrans r.Analyze.lpiggy r.Analyze.lcoalesced)
      (Analyze.take top m.Analyze.links);
    let n = List.length m.Analyze.links in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end

(* ---- critpath (causal-DAG files) ---- *)

let critpath_usage () =
  prerr_endline
    "usage: acetrace critpath DAG.json [--top N] [--what-if SPEC]...\n\
     SPEC: link=SRC->DST:FACTOR | link=*:FACTOR | op=NAME:FACTOR | \
     space=N:FACTOR";
  exit 2

let parse_critpath_args args =
  let file = ref None and top = ref 10 and whatifs = ref [] in
  let rec go = function
    | [] -> ()
    | "--top" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> top := n
        | _ -> critpath_usage ());
        go rest
    | "--what-if" :: spec :: rest ->
        (match Critpath.parse_whatif spec with
        | Ok w -> whatifs := w :: !whatifs
        | Error msg ->
            Printf.eprintf "acetrace: bad --what-if %s: %s\n" spec msg;
            exit 2);
        go rest
    | ("-h" | "--help") :: _ -> critpath_usage ()
    | a :: rest ->
        if String.length a > 0 && a.[0] = '-' then critpath_usage ();
        (match !file with None -> file := Some a | Some _ -> critpath_usage ());
        go rest
  in
  go args;
  match !file with
  | None -> critpath_usage ()
  | Some f -> (f, !top, List.rev !whatifs)

let pct total c = if total > 0. then 100. *. c /. total else 0.

let blame_table title fmt_label entries ~total ~top =
  Printf.printf "\n%s\n" title;
  if entries = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %-24s %16s %7s\n" "" "cycles" "share";
    List.iteri
      (fun i (label, c) ->
        if i < top then
          Printf.printf "  %-24s %16.0f %6.1f%%\n" (fmt_label label) c
            (pct total c))
      entries;
    let n = List.length entries in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end

let critpath_cmd args =
  let file, top, whatifs = parse_critpath_args args in
  let dag =
    try Critpath.load file
    with
    | Sys_error msg ->
        Printf.eprintf "acetrace: %s\n" msg;
        exit 1
    | Ace_obs.Json.Parse_error msg | Failure msg ->
        Printf.eprintf "acetrace: %s: malformed critpath file (%s)\n" file msg;
        exit 1
  in
  let bp = Critpath.blamed_path dag in
  let total = Critpath.total_blame bp in
  Printf.printf
    "%s: %d dag nodes, %d simulated procs, end time %.0f cycles\n" file
    (Critpath.n_nodes dag) dag.Critpath.nprocs dag.Critpath.end_time;
  Printf.printf
    "critical path: %d steps, %.0f cycles blamed (= simulated duration)\n"
    (List.length bp) total;

  blame_table "Blame by protocol-op class:" Fun.id
    (Critpath.blame_by_kind dag bp) ~total ~top;
  blame_table "Blame by space:"
    (fun sp -> if sp < 0 then "(unattributed)" else Printf.sprintf "space %d" sp)
    (Critpath.blame_by_space dag bp) ~total ~top;
  blame_table "Blame by link:"
    (fun (src, dst) -> Printf.sprintf "P%d->P%d" src dst)
    (Critpath.blame_by_link dag bp) ~total ~top;
  blame_table "Blame by processor:"
    (fun p -> if p < 0 then "(none)" else Printf.sprintf "P%d" p)
    (Critpath.blame_by_node dag bp) ~total ~top;

  let segs = Critpath.top_segments dag bp ~k:top in
  Printf.printf "\nTop path segments:\n";
  if segs = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %-12s %6s %6s %16s %14s %14s\n" "kind" "a" "b" "cycles"
      "t0" "t1";
    List.iter
      (fun (s : Critpath.seg) ->
        Printf.printf "  %-12s %6d %6d %16.0f %14.0f %14.0f\n" s.Critpath.seg_kind
          s.Critpath.seg_a s.Critpath.seg_b s.Critpath.seg_cycles
          s.Critpath.seg_t0 s.Critpath.seg_t1)
      segs
  end;

  if whatifs <> [] then begin
    Printf.printf "\nWhat-if predictions (causal replay with scaled costs):\n";
    List.iter
      (fun w ->
        let recorded, predicted, speedup = Critpath.predict dag [ w ] in
        Printf.printf "  %-28s end %16.0f -> %16.0f  speedup %5.2fx\n"
          (Critpath.describe_whatif w) recorded predicted speedup)
      whatifs;
    if List.length whatifs > 1 then begin
      let recorded, predicted, speedup = Critpath.predict dag whatifs in
      Printf.printf "  %-28s end %16.0f -> %16.0f  speedup %5.2fx\n"
        "(all combined)" recorded predicted speedup
    end
  end

(* ---- dispatch ---- *)

let () =
  match Array.to_list Sys.argv with
  | _ :: ("-h" | "--help" | "help") :: _ -> help ()
  | _ :: "summary" :: rest -> summary_cmd rest
  | _ :: "critpath" :: rest -> critpath_cmd rest
  | _ :: (a :: _ as rest) when Sys.file_exists a || String.contains a '.' ->
      (* legacy spelling: acetrace TRACE.json [--top N] *)
      summary_cmd rest
  | _ :: a :: _ ->
      Printf.eprintf
        "acetrace: unknown subcommand '%s'\n\n%s\n" a subcommands;
      exit 2
  | _ -> usage ()
