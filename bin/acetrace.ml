(* acetrace: analyze a simulator trace (the Chrome trace-event JSON that
   `bench/main.exe --trace` / `ace_demo --trace` write). Prints where
   simulated time went — per protocol call, per region, per space — plus
   barrier skew and message statistics. Times are simulated cycles. *)

module Trace_read = Ace_obs.Trace_read
module Analyze = Ace_obs.Analyze

let usage () =
  prerr_endline "usage: acetrace TRACE.json [--top N]";
  exit 2

let parse_args () =
  let file = ref None and top = ref 10 in
  let rec go = function
    | [] -> ()
    | "--top" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> top := n
        | _ -> usage ());
        go rest
    | ("-h" | "--help") :: _ -> usage ()
    | a :: rest ->
        if String.length a > 0 && a.[0] = '-' then usage ();
        (match !file with None -> file := Some a | Some _ -> usage ());
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match !file with None -> usage () | Some f -> (f, !top)

let rows title (rows : Analyze.row list) ~top =
  Printf.printf "\n%s\n" title;
  if rows = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %-24s %10s %14s %12s %12s\n" "" "count" "total_cyc"
      "mean_cyc" "max_cyc";
    List.iter
      (fun (r : Analyze.row) ->
        Printf.printf "  %-24s %10d %14.0f %12.1f %12.0f\n" r.Analyze.label
          r.Analyze.count r.Analyze.total r.Analyze.mean r.Analyze.max)
      (Analyze.take top rows);
    let n = List.length rows in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end

let () =
  let file, top = parse_args () in
  let evs =
    try Trace_read.load file
    with
    | Sys_error msg ->
        Printf.eprintf "acetrace: %s\n" msg;
        exit 1
    | Ace_obs.Json.Parse_error msg | Failure msg ->
        Printf.eprintf "acetrace: %s: malformed trace (%s)\n" file msg;
        exit 1
  in
  let real = List.filter (fun e -> not (Trace_read.is_meta e)) evs in
  Printf.printf "%s: %d events, %d simulated procs\n" file (List.length real)
    (Trace_read.nprocs evs);

  rows "Protocol-call breakdown (simulated time under each call):"
    (Analyze.call_breakdown real) ~top;
  rows "Hottest regions (protocol-call + lock-hold time):"
    (Analyze.hottest_regions real) ~top;
  rows "Hottest spaces (protocol-call time):" (Analyze.hottest_spaces real)
    ~top;

  let barriers = Analyze.barrier_skew real in
  Printf.printf "\nBarrier generations (%d):\n" (List.length barriers);
  if barriers = [] then print_endline "  (none)"
  else begin
    Printf.printf "  %6s %9s %14s %12s %12s\n" "gen" "arrivals" "first_ts"
      "skew_cyc" "span_cyc";
    let shown = Analyze.take top barriers in
    List.iter
      (fun (b : Analyze.barrier_row) ->
        Printf.printf "  %6d %9d %14.0f %12.0f %12.0f\n" b.Analyze.gen
          b.Analyze.arrivals b.Analyze.first_ts b.Analyze.skew b.Analyze.span)
      shown;
    let n = List.length barriers in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end;

  let m = Analyze.messages real in
  Printf.printf
    "\nMessages: %d (%d bytes), latency mean %.1f cyc, max %.0f cyc\n"
    m.Analyze.messages m.Analyze.bytes m.Analyze.mean_latency
    m.Analyze.max_latency;
  if m.Analyze.retransmits + m.Analyze.piggybacked + m.Analyze.coalesced > 0
  then
    Printf.printf
      "  %d retransmits, %d ACKs piggybacked, %d messages saved by \
       coalescing\n"
      m.Analyze.retransmits m.Analyze.piggybacked m.Analyze.coalesced;
  if m.Analyze.links <> [] then begin
    Printf.printf "  %-12s %10s %12s %12s %8s %9s %9s\n" "link" "msgs"
      "mean_lat" "max_lat" "rexmit" "piggyack" "coalesced";
    List.iter
      (fun (r : Analyze.link_row) ->
        Printf.printf "  %-12s %10d %12.1f %12.0f %8d %9d %9d\n"
          r.Analyze.link r.Analyze.lmsgs r.Analyze.lmean r.Analyze.lmax
          r.Analyze.lretrans r.Analyze.lpiggy r.Analyze.lcoalesced)
      (Analyze.take top m.Analyze.links);
    let n = List.length m.Analyze.links in
    if n > top then Printf.printf "  ... (%d more)\n" (n - top)
  end
