(* Command-line driver: run any benchmark application on any backend with
   any protocol configuration on the simulated machine.

     ace_demo em3d --backend ace --protocol STATIC_UPDATE --procs 16
     ace_demo water --backend ace --phase-protocols NULL,PIPELINE
     ace_demo tsp --backend crl
*)

open Cmdliner

let run_app app backend nprocs protocol steps scale verbose trace dump_stats
    faults batch critpath =
  if nprocs < 2 then
    invalid_arg "ace_demo: --nprocs must be at least 2 (SPMD needs a peer)";
  let module D = Ace_harness.Driver in
  let crit =
    Option.map (fun _ -> Ace_engine.Crit.create ~nprocs ()) critpath
  in
  let factor = scale in
  let batch = if batch then Some true else None in
  (* Under a fault model, capture the reliable transport's counters so the
     run can report what the lossy network cost. *)
  let fault_counts = ref None in
  let batch_counts = ref None in
  let capture s =
    let get = Ace_engine.Stats.get s in
    if faults <> None then
      fault_counts :=
        Some
          ( get "net.fault.dropped",
            get "net.retransmits",
            get "net.timeouts",
            get "net.dup_suppressed",
            get "net.giveups" );
    if batch <> None then
      batch_counts :=
        Some
          ( get "net.messages",
            get "net.coalesced",
            get "coh.write_combined",
            get "coh.inval_batch" +. get "coh.bulk_fetch" )
  in
  let stats =
    if dump_stats then
      Some
        (fun s ->
          Format.printf "%a@?" Ace_engine.Stats.pp s;
          capture s)
    else Some capture
  in
  let pick crl ace = match backend with `Crl -> crl () | `Ace -> ace () in
  let outcome, reference =
    match app with
    | `Em3d ->
        let cfg =
          {
            Ace_apps.Em3d.default with
            Ace_apps.Em3d.n_nodes = 200 * factor;
            steps;
            protocol = (match backend with `Ace -> protocol | `Crl -> None);
          }
        in
        ( pick
            (fun () -> D.run_crl ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Em3d) cfg)
            (fun () -> D.run_ace ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Em3d) cfg),
          Some
            (Ace_apps.Em3d.checksum (Ace_apps.Em3d.reference cfg ~nprocs)) )
    | `Barnes_hut ->
        let cfg =
          {
            Ace_apps.Barnes_hut.default with
            Ace_apps.Barnes_hut.n_bodies = 128 * factor;
            steps;
            protocol = (match backend with `Ace -> protocol | `Crl -> None);
          }
        in
        ( pick
            (fun () -> D.run_crl ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Barnes_hut) cfg)
            (fun () -> D.run_ace ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Barnes_hut) cfg),
          Some (Ace_apps.Barnes_hut.checksum (Ace_apps.Barnes_hut.reference cfg))
        )
    | `Bsc ->
        let cfg =
          {
            Ace_apps.Cholesky.default with
            Ace_apps.Cholesky.core =
              {
                Ace_apps.Cholesky.default.Ace_apps.Cholesky.core with
                Ace_apps.Chol_core.nb = 6 * factor;
              };
            protocol = (match backend with `Ace -> protocol | `Crl -> None);
          }
        in
        ( pick
            (fun () -> D.run_crl ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Cholesky) cfg)
            (fun () -> D.run_ace ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Cholesky) cfg),
          Some
            (Ace_apps.Chol_core.checksum
               (Ace_apps.Chol_core.reference cfg.Ace_apps.Cholesky.core)) )
    | `Tsp ->
        let cfg =
          {
            Ace_apps.Tsp.default with
            Ace_apps.Tsp.counter_protocol =
              (match backend with `Ace -> protocol | `Crl -> None);
          }
        in
        ( pick
            (fun () -> D.run_crl ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Tsp) cfg)
            (fun () -> D.run_ace ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Tsp) cfg),
          Some (Ace_apps.Tsp_core.reference cfg.Ace_apps.Tsp.core) )
    | `Water phase_protocols ->
        let cfg : Ace_apps.Water.config =
          {
            Ace_apps.Water.core =
              {
                Ace_apps.Water.default.Ace_apps.Water.core with
                Ace_apps.Water_core.n_mol = 32 * factor;
                steps;
              };
            phase_protocols =
              (match backend with `Ace -> phase_protocols | `Crl -> None);
          }
        in
        ( pick
            (fun () -> D.run_crl ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Water) cfg)
            (fun () -> D.run_ace ?faults ?batch ?trace ?crit ?stats ~nprocs (module Ace_apps.Water) cfg),
          Some
            (Ace_apps.Water_core.checksum
               (Ace_apps.Water_core.reference cfg.Ace_apps.Water.core)) )
  in
  Printf.printf "simulated time: %.6f s (on the modelled 33 MHz, %d-node machine)\n"
    outcome.D.seconds nprocs;
  Printf.printf "result (node 0): %.9g\n" outcome.D.result;
  (match reference with
  | Some r when verbose ->
      Printf.printf "sequential reference: %.9g (delta %.3g)\n" r
        (abs_float (r -. outcome.D.result))
  | _ -> ());
  (match !fault_counts with
  | Some (dropped, rexmit, timeouts, dupsup, giveups) ->
      Printf.printf
        "reliability: %.0f dropped, %.0f retransmits, %.0f timeouts, %.0f \
         duplicates suppressed, %.0f giveups\n"
        dropped rexmit timeouts dupsup giveups
  | None -> ());
  (match !batch_counts with
  | Some (msgs, coalesced, combined, bulk) ->
      Printf.printf
        "batching: %.0f physical messages (%.0f saved by coalescing), %.0f \
         write-combined updates, %.0f batched inval/fetch legs\n"
        msgs coalesced combined bulk
  | None -> ());
  (match trace with
  | Some path -> Printf.printf "wrote trace: %s\n" path
  | None -> ());
  (match (critpath, crit) with
  | Some path, Some cr ->
      Ace_engine.Crit.write_file cr path;
      let module Critpath = Ace_obs.Critpath in
      let dag = Critpath.of_crit cr in
      let bp = Critpath.blamed_path dag in
      (match Critpath.blame_by_kind dag bp with
      | (k, cyc) :: _ ->
          Printf.printf
            "wrote critical-path DAG: %s (%d nodes; top blame: %s %.1f%%)\n"
            path (Critpath.n_nodes dag) k
            (100. *. cyc /. Critpath.total_blame bp)
      | [] -> Printf.printf "wrote critical-path DAG: %s\n" path)
  | _ -> ());
  0

let app_arg =
  let apps =
    [
      ("em3d", `Em3d);
      ("barnes-hut", `Barnes_hut);
      ("bsc", `Bsc);
      ("tsp", `Tsp);
      ("water", `Water_marker);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum apps)) None
    & info [] ~docv:"APP" ~doc:"Benchmark: em3d, barnes-hut, bsc, tsp or water.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("ace", `Ace); ("crl", `Crl) ]) `Ace
    & info [ "backend" ] ~docv:"SYS" ~doc:"Runtime system: ace or crl.")

let procs_arg =
  Arg.(
    value & opt int 16
    & info [ "nprocs"; "procs"; "p" ]
        ~doc:"Simulated processors (at least 2).")

let protocol_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "protocol" ]
        ~doc:"Custom protocol name (e.g. STATIC_UPDATE, DYN_UPDATE, COUNTER).")

let phases_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "phase-protocols" ]
        ~doc:"Water only: INTRA,INTER protocol pair (e.g. NULL,PIPELINE).")

let steps_arg =
  Arg.(value & opt int 5 & info [ "steps" ] ~doc:"Iterations (where applicable).")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Problem size multiplier.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the reference value.")

let stats_arg =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:
          "Dump all nonzero counters, dimensioned counter families and \
           histograms after the run.")

let drop_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "drop" ] ~docv:"P"
        ~doc:
          "Per-transmission drop probability in [0,1). The reliable \
           transport retransmits, so the run still completes correctly.")

let dup_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "dup" ] ~docv:"P"
        ~doc:"Per-transmission duplication probability in [0,1).")

let jitter_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "jitter" ] ~docv:"CYCLES"
        ~doc:"Maximum extra transit delay per message copy, in cycles.")

let fault_seed_arg =
  Arg.(
    value
    & opt int Ace_net.Faults.default_seed
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Fault-model RNG seed. The same seed reproduces the same \
           loss/duplication/jitter pattern bit for bit.")

let batch_arg =
  Arg.(
    value
    & flag
    & info [ "batch" ]
        ~doc:
          "Enable bulk-transfer batching: coalesced same-destination \
           messages, write-combined updates, batched invalidations and bulk \
           fetches. Off by default; off runs are bit-identical to a build \
           without the batching layer.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the simulation as Chrome trace-event JSON (load in \
           Perfetto or chrome://tracing; analyze with acetrace). Simulated \
           times are unaffected.")

let critpath_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "critpath" ] ~docv:"FILE"
        ~doc:
          "Record the run's causal dependency DAG as ace-critpath-v1 JSON \
           (analyze with acetrace critpath). Simulated times are \
           unaffected.")

let cmd =
  let doc = "run an Ace/CRL benchmark on the simulated CM-5" in
  Cmd.v
    (Cmd.info "ace_demo" ~doc)
    Term.(
      const (fun app backend nprocs protocol phases steps scale verbose trace
                 stats drop dup jitter fault_seed batch critpath ->
          let app =
            match app with
            | `Water_marker -> `Water phases
            | `Em3d -> `Em3d
            | `Barnes_hut -> `Barnes_hut
            | `Bsc -> `Bsc
            | `Tsp -> `Tsp
          in
          let faults =
            if drop > 0. || dup > 0. || jitter > 0. then
              Some
                (Ace_net.Faults.spec ~drop ~dup ~jitter ~seed:fault_seed ())
            else None
          in
          run_app app backend nprocs protocol steps scale verbose trace stats
            faults batch critpath)
      $ app_arg $ backend_arg $ procs_arg $ protocol_arg $ phases_arg
      $ steps_arg $ scale_arg $ verbose_arg $ trace_arg $ stats_arg
      $ drop_arg $ dup_arg $ jitter_arg $ fault_seed_arg $ batch_arg
      $ critpath_arg)

let () = exit (Cmd.eval' cmd)
