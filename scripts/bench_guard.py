#!/usr/bin/env python3
"""Wall-clock regression guard for the benchmark grid.

Compares a fresh `bench/main.exe --json` report against the committed
baseline (BENCH_*.json). Fails (exit 1) when the total wall clock exceeds
the baseline by more than the tolerance (default 15%), and prints a
per-experiment row diff so the offending cell is visible at a glance.
Simulated times are deterministic, so any sim_s difference is reported as
a warning regardless of the wall verdict.

Usage:
    bench_guard.py CURRENT.json BASELINE.json [--tolerance 0.15]
                   [--report OUT.json]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_key(report):
    return {
        (r.get("experiment", "?"), r.get("name", "?")): r
        for r in report.get("rows", [])
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional wall-clock regression")
    ap.add_argument("--report", help="write a JSON verdict artifact here")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)

    cur_total = cur.get("total_wall_s")
    base_total = base.get("total_wall_s")
    if cur_total is None or base_total is None:
        sys.exit("bench_guard: reports lack total_wall_s")

    limit = base_total * (1.0 + args.tolerance)
    ok = cur_total <= limit

    cur_rows = rows_by_key(cur)
    base_rows = rows_by_key(base)

    row_diffs = []
    sim_warnings = []
    for key in sorted(set(cur_rows) | set(base_rows)):
        c = cur_rows.get(key)
        b = base_rows.get(key)
        exp, name = key
        if c is None or b is None:
            row_diffs.append({
                "experiment": exp, "name": name,
                "status": "missing-in-current" if c is None else "new",
                "baseline_wall_s": b and b.get("wall_s"),
                "current_wall_s": c and c.get("wall_s"),
            })
            continue
        bw, cw = b.get("wall_s", 0.0), c.get("wall_s", 0.0)
        row_diffs.append({
            "experiment": exp, "name": name, "status": "compared",
            "baseline_wall_s": bw, "current_wall_s": cw,
            "ratio": (cw / bw) if bw > 0 else None,
        })
        for sim_key, bv in (b.get("sim_s") or {}).items():
            cv = (c.get("sim_s") or {}).get(sim_key)
            if cv is not None and cv != bv:
                sim_warnings.append(
                    f"{exp}/{name}: sim_s[{sim_key}] {bv!r} -> {cv!r}")

    verdict = {
        "ok": ok,
        "tolerance": args.tolerance,
        "baseline_total_wall_s": base_total,
        "current_total_wall_s": cur_total,
        "limit_wall_s": limit,
        "rows": row_diffs,
        "sim_warnings": sim_warnings,
    }
    if args.report:
        with open(args.report, "w") as f:
            json.dump(verdict, f, indent=2)

    print(f"bench_guard: total wall {cur_total:.3f}s vs baseline "
          f"{base_total:.3f}s (limit {limit:.3f}s, "
          f"{'OK' if ok else 'REGRESSION'})")
    for w in sim_warnings:
        print(f"  warning: simulated time changed: {w}")
    if not ok:
        print(f"  {'experiment/row':<40} {'base_s':>9} {'cur_s':>9} "
              f"{'ratio':>7}")
        for d in row_diffs:
            label = f"{d['experiment']}/{d['name']}"
            if d["status"] != "compared":
                print(f"  {label:<40} {d['status']}")
                continue
            ratio = d["ratio"]
            print(f"  {label:<40} {d['baseline_wall_s']:>9.3f} "
                  f"{d['current_wall_s']:>9.3f} "
                  f"{ratio:>7.2f}" if ratio is not None else
                  f"  {label:<40} (no baseline wall)")
        sys.exit(1)


if __name__ == "__main__":
    main()
