#!/usr/bin/env python3
"""Wall-clock regression guard for the benchmark grid.

Compares a fresh `bench/main.exe --json` report against the committed
baseline (BENCH_*.json). Fails (exit 1) when the total wall clock exceeds
the baseline by more than the tolerance (default 15%), and prints a
per-experiment row diff so the offending cell is visible at a glance.
Simulated times are deterministic, so any sim_s difference is reported as
a warning regardless of the wall verdict.

When the current report contains `scaling` rows (bench/main.exe scaling),
a directory-memory guard also runs: for the sparsely-shared benchmarks the
words-per-region slope across machine sizes must stay far below one word
per processor — the compact two-mode directory's whole point. A slope at
or above SCALING_SLOPE_LIMIT means the representation has regressed to
O(nprocs) state per region, and the guard fails. Barnes-Hut is exempt:
every node genuinely caches every body, so its per-region state is
population-proportional by construction.

When the current report contains `critpath_overhead` rows (bench/main.exe
critpath), a recording-overhead guard also runs: the recorder-on EM3D wall
must stay within CRITPATH_TOLERANCE of the recorder-off wall plus an
absolute floor. The floor exists because the benched run is sub-second:
the recorder's fixed per-event cost (~140 ns) is a large *fraction* of a
0.2 s run but a small absolute cost, and machine wall noise on runs that
short is itself several percent. The guard therefore bounds the absolute
regression, which is what CI can measure honestly, rather than pretending
a percentage of a sub-second wall is meaningful.

When the current report contains `serving` rows (bench/main.exe serving),
an adaptation guard also runs: every row must have computed the exact
sequential reference (ok == 1), the adaptive row must actually have
switched protocols at least once, and — the experiment's headline claim —
the adaptive row's physical message count must not exceed the best fixed
protocol's. The claim is scale-sensitive (update-protocol push fan-out
grows with the sharer population), so CI runs this guard on the --small
smoke, the configuration the claim is made for.

When invoked with `--engine-only`, the parallel-engine guard runs instead
of the wall-clock comparison. Two shapes:

  * CURRENT vs BASELINE: CURRENT is the benchmark grid re-run under
    `--engine par:N`; every row shared with the (sequential) baseline
    must have *identical* simulated output — sim_s scalars and message
    counts, wall-clock keys excluded. This is the tentpole contract: the
    sharded engine is an implementation detail, not a semantics change.
  * CURRENT alone: CURRENT holds `engine_speedup` rows (bench/main.exe
    engine_speedup). Bit-identity (the row's own seq-vs-par comparison)
    is always enforced. The wall-clock assertions — par never slower
    than seq on the weak-scaled rows, and a headline >= 1.5x speedup at
    >= 512 nodes — only gate when the host actually has at least as many
    cores as the engine has shards; on smaller hosts (CI runners are
    often 2-core) they are reported informationally, because a sharded
    simulator cannot beat sequential without real parallelism.

Usage:
    bench_guard.py CURRENT.json BASELINE.json [--tolerance 0.15]
                   [--report OUT.json]
    bench_guard.py SCALING.json --scaling-only [--report OUT.json]
    bench_guard.py CRITPATH.json --critpath-only [--report OUT.json]
    bench_guard.py SERVING.json --serving-only [--report OUT.json]
    bench_guard.py ENGINE.json [BASELINE.json] --engine-only
                   [--report OUT.json]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_key(report):
    return {
        (r.get("experiment", "?"), r.get("name", "?")): r
        for r in report.get("rows", [])
    }


# Benchmarks whose regions are sparsely shared, where directory memory per
# region must not scale with the machine. The old bool-array + eager copy
# records cost >= 2 words per processor per region; the compact form's
# worst residual slope is the two mapped/sharer bitsets at 2/62.
SCALING_SPARSE_BENCHES = {"EM3D", "BSC"}
SCALING_SLOPE_LIMIT = 0.25  # words per region per added processor


def scaling_guard(report):
    """Check words-per-region growth across machine sizes; return failures."""
    series = {}
    for r in report.get("rows", []):
        if r.get("experiment") != "scaling":
            continue
        name = r.get("name", "")          # e.g. "EM3D-inval@64"
        bench_proto = name.rsplit("@", 1)[0]
        sims = r.get("sim_s") or {}
        nprocs = sims.get("nprocs")
        wpr = sims.get("words_per_region")
        if nprocs and wpr is not None:
            series.setdefault(bench_proto, []).append((int(nprocs), wpr))

    checks = []
    for bench_proto, points in sorted(series.items()):
        bench = bench_proto.split("-", 1)[0]
        if bench not in SCALING_SPARSE_BENCHES or len(points) < 2:
            continue
        points.sort()
        (n0, w0), (n1, w1) = points[0], points[-1]
        slope = (w1 - w0) / (n1 - n0)
        checks.append({
            "series": bench_proto,
            "nprocs": [n0, n1],
            "words_per_region": [w0, w1],
            "slope": slope,
            "ok": slope < SCALING_SLOPE_LIMIT,
        })
    return checks


# Critical-path recorder overhead bound: on-wall may exceed off-wall by
# 5% plus an absolute floor. See the module docstring for why a pure
# percentage is not honest at sub-second run lengths.
CRITPATH_TOLERANCE = 0.05
CRITPATH_FLOOR_S = 0.15


def critpath_guard(report):
    """Bound recorder-on wall against recorder-off wall; return checks."""
    walls = {}
    for r in report.get("rows", []):
        if r.get("experiment") == "critpath_overhead":
            walls[r.get("name", "")] = r.get("wall_s")

    checks = []
    off, on = walls.get("em3d-off"), walls.get("em3d-on")
    if off is not None and on is not None:
        limit = off * (1.0 + CRITPATH_TOLERANCE) + CRITPATH_FLOOR_S
        checks.append({
            "series": "critpath-recording",
            "off_wall_s": off,
            "on_wall_s": on,
            "limit_wall_s": limit,
            "ok": on <= limit,
        })
    return checks


# The adaptive row may not send more messages than the best fixed
# protocol: adaptation's whole pitch is that per-space re-picking matches
# or beats any single static choice.
SERVING_RATIO_LIMIT = 1.0
SERVING_FIXED = {"SC", "DYN_UPDATE", "MIGRATORY"}


def serving_guard(report):
    """Check the adaptive-serving rows' correctness and headline ratio."""
    rows = [r for r in report.get("rows", [])
            if r.get("experiment") == "serving"]
    if not rows:
        return []

    checks = []
    fixed_msgs = {}
    adaptive = None
    for r in rows:
        name = r.get("name", "?")
        sims = r.get("sim_s") or {}
        msgs = (r.get("net_messages") or {}).get("total")
        checks.append({
            "series": f"serving-{name}-correct",
            "ok": sims.get("ok") == 1,
        })
        if name in SERVING_FIXED and msgs is not None:
            fixed_msgs[name] = msgs
        if name == "adaptive":
            adaptive = (msgs, sims.get("switches"))

    if adaptive is not None and fixed_msgs:
        msgs, switches = adaptive
        checks.append({
            "series": "serving-adaptive-switched",
            "switches": switches,
            "ok": bool(switches and switches > 0),
        })
        best_name = min(fixed_msgs, key=fixed_msgs.get)
        best = fixed_msgs[best_name]
        ratio = (msgs / best) if (msgs is not None and best > 0) else None
        checks.append({
            "series": "serving-adaptive-vs-best-fixed",
            "best_fixed": best_name,
            "best_fixed_messages": best,
            "adaptive_messages": msgs,
            "ratio": ratio,
            "ok": ratio is not None and ratio <= SERVING_RATIO_LIMIT,
        })
    else:
        checks.append({"series": "serving-rows-complete", "ok": False})
    return checks


# Combinator-compiler guard: every identity row must be bit-identical
# (hand-written vs DSL-built protocol), and compiled-dispatch wall time may
# exceed hand-written dispatch by 5% plus an absolute floor — the same
# noise-honest shape as the critpath recorder bound, because these are
# sub-second EM3D runs.
COMBINATOR_TOLERANCE = 0.05
COMBINATOR_FLOOR_S = 0.15


def combinator_guard(report):
    """Check combinator identity rows and the DSL dispatch-wall bound."""
    rows = [r for r in report.get("rows", [])
            if r.get("experiment") == "combinator"]
    if not rows:
        return []

    checks = []
    walls = {}
    for r in rows:
        name = r.get("name", "?")
        sims = r.get("sim_s") or {}
        if "identical" in sims:
            checks.append({
                "series": f"combinator-identity-{name}",
                "hand_s": sims.get("hand"),
                "dsl_s": sims.get("dsl"),
                "ok": sims.get("identical") == 1,
            })
        if name in ("dispatch-em3d-hand", "dispatch-em3d-dsl"):
            walls[name] = r.get("wall_s")

    hand, dsl = walls.get("dispatch-em3d-hand"), walls.get("dispatch-em3d-dsl")
    if hand is not None and dsl is not None:
        limit = hand * (1.0 + COMBINATOR_TOLERANCE) + COMBINATOR_FLOOR_S
        checks.append({
            "series": "combinator-dispatch-wall",
            "hand_wall_s": hand,
            "dsl_wall_s": dsl,
            "limit_wall_s": limit,
            "ok": dsl <= limit,
        })
    else:
        checks.append({"series": "combinator-dispatch-rows", "ok": False})
    return checks


# Parallel-engine speedup thresholds. Wall assertions only gate when the
# host has at least [shards] cores; identity always gates.
ENGINE_HEADLINE_SPEEDUP = 1.5
ENGINE_HEADLINE_NPROCS = 512

# sim_s keys that are host-wall-derived rather than simulated output, and
# therefore exempt from the identity comparison.
ENGINE_WALL_KEYS = ("wall", "speedup", "jobs")


def engine_identity_guard(cur, base):
    """Every shared grid row must have identical simulated output."""
    cur_rows = rows_by_key(cur)
    base_rows = rows_by_key(base)
    checks = []
    for key in sorted(set(cur_rows) & set(base_rows)):
        exp, name = key
        if exp == "engine_speedup":
            continue  # wall-dependent by construction
        c, b = cur_rows[key], base_rows[key]
        diffs = []
        for sim_key, bv in (b.get("sim_s") or {}).items():
            if any(w in sim_key for w in ENGINE_WALL_KEYS):
                continue
            cv = (c.get("sim_s") or {}).get(sim_key)
            if cv != bv:
                diffs.append(f"sim_s[{sim_key}] {bv!r} -> {cv!r}")
        for msg_key, bv in (b.get("net_messages") or {}).items():
            cv = (c.get("net_messages") or {}).get(msg_key)
            if cv != bv:
                diffs.append(f"net_messages[{msg_key}] {bv!r} -> {cv!r}")
        checks.append({
            "series": f"engine-identity {exp}/{name}",
            "diffs": diffs,
            "ok": not diffs,
        })
    return checks


def engine_speedup_guard(report):
    """Check engine_speedup rows: identity always, walls when cores allow."""
    rows = [r for r in report.get("rows", [])
            if r.get("experiment") == "engine_speedup"]
    if not rows:
        return []

    checks = []
    host_cores = os.cpu_count() or 1
    shards = 0
    for r in rows:
        sims = r.get("sim_s") or {}
        shards = max(shards, int(sims.get("shards") or 0))
        checks.append({
            "series": f"engine-identical {r.get('name', '?')}",
            "ok": sims.get("identical") == 1,
        })
    enforce = shards > 0 and host_cores >= shards

    best = None
    for r in rows:
        sims = r.get("sim_s") or {}
        speedup = sims.get("speedup")
        if speedup is None:
            continue
        nprocs = int(sims.get("nprocs") or 0)
        if nprocs >= ENGINE_HEADLINE_NPROCS:
            best = speedup if best is None else max(best, speedup)
        checks.append({
            "series": f"engine-parity {r.get('name', '?')}",
            "speedup": speedup,
            "enforced": enforce,
            "ok": (not enforce) or speedup >= 1.0,
        })
    checks.append({
        "series": "engine-headline-speedup",
        "host_cores": host_cores,
        "shards": shards,
        "enforced": enforce,
        "best_speedup": best,
        "limit": ENGINE_HEADLINE_SPEEDUP,
        "ok": (not enforce) or (best is not None
                                and best >= ENGINE_HEADLINE_SPEEDUP),
    })
    return checks


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional wall-clock regression")
    ap.add_argument("--scaling-only", action="store_true",
                    help="skip the wall-clock comparison; only run the "
                         "directory-memory guard on CURRENT's scaling rows")
    ap.add_argument("--critpath-only", action="store_true",
                    help="skip the wall-clock comparison; only run the "
                         "recorder-overhead guard on CURRENT's "
                         "critpath_overhead rows")
    ap.add_argument("--serving-only", action="store_true",
                    help="skip the wall-clock comparison; only run the "
                         "adaptation guard on CURRENT's serving rows")
    ap.add_argument("--combinator-only", action="store_true",
                    help="skip the wall-clock comparison; only run the "
                         "combinator identity + dispatch-overhead guard on "
                         "CURRENT's combinator rows")
    ap.add_argument("--engine-only", action="store_true",
                    help="parallel-engine guard: with BASELINE, require "
                         "identical simulated output on shared rows; "
                         "without, check CURRENT's engine_speedup rows "
                         "(speedup gates only when host cores >= shards)")
    ap.add_argument("--report", help="write a JSON verdict artifact here")
    args = ap.parse_args()

    cur = load(args.current)

    scaling_checks = scaling_guard(cur)
    scaling_ok = all(c["ok"] for c in scaling_checks)
    for c in scaling_checks:
        print(f"bench_guard: scaling {c['series']}: "
              f"{c['words_per_region'][0]:.2f} -> "
              f"{c['words_per_region'][1]:.2f} words/region over "
              f"{c['nprocs'][0]} -> {c['nprocs'][1]} procs "
              f"(slope {c['slope']:.4f}, limit {SCALING_SLOPE_LIMIT}, "
              f"{'OK' if c['ok'] else 'O(nprocs) REGRESSION'})")

    critpath_checks = critpath_guard(cur)
    critpath_ok = all(c["ok"] for c in critpath_checks)
    for c in critpath_checks:
        print(f"bench_guard: critpath recording: off {c['off_wall_s']:.3f}s, "
              f"on {c['on_wall_s']:.3f}s "
              f"(limit {c['limit_wall_s']:.3f}s = off x "
              f"{1.0 + CRITPATH_TOLERANCE:.2f} + {CRITPATH_FLOOR_S}s floor, "
              f"{'OK' if c['ok'] else 'OVERHEAD REGRESSION'})")

    serving_checks = serving_guard(cur)
    serving_ok = all(c["ok"] for c in serving_checks)
    for c in serving_checks:
        if c["series"] == "serving-adaptive-vs-best-fixed":
            ratio = c["ratio"]
            print(f"bench_guard: serving adaptive "
                  f"{c['adaptive_messages']:.0f} msgs vs best fixed "
                  f"{c['best_fixed']} {c['best_fixed_messages']:.0f} "
                  f"(ratio {ratio:.3f}, limit {SERVING_RATIO_LIMIT}, "
                  f"{'OK' if c['ok'] else 'ADAPTATION REGRESSION'})"
                  if ratio is not None else
                  "bench_guard: serving ratio unavailable (FAIL)")
        elif not c["ok"]:
            print(f"bench_guard: serving check {c['series']}: FAIL")

    combinator_checks = combinator_guard(cur)
    combinator_ok = all(c["ok"] for c in combinator_checks)
    for c in combinator_checks:
        series = c["series"]
        if series.startswith("combinator-identity"):
            print(f"bench_guard: {series}: "
                  f"{'OK' if c['ok'] else 'DIVERGED FROM HAND-WRITTEN'}")
        elif series == "combinator-dispatch-wall":
            print(f"bench_guard: combinator dispatch: hand "
                  f"{c['hand_wall_s']:.3f}s, dsl {c['dsl_wall_s']:.3f}s "
                  f"(limit {c['limit_wall_s']:.3f}s = hand x "
                  f"{1.0 + COMBINATOR_TOLERANCE:.2f} + "
                  f"{COMBINATOR_FLOOR_S}s floor, "
                  f"{'OK' if c['ok'] else 'DISPATCH REGRESSION'})")
        elif not c["ok"]:
            print(f"bench_guard: combinator check {series}: FAIL")

    if args.scaling_only:
        if not scaling_checks:
            sys.exit("bench_guard: --scaling-only but no scaling rows "
                     "in current report")
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"ok": scaling_ok, "scaling": scaling_checks},
                          f, indent=2)
        sys.exit(0 if scaling_ok else 1)

    if args.critpath_only:
        if not critpath_checks:
            sys.exit("bench_guard: --critpath-only but no critpath_overhead "
                     "rows in current report")
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"ok": critpath_ok, "critpath": critpath_checks},
                          f, indent=2)
        sys.exit(0 if critpath_ok else 1)

    if args.serving_only:
        if not serving_checks:
            sys.exit("bench_guard: --serving-only but no serving rows "
                     "in current report")
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"ok": serving_ok, "serving": serving_checks},
                          f, indent=2)
        sys.exit(0 if serving_ok else 1)

    if args.combinator_only:
        if not combinator_checks:
            sys.exit("bench_guard: --combinator-only but no combinator "
                     "rows in current report")
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"ok": combinator_ok,
                           "combinator": combinator_checks}, f, indent=2)
        sys.exit(0 if combinator_ok else 1)

    if args.engine_only:
        checks = []
        if args.baseline is not None:
            checks += engine_identity_guard(cur, load(args.baseline))
        checks += engine_speedup_guard(cur)
        if not checks:
            sys.exit("bench_guard: --engine-only but no engine_speedup "
                     "rows in current report and no baseline to compare")
        engine_ok = all(c["ok"] for c in checks)
        for c in checks:
            series = c["series"]
            if series.startswith("engine-identity"):
                if c["ok"]:
                    continue
                print(f"bench_guard: {series}: DIVERGED")
                for d in c["diffs"]:
                    print(f"    {d}")
            elif series.startswith("engine-identical"):
                print(f"bench_guard: {series}: "
                      f"{'OK' if c['ok'] else 'DIVERGED'}")
            elif series.startswith("engine-parity"):
                tag = "" if c["enforced"] else " (informational: host too small)"
                print(f"bench_guard: {series}: speedup {c['speedup']:.2f}x"
                      f"{tag} {'OK' if c['ok'] else 'SLOWER THAN SEQ'}")
            else:
                best = c["best_speedup"]
                tag = ("" if c["enforced"]
                       else f" (informational: {c['host_cores']} host "
                            f"cores < {c['shards']} shards)")
                print(f"bench_guard: engine headline: best speedup at "
                      f">= {ENGINE_HEADLINE_NPROCS} nodes "
                      f"{best if best is None else f'{best:.2f}x'} "
                      f"(limit {c['limit']}x){tag} "
                      f"{'OK' if c['ok'] else 'BELOW TARGET'}")
        n_ident = sum(1 for c in checks
                      if c["series"].startswith("engine-identity"))
        if n_ident:
            n_bad = sum(1 for c in checks
                        if c["series"].startswith("engine-identity")
                        and not c["ok"])
            print(f"bench_guard: engine identity: {n_ident} shared rows, "
                  f"{n_bad} diverged")
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"ok": engine_ok, "engine": checks}, f, indent=2)
        sys.exit(0 if engine_ok else 1)

    if args.baseline is None:
        ap.error("baseline report required unless --scaling-only")
    base = load(args.baseline)

    cur_total = cur.get("total_wall_s")
    base_total = base.get("total_wall_s")
    if cur_total is None or base_total is None:
        sys.exit("bench_guard: reports lack total_wall_s")

    limit = base_total * (1.0 + args.tolerance)
    ok = cur_total <= limit

    cur_rows = rows_by_key(cur)
    base_rows = rows_by_key(base)

    row_diffs = []
    sim_warnings = []
    for key in sorted(set(cur_rows) | set(base_rows)):
        c = cur_rows.get(key)
        b = base_rows.get(key)
        exp, name = key
        if c is None or b is None:
            row_diffs.append({
                "experiment": exp, "name": name,
                "status": "missing-in-current" if c is None else "new",
                "baseline_wall_s": b and b.get("wall_s"),
                "current_wall_s": c and c.get("wall_s"),
            })
            continue
        bw, cw = b.get("wall_s", 0.0), c.get("wall_s", 0.0)
        row_diffs.append({
            "experiment": exp, "name": name, "status": "compared",
            "baseline_wall_s": bw, "current_wall_s": cw,
            "ratio": (cw / bw) if bw > 0 else None,
        })
        for sim_key, bv in (b.get("sim_s") or {}).items():
            cv = (c.get("sim_s") or {}).get(sim_key)
            if cv is not None and cv != bv:
                sim_warnings.append(
                    f"{exp}/{name}: sim_s[{sim_key}] {bv!r} -> {cv!r}")

    verdict = {
        "ok": ok and scaling_ok and critpath_ok and serving_ok,
        "wall_ok": ok,
        "scaling": scaling_checks,
        "critpath": critpath_checks,
        "serving": serving_checks,
        "tolerance": args.tolerance,
        "baseline_total_wall_s": base_total,
        "current_total_wall_s": cur_total,
        "limit_wall_s": limit,
        "rows": row_diffs,
        "sim_warnings": sim_warnings,
    }
    if args.report:
        with open(args.report, "w") as f:
            json.dump(verdict, f, indent=2)

    print(f"bench_guard: total wall {cur_total:.3f}s vs baseline "
          f"{base_total:.3f}s (limit {limit:.3f}s, "
          f"{'OK' if ok else 'REGRESSION'})")
    for w in sim_warnings:
        print(f"  warning: simulated time changed: {w}")
    if not ok:
        print(f"  {'experiment/row':<40} {'base_s':>9} {'cur_s':>9} "
              f"{'ratio':>7}")
        for d in row_diffs:
            label = f"{d['experiment']}/{d['name']}"
            if d["status"] != "compared":
                print(f"  {label:<40} {d['status']}")
                continue
            ratio = d["ratio"]
            print(f"  {label:<40} {d['baseline_wall_s']:>9.3f} "
                  f"{d['current_wall_s']:>9.3f} "
                  f"{ratio:>7.2f}" if ratio is not None else
                  f"  {label:<40} (no baseline wall)")
        sys.exit(1)
    if not scaling_ok or not critpath_ok or not serving_ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
