(* The data-race-checking protocol (paper §2.1 cites Larus et al.'s LCM):
   full access control means a protocol can observe *every* access, so a
   debugging protocol slots in with Ace_ChangeProtocol and no application
   changes. This program runs one racy epoch and one clean epoch and prints
   the reports.

     dune exec examples/race_detect.exe
*)

module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops

let () =
  let rt = Runtime.create ~nprocs:4 () in
  Ace_protocols.Proto_lib.register_all rt;
  let space = (Runtime.new_space rt "SC").Ace_runtime.Protocol.sid in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space ~len:1);
      Ops.barrier ctx ~space;
      let h = Ops.map ctx (Ops.global_id ctx ~space ~owner:0 ~seq:0) in

      (* switch the whole space to the race checker *)
      Ops.change_protocol ctx ~space "RACE_CHECK";

      (* epoch 0: a real race — unsynchronized write/read *)
      if me = 0 then begin
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 1.;
        Ops.end_write ctx h
      end
      else begin
        Ops.start_read ctx h;
        ignore (Ops.data ctx h).(0);
        Ops.end_read ctx h
      end;
      Ops.barrier ctx ~space;

      (* epoch 1: the same accesses, properly locked — no report *)
      Ops.lock ctx h;
      Ops.start_write ctx h;
      (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
      Ops.end_write ctx h;
      Ops.unlock ctx h;
      Ops.barrier ctx ~space);
  let reports = Ace_protocols.Proto_race_check.reports (Runtime.space rt space) in
  Printf.printf "race reports: %d\n" (List.length reports);
  List.iter
    (fun r ->
      let open Ace_protocols.Proto_race_check in
      let pp (a : access) =
        Printf.sprintf "%s by node %d%s"
          (if a.writer then "write" else "read")
          a.node
          (if a.locked then " (locked)" else "")
      in
      Printf.printf "  region %d, epoch %d, nodes [%s]\n    first racy pair: %s / %s\n"
        r.rid r.epoch
        (String.concat "; " (List.map string_of_int r.nodes))
        (pp r.first) (pp r.second))
    reports;
  print_endline "(expected: exactly one report, for epoch 0, write by node 0 racing a read)"
