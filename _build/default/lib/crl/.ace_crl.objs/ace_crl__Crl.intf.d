lib/crl/crl.mli: Ace_engine Ace_net Ace_region
