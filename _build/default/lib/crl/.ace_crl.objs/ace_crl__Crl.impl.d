lib/crl/crl.ml: Ace_engine Ace_net Ace_region
