(** Deterministic seeded pseudo-random numbers (splitmix64).

    The simulator must never consult wall-clock entropy; every randomized
    workload generator takes one of these. *)

type t

val create : int -> t

(** Uniform in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** An independent stream derived from this one. *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
