(** A deterministic priority queue of timestamped thunks.

    Events are ordered by timestamp; ties are broken by insertion order, so a
    simulation run is bit-reproducible. *)

type t

val create : unit -> t

(** [push t ~time f] schedules [f] to run at virtual time [time].
    Raises [Invalid_argument] if [time] is negative or not finite. *)
val push : t -> time:float -> (unit -> unit) -> unit

(** [pop t] removes and returns the earliest event, or [None] if empty. *)
val pop : t -> (float * (unit -> unit)) option

val is_empty : t -> bool
val length : t -> int

(** Timestamp of the earliest pending event. *)
val peek_time : t -> float option
