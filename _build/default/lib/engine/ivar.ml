type 'a state =
  | Empty of (time:float -> 'a -> unit) list (* waiters, reverse order *)
  | Full of float * 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill t ~time v =
  match t.state with
  | Full _ -> failwith "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Full (time, v);
      List.iter (fun f -> f ~time v) (List.rev waiters)

let peek t = match t.state with Empty _ -> None | Full (time, v) -> Some (time, v)
let is_filled t = match t.state with Empty _ -> false | Full _ -> true

let on_fill t f =
  match t.state with
  | Full (time, v) -> f ~time v
  | Empty waiters -> t.state <- Empty (f :: waiters)
