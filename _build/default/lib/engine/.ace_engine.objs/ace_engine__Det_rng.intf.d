lib/engine/det_rng.mli:
