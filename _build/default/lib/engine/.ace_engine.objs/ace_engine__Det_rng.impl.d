lib/engine/det_rng.ml: Array Int64
