lib/engine/machine.ml: Array Effect Event_queue Float Ivar Printf Stats
