lib/engine/ivar.ml: List
