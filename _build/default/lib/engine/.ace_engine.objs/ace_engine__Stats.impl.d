lib/engine/stats.ml: Format Hashtbl List String
