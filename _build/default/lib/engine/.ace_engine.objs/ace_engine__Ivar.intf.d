lib/engine/ivar.mli:
