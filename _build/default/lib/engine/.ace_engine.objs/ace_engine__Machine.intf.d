lib/engine/machine.mli: Ivar Stats
