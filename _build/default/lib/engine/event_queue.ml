type entry = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : entry array; (* binary min-heap on (time, seq) *)
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { time = 0.; seq = -1; thunk = ignore }

let create () = { heap = Array.make 64 dummy; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time thunk =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- { time; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some (e.time, e.thunk)
  end

let is_empty t = t.size = 0
let length t = t.size
let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
