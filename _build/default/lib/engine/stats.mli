(** Named counters accumulated during a simulation run. *)

type t

val create : unit -> t
val add : t -> string -> float -> unit
val incr : t -> string -> unit
val get : t -> string -> float
val reset : t -> unit

(** All counters, sorted by name. *)
val to_list : t -> (string * float) list

val pp : Format.formatter -> t -> unit
