type t = (string, float ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t name v =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add t name (ref v)

let incr t name = add t name 1.
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0.
let reset t = Hashtbl.reset t

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %.0f@." k v) (to_list t)
