(* Barnes-Hut N-body (SPLASH version in the paper; 16,384 bodies there,
   CLI-scalable here). Each body is one region holding position and mass —
   the data other processors need. Every step each processor reads all body
   positions, builds a local octree replica, computes forces for its own
   bodies and writes their new positions.

   The custom protocol of Fig. 7b is a dynamic update protocol for bodies:
   after the first step every processor shares every body, so an owner's
   write pushes the new position to all consumers instead of invalidating
   them and forcing N blocking refetches per processor per step. *)

module Rng = Ace_engine.Det_rng

type config = {
  n_bodies : int;
  steps : int;
  theta : float;
  dt : float;
  eps : float;
  seed : int;
  protocol : string option; (* e.g. Some "DYN_UPDATE" *)
}

let default =
  {
    n_bodies = 512;
    steps = 4;
    theta = 0.5;
    dt = 0.025;
    eps = 0.5;
    seed = 7;
    protocol = None;
  }

(* Deterministic initial conditions: bodies uniform in a unit sphere with a
   slight rotational velocity, equal masses. *)
let init cfg =
  let n = cfg.n_bodies in
  let rng = Rng.create cfg.seed in
  let px = Array.make n 0.
  and py = Array.make n 0.
  and pz = Array.make n 0.
  and vx = Array.make n 0.
  and vy = Array.make n 0.
  and vz = Array.make n 0.
  and m = Array.make n (1. /. float_of_int n) in
  for i = 0 to n - 1 do
    let rec pick () =
      let x = (2. *. Rng.float rng) -. 1.
      and y = (2. *. Rng.float rng) -. 1.
      and z = (2. *. Rng.float rng) -. 1. in
      if (x *. x) +. (y *. y) +. (z *. z) <= 1. then (x, y, z) else pick ()
    in
    let x, y, z = pick () in
    px.(i) <- x;
    py.(i) <- y;
    pz.(i) <- z;
    vx.(i) <- -0.1 *. y;
    vy.(i) <- 0.1 *. x;
    vz.(i) <- 0.
  done;
  (px, py, pz, vx, vy, vz, m)

let step cfg ~px ~py ~pz ~vx ~vy ~vz ~m ~lo ~hi =
  (* leapfrog-ish update of bodies [lo, hi) against the full tree; returns
     interaction count (for cycle accounting) and the new positions. *)
  let t = Bh_tree.build ~px ~py ~pz ~m (Array.length px) in
  let interactions = ref 0 in
  let nx = Array.make (hi - lo) 0.
  and ny = Array.make (hi - lo) 0.
  and nz = Array.make (hi - lo) 0. in
  for b = lo to hi - 1 do
    let ax, ay, az, c = Bh_tree.force t ~px ~py ~pz ~theta:cfg.theta ~eps:cfg.eps b in
    interactions := !interactions + c;
    vx.(b) <- vx.(b) +. (ax *. cfg.dt);
    vy.(b) <- vy.(b) +. (ay *. cfg.dt);
    vz.(b) <- vz.(b) +. (az *. cfg.dt);
    nx.(b - lo) <- px.(b) +. (vx.(b) *. cfg.dt);
    ny.(b - lo) <- py.(b) +. (vy.(b) *. cfg.dt);
    nz.(b - lo) <- pz.(b) +. (vz.(b) *. cfg.dt)
  done;
  (nx, ny, nz, !interactions)

(* Sequential reference. *)
let reference cfg =
  let px, py, pz, vx, vy, vz, m = init cfg in
  let n = cfg.n_bodies in
  for _ = 1 to cfg.steps do
    let nx, ny, nz, _ = step cfg ~px ~py ~pz ~vx ~vy ~vz ~m ~lo:0 ~hi:n in
    Array.blit nx 0 px 0 n;
    Array.blit ny 0 py 0 n;
    Array.blit nz 0 pz 0 n
  done;
  (px, py, pz)

let checksum (px, py, pz) =
  let s = ref 0. in
  Array.iter (fun v -> s := !s +. v) px;
  Array.iter (fun v -> s := !s +. v) py;
  Array.iter (fun v -> s := !s +. v) pz;
  !s

(* ~100 cycles per body-body / body-cell interaction on the simulated SPARC
   (3 subs, 6 multiply-adds, and a software-assisted sqrt and divide). *)
let interaction_cycles = 100.

let n_spaces = 1

module Make (D : Ace_region.Dsm_intf.S) = struct

  let run cfg (ctx : D.ctx) =
    let me = D.me ctx and nprocs = D.nprocs ctx in
    let n = cfg.n_bodies in
    let px, py, pz, vx, vy, vz, m = init cfg in
    let lo = me * n / nprocs and hi = (me + 1) * n / nprocs in
    (* one region per body: x, y, z, mass *)
    let my_rids =
      Array.init (hi - lo) (fun k ->
          let h = D.alloc ctx ~space:0 ~len:4 in
          let b = lo + k in
          D.start_write ctx h;
          let d = D.data ctx h in
          d.(0) <- px.(b);
          d.(1) <- py.(b);
          d.(2) <- pz.(b);
          d.(3) <- m.(b);
          D.end_write ctx h;
          D.rid h)
    in
    let parts = D.allgather ctx my_rids in
    let rid_of = Array.make n (-1) in
    Array.iteri
      (fun p part ->
        let plo = p * n / nprocs in
        Array.iteri (fun k r -> rid_of.(plo + k) <- r) part)
      parts;
    let handles = Array.map (fun r -> D.map ctx r) rid_of in
    D.barrier ctx ~space:0;
    (match cfg.protocol with
    | Some p -> D.change_protocol ctx ~space:0 p
    | None -> ());
    for _ = 1 to cfg.steps do
      (* read all bodies *)
      for b = 0 to n - 1 do
        let h = handles.(b) in
        D.start_read ctx h;
        let d = D.data ctx h in
        px.(b) <- d.(0);
        py.(b) <- d.(1);
        pz.(b) <- d.(2);
        m.(b) <- d.(3);
        D.end_read ctx h
      done;
      (* local tree + forces for own bodies *)
      let nx, ny, nz, inter = step cfg ~px ~py ~pz ~vx ~vy ~vz ~m ~lo ~hi in
      D.work ctx (interaction_cycles *. float_of_int inter);
      (* publish own new positions *)
      for b = lo to hi - 1 do
        let h = handles.(b) in
        D.start_write ctx h;
        let d = D.data ctx h in
        d.(0) <- nx.(b - lo);
        d.(1) <- ny.(b - lo);
        d.(2) <- nz.(b - lo);
        D.end_write ctx h
      done;
      D.barrier ctx ~space:0
    done;
    if me = 0 then begin
      let s = ref 0. in
      for b = 0 to n - 1 do
        let h = handles.(b) in
        D.start_read ctx h;
        let d = D.data ctx h in
        s := !s +. d.(0) +. d.(1) +. d.(2);
        D.end_read ctx h
      done;
      !s
    end
    else 0.
end
