(* Travelling Salesman (CRL 1.0 distribution, 12 cities in the paper).
   Workers pull tour-prefix jobs off a shared counter and run branch and
   bound with a shared best bound.

   The custom protocol of Fig. 7b is COUNTER on the job counter: under SC
   every counter bump migrates the region exclusively (a three-hop recall
   plus invalidations per increment, serialized across all workers); the
   counter protocol turns it into a home-serialized read-modify-write. *)

type config = {
  core : Tsp_core.config;
  counter_protocol : string option; (* Some "COUNTER" *)
  seed_unused : unit;
}

let default =
  { core = { Tsp_core.n_cities = 10; seed = 3 }; counter_protocol = None; seed_unused = () }

let n_spaces = 2

module Make (D : Ace_region.Dsm_intf.S) = struct
  (* space 0: the job counter; space 1: the best-tour bound *)

  let run cfg (ctx : D.ctx) =
    let me = D.me ctx in
    let d = Tsp_core.generate cfg.core in
    let n = cfg.core.Tsp_core.n_cities in
    let jobs = Tsp_core.jobs cfg.core in
    let njobs = Array.length jobs in
    let rids =
      D.bcast ctx ~root:0 (fun () ->
          let counter = D.alloc ctx ~space:0 ~len:1 in
          let best = D.alloc ctx ~space:1 ~len:1 in
          D.start_write ctx best;
          (D.data ctx best).(0) <- Tsp_core.greedy_bound d;
          D.end_write ctx best;
          [| D.rid counter; D.rid best |])
    in
    let counter = D.map ctx rids.(0) and best = D.map ctx rids.(1) in
    D.barrier ctx ~space:0;
    (match cfg.counter_protocol with
    | Some p -> D.change_protocol ctx ~space:0 p
    | None -> ());
    let lb_cycles = 8. *. float_of_int (n * n) in
    let next_job () =
      D.start_write ctx counter;
      let v = (D.data ctx counter).(0) in
      (D.data ctx counter).(0) <- v +. 1.;
      D.end_write ctx counter;
      int_of_float v
    in
    let rec work_loop () =
      let j = next_job () in
      if j < njobs then begin
        D.start_read ctx best;
        let bound = (D.data ctx best).(0) in
        D.end_read ctx best;
        let my_best = ref bound and nodes = ref 0 in
        Tsp_core.run_job d ~job:jobs.(j) ~best:my_best ~nodes;
        D.work ctx (lb_cycles *. float_of_int !nodes);
        if !my_best < bound then begin
          (* improved: publish under the bound's lock *)
          D.lock ctx best;
          D.start_write ctx best;
          if !my_best < (D.data ctx best).(0) then
            (D.data ctx best).(0) <- !my_best;
          D.end_write ctx best;
          D.unlock ctx best
        end;
        work_loop ()
      end
    in
    work_loop ();
    D.barrier ctx ~space:0;
    if me = 0 then begin
      D.start_read ctx best;
      let v = (D.data ctx best).(0) in
      D.end_read ctx best;
      v
    end
    else 0.
end
