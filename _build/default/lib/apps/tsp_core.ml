(* Travelling Salesman kernels: deterministic instance generation and the
   branch-and-bound search shared by the SPMD program and the sequential
   reference (CRL 1.0's TSP solves 12-city instances the same way). *)

module Rng = Ace_engine.Det_rng

type config = { n_cities : int; seed : int }

let generate cfg =
  let rng = Rng.create cfg.seed in
  let xs = Array.init cfg.n_cities (fun _ -> Rng.float rng)
  and ys = Array.init cfg.n_cities (fun _ -> Rng.float rng) in
  let n = cfg.n_cities in
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
      d.(i).(j) <- sqrt ((dx *. dx) +. (dy *. dy))
    done
  done;
  d

(* Greedy nearest-neighbour tour, the initial upper bound. *)
let greedy_bound d =
  let n = Array.length d in
  let visited = Array.make n false in
  visited.(0) <- true;
  let total = ref 0. and cur = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) and bestd = ref infinity in
    for j = 0 to n - 1 do
      if (not visited.(j)) && d.(!cur).(j) < !bestd then begin
        best := j;
        bestd := d.(!cur).(j)
      end
    done;
    visited.(!best) <- true;
    total := !total +. !bestd;
    cur := !best
  done;
  !total +. d.(!cur).(0)

(* Cheap admissible lower bound: current length + for every unvisited city
   (and the current endpoint) its cheapest remaining outgoing edge. *)
let lower_bound d ~visited ~cur ~len =
  let n = Array.length d in
  let acc = ref len in
  let cheapest_from i =
    let m = ref infinity in
    for j = 0 to n - 1 do
      if j <> i && ((not visited.(j)) || j = 0) && d.(i).(j) < !m then
        m := d.(i).(j)
    done;
    !m
  in
  acc := !acc +. cheapest_from cur;
  for j = 1 to n - 1 do
    if not visited.(j) then acc := !acc +. cheapest_from j
  done;
  !acc

(* Depth-first branch and bound below a fixed tour prefix. [best] is a
   mutable cell read for pruning and improved in place; [nodes] counts
   expansions (for cycle accounting). Returns unit; the result is in
   [best]. *)
let search d ~visited ~cur ~len ~depth ~best ~nodes =
  let n = Array.length d in
  let rec go cur len depth =
    incr nodes;
    if depth = n then begin
      let total = len +. d.(cur).(0) in
      if total < !best then best := total
    end
    else if lower_bound d ~visited ~cur ~len < !best then
      for j = 1 to n - 1 do
        if not visited.(j) then begin
          visited.(j) <- true;
          go j (len +. d.(cur).(j)) (depth + 1);
          visited.(j) <- false
        end
      done
  in
  go cur len depth

(* Jobs: tour prefixes 0 -> a -> b -> c (the distribution unit of the
   parallel solver; fine-grained so the job counter is exercised). *)
let jobs cfg =
  let n = cfg.n_cities in
  let out = ref [] in
  for a = n - 1 downto 1 do
    for b = n - 1 downto 1 do
      for c = n - 1 downto 1 do
        if a <> b && b <> c && a <> c then out := (a, b, c) :: !out
      done
    done
  done;
  Array.of_list !out

let run_job d ~job:(a, b, c) ~best ~nodes =
  let n = Array.length d in
  let visited = Array.make n false in
  visited.(0) <- true;
  visited.(a) <- true;
  visited.(b) <- true;
  visited.(c) <- true;
  let len = d.(0).(a) +. d.(a).(b) +. d.(b).(c) in
  if lower_bound d ~visited ~cur:c ~len < !best then
    search d ~visited ~cur:c ~len ~depth:4 ~best ~nodes

(* Sequential reference: optimal tour length. *)
let reference cfg =
  let d = generate cfg in
  let best = ref (greedy_bound d) in
  let nodes = ref 0 in
  Array.iter (fun job -> run_job d ~job ~best ~nodes) (jobs cfg);
  !best

let node_cycles = 60. (* bound computation per expanded node *)
