(* Blocked sparse Cholesky kernels (Rothberg's BSC in the paper; the Tk15.O
   input is proprietary-era Harwell-Boeing data, replaced per DESIGN.md by a
   deterministic banded sparse SPD generator with the same block structure).

   Blocks are dense [b x b] row-major float arrays; block (i, j) of the
   lower triangle exists iff i - j <= band. *)

module Rng = Ace_engine.Det_rng

type config = { nb : int; b : int; band : int; seed : int }

let block_exists cfg ~i ~j = i >= j && i - j <= cfg.band

(* Deterministic banded SPD matrix, as dense blocks of the lower triangle
   (keyed (i, j), i >= j). Diagonal dominance makes it SPD. *)
let generate cfg =
  let n = cfg.nb * cfg.b in
  let rng = Rng.create cfg.seed in
  let full = Array.make_matrix n n 0. in
  for r = 0 to n - 1 do
    for c = 0 to r do
      if (r / cfg.b) - (c / cfg.b) <= cfg.band then begin
        let v = Rng.float rng -. 0.5 in
        full.(r).(c) <- v;
        full.(c).(r) <- v
      end
    done
  done;
  for r = 0 to n - 1 do
    let s = ref 0. in
    for c = 0 to n - 1 do
      s := !s +. abs_float full.(r).(c)
    done;
    full.(r).(r) <- !s +. 1.
  done;
  let blocks = Hashtbl.create 64 in
  for i = 0 to cfg.nb - 1 do
    for j = 0 to i do
      if block_exists cfg ~i ~j then begin
        let blk = Array.make (cfg.b * cfg.b) 0. in
        for r = 0 to cfg.b - 1 do
          for c = 0 to cfg.b - 1 do
            blk.((r * cfg.b) + c) <- full.((i * cfg.b) + r).((j * cfg.b) + c)
          done
        done;
        Hashtbl.add blocks (i, j) blk
      end
    done
  done;
  blocks

(* In-place Cholesky of a diagonal block: A := L with L lower triangular,
   L L^T = A. Upper strictly-triangular entries are zeroed. *)
let potrf ~b a =
  for j = 0 to b - 1 do
    let d = ref a.((j * b) + j) in
    for k = 0 to j - 1 do
      d := !d -. (a.((j * b) + k) *. a.((j * b) + k))
    done;
    if !d <= 0. then failwith "potrf: not positive definite";
    let ljj = sqrt !d in
    a.((j * b) + j) <- ljj;
    for i = j + 1 to b - 1 do
      let s = ref a.((i * b) + j) in
      for k = 0 to j - 1 do
        s := !s -. (a.((i * b) + k) *. a.((j * b) + k))
      done;
      a.((i * b) + j) <- !s /. ljj
    done;
    for i = 0 to j - 1 do
      a.((i * b) + j) <- 0.
    done
  done

(* Triangular solve: A := A * L^{-T} for a subdiagonal block (L is the
   factored diagonal block). *)
let trsm ~b l a =
  for r = 0 to b - 1 do
    for j = 0 to b - 1 do
      let s = ref a.((r * b) + j) in
      for k = 0 to j - 1 do
        s := !s -. (a.((r * b) + k) *. l.((j * b) + k))
      done;
      a.((r * b) + j) <- !s /. l.((j * b) + j)
    done
  done

(* Update: C := C - A * B^T. *)
let gemm_nt ~b c a bt =
  for r = 0 to b - 1 do
    for j = 0 to b - 1 do
      let s = ref 0. in
      for k = 0 to b - 1 do
        s := !s +. (a.((r * b) + k) *. bt.((j * b) + k))
      done;
      c.((r * b) + j) <- c.((r * b) + j) -. !s
    done
  done

(* Simulated cycle costs at ~4 cycles per floating-point op (33 MHz SPARC,
   no fused ops). *)
let flops_per_cycle = 0.25
let potrf_cycles b = float_of_int (b * b * b) /. 3. /. flops_per_cycle
let trsm_cycles b = float_of_int (b * b * b) /. 1. /. flops_per_cycle /. 2.
let gemm_cycles b = float_of_int (2 * b * b * b) /. flops_per_cycle

(* Sequential blocked right-looking Cholesky over the block table. *)
let reference cfg =
  let blocks = generate cfg in
  let get i j = Hashtbl.find_opt blocks (i, j) in
  for k = 0 to cfg.nb - 1 do
    let akk = match get k k with Some blk -> blk | None -> assert false in
    potrf ~b:cfg.b akk;
    for i = k + 1 to cfg.nb - 1 do
      match get i k with Some aik -> trsm ~b:cfg.b akk aik | None -> ()
    done;
    for j = k + 1 to cfg.nb - 1 do
      match get j k with
      | None -> ()
      | Some ajk ->
          for i = j to cfg.nb - 1 do
            match (get i k, get i j) with
            | Some aik, Some aij -> gemm_nt ~b:cfg.b aij aik ajk
            | _ -> ()
          done
    done
  done;
  blocks

let checksum blocks =
  Hashtbl.fold
    (fun _ blk acc -> acc +. Array.fold_left (fun a v -> a +. abs_float v) 0. blk)
    blocks 0.

(* Verify L L^T = A on the band (used by tests). *)
let residual cfg ~l =
  let a = generate cfg in
  let n = cfg.nb * cfg.b in
  let getl r c =
    if c > r then 0.
    else
      let i = r / cfg.b and j = c / cfg.b in
      match Hashtbl.find_opt l (i, j) with
      | Some blk -> blk.(((r mod cfg.b) * cfg.b) + (c mod cfg.b))
      | None -> 0.
  in
  let geta r c =
    (* lower-triangle lookup: r >= c here *)
    match Hashtbl.find_opt a (r / cfg.b, c / cfg.b) with
    | Some blk -> blk.(((r mod cfg.b) * cfg.b) + (c mod cfg.b))
    | None -> 0.
  in
  let max_err = ref 0. in
  for r = 0 to n - 1 do
    for c = 0 to r do
      let s = ref 0. in
      for k = 0 to c do
        s := !s +. (getl r k *. getl c k)
      done;
      let expected =
        if (r / cfg.b) - (c / cfg.b) <= cfg.band then geta r c else 0.
      in
      let e = abs_float (!s -. expected) in
      if e > !max_err then max_err := e
    done
  done;
  !max_err
