(* Water (SPLASH lineage; 512 molecules, 3 steps in the paper). Each step
   alternates an intra-molecular phase (pure local vibration updates of a
   processor's own molecules) with an inter-molecular phase (pairwise cutoff
   forces, accumulated into remote molecules under their region locks).

   The paper's §2.2/§5.2 protocol schedule — and the reason
   Ace_ChangeProtocol exists — is reproduced here: a NULL protocol during
   the intra phase (zero coherence overhead on data that is processor-local
   by phase structure) and a pipelined-writes protocol during the inter
   phase. Neither protocol would be correct for the whole program; switching
   between them yields the paper's ~2x over plain SC. *)

type config = {
  core : Water_core.config;
  (* None = plain SC throughout; Some (intra, inter) switches per phase *)
  phase_protocols : (string * string) option;
}

let default =
  {
    core =
      {
        Water_core.n_mol = 128;
        steps = 3;
        dt = 0.002;
        cutoff = 2.5;
        box = 6.0;
        intra_sweeps = 40;
        seed = 13;
      };
    phase_protocols = None;
  }

let n_spaces = 1

module Make (D : Ace_region.Dsm_intf.S) = struct

  let run cfg (ctx : D.ctx) =
    let c = cfg.core in
    let me = D.me ctx and nprocs = D.nprocs ctx in
    let n = c.Water_core.n_mol in
    let mols = Water_core.init c in
    let lo = me * n / nprocs and hi = (me + 1) * n / nprocs in
    let my_rids =
      Array.init (hi - lo) (fun k ->
          let h = D.alloc ctx ~space:0 ~len:Water_core.region_len in
          D.start_write ctx h;
          Array.blit mols.(lo + k) 0 (D.data ctx h) 0 Water_core.region_len;
          D.end_write ctx h;
          D.rid h)
    in
    let parts = D.allgather ctx my_rids in
    let rid_of = Array.make n (-1) in
    Array.iteri
      (fun p part ->
        let plo = p * n / nprocs in
        Array.iteri (fun k r -> rid_of.(plo + k) <- r) part)
      parts;
    let handles = Array.map (fun r -> D.map ctx r) rid_of in
    D.barrier ctx ~space:0;
    let to_intra () =
      match cfg.phase_protocols with
      | Some (intra, _) -> D.change_protocol ctx ~space:0 intra
      | None -> D.barrier ctx ~space:0
    in
    let to_inter () =
      match cfg.phase_protocols with
      | Some (_, inter) -> D.change_protocol ctx ~space:0 inter
      | None -> D.barrier ctx ~space:0
    in
    let positions = Array.make_matrix n 3 0. in
    let fbuf = Array.make_matrix n 3 0. in
    for _ = 1 to c.Water_core.steps do
      (* intra phase: own molecules only *)
      to_intra ();
      (* Each vibration sweep is a separate access section, as the original
         program's inner loop would generate — this is exactly the per-access
         overhead the NULL protocol removes in the intra phase. *)
      for b = lo to hi - 1 do
        let h = handles.(b) in
        for _ = 1 to c.Water_core.intra_sweeps do
          D.start_write ctx h;
          Water_core.intra { c with Water_core.intra_sweeps = 1 } (D.data ctx h);
          D.end_write ctx h;
          D.work ctx Water_core.intra_cycles_per_sweep
        done
      done;
      (* inter phase: pairwise forces, half-matrix owner-computes *)
      to_inter ();
      for b = 0 to n - 1 do
        fbuf.(b).(0) <- 0.;
        fbuf.(b).(1) <- 0.;
        fbuf.(b).(2) <- 0.
      done;
      for j = 0 to n - 1 do
        let h = handles.(j) in
        D.start_read ctx h;
        let d = D.data ctx h in
        positions.(j).(0) <- d.(0);
        positions.(j).(1) <- d.(1);
        positions.(j).(2) <- d.(2);
        D.end_read ctx h
      done;
      let touched = Array.make n false in
      for i = lo to hi - 1 do
        for j = i + 1 to n - 1 do
          match Water_core.pair_force c positions.(i) positions.(j) with
          | None -> D.work ctx 8. (* distance check only *)
          | Some (fx, fy, fz) ->
              D.work ctx Water_core.pair_cycles;
              fbuf.(i).(0) <- fbuf.(i).(0) +. fx;
              fbuf.(i).(1) <- fbuf.(i).(1) +. fy;
              fbuf.(i).(2) <- fbuf.(i).(2) +. fz;
              fbuf.(j).(0) <- fbuf.(j).(0) -. fx;
              fbuf.(j).(1) <- fbuf.(j).(1) -. fy;
              fbuf.(j).(2) <- fbuf.(j).(2) -. fz;
              touched.(i) <- true;
              touched.(j) <- true
        done
      done;
      (* publish accumulated contributions molecule by molecule (the
         pipelined writes) *)
      for b = 0 to n - 1 do
        if touched.(b) then begin
          let h = handles.(b) in
          D.lock ctx h;
          D.start_write ctx h;
          let d = D.data ctx h in
          d.(6) <- d.(6) +. fbuf.(b).(0);
          d.(7) <- d.(7) +. fbuf.(b).(1);
          d.(8) <- d.(8) +. fbuf.(b).(2);
          D.end_write ctx h;
          D.unlock ctx h
        end
      done;
      D.barrier ctx ~space:0;
      (* move phase: own molecules *)
      to_intra ();
      for b = lo to hi - 1 do
        let h = handles.(b) in
        D.start_write ctx h;
        Water_core.advance c (D.data ctx h);
        D.end_write ctx h
      done
    done;
    (* leave the phase protocol so the final gather sees coherent data *)
    (match cfg.phase_protocols with
    | Some _ -> D.change_protocol ctx ~space:0 "SC"
    | None -> ());
    D.barrier ctx ~space:0;
    if me = 0 then begin
      let s = ref 0. in
      for b = 0 to n - 1 do
        let h = handles.(b) in
        D.start_read ctx h;
        let d = D.data ctx h in
        s := !s +. d.(0) +. d.(1) +. d.(2) +. d.(9) +. d.(10) +. d.(11);
        D.end_read ctx h
      done;
      !s
    end
    else 0.
end
