(* Blocked Sparse Cholesky (BSC). Block columns are distributed round-robin;
   each step factors the diagonal block and its column at the owner, then
   every owner of a later column applies the updates to its own blocks,
   reading the factored column's blocks remotely (bulk region transfers —
   the paper notes that with user-specified granularity the default protocol
   already gets bulk transfer "for free", which is why the custom protocol
   gain is marginal, Fig. 7b).

   The custom protocol is WRITE_ONCE: blocks are written only by their
   creating processor, so write-side coherence disappears entirely.

   Scheduling note: the paper's BSC uses a dynamic task queue; we use the
   standard barrier-per-elimination-step schedule, which preserves the
   communication pattern (column broadcast + owner-local updates) that the
   protocols act on. *)

type config = {
  core : Chol_core.config;
  steps_unused : unit; (* BSC runs to completion; no step parameter *)
  protocol : string option; (* Some "WRITE_ONCE" *)
}

let default =
  {
    core = { Chol_core.nb = 12; b = 16; band = 4; seed = 11 };
    steps_unused = ();
    protocol = None;
  }

let n_spaces = 1

module Make (D : Ace_region.Dsm_intf.S) = struct

  let run cfg (ctx : D.ctx) =
    let c = cfg.core in
    let me = D.me ctx and nprocs = D.nprocs ctx in
    let owner j = j mod nprocs in
    let blocks = Chol_core.generate c in
    (* Every block (i, j) is a region homed at owner(j). Owners allocate and
       initialize their columns, then rids are exchanged. *)
    let my_rids = ref [] in
    for j = c.Chol_core.nb - 1 downto 0 do
      if owner j = me then
        for i = c.Chol_core.nb - 1 downto j do
          if Chol_core.block_exists c ~i ~j then begin
            let h = D.alloc ctx ~space:0 ~len:(c.Chol_core.b * c.Chol_core.b) in
            D.start_write ctx h;
            let src = Hashtbl.find blocks (i, j) in
            Array.blit src 0 (D.data ctx h) 0 (Array.length src);
            D.end_write ctx h;
            my_rids := i :: j :: D.rid h :: !my_rids
          end
        done
    done;
    let parts = D.allgather ctx (Array.of_list !my_rids) in
    let rid_of = Hashtbl.create 64 in
    Array.iter
      (fun part ->
        let k = Array.length part / 3 in
        for t = 0 to k - 1 do
          Hashtbl.replace rid_of (part.(3 * t), part.((3 * t) + 1)) part.((3 * t) + 2)
        done)
      parts;
    let handle i j =
      match Hashtbl.find_opt rid_of (i, j) with
      | Some r -> Some (D.map ctx r)
      | None -> None
    in
    D.barrier ctx ~space:0;
    (match cfg.protocol with
    | Some p -> D.change_protocol ctx ~space:0 p
    | None -> ());
    let b = c.Chol_core.b in
    (* A scratch copy of a remote block read through the DSM. *)
    let read_block h =
      D.start_read ctx h;
      let copy = Array.copy (D.data ctx h) in
      D.end_read ctx h;
      copy
    in
    for k = 0 to c.Chol_core.nb - 1 do
      if owner k = me then begin
        (match handle k k with
        | Some hkk ->
            D.start_write ctx hkk;
            Chol_core.potrf ~b (D.data ctx hkk);
            D.end_write ctx hkk;
            D.work ctx (Chol_core.potrf_cycles b);
            let lkk = read_block hkk in
            for i = k + 1 to c.Chol_core.nb - 1 do
              match handle i k with
              | Some hik ->
                  D.start_write ctx hik;
                  Chol_core.trsm ~b lkk (D.data ctx hik);
                  D.end_write ctx hik;
                  D.work ctx (Chol_core.trsm_cycles b)
              | None -> ()
            done
        | None -> assert false)
      end;
      D.barrier ctx ~space:0;
      (* update phase: owner of column j applies L_ik L_jk^T *)
      for j = k + 1 to c.Chol_core.nb - 1 do
        if owner j = me then
          match handle j k with
          | None -> ()
          | Some hjk ->
              let ljk = read_block hjk in
              for i = j to c.Chol_core.nb - 1 do
                match (handle i k, handle i j) with
                | Some hik, Some hij ->
                    let lik = read_block hik in
                    D.start_write ctx hij;
                    Chol_core.gemm_nt ~b (D.data ctx hij) lik ljk;
                    D.end_write ctx hij;
                    D.work ctx (Chol_core.gemm_cycles b)
                | _ -> ()
              done
      done;
      D.barrier ctx ~space:0
    done;
    (* checksum over the factor *)
    if me = 0 then begin
      let s = ref 0. in
      Hashtbl.iter
        (fun (i, j) r ->
          ignore i;
          ignore j;
          let h = D.map ctx r in
          D.start_read ctx h;
          Array.iter (fun v -> s := !s +. abs_float v) (D.data ctx h);
          D.end_read ctx h)
        rid_of;
      !s
    end
    else 0.
end
