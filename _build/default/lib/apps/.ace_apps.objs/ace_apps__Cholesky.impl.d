lib/apps/cholesky.ml: Ace_region Array Chol_core Hashtbl
