lib/apps/barnes_hut.ml: Ace_engine Ace_region Array Bh_tree
