lib/apps/water_core.ml: Ace_engine Array Float
