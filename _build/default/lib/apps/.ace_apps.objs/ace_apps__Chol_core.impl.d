lib/apps/chol_core.ml: Ace_engine Array Hashtbl
