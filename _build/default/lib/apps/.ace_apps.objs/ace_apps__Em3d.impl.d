lib/apps/em3d.ml: Ace_engine Ace_region Array List
