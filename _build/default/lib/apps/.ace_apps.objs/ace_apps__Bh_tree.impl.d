lib/apps/bh_tree.ml: Array
