lib/apps/water.ml: Ace_region Array Water_core
