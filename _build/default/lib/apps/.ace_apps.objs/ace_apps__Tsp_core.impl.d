lib/apps/tsp_core.ml: Ace_engine Array
