lib/apps/tsp.ml: Ace_region Array Tsp_core
