(* Water kernels (SPLASH MDG lineage, simplified per DESIGN.md): molecules
   with positions, velocities, short-range pairwise forces with a cutoff
   (the inter-molecular phase) and a local vibrational update (the
   intra-molecular phase). The SPMD program and the sequential reference
   share these kernels, so coherent runs reproduce the reference bit for
   bit. *)

module Rng = Ace_engine.Det_rng

type config = {
  n_mol : int;
  steps : int;
  dt : float;
  cutoff : float;
  box : float;
  intra_sweeps : int; (* vibration sub-steps per step (local compute) *)
  seed : int;
}

(* Region layout per molecule (len 12):
   0-2 position, 3-5 velocity, 6-8 force accumulator, 9-11 internal mode. *)
let region_len = 12

let init cfg =
  let rng = Rng.create cfg.seed in
  Array.init cfg.n_mol (fun _ ->
      let m = Array.make region_len 0. in
      for k = 0 to 2 do
        m.(k) <- Rng.float rng *. cfg.box;
        m.(9 + k) <- (Rng.float rng -. 0.5) *. 0.1
      done;
      m)

(* Minimum-image distance in a periodic box. *)
let min_image cfg dx =
  let half = cfg.box /. 2. in
  if dx > half then dx -. cfg.box else if dx < -.half then dx +. cfg.box else dx

(* Lennard-Jones-ish pair force between molecules at p1 and p2; returns
   (fx, fy, fz) on p1 (p2 gets the negation) or None beyond the cutoff. *)
let pair_force cfg p1 p2 =
  let dx = min_image cfg (p1.(0) -. p2.(0))
  and dy = min_image cfg (p1.(1) -. p2.(1))
  and dz = min_image cfg (p1.(2) -. p2.(2)) in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > cfg.cutoff *. cfg.cutoff || r2 < 1e-12 then None
  else begin
    let inv2 = 1. /. r2 in
    let inv6 = inv2 *. inv2 *. inv2 in
    let f = 24. *. inv6 *. ((2. *. inv6) -. 1.) *. inv2 in
    (* clamp to keep the explicit integrator stable on random initial data *)
    let f = if f > 100. then 100. else if f < -100. then -100. else f in
    Some (f *. dx, f *. dy, f *. dz)
  end

(* Intra-molecular vibration: a damped harmonic update of the internal mode,
   [sweeps] times (pure local compute). *)
let intra cfg mol =
  for _ = 1 to cfg.intra_sweeps do
    for k = 9 to 11 do
      mol.(k) <- mol.(k) -. (0.1 *. cfg.dt *. mol.(k))
    done
  done

(* Position/velocity update from accumulated forces; clears the forces. *)
let advance cfg mol =
  for k = 0 to 2 do
    mol.(3 + k) <- mol.(3 + k) +. (mol.(6 + k) *. cfg.dt);
    let p = mol.(k) +. (mol.(3 + k) *. cfg.dt) in
    let p = Float.rem p cfg.box in
    mol.(k) <- (if p < 0. then p +. cfg.box else p);
    mol.(6 + k) <- 0.
  done

(* Sequential reference. *)
let reference cfg =
  let mols = init cfg in
  let n = cfg.n_mol in
  for _ = 1 to cfg.steps do
    Array.iter (intra cfg) mols;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match pair_force cfg mols.(i) mols.(j) with
        | None -> ()
        | Some (fx, fy, fz) ->
            mols.(i).(6) <- mols.(i).(6) +. fx;
            mols.(i).(7) <- mols.(i).(7) +. fy;
            mols.(i).(8) <- mols.(i).(8) +. fz;
            mols.(j).(6) <- mols.(j).(6) -. fx;
            mols.(j).(7) <- mols.(j).(7) -. fy;
            mols.(j).(8) <- mols.(j).(8) -. fz
      done
    done;
    Array.iter (advance cfg) mols
  done;
  mols

let checksum mols =
  Array.fold_left
    (fun acc m -> acc +. m.(0) +. m.(1) +. m.(2) +. m.(9) +. m.(10) +. m.(11))
    0. mols

let pair_cycles = 40.
let intra_cycles_per_sweep = 30.
