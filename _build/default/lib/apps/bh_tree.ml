(* Barnes-Hut octree (Barnes & Hut, Nature 1986): O(N log N) force
   calculation. Pure local computation over flat position/mass arrays; the
   SPMD application and the sequential reference share it. *)

type t = {
  (* nodes stored in growable arrays; node 0 is the root *)
  mutable n_nodes : int;
  mutable kind : int array; (* -1 empty, 0 internal, 1 leaf *)
  mutable body : int array; (* leaf: body index *)
  mutable child : int array; (* internal: 8 children, -1 = none *)
  mutable mass : float array;
  mutable comx : float array;
  mutable comy : float array;
  mutable comz : float array;
  mutable cx : float array; (* cell centers *)
  mutable cy : float array;
  mutable cz : float array;
  mutable half : float array; (* half-width *)
}

let create () =
  {
    n_nodes = 0;
    kind = Array.make 64 (-1);
    body = Array.make 64 (-1);
    child = Array.make 512 (-1);
    mass = Array.make 64 0.;
    comx = Array.make 64 0.;
    comy = Array.make 64 0.;
    comz = Array.make 64 0.;
    cx = Array.make 64 0.;
    cy = Array.make 64 0.;
    cz = Array.make 64 0.;
    half = Array.make 64 0.;
  }

let grow t =
  let n = Array.length t.kind in
  let g a fill =
    let b = Array.make (2 * n) fill in
    Array.blit a 0 b 0 n;
    b
  in
  t.kind <- g t.kind (-1);
  t.body <- g t.body (-1);
  t.mass <- g t.mass 0.;
  t.comx <- g t.comx 0.;
  t.comy <- g t.comy 0.;
  t.comz <- g t.comz 0.;
  t.cx <- g t.cx 0.;
  t.cy <- g t.cy 0.;
  t.cz <- g t.cz 0.;
  t.half <- g t.half 0.;
  let c = Array.make (2 * 8 * n) (-1) in
  Array.blit t.child 0 c 0 (8 * n);
  t.child <- c

let new_node t ~cx ~cy ~cz ~half =
  if t.n_nodes = Array.length t.kind then grow t;
  let i = t.n_nodes in
  t.n_nodes <- i + 1;
  t.kind.(i) <- -1;
  t.body.(i) <- -1;
  for k = 0 to 7 do
    t.child.((8 * i) + k) <- -1
  done;
  t.mass.(i) <- 0.;
  t.cx.(i) <- cx;
  t.cy.(i) <- cy;
  t.cz.(i) <- cz;
  t.half.(i) <- half;
  i

let octant t i x y z =
  (if x >= t.cx.(i) then 1 else 0)
  lor (if y >= t.cy.(i) then 2 else 0)
  lor if z >= t.cz.(i) then 4 else 0

(* Build a tree over bodies [0, n): positions in [px], [py], [pz], masses in
   [m]. The bounding cube is computed from the data. *)
let build ~px ~py ~pz ~m n =
  let t = create () in
  if n = 0 then t
  else begin
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to n - 1 do
      let update v =
        if v < !lo then lo := v;
        if v > !hi then hi := v
      in
      update px.(i);
      update py.(i);
      update pz.(i)
    done;
    let half = (0.5 *. (!hi -. !lo)) +. 1e-9 in
    let mid = 0.5 *. (!hi +. !lo) in
    let root = new_node t ~cx:mid ~cy:mid ~cz:mid ~half in
    let rec insert i b =
      match t.kind.(i) with
      | -1 ->
          t.kind.(i) <- 1;
          t.body.(i) <- b
      | 1 ->
          (* split: push existing body down, then re-insert b *)
          let b0 = t.body.(i) in
          t.kind.(i) <- 0;
          t.body.(i) <- -1;
          if
            abs_float (px.(b0) -. px.(b)) < 1e-12
            && abs_float (py.(b0) -. py.(b)) < 1e-12
            && abs_float (pz.(b0) -. pz.(b)) < 1e-12
          then begin
            (* coincident bodies: keep as a merged leaf to avoid infinite
               splitting; mass accounted in the com pass *)
            t.kind.(i) <- 1;
            t.body.(i) <- b0
          end
          else begin
            descend i b0;
            descend i b
          end
      | 0 -> descend i b
      | _ -> assert false
    and descend i b =
      let o = octant t i px.(b) py.(b) pz.(b) in
      let c = t.child.((8 * i) + o) in
      if c >= 0 then insert c b
      else begin
        let h = 0.5 *. t.half.(i) in
        let cx = t.cx.(i) +. (if o land 1 <> 0 then h else -.h) in
        let cy = t.cy.(i) +. (if o land 2 <> 0 then h else -.h) in
        let cz = t.cz.(i) +. if o land 4 <> 0 then h else -.h in
        let c = new_node t ~cx ~cy ~cz ~half:h in
        t.child.((8 * i) + o) <- c;
        insert c b
      end
    in
    for b = 0 to n - 1 do
      insert root b
    done;
    (* centre-of-mass pass *)
    let rec com i =
      match t.kind.(i) with
      | 1 ->
          let b = t.body.(i) in
          t.mass.(i) <- m.(b);
          t.comx.(i) <- px.(b);
          t.comy.(i) <- py.(b);
          t.comz.(i) <- pz.(b)
      | 0 ->
          let mm = ref 0. and sx = ref 0. and sy = ref 0. and sz = ref 0. in
          for k = 0 to 7 do
            let c = t.child.((8 * i) + k) in
            if c >= 0 then begin
              com c;
              mm := !mm +. t.mass.(c);
              sx := !sx +. (t.mass.(c) *. t.comx.(c));
              sy := !sy +. (t.mass.(c) *. t.comy.(c));
              sz := !sz +. (t.mass.(c) *. t.comz.(c))
            end
          done;
          t.mass.(i) <- !mm;
          if !mm > 0. then begin
            t.comx.(i) <- !sx /. !mm;
            t.comy.(i) <- !sy /. !mm;
            t.comz.(i) <- !sz /. !mm
          end
      | _ -> ()
    in
    com root;
    t
  end

(* Gravitational acceleration on body [b]; returns (ax, ay, az,
   interaction_count). [theta] is the opening angle, [eps] the softening. *)
let force t ~px ~py ~pz ~theta ~eps b =
  let ax = ref 0. and ay = ref 0. and az = ref 0. in
  let count = ref 0 in
  let xb = px.(b) and yb = py.(b) and zb = pz.(b) in
  let add m x y z =
    let dx = x -. xb and dy = y -. yb and dz = z -. zb in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. (eps *. eps) in
    let r = sqrt r2 in
    let f = m /. (r2 *. r) in
    ax := !ax +. (f *. dx);
    ay := !ay +. (f *. dy);
    az := !az +. (f *. dz);
    incr count
  in
  let rec visit i =
    if i >= 0 && t.kind.(i) >= 0 then
      match t.kind.(i) with
      | 1 -> if t.body.(i) <> b then add t.mass.(i) t.comx.(i) t.comy.(i) t.comz.(i)
      | 0 ->
          let dx = t.comx.(i) -. xb
          and dy = t.comy.(i) -. yb
          and dz = t.comz.(i) -. zb in
          let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) +. 1e-12 in
          if 2. *. t.half.(i) /. d < theta then
            add t.mass.(i) t.comx.(i) t.comy.(i) t.comz.(i)
          else
            for k = 0 to 7 do
              visit t.child.((8 * i) + k)
            done
      | _ -> ()
  in
  if t.n_nodes > 0 then visit 0;
  (!ax, !ay, !az, !count)

(* Direct O(N^2) acceleration, for accuracy tests. *)
let direct_force ~px ~py ~pz ~m ~eps n b =
  let ax = ref 0. and ay = ref 0. and az = ref 0. in
  for j = 0 to n - 1 do
    if j <> b then begin
      let dx = px.(j) -. px.(b)
      and dy = py.(j) -. py.(b)
      and dz = pz.(j) -. pz.(b) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. (eps *. eps) in
      let r = sqrt r2 in
      let f = m.(j) /. (r2 *. r) in
      ax := !ax +. (f *. dx);
      ay := !ay +. (f *. dy);
      az := !az +. (f *. dz)
    end
  done;
  (!ax, !ay, !az)
