lib/net/am.mli: Ace_engine Cost_model
