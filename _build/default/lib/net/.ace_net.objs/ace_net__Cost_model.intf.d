lib/net/cost_model.mli:
