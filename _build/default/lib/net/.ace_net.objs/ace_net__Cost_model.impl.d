lib/net/cost_model.ml:
