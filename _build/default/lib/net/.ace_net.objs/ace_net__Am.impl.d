lib/net/am.ml: Ace_engine Cost_model
