type t = {
  cycles_per_sec : float;
  am_send_overhead : float;
  am_recv_overhead : float;
  wire_latency : float;
  per_byte : float;
  map_miss : float;
  map_hit : float;
  dispatch : float;
  start_hit : float;
  end_op : float;
  null_hook : float;
  miss_overhead : float;
  unmap : float;
  barrier_base : float;
  barrier_per_log2 : float;
  lock_base : float;
}

(* CM-5 at 33 MHz: an active message costs a few microseconds end to end
   (~1.6 us injection, ~3 us transit for small messages); CMMD-style bulk
   transfer sustains ~8 MB/s per node => ~4 cycles/byte. CRL's published
   null start_read hit is ~1.2 us (~40 cycles on the CM-5 port); its map is
   a hash lookup on every call. The Ace paper credits its gains to a
   "careful redesign of the SC protocol and a more efficient mapping
   technique", which we model as a cheap cached map plus a per-call
   dispatch indirection through the space table. *)

let base =
  {
    cycles_per_sec = 33.0e6;
    am_send_overhead = 55.;
    am_recv_overhead = 45.;
    wire_latency = 150.;
    per_byte = 4.;
    map_miss = 220.;
    map_hit = 48.; (* overridden per system *)
    dispatch = 0.;
    start_hit = 40.;
    end_op = 20.;
    null_hook = 4.;
    miss_overhead = 500.; (* protocol state-machine work per miss *)
    unmap = 10.;
    barrier_base = 150.;
    barrier_per_log2 = 60.;
    lock_base = 30.;
  }

(* CRL 1.0: hash-table map on every call, a general-purpose protocol state
   machine with every transition case (heavier per-miss processing), no
   dispatch indirection. Ace: cached mapping, redesigned lean SC protocol,
   but each call dispatches through the region's space. *)
let cm5_crl =
  { base with map_hit = 48.; dispatch = 0.; start_hit = 42.; miss_overhead = 800. }

let cm5_ace =
  { base with map_hit = 14.; dispatch = 9.; start_hit = 30.; miss_overhead = 500. }

let transit t ~bytes =
  t.wire_latency +. (t.per_byte *. float_of_int bytes)

let barrier_cost t nprocs =
  let log2 = log (float_of_int nprocs) /. log 2. in
  t.barrier_base +. (t.barrier_per_log2 *. log2)
