(** Machine cost parameters, in 33 MHz SPARC cycles (CM-5 flavoured).

    Two runtime-system profiles are provided: [cm5_crl] models CRL 1.0
    (per-call hash-table region mapping, fixed protocol compiled in) and
    [cm5_ace] models the Ace runtime (cached mapping, but an extra
    indirection to dispatch through the region's space — the paper's §5.1
    trade-off). All protocol-level message costs are shared. *)

type t = {
  cycles_per_sec : float;
  (* Active messages *)
  am_send_overhead : float;  (** processor cycles to inject a message *)
  am_recv_overhead : float;  (** handler dispatch cost at the receiver *)
  wire_latency : float;      (** network transit, cycles *)
  per_byte : float;          (** inverse bandwidth, cycles/byte *)
  (* Region runtime *)
  map_miss : float;          (** map when the region is not in the node table *)
  map_hit : float;           (** map when already known (cached mapping) *)
  dispatch : float;          (** per protocol-call dispatch indirection *)
  start_hit : float;         (** start_read/start_write when no messages needed *)
  end_op : float;            (** end_read / end_write bookkeeping *)
  null_hook : float;         (** a registered null protocol handler *)
  miss_overhead : float;     (** requester-side protocol processing per miss *)
  unmap : float;
  (* Synchronization *)
  barrier_base : float;
  barrier_per_log2 : float;  (** scaled by log2(nprocs) *)
  lock_base : float;
}

val cm5_ace : t
val cm5_crl : t

(** Full latency of one message of [bytes] payload, excluding sender and
    receiver processor overheads. *)
val transit : t -> bytes:int -> float

val barrier_cost : t -> int -> float
