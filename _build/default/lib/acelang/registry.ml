(* The protocol registration data of Fig. 1: for each protocol, which
   access/synchronization points have (non-null) handlers and whether its
   semantics allow the optimizer to touch its calls. The compiler reads
   this "system configuration" to drive the direct-dispatch pass; it can be
   derived from a live runtime registry or parsed from the textual format
   the paper's Tcl script generates. *)

type entry = {
  name : string;
  optimizable : bool;
  start_read : bool;
  end_read : bool;
  start_write : bool;
  end_write : bool;
  barrier : bool;
  lock : bool;
  unlock : bool;
}

type t = entry list

let find t name = List.find_opt (fun e -> e.name = name) t

(* The four access points use the protocol's declared registration flags
   (what the Fig. 1 script records — a protocol may install a debug-only
   handler yet register the point as null, like WRITE_ONCE's write-side
   assertion); the synchronization points are derived from the handlers
   themselves. *)
let of_protocol (p : Ace_runtime.Protocol.protocol) =
  {
    name = p.Ace_runtime.Protocol.name;
    optimizable = p.Ace_runtime.Protocol.optimizable;
    start_read = p.Ace_runtime.Protocol.has_start_read;
    end_read = p.Ace_runtime.Protocol.has_end_read;
    start_write = p.Ace_runtime.Protocol.has_start_write;
    end_write = p.Ace_runtime.Protocol.has_end_write;
    barrier = p.Ace_runtime.Protocol.barrier != Ace_runtime.Protocol.null_hook;
    lock = p.Ace_runtime.Protocol.lock != Ace_runtime.Protocol.null_hook;
    unlock = p.Ace_runtime.Protocol.unlock != Ace_runtime.Protocol.null_hook;
  }

let of_runtime rt = List.map of_protocol (Ace_runtime.Runtime.protocols rt)

(* Textual configuration, one block per protocol (Fig. 1 flavoured):

     protocol Update {
       points: start_read start_write end_write barrier;
       optimizable: yes;
     }
*)
let to_text (t : t) =
  let b = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string b (Printf.sprintf "protocol %s {\n  points:" e.name);
      let point name present = if present then Buffer.add_string b (" " ^ name) in
      point "start_read" e.start_read;
      point "end_read" e.end_read;
      point "start_write" e.start_write;
      point "end_write" e.end_write;
      point "barrier" e.barrier;
      point "lock" e.lock;
      point "unlock" e.unlock;
      Buffer.add_string b
        (Printf.sprintf ";\n  optimizable: %s;\n}\n"
           (if e.optimizable then "yes" else "no")))
    t;
  Buffer.contents b

exception Parse_error of string

let parse_text text : t =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (fun l -> String.split_on_char ' ' l)
    |> List.concat_map (fun w ->
           (* separate punctuation glued to words *)
           let w = String.trim w in
           let strip c w =
             if String.length w > 0 && w.[String.length w - 1] = c then
               [ String.sub w 0 (String.length w - 1); String.make 1 c ]
             else [ w ]
           in
           List.concat_map (strip ';') (strip ':' w |> List.concat_map (strip ';')))
    |> List.filter (fun w -> w <> "")
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "protocol" :: name :: "{" :: rest ->
        let rec block e = function
          | "points" :: ":" :: rest ->
              let rec points e = function
                | ";" :: rest -> block e rest
                | "start_read" :: rest -> points { e with start_read = true } rest
                | "end_read" :: rest -> points { e with end_read = true } rest
                | "start_write" :: rest ->
                    points { e with start_write = true } rest
                | "end_write" :: rest -> points { e with end_write = true } rest
                | "barrier" :: rest -> points { e with barrier = true } rest
                | "lock" :: rest -> points { e with lock = true } rest
                | "unlock" :: rest -> points { e with unlock = true } rest
                | w :: _ -> raise (Parse_error ("unknown point " ^ w))
                | [] -> raise (Parse_error "unterminated points")
              in
              points e rest
          | "optimizable" :: ":" :: v :: ";" :: rest ->
              block { e with optimizable = v = "yes" || v = "true" } rest
          | "}" :: rest -> (e, rest)
          | w :: _ -> raise (Parse_error ("unexpected " ^ w))
          | [] -> raise (Parse_error "unterminated protocol block")
        in
        let empty =
          {
            name;
            optimizable = false;
            start_read = false;
            end_read = false;
            start_write = false;
            end_write = false;
            barrier = false;
            lock = false;
            unlock = false;
          }
        in
        let e, rest = block empty rest in
        parse (e :: acc) rest
    | w :: _ -> raise (Parse_error ("expected 'protocol', got " ^ w))
  in
  parse [] tokens
