(* Space and protocol dataflow (paper §4.2): determine, for every access,
   the set of spaces the region may belong to and the set of protocols each
   space may be running at that point.

   Facts are generated at gmalloc/globalid (region -> space), region
   assignments (copied), newspace (space -> protocol) and changeproto
   (strong update: a space variable denotes one space, so the protocol set
   is replaced, flow-sensitively). Loops iterate to a fixpoint; branches
   join by union. Calls are opaque: callees cannot reach the caller's
   spaces (spaces cannot be passed), so the state flows through unchanged.

   The result is stored in each annotation's [protos] field. *)

module SS = Set.Make (String)
module Smap = Map.Make (String)

type state = {
  mutable region_spaces : SS.t Smap.t; (* region var/array -> space vars *)
  mutable space_protos : SS.t Smap.t; (* space var -> protocol names *)
}

let get m k = match Smap.find_opt k m with Some s -> s | None -> SS.empty

let join a b = Smap.union (fun _ x y -> Some (SS.union x y)) a b

let equal_state (a : state) (b : state) =
  Smap.equal SS.equal a.region_spaces b.region_spaces
  && Smap.equal SS.equal a.space_protos b.space_protos

let copy_state s = { region_spaces = s.region_spaces; space_protos = s.space_protos }

let rexpr_spaces st = function
  | Ir.RVar x -> get st.region_spaces x
  | Ir.RIdx (a, _) -> get st.region_spaces a

(* Map from mapped-temporary to the space set of the region it mapped. *)
type tmp_env = SS.t Smap.t

let rec walk (st : state) (tmps : tmp_env ref) (s : Ir.istmt) : unit =
  match s with
  | Ir.INewSpace (x, proto) ->
      st.space_protos <- Smap.add x (SS.singleton proto) st.space_protos
  | Ir.IChangeProto (x, proto) ->
      (* strong update: a space variable names exactly one space *)
      st.space_protos <- Smap.add x (SS.singleton proto) st.space_protos
  | Ir.IGmalloc (x, space, _) | Ir.IGlobalId (x, space, _, _) ->
      st.region_spaces <-
        Smap.add x (SS.add space (get st.region_spaces x)) st.region_spaces
  | Ir.IRegAssign (x, r) ->
      st.region_spaces <-
        Smap.add x (SS.union (rexpr_spaces st r) (get st.region_spaces x))
          st.region_spaces
  | Ir.IStoreReg (arr, _, r) ->
      st.region_spaces <-
        Smap.add arr (SS.union (rexpr_spaces st r) (get st.region_spaces arr))
          st.region_spaces
  | Ir.IMap (t, r) -> tmps := Smap.add t (rexpr_spaces st r) !tmps
  | Ir.IStart (_, t, ann) | Ir.IEnd (_, t, ann) | Ir.ILock (t, ann)
  | Ir.IUnlock (t, ann) ->
      let spaces = get !tmps t in
      let protos =
        SS.fold (fun sp acc -> SS.union (get st.space_protos sp) acc) spaces
          SS.empty
      in
      ann.Ir.protos <- SS.elements (SS.union (SS.of_list ann.Ir.protos) protos)
  | Ir.ISeq l -> List.iter (walk st tmps) l
  | Ir.IIf (_, a, b) ->
      let st_b = copy_state st and tmps_b = ref !tmps in
      walk st tmps a;
      walk st_b tmps_b b;
      st.region_spaces <- join st.region_spaces st_b.region_spaces;
      st.space_protos <- join st.space_protos st_b.space_protos;
      tmps := join !tmps !tmps_b
  | Ir.IWhile (_, body) | Ir.IFor (_, _, _, _, body) ->
      (* iterate to fixpoint so the loop-entry state includes back-edge
         facts (a changeproto inside the loop reaches its own top) *)
      let rec fix () =
        let before = copy_state st and tmps_before = !tmps in
        walk st tmps body;
        st.region_spaces <- join st.region_spaces before.region_spaces;
        st.space_protos <- join st.space_protos before.space_protos;
        tmps := join !tmps tmps_before;
        if not (equal_state st before && Smap.equal SS.equal !tmps tmps_before)
        then fix ()
      in
      fix ()
  | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
  | Ir.ILoadShared _ | Ir.IStoreShared _ | Ir.IBarrier _ | Ir.IWork _
  | Ir.ICallStmt _ | Ir.IReturn _ ->
      ()

let analyze (prog : Ir.iprogram) : unit =
  List.iter
    (fun f ->
      let st = { region_spaces = Smap.empty; space_protos = Smap.empty } in
      let tmps = ref Smap.empty in
      walk st tmps f.Ir.body)
    prog
