(* The annotated intermediate representation: MiniAce statements with the
   runtime annotations of Fig. 3 [ACE_MAP, ACE_START_*, ACE_END_*] made
   explicit, as the translation of Fig. 5 produces them. The IR stays
   structured (loops and branches are trees) — the optimization passes of
   §4.2 are tree transformations guided by simple dataflow facts. *)

type var = string

type mode = Read | Write

(* One protocol call site. [protos] is filled by the space/protocol
   analysis; [direct] and [removed] by the direct-dispatch pass. *)
type ann = {
  aid : int;
  mutable protos : string list; (* possible protocols; [] = unknown/any *)
  mutable direct : bool; (* dispatch replaced by a direct call *)
  mutable removed : bool; (* call to a null handler deleted *)
}

type rexpr = RVar of var | RIdx of var * nexpr

and nexpr =
  | NNum of float
  | NVar of var
  | NBin of Ast.binop * nexpr * nexpr
  | NNot of nexpr
  | NIdx of var * nexpr (* local array read *)
  | NMe
  | NNprocs
  | NSqrt of nexpr
  | NMod of nexpr * nexpr

type istmt =
  | IDeclArr of var * nexpr
  | IDeclRegArr of var * nexpr
  | IAssign of var * nexpr
  | IStoreLocal of var * nexpr * nexpr
  | INewSpace of var * string
  | IRegAssign of var * rexpr
  | IGmalloc of var * var * nexpr (* result, space, length *)
  | IGlobalId of var * var * nexpr * nexpr (* result, space, owner, k *)
  | IStoreReg of var * nexpr * rexpr (* region-array element := region *)
  | IMap of var * rexpr (* t := ACE_MAP(r) *)
  | IStart of mode * var * ann
  | IEnd of mode * var * ann
  | ILoadShared of var * var * nexpr (* x := t[i] *)
  | IStoreShared of var * nexpr * nexpr (* t[i] := v *)
  | ISeq of istmt list
  | IIf of nexpr * istmt * istmt
  | IWhile of nexpr * istmt
  | IFor of var * nexpr * nexpr * nexpr * istmt
  | IBarrier of var
  | ILock of var * ann
  | IUnlock of var * ann
  | IChangeProto of var * string
  | IWork of nexpr
  | ICallStmt of var option * string * nexpr list
  | IReturn of nexpr option

type ifunc = { fname : string; params : var list; body : istmt }

type iprogram = ifunc list

(* ---- helpers shared by passes ---- *)

(* Normalize nested sequences so passes see a flat statement list. *)
let rec flatten_stmt = function
  | ISeq l -> ISeq (flatten_list l)
  | IIf (c, a, b) -> IIf (c, flatten_stmt a, flatten_stmt b)
  | IWhile (c, b) -> IWhile (c, flatten_stmt b)
  | IFor (i, lo, hi, st, b) -> IFor (i, lo, hi, st, flatten_stmt b)
  | s -> s

and flatten_list l =
  List.concat_map
    (fun s -> match flatten_stmt s with ISeq l' -> l' | s' -> [ s' ])
    l


let rec nexpr_vars acc = function
  | NNum _ | NMe | NNprocs -> acc
  | NSqrt e -> nexpr_vars acc e
  | NMod (a, b) -> nexpr_vars (nexpr_vars acc a) b
  | NVar x -> x :: acc
  | NBin (_, a, b) -> nexpr_vars (nexpr_vars acc a) b
  | NNot e -> nexpr_vars acc e
  | NIdx (a, i) -> nexpr_vars (a :: acc) i

let rexpr_vars = function
  | RVar x -> [ x ]
  | RIdx (a, i) -> nexpr_vars [ a ] i

(* Variables (possibly) assigned by a statement, including region vars and
   array names stored through. *)
let rec assigned acc = function
  | IAssign (x, _) | IRegAssign (x, _) | IGmalloc (x, _, _) | IGlobalId (x, _, _, _)
    ->
      x :: acc
  | IStoreLocal (a, _, _) | IStoreReg (a, _, _) -> a :: acc
  | IMap (t, _) -> t :: acc
  | ILoadShared (x, _, _) -> x :: acc
  | ICallStmt (Some x, _, _) -> x :: acc
  | ICallStmt (None, _, _) -> acc
  | ISeq l -> List.fold_left assigned acc l
  | IIf (_, a, b) -> assigned (assigned acc a) b
  | IWhile (_, b) -> assigned acc b
  | IFor (i, _, _, _, b) -> assigned (i :: acc) b
  | IDeclArr (x, _) | IDeclRegArr (x, _) | INewSpace (x, _) -> x :: acc
  | IStart _ | IEnd _ | IStoreShared _ | IBarrier _ | ILock _ | IUnlock _
  | IChangeProto _ | IWork _ | IReturn _ ->
      acc

(* Does the subtree contain a synchronization point (or a call, which may
   hide one)? Code is never moved past these (§4.2). *)
let rec has_sync = function
  | IBarrier _ | ILock _ | IUnlock _ | IChangeProto _ | ICallStmt _ -> true
  | ISeq l -> List.exists has_sync l
  | IIf (_, a, b) -> has_sync a || has_sync b
  | IWhile (_, b) | IFor (_, _, _, _, b) -> has_sync b
  | IDeclArr _ | IDeclRegArr _ | IAssign _ | IStoreLocal _ | INewSpace _
  | IRegAssign _ | IGmalloc _ | IGlobalId _ | IStoreReg _ | IMap _ | IStart _
  | IEnd _ | ILoadShared _ | IStoreShared _ | IWork _ | IReturn _ ->
      false

(* Count annotation calls still present, by kind — the quantity the paper's
   Table 4 optimizations reduce. *)
type counts = {
  mutable maps : int;
  mutable starts : int;
  mutable ends : int;
  mutable direct_calls : int;
  mutable removed_calls : int;
}

let count_annotations (prog : iprogram) =
  let c = { maps = 0; starts = 0; ends = 0; direct_calls = 0; removed_calls = 0 } in
  let tally (a : ann) =
    if a.removed then c.removed_calls <- c.removed_calls + 1
    else if a.direct then c.direct_calls <- c.direct_calls + 1
  in
  let rec go = function
    | IMap _ -> c.maps <- c.maps + 1
    | IStart (_, _, a) ->
        c.starts <- c.starts + 1;
        tally a
    | IEnd (_, _, a) ->
        c.ends <- c.ends + 1;
        tally a
    | ILock (_, a) | IUnlock (_, a) -> tally a
    | ISeq l -> List.iter go l
    | IIf (_, a, b) ->
        go a;
        go b
    | IWhile (_, b) | IFor (_, _, _, _, b) -> go b
    | IDeclArr _ | IDeclRegArr _ | IAssign _ | IStoreLocal _ | INewSpace _
    | IRegAssign _ | IGmalloc _ | IGlobalId _ | IStoreReg _ | ILoadShared _
    | IStoreShared _ | IBarrier _ | IChangeProto _ | IWork _ | ICallStmt _
    | IReturn _ ->
        ()
  in
  List.iter (fun f -> go f.body) prog;
  c

(* ---- pretty printing (for golden tests and the acec tool) ---- *)

let rec pp_nexpr ppf = function
  | NNum v ->
      if Float.is_integer v then Format.fprintf ppf "%d" (int_of_float v)
      else Format.fprintf ppf "%g" v
  | NVar x -> Format.pp_print_string ppf x
  | NBin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_nexpr a (Ast.binop_name op) pp_nexpr b
  | NNot e -> Format.fprintf ppf "!%a" pp_nexpr e
  | NIdx (a, i) -> Format.fprintf ppf "%s[%a]" a pp_nexpr i
  | NMe -> Format.pp_print_string ppf "me()"
  | NNprocs -> Format.pp_print_string ppf "nprocs()"
  | NSqrt e -> Format.fprintf ppf "sqrt(%a)" pp_nexpr e
  | NMod (a, b) -> Format.fprintf ppf "mod(%a, %a)" pp_nexpr a pp_nexpr b

let pp_rexpr ppf = function
  | RVar x -> Format.pp_print_string ppf x
  | RIdx (a, i) -> Format.fprintf ppf "%s[%a]" a pp_nexpr i

let mode_name = function Read -> "READ" | Write -> "WRITE"

let call_suffix (a : ann) =
  if a.removed then "  /* removed */"
  else if a.direct then
    Printf.sprintf "  /* direct: %s */" (String.concat "," a.protos)
  else ""

let rec pp_istmt ppf ~indent s =
  let pad = String.make indent ' ' in
  match s with
  | IDeclArr (x, n) -> Format.fprintf ppf "%svar %s[%a];@." pad x pp_nexpr n
  | IDeclRegArr (x, n) ->
      Format.fprintf ppf "%sregion %s[%a];@." pad x pp_nexpr n
  | IAssign (x, e) -> Format.fprintf ppf "%s%s = %a;@." pad x pp_nexpr e
  | IStoreLocal (a, i, e) ->
      Format.fprintf ppf "%s%s[%a] = %a;@." pad a pp_nexpr i pp_nexpr e
  | INewSpace (x, p) -> Format.fprintf ppf "%sspace %s = newspace(%s);@." pad x p
  | IRegAssign (x, r) -> Format.fprintf ppf "%s%s = %a;@." pad x pp_rexpr r
  | IGmalloc (x, s, n) ->
      Format.fprintf ppf "%s%s = gmalloc(%s, %a);@." pad x s pp_nexpr n
  | IGlobalId (x, s, o, k) ->
      Format.fprintf ppf "%s%s = globalid(%s, %a, %a);@." pad x s pp_nexpr o
        pp_nexpr k
  | IStoreReg (a, i, r) ->
      Format.fprintf ppf "%s%s[%a] = %a;@." pad a pp_nexpr i pp_rexpr r
  | IMap (t, r) -> Format.fprintf ppf "%s%s = ACE_MAP(%a);@." pad t pp_rexpr r
  | IStart (m, t, a) ->
      Format.fprintf ppf "%sACE_START_%s(%s);%s@." pad (mode_name m) t
        (call_suffix a)
  | IEnd (m, t, a) ->
      Format.fprintf ppf "%sACE_END_%s(%s);%s@." pad (mode_name m) t
        (call_suffix a)
  | ILoadShared (x, t, i) ->
      Format.fprintf ppf "%s%s = %s[%a];@." pad x t pp_nexpr i
  | IStoreShared (t, i, e) ->
      Format.fprintf ppf "%s%s[%a] = %a;@." pad t pp_nexpr i pp_nexpr e
  | ISeq l -> List.iter (pp_istmt ppf ~indent) l
  | IIf (c, a, b) ->
      Format.fprintf ppf "%sif (%a) {@." pad pp_nexpr c;
      pp_istmt ppf ~indent:(indent + 2) a;
      (match b with
      | ISeq [] -> ()
      | _ ->
          Format.fprintf ppf "%s} else {@." pad;
          pp_istmt ppf ~indent:(indent + 2) b);
      Format.fprintf ppf "%s}@." pad
  | IWhile (c, b) ->
      Format.fprintf ppf "%swhile (%a) {@." pad pp_nexpr c;
      pp_istmt ppf ~indent:(indent + 2) b;
      Format.fprintf ppf "%s}@." pad
  | IFor (i, lo, hi, st, b) ->
      Format.fprintf ppf "%sfor (%s = %a; %s < %a; %s += %a) {@." pad i
        pp_nexpr lo i pp_nexpr hi i pp_nexpr st;
      pp_istmt ppf ~indent:(indent + 2) b;
      Format.fprintf ppf "%s}@." pad
  | IBarrier s -> Format.fprintf ppf "%sbarrier(%s);@." pad s
  | ILock (t, a) -> Format.fprintf ppf "%slock(%s);%s@." pad t (call_suffix a)
  | IUnlock (t, a) ->
      Format.fprintf ppf "%sunlock(%s);%s@." pad t (call_suffix a)
  | IChangeProto (s, p) ->
      Format.fprintf ppf "%schangeproto(%s, %s);@." pad s p
  | IWork e -> Format.fprintf ppf "%swork(%a);@." pad pp_nexpr e
  | ICallStmt (None, f, args) ->
      Format.fprintf ppf "%s%s(%a);@." pad f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_nexpr)
        args
  | ICallStmt (Some x, f, args) ->
      Format.fprintf ppf "%s%s = %s(%a);@." pad x f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_nexpr)
        args
  | IReturn None -> Format.fprintf ppf "%sreturn;@." pad
  | IReturn (Some e) -> Format.fprintf ppf "%sreturn %a;@." pad pp_nexpr e

let pp_program ppf (prog : iprogram) =
  List.iter
    (fun f ->
      Format.fprintf ppf "func %s(%s) {@." f.fname (String.concat ", " f.params);
      pp_istmt ppf ~indent:2 f.body;
      Format.fprintf ppf "}@.")
    prog

let to_string prog = Format.asprintf "%a" pp_program prog
