(* The three optimization passes of paper §4.2. All passes refuse to move
   code past synchronization points, and only touch calls whose possible
   protocols are all registered optimizable. *)

let all_optimizable (reg : Registry.t) (a : Ir.ann) =
  a.Ir.protos <> []
  && List.for_all
       (fun p ->
         match Registry.find reg p with
         | Some e -> e.Registry.optimizable
         | None -> false)
       a.Ir.protos

(* ------------------------------------------------------------------ *)
(* Pass 1: moving calls out of loops (loop-invariance).                 *)
(* ACE_MAP and ACE_START_* whose region operand is loop-invariant move  *)
(* above the loop; the matching ACE_END_* moves below it.               *)
(* ------------------------------------------------------------------ *)

let rec loop_invariance (reg : Registry.t) (s : Ir.istmt) : Ir.istmt =
  match Ir.flatten_stmt s with
  | Ir.ISeq l -> Ir.ISeq (Ir.flatten_list (List.map (loop_invariance reg) l))
  | Ir.IIf (c, a, b) -> Ir.IIf (c, loop_invariance reg a, loop_invariance reg b)
  | Ir.IWhile (c, body) ->
      let body = loop_invariance reg body in
      let pre, body, post = hoist_from_loop reg ~extra_killed:[] body in
      Ir.ISeq (pre @ [ Ir.IWhile (c, body) ] @ post)
  | Ir.IFor (i, lo, hi, st, body) ->
      let body = loop_invariance reg body in
      let pre, body, post = hoist_from_loop reg ~extra_killed:[ i ] body in
      Ir.ISeq (pre @ [ Ir.IFor (i, lo, hi, st, body) ] @ post)
  | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
  | Ir.INewSpace _ | Ir.IRegAssign _ | Ir.IGmalloc _ | Ir.IGlobalId _
  | Ir.IStoreReg _ | Ir.IMap _ | Ir.IStart _ | Ir.IEnd _ | Ir.ILoadShared _
  | Ir.IStoreShared _ | Ir.IBarrier _ | Ir.ILock _ | Ir.IUnlock _
  | Ir.IChangeProto _ | Ir.IWork _ | Ir.ICallStmt _ | Ir.IReturn _ ->
      s

and hoist_from_loop reg ~extra_killed body =
  if Ir.has_sync body then ([], body, [])
  else begin
    let killed = extra_killed @ Ir.assigned [] body in
    let invariant vars = List.for_all (fun v -> not (List.mem v killed)) vars in
    match body with
    | Ir.ISeq stmts ->
        (* step 1: invariant maps at the top level of the body *)
        let hoisted_maps = ref [] in
        let stmts =
          List.filter
            (fun st ->
              match st with
              | Ir.IMap (_, re) when invariant (Ir.rexpr_vars re) ->
                  hoisted_maps := st :: !hoisted_maps;
                  false
              | _ -> true)
            stmts
        in
        (* lowering gives temps unique names, so a hoisted map's temp has a
           single definition *)
        let hoisted_tmps =
          List.concat_map
            (function Ir.IMap (t, _) -> [ t ] | _ -> [])
            !hoisted_maps
        in
        (* step 2: START whose temp's map was hoisted, with a matching END
           at the same level, all protocols optimizable *)
        let pre = ref [] and post = ref [] in
        let rec filter_starts acc = function
          | [] -> List.rev acc
          | Ir.IStart (m, t, a) :: rest
            when List.mem t hoisted_tmps && all_optimizable reg a
                 && List.exists
                      (function Ir.IEnd (m', t', _) -> m' = m && t' = t | _ -> false)
                      rest ->
              pre := Ir.IStart (m, t, a) :: !pre;
              let rest =
                remove_first
                  (function
                    | Ir.IEnd (m', t', a') when m' = m && t' = t ->
                        post := Ir.IEnd (m, t, a') :: !post;
                        true
                    | _ -> false)
                  rest
              in
              filter_starts acc rest
          | st :: rest -> filter_starts (st :: acc) rest
        in
        let stmts = filter_starts [] stmts in
        ( List.rev !hoisted_maps @ List.rev !pre,
          Ir.ISeq stmts,
          List.rev !post )
    | _ -> ([], body, [])
  end

and mapped_tmps acc = function Ir.IMap (t, _) -> t :: acc | _ -> acc

and remove_first pred l =
  match l with
  | [] -> []
  | x :: rest -> if pred x then rest else x :: remove_first pred rest

(* ------------------------------------------------------------------ *)
(* Pass 2: merging redundant protocol calls (Fig. 6).                   *)
(* Available-expression analysis on ACE_MAP arguments within straight-  *)
(* line code; then adjacent same-mode access sections on the same       *)
(* handle are fused (highest START, lowest END).                        *)
(* ------------------------------------------------------------------ *)

let rexpr_key = function
  | Ir.RVar x -> "v:" ^ x
  | Ir.RIdx (a, i) -> Format.asprintf "i:%s[%a]" a Ir.pp_nexpr i

(* substitute temp t -> t0 in a statement subtree *)
let rec subst_tmp t t0 (s : Ir.istmt) : Ir.istmt =
  let v x = if x = t then t0 else x in
  match s with
  | Ir.IStart (m, x, a) -> Ir.IStart (m, v x, a)
  | Ir.IEnd (m, x, a) -> Ir.IEnd (m, v x, a)
  | Ir.ILoadShared (x, h, i) -> Ir.ILoadShared (x, v h, i)
  | Ir.IStoreShared (h, i, e) -> Ir.IStoreShared (v h, i, e)
  | Ir.ILock (x, a) -> Ir.ILock (v x, a)
  | Ir.IUnlock (x, a) -> Ir.IUnlock (v x, a)
  | Ir.ISeq l -> Ir.ISeq (List.map (subst_tmp t t0) l)
  | Ir.IIf (c, a, b) -> Ir.IIf (c, subst_tmp t t0 a, subst_tmp t t0 b)
  | Ir.IWhile (c, b) -> Ir.IWhile (c, subst_tmp t t0 b)
  | Ir.IFor (i, lo, hi, st, b) -> Ir.IFor (i, lo, hi, st, subst_tmp t t0 b)
  | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
  | Ir.INewSpace _ | Ir.IRegAssign _ | Ir.IGmalloc _ | Ir.IGlobalId _
  | Ir.IStoreReg _ | Ir.IMap _ | Ir.IBarrier _ | Ir.IChangeProto _ | Ir.IWork _
  | Ir.ICallStmt _ | Ir.IReturn _ ->
      s

let is_barrier_stmt = function
  | Ir.IBarrier _ | Ir.ILock _ | Ir.IUnlock _ | Ir.IChangeProto _
  | Ir.ICallStmt _ | Ir.IIf _ | Ir.IWhile _ | Ir.IFor _ | Ir.IReturn _
  | Ir.ISeq _ ->
      true
  | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
  | Ir.INewSpace _ | Ir.IRegAssign _ | Ir.IGmalloc _ | Ir.IGlobalId _
  | Ir.IStoreReg _ | Ir.IMap _ | Ir.IStart _ | Ir.IEnd _ | Ir.ILoadShared _
  | Ir.IStoreShared _ | Ir.IWork _ ->
      false

(* Merge redundant maps over a statement list. Availability is killed at
   synchronization/control statements (basic-block behaviour, as the
   paper's available-expression analysis), but when a map *is* merged its
   temporary is renamed through the entire remainder — hoisted sections may
   reference it from inside later loop bodies. *)
let merge_maps_list stmts =
  let available : (string * string) list ref = ref [] in
  (* kill availability when any variable occurring in the key is assigned;
     keys embed variable names, so a substring check is conservative *)
  let contains key v =
    let lk = String.length key and lv = String.length v in
    let rec go i =
      if i + lv > lk then false
      else if String.sub key i lv = v then true
      else go (i + 1)
    in
    lv > 0 && go 0
  in
  let kill vars =
    available :=
      List.filter
        (fun (key, _) -> not (List.exists (fun v -> contains key v) vars))
        !available
  in
  let rec go acc = function
    | [] -> List.rev acc
    | Ir.IMap (t, re) :: rest -> (
        let key = rexpr_key re in
        match List.assoc_opt key !available with
        | Some t0 ->
            (* reuse the earlier mapping; rename t -> t0 downstream *)
            go acc (List.map (subst_tmp t t0) rest)
        | None ->
            available := (key, t) :: !available;
            go (Ir.IMap (t, re) :: acc) rest)
    | st :: rest ->
        if is_barrier_stmt st then available := []
        else kill (Ir.assigned [] st);
        go (st :: acc) rest
  in
  go [] stmts

(* fuse END(m,t) ... START(m,t) pairs with nothing conflicting between *)
let merge_sections reg stmts =
  let rec try_fuse before = function
    | [] -> None
    | (Ir.IEnd (m, t, a) as e) :: rest when all_optimizable reg a -> (
        (* look ahead for a START on the same handle and mode with only
           non-sync statements between *)
        let rec scan mid = function
          | Ir.IStart (m', t', a') :: rest' when m' = m && t' = t ->
              if all_optimizable reg a' then
                Some (List.rev before @ List.rev mid @ rest')
              else None
          | st :: rest' when not (is_barrier_stmt st) ->
              (* the handle must not be remapped in between *)
              (match st with
              | Ir.IMap (t', _) when t' = t -> None
              | Ir.IEnd (_, t', _) | Ir.IStart (_, t', _) when t' = t -> None
              | _ -> scan (st :: mid) rest')
          | _ -> None
        in
        match scan [] rest with
        | Some fused -> Some fused
        | None -> try_fuse (e :: before) rest)
    | st :: rest -> try_fuse (st :: before) rest
  in
  let rec fix stmts =
    match try_fuse [] stmts with Some s -> fix s | None -> stmts
  in
  (* "use the highest ACE_START_* and the lowest ACE_END_*, and remove the
     rest": drop re-opened sections nested in an already-open same-mode
     section on the same handle *)
  let dedupe stmts =
    let open_count : (string * Ir.mode, int) Hashtbl.t = Hashtbl.create 8 in
    let to_drop : (string * Ir.mode, int) Hashtbl.t = Hashtbl.create 8 in
    let get t k = match Hashtbl.find_opt t k with Some n -> n | None -> 0 in
    List.filter
      (fun st ->
        match st with
        | Ir.IStart (m, t, a) when all_optimizable reg a ->
            let k = (t, m) in
            if get open_count k > 0 then begin
              Hashtbl.replace to_drop k (get to_drop k + 1);
              false
            end
            else begin
              Hashtbl.replace open_count k 1;
              true
            end
        | Ir.IStart (m, t, _) ->
            Hashtbl.replace open_count (t, m) (get open_count (t, m) + 1);
            true
        | Ir.IEnd (m, t, _) ->
            let k = (t, m) in
            if get to_drop k > 0 then begin
              Hashtbl.replace to_drop k (get to_drop k - 1);
              false
            end
            else begin
              Hashtbl.replace open_count k (max 0 (get open_count k - 1));
              true
            end
        | _ -> true)
      stmts
  in
  dedupe (fix stmts)

let rec merge_calls (reg : Registry.t) (s : Ir.istmt) : Ir.istmt =
  match Ir.flatten_stmt s with
  | Ir.ISeq l ->
      let l = Ir.flatten_list (List.map (merge_calls reg) l) in
      (* map merging over the whole list (renames propagate everywhere) *)
      let l = merge_maps_list l in
      (* section fusing per straight-line run between barrier statements *)
      let rec runs acc current = function
        | [] -> List.rev (List.rev current :: acc)
        | st :: rest when is_barrier_stmt st ->
            runs (List.rev (st :: current) :: acc) [] rest
        | st :: rest -> runs acc (st :: current) rest
      in
      let segments = runs [] [] l in
      let processed =
        List.concat_map
          (fun seg ->
            (* a segment's trailing element may be the barrier itself *)
            let body, tail =
              match List.rev seg with
              | last :: _ when is_barrier_stmt last ->
                  (List.filteri (fun i _ -> i < List.length seg - 1) seg, [ last ])
              | _ -> (seg, [])
            in
            merge_sections reg body @ tail)
          segments
      in
      Ir.ISeq processed
  | Ir.IIf (c, a, b) -> Ir.IIf (c, merge_calls reg a, merge_calls reg b)
  | Ir.IWhile (c, b) -> Ir.IWhile (c, merge_calls reg b)
  | Ir.IFor (i, lo, hi, st, b) -> Ir.IFor (i, lo, hi, st, merge_calls reg b)
  | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
  | Ir.INewSpace _ | Ir.IRegAssign _ | Ir.IGmalloc _ | Ir.IGlobalId _
  | Ir.IStoreReg _ | Ir.IMap _ | Ir.IStart _ | Ir.IEnd _ | Ir.ILoadShared _
  | Ir.IStoreShared _ | Ir.IBarrier _ | Ir.ILock _ | Ir.IUnlock _
  | Ir.IChangeProto _ | Ir.IWork _ | Ir.ICallStmt _ | Ir.IReturn _ ->
      s

(* ------------------------------------------------------------------ *)
(* Pass 3: direct dispatch. If an access has a unique possible          *)
(* protocol, replace the dispatched call with a direct call; if that    *)
(* protocol's handler for the point is null, delete the call.           *)
(* ------------------------------------------------------------------ *)

let direct_dispatch (reg : Registry.t) (prog : Ir.iprogram) : unit =
  let visit_ann kind (a : Ir.ann) =
    match a.Ir.protos with
    | [ p ] -> (
        a.Ir.direct <- true;
        match Registry.find reg p with
        | None -> ()
        | Some e ->
            let present =
              match kind with
              | `Start_read -> e.Registry.start_read
              | `End_read -> e.Registry.end_read
              | `Start_write -> e.Registry.start_write
              | `End_write -> e.Registry.end_write
              | `Lock -> e.Registry.lock
              | `Unlock -> e.Registry.unlock
            in
            if not present then a.Ir.removed <- true)
    | _ -> ()
  in
  let rec go = function
    | Ir.IStart (Ir.Read, _, a) -> visit_ann `Start_read a
    | Ir.IStart (Ir.Write, _, a) -> visit_ann `Start_write a
    | Ir.IEnd (Ir.Read, _, a) -> visit_ann `End_read a
    | Ir.IEnd (Ir.Write, _, a) -> visit_ann `End_write a
    | Ir.ILock (_, a) -> visit_ann `Lock a
    | Ir.IUnlock (_, a) -> visit_ann `Unlock a
    | Ir.ISeq l -> List.iter go l
    | Ir.IIf (_, a, b) ->
        go a;
        go b
    | Ir.IWhile (_, b) | Ir.IFor (_, _, _, _, b) -> go b
    | Ir.IDeclArr _ | Ir.IDeclRegArr _ | Ir.IAssign _ | Ir.IStoreLocal _
    | Ir.INewSpace _ | Ir.IRegAssign _ | Ir.IGmalloc _ | Ir.IGlobalId _
    | Ir.IStoreReg _ | Ir.IMap _ | Ir.ILoadShared _ | Ir.IStoreShared _
    | Ir.IBarrier _ | Ir.IChangeProto _ | Ir.IWork _ | Ir.ICallStmt _
    | Ir.IReturn _ ->
        ()
  in
  List.iter (fun f -> go f.Ir.body) prog

(* ------------------------------------------------------------------ *)

type level = O0 | O1 (* +LI *) | O2 (* +LI+MC *) | O3 (* +LI+MC+DC *)

let level_name = function
  | O0 -> "base"
  | O1 -> "+LI"
  | O2 -> "+LI+MC"
  | O3 -> "+LI+MC+DC"

let map_bodies f prog =
  List.map (fun fn -> { fn with Ir.body = f fn.Ir.body }) prog

let optimize (reg : Registry.t) (level : level) (prog : Ir.iprogram) :
    Ir.iprogram =
  (* the space analysis gates LI and MC (only optimizable protocols move) *)
  Analysis.analyze prog;
  let prog =
    match level with
    | O0 -> prog
    | O1 -> map_bodies (loop_invariance reg) prog
    | O2 -> map_bodies (merge_calls reg) (map_bodies (loop_invariance reg) prog)
    | O3 -> map_bodies (merge_calls reg) (map_bodies (loop_invariance reg) prog)
  in
  (* re-run the analysis on the transformed tree so direct dispatch sees
     hoisted/merged call sites *)
  Analysis.analyze prog;
  if level = O3 then direct_dispatch reg prog;
  prog
