(* AST -> annotated IR, the translation of Fig. 5: every shared access is
   bracketed with ACE_MAP / ACE_START_* / access / ACE_END_* on compiler
   temporaries, in evaluation order. *)

type env = {
  types : (string, Types.ty) Hashtbl.t;
  mutable fresh : int;
  mutable next_ann : int;
}

let fresh_tmp env =
  let t = Printf.sprintf "t$%d" env.fresh in
  env.fresh <- env.fresh + 1;
  t

let fresh_ann env =
  let a = { Ir.aid = env.next_ann; protos = []; direct = false; removed = false } in
  env.next_ann <- env.next_ann + 1;
  a

let ty env x =
  match Hashtbl.find_opt env.types x with
  | Some t -> t
  | None -> raise (Types.Error ("lower: undeclared " ^ x))

(* Lower an expression to (preceding statements, pure nexpr). Shared reads
   and user-function calls are extracted into the statement list. *)
let rec lower_expr env (e : Ast.expr) : Ir.istmt list * Ir.nexpr =
  match e with
  | Ast.Num v -> ([], Ir.NNum v)
  | Ast.Var x -> ([], Ir.NVar x)
  | Ast.Not e ->
      let s, e' = lower_expr env e in
      (s, Ir.NNot e')
  | Ast.Binop (op, a, b) ->
      let sa, a' = lower_expr env a in
      let sb, b' = lower_expr env b in
      (sa @ sb, Ir.NBin (op, a', b'))
  | Ast.Index (x, i) -> (
      let si, i' = lower_expr env i in
      match ty env x with
      | Types.NumArr -> (si, Ir.NIdx (x, i'))
      | Types.Reg -> shared_read env si (Ir.RVar x) i'
      | Types.RegArr ->
          raise (Types.Error "region value used as a number")
      | _ -> raise (Types.Error ("bad index base " ^ x)))
  | Ast.Index2 (x, i, j) ->
      let si, i' = lower_expr env i in
      let sj, j' = lower_expr env j in
      shared_read env (si @ sj) (Ir.RIdx (x, i')) j'
  | Ast.Call ("me", []) -> ([], Ir.NMe)
  | Ast.Call ("nprocs", []) -> ([], Ir.NNprocs)
  | Ast.Call ("sqrt", [ e ]) ->
      let s, e' = lower_expr env e in
      (s, Ir.NSqrt e')
  | Ast.Call ("mod", [ a; b ]) ->
      let sa, a' = lower_expr env a in
      let sb, b' = lower_expr env b in
      (sa @ sb, Ir.NMod (a', b'))
  | Ast.Call (f, args) ->
      let stmts, args' =
        List.fold_left
          (fun (ss, aa) a ->
            let s, a' = lower_expr env a in
            (ss @ s, aa @ [ a' ]))
          ([], []) args
      in
      let t = fresh_tmp env in
      (stmts @ [ Ir.ICallStmt (Some t, f, args') ], Ir.NVar t)

(* Fig. 5's load sequence. *)
and shared_read env pre rexpr idx =
  let t = fresh_tmp env and x = fresh_tmp env in
  let a1 = fresh_ann env and a2 = fresh_ann env in
  ( pre
    @ [
        Ir.IMap (t, rexpr);
        Ir.IStart (Ir.Read, t, a1);
        Ir.ILoadShared (x, t, idx);
        Ir.IEnd (Ir.Read, t, a2);
      ],
    Ir.NVar x )

(* Region-valued expressions stay pure (no pointer arithmetic exists). *)
let lower_rexpr env (e : Ast.expr) : Ir.istmt list * Ir.rexpr =
  match e with
  | Ast.Var x -> ([], Ir.RVar x)
  | Ast.Index (x, i) ->
      let si, i' = lower_expr env i in
      (si, Ir.RIdx (x, i'))
  | _ -> raise (Types.Error "expected a region expression")

let rec lower_stmt env (s : Ast.stmt) : Ir.istmt list =
  match s with
  | Ast.VarDecl (x, None) -> [ Ir.IAssign (x, Ir.NNum 0.) ]
  | Ast.VarDecl (x, Some e) ->
      let s, e' = lower_expr env e in
      s @ [ Ir.IAssign (x, e') ]
  | Ast.ArrDecl (x, n) ->
      let s, n' = lower_expr env n in
      s @ [ Ir.IDeclArr (x, n') ]
  | Ast.RegionDecl _ -> []
  | Ast.RegionArrDecl (x, n) ->
      let s, n' = lower_expr env n in
      s @ [ Ir.IDeclRegArr (x, n') ]
  | Ast.SpaceDecl (x, proto) -> [ Ir.INewSpace (x, proto) ]
  | Ast.Assign (x, e) -> (
      match ty env x with
      | Types.Reg -> (
          match e with
          | Ast.Call ("gmalloc", [ Ast.Var s; n ]) ->
              let sn, n' = lower_expr env n in
              sn @ [ Ir.IGmalloc (x, s, n') ]
          | Ast.Call ("globalid", [ Ast.Var s; o; k ]) ->
              let so, o' = lower_expr env o in
              let sk, k' = lower_expr env k in
              so @ sk @ [ Ir.IGlobalId (x, s, o', k') ]
          | _ ->
              let s, r = lower_rexpr env e in
              s @ [ Ir.IRegAssign (x, r) ])
      | _ ->
          let s, e' = lower_expr env e in
          s @ [ Ir.IAssign (x, e') ])
  | Ast.StoreIdx (x, i, e) -> (
      match ty env x with
      | Types.NumArr ->
          let si, i' = lower_expr env i in
          let se, e' = lower_expr env e in
          si @ se @ [ Ir.IStoreLocal (x, i', e') ]
      | Types.Reg -> shared_write env (Ir.RVar x) i e
      | Types.RegArr -> (
          let si, i' = lower_expr env i in
          match e with
          | Ast.Call ("gmalloc", [ Ast.Var sp; n ]) ->
              let sn, n' = lower_expr env n in
              let t = fresh_tmp env in
              si @ sn
              @ [ Ir.IGmalloc (t, sp, n'); Ir.IStoreReg (x, i', Ir.RVar t) ]
          | Ast.Call ("globalid", [ Ast.Var sp; o; k ]) ->
              let so, o' = lower_expr env o in
              let sk, k' = lower_expr env k in
              let t = fresh_tmp env in
              si @ so @ sk
              @ [ Ir.IGlobalId (t, sp, o', k'); Ir.IStoreReg (x, i', Ir.RVar t) ]
          | _ ->
              let se, r = lower_rexpr env e in
              si @ se @ [ Ir.IStoreReg (x, i', r) ])
      | _ -> raise (Types.Error ("bad store base " ^ x)))
  | Ast.StoreIdx2 (x, i, j, e) ->
      let si, i' = lower_expr env i in
      let rest = shared_write_idx env (Ir.RIdx (x, i')) j e in
      si @ rest
  | Ast.If (c, a, b) ->
      let sc, c' = lower_expr env c in
      sc @ [ Ir.IIf (c', Ir.ISeq (lower_block env a), Ir.ISeq (lower_block env b)) ]
  | Ast.While (c, body) ->
      (* condition side effects re-evaluated per round: disallow shared
         reads in while conditions for simplicity *)
      let sc, c' = lower_expr env c in
      if sc <> [] then
        raise (Types.Error "shared accesses not supported in while conditions");
      [ Ir.IWhile (c', Ir.ISeq (lower_block env body)) ]
  | Ast.For (i, lo, hi, step, body) ->
      let sl, lo' = lower_expr env lo in
      let sh, hi' = lower_expr env hi in
      let ss, step' = lower_expr env step in
      if sh <> [] || ss <> [] then
        raise (Types.Error "shared accesses not supported in for bounds");
      sl @ [ Ir.IFor (i, lo', hi', step', Ir.ISeq (lower_block env body)) ]
  | Ast.Barrier s -> [ Ir.IBarrier s ]
  | Ast.Lock e ->
      let s, r = lower_rexpr env e in
      let t = fresh_tmp env in
      s @ [ Ir.IMap (t, r); Ir.ILock (t, fresh_ann env) ]
  | Ast.Unlock e ->
      let s, r = lower_rexpr env e in
      let t = fresh_tmp env in
      s @ [ Ir.IMap (t, r); Ir.IUnlock (t, fresh_ann env) ]
  | Ast.ChangeProto (s, p) -> [ Ir.IChangeProto (s, p) ]
  | Ast.Work e ->
      let s, e' = lower_expr env e in
      s @ [ Ir.IWork e' ]
  | Ast.ExprStmt (Ast.Call (f, args)) when f <> "me" && f <> "nprocs" ->
      let stmts, args' =
        List.fold_left
          (fun (ss, aa) a ->
            let s, a' = lower_expr env a in
            (ss @ s, aa @ [ a' ]))
          ([], []) args
      in
      stmts @ [ Ir.ICallStmt (None, f, args') ]
  | Ast.ExprStmt e ->
      let s, _ = lower_expr env e in
      s
  | Ast.Return None -> [ Ir.IReturn None ]
  | Ast.Return (Some e) ->
      let s, e' = lower_expr env e in
      s @ [ Ir.IReturn (Some e') ]

(* Fig. 5's store sequence: value first, then MAP / START_WRITE / store /
   END_WRITE. *)
and shared_write env rexpr idx value =
  let si, i' = lower_expr env idx in
  shared_write_lowered env rexpr si i' value

and shared_write_idx env rexpr idx value =
  let si, i' = lower_expr env idx in
  shared_write_lowered env rexpr si i' value

and shared_write_lowered env rexpr pre idx value =
  let sv, v' = lower_expr env value in
  let t = fresh_tmp env in
  let a1 = fresh_ann env and a2 = fresh_ann env in
  pre @ sv
  @ [
      Ir.IMap (t, rexpr);
      Ir.IStart (Ir.Write, t, a1);
      Ir.IStoreShared (t, idx, v');
      Ir.IEnd (Ir.Write, t, a2);
    ]

and lower_block env stmts = List.concat_map (lower_stmt env) stmts

let lower_program (prog : Ast.program) : Ir.iprogram =
  let tables = Types.check_program prog in
  List.map
    (fun f ->
      let env =
        {
          types = Hashtbl.find tables f.Ast.fname;
          fresh = 0;
          next_ann = 0;
        }
      in
      {
        Ir.fname = f.Ast.fname;
        params = f.Ast.params;
        body = Ir.ISeq (lower_block env f.Ast.body);
      })
    prog
