(* Recursive-descent parser for MiniAce. *)

exception Error of string * int

type t = { mutable toks : (Lexer.token * int) list }

let peek p = match p.toks with [] -> (Lexer.TEof, 0) | tk :: _ -> tk
let line p = snd (peek p)
let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let err p msg = raise (Error (msg, line p))

let expect_punct p s =
  match peek p with
  | Lexer.TPunct x, _ when x = s -> advance p
  | _ -> err p (Printf.sprintf "expected '%s'" s)

let expect_kw p s =
  match peek p with
  | Lexer.TKw x, _ when x = s -> advance p
  | _ -> err p (Printf.sprintf "expected keyword '%s'" s)

let expect_ident p =
  match peek p with
  | Lexer.TIdent x, _ ->
      advance p;
      x
  | _ -> err p "expected identifier"

let eat_punct p s =
  match peek p with
  | Lexer.TPunct x, _ when x = s ->
      advance p;
      true
  | _ -> false

(* expression grammar: || < && < comparison < addsub < muldiv < unary < atom *)
let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  if eat_punct p "||" then Ast.Binop (Ast.Or, lhs, parse_or p) else lhs

and parse_and p =
  let lhs = parse_cmp p in
  if eat_punct p "&&" then Ast.Binop (Ast.And, lhs, parse_and p) else lhs

and parse_cmp p =
  let lhs = parse_addsub p in
  let op =
    match peek p with
    | Lexer.TPunct "<", _ -> Some Ast.Lt
    | Lexer.TPunct "<=", _ -> Some Ast.Le
    | Lexer.TPunct ">", _ -> Some Ast.Gt
    | Lexer.TPunct ">=", _ -> Some Ast.Ge
    | Lexer.TPunct "==", _ -> Some Ast.Eq
    | Lexer.TPunct "!=", _ -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | Some op ->
      advance p;
      Ast.Binop (op, lhs, parse_addsub p)
  | None -> lhs

and parse_addsub p =
  let lhs = ref (parse_muldiv p) in
  let rec go () =
    if eat_punct p "+" then begin
      lhs := Ast.Binop (Ast.Add, !lhs, parse_muldiv p);
      go ()
    end
    else if eat_punct p "-" then begin
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_muldiv p);
      go ()
    end
  in
  go ();
  !lhs

and parse_muldiv p =
  let lhs = ref (parse_unary p) in
  let rec go () =
    if eat_punct p "*" then begin
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary p);
      go ()
    end
    else if eat_punct p "/" then begin
      lhs := Ast.Binop (Ast.Div, !lhs, parse_unary p);
      go ()
    end
  in
  go ();
  !lhs

and parse_unary p =
  if eat_punct p "!" then Ast.Not (parse_unary p)
  else if eat_punct p "-" then Ast.Binop (Ast.Sub, Ast.Num 0., parse_unary p)
  else parse_atom p

and parse_atom p =
  match peek p with
  | Lexer.TNum v, _ ->
      advance p;
      Ast.Num v
  | Lexer.TPunct "(", _ ->
      advance p;
      let e = parse_expr p in
      expect_punct p ")";
      e
  | Lexer.TIdent x, _ -> (
      advance p;
      match peek p with
      | Lexer.TPunct "(", _ ->
          advance p;
          let args = parse_args p in
          Ast.Call (x, args)
      | Lexer.TPunct "[", _ ->
          advance p;
          let i = parse_expr p in
          expect_punct p "]";
          if eat_punct p "[" then begin
            let j = parse_expr p in
            expect_punct p "]";
            Ast.Index2 (x, i, j)
          end
          else Ast.Index (x, i)
      | _ -> Ast.Var x)
  | Lexer.TKw "newspace", _ -> err p "newspace only in space declarations"
  | _ -> err p "expected expression"

and parse_args p =
  if eat_punct p ")" then []
  else begin
    let rec go acc =
      let e = parse_expr p in
      if eat_punct p "," then go (e :: acc)
      else begin
        expect_punct p ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

let rec parse_stmt p : Ast.stmt =
  match peek p with
  | Lexer.TKw "var", _ -> (
      advance p;
      let x = expect_ident p in
      match peek p with
      | Lexer.TPunct "[", _ ->
          advance p;
          let n = parse_expr p in
          expect_punct p "]";
          expect_punct p ";";
          Ast.ArrDecl (x, n)
      | Lexer.TPunct "=", _ ->
          advance p;
          let e = parse_expr p in
          expect_punct p ";";
          Ast.VarDecl (x, Some e)
      | _ ->
          expect_punct p ";";
          Ast.VarDecl (x, None))
  | Lexer.TKw "region", _ -> (
      advance p;
      let x = expect_ident p in
      match peek p with
      | Lexer.TPunct "[", _ ->
          advance p;
          let n = parse_expr p in
          expect_punct p "]";
          expect_punct p ";";
          Ast.RegionArrDecl (x, n)
      | _ ->
          expect_punct p ";";
          Ast.RegionDecl x)
  | Lexer.TKw "space", _ ->
      advance p;
      let x = expect_ident p in
      expect_punct p "=";
      expect_kw p "newspace";
      expect_punct p "(";
      let proto = expect_ident p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.SpaceDecl (x, proto)
  | Lexer.TKw "if", _ ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      let thn = parse_block p in
      let els =
        match peek p with
        | Lexer.TKw "else", _ ->
            advance p;
            parse_block p
        | _ -> []
      in
      Ast.If (c, thn, els)
  | Lexer.TKw "while", _ ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      Ast.While (c, parse_block p)
  | Lexer.TKw "for", _ ->
      advance p;
      expect_punct p "(";
      let i = expect_ident p in
      expect_punct p "=";
      let lo = parse_expr p in
      expect_punct p ";";
      let i2 = expect_ident p in
      if i2 <> i then err p "for: condition variable differs";
      expect_punct p "<";
      let hi = parse_expr p in
      expect_punct p ";";
      let i3 = expect_ident p in
      if i3 <> i then err p "for: step variable differs";
      let step =
        if eat_punct p "+=" then parse_expr p
        else begin
          expect_punct p "=";
          let i4 = expect_ident p in
          if i4 <> i then err p "for: step must be i = i + e";
          expect_punct p "+";
          parse_expr p
        end
      in
      expect_punct p ")";
      Ast.For (i, lo, hi, step, parse_block p)
  | Lexer.TKw "barrier", _ ->
      advance p;
      expect_punct p "(";
      let s = expect_ident p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.Barrier s
  | Lexer.TKw "lock", _ ->
      advance p;
      expect_punct p "(";
      let e = parse_expr p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.Lock e
  | Lexer.TKw "unlock", _ ->
      advance p;
      expect_punct p "(";
      let e = parse_expr p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.Unlock e
  | Lexer.TKw "changeproto", _ ->
      advance p;
      expect_punct p "(";
      let s = expect_ident p in
      expect_punct p ",";
      let proto = expect_ident p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.ChangeProto (s, proto)
  | Lexer.TKw "work", _ ->
      advance p;
      expect_punct p "(";
      let e = parse_expr p in
      expect_punct p ")";
      expect_punct p ";";
      Ast.Work e
  | Lexer.TKw "return", _ ->
      advance p;
      if eat_punct p ";" then Ast.Return None
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Ast.Return (Some e)
      end
  | Lexer.TIdent x, _ -> (
      advance p;
      match peek p with
      | Lexer.TPunct "=", _ ->
          advance p;
          let e = parse_expr p in
          expect_punct p ";";
          Ast.Assign (x, e)
      | Lexer.TPunct "[", _ -> (
          advance p;
          let i = parse_expr p in
          expect_punct p "]";
          match peek p with
          | Lexer.TPunct "[", _ ->
              advance p;
              let j = parse_expr p in
              expect_punct p "]";
              expect_punct p "=";
              let e = parse_expr p in
              expect_punct p ";";
              Ast.StoreIdx2 (x, i, j, e)
          | _ ->
              expect_punct p "=";
              let e = parse_expr p in
              expect_punct p ";";
              Ast.StoreIdx (x, i, e))
      | Lexer.TPunct "(", _ ->
          advance p;
          let args = parse_args p in
          expect_punct p ";";
          Ast.ExprStmt (Ast.Call (x, args))
      | _ -> err p "expected statement")
  | _ -> err p "expected statement"

and parse_block p =
  expect_punct p "{";
  let rec go acc =
    if eat_punct p "}" then List.rev acc else go (parse_stmt p :: acc)
  in
  go []

let parse_func p =
  expect_kw p "func";
  let name = expect_ident p in
  expect_punct p "(";
  let params =
    if eat_punct p ")" then []
    else begin
      let rec go acc =
        let x = expect_ident p in
        if eat_punct p "," then go (x :: acc)
        else begin
          expect_punct p ")";
          List.rev (x :: acc)
        end
      in
      go []
    end
  in
  let body = parse_block p in
  { Ast.fname = name; params; body }

let parse_program src =
  let p = { toks = Lexer.tokenize src } in
  let rec go acc =
    match peek p with
    | Lexer.TEof, _ -> List.rev acc
    | _ -> go (parse_func p :: acc)
  in
  go []
