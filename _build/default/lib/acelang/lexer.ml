(* Hand-written lexer for MiniAce. *)

type token =
  | TNum of float
  | TIdent of string
  | TKw of string (* keywords *)
  | TPunct of string (* operators / punctuation *)
  | TEof

type t = { src : string; mutable pos : int; mutable line : int }

exception Error of string * int (* message, line *)

let keywords =
  [
    "func"; "var"; "region"; "space"; "newspace"; "if"; "else"; "while";
    "for"; "barrier"; "lock"; "unlock"; "changeproto"; "work"; "return";
  ]

let create src = { src; pos = 0; line = 1 }

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (match peek_char t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      advance t;
      advance t;
      let rec close () =
        match peek_char t with
        | None -> raise (Error ("unterminated comment", t.line))
        | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/'
          ->
            advance t;
            advance t
        | Some _ ->
            advance t;
            close ()
      in
      close ();
      skip_ws t
  | Some _ | None -> ()

let next t =
  skip_ws t;
  match peek_char t with
  | None -> TEof
  | Some c when is_digit c ->
      let start = t.pos in
      while
        match peek_char t with
        | Some c -> is_digit c || c = '.' || c = 'e' || c = 'E' || c = '-'
                    && t.pos > start
                    && (t.src.[t.pos - 1] = 'e' || t.src.[t.pos - 1] = 'E')
        | None -> false
      do
        advance t
      done;
      let s = String.sub t.src start (t.pos - start) in
      (try TNum (float_of_string s)
       with Failure _ -> raise (Error ("bad number " ^ s, t.line)))
  | Some c when is_ident_start c ->
      let start = t.pos in
      while match peek_char t with Some c -> is_ident c | None -> false do
        advance t
      done;
      let s = String.sub t.src start (t.pos - start) in
      if List.mem s keywords then TKw s else TIdent s
  | Some c ->
      let two =
        if t.pos + 1 < String.length t.src then
          String.sub t.src t.pos 2
        else ""
      in
      if List.mem two [ "<="; ">="; "=="; "!="; "&&"; "||"; "+=" ] then begin
        advance t;
        advance t;
        TPunct two
      end
      else begin
        advance t;
        TPunct (String.make 1 c)
      end

(* Tokenize the whole input, returning tokens with their lines. *)
let tokenize src =
  let t = create src in
  let rec go acc =
    let line = (skip_ws t; t.line) in
    match next t with
    | TEof -> List.rev ((TEof, line) :: acc)
    | tok -> go ((tok, line) :: acc)
  in
  go []
