(* MiniAce sources for the Table 4 experiment: a kernel per benchmark,
   written the way the paper's applications use the language — develop
   under SC, then plug in the best protocol via changeproto. The kernels
   carry the same shared-access structure as the full OCaml applications
   (element-wise loops over regions for BSC, a counter loop for TSP,
   sweep loops for Water, all-pairs reads for Barnes-Hut, neighbour sums
   for EM3D), so each optimization pass finds the same opportunities the
   paper reports (§5.3):

   - BSC: heavy matrix-product loops -> loop invariance dominates;
   - Water: repeated sections on one molecule -> merging dominates;
   - EM3D: static update's null end handlers in a tight kernel -> direct
     dispatch dominates;
   - TSP / Barnes-Hut: a mix of all three. *)

let em3d =
  {|
// EM3D kernel: bipartite ring, K nodes per side per processor, in-degree D
// (D-1 local + 1 from the next processor). Best protocol: STATIC_UPDATE.
func main() {
  space eval = newspace(SC);
  space hval = newspace(SC);
  var K = 8;
  var D = 4;
  var steps = 8;
  region e[K];
  region h[K];
  region r;
  var i = 0; var d = 0; var t = 0; var j = 0;
  for (i = 0; i < K; i += 1) {
    r = gmalloc(eval, 1);
    e[i] = r;
    r[0] = me() * 100 + i;
    r = gmalloc(hval, 1);
    h[i] = r;
    r[0] = me() * 100 + i + 0.5;
  }
  barrier(eval);
  changeproto(eval, STATIC_UPDATE);
  changeproto(hval, STATIC_UPDATE);
  region enbr[K * D];
  region hnbr[K * D];
  var nb = me() + 1;
  if (nb >= nprocs()) { nb = 0; }
  for (i = 0; i < K; i += 1) {
    for (d = 0; d < D - 1; d += 1) {
      j = i + d;
      if (j >= K) { j = j - K; }
      enbr[i * D + d] = h[j];
      hnbr[i * D + d] = e[j];
    }
    enbr[i * D + D - 1] = globalid(hval, nb, i);
    hnbr[i * D + D - 1] = globalid(eval, nb, i);
  }
  barrier(eval);
  var acc = 0;
  for (t = 0; t < steps; t += 1) {
    for (i = 0; i < K; i += 1) {
      acc = e[i][0];
      for (d = 0; d < D; d += 1) {
        acc = acc - 0.05 * enbr[i * D + d][0];
        work(8);
      }
      e[i][0] = acc;
    }
    barrier(eval);
    for (i = 0; i < K; i += 1) {
      acc = h[i][0];
      for (d = 0; d < D; d += 1) {
        acc = acc - 0.05 * hnbr[i * D + d][0];
        work(8);
      }
      h[i][0] = acc;
    }
    barrier(hval);
  }
  return e[0][0];
}
|}

let bsc =
  {|
// Blocked Cholesky kernel, block band 1 (tridiagonal blocks), column k
// owned by processor k mod P. Best protocol: WRITE_ONCE.
func main() {
  space bs = newspace(SC);
  var NB = 8;
  var B = 6;
  region diag[NB];
  region sub[NB];
  region r;
  var k = 0; var i = 0; var j = 0; var x = 0; var s = 0; var t = 0;
  for (k = 0; k < NB; k += 1) {
    if (mod(k, nprocs()) == me()) {
      r = gmalloc(bs, B * B);
      diag[k] = r;
      for (i = 0; i < B; i += 1) {
        for (j = 0; j < B; j += 1) {
          if (i == j) { r[i * B + j] = 10 + k; }
          else { r[i * B + j] = 0.5 / (1 + i + j); }
        }
      }
      r = gmalloc(bs, B * B);
      sub[k] = r;
      for (i = 0; i < B; i += 1) {
        for (j = 0; j < B; j += 1) {
          r[i * B + j] = 0.3 / (1 + i + j + k);
        }
      }
    }
  }
  barrier(bs);
  for (k = 0; k < NB; k += 1) {
    t = (k - mod(k, nprocs())) / nprocs();
    diag[k] = globalid(bs, mod(k, nprocs()), 2 * t);
    sub[k] = globalid(bs, mod(k, nprocs()), 2 * t + 1);
  }
  barrier(bs);
  changeproto(bs, WRITE_ONCE);
  var dd = 0; var v = 0; var v2 = 0; var acc2 = 0;
  for (k = 0; k < NB; k += 1) {
    if (mod(k, nprocs()) == me()) {
      // factor the diagonal block (dense Cholesky, element-wise)
      for (j = 0; j < B; j += 1) {
        dd = diag[k][j * B + j];
        for (s = 0; s < j; s += 1) {
          dd = dd - diag[k][j * B + s] * diag[k][j * B + s];
          work(24);
        }
        dd = sqrt(dd);
        diag[k][j * B + j] = dd;
        for (i = j + 1; i < B; i += 1) {
          v = diag[k][i * B + j];
          for (s = 0; s < j; s += 1) {
            v = v - diag[k][i * B + s] * diag[k][j * B + s];
            work(24);
          }
          diag[k][i * B + j] = v / dd;
        }
        for (i = 0; i < j; i += 1) { diag[k][i * B + j] = 0; }
      }
      // triangular solve of the subdiagonal block
      if (k + 1 < NB) {
        for (x = 0; x < B; x += 1) {
          for (j = 0; j < B; j += 1) {
            v2 = sub[k][x * B + j];
            for (s = 0; s < j; s += 1) {
              v2 = v2 - sub[k][x * B + s] * diag[k][j * B + s];
              work(24);
            }
            sub[k][x * B + j] = v2 / diag[k][j * B + j];
          }
        }
      }
    }
    barrier(bs);
    // fan-in update of the next column's diagonal block
    if (k + 1 < NB) {
      if (mod(k + 1, nprocs()) == me()) {
        for (i = 0; i < B; i += 1) {
          for (j = 0; j < B; j += 1) {
            acc2 = 0;
            for (s = 0; s < B; s += 1) {
              acc2 = acc2 + sub[k][i * B + s] * sub[k][j * B + s];
              work(24);
            }
            diag[k + 1][i * B + j] = diag[k + 1][i * B + j] - acc2;
          }
        }
      }
    }
    barrier(bs);
  }
  return diag[NB - 1][0];
}
|}

let tsp =
  {|
// TSP kernel: a shared job counter assigns work; a shared bound is read
// per job and improved under its lock. Best protocol: COUNTER for the
// counter space.
func main() {
  space cs = newspace(SC);
  space bs = newspace(SC);
  region counter;
  region best;
  if (me() == 0) {
    counter = gmalloc(cs, 1);
    best = gmalloc(bs, 1);
    counter[0] = 0;
    best[0] = 1000000;
  }
  barrier(cs);
  counter = globalid(cs, 0, 0);
  best = globalid(bs, 0, 0);
  changeproto(cs, COUNTER);
  var njobs = 160;
  var j = 0; var running = 1; var bound = 0; var result = 0;
  while (running == 1) {
    lock(counter);
    j = counter[0];
    counter[0] = j + 1;
    unlock(counter);
    if (j >= njobs) { running = 0; }
    else {
      bound = best[0];
      // branch-and-bound body (charged, data-independent here)
      work(4000 + mod(j * 37, 29) * 400);
      result = 900000 - j * 13;
      if (result < bound) {
        lock(best);
        if (result < best[0]) { best[0] = result; }
        unlock(best);
      }
    }
  }
  barrier(bs);
  return best[0];
}
|}

let water =
  {|
// Water kernel: intra-molecular sweeps on own molecules under NULL, then
// force accumulation into the next processor's molecules under PIPELINE.
func main() {
  space ms = newspace(SC);
  var K = 4;
  var SW = 30;
  var steps = 4;
  region mol[K];
  region r;
  region other;
  var i = 0; var s = 0; var t = 0; var p = 0;
  for (i = 0; i < K; i += 1) {
    r = gmalloc(ms, 4);
    mol[i] = r;
    r[0] = me() + i * 0.1 + 1;
    r[1] = 0;
  }
  barrier(ms);
  p = me() + 1;
  if (p >= nprocs()) { p = 0; }
  for (t = 0; t < steps; t += 1) {
    changeproto(ms, NULL);
    for (i = 0; i < K; i += 1) {
      for (s = 0; s < SW; s += 1) {
        mol[i][0] = mol[i][0] - 0.01 * mol[i][0];
        work(30);
      }
    }
    changeproto(ms, PIPELINE);
    for (i = 0; i < K; i += 1) {
      other = globalid(ms, p, i);
      lock(other);
      other[1] = other[1] + 0.5;
      unlock(other);
      work(40);
    }
    barrier(ms);
  }
  changeproto(ms, SC);
  barrier(ms);
  return mol[0][0] + mol[0][1];
}
|}

let barnes_hut =
  {|
// Barnes-Hut kernel: every processor reads all body positions, computes
// (direct) forces for its own bodies and publishes new positions.
// Best protocol: DYN_UPDATE for the body space.
func main() {
  space bodies = newspace(SC);
  var K = 4;
  var steps = 4;
  region mine[K];
  region r;
  var n = nprocs() * K;
  region all[n];
  var i = 0; var jj = 0; var t = 0; var o = 0; var fsum = 0; var x = 0;
  for (i = 0; i < K; i += 1) {
    r = gmalloc(bodies, 2);
    mine[i] = r;
    r[0] = me() * 10 + i;
    r[1] = 1;
  }
  barrier(bodies);
  for (o = 0; o < nprocs(); o += 1) {
    for (i = 0; i < K; i += 1) {
      all[o * K + i] = globalid(bodies, o, i);
    }
  }
  changeproto(bodies, DYN_UPDATE);
  barrier(bodies);
  for (t = 0; t < steps; t += 1) {
    for (i = 0; i < K; i += 1) {
      fsum = 0;
      x = mine[i][0];
      for (jj = 0; jj < n; jj += 1) {
        fsum = fsum + (all[jj][0] - x) * all[jj][1] * 0.001;
        work(70);
      }
      mine[i][0] = x + fsum * 0.01;
    }
    barrier(bodies);
  }
  return mine[0][0];
}
|}

let all =
  [
    ("Barnes-Hut", barnes_hut);
    ("BSC", bsc);
    ("EM3D", em3d);
    ("TSP", tsp);
    ("WATER", water);
  ]
