(* Abstract syntax of MiniAce, the C-subset surface language of this
   reproduction (paper §3.1). Globals are regions allocated with gmalloc
   from spaces; pointer arithmetic on shared data is rejected by the type
   checker, so every shared access is region[index] — the property that
   lets the compiler insert region annotations (Fig. 5). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type expr =
  | Num of float
  | Var of string
  | Binop of binop * expr * expr
  | Not of expr
  | Index of string * expr (* local array element, region-array element,
                              or shared access r[i] — typing decides *)
  | Index2 of string * expr * expr (* regions[i][j]: shared access through
                                       a region array *)
  | Call of string * expr list (* user function or builtin *)

type stmt =
  | VarDecl of string * expr option (* var x; / var x = e; *)
  | ArrDecl of string * expr (* var a[n]; *)
  | RegionDecl of string (* region r; *)
  | RegionArrDecl of string * expr (* region a[n]; *)
  | SpaceDecl of string * string (* space s = newspace(PROTO); *)
  | Assign of string * expr
  | StoreIdx of string * expr * expr (* a[i] = e  (local / region-array /
                                         shared by type) *)
  | StoreIdx2 of string * expr * expr * expr (* ra[i][j] = e *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * expr * stmt list (* i = lo; i < hi; i += step *)
  | Barrier of string
  | Lock of expr
  | Unlock of expr
  | ChangeProto of string * string
  | Work of expr
  | ExprStmt of expr
  | Return of expr option

type func = { fname : string; params : string list; body : stmt list }

type program = func list

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
