(* Execute annotated IR on the Ace runtime inside the simulated machine.

   Every simulated processor runs the program's [main] as its SPMD body.
   Instruction costs model compiled SPARC code: a couple of cycles per
   operator/assignment, function-call overhead, and the runtime's own
   charges for maps and protocol calls. Direct-dispatch calls skip the
   space-indirection cost; removed calls cost nothing at all (the interp
   still performs the zero-cost access bookkeeping the real compiled null
   call would not need, because the simulator uses it to serialize
   coherence actions). *)

module Ops = Ace_runtime.Ops
module Protocol = Ace_runtime.Protocol
module Store = Ace_region.Store
module Blocks = Ace_region.Blocks

exception Runtime_error of string

type value =
  | VNum of float
  | VMapped of Store.meta
  | VReg of int (* region id *)
  | VRegArr of int array
  | VNumArr of float array
  | VSpace of int

exception Return_exc of value option

type frame = {
  prog : Ir.iprogram;
  ctx : Ops.ctx;
  vars : (string, value) Hashtbl.t;
}

(* Instruction cost model. Arithmetic is charged through the kernels'
   explicit work() calls (the same flops the hand-written versions charge),
   so compiled-vs-hand differences isolate annotation overhead, as in the
   paper's §5.3; the small per-op charge models residual compiled-code
   slop (temporaries, no register allocation). *)
let op_cycles = 0.5
let call_overhead = 12.
let access_cycles = 1.

let charge fr c = Ops.work fr.ctx c

let lookup fr x =
  match Hashtbl.find_opt fr.vars x with
  | Some v -> v
  | None -> raise (Runtime_error ("unbound variable " ^ x))

let num = function
  | VNum v -> v
  | _ -> raise (Runtime_error "expected a number")

let rec eval fr (e : Ir.nexpr) : float =
  match e with
  | Ir.NNum v -> v
  | Ir.NVar x -> num (lookup fr x)
  | Ir.NMe -> float_of_int (Ops.me fr.ctx)
  | Ir.NNprocs -> float_of_int (Ops.nprocs fr.ctx)
  | Ir.NSqrt e ->
      charge fr 30. (* software-assisted sqrt on the 33 MHz SPARC *);
      sqrt (eval fr e)
  | Ir.NMod (a, b) ->
      charge fr 8.;
      let b = eval fr b in
      if b = 0. then raise (Runtime_error "mod by zero");
      float_of_int (int_of_float (eval fr a) mod int_of_float b)
  | Ir.NNot e ->
      charge fr op_cycles;
      if eval fr e = 0. then 1. else 0.
  | Ir.NIdx (a, i) -> (
      charge fr op_cycles;
      let idx = int_of_float (eval fr i) in
      match lookup fr a with
      | VNumArr arr ->
          if idx < 0 || idx >= Array.length arr then
            raise (Runtime_error ("index out of bounds on " ^ a));
          arr.(idx)
      | _ -> raise (Runtime_error (a ^ " is not a local array")))
  | Ir.NBin (op, a, b) ->
      charge fr op_cycles;
      let x = eval fr a and y = eval fr b in
      let bool v = if v then 1. else 0. in
      (match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Lt -> bool (x < y)
      | Ast.Le -> bool (x <= y)
      | Ast.Gt -> bool (x > y)
      | Ast.Ge -> bool (x >= y)
      | Ast.Eq -> bool (x = y)
      | Ast.Ne -> bool (x <> y)
      | Ast.And -> bool (x <> 0. && y <> 0.)
      | Ast.Or -> bool (x <> 0. || y <> 0.))

let eval_rexpr fr (r : Ir.rexpr) : int =
  match r with
  | Ir.RVar x -> (
      match lookup fr x with
      | VReg rid -> rid
      | _ -> raise (Runtime_error (x ^ " is not a region")))
  | Ir.RIdx (a, i) -> (
      let idx = int_of_float (eval fr i) in
      match lookup fr a with
      | VRegArr arr ->
          if idx < 0 || idx >= Array.length arr then
            raise (Runtime_error ("region index out of bounds on " ^ a));
          let rid = arr.(idx) in
          if rid < 0 then raise (Runtime_error (a ^ " element unset"));
          rid
      | _ -> raise (Runtime_error (a ^ " is not a region array")))

let mapped fr t =
  match lookup fr t with
  | VMapped meta -> meta
  | _ -> raise (Runtime_error (t ^ " is not a mapped handle"))

let space_sid fr s =
  match lookup fr s with
  | VSpace sid -> sid
  | _ -> raise (Runtime_error (s ^ " is not a space"))

(* A protocol call: dynamic (dispatched), direct, or removed. *)
let protocol_call fr (a : Ir.ann) ~dispatched ~direct meta =
  if a.Ir.removed then begin
    (* the call is gone from the compiled code; keep the simulator's
       bookkeeping consistent at zero cost *)
    direct meta
  end
  else if a.Ir.direct then begin
    charge fr call_overhead;
    direct meta
  end
  else begin
    charge fr call_overhead;
    dispatched fr.ctx meta
  end

(* Direct variants bypass the space dispatch but still run the (single
   known) protocol's handler and the access bookkeeping. *)
let direct_start fr mode removed meta =
  let sp = Ace_runtime.Runtime.space fr.ctx.Protocol.rt meta.Store.space in
  let hook =
    match mode with
    | Ir.Read -> sp.Protocol.proto.Protocol.start_read
    | Ir.Write -> sp.Protocol.proto.Protocol.start_write
  in
  if not removed then hook fr.ctx meta;
  Blocks.begin_access fr.ctx.Protocol.bctx meta
    ~write:(match mode with Ir.Read -> false | Ir.Write -> true)

let direct_end fr mode removed meta =
  let sp = Ace_runtime.Runtime.space fr.ctx.Protocol.rt meta.Store.space in
  let hook =
    match mode with
    | Ir.Read -> sp.Protocol.proto.Protocol.end_read
    | Ir.Write -> sp.Protocol.proto.Protocol.end_write
  in
  if not removed then hook fr.ctx meta;
  Blocks.end_access fr.ctx.Protocol.bctx meta
    ~write:(match mode with Ir.Read -> false | Ir.Write -> true)

let rec exec fr (s : Ir.istmt) : unit =
  match s with
  | Ir.IDeclArr (x, n) ->
      let n = int_of_float (eval fr n) in
      Hashtbl.replace fr.vars x (VNumArr (Array.make (max n 0) 0.))
  | Ir.IDeclRegArr (x, n) ->
      let n = int_of_float (eval fr n) in
      Hashtbl.replace fr.vars x (VRegArr (Array.make (max n 0) (-1)))
  | Ir.IAssign (x, e) ->
      charge fr op_cycles;
      Hashtbl.replace fr.vars x (VNum (eval fr e))
  | Ir.IStoreLocal (a, i, e) -> (
      charge fr op_cycles;
      let idx = int_of_float (eval fr i) in
      let v = eval fr e in
      match lookup fr a with
      | VNumArr arr ->
          if idx < 0 || idx >= Array.length arr then
            raise (Runtime_error ("index out of bounds on " ^ a));
          arr.(idx) <- v
      | _ -> raise (Runtime_error (a ^ " is not a local array")))
  | Ir.INewSpace (x, proto) ->
      Hashtbl.replace fr.vars x (VSpace (Ops.new_space fr.ctx proto))
  | Ir.IRegAssign (x, r) ->
      charge fr op_cycles;
      Hashtbl.replace fr.vars x (VReg (eval_rexpr fr r))
  | Ir.IGmalloc (x, s, n) ->
      let sid = space_sid fr s in
      let len = int_of_float (eval fr n) in
      let h = Ops.alloc fr.ctx ~space:sid ~len in
      Hashtbl.replace fr.vars x (VReg (Ops.rid h))
  | Ir.IGlobalId (x, s, owner, k) ->
      let sid = space_sid fr s in
      let owner = int_of_float (eval fr owner) in
      let seq = int_of_float (eval fr k) in
      let rid = Ops.global_id fr.ctx ~space:sid ~owner ~seq in
      Hashtbl.replace fr.vars x (VReg rid)
  | Ir.IStoreReg (a, i, r) -> (
      charge fr op_cycles;
      let idx = int_of_float (eval fr i) in
      let rid = eval_rexpr fr r in
      match lookup fr a with
      | VRegArr arr ->
          if idx < 0 || idx >= Array.length arr then
            raise (Runtime_error ("region index out of bounds on " ^ a));
          arr.(idx) <- rid
      | _ -> raise (Runtime_error (a ^ " is not a region array")))
  | Ir.IMap (t, r) ->
      let rid = eval_rexpr fr r in
      Hashtbl.replace fr.vars t (VMapped (Ops.map fr.ctx rid))
  | Ir.IStart (mode, t, a) ->
      let meta = mapped fr t in
      protocol_call fr a
        ~dispatched:(match mode with Ir.Read -> Ops.start_read | Ir.Write -> Ops.start_write)
        ~direct:(direct_start fr mode a.Ir.removed)
        meta
  | Ir.IEnd (mode, t, a) ->
      let meta = mapped fr t in
      protocol_call fr a
        ~dispatched:(match mode with Ir.Read -> Ops.end_read | Ir.Write -> Ops.end_write)
        ~direct:(direct_end fr mode a.Ir.removed)
        meta
  | Ir.ILoadShared (x, t, i) ->
      charge fr access_cycles;
      let meta = mapped fr t in
      let data = Ops.data fr.ctx meta in
      let idx = int_of_float (eval fr i) in
      if idx < 0 || idx >= Array.length data then
        raise (Runtime_error "shared index out of bounds");
      Hashtbl.replace fr.vars x (VNum data.(idx))
  | Ir.IStoreShared (t, i, e) ->
      charge fr access_cycles;
      let meta = mapped fr t in
      let data = Ops.data fr.ctx meta in
      let idx = int_of_float (eval fr i) in
      let v = eval fr e in
      if idx < 0 || idx >= Array.length data then
        raise (Runtime_error "shared index out of bounds");
      data.(idx) <- v
  | Ir.ISeq l -> List.iter (exec fr) l
  | Ir.IIf (c, a, b) ->
      charge fr op_cycles;
      if eval fr c <> 0. then exec fr a else exec fr b
  | Ir.IWhile (c, body) ->
      let rec go () =
        charge fr op_cycles;
        if eval fr c <> 0. then begin
          exec fr body;
          go ()
        end
      in
      go ()
  | Ir.IFor (i, lo, hi, step, body) ->
      let lo = eval fr lo in
      Hashtbl.replace fr.vars i (VNum lo);
      let rec go () =
        charge fr op_cycles;
        let v = num (lookup fr i) in
        if v < eval fr hi then begin
          exec fr body;
          Hashtbl.replace fr.vars i (VNum (num (lookup fr i) +. eval fr step));
          go ()
        end
      in
      go ()
  | Ir.IBarrier s -> Ops.barrier fr.ctx ~space:(space_sid fr s)
  | Ir.ILock (t, a) ->
      let meta = mapped fr t in
      protocol_call fr a ~dispatched:Ops.lock
        ~direct:(fun meta ->
          if not a.Ir.removed then
            let sp =
              Ace_runtime.Runtime.space fr.ctx.Protocol.rt meta.Store.space
            in
            sp.Protocol.proto.Protocol.lock fr.ctx meta)
        meta
  | Ir.IUnlock (t, a) ->
      let meta = mapped fr t in
      protocol_call fr a ~dispatched:Ops.unlock
        ~direct:(fun meta ->
          if not a.Ir.removed then
            let sp =
              Ace_runtime.Runtime.space fr.ctx.Protocol.rt meta.Store.space
            in
            sp.Protocol.proto.Protocol.unlock fr.ctx meta)
        meta
  | Ir.IChangeProto (s, proto) ->
      Ops.change_protocol fr.ctx ~space:(space_sid fr s) proto
  | Ir.IWork e -> Ops.work fr.ctx (eval fr e)
  | Ir.ICallStmt (dst, f, args) -> (
      let argv = List.map (fun a -> VNum (eval fr a)) args in
      charge fr call_overhead;
      let result = call fr.prog fr.ctx f argv in
      match (dst, result) with
      | Some x, Some v -> Hashtbl.replace fr.vars x v
      | Some x, None -> Hashtbl.replace fr.vars x (VNum 0.)
      | None, _ -> ())
  | Ir.IReturn e ->
      let v = match e with Some e -> Some (VNum (eval fr e)) | None -> None in
      raise (Return_exc v)

and call prog ctx fname argv : value option =
  let f =
    match List.find_opt (fun f -> f.Ir.fname = fname) prog with
    | Some f -> f
    | None -> raise (Runtime_error ("unknown function " ^ fname))
  in
  if List.length f.Ir.params <> List.length argv then
    raise (Runtime_error ("arity mismatch calling " ^ fname));
  let fr = { prog; ctx; vars = Hashtbl.create 32 } in
  List.iter2 (fun p v -> Hashtbl.replace fr.vars p v) f.Ir.params argv;
  match exec fr f.Ir.body with
  | () -> None
  | exception Return_exc v -> v

(* Run [main] as the SPMD body on every simulated processor of [rt];
   returns node 0's numeric return value (nan if none). *)
let run_spmd (rt : Protocol.runtime) (prog : Ir.iprogram) : float =
  let result = ref nan in
  Ace_runtime.Runtime.run rt (fun ctx ->
      let r = call prog ctx "main" [] in
      if Ops.me ctx = 0 then
        match r with Some (VNum v) -> result := v | Some _ | None -> ());
  !result
