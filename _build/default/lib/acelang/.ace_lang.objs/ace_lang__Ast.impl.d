lib/acelang/ast.ml:
