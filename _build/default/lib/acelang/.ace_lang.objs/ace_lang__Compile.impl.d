lib/acelang/compile.ml: Ir Lexer Lower Opt Parser Printf Registry Types
