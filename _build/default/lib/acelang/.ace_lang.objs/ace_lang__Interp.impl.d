lib/acelang/interp.ml: Ace_region Ace_runtime Array Ast Hashtbl Ir List
