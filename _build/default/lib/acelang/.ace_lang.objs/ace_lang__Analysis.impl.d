lib/acelang/analysis.ml: Ir List Map Set String
