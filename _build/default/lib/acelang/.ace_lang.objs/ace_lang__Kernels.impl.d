lib/acelang/kernels.ml:
