lib/acelang/ir.ml: Ast Float Format List Printf String
