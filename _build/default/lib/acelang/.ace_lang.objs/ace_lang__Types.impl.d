lib/acelang/types.ml: Ast Hashtbl List Printf
