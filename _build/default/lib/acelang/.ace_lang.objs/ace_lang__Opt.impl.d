lib/acelang/opt.ml: Analysis Format Hashtbl Ir List Registry String
