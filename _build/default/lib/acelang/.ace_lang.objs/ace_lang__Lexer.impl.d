lib/acelang/lexer.ml: List String
