lib/acelang/registry.ml: Ace_runtime Buffer List Printf String
