lib/acelang/lower.ml: Ast Hashtbl Ir List Printf Types
