lib/acelang/parser.ml: Ast Lexer List Printf
