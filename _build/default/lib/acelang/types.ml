(* MiniAce type checking. The key rules come from paper §3.1: shared data
   is reached only through region handles, and arithmetic on region values
   is forbidden (no pointer into the middle of a region can exist), which
   is what makes every shared access syntactically recognizable for the
   annotation-inserting compiler. *)

type ty = Num | Reg | NumArr | RegArr | Space

exception Error of string

let show = function
  | Num -> "num"
  | Reg -> "region"
  | NumArr -> "num array"
  | RegArr -> "region array"
  | Space -> "space"

type fenv = {
  vars : (string, ty) Hashtbl.t; (* function-scoped *)
  mutable returns_value : bool;
}

(* name -> declared arity of user functions *)
type genv = (string, int) Hashtbl.t

let builtin_arity =
  [ ("me", 0); ("nprocs", 0); ("gmalloc", 2); ("globalid", 3); ("sqrt", 1); ("mod", 2) ]

let declare fe x ty =
  if Hashtbl.mem fe.vars x then raise (Error ("duplicate declaration of " ^ x));
  Hashtbl.add fe.vars x ty

let lookup fe x =
  match Hashtbl.find_opt fe.vars x with
  | Some ty -> ty
  | None -> raise (Error ("undeclared variable " ^ x))

let rec type_of_expr (ge : genv) fe (e : Ast.expr) : ty =
  match e with
  | Ast.Num _ -> Num
  | Ast.Var x -> lookup fe x
  | Ast.Not e ->
      check ge fe e Num;
      Num
  | Ast.Binop (op, a, b) ->
      (* arithmetic on regions is a type error — the paper's no-pointer-
         arithmetic rule *)
      let ta = type_of_expr ge fe a and tb = type_of_expr ge fe b in
      if ta <> Num || tb <> Num then
        raise
          (Error
             (Printf.sprintf "operator %s requires numbers, got %s and %s"
                (Ast.binop_name op) (show ta) (show tb)));
      Num
  | Ast.Index (x, i) -> (
      check ge fe i Num;
      match lookup fe x with
      | NumArr -> Num
      | Reg -> Num (* shared access *)
      | RegArr -> Reg
      | t -> raise (Error (x ^ " is not indexable (a " ^ show t ^ ")")))
  | Ast.Index2 (x, i, j) -> (
      check ge fe i Num;
      check ge fe j Num;
      match lookup fe x with
      | RegArr -> Num (* shared access through a region array *)
      | t -> raise (Error (x ^ "[i][j] requires a region array, got " ^ show t)))
  | Ast.Call ("me", []) | Ast.Call ("nprocs", []) -> Num
  | Ast.Call ("sqrt", [ e ]) ->
      check ge fe e Num;
      Num
  | Ast.Call ("mod", [ a; b ]) ->
      check ge fe a Num;
      check ge fe b Num;
      Num
  | Ast.Call ("gmalloc", [ s; n ]) ->
      check ge fe s Space;
      check ge fe n Num;
      Reg
  | Ast.Call ("globalid", [ s; owner; k ]) ->
      check ge fe s Space;
      check ge fe owner Num;
      check ge fe k Num;
      Reg
  | Ast.Call (f, args) -> (
      match List.assoc_opt f builtin_arity with
      | Some n ->
          raise
            (Error (Printf.sprintf "%s expects %d argument(s)" f n))
      | None -> (
          match Hashtbl.find_opt ge f with
          | None -> raise (Error ("unknown function " ^ f))
          | Some arity ->
              if List.length args <> arity then
                raise (Error ("wrong arity calling " ^ f));
              List.iter (fun a -> check ge fe a Num) args;
              Num))

and check ge fe e ty =
  let t = type_of_expr ge fe e in
  if t <> ty then
    raise (Error (Printf.sprintf "expected %s, got %s" (show ty) (show t)))

let rec check_stmt ge fe (s : Ast.stmt) =
  match s with
  | Ast.VarDecl (x, init) ->
      (match init with Some e -> check ge fe e Num | None -> ());
      declare fe x Num
  | Ast.ArrDecl (x, n) ->
      check ge fe n Num;
      declare fe x NumArr
  | Ast.RegionDecl x -> declare fe x Reg
  | Ast.RegionArrDecl (x, n) ->
      check ge fe n Num;
      declare fe x RegArr
  | Ast.SpaceDecl (x, _proto) -> declare fe x Space
  | Ast.Assign (x, e) -> (
      match lookup fe x with
      | Num -> check ge fe e Num
      | Reg -> check ge fe e Reg
      | t -> raise (Error ("cannot assign to " ^ x ^ " of type " ^ show t)))
  | Ast.StoreIdx (x, i, e) -> (
      check ge fe i Num;
      match lookup fe x with
      | NumArr | Reg -> check ge fe e Num
      | RegArr -> check ge fe e Reg
      | t -> raise (Error (x ^ " is not indexable (a " ^ show t ^ ")")))
  | Ast.StoreIdx2 (x, i, j, e) -> (
      check ge fe i Num;
      check ge fe j Num;
      match lookup fe x with
      | RegArr -> check ge fe e Num
      | t -> raise (Error (x ^ "[i][j] requires a region array, got " ^ show t)))
  | Ast.If (c, a, b) ->
      check ge fe c Num;
      List.iter (check_stmt ge fe) a;
      List.iter (check_stmt ge fe) b
  | Ast.While (c, body) ->
      check ge fe c Num;
      List.iter (check_stmt ge fe) body
  | Ast.For (i, lo, hi, step, body) ->
      (match Hashtbl.find_opt fe.vars i with
      | Some Num -> ()
      | Some t -> raise (Error ("loop variable " ^ i ^ " is a " ^ show t))
      | None -> declare fe i Num);
      check ge fe lo Num;
      check ge fe hi Num;
      check ge fe step Num;
      List.iter (check_stmt ge fe) body
  | Ast.Barrier s -> (
      match lookup fe s with
      | Space -> ()
      | t -> raise (Error ("barrier requires a space, got " ^ show t)))
  | Ast.Lock e | Ast.Unlock e -> check ge fe e Reg
  | Ast.ChangeProto (s, _proto) -> (
      match lookup fe s with
      | Space -> ()
      | t -> raise (Error ("changeproto requires a space, got " ^ show t)))
  | Ast.Work e -> check ge fe e Num
  | Ast.ExprStmt e -> ignore (type_of_expr ge fe e)
  | Ast.Return (Some e) ->
      check ge fe e Num;
      fe.returns_value <- true
  | Ast.Return None -> ()

(* Check a program; returns the per-function variable type tables used by
   the lowering pass. *)
let check_program (prog : Ast.program) =
  let ge : genv = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem ge f.Ast.fname then
        raise (Error ("duplicate function " ^ f.Ast.fname));
      if List.mem_assoc f.Ast.fname builtin_arity then
        raise (Error (f.Ast.fname ^ " is a builtin"));
      Hashtbl.add ge f.Ast.fname (List.length f.Ast.params))
    prog;
  let tables = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let fe = { vars = Hashtbl.create 16; returns_value = false } in
      List.iter (fun x -> declare fe x Num) f.Ast.params;
      List.iter (check_stmt ge fe) f.Ast.body;
      Hashtbl.add tables f.Ast.fname fe.vars)
    prog;
  tables
