(* The compiler driver: source text -> type-checked, lowered, optimized IR. *)

type diagnostics = {
  level : Opt.level;
  before : Ir.counts;
  after : Ir.counts;
}

let frontend source : Ir.iprogram =
  let ast =
    try Parser.parse_program source with
    | Lexer.Error (msg, line) ->
        failwith (Printf.sprintf "lex error (line %d): %s" line msg)
    | Parser.Error (msg, line) ->
        failwith (Printf.sprintf "parse error (line %d): %s" line msg)
  in
  try Lower.lower_program ast
  with Types.Error msg -> failwith ("type error: " ^ msg)

let compile ?(registry : Registry.t = []) ~(level : Opt.level) source :
    Ir.iprogram * diagnostics =
  let ir = frontend source in
  let before = Ir.count_annotations ir in
  let ir = Opt.optimize registry level ir in
  let after = Ir.count_annotations ir in
  (ir, { level; before; after })
