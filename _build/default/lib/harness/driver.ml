(* Generic drivers: run any application (functorized over the DSM facade) on
   the CRL baseline or on the Ace runtime, returning simulated seconds and
   the node-0 result value. *)

module type APP = sig
  type config

  val n_spaces : int

  module Make (D : Ace_region.Dsm_intf.S) : sig
    val run : config -> D.ctx -> float
  end
end

type outcome = { seconds : float; result : float }

let run_crl (type cfg) ~nprocs (module App : APP with type config = cfg)
    (cfg : cfg) =
  let sys = Ace_crl.Crl.create ~nprocs () in
  let module A = App.Make (Ace_crl.Crl.Api) in
  let result = ref nan in
  Ace_crl.Crl.run sys (fun ctx ->
      let r = A.run cfg ctx in
      if Ace_crl.Crl.me ctx = 0 then result := r);
  { seconds = Ace_crl.Crl.time_seconds sys; result = !result }

let run_ace (type cfg) ~nprocs (module App : APP with type config = cfg)
    (cfg : cfg) =
  let rt = Ace_runtime.Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  for _ = 1 to App.n_spaces do
    ignore (Ace_runtime.Runtime.new_space rt "SC")
  done;
  let module A = App.Make (Ace_runtime.Ops.Api) in
  let result = ref nan in
  Ace_runtime.Runtime.run rt (fun ctx ->
      let r = A.run cfg ctx in
      if Ace_runtime.Ops.me ctx = 0 then result := r);
  { seconds = Ace_runtime.Runtime.time_seconds rt; result = !result }

(* Per-iteration timing as in the paper ("average time per iteration ...
   discard the first iteration"): run once with a single step and once with
   [1 + iters] steps; the difference isolates the steady-state iterations,
   cancelling setup and cold-start costs exactly (the simulator is
   deterministic). *)
let per_iteration ~run_with_steps ~iters =
  let warm = run_with_steps 1 in
  let full = run_with_steps (1 + iters) in
  {
    seconds = (full.seconds -. warm.seconds) /. float_of_int iters;
    result = full.result;
  }
