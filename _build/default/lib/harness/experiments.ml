(* The paper's evaluation (Section 5), regenerated. Every row reports
   simulated seconds on the modelled 32-node CM-5. *)

module Em3d = Ace_apps.Em3d
module Barnes_hut = Ace_apps.Barnes_hut
module Cholesky = Ace_apps.Cholesky
module Tsp = Ace_apps.Tsp
module Water = Ace_apps.Water

type scale = { nprocs : int; factor : int }

let default_scale = { nprocs = 32; factor = 1 }

(* Benchmark instances, scaled-down versions of Table 3's inputs (see
   DESIGN.md). [factor] multiplies the dominant size dimension. *)
let em3d_cfg s steps =
  { Em3d.default with Em3d.n_nodes = 800 * s.factor; steps }

let bh_cfg s steps =
  { Barnes_hut.default with Barnes_hut.n_bodies = 512 * s.factor; steps }

let water_cfg s steps =
  {
    Water.default with
    Water.core = { Water.default.Water.core with Ace_apps.Water_core.n_mol = 128 * s.factor; steps };
  }

let bsc_cfg s =
  {
    Cholesky.default with
    Cholesky.core =
      { Cholesky.default.Cholesky.core with Ace_apps.Chol_core.nb = 12 * s.factor };
  }

let tsp_cfg _s = Tsp.default

(* Branch-and-bound timing depends on work assignment, so TSP times are
   averaged over three instances, as the paper averages three runs. *)
let tsp_seeds = [ 3; 5; 7 ]

let tsp_avg run =
  let outcomes =
    List.map
      (fun seed ->
        run
          {
            Tsp.default with
            Tsp.core = { Tsp.default.Tsp.core with Ace_apps.Tsp_core.seed = seed };
          })
      tsp_seeds
  in
  let n = float_of_int (List.length outcomes) in
  ( List.fold_left (fun a o -> a +. o.Driver.seconds) 0. outcomes /. n,
    (List.hd outcomes).Driver.result )

type row = {
  name : string;
  baseline : float; (* seconds *)
  ace : float;
  base_result : float;
  ace_result : float;
  per_iteration : bool;
}

let speedup r = r.baseline /. r.ace

(* Fig. 7a: Ace runtime vs CRL, both under the SC invalidation protocol. *)
let fig7a ?(scale = default_scale) () =
  let iters = 4 in
  let em3d =
    let run sys steps =
      let cfg = em3d_cfg scale steps in
      match sys with
      | `Crl -> Driver.run_crl ~nprocs:scale.nprocs (module Em3d) cfg
      | `Ace -> Driver.run_ace ~nprocs:scale.nprocs (module Em3d) cfg
    in
    let c = Driver.per_iteration ~run_with_steps:(run `Crl) ~iters in
    let a = Driver.per_iteration ~run_with_steps:(run `Ace) ~iters in
    {
      name = "EM3D";
      baseline = c.Driver.seconds;
      ace = a.Driver.seconds;
      base_result = c.Driver.result;
      ace_result = a.Driver.result;
      per_iteration = true;
    }
  in
  let bh =
    let run sys steps =
      let cfg = bh_cfg scale steps in
      match sys with
      | `Crl -> Driver.run_crl ~nprocs:scale.nprocs (module Barnes_hut) cfg
      | `Ace -> Driver.run_ace ~nprocs:scale.nprocs (module Barnes_hut) cfg
    in
    let c = Driver.per_iteration ~run_with_steps:(run `Crl) ~iters in
    let a = Driver.per_iteration ~run_with_steps:(run `Ace) ~iters in
    {
      name = "Barnes-Hut";
      baseline = c.Driver.seconds;
      ace = a.Driver.seconds;
      base_result = c.Driver.result;
      ace_result = a.Driver.result;
      per_iteration = true;
    }
  in
  let water =
    let run sys steps =
      let cfg = water_cfg scale steps in
      match sys with
      | `Crl -> Driver.run_crl ~nprocs:scale.nprocs (module Water) cfg
      | `Ace -> Driver.run_ace ~nprocs:scale.nprocs (module Water) cfg
    in
    let c = Driver.per_iteration ~run_with_steps:(run `Crl) ~iters in
    let a = Driver.per_iteration ~run_with_steps:(run `Ace) ~iters in
    {
      name = "Water";
      baseline = c.Driver.seconds;
      ace = a.Driver.seconds;
      base_result = c.Driver.result;
      ace_result = a.Driver.result;
      per_iteration = true;
    }
  in
  let bsc =
    let cfg = bsc_cfg scale in
    let c = Driver.run_crl ~nprocs:scale.nprocs (module Cholesky) cfg in
    let a = Driver.run_ace ~nprocs:scale.nprocs (module Cholesky) cfg in
    {
      name = "BSC";
      baseline = c.Driver.seconds;
      ace = a.Driver.seconds;
      base_result = c.Driver.result;
      ace_result = a.Driver.result;
      per_iteration = false;
    }
  in
  let tsp =
    let ct, cr = tsp_avg (Driver.run_crl ~nprocs:scale.nprocs (module Tsp)) in
    let at, ar = tsp_avg (Driver.run_ace ~nprocs:scale.nprocs (module Tsp)) in
    {
      name = "TSP";
      baseline = ct;
      ace = at;
      base_result = cr;
      ace_result = ar;
      per_iteration = false;
    }
  in
  [ bh; bsc; em3d; tsp; water ]

(* Fig. 7b: single (SC) protocol vs application-specific protocols, both on
   the Ace runtime. *)
let fig7b ?(scale = default_scale) () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let em3d =
    let run proto steps =
      Driver.run_ace ~nprocs (module Em3d)
        { (em3d_cfg scale steps) with Em3d.protocol = proto }
    in
    let sc = Driver.per_iteration ~run_with_steps:(run None) ~iters in
    let cu =
      Driver.per_iteration ~run_with_steps:(run (Some "STATIC_UPDATE")) ~iters
    in
    {
      name = "EM3D (static update)";
      baseline = sc.Driver.seconds;
      ace = cu.Driver.seconds;
      base_result = sc.Driver.result;
      ace_result = cu.Driver.result;
      per_iteration = true;
    }
  in
  let bh =
    let run proto steps =
      Driver.run_ace ~nprocs (module Barnes_hut)
        { (bh_cfg scale steps) with Barnes_hut.protocol = proto }
    in
    let sc = Driver.per_iteration ~run_with_steps:(run None) ~iters in
    let cu =
      Driver.per_iteration ~run_with_steps:(run (Some "DYN_UPDATE")) ~iters
    in
    {
      name = "Barnes-Hut (dyn update)";
      baseline = sc.Driver.seconds;
      ace = cu.Driver.seconds;
      base_result = sc.Driver.result;
      ace_result = cu.Driver.result;
      per_iteration = true;
    }
  in
  let water =
    let run protos steps =
      Driver.run_ace ~nprocs (module Water)
        { (water_cfg scale steps) with Water.phase_protocols = protos }
    in
    let sc = Driver.per_iteration ~run_with_steps:(run None) ~iters in
    let cu =
      Driver.per_iteration
        ~run_with_steps:(run (Some ("NULL", "PIPELINE")))
        ~iters
    in
    {
      name = "Water (null+pipeline)";
      baseline = sc.Driver.seconds;
      ace = cu.Driver.seconds;
      base_result = sc.Driver.result;
      ace_result = cu.Driver.result;
      per_iteration = true;
    }
  in
  let bsc =
    let run proto =
      Driver.run_ace ~nprocs (module Cholesky)
        { (bsc_cfg scale) with Cholesky.protocol = proto }
    in
    let sc = run None and cu = run (Some "WRITE_ONCE") in
    {
      name = "BSC (write-once)";
      baseline = sc.Driver.seconds;
      ace = cu.Driver.seconds;
      base_result = sc.Driver.result;
      ace_result = cu.Driver.result;
      per_iteration = false;
    }
  in
  let tsp =
    let run proto cfg =
      Driver.run_ace ~nprocs (module Tsp) { cfg with Tsp.counter_protocol = proto }
    in
    let st, sr = tsp_avg (run None) in
    let ct, cr = tsp_avg (run (Some "COUNTER")) in
    {
      name = "TSP (counter)";
      baseline = st;
      ace = ct;
      base_result = sr;
      ace_result = cr;
      per_iteration = false;
    }
  in
  [ bh; bsc; em3d; tsp; water ]

let print_rows ~left ~right rows =
  Printf.printf "%-26s %12s %12s %9s  %s\n" "benchmark" left right "speedup"
    "unit";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.6f %12.6f %8.2fx  %s\n" r.name r.baseline r.ace
        (speedup r)
        (if r.per_iteration then "s/iter" else "s total"))
    rows
