lib/harness/experiments.ml: Ace_apps Driver List Printf String
