lib/harness/driver.ml: Ace_crl Ace_protocols Ace_region Ace_runtime
