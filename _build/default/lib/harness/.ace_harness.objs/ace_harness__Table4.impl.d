lib/harness/table4.ml: Ace_engine Ace_lang Ace_protocols Ace_runtime Array List Printf
