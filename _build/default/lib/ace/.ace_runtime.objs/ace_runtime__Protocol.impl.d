lib/ace/protocol.ml: Ace_engine Ace_net Ace_region Hashtbl
