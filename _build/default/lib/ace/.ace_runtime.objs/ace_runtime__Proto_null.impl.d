lib/ace/proto_null.ml: Ace_net Ace_region List Protocol
