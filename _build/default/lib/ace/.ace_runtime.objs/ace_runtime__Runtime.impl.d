lib/ace/runtime.ml: Ace_engine Ace_net Ace_region Array Hashtbl List Proto_null Proto_sc Protocol String
