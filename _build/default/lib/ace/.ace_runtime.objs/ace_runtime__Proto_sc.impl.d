lib/ace/proto_sc.ml: Ace_net Ace_region List Protocol
