lib/ace/ops.mli: Ace_region Protocol
