lib/ace/runtime.mli: Ace_engine Ace_net Ace_region Protocol
