lib/ace/ops.ml: Ace_engine Ace_net Ace_region Array Hashtbl Printf Protocol Runtime String
