(* The null protocol: no coherence actions at all. Correct only while each
   region is accessed by nodes already holding a fresh copy and written only
   at its home (e.g. Water's intra-molecular phase, paper §2.2: processors
   update their own molecules, which Ace_GMalloc homed locally — home writes
   land directly in the master). Locks remain real so synchronization stays
   sound even under the null protocol.

   Detach drops every non-home copy this node holds (collectively, all
   stale caches disappear), so the next protocol starts from fresh fetches;
   the master needs no publishing because only homes wrote. *)

module Blocks = Ace_region.Blocks
module Store = Ace_region.Store

let lock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  Blocks.home_lock ctx.Protocol.bctx meta

let unlock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  Blocks.home_unlock ctx.Protocol.bctx meta

let detach (ctx : Protocol.ctx) (sp : Protocol.space) =
  let node = Blocks.node ctx.Protocol.bctx in
  List.iter
    (fun rid ->
      let meta = Store.get ctx.Protocol.rt.Protocol.store rid in
      if node <> meta.Store.home then
        match Store.copy_of meta ~node with
        | Some c -> c.Store.cstate <- Store.Invalid
        | None -> ())
    sp.Protocol.rids

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "NULL";
    optimizable = true;
    lock;
    unlock;
    detach;
  }
