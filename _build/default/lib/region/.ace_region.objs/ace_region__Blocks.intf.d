lib/region/blocks.mli: Ace_engine Ace_net Store
