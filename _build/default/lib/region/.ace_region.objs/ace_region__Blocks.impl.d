lib/region/blocks.ml: Ace_engine Ace_net Array Float List Queue Store
