lib/region/store.ml: Array Queue
