lib/region/store.mli: Queue
