lib/region/collective.ml: Ace_engine Ace_net Array Blocks Hashtbl
