lib/region/dsm_intf.ml:
