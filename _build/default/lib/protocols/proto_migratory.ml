(* Migratory protocol: data accessed in exclusive bursts by one processor at
   a time. Both reads and writes migrate ownership, so the second and later
   accesses of a burst are free and no separate invalidation is ever needed
   (the next migration recalls the single owner). *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks

let migrate (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_exclusive ctx.Protocol.bctx meta
let lock = Ace_runtime.Proto_sc.lock
let unlock = Ace_runtime.Proto_sc.unlock

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "MIGRATORY";
    optimizable = false;
    has_start_read = true;
    has_start_write = true;
    start_read = migrate;
    start_write = migrate;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
