(* Owner-writes protocol (the BSC protocol of paper §5.2: "we take advantage
   of the fact that data are written only by the processors that created
   them"). Writes require no coherence action at all — the creator is the
   home, so stores land directly in the master. Reads fetch on a miss and
   then stay valid, because the program order guarantees a region is never
   written again once a remote node reads it.

   The write handlers are null, so the compiler's direct-dispatch pass
   deletes write-side protocol calls entirely (paper §4.2). *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store

let start_read (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let start_write (ctx : Protocol.ctx) meta =
  (* Enforce the protocol's assertion in debug builds: only the home may
     write under this protocol. *)
  assert (ctx.Protocol.proc.Ace_engine.Machine.id = meta.Store.home)

let lock = Ace_runtime.Proto_sc.lock
let unlock = Ace_runtime.Proto_sc.unlock

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "WRITE_ONCE";
    optimizable = true;
    has_start_read = true;
    (* start_write is an assertion only; registered as null for dispatch. *)
    has_start_write = false;
    start_read;
    start_write;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
