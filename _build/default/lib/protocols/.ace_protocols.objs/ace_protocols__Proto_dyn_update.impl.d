lib/protocols/proto_dyn_update.ml: Ace_engine Ace_net Ace_region Ace_runtime
