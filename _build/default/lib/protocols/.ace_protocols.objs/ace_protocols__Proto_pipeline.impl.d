lib/protocols/proto_pipeline.ml: Ace_engine Ace_net Ace_region Ace_runtime Array Hashtbl List
