lib/protocols/proto_static_update.ml: Ace_engine Ace_net Ace_region Ace_runtime Array Hashtbl List
