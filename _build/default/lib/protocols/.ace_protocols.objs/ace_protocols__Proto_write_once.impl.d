lib/protocols/proto_write_once.ml: Ace_engine Ace_net Ace_region Ace_runtime
