lib/protocols/proto_migratory.ml: Ace_net Ace_region Ace_runtime
