lib/protocols/proto_counter.ml: Ace_engine Ace_net Ace_region Ace_runtime
