lib/protocols/proto_race_check.ml: Ace_engine Ace_region Ace_runtime Array Hashtbl List
