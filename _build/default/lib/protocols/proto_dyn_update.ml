(* Dynamic update protocol (paper §2.1, §3.3): writes to a region are
   propagated to all sharers immediately after the write — the handler runs
   *after* the store, which is exactly the case access-fault control cannot
   express and full access control can.

   A writer does not acquire exclusive access (paper §6: "a writer need not
   acquire exclusive access before proceeding with a write, as long as the
   result of the write is propagated to all sharers"); the protocol assumes
   each region has a single writer at a time (producer-consumer sharing). *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine

let ensure_valid (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let end_write (ctx : Protocol.ctx) meta =
  Machine.await ctx.Protocol.proc (Blocks.push_update ctx.Protocol.bctx meta)

let lock = Ace_runtime.Proto_sc.lock
let unlock = Ace_runtime.Proto_sc.unlock

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "DYN_UPDATE";
    optimizable = true;
    has_start_read = true;
    has_start_write = true;
    has_end_write = true;
    start_read = ensure_valid;
    start_write = ensure_valid;
    end_write;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
