(* The protocol library shipped with this reproduction. [register_all]
   plays the role of the paper's registration scripts plus link step: after
   it runs, every library protocol is available to Ace_NewSpace /
   Ace_ChangeProtocol by name (SC and NULL are built into the runtime). *)

let all =
  [
    Proto_dyn_update.protocol;
    Proto_static_update.protocol;
    Proto_migratory.protocol;
    Proto_write_once.protocol;
    Proto_counter.protocol;
    Proto_pipeline.protocol;
    Proto_race_check.protocol;
  ]

let register_all rt = List.iter (Ace_runtime.Runtime.register rt) all

let names = List.map (fun p -> p.Ace_runtime.Protocol.name) all
