(* Data-race checking protocol (paper §2.1 cites Larus et al.'s LCM race
   checker as a protocol that "can be executed either before or after
   accesses"). It piggybacks coherence from the default SC protocol and
   additionally logs every access; at each barrier it reports regions that
   were written by one node and independently accessed by another within
   the epoch without both holding the region lock.

   The per-epoch log lives at the region's home conceptually; in the
   simulator it is a table shared by all per-node pstate slots. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine

type access = { node : int; writer : bool; locked : bool }

type report = { rid : int; epoch : int; nodes : int list }

type shared_log = {
  mutable epoch : int;
  accesses : (int, access list) Hashtbl.t; (* rid -> epoch accesses *)
  mutable reports : report list;
  mutable holding : (int * int, unit) Hashtbl.t; (* (node, rid) -> lock held *)
  mutable arrived : int; (* barrier arrivals this epoch *)
}

type Protocol.pstate += Race of shared_log

let shared (sp : Protocol.space) =
  match sp.Protocol.pstate.(0) with
  | Race s -> s
  | _ ->
      let s =
        {
          epoch = 0;
          accesses = Hashtbl.create 64;
          reports = [];
          holding = Hashtbl.create 16;
          arrived = 0;
        }
      in
      sp.Protocol.pstate.(0) <- Race s;
      s

let space_of (ctx : Protocol.ctx) meta =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

let record (ctx : Protocol.ctx) meta ~writer =
  let s = shared (space_of ctx meta) in
  let node = ctx.Protocol.proc.Machine.id in
  let locked = Hashtbl.mem s.holding (node, meta.Store.rid) in
  let prev =
    match Hashtbl.find_opt s.accesses meta.Store.rid with Some l -> l | None -> []
  in
  Hashtbl.replace s.accesses meta.Store.rid ({ node; writer; locked } :: prev)

let start_read (ctx : Protocol.ctx) meta =
  Blocks.fetch_shared ctx.Protocol.bctx meta;
  record ctx meta ~writer:false

let start_write (ctx : Protocol.ctx) meta =
  Blocks.fetch_exclusive ctx.Protocol.bctx meta;
  record ctx meta ~writer:true

let lock (ctx : Protocol.ctx) meta =
  Ace_runtime.Proto_sc.lock ctx meta;
  let s = shared (space_of ctx meta) in
  Hashtbl.replace s.holding (ctx.Protocol.proc.Machine.id, meta.Store.rid) ()

let unlock (ctx : Protocol.ctx) meta =
  let s = shared (space_of ctx meta) in
  Hashtbl.remove s.holding (ctx.Protocol.proc.Machine.id, meta.Store.rid);
  Ace_runtime.Proto_sc.unlock ctx meta

(* An epoch has a race on a region iff some unlocked access conflicts with
   an access from a different node (write/any or any/write). *)
let racy accesses =
  let conflict a b =
    a.node <> b.node && (a.writer || b.writer) && not (a.locked && b.locked)
  in
  let rec scan = function
    | [] -> false
    | a :: rest -> List.exists (conflict a) rest || scan rest
  in
  scan accesses

(* The epoch log is swept by the last processor to reach the barrier, so
   every access of the epoch has been recorded. *)
let barrier (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = shared sp in
  s.arrived <- s.arrived + 1;
  if s.arrived = Machine.nprocs ctx.Protocol.rt.Protocol.machine then begin
    s.arrived <- 0;
    Hashtbl.iter
      (fun rid accesses ->
        if racy accesses then
          s.reports <-
            {
              rid;
              epoch = s.epoch;
              nodes = List.sort_uniq compare (List.map (fun a -> a.node) accesses);
            }
            :: s.reports)
      s.accesses;
    Hashtbl.reset s.accesses;
    s.epoch <- s.epoch + 1
  end

let reports (sp : Protocol.space) = (shared sp).reports

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "RACE_CHECK";
    optimizable = false;
    has_start_read = true;
    has_start_write = true;
    start_read;
    start_write;
    barrier;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
