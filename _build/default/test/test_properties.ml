(* Second-round property tests: randomized workload generators and
   cross-checking of the numerical kernels, the collectives, and the
   compiler passes on a wider program corpus. *)

module Rng = Ace_engine.Det_rng

let check = Alcotest.(check bool)

(* ---- Cholesky: L L^T = A over random configurations ---- *)

let chol_residual_random =
  QCheck.Test.make ~name:"blocked Cholesky factors random banded SPD matrices"
    ~count:20
    QCheck.(quad (int_range 2 8) (int_range 2 8) (int_range 1 4) small_int)
    (fun (nb, b, band, seed) ->
      let cfg = { Ace_apps.Chol_core.nb; b; band = min band (nb - 1); seed } in
      let l = Ace_apps.Chol_core.reference cfg in
      Ace_apps.Chol_core.residual cfg ~l < 1e-7)

(* ---- TSP: branch and bound finds the optimum on random instances ---- *)

let tsp_optimal_random =
  QCheck.Test.make ~name:"TSP branch&bound = brute force" ~count:15
    QCheck.(pair (int_range 4 8) small_int)
    (fun (n_cities, seed) ->
      let core = { Ace_apps.Tsp_core.n_cities; seed } in
      let d = Ace_apps.Tsp_core.generate core in
      let best = ref infinity in
      let visited = Array.make n_cities false in
      visited.(0) <- true;
      let rec go cur len depth =
        if depth = n_cities then begin
          let t = len +. d.(cur).(0) in
          if t < !best then best := t
        end
        else
          for j = 1 to n_cities - 1 do
            if not visited.(j) then begin
              visited.(j) <- true;
              go j (len +. d.(cur).(j)) (depth + 1);
              visited.(j) <- false
            end
          done
      in
      go 0 0. 1;
      abs_float (Ace_apps.Tsp_core.reference core -. !best) < 1e-9)

(* ---- EM3D graph generator invariants ---- *)

let em3d_graph_invariants =
  QCheck.Test.make ~name:"EM3D graphs well-formed and remote-bounded" ~count:30
    QCheck.(triple (int_range 8 200) (int_range 1 16) (int_range 0 100))
    (fun (n_nodes, nprocs, pct_remote) ->
      let cfg =
        { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes; pct_remote }
      in
      let g = Ace_apps.Em3d.generate cfg ~nprocs in
      let in_range nbr =
        Array.for_all
          (Array.for_all (fun j -> j >= 0 && j < g.Ace_apps.Em3d.n))
          nbr
      in
      (* owners are a monotone block distribution *)
      let monotone = ref true in
      Array.iteri
        (fun i o ->
          if i > 0 && o < g.Ace_apps.Em3d.owner.(i - 1) then monotone := false)
        g.Ace_apps.Em3d.owner;
      in_range g.Ace_apps.Em3d.e_nbr
      && in_range g.Ace_apps.Em3d.h_nbr
      && !monotone
      && Array.for_all
           (Array.for_all (fun w -> w > 0. && w < 1.))
           g.Ace_apps.Em3d.weight)

let em3d_generation_deterministic () =
  let cfg = Ace_apps.Em3d.default in
  let a = Ace_apps.Em3d.generate cfg ~nprocs:7 in
  let b = Ace_apps.Em3d.generate cfg ~nprocs:7 in
  check "identical graphs" true
    (a.Ace_apps.Em3d.e_nbr = b.Ace_apps.Em3d.e_nbr
    && a.Ace_apps.Em3d.weight = b.Ace_apps.Em3d.weight)

(* ---- collectives ---- *)

let collectives_correct =
  QCheck.Test.make ~name:"bcast/allgather deliver every contribution" ~count:20
    QCheck.(pair (int_range 1 12) (int_range 0 6))
    (fun (nprocs, len) ->
      let rt = Ace_runtime.Runtime.create ~nprocs () in
      ignore (Ace_runtime.Runtime.new_space rt "SC");
      let ok = ref true in
      Ace_runtime.Runtime.run rt (fun ctx ->
          let me = Ace_runtime.Ops.me ctx in
          (* broadcast from the last node *)
          let root = nprocs - 1 in
          let b =
            Ace_runtime.Ops.bcast ctx ~root (fun () ->
                Array.init len (fun i -> (root * 100) + i))
          in
          if b <> Array.init len (fun i -> (root * 100) + i) then ok := false;
          (* allgather of per-node arrays *)
          let parts =
            Ace_runtime.Ops.allgather ctx
              (Array.init len (fun i -> (me * 10) + i))
          in
          Array.iteri
            (fun p part ->
              if part <> Array.init len (fun i -> (p * 10) + i) then ok := false)
            parts);
      !ok)

(* ---- compiler: semantic preservation on a wider corpus ---- *)

let corpus =
  [
    ( "functions-and-calls",
      {|
func double(a) { return a + a; }
func sum_to(n) {
  var acc = 0;
  var i = 0;
  for (i = 0; i < n; i += 1) { acc = acc + i; }
  return acc;
}
func main() {
  space s = newspace(NULL);
  region r;
  r = gmalloc(s, 4);
  r[0] = double(sum_to(10));
  r[1] = r[0] / 9;
  barrier(s);
  return r[0] + r[1];
}
|} );
    ( "while-and-if",
      {|
func main() {
  space s = newspace(SC);
  region r;
  if (me() == 0) { r = gmalloc(s, 2); r[0] = 100; }
  barrier(s);
  r = globalid(s, 0, 0);
  var x = 16;
  while (x > 1) {
    if (mod(x, 2) == 0) { x = x / 2; } else { x = x * 3 + 1; }
  }
  barrier(s);
  return x;
}
|} );
    ( "locked-accumulation",
      {|
func main() {
  space s = newspace(SC);
  region acc;
  if (me() == 0) { acc = gmalloc(s, 1); acc[0] = 0; }
  barrier(s);
  acc = globalid(s, 0, 0);
  var i = 0;
  for (i = 0; i < 3; i += 1) {
    lock(acc);
    acc[0] = acc[0] + me() + 1;
    unlock(acc);
  }
  barrier(s);
  return acc[0];
}
|} );
    ( "region-arrays-and-sqrt",
      {|
func main() {
  space s = newspace(SC);
  region rs[4];
  var i = 0;
  for (i = 0; i < 4; i += 1) {
    rs[i] = gmalloc(s, 2);
    rs[i][0] = (i + 1) * (i + 1);
  }
  barrier(s);
  changeproto(s, DYN_UPDATE);
  var total = 0;
  for (i = 0; i < 4; i += 1) {
    rs[i][1] = sqrt(rs[i][0]);
    total = total + rs[i][1];
  }
  barrier(s);
  return total;
}
|} );
  ]

let corpus_agrees_across_levels () =
  let rt0 = Ace_runtime.Runtime.create ~nprocs:3 () in
  Ace_protocols.Proto_lib.register_all rt0;
  let registry = Ace_lang.Registry.of_runtime rt0 in
  List.iter
    (fun (name, src) ->
      let results =
        List.map
          (fun level ->
            let rt = Ace_runtime.Runtime.create ~nprocs:3 () in
            Ace_protocols.Proto_lib.register_all rt;
            let ir, _ = Ace_lang.Compile.compile ~registry ~level src in
            Ace_lang.Interp.run_spmd rt ir)
          [ Ace_lang.Opt.O0; Ace_lang.Opt.O1; Ace_lang.Opt.O2; Ace_lang.Opt.O3 ]
      in
      match results with
      | base :: rest ->
          List.iter
            (fun r ->
              if abs_float (r -. base) > 1e-9 then
                Alcotest.failf "%s: %.9g <> %.9g across levels" name r base)
            rest
      | [] -> assert false)
    corpus

let corpus_optimization_never_slower () =
  (* on this corpus the fully optimized code is never slower than base *)
  let rt0 = Ace_runtime.Runtime.create ~nprocs:3 () in
  Ace_protocols.Proto_lib.register_all rt0;
  let registry = Ace_lang.Registry.of_runtime rt0 in
  List.iter
    (fun (name, src) ->
      let time level =
        let rt = Ace_runtime.Runtime.create ~nprocs:3 () in
        Ace_protocols.Proto_lib.register_all rt;
        let ir, _ = Ace_lang.Compile.compile ~registry ~level src in
        ignore (Ace_lang.Interp.run_spmd rt ir);
        Ace_runtime.Runtime.time_seconds rt
      in
      let base = time Ace_lang.Opt.O0 and opt = time Ace_lang.Opt.O3 in
      if opt > base *. 1.01 then
        Alcotest.failf "%s: O3 (%.6f) slower than O0 (%.6f)" name opt base)
    corpus

(* ---- water reference physics sanity ---- *)

let water_positions_stay_in_box =
  QCheck.Test.make ~name:"water positions remain inside the periodic box"
    ~count:10
    QCheck.(pair (int_range 4 32) small_int)
    (fun (n_mol, seed) ->
      let cfg =
        { Ace_apps.Water.default.Ace_apps.Water.core with
          Ace_apps.Water_core.n_mol; seed; steps = 4 }
      in
      let mols = Ace_apps.Water_core.reference cfg in
      Array.for_all
        (fun m ->
          m.(0) >= 0. && m.(0) <= cfg.Ace_apps.Water_core.box
          && m.(1) >= 0. && m.(1) <= cfg.Ace_apps.Water_core.box
          && m.(2) >= 0. && m.(2) <= cfg.Ace_apps.Water_core.box)
        mols)

(* ---- barnes-hut tree structural invariants ---- *)

let bh_tree_mass_conserved =
  QCheck.Test.make ~name:"octree root mass = total body mass" ~count:20
    QCheck.(pair (int_range 1 128) small_int)
    (fun (n, seed) ->
      let cfg = { Ace_apps.Barnes_hut.default with Ace_apps.Barnes_hut.n_bodies = n; seed } in
      let px, py, pz, _, _, _, m = Ace_apps.Barnes_hut.init cfg in
      let t = Ace_apps.Bh_tree.build ~px ~py ~pz ~m n in
      let total = Array.fold_left ( +. ) 0. m in
      (* coincident-body merging can drop mass only if two random points
         collide, which the generator makes (measure-)impossible *)
      abs_float (t.Ace_apps.Bh_tree.mass.(0) -. total) < 1e-9 *. (1. +. total))

let () =
  Alcotest.run "properties"
    [
      ( "numerics",
        [
          QCheck_alcotest.to_alcotest chol_residual_random;
          QCheck_alcotest.to_alcotest tsp_optimal_random;
          QCheck_alcotest.to_alcotest water_positions_stay_in_box;
          QCheck_alcotest.to_alcotest bh_tree_mass_conserved;
        ] );
      ( "workloads",
        [
          QCheck_alcotest.to_alcotest em3d_graph_invariants;
          Alcotest.test_case "em3d deterministic" `Quick
            em3d_generation_deterministic;
        ] );
      ("collectives", [ QCheck_alcotest.to_alcotest collectives_correct ]);
      ( "compiler-corpus",
        [
          Alcotest.test_case "levels agree" `Quick corpus_agrees_across_levels;
          Alcotest.test_case "optimization never slower" `Quick
            corpus_optimization_never_slower;
        ] );
    ]
