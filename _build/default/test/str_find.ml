(* Tiny substring helpers for golden-ish tests (no Str dependency). *)

let find haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    if i + ln > lh then -1
    else if String.sub haystack i ln = needle then i
    else go (i + 1)
  in
  if ln = 0 then 0 else go 0

let find_last haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i best =
    if i + ln > lh then best
    else if String.sub haystack i ln = needle then go (i + 1) i
    else go (i + 1) best
  in
  if ln = 0 then 0 else go 0 (-1)

let count haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i acc =
    if i + ln > lh then acc
    else if String.sub haystack i ln = needle then go (i + ln) (acc + 1)
    else go (i + 1) acc
  in
  if ln = 0 then 0 else go 0 0
