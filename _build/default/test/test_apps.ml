(* Integration tests: every benchmark application, on both backends and
   under its custom protocols, must compute what its sequential reference
   computes. *)

module Driver = Ace_harness.Driver
module Em3d = Ace_apps.Em3d
module Bh = Ace_apps.Barnes_hut
module Chol = Ace_apps.Cholesky
module Tsp = Ace_apps.Tsp
module Water = Ace_apps.Water

let nprocs = 4

let close ?(tol = 1e-9) a b =
  abs_float (a -. b) <= tol *. (1. +. max (abs_float a) (abs_float b))

let check_close ?tol name a b =
  if not (close ?tol a b) then
    Alcotest.failf "%s: %.12g <> %.12g" name a b

(* ---- EM3D ---- *)

let em3d_cfg = { Em3d.default with Em3d.n_nodes = 64; steps = 4 }

let em3d_reference_checksum () =
  Em3d.checksum (Em3d.reference em3d_cfg ~nprocs)

let em3d_crl () =
  let r = Driver.run_crl ~nprocs (module Em3d) em3d_cfg in
  check_close "crl vs reference" (em3d_reference_checksum ()) r.Driver.result

let em3d_ace_sc () =
  let r = Driver.run_ace ~nprocs (module Em3d) em3d_cfg in
  check_close "ace-sc vs reference" (em3d_reference_checksum ()) r.Driver.result

let em3d_protocols () =
  List.iter
    (fun proto ->
      let cfg = { em3d_cfg with Em3d.protocol = Some proto } in
      let r = Driver.run_ace ~nprocs (module Em3d) cfg in
      check_close (proto ^ " vs reference") (em3d_reference_checksum ())
        r.Driver.result)
    [ "DYN_UPDATE"; "STATIC_UPDATE" ]

let em3d_more_steps_static () =
  (* regression: stale reads after the learning window (the bug the
     two-write-barrier window fixes) only show up with many iterations *)
  let cfg =
    { em3d_cfg with Em3d.steps = 9; protocol = Some "STATIC_UPDATE" }
  in
  let r = Driver.run_ace ~nprocs (module Em3d) cfg in
  check_close "static update long run"
    (Em3d.checksum (Em3d.reference { cfg with Em3d.protocol = None } ~nprocs))
    r.Driver.result

(* ---- Barnes-Hut ---- *)

let bh_cfg = { Bh.default with Bh.n_bodies = 64; steps = 3 }

let bh_reference () = Bh.checksum (Bh.reference bh_cfg)

let bh_backends () =
  let expect = bh_reference () in
  let crl = Driver.run_crl ~nprocs (module Bh) bh_cfg in
  check_close "crl" expect crl.Driver.result;
  let ace = Driver.run_ace ~nprocs (module Bh) bh_cfg in
  check_close "ace" expect ace.Driver.result;
  let dyn =
    Driver.run_ace ~nprocs (module Bh) { bh_cfg with Bh.protocol = Some "DYN_UPDATE" }
  in
  check_close "dyn update" expect dyn.Driver.result

let bh_tree_matches_direct_forces () =
  (* octree force with small theta approximates the O(N^2) sum *)
  let cfg = { bh_cfg with Bh.n_bodies = 128 } in
  let px, py, pz, _, _, _, m = Bh.init cfg in
  let t = Ace_apps.Bh_tree.build ~px ~py ~pz ~m cfg.Bh.n_bodies in
  let max_rel = ref 0. in
  for b = 0 to cfg.Bh.n_bodies - 1 do
    let ax, ay, az, _ =
      Ace_apps.Bh_tree.force t ~px ~py ~pz ~theta:0.2 ~eps:cfg.Bh.eps b
    in
    let dx, dy, dz =
      Ace_apps.Bh_tree.direct_force ~px ~py ~pz ~m ~eps:cfg.Bh.eps
        cfg.Bh.n_bodies b
    in
    let mag = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) +. 1e-9 in
    let err =
      sqrt
        (((ax -. dx) ** 2.) +. ((ay -. dy) ** 2.) +. ((az -. dz) ** 2.))
      /. mag
    in
    if err > !max_rel then max_rel := err
  done;
  if !max_rel > 0.05 then
    Alcotest.failf "tree force error too large: %f" !max_rel

let bh_tree_exact_at_zero_theta () =
  (* with theta -> 0 every interaction is body-body: identical to direct *)
  let cfg = { bh_cfg with Bh.n_bodies = 32 } in
  let px, py, pz, _, _, _, m = Bh.init cfg in
  let t = Ace_apps.Bh_tree.build ~px ~py ~pz ~m 32 in
  for b = 0 to 31 do
    let ax, _, _, _ =
      Ace_apps.Bh_tree.force t ~px ~py ~pz ~theta:0. ~eps:cfg.Bh.eps b
    in
    let dx, _, _ = Ace_apps.Bh_tree.direct_force ~px ~py ~pz ~m ~eps:cfg.Bh.eps 32 b in
    check_close ~tol:1e-9 "exact" dx ax
  done

(* ---- BSC ---- *)

let chol_cfg =
  {
    Chol.default with
    Chol.core = { Ace_apps.Chol_core.nb = 6; b = 8; band = 2; seed = 5 };
  }

let chol_factor_is_correct () =
  (* L L^T = A for the sequential blocked factorization *)
  let l = Ace_apps.Chol_core.reference chol_cfg.Chol.core in
  let err = Ace_apps.Chol_core.residual chol_cfg.Chol.core ~l in
  if err > 1e-8 then Alcotest.failf "residual %g" err

let chol_backends () =
  let expect = Ace_apps.Chol_core.checksum (Ace_apps.Chol_core.reference chol_cfg.Chol.core) in
  let crl = Driver.run_crl ~nprocs (module Chol) chol_cfg in
  check_close ~tol:1e-6 "crl" expect crl.Driver.result;
  let ace = Driver.run_ace ~nprocs (module Chol) chol_cfg in
  check_close ~tol:1e-6 "ace" expect ace.Driver.result;
  let wo =
    Driver.run_ace ~nprocs (module Chol)
      { chol_cfg with Chol.protocol = Some "WRITE_ONCE" }
  in
  check_close ~tol:1e-6 "write-once" expect wo.Driver.result

(* ---- TSP ---- *)

let tsp_cfg =
  { Tsp.default with Tsp.core = { Ace_apps.Tsp_core.n_cities = 8; seed = 9 } }

let tsp_brute_force core =
  (* exhaustive optimal tour for small n *)
  let d = Ace_apps.Tsp_core.generate core in
  let n = core.Ace_apps.Tsp_core.n_cities in
  let best = ref infinity in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec go cur len depth =
    if depth = n then begin
      let t = len +. d.(cur).(0) in
      if t < !best then best := t
    end
    else
      for j = 1 to n - 1 do
        if not visited.(j) then begin
          visited.(j) <- true;
          go j (len +. d.(cur).(j)) (depth + 1);
          visited.(j) <- false
        end
      done
  in
  go 0 0. 1;
  !best

let tsp_reference_is_optimal () =
  check_close "b&b = brute force"
    (tsp_brute_force tsp_cfg.Tsp.core)
    (Ace_apps.Tsp_core.reference tsp_cfg.Tsp.core)

let tsp_backends () =
  let expect = Ace_apps.Tsp_core.reference tsp_cfg.Tsp.core in
  let crl = Driver.run_crl ~nprocs (module Tsp) tsp_cfg in
  check_close "crl optimal" expect crl.Driver.result;
  let ace = Driver.run_ace ~nprocs (module Tsp) tsp_cfg in
  check_close "ace optimal" expect ace.Driver.result;
  let ctr =
    Driver.run_ace ~nprocs (module Tsp)
      { tsp_cfg with Tsp.counter_protocol = Some "COUNTER" }
  in
  check_close "counter optimal" expect ctr.Driver.result

(* ---- Water ---- *)

let water_cfg =
  {
    Water.default with
    Water.core = { Water.default.Water.core with Ace_apps.Water_core.n_mol = 24; steps = 3 };
  }

let water_reference () =
  Ace_apps.Water_core.checksum (Ace_apps.Water_core.reference water_cfg.Water.core)

let water_backends () =
  (* force accumulation order differs across processors: compare with a
     modest tolerance *)
  let expect = water_reference () in
  let crl = Driver.run_crl ~nprocs (module Water) water_cfg in
  check_close ~tol:1e-6 "crl" expect crl.Driver.result;
  let ace = Driver.run_ace ~nprocs (module Water) water_cfg in
  check_close ~tol:1e-6 "ace" expect ace.Driver.result;
  let custom =
    Driver.run_ace ~nprocs (module Water)
      { water_cfg with Water.phase_protocols = Some ("NULL", "PIPELINE") }
  in
  check_close ~tol:1e-6 "null+pipeline" expect custom.Driver.result

let water_force_antisymmetric () =
  (* Newton's third law: swapping the arguments negates the force *)
  let c = water_cfg.Water.core in
  let mols = Ace_apps.Water_core.init c in
  let n = Array.length mols in
  let checked = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match
        ( Ace_apps.Water_core.pair_force c mols.(i) mols.(j),
          Ace_apps.Water_core.pair_force c mols.(j) mols.(i) )
      with
      | Some (x, y, z), Some (x', y', z') ->
          incr checked;
          check_close ~tol:1e-12 "fx" (-.x) x';
          check_close ~tol:1e-12 "fy" (-.y) y';
          check_close ~tol:1e-12 "fz" (-.z) z'
      | None, None -> ()
      | _ -> Alcotest.fail "cutoff not symmetric"
    done
  done;
  Alcotest.(check bool) "some pairs in range" true (!checked > 0)

(* cross-backend determinism at several processor counts *)
let cross_backend_procs () =
  List.iter
    (fun p ->
      let cfg = { em3d_cfg with Em3d.n_nodes = 48 } in
      let crl = Driver.run_crl ~nprocs:p (module Em3d) cfg in
      let ace = Driver.run_ace ~nprocs:p (module Em3d) cfg in
      check_close (Printf.sprintf "em3d @%d procs" p) crl.Driver.result
        ace.Driver.result)
    [ 1; 2; 3; 8 ]

let () =
  Alcotest.run "apps"
    [
      ( "em3d",
        [
          Alcotest.test_case "crl" `Quick em3d_crl;
          Alcotest.test_case "ace sc" `Quick em3d_ace_sc;
          Alcotest.test_case "custom protocols" `Quick em3d_protocols;
          Alcotest.test_case "static update long run" `Quick em3d_more_steps_static;
        ] );
      ( "barnes_hut",
        [
          Alcotest.test_case "backends" `Slow bh_backends;
          Alcotest.test_case "tree ~= direct" `Quick bh_tree_matches_direct_forces;
          Alcotest.test_case "tree exact at theta=0" `Quick bh_tree_exact_at_zero_theta;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "LL^T = A" `Quick chol_factor_is_correct;
          Alcotest.test_case "backends" `Slow chol_backends;
        ] );
      ( "tsp",
        [
          Alcotest.test_case "optimality" `Quick tsp_reference_is_optimal;
          Alcotest.test_case "backends" `Slow tsp_backends;
        ] );
      ( "water",
        [
          Alcotest.test_case "backends" `Slow water_backends;
          Alcotest.test_case "antisymmetry" `Quick water_force_antisymmetric;
        ] );
      ( "cross-backend",
        [ Alcotest.test_case "em3d at 1/2/3/8 procs" `Slow cross_backend_procs ] );
    ]
