(* Shape tests: the paper's qualitative results must hold in the
   reproduction (who wins, roughly by how much, where the gains are
   marginal). Run at a reduced processor count to keep the suite fast;
   EXPERIMENTS.md records the full 32-processor numbers. *)

module E = Ace_harness.Experiments
module T4 = Ace_harness.Table4

let check = Alcotest.(check bool)

let scale = { E.nprocs = 8; factor = 1 }

let fig7a = lazy (E.fig7a ~scale ())
let fig7b = lazy (E.fig7b ~scale ())
let table4 = lazy (T4.table4 ~nprocs:8 ())

let row rows name =
  List.find (fun r -> r.E.name = name) rows

let fig7a_results_match () =
  List.iter
    (fun r ->
      if
        abs_float (r.E.base_result -. r.E.ace_result)
        > 1e-6 *. (1. +. abs_float r.E.base_result)
      then Alcotest.failf "%s: CRL and Ace results differ" r.E.name)
    (Lazy.force fig7a)

let fig7a_ace_wins_fine_grained () =
  let rows = Lazy.force fig7a in
  (* the runtime redesign pays off most for fine-grained applications *)
  check "EM3D" true (E.speedup (row rows "EM3D") > 1.05);
  check "Barnes-Hut" true (E.speedup (row rows "Barnes-Hut") > 1.05)

let fig7a_bsc_neutral () =
  (* "the additional indirection ... nullifies the effects of the runtime
     system optimizations" for coarse-grained BSC *)
  let s = E.speedup (row (Lazy.force fig7a) "BSC") in
  check "BSC about even" true (s > 0.9 && s < 1.15)

let fig7b_results_match () =
  List.iter
    (fun r ->
      if
        abs_float (r.E.base_result -. r.E.ace_result)
        > 1e-6 *. (1. +. abs_float r.E.base_result)
      then Alcotest.failf "%s: SC and custom results differ" r.E.name)
    (Lazy.force fig7b)

let fig7b_speedup_range () =
  (* paper: "speedups range from a factor of 1.02 to 5 (average approx 2)" *)
  let rows = Lazy.force fig7b in
  List.iter
    (fun r ->
      let s = E.speedup r in
      if s < 0.9 || s > 6.5 then
        Alcotest.failf "%s: speedup %.2f out of the paper's band" r.E.name s)
    rows;
  let avg =
    List.fold_left (fun a r -> a +. E.speedup r) 0. rows
    /. float_of_int (List.length rows)
  in
  check "average around 2" true (avg > 1.3 && avg < 3.5)

let fig7b_em3d_biggest () =
  (* EM3D's static update is the headline ~5x result (§3.3) *)
  let rows = Lazy.force fig7b in
  let em3d = E.speedup (row rows "EM3D (static update)") in
  check "em3d > 2.5" true (em3d > 2.5);
  List.iter
    (fun r -> check (r.E.name ^ " <= em3d") true (E.speedup r <= em3d +. 1e-9))
    rows

let fig7b_bsc_marginal () =
  (* bulk transfer comes free from user-specified granularity, so BSC's
     custom protocol gains almost nothing (paper: 1.02) *)
  let s = E.speedup (row (Lazy.force fig7b) "BSC (write-once)") in
  check "bsc marginal" true (s > 0.95 && s < 1.25)

let fig7b_water_around_two () =
  let s = E.speedup (row (Lazy.force fig7b) "Water (null+pipeline)") in
  check "water gains" true (s > 1.2)

let table4_monotone () =
  (* each optimization level must not slow a benchmark down (noise margin
     for the timing-sensitive TSP) *)
  List.iter
    (fun r ->
      let tol = 1.05 in
      if r.T4.li > r.T4.base *. tol then
        Alcotest.failf "%s: LI regressed" r.T4.name;
      if r.T4.li_mc > r.T4.li *. tol then
        Alcotest.failf "%s: MC regressed" r.T4.name;
      if r.T4.li_mc_dc > r.T4.li_mc *. tol then
        Alcotest.failf "%s: DC regressed" r.T4.name)
    (Lazy.force table4)

let table4_results_agree () =
  List.iter
    (fun r ->
      if not r.T4.results_agree then
        Alcotest.failf "%s: optimization changed the program's result" r.T4.name)
    (Lazy.force table4)

let table4_bsc_li_dominates () =
  (* the paper's most dramatic single-pass effect: BSC 20.39 -> 5.60 *)
  let r = List.find (fun r -> r.T4.name = "BSC") (Lazy.force table4) in
  check "LI at least 2x on BSC" true (r.T4.base /. r.T4.li > 2.)

let table4_em3d_dc_effect () =
  (* direct dispatch removes the static update null handlers in EM3D *)
  let r = List.find (fun r -> r.T4.name = "EM3D") (Lazy.force table4) in
  check "DC visibly helps EM3D" true (r.T4.li_mc /. r.T4.li_mc_dc > 1.05)

let table4_compiled_near_hand () =
  (* paper: best compiled versions are 1.1-1.3x slower than hand *)
  List.iter
    (fun r ->
      let ratio = r.T4.li_mc_dc /. r.T4.hand in
      if ratio > 1.8 || ratio < 0.75 then
        Alcotest.failf "%s: compiled/hand ratio %.2f out of band" r.T4.name ratio)
    (Lazy.force table4)

let () =
  Alcotest.run "shapes"
    [
      ( "fig7a",
        [
          Alcotest.test_case "results identical" `Slow fig7a_results_match;
          Alcotest.test_case "fine-grained gap" `Slow fig7a_ace_wins_fine_grained;
          Alcotest.test_case "BSC neutral" `Slow fig7a_bsc_neutral;
        ] );
      ( "fig7b",
        [
          Alcotest.test_case "results identical" `Slow fig7b_results_match;
          Alcotest.test_case "speedup band" `Slow fig7b_speedup_range;
          Alcotest.test_case "EM3D biggest" `Slow fig7b_em3d_biggest;
          Alcotest.test_case "BSC marginal" `Slow fig7b_bsc_marginal;
          Alcotest.test_case "Water gains" `Slow fig7b_water_around_two;
        ] );
      ( "table4",
        [
          Alcotest.test_case "monotone" `Slow table4_monotone;
          Alcotest.test_case "results agree" `Slow table4_results_agree;
          Alcotest.test_case "BSC LI dominates" `Slow table4_bsc_li_dominates;
          Alcotest.test_case "EM3D DC effect" `Slow table4_em3d_dc_effect;
          Alcotest.test_case "compiled near hand" `Slow table4_compiled_near_hand;
        ] );
    ]
