test/test_apps.ml: Ace_apps Ace_harness Alcotest Array List Printf
