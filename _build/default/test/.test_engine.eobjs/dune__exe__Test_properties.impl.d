test/test_properties.ml: Ace_apps Ace_engine Ace_lang Ace_protocols Ace_runtime Alcotest Array List QCheck QCheck_alcotest
