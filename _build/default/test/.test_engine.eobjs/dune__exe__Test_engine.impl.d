test/test_engine.ml: Ace_engine Alcotest Array Buffer Float List Printf QCheck QCheck_alcotest
