test/test_net.ml: Ace_engine Ace_net Alcotest List QCheck QCheck_alcotest
