test/test_shapes.ml: Ace_harness Alcotest Lazy List
