test/test_lang.ml: Ace_lang Ace_protocols Ace_runtime Alcotest List Option Str_find
