test/test_ace.ml: Ace_engine Ace_protocols Ace_region Ace_runtime Alcotest Array List
