test/test_crl.mli:
