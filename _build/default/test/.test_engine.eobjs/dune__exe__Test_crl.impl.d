test/test_crl.ml: Ace_crl Ace_engine Alcotest Array
