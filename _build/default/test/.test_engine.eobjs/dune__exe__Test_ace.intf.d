test/test_ace.mli:
