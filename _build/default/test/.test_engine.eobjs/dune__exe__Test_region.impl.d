test/test_region.ml: Ace_engine Ace_net Ace_region Alcotest Array Hashtbl Option QCheck QCheck_alcotest
