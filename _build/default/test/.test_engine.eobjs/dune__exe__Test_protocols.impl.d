test/test_protocols.ml: Ace_engine Ace_protocols Ace_region Ace_runtime Alcotest Array Hashtbl List
