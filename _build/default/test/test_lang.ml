(* Compiler tests: lexer, parser, type checker (including the paper's
   no-pointer-arithmetic rule), the Fig. 5 lowering, the Fig. 6 merging,
   loop invariance, direct dispatch, the registry round trip, and semantic
   preservation of the passes on every kernel. *)

module L = Ace_lang

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- lexer ---- *)

let lex_tokens () =
  let toks = L.Lexer.tokenize "func f() { var x = 1.5; // c\n x = x + 2; }" in
  let kinds =
    List.map
      (fun (t, _) ->
        match t with
        | L.Lexer.TKw k -> "kw:" ^ k
        | L.Lexer.TIdent i -> "id:" ^ i
        | L.Lexer.TNum _ -> "num"
        | L.Lexer.TPunct p -> p
        | L.Lexer.TEof -> "eof")
      toks
  in
  Alcotest.(check (list string)) "tokens"
    [
      "kw:func"; "id:f"; "("; ")"; "{"; "kw:var"; "id:x"; "="; "num"; ";";
      "id:x"; "="; "id:x"; "+"; "num"; ";"; "}"; "eof";
    ]
    kinds

let lex_comments_and_ops () =
  let toks = L.Lexer.tokenize "/* multi \n line */ a <= b != c" in
  check_int "token count" 6 (List.length toks)

let lex_error_line () =
  match L.Lexer.tokenize "func f() {\n  1.2.3;\n}" with
  | exception L.Lexer.Error (_, line) -> check_int "line" 2 line
  | _ -> Alcotest.fail "expected lex error"

(* ---- parser ---- *)

let parse_structures () =
  let prog =
    L.Parser.parse_program
      {|
func helper(a, b) { return a + b; }
func main() {
  var x = 0;
  for (x = 0; x < 10; x += 1) { work(1); }
  while (x > 0) { x = x - 1; }
  if (x == 0) { x = helper(1, 2); } else { x = 3; }
}
|}
  in
  check_int "two functions" 2 (List.length prog);
  let main = List.nth prog 1 in
  check_int "main statements" 4 (List.length main.L.Ast.body)

let parse_precedence () =
  match L.Parser.parse_program "func f() { var x = 1 + 2 * 3; }" with
  | [ { L.Ast.body = [ L.Ast.VarDecl (_, Some e) ]; _ } ] ->
      check "mul binds tighter" true
        (match e with
        | L.Ast.Binop (L.Ast.Add, L.Ast.Num 1., L.Ast.Binop (L.Ast.Mul, _, _)) ->
            true
        | _ -> false)
  | _ -> Alcotest.fail "parse shape"

let parse_error_reported () =
  match L.Parser.parse_program "func f() { var ; }" with
  | exception L.Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* ---- type checking ---- *)

let accepts src =
  match L.Compile.frontend src with
  | _ -> true
  | exception Failure _ -> false

let typecheck_rejects_pointer_arithmetic () =
  (* the paper's §3.1 rule: no arithmetic on shared pointers *)
  check "region + 1" false
    (accepts "func main() { space s = newspace(SC); region r; r = gmalloc(s, 4); var x = r + 1; }");
  check "region compare region as num" false
    (accepts "func main() { region a; region b; var x = a * b; }")

let typecheck_rejects_misuse () =
  check "num indexed" false (accepts "func main() { var x = 0; var y = x[0]; }");
  check "undeclared" false (accepts "func main() { x = 1; }");
  check "duplicate" false (accepts "func main() { var x = 0; var x = 1; }");
  check "barrier on num" false (accepts "func main() { var x = 0; barrier(x); }");
  check "lock on num" false (accepts "func main() { var x = 0; lock(x); }");
  check "bad arity" false (accepts "func f(a) { return a; } func main() { var x = f(1, 2); }")

let typecheck_accepts_shared_access () =
  check "full surface" true
    (accepts
       {|
func main() {
  space s = newspace(SC);
  region r;
  region arr[4];
  r = gmalloc(s, 8);
  arr[0] = r;
  r[3] = arr[0][2] + 1;
  lock(arr[0]);
  unlock(arr[0]);
  barrier(s);
  changeproto(s, NULL);
}
|})

(* ---- Fig. 5: lowering inserts the annotation sequence ---- *)

let lowering_fig5_load_store () =
  let ir =
    L.Compile.frontend
      "func main() { space s = newspace(SC); region x; region w; x = gmalloc(s, 1); w = gmalloc(s, 1); w[0] = x[0]; }"
  in
  let counts = L.Ir.count_annotations ir in
  (* one load (map+start_read+end_read) and one store (map+start_write+
     end_write), exactly Fig. 5's sequences *)
  check_int "maps" 2 counts.L.Ir.maps;
  check_int "starts" 2 counts.L.Ir.starts;
  check_int "ends" 2 counts.L.Ir.ends;
  let text = L.Ir.to_string ir in
  check "read before write sequence" true
    (let ri = Str_find.find text "ACE_START_READ" in
     let wi = Str_find.find text "ACE_START_WRITE" in
     ri >= 0 && wi >= 0 && ri < wi)

(* ---- registry ---- *)

let registry_roundtrip () =
  let rt = Ace_runtime.Runtime.create ~nprocs:2 () in
  Ace_protocols.Proto_lib.register_all rt;
  let reg = L.Registry.of_runtime rt in
  let text = L.Registry.to_text reg in
  let reg' = L.Registry.parse_text text in
  check_int "same cardinality" (List.length reg) (List.length reg');
  List.iter
    (fun e ->
      match L.Registry.find reg' e.L.Registry.name with
      | Some e' -> check (e.L.Registry.name ^ " identical") true (e = e')
      | None -> Alcotest.fail ("missing " ^ e.L.Registry.name))
    reg

let registry_flags () =
  let rt = Ace_runtime.Runtime.create ~nprocs:2 () in
  Ace_protocols.Proto_lib.register_all rt;
  let reg = L.Registry.of_runtime rt in
  let e name = Option.get (L.Registry.find reg name) in
  check "SC not optimizable" false (e "SC").L.Registry.optimizable;
  check "SC has start_read" true (e "SC").L.Registry.start_read;
  check "static update end hooks are null" false (e "STATIC_UPDATE").L.Registry.end_read;
  check "write_once write hooks are null" false (e "WRITE_ONCE").L.Registry.start_write;
  check "null protocol all null" false (e "NULL").L.Registry.start_read;
  check "counter not optimizable" false (e "COUNTER").L.Registry.optimizable

(* ---- optimization passes ---- *)

let registry_for_tests () =
  let rt = Ace_runtime.Runtime.create ~nprocs:2 () in
  Ace_protocols.Proto_lib.register_all rt;
  L.Registry.of_runtime rt

(* Fig. 6's example: two consecutive writes through the same handle merge
   into one map and one write section. *)
let merging_fig6 () =
  let src =
    {|
func main() {
  space s = newspace(NULL);
  region x;
  x = gmalloc(s, 2);
  var y = 5;
  x[0] = y;
  x[1] = 4;
}
|}
  in
  let reg = registry_for_tests () in
  let base, d0 = L.Compile.compile ~registry:reg ~level:L.Opt.O0 src in
  ignore base;
  let merged, d2 = L.Compile.compile ~registry:reg ~level:L.Opt.O2 src in
  check_int "base: two maps" 2 d0.L.Compile.after.L.Ir.maps;
  check_int "merged: one map" 1 d2.L.Compile.after.L.Ir.maps;
  check_int "merged: one start" 1 d2.L.Compile.after.L.Ir.starts;
  check_int "merged: one end" 1 d2.L.Compile.after.L.Ir.ends;
  let text = L.Ir.to_string merged in
  check "single write section" true
    (Str_find.count text "ACE_START_WRITE" = 1
    && Str_find.count text "ACE_END_WRITE" = 1)

let merging_respects_optimizable_flag () =
  (* under SC (not optimizable) the two sections must NOT merge *)
  let src =
    {|
func main() {
  space s = newspace(SC);
  region x;
  x = gmalloc(s, 2);
  x[0] = 5;
  x[1] = 4;
}
|}
  in
  let reg = registry_for_tests () in
  let _, d2 = L.Compile.compile ~registry:reg ~level:L.Opt.O2 src in
  check_int "sections kept" 2 d2.L.Compile.after.L.Ir.starts

let merging_never_crosses_sync () =
  let src =
    {|
func main() {
  space s = newspace(NULL);
  region x;
  x = gmalloc(s, 2);
  x[0] = 5;
  barrier(s);
  x[1] = 4;
}
|}
  in
  let reg = registry_for_tests () in
  let _, d2 = L.Compile.compile ~registry:reg ~level:L.Opt.O2 src in
  check_int "barrier blocks merging" 2 d2.L.Compile.after.L.Ir.starts

let loop_invariance_hoists () =
  let src =
    {|
func main() {
  space s = newspace(NULL);
  region x;
  x = gmalloc(s, 16);
  var i = 0;
  var acc = 0;
  for (i = 0; i < 16; i += 1) {
    acc = acc + x[i];
  }
}
|}
  in
  let reg = registry_for_tests () in
  let ir, _ = L.Compile.compile ~registry:reg ~level:L.Opt.O1 src in
  let text = L.Ir.to_string ir in
  (* the map and section moved out: the for body holds only the load *)
  let for_idx = Str_find.find text "for (" in
  let map_idx = Str_find.find text "ACE_MAP" in
  let start_idx = Str_find.find text "ACE_START_READ" in
  check "map above loop" true (map_idx >= 0 && map_idx < for_idx);
  check "start above loop" true (start_idx >= 0 && start_idx < for_idx)

let loop_invariance_respects_variant_regions () =
  let src =
    {|
func main() {
  space s = newspace(NULL);
  region arr[4];
  var i = 0;
  for (i = 0; i < 4; i += 1) { arr[i] = gmalloc(s, 1); }
  var acc = 0;
  for (i = 0; i < 4; i += 1) { acc = acc + arr[i][0]; }
}
|}
  in
  let reg = registry_for_tests () in
  let ir, _ = L.Compile.compile ~registry:reg ~level:L.Opt.O1 src in
  let text = L.Ir.to_string ir in
  (* arr[i] varies with i: its map must stay inside the second loop *)
  let last_for = Str_find.find_last text "for (" in
  let last_map = Str_find.find_last text "ACE_MAP" in
  check "variant map stays in loop" true (last_map > last_for)

let direct_dispatch_unique_protocol () =
  let src =
    {|
func main() {
  space s = newspace(SC);
  region x;
  x = gmalloc(s, 1);
  changeproto(s, STATIC_UPDATE);
  x[0] = 1;
  var v = x[0];
}
|}
  in
  let reg = registry_for_tests () in
  let _, d = L.Compile.compile ~registry:reg ~level:L.Opt.O3 src in
  (* after changeproto the protocol set is the singleton STATIC_UPDATE:
     starts are direct, null end handlers removed *)
  check "direct calls" true (d.L.Compile.after.L.Ir.direct_calls > 0);
  check "null ends removed" true (d.L.Compile.after.L.Ir.removed_calls >= 2)

let direct_dispatch_needs_unique_protocol () =
  let src =
    {|
func main() {
  space s = newspace(SC);
  region x;
  x = gmalloc(s, 1);
  var c = me();
  if (c == 0) { changeproto(s, STATIC_UPDATE); } else { changeproto(s, DYN_UPDATE); }
  x[0] = 1;
}
|}
  in
  let reg = registry_for_tests () in
  let _, d = L.Compile.compile ~registry:reg ~level:L.Opt.O3 src in
  check_int "ambiguous protocol: no direct calls" 0
    d.L.Compile.after.L.Ir.direct_calls

(* ---- semantic preservation on the kernels ---- *)

let kernels_agree_across_levels () =
  let reg = registry_for_tests () in
  List.iter
    (fun (name, src) ->
      let results =
        List.map
          (fun level ->
            let rt = Ace_runtime.Runtime.create ~nprocs:4 () in
            Ace_protocols.Proto_lib.register_all rt;
            let ir, _ = L.Compile.compile ~registry:reg ~level src in
            L.Interp.run_spmd rt ir)
          [ L.Opt.O0; L.Opt.O1; L.Opt.O2; L.Opt.O3 ]
      in
      match results with
      | base :: rest ->
          List.iteri
            (fun i r ->
              if abs_float (r -. base) > 1e-9 *. (1. +. abs_float base) then
                Alcotest.failf "%s: level %d result %.12g <> base %.12g" name
                  (i + 1) r base)
            rest
      | [] -> assert false)
    L.Kernels.all

let interp_detects_errors () =
  let reg = registry_for_tests () in
  let run src =
    let rt = Ace_runtime.Runtime.create ~nprocs:2 () in
    Ace_protocols.Proto_lib.register_all rt;
    let ir, _ = L.Compile.compile ~registry:reg ~level:L.Opt.O0 src in
    L.Interp.run_spmd rt ir
  in
  (match
     run
       "func main() { space s = newspace(SC); region r; r = gmalloc(s, 2); var v = r[5]; }"
   with
  | exception L.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds shared access not caught");
  match
    run "func main() { space s = newspace(SC); region r; r = globalid(s, 0, 7); }"
  with
  | exception L.Interp.Runtime_error _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unallocated globalid not caught"

let () =
  Alcotest.run "acelang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick lex_tokens;
          Alcotest.test_case "comments/ops" `Quick lex_comments_and_ops;
          Alcotest.test_case "error line" `Quick lex_error_line;
        ] );
      ( "parser",
        [
          Alcotest.test_case "structures" `Quick parse_structures;
          Alcotest.test_case "precedence" `Quick parse_precedence;
          Alcotest.test_case "errors" `Quick parse_error_reported;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "no pointer arithmetic" `Quick
            typecheck_rejects_pointer_arithmetic;
          Alcotest.test_case "misuse rejected" `Quick typecheck_rejects_misuse;
          Alcotest.test_case "surface accepted" `Quick typecheck_accepts_shared_access;
        ] );
      ( "lowering",
        [ Alcotest.test_case "Fig. 5 sequences" `Quick lowering_fig5_load_store ] );
      ( "registry",
        [
          Alcotest.test_case "roundtrip" `Quick registry_roundtrip;
          Alcotest.test_case "hook flags" `Quick registry_flags;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "Fig. 6 merging" `Quick merging_fig6;
          Alcotest.test_case "optimizable gate" `Quick
            merging_respects_optimizable_flag;
          Alcotest.test_case "sync blocks merging" `Quick merging_never_crosses_sync;
          Alcotest.test_case "LI hoists" `Quick loop_invariance_hoists;
          Alcotest.test_case "LI keeps variant maps" `Quick
            loop_invariance_respects_variant_regions;
          Alcotest.test_case "DC on unique protocol" `Quick
            direct_dispatch_unique_protocol;
          Alcotest.test_case "DC needs uniqueness" `Quick
            direct_dispatch_needs_unique_protocol;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "kernels agree across levels" `Slow
            kernels_agree_across_levels;
          Alcotest.test_case "runtime errors" `Quick interp_detects_errors;
        ] );
    ]
