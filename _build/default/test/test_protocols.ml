(* Behavioural tests for the protocol library: each protocol preserves the
   meaning of a properly-structured program and exhibits its characteristic
   communication behaviour. *)

module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops
module Protocol = Ace_runtime.Protocol
module Store = Ace_region.Store
module Stats = Ace_engine.Stats
module Machine = Ace_engine.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(spaces = 1) ~nprocs () =
  let rt = Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  for _ = 1 to spaces do
    ignore (Runtime.new_space rt "SC")
  done;
  rt

(* producer-consumer: proc 0 writes its region each round; everyone reads
   it after the barrier. Returns (all reads correct, stats, time). *)
let producer_consumer ~proto ~nprocs ~rounds =
  let rt = make ~nprocs () in
  let ok = ref true in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 proto;
      for round = 1 to rounds do
        if me = 0 then begin
          Ops.start_write ctx h;
          (Ops.data ctx h).(0) <- float_of_int round;
          Ops.end_write ctx h
        end;
        Ops.barrier ctx ~space:0;
        Ops.start_read ctx h;
        if (Ops.data ctx h).(0) <> float_of_int round then ok := false;
        Ops.end_read ctx h;
        Ops.barrier ctx ~space:0
      done);
  (!ok, Machine.stats (Runtime.machine rt), Runtime.time_seconds rt)

let dyn_update_correct_and_pushes () =
  let ok, stats, _ = producer_consumer ~proto:"DYN_UPDATE" ~nprocs:4 ~rounds:5 in
  check "coherent" true ok;
  check "pushes happened" true (Stats.get stats "coh.update_push" > 0.)

let dyn_update_avoids_steady_state_misses () =
  let _, stats, _ = producer_consumer ~proto:"DYN_UPDATE" ~nprocs:4 ~rounds:8 in
  (* consumers miss only in round 1; afterwards pushes keep them warm *)
  check "bounded misses" true (Stats.get stats "coh.read_miss" <= 4.)

let static_update_correct () =
  let ok, stats, _ =
    producer_consumer ~proto:"STATIC_UPDATE" ~nprocs:4 ~rounds:8
  in
  check "coherent" true ok;
  check "static pushes happened" true (Stats.get stats "coh.static_push" > 0.)

let static_update_learns_consumers () =
  (* after the two-barrier learning window, reads never miss *)
  let _, stats, _ =
    producer_consumer ~proto:"STATIC_UPDATE" ~nprocs:6 ~rounds:10
  in
  (* 5 consumers can miss during the first two rounds only *)
  check "misses bounded by learning window" true
    (Stats.get stats "coh.read_miss" <= 10.)

let static_update_faster_than_sc_for_producer_consumer () =
  let _, _, t_sc = producer_consumer ~proto:"SC" ~nprocs:8 ~rounds:10 in
  let _, _, t_st =
    producer_consumer ~proto:"STATIC_UPDATE" ~nprocs:8 ~rounds:10
  in
  check "static update wins" true (t_st < t_sc)

let migratory_moves_ownership () =
  let rt = make ~nprocs:4 () in
  let ok = ref true in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "MIGRATORY";
      (* token passing: proc k adds 1 in round k *)
      for round = 0 to 3 do
        if me = round then begin
          Ops.start_write ctx h;
          (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
          Ops.end_write ctx h
        end;
        Ops.barrier ctx ~space:0
      done;
      Ops.start_read ctx h;
      if (Ops.data ctx h).(0) <> 4. then ok := false;
      Ops.end_read ctx h);
  check "token accumulated" true !ok

let write_once_owner_writes () =
  let rt = make ~nprocs:4 () in
  let ok = ref true in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      let mine = Ops.alloc ctx ~space:0 ~len:2 in
      Ops.barrier ctx ~space:0;
      Ops.change_protocol ctx ~space:0 "WRITE_ONCE";
      Ops.start_write ctx mine;
      (Ops.data ctx mine).(0) <- float_of_int (me * 7);
      Ops.end_write ctx mine;
      Ops.barrier ctx ~space:0;
      for o = 0 to 3 do
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:o ~seq:0) in
        Ops.start_read ctx h;
        if (Ops.data ctx h).(0) <> float_of_int (o * 7) then ok := false;
        Ops.end_read ctx h
      done);
  check "published after final write" true !ok

let counter_unique_tickets () =
  let rt = make ~nprocs:8 () in
  let tickets = Hashtbl.create 64 in
  Runtime.run rt (fun ctx ->
      if Ops.me ctx = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "COUNTER";
      for _ = 1 to 10 do
        Ops.start_write ctx h;
        let v = (Ops.data ctx h).(0) in
        (Ops.data ctx h).(0) <- v +. 1.;
        Ops.end_write ctx h;
        assert (not (Hashtbl.mem tickets v));
        Hashtbl.add tickets v ()
      done;
      Ops.barrier ctx ~space:0);
  check_int "80 unique tickets" 80 (Hashtbl.length tickets)

let counter_faster_than_sc_under_contention () =
  let grab proto =
    let rt = make ~nprocs:16 () in
    Runtime.run rt (fun ctx ->
        if Ops.me ctx = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
        Ops.barrier ctx ~space:0;
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
        Ops.change_protocol ctx ~space:0 proto;
        for _ = 1 to 20 do
          Ops.start_write ctx h;
          (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
          Ops.end_write ctx h
        done;
        Ops.barrier ctx ~space:0);
    Runtime.time_seconds rt
  in
  check "fetch-and-add wins" true (grab "COUNTER" < grab "SC")

let pipeline_accumulation_correct () =
  let rt = make ~nprocs:6 () in
  let total = ref 0. in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "PIPELINE";
      for _ = 1 to 10 do
        Ops.lock ctx h;
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
        Ops.end_write ctx h;
        Ops.unlock ctx h
      done;
      Ops.barrier ctx ~space:0;
      Ops.start_read ctx h;
      let v = (Ops.data ctx h).(0) in
      Ops.end_read ctx h;
      if me = 3 then total := v);
  check "no lost updates" true (!total = 60.)

let null_protocol_local_phase () =
  let rt = make ~nprocs:4 () in
  let ok = ref true in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      let mine = Ops.alloc ctx ~space:0 ~len:1 in
      Ops.barrier ctx ~space:0;
      Ops.change_protocol ctx ~space:0 "NULL";
      for _ = 1 to 50 do
        Ops.start_write ctx mine;
        (Ops.data ctx mine).(0) <- (Ops.data ctx mine).(0) +. 1.;
        Ops.end_write ctx mine
      done;
      Ops.change_protocol ctx ~space:0 "SC";
      for o = 0 to 3 do
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:o ~seq:0) in
        Ops.start_read ctx h;
        if (Ops.data ctx h).(0) <> 50. then ok := false;
        Ops.end_read ctx h
      done;
      ignore me);
  check "local results published on change" true !ok

let race_checker_flags_race () =
  let rt = make ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "RACE_CHECK";
      (* unsynchronized conflicting accesses *)
      if me = 0 then begin
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 1.;
        Ops.end_write ctx h
      end
      else begin
        Ops.start_read ctx h;
        ignore (Ops.data ctx h).(0);
        Ops.end_read ctx h
      end;
      Ops.barrier ctx ~space:0);
  let reports = Ace_protocols.Proto_race_check.reports (Runtime.space rt 0) in
  check "race reported" true (List.length reports >= 1)

let race_checker_silent_when_locked () =
  let rt = make ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "RACE_CHECK";
      Ops.lock ctx h;
      Ops.start_write ctx h;
      (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
      Ops.end_write ctx h;
      Ops.unlock ctx h;
      Ops.barrier ctx ~space:0);
  let reports = Ace_protocols.Proto_race_check.reports (Runtime.space rt 0) in
  check_int "no reports" 0 (List.length reports)

let race_checker_silent_across_barriers () =
  let rt = make ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      Ops.change_protocol ctx ~space:0 "RACE_CHECK";
      if me = 0 then begin
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 1.;
        Ops.end_write ctx h
      end;
      Ops.barrier ctx ~space:0;
      if me = 1 then begin
        Ops.start_read ctx h;
        ignore (Ops.data ctx h).(0);
        Ops.end_read ctx h
      end;
      Ops.barrier ctx ~space:0);
  let reports = Ace_protocols.Proto_race_check.reports (Runtime.space rt 0) in
  check_int "barrier-separated accesses are not racy" 0 (List.length reports)

(* Every protocol must preserve the producer-consumer program. *)
let all_protocols_preserve_meaning () =
  List.iter
    (fun proto ->
      let ok, _, _ = producer_consumer ~proto ~nprocs:4 ~rounds:5 in
      check (proto ^ " coherent") true ok)
    [ "SC"; "DYN_UPDATE"; "STATIC_UPDATE"; "MIGRATORY"; "RACE_CHECK" ]

let () =
  Alcotest.run "protocols"
    [
      ( "dyn_update",
        [
          Alcotest.test_case "correct + pushes" `Quick dyn_update_correct_and_pushes;
          Alcotest.test_case "few steady-state misses" `Quick
            dyn_update_avoids_steady_state_misses;
        ] );
      ( "static_update",
        [
          Alcotest.test_case "correct" `Quick static_update_correct;
          Alcotest.test_case "learning bounds misses" `Quick
            static_update_learns_consumers;
          Alcotest.test_case "beats SC" `Quick
            static_update_faster_than_sc_for_producer_consumer;
        ] );
      ( "migratory",
        [ Alcotest.test_case "token passing" `Quick migratory_moves_ownership ] );
      ( "write_once",
        [ Alcotest.test_case "owner writes" `Quick write_once_owner_writes ] );
      ( "counter",
        [
          Alcotest.test_case "unique tickets" `Quick counter_unique_tickets;
          Alcotest.test_case "beats SC under contention" `Quick
            counter_faster_than_sc_under_contention;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "no lost updates" `Quick pipeline_accumulation_correct ]
      );
      ( "null",
        [ Alcotest.test_case "local phase" `Quick null_protocol_local_phase ] );
      ( "race_check",
        [
          Alcotest.test_case "flags race" `Quick race_checker_flags_race;
          Alcotest.test_case "silent when locked" `Quick
            race_checker_silent_when_locked;
          Alcotest.test_case "silent across barriers" `Quick
            race_checker_silent_across_barriers;
        ] );
      ( "universal",
        [
          Alcotest.test_case "all preserve meaning" `Quick
            all_protocols_preserve_meaning;
        ] );
    ]
