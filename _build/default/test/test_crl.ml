(* Tests for the CRL-like baseline DSM. *)

module Crl = Ace_crl.Crl
module Machine = Ace_engine.Machine

let check = Alcotest.(check bool)

let run ~nprocs f =
  let sys = Crl.create ~nprocs () in
  Crl.run sys f;
  sys

let shared_counter () =
  let captured = ref 0. in
  let _ =
    run ~nprocs:6 (fun ctx ->
        let rids =
          Crl.bcast ctx ~root:0 (fun () ->
              [| Crl.rid (Crl.alloc ctx ~space:0 ~len:1) |])
        in
        let h = Crl.map ctx rids.(0) in
        for _ = 1 to 4 do
          Crl.lock ctx h;
          Crl.start_write ctx h;
          (Crl.data ctx h).(0) <- (Crl.data ctx h).(0) +. 1.;
          Crl.end_write ctx h;
          Crl.unlock ctx h
        done;
        Crl.barrier ctx ~space:0;
        Crl.start_read ctx h;
        let v = (Crl.data ctx h).(0) in
        Crl.end_read ctx h;
        if Crl.me ctx = 0 then captured := v)
  in
  check "6 procs x 4 increments" true (!captured = 24.)

let unsynchronized_rmw_atomic_via_sections () =
  (* CRL semantics: start_write..end_write is atomic even without locks,
     because recalls are deferred until end_write *)
  let captured = ref 0. in
  let _ =
    run ~nprocs:8 (fun ctx ->
        let rids =
          Crl.bcast ctx ~root:0 (fun () ->
              [| Crl.rid (Crl.alloc ctx ~space:0 ~len:1) |])
        in
        let h = Crl.map ctx rids.(0) in
        for _ = 1 to 5 do
          Crl.start_write ctx h;
          (Crl.data ctx h).(0) <- (Crl.data ctx h).(0) +. 1.;
          Crl.end_write ctx h
        done;
        Crl.barrier ctx ~space:0;
        Crl.start_read ctx h;
        let v = (Crl.data ctx h).(0) in
        Crl.end_read ctx h;
        if Crl.me ctx = 0 then captured := v)
  in
  check "40 atomic increments" true (!captured = 40.)

let producer_consumer_phases () =
  let disagreements = ref 0 in
  let _ =
    run ~nprocs:4 (fun ctx ->
        let me = Crl.me ctx in
        let mine = Crl.alloc ctx ~space:0 ~len:2 in
        let parts = Crl.allgather ctx [| Crl.rid mine |] in
        Crl.barrier ctx ~space:0;
        for round = 1 to 3 do
          Crl.start_write ctx mine;
          (Crl.data ctx mine).(0) <- float_of_int ((me * 10) + round);
          Crl.end_write ctx mine;
          Crl.barrier ctx ~space:0;
          for o = 0 to 3 do
            let h = Crl.map ctx parts.(o).(0) in
            Crl.start_read ctx h;
            if (Crl.data ctx h).(0) <> float_of_int ((o * 10) + round) then
              incr disagreements;
            Crl.end_read ctx h
          done;
          Crl.barrier ctx ~space:0
        done)
  in
  check "coherent across rounds" true (!disagreements = 0)

let change_protocol_is_noop () =
  (* a single-protocol system safely ignores protocol hints *)
  let captured = ref 0. in
  let _ =
    run ~nprocs:2 (fun ctx ->
        let rids =
          Crl.bcast ctx ~root:0 (fun () ->
              [| Crl.rid (Crl.alloc ctx ~space:0 ~len:1) |])
        in
        let h = Crl.map ctx rids.(0) in
        Crl.change_protocol ctx ~space:0 "DYN_UPDATE";
        Crl.lock ctx h;
        Crl.start_write ctx h;
        (Crl.data ctx h).(0) <- (Crl.data ctx h).(0) +. 1.;
        Crl.end_write ctx h;
        Crl.unlock ctx h;
        Crl.barrier ctx ~space:0;
        Crl.start_read ctx h;
        let v = (Crl.data ctx h).(0) in
        Crl.end_read ctx h;
        if Crl.me ctx = 0 then captured := v)
  in
  check "still coherent" true (!captured = 2.)

let time_advances () =
  let sys = run ~nprocs:2 (fun ctx -> Crl.work ctx 330.) in
  Alcotest.(check (float 1e-12)) "10 us at 33 MHz" 1e-5 (Crl.time_seconds sys)

let () =
  Alcotest.run "crl"
    [
      ( "crl",
        [
          Alcotest.test_case "shared counter" `Quick shared_counter;
          Alcotest.test_case "rmw via sections" `Quick
            unsynchronized_rmw_atomic_via_sections;
          Alcotest.test_case "producer/consumer" `Quick producer_consumer_phases;
          Alcotest.test_case "change_protocol noop" `Quick change_protocol_is_noop;
          Alcotest.test_case "time" `Quick time_advances;
        ] );
    ]
