(* Tests for the Ace runtime: spaces, dispatch, protocol registry,
   Ace_ChangeProtocol semantics, collectives and region naming. *)

module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops
module Protocol = Ace_runtime.Protocol
module Store = Ace_region.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(spaces = 1) ~nprocs () =
  let rt = Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  for _ = 1 to spaces do
    ignore (Runtime.new_space rt "SC")
  done;
  rt

let registry_contents () =
  let rt = make ~nprocs:2 () in
  let names = List.map (fun p -> p.Protocol.name) (Runtime.protocols rt) in
  List.iter
    (fun n -> check ("has " ^ n) true (List.mem n names))
    [
      "SC"; "NULL"; "DYN_UPDATE"; "STATIC_UPDATE"; "MIGRATORY"; "WRITE_ONCE";
      "COUNTER"; "PIPELINE"; "RACE_CHECK";
    ]

let duplicate_registration_rejected () =
  let rt = make ~nprocs:2 () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Runtime.register: duplicate protocol SC") (fun () ->
      Runtime.register rt Ace_runtime.Proto_sc.protocol)

let unknown_protocol_rejected () =
  let rt = make ~nprocs:2 () in
  Alcotest.check_raises "unknown" (Invalid_argument "unknown protocol BOGUS")
    (fun () -> ignore (Runtime.find_protocol rt "BOGUS"))

let spaces_keep_separate_protocols () =
  let rt = make ~spaces:2 ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      Ops.change_protocol ctx ~space:1 "DYN_UPDATE";
      let sp0 = Runtime.space rt 0 and sp1 = Runtime.space rt 1 in
      assert (sp0.Protocol.proto.Protocol.name = "SC");
      assert (sp1.Protocol.proto.Protocol.name = "DYN_UPDATE"));
  check "done" true true

let dispatch_follows_space () =
  (* after allocating from two spaces, each region's accesses run its own
     space's protocol; verify via the regions list per space *)
  let rt = make ~spaces:2 ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      if Ops.me ctx = 0 then begin
        let a = Ops.alloc ctx ~space:0 ~len:1 in
        let b = Ops.alloc ctx ~space:1 ~len:1 in
        assert (a.Store.space = 0 && b.Store.space = 1)
      end);
  check_int "space 0 regions" 1 (List.length (Runtime.space rt 0).Protocol.rids);
  check_int "space 1 regions" 1 (List.length (Runtime.space rt 1).Protocol.rids)

let change_protocol_flushes () =
  (* switching away from SC flushes cached remote copies back home *)
  let rt = make ~nprocs:2 () in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      let rids =
        Ops.bcast ctx ~root:0 (fun () ->
            [| Ops.rid (Ops.alloc ctx ~space:0 ~len:1) |])
      in
      let h = Ops.map ctx rids.(0) in
      if me = 1 then begin
        (* take the region exclusively and write it *)
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 123.;
        Ops.end_write ctx h
      end;
      Ops.barrier ctx ~space:0;
      Ops.change_protocol ctx ~space:0 "NULL";
      (* after the flush the master holds the written value and nobody is
         an exclusive owner *)
      if me = 0 then begin
        assert (h.Store.master.(0) = 123.);
        assert (h.Store.dir.Store.owner = -1)
      end);
  check "done" true true

let change_protocol_and_back_stays_coherent () =
  let rt = make ~nprocs:4 () in
  let captured = ref 0. in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      let mine = Ops.alloc ctx ~space:0 ~len:1 in
      Ops.barrier ctx ~space:0;
      (* SC phase: write own *)
      Ops.start_write ctx mine;
      (Ops.data ctx mine).(0) <- float_of_int me;
      Ops.end_write ctx mine;
      Ops.change_protocol ctx ~space:0 "NULL";
      (* NULL phase: home-local writes *)
      Ops.start_write ctx mine;
      (Ops.data ctx mine).(0) <- (Ops.data ctx mine).(0) +. 100.;
      Ops.end_write ctx mine;
      Ops.change_protocol ctx ~space:0 "SC";
      (* SC again: everyone reads everything *)
      let sum = ref 0. in
      for o = 0 to 3 do
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:o ~seq:0) in
        Ops.start_read ctx h;
        sum := !sum +. (Ops.data ctx h).(0);
        Ops.end_read ctx h
      done;
      if me = 2 then captured := !sum);
  check "sum of (me + 100)" true (!captured = 406.)

let collective_new_space () =
  let rt = Runtime.create ~nprocs:3 () in
  Ace_protocols.Proto_lib.register_all rt;
  let sids = ref [] in
  Runtime.run rt (fun ctx ->
      let s1 = Ops.new_space ctx "SC" in
      let s2 = Ops.new_space ctx "SC" in
      if Ops.me ctx = 0 then sids := [ s1; s2 ]);
  Alcotest.(check (list int)) "two shared spaces" [ 0; 1 ] !sids;
  check_int "exactly two created" 2 rt.Protocol.nspaces

let global_id_naming () =
  let rt = make ~nprocs:3 () in
  let ok = ref true in
  Runtime.run rt (fun ctx ->
      let mine =
        Array.init 3 (fun _ -> Ops.rid (Ops.alloc ctx ~space:0 ~len:1))
      in
      Ops.barrier ctx ~space:0;
      (* every node resolves every (owner, seq) to the allocated rid *)
      Array.iteri
        (fun seq rid ->
          if Ops.global_id ctx ~space:0 ~owner:(Ops.me ctx) ~seq <> rid then
            ok := false)
        mine;
      let remote = Ops.global_id ctx ~space:0 ~owner:((Ops.me ctx + 1) mod 3) ~seq:2 in
      if remote < 0 then ok := false);
  check "naming consistent" true !ok

let map_costs_hit_vs_miss () =
  let rt = make ~nprocs:2 () in
  let delta_miss = ref 0. and delta_hit = ref 0. in
  Runtime.run rt (fun ctx ->
      if Ops.me ctx = 0 then begin
        let rid = Ops.rid (Ops.alloc ctx ~space:0 ~len:1) in
        let t0 = ctx.Protocol.proc.Ace_engine.Machine.clock in
        ignore (Ops.map ctx rid);
        let t1 = ctx.Protocol.proc.Ace_engine.Machine.clock in
        ignore (Ops.map ctx rid);
        let t2 = ctx.Protocol.proc.Ace_engine.Machine.clock in
        delta_miss := t1 -. t0;
        delta_hit := t2 -. t1
      end);
  (* the first map of an unmapped region on node 0 is a hit (home copy
     exists from alloc), so compare against a remote node's first map *)
  check "hit cheaper than alloc" true (!delta_hit <= !delta_miss)

let null_protocol_cheaper_than_sc () =
  let time_with proto =
    let rt = make ~nprocs:1 () in
    Runtime.run rt (fun ctx ->
        let h = Ops.alloc ctx ~space:0 ~len:1 in
        Ops.change_protocol ctx ~space:0 proto;
        for _ = 1 to 100 do
          Ops.start_write ctx h;
          (Ops.data ctx h).(0) <- 1.;
          Ops.end_write ctx h
        done);
    Runtime.time_seconds rt
  in
  check "null hooks cost less" true (time_with "NULL" < time_with "SC")

let () =
  Alcotest.run "ace_runtime"
    [
      ( "registry",
        [
          Alcotest.test_case "contents" `Quick registry_contents;
          Alcotest.test_case "duplicates" `Quick duplicate_registration_rejected;
          Alcotest.test_case "unknown" `Quick unknown_protocol_rejected;
        ] );
      ( "spaces",
        [
          Alcotest.test_case "separate protocols" `Quick
            spaces_keep_separate_protocols;
          Alcotest.test_case "dispatch follows space" `Quick dispatch_follows_space;
          Alcotest.test_case "collective new_space" `Quick collective_new_space;
        ] );
      ( "change_protocol",
        [
          Alcotest.test_case "flush semantics" `Quick change_protocol_flushes;
          Alcotest.test_case "round trip coherent" `Quick
            change_protocol_and_back_stays_coherent;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "global_id" `Quick global_id_naming;
          Alcotest.test_case "map hit/miss" `Quick map_costs_hit_vs_miss;
          Alcotest.test_case "null cheaper" `Quick null_protocol_cheaper_than_sc;
        ] );
    ]
