(* Ace_ChangeProtocol between program phases (paper §2.2): Water alternates
   intra-molecular (processor-local) and inter-molecular (communicating)
   phases. A NULL protocol is correct and fast for the first, a
   pipelined-update protocol for the second; neither could be used for the
   whole program.

     dune exec examples/water_phases.exe
*)

module Water = Ace_apps.Water
module Driver = Ace_harness.Driver

let nprocs = 16

let run phase_protocols =
  Driver.run_ace ~nprocs (module Water)
    {
      Water.core =
        { Water.default.Water.core with Ace_apps.Water_core.n_mol = 96; steps = 4 };
      phase_protocols;
    }

let () =
  Printf.printf "Water, %d simulated processors:\n\n" nprocs;
  let sc = run None in
  Printf.printf "  SC throughout                      %.6f s\n" sc.Driver.seconds;
  let custom = run (Some ("NULL", "PIPELINE")) in
  Printf.printf "  NULL (intra) + PIPELINE (inter)    %.6f s  (%.2fx)\n"
    custom.Driver.seconds
    (sc.Driver.seconds /. custom.Driver.seconds);
  Printf.printf "\nresults: sc=%.9g custom=%.9g (equal up to accumulation order)\n"
    sc.Driver.result custom.Driver.result;
  assert (
    abs_float (sc.Driver.result -. custom.Driver.result)
    < 1e-6 *. (1. +. abs_float sc.Driver.result));
  print_endline "(the paper reports ~2x from this protocol schedule)"
