examples/quickstart.ml: Ace_protocols Ace_runtime Array Printf
