examples/minilang_tour.mli:
