examples/minilang_tour.ml: Ace_lang Ace_protocols Ace_runtime List Printf
