examples/water_phases.ml: Ace_apps Ace_harness Printf
