examples/em3d_custom.ml: Ace_apps Ace_harness Printf
