examples/quickstart.mli:
