examples/race_detect.ml: Ace_protocols Ace_runtime Array List Printf String
