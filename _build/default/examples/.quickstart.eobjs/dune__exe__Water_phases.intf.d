examples/water_phases.mli:
