(* A tour of the MiniAce compiler pipeline: parse a small program, show the
   Fig. 5 annotation inserts, then each optimization pass's effect on the
   annotated IR and on simulated execution time.

     dune exec examples/minilang_tour.exe
*)

let source =
  {|
// every processor owns a 16-element region and repeatedly relaxes it
// against its neighbour's; STATIC_UPDATE is plugged in after setup.
func main() {
  space s = newspace(SC);
  region mine;
  region theirs;
  mine = gmalloc(s, 16);
  var i = 0;
  for (i = 0; i < 16; i += 1) { mine[i] = me() + i; }
  barrier(s);
  changeproto(s, STATIC_UPDATE);
  var nb = me() + 1;
  if (nb >= nprocs()) { nb = 0; }
  theirs = globalid(s, nb, 0);
  var t = 0;
  for (t = 0; t < 6; t += 1) {
    for (i = 0; i < 16; i += 1) {
      mine[i] = 0.5 * mine[i] + 0.5 * theirs[i];
      work(6);
    }
    barrier(s);
  }
  return mine[0];
}
|}

let () =
  let fresh () =
    let rt = Ace_runtime.Runtime.create ~nprocs:8 () in
    Ace_protocols.Proto_lib.register_all rt;
    rt
  in
  let registry = Ace_lang.Registry.of_runtime (fresh ()) in
  print_endline "=== protocol registry (Fig. 1 equivalent) ===";
  print_string (Ace_lang.Registry.to_text registry);
  List.iter
    (fun level ->
      let ir, diag = Ace_lang.Compile.compile ~registry ~level source in
      let rt = fresh () in
      let result = Ace_lang.Interp.run_spmd rt ir in
      Printf.printf
        "\n=== %s: %d maps, %d starts/%d ends (%d direct, %d removed) -> %.6f s, main() = %.6g ===\n"
        (Ace_lang.Opt.level_name level)
        diag.Ace_lang.Compile.after.Ace_lang.Ir.maps
        diag.Ace_lang.Compile.after.Ace_lang.Ir.starts
        diag.Ace_lang.Compile.after.Ace_lang.Ir.ends
        diag.Ace_lang.Compile.after.Ace_lang.Ir.direct_calls
        diag.Ace_lang.Compile.after.Ace_lang.Ir.removed_calls
        (Ace_runtime.Runtime.time_seconds rt)
        result;
      if level = Ace_lang.Opt.O3 then begin
        print_endline "--- fully optimized IR ---";
        print_string (Ace_lang.Ir.to_string ir)
      end)
    [ Ace_lang.Opt.O0; Ace_lang.Opt.O1; Ace_lang.Opt.O2; Ace_lang.Opt.O3 ]
