(* Quickstart: the smallest complete Ace program.

   Eight simulated processors share one region. Processor 0 allocates it
   from the default (sequentially consistent) space; everyone maps it by
   its global name and atomically increments it under the region lock; the
   final value is read back coherently.

     dune exec examples/quickstart.exe
*)

module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops

let () =
  (* a fresh simulated 8-node machine with the Ace runtime on top *)
  let rt = Runtime.create ~nprocs:8 () in
  Ace_protocols.Proto_lib.register_all rt;

  (* Ace_NewSpace(SC): one space with the default protocol *)
  let space = (Runtime.new_space rt "SC").Ace_runtime.Protocol.sid in

  (* the SPMD program: every processor runs this function *)
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in

      (* Ace_GMalloc: processor 0 allocates a one-word region *)
      if me = 0 then ignore (Ops.alloc ctx ~space ~len:1);
      Ops.barrier ctx ~space;

      (* everyone maps the region by its deterministic global name *)
      let h = Ops.map ctx (Ops.global_id ctx ~space ~owner:0 ~seq:0) in

      (* a locked read-modify-write, bracketed with access control calls *)
      Ops.lock ctx h;
      Ops.start_write ctx h;
      (Ops.data ctx h).(0) <- (Ops.data ctx h).(0) +. 1.;
      Ops.end_write ctx h;
      Ops.unlock ctx h;

      Ops.barrier ctx ~space;
      Ops.start_read ctx h;
      let v = (Ops.data ctx h).(0) in
      Ops.end_read ctx h;
      if me = 0 then
        Printf.printf "final counter value: %.0f (expected 8)\n" v);

  Printf.printf "simulated time: %.6f s\n" (Runtime.time_seconds rt)
