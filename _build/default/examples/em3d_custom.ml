(* The paper's §3.3 walk-through: EM3D developed under the default
   sequentially consistent protocol, then optimized by plugging in update
   protocol libraries — changing only the Ace_ChangeProtocol calls (here, a
   config field), exactly like Fig. 2 lines 8-9.

     dune exec examples/em3d_custom.exe
*)

module Em3d = Ace_apps.Em3d
module Driver = Ace_harness.Driver

let nprocs = 16
let iters = 4

let per_iter protocol =
  let run steps =
    Driver.run_ace ~nprocs (module Em3d)
      { Em3d.default with Em3d.n_nodes = 400; steps; protocol }
  in
  Driver.per_iteration ~run_with_steps:run ~iters

let () =
  Printf.printf "EM3D, %d simulated processors, average time per iteration:\n\n"
    nprocs;
  let sc = per_iter None in
  Printf.printf "  sequentially consistent (default)  %.6f s/iter\n"
    sc.Driver.seconds;
  let dyn = per_iter (Some "DYN_UPDATE") in
  Printf.printf "  dynamic update library             %.6f s/iter  (%.1fx)\n"
    dyn.Driver.seconds
    (sc.Driver.seconds /. dyn.Driver.seconds);
  let st = per_iter (Some "STATIC_UPDATE") in
  Printf.printf "  static update library              %.6f s/iter  (%.1fx)\n"
    st.Driver.seconds
    (sc.Driver.seconds /. st.Driver.seconds);
  Printf.printf
    "\nall three computed the same values (checksum %.9g)\n"
    sc.Driver.result;
  assert (abs_float (sc.Driver.result -. dyn.Driver.result) < 1e-9);
  assert (abs_float (sc.Driver.result -. st.Driver.result) < 1e-9);
  print_endline
    "(the paper reports ~3.5x for dynamic update and ~5x for static update)"
