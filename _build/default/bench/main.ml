(* Regenerates every table and figure of the paper's evaluation (§5):

     fig7a   — Figure 7a: Ace runtime vs CRL (both SC), five benchmarks
     fig7b   — Figure 7b: SC vs application-specific protocols in Ace
     table4  — Table 4: compiler optimization levels vs hand-written code
     ablation — the design-choice ablations DESIGN.md calls out
     micro   — Bechamel microbenchmarks of simulator primitives (wall clock)

   Times are simulated seconds on the modelled 32-node CM-5 (deterministic;
   absolute values depend on the cost model, shapes are the reproduction
   target — see EXPERIMENTS.md). Run with no arguments for everything
   except micro. *)

module E = Ace_harness.Experiments
module T4 = Ace_harness.Table4

let scale = ref { E.nprocs = 32; factor = 1 }

let line () = print_endline (String.make 72 '=')

let fig7a () =
  line ();
  Printf.printf "Figure 7a: Ace runtime system versus CRL (SC protocol, %d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows = E.fig7a ~scale:!scale () in
  E.print_rows ~left:"CRL" ~right:"Ace" rows;
  print_newline ()

let fig7b () =
  line ();
  Printf.printf
    "Figure 7b: single (SC) protocol vs application-specific protocols (%d procs)\n"
    !scale.E.nprocs;
  line ();
  let rows = E.fig7b ~scale:!scale () in
  E.print_rows ~left:"SC" ~right:"custom" rows;
  let avg =
    List.fold_left (fun a r -> a +. E.speedup r) 0. rows
    /. float_of_int (List.length rows)
  in
  Printf.printf "average speedup: %.2fx (paper: range 1.02-5, average ~2)\n\n" avg

let table4 () =
  line ();
  Printf.printf
    "Table 4: effects of compiler optimizations (simulated seconds, %d procs)\n"
    !scale.E.nprocs;
  line ();
  T4.print_rows (T4.table4 ~nprocs:!scale.E.nprocs ());
  print_newline ()

(* ---- ablations (DESIGN.md section 5) ---- *)

let ablation_mapping () =
  (* the "more efficient mapping technique": rerun EM3D with Ace's map and
     miss costs degraded to CRL's *)
  let nprocs = !scale.E.nprocs in
  let run cost =
    let rt = Ace_runtime.Runtime.create ~cost ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg = { Ace_apps.Em3d.default with Ace_apps.Em3d.steps = 5 } in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx));
    Ace_runtime.Runtime.time_seconds rt
  in
  let fast = run Ace_net.Cost_model.cm5_ace in
  let slow =
    run
      {
        Ace_net.Cost_model.cm5_ace with
        Ace_net.Cost_model.map_hit =
          Ace_net.Cost_model.cm5_crl.Ace_net.Cost_model.map_hit;
        miss_overhead =
          Ace_net.Cost_model.cm5_crl.Ace_net.Cost_model.miss_overhead;
      }
  in
  Printf.printf
    "mapping + lean protocol (EM3D): ace=%.6fs, ace-with-CRL-costs=%.6fs (%.2fx)\n"
    fast slow (slow /. fast)

let ablation_granularity () =
  (* user-specified granularity (§2.3): each processor repeatedly writes
     one logical datum. With one datum per region the writes are
     processor-local; with eight data packed into one fixed "cache line"
     region, eight writers false-share the coherence unit and it
     ping-pongs exclusively between them. *)
  let nprocs = !scale.E.nprocs in
  let run ~packed =
    let rt = Ace_runtime.Runtime.create ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    ignore (Ace_runtime.Runtime.new_space rt "SC");
    Ace_runtime.Runtime.run rt (fun ctx ->
        let open Ace_runtime.Ops in
        let my = me ctx in
        let h, slot =
          if packed then begin
            (* processor p writes slot (p mod 8) of region (p / 8), all
               regions homed at node 0 *)
            if my = 0 then
              for _ = 1 to (nprocs ctx + 7) / 8 do
                ignore (alloc ctx ~space:0 ~len:8)
              done;
            barrier ctx ~space:0;
            (map ctx (global_id ctx ~space:0 ~owner:0 ~seq:(my / 8)), my mod 8)
          end
          else begin
            let h = alloc ctx ~space:0 ~len:1 in
            barrier ctx ~space:0;
            (h, 0)
          end
        in
        for _ = 1 to 40 do
          start_write ctx h;
          (data ctx h).(slot) <- (data ctx h).(slot) +. 1.;
          end_write ctx h
        done;
        barrier ctx ~space:0);
    Ace_runtime.Runtime.time_seconds rt
  in
  let fine = run ~packed:false and packed = run ~packed:true in
  Printf.printf
    "granularity (40 writes/proc): per-datum regions=%.6fs, 8 writers per packed region=%.6fs (%.1fx false-sharing penalty)\n"
    fine packed (packed /. fine)

let ablation_learning_window () =
  (* static update amortization: the learning iterations dominate short
     runs and vanish in long ones *)
  let nprocs = !scale.E.nprocs in
  let run steps =
    let rt = Ace_runtime.Runtime.create ~nprocs () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg =
      {
        Ace_apps.Em3d.default with
        Ace_apps.Em3d.steps;
        protocol = Some "STATIC_UPDATE";
      }
    in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx));
    Ace_runtime.Runtime.time_seconds rt
  in
  let short = run 3 and long = run 12 in
  Printf.printf
    "static-update amortization (EM3D): %.6fs/step at 3 steps vs %.6fs/step at 12\n"
    (short /. 3.) (long /. 12.)

let ablation () =
  line ();
  print_endline "Ablations (DESIGN.md section 5)";
  line ();
  ablation_mapping ();
  ablation_granularity ();
  ablation_learning_window ();
  print_newline ()

(* ---- bechamel microbenchmarks (wall-clock cost of the simulator) ---- *)

let micro () =
  let open Bechamel in
  let barrier_bench () =
    let m = Ace_engine.Machine.create ~nprocs:8 in
    let b = Ace_engine.Machine.Barrier.create m ~cost:(fun _ -> 10.) in
    Ace_engine.Machine.run m (fun p ->
        for _ = 1 to 10 do
          Ace_engine.Machine.Barrier.wait b p
        done)
  in
  let coherence_bench () =
    let rt = Ace_runtime.Runtime.create ~nprocs:4 () in
    ignore (Ace_runtime.Runtime.new_space rt "SC");
    Ace_runtime.Runtime.run rt (fun ctx ->
        let open Ace_runtime.Ops in
        if me ctx = 0 then ignore (alloc ctx ~space:0 ~len:8);
        barrier ctx ~space:0;
        let h = map ctx (global_id ctx ~space:0 ~owner:0 ~seq:0) in
        for _ = 1 to 20 do
          start_write ctx h;
          (data ctx h).(0) <- 1.;
          end_write ctx h;
          barrier ctx ~space:0
        done)
  in
  let em3d_bench () =
    let rt = Ace_runtime.Runtime.create ~nprocs:4 () in
    Ace_protocols.Proto_lib.register_all rt;
    for _ = 1 to Ace_apps.Em3d.n_spaces do
      ignore (Ace_runtime.Runtime.new_space rt "SC")
    done;
    let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
    let cfg =
      { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }
    in
    Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run cfg ctx))
  in
  let tests =
    Test.make_grouped ~name:"ace"
      [
        Test.make ~name:"barrier-8p-x10" (Staged.stage barrier_bench);
        Test.make ~name:"sc-writes-4p-x20" (Staged.stage coherence_bench);
        Test.make ~name:"em3d-4p-2steps" (Staged.stage em3d_bench);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  line ();
  print_endline "Bechamel microbenchmarks (host wall-clock per simulated run)";
  line ();
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let flags, selections = List.partition (fun a -> a = "--small") args in
  if flags <> [] then scale := { E.nprocs = 8; factor = 1 };
  List.iter
    (fun a ->
      match a with
      | "fig7a" | "fig7b" | "table4" | "ablation" | "micro" -> ()
      | other ->
          Printf.eprintf
            "unknown argument %s (expected: fig7a fig7b table4 ablation micro [--small])\n"
            other;
          exit 2)
    selections;
  let wants s = selections = [] || List.mem s selections in
  if wants "fig7a" then fig7a ();
  if wants "fig7b" then fig7b ();
  if wants "table4" then table4 ();
  if wants "ablation" then ablation ();
  if List.mem "micro" selections then micro ()
