(* acec: the MiniAce compiler driver.

     acec prog.ace                      # compile at -O3 and run on 8 procs
     acec prog.ace -O0 --dump-ir       # show the Fig. 5 annotation inserts
     acec prog.ace -O2 --procs 32      # run the optimized program
     acec --dump-config                # print the Fig. 1 registry text
*)

open Cmdliner

let level_of_int = function
  | 0 -> Ace_lang.Opt.O0
  | 1 -> Ace_lang.Opt.O1
  | 2 -> Ace_lang.Opt.O2
  | _ -> Ace_lang.Opt.O3

let fresh_runtime nprocs =
  let rt = Ace_runtime.Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  rt

let run file level nprocs dump_ir dump_config no_run =
  if dump_config then begin
    let rt = fresh_runtime nprocs in
    print_string (Ace_lang.Registry.to_text (Ace_lang.Registry.of_runtime rt));
    0
  end
  else
    match file with
    | None ->
        prerr_endline "acec: no input file (see --help)";
        2
    | Some file -> (
        let source =
          let ic = open_in file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        try
          let rt = fresh_runtime nprocs in
          let registry = Ace_lang.Registry.of_runtime rt in
          let ir, diag =
            Ace_lang.Compile.compile ~registry ~level:(level_of_int level)
              source
          in
          Printf.printf
            "compiled %s at %s: %d maps, %d starts, %d ends (%d direct, %d removed)\n"
            file
            (Ace_lang.Opt.level_name diag.Ace_lang.Compile.level)
            diag.Ace_lang.Compile.after.Ace_lang.Ir.maps
            diag.Ace_lang.Compile.after.Ace_lang.Ir.starts
            diag.Ace_lang.Compile.after.Ace_lang.Ir.ends
            diag.Ace_lang.Compile.after.Ace_lang.Ir.direct_calls
            diag.Ace_lang.Compile.after.Ace_lang.Ir.removed_calls;
          if dump_ir then print_string (Ace_lang.Ir.to_string ir);
          if not no_run then begin
            let result = Ace_lang.Interp.run_spmd rt ir in
            Printf.printf "ran on %d simulated processors: %.6f s, main() = %.9g\n"
              nprocs
              (Ace_runtime.Runtime.time_seconds rt)
              result
          end;
          0
        with
        | Failure msg ->
            Printf.eprintf "acec: %s\n" msg;
            1
        | Ace_lang.Interp.Runtime_error msg ->
            Printf.eprintf "acec: runtime error: %s\n" msg;
            1)

let cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.ace")
  in
  let level =
    Arg.(
      value & opt int 3
      & info [ "O" ] ~docv:"N" ~doc:"Optimization level 0-3 (base, +LI, +MC, +DC).")
  in
  let procs = Arg.(value & opt int 8 & info [ "procs"; "p" ]) in
  let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the annotated IR.") in
  let dump_config =
    Arg.(value & flag & info [ "dump-config" ] ~doc:"Print the protocol registry (Fig. 1).")
  in
  let no_run = Arg.(value & flag & info [ "no-run" ] ~doc:"Compile only.") in
  Cmd.v
    (Cmd.info "acec" ~doc:"compile and run MiniAce programs on the simulated machine")
    Term.(const run $ file $ level $ procs $ dump_ir $ dump_config $ no_run)

let () = exit (Cmd.eval' cmd)
