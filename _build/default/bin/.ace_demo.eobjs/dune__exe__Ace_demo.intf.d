bin/ace_demo.mli:
