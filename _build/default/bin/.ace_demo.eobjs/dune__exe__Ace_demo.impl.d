bin/ace_demo.ml: Ace_apps Ace_harness Arg Cmd Cmdliner Printf Term
