bin/acec.mli:
