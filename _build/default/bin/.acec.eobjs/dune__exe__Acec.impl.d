bin/acec.ml: Ace_lang Ace_protocols Ace_runtime Arg Cmd Cmdliner Printf Term
