(** A CRL-like region DSM (Johnson, Kaashoek, Wallach, SOSP '95): the same
    region API as Ace but one fixed, compiled-in protocol — home-based
    sequentially consistent invalidation — and CRL's cost profile (a hash
    lookup on every [map], no dispatch indirection). The baseline of the
    paper's Figure 7a. *)

type t
(** One simulated machine plus CRL runtime. *)

(** [policy] fixes the event queue's same-timestamp tie-break (default
    FIFO); see {!Ace_engine.Event_queue.policy}. [engine] selects the
    simulation engine (default sequential); see
    {!Ace_engine.Machine.engine}. *)
val create :
  ?cost:Ace_net.Cost_model.t ->
  ?policy:Ace_engine.Event_queue.policy ->
  ?engine:Ace_engine.Machine.engine ->
  nprocs:int -> unit -> t

type ctx
(** Per-processor context, handed to the SPMD program by {!run}. *)

(** Run an SPMD program on every simulated processor. *)
val run : t -> (ctx -> unit) -> unit

val machine : t -> Ace_engine.Machine.t

(** The raw Active Messages layer (attach a fault model here with
    [Am.set_faults]) and the reliable transport the runtime routes
    through. *)
val am : t -> Ace_net.Am.t

val net : t -> Ace_net.Reliable.t
val store : t -> Ace_region.Store.t

(** Total simulated seconds at the modelled clock rate. *)
val time_seconds : t -> float

type h = Ace_region.Store.meta
(** A mapped region handle. *)

val me : ctx -> int
val nprocs : ctx -> int
val rid : h -> int

(** rgn_create: regions are homed at their creator; [space] is ignored
    (CRL has no spaces). *)
val alloc : ctx -> space:int -> len:int -> h

(** rgn_map: a region-table hash lookup on every call. *)
val map : ctx -> int -> h

val unmap : ctx -> h -> unit
val data : ctx -> h -> float array

(** rgn_start_read .. rgn_end_write: the fixed SC invalidation protocol,
    with CRL's access-section atomicity. *)
val start_read : ctx -> h -> unit

val end_read : ctx -> h -> unit
val start_write : ctx -> h -> unit
val end_write : ctx -> h -> unit
val lock : ctx -> h -> unit
val unlock : ctx -> h -> unit
val barrier : ctx -> space:int -> unit

(** No-op: a single-protocol system safely ignores protocol hints. *)
val change_protocol : ctx -> space:int -> string -> unit

(** No-op ([None]): CRL has no protocols to adapt between. *)
val adapt : ctx -> space:int -> string option

val work : ctx -> float -> unit

(** Deterministic region naming: the rid of the [seq]-th region [owner]
    allocated with namespace [space] (a pure naming namespace on CRL).
    Remote queries cost one name-service round trip to the owner. *)
val global_id : ctx -> space:int -> owner:int -> seq:int -> int

val bcast : ctx -> root:int -> (unit -> int array) -> int array
val allgather : ctx -> int array -> int array array

(** The backend-neutral DSM facade (paper §5.1). *)
module Api : Ace_region.Dsm_intf.S with type ctx = ctx and type h = h
