(* A CRL-like region DSM (Johnson, Kaashoek, Wallach, SOSP '95): the same
   region API as Ace but with one fixed, compiled-in protocol — home-based
   sequentially consistent invalidation — and CRL's cost profile (a hash
   lookup on every rgn_map, no dispatch indirection). This is the baseline
   of the paper's Figure 7a. *)

module Machine = Ace_engine.Machine
module Stats = Ace_engine.Stats
module Trace = Ace_engine.Trace
module Store = Ace_region.Store
module Blocks = Ace_region.Blocks
module Cost_model = Ace_net.Cost_model

let fam_calls_node = Stats.fam "crl.calls.by_node"

type t = {
  machine : Machine.t;
  am : Ace_net.Am.t;
  net : Ace_net.Reliable.t;
  cost : Cost_model.t;
  store : Store.t;
  base_barrier : Machine.Barrier.b;
  coll : Ace_region.Collective.t;
  (* deterministic region naming, as in the Ace runtime: the [space]
     argument is a pure naming namespace here (CRL regions have no
     spaces), so the same SPMD sources resolve the same names on both
     backends *)
  names : (int * int * int, int) Hashtbl.t;
  alloc_seq : (int * int, int ref) Hashtbl.t;
}

let create ?(cost = Cost_model.cm5_crl) ?policy ?engine ~nprocs () =
  let machine = Machine.create ?policy ?engine ~nprocs () in
  Machine.set_lookahead machine
    (Cost_model.transit cost ~bytes:0 +. cost.Cost_model.am_recv_overhead);
  let am = Ace_net.Am.create machine cost in
  {
    machine;
    am;
    net = Ace_net.Reliable.create am;
    cost;
    store = Ace_region.Store.create ~stats:(Machine.stats machine) ~nprocs ();
    base_barrier =
      Machine.Barrier.create machine ~cost:(fun p -> Cost_model.barrier_cost cost p);
    coll = Ace_region.Collective.create ~nprocs;
    names = Hashtbl.create 64;
    alloc_seq = Hashtbl.create 16;
  }

type ctx = {
  sys : t;
  proc : Machine.proc;
  bctx : Blocks.ctx;
  mutable coll_ctr : int;
}

let make_ctx sys proc =
  { sys; proc; bctx = Blocks.make_ctx sys.net sys.store proc; coll_ctr = 0 }

let run sys program = Machine.run sys.machine (fun proc -> program (make_ctx sys proc))

let machine sys = sys.machine
let am sys = sys.am
let net sys = sys.net
let store sys = sys.store

let time_seconds sys =
  Machine.seconds sys.machine ~cycles_per_sec:sys.cost.Cost_model.cycles_per_sec

type h = Store.meta

let me ctx = ctx.proc.Machine.id
let nprocs ctx = Machine.nprocs ctx.sys.machine
let rid (h : h) = h.Store.rid
let charge ctx c = Machine.advance ctx.proc c

(* rgn_create: CRL regions are homed at their creator; [space] is ignored
   (CRL has no spaces). *)
let alloc ctx ~space ~len =
  (* Region ids are global sequence numbers; allocation must stay in the
     sequential setup phase under the parallel engine (cf. Ops.alloc). *)
  Machine.assert_seq_context ctx.sys.machine
    "rgn_create after the parallel engine split";
  let meta = Store.alloc ctx.sys.store ~home:(me ctx) ~len ~space:(-1) in
  let sys = ctx.sys in
  let seq =
    match Hashtbl.find_opt sys.alloc_seq (space, me ctx) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add sys.alloc_seq (space, me ctx) r;
        r
  in
  Hashtbl.replace sys.names (space, me ctx, !seq) meta.Store.rid;
  incr seq;
  charge ctx ctx.sys.cost.Cost_model.map_miss;
  meta

(* rgn_map: a region-table hash lookup on every call. *)
let map ctx r =
  let meta = Store.get ctx.sys.store r in
  let existed = Store.map_note meta ~node:(me ctx) in
  let c = ctx.sys.cost in
  charge ctx (if existed then c.Cost_model.map_hit else c.Cost_model.map_miss);
  meta

let unmap ctx (_ : h) = charge ctx ctx.sys.cost.Cost_model.unmap

let data ctx (h : h) =
  match Store.copy_of h ~node:(me ctx) with
  | Some c -> c.Store.cdata
  | None ->
      (* Mapped but never accessed: materialize the (zeroed, Invalid) cache
         entry mapping used to create eagerly. Host-side only — no cost. *)
      if Store.is_mapped h ~node:(me ctx) then
        (Store.ensure_copy_c h ~node:(me ctx)).Store.cdata
      else invalid_arg "Crl.data: region not mapped on this node"

(* Wrap a coherence call with the per-node call counter and — when a tracer
   is attached — a span on the caller's row (CRL regions have no space, so
   spans carry only the region id; recording never moves the clock). *)
let coh_call ctx name (h : h) f =
  Stats.incr_dim (Machine.stats ctx.sys.machine) fam_calls_node (me ctx);
  match Machine.trace ctx.sys.machine with
  | None -> f ()
  | Some tr ->
      let p = ctx.proc in
      let t0 = p.Machine.clock in
      f ();
      Trace.span tr ~name ~cat:"call" ~tid:p.Machine.id ~ts:t0
        ~dur:(p.Machine.clock -. t0)
        ~args:[ ("rid", h.Store.rid) ] ()

let start_read ctx h =
  coh_call ctx "start_read" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.start_hit;
      Blocks.fetch_shared ctx.bctx h);
  Blocks.begin_access ctx.bctx h ~write:false

let end_read ctx h =
  coh_call ctx "end_read" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.end_op);
  Blocks.end_access ctx.bctx h ~write:false

let start_write ctx h =
  coh_call ctx "start_write" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.start_hit;
      Blocks.fetch_exclusive ctx.bctx h);
  Blocks.begin_access ctx.bctx h ~write:true

let end_write ctx h =
  coh_call ctx "end_write" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.end_op);
  Blocks.end_access ctx.bctx h ~write:true

let lock ctx h =
  coh_call ctx "lock" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.lock_base;
      Blocks.home_lock ctx.bctx h);
  match Machine.trace ctx.sys.machine with
  | None -> ()
  | Some tr ->
      Trace.lock_acquired tr ~tid:(me ctx) ~rid:h.Store.rid
        ~ts:ctx.proc.Machine.clock

let unlock ctx h =
  (match Machine.trace ctx.sys.machine with
  | None -> ()
  | Some tr ->
      Trace.lock_released tr ~tid:(me ctx) ~rid:h.Store.rid
        ~ts:ctx.proc.Machine.clock);
  coh_call ctx "unlock" h (fun () ->
      charge ctx ctx.sys.cost.Cost_model.lock_base;
      Blocks.home_unlock ctx.bctx h)

let barrier ctx ~space:_ = Machine.Barrier.wait ctx.sys.base_barrier ctx.proc

(* CRL has one fixed protocol; protocol changes are performance hints that a
   single-protocol system safely ignores. *)
let change_protocol _ctx ~space:_ _name = ()

(* CRL has no protocols to adapt between either. *)
let adapt _ctx ~space:_ = None

(* Deterministic region naming lookup; remote queries are one name-service
   round trip to the owner (same convention as Ace's Ops.global_id). *)
let global_id ctx ~space ~owner ~seq =
  let sys = ctx.sys in
  let lookup () =
    match Hashtbl.find_opt sys.names (space, owner, seq) with
    | Some rid -> rid
    | None ->
        invalid_arg
          (Printf.sprintf
             "Crl.global_id (%d, %d, %d): not allocated (missing barrier?)"
             space owner seq)
  in
  if owner = me ctx then begin
    charge ctx sys.cost.Cost_model.map_hit;
    lookup ()
  end
  else
    Ace_net.Reliable.rpc ctx.bctx.Blocks.net ctx.proc ~dst:owner
      ~bytes:Blocks.ctl_bytes (fun reply ~time ->
        let rid = lookup () in
        Ace_net.Reliable.send ctx.bctx.Blocks.net ~now:time ~src:owner
          ~dst:(me ctx) ~bytes:Blocks.ctl_bytes (fun ~time ->
            Ace_engine.Ivar.fill reply ~time rid))

let work ctx cycles = charge ctx cycles

let bcast ctx ~root f =
  let ctr = ref ctx.coll_ctr in
  let out = Ace_region.Collective.bcast ctx.sys.coll ctx.bctx ~ctr ~root f in
  ctx.coll_ctr <- !ctr;
  out

let allgather ctx mine =
  let ctr = ref ctx.coll_ctr in
  let out = Ace_region.Collective.allgather ctx.sys.coll ctx.bctx ~ctr mine in
  ctx.coll_ctr <- !ctr;
  out

module Api : Ace_region.Dsm_intf.S with type ctx = ctx and type h = Store.meta =
struct
  type nonrec ctx = ctx
  type nonrec h = h

  let me = me
  let nprocs = nprocs
  let alloc = alloc
  let rid = rid
  let map = map
  let unmap = unmap
  let data = data
  let start_read = start_read
  let end_read = end_read
  let start_write = start_write
  let end_write = end_write
  let lock = lock
  let unlock = unlock
  let barrier = barrier
  let change_protocol = change_protocol
  let adapt = adapt
  let work = work
  let global_id = global_id
  let bcast = bcast
  let allgather = allgather
end
