(* Dynamic update protocol (paper §2.1, §3.3): writes to a region are
   propagated to all sharers immediately after the write — the handler runs
   *after* the store, which is exactly the case access-fault control cannot
   express and full access control can.

   A writer does not acquire exclusive access (paper §6: "a writer need not
   acquire exclusive access before proceeding with a write, as long as the
   result of the write is propagated to all sharers"); the protocol assumes
   each region has a single writer at a time (producer-consumer sharing).

   In bulk-transfer mode the propagation is write-combined: end_write only
   records the dirty region, and the next synchronization point (barrier,
   unlock, detach) publishes everything written since the last one as a
   single batched push — one vectored message per consumer instead of one
   message per (write, consumer). Consumers synchronize before reading
   (the single-writer assumption already demands it), so they observe the
   same values at the same synchronization points as the immediate-push
   mode. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine

type dyn_state = { mutable written : int list (* rids dirty since last sync *) }
type Protocol.pstate += Dyn of dyn_state

let state (ctx : Protocol.ctx) (sp : Protocol.space) =
  let node = ctx.Protocol.proc.Machine.id in
  match sp.Protocol.pstate.(node) with
  | Dyn s -> s
  | _ ->
      let s = { written = [] } in
      sp.Protocol.pstate.(node) <- Dyn s;
      s

let space_of (ctx : Protocol.ctx) meta =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

let batching (ctx : Protocol.ctx) =
  Ace_net.Reliable.batching ctx.Protocol.bctx.Blocks.net

let ensure_valid (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let end_write (ctx : Protocol.ctx) meta =
  if batching ctx then begin
    let s = state ctx (space_of ctx meta) in
    if not (List.mem meta.Store.rid s.written) then
      s.written <- meta.Store.rid :: s.written
  end
  else
    Machine.await ctx.Protocol.proc (Blocks.push_update ctx.Protocol.bctx meta)

(* Publish every region written since the last synchronization point as one
   batched push to its current sharers. *)
let publish (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = state ctx sp in
  match s.written with
  | [] -> ()
  | rids ->
      s.written <- [];
      let store = ctx.Protocol.rt.Protocol.store in
      let me = ctx.Protocol.proc.Machine.id in
      let items =
        List.rev_map
          (fun rid ->
            let meta = Store.get store rid in
            let consumers =
              List.filter
                (fun n -> n <> meta.Store.home)
                (Store.sharers meta ~except:me)
            in
            (meta, consumers))
          rids
      in
      Machine.await ctx.Protocol.proc
        (Blocks.push_to_batch ctx.Protocol.bctx items)

let barrier (ctx : Protocol.ctx) (sp : Protocol.space) =
  if batching ctx then publish ctx sp else Protocol.null_hook ctx sp

let lock = Ace_runtime.Proto_sc.lock

let unlock (ctx : Protocol.ctx) meta =
  if batching ctx then publish ctx (space_of ctx meta);
  Ace_runtime.Proto_sc.unlock ctx meta

let detach (ctx : Protocol.ctx) (sp : Protocol.space) =
  if batching ctx then publish ctx sp;
  Ace_runtime.Proto_sc.detach ctx sp

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "DYN_UPDATE";
    optimizable = true;
    has_start_read = true;
    has_start_write = true;
    has_end_write = true;
    start_read = ensure_valid;
    start_write = ensure_valid;
    end_write;
    barrier;
    lock;
    unlock;
    detach;
  }
