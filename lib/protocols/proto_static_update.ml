(* Static update protocol (paper §3.3; essentially Falsafi et al.'s EM3D
   protocol): sharer lists are learned during the first iteration — the
   ordinary read misses register consumers at the directory — and from the
   first barrier onward each writer pushes the regions it wrote directly to
   their learned consumers at every barrier.

   This is the protocol whose barrier handler the Ace_Barrier(space)
   dispatch invokes automatically (paper: "Since the barriers specify the
   space they operate on, the underlying system invokes the static update
   barrier handler routine automatically"). *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar

type static_state = {
  mutable learning : int; (* barriers left in the learning window *)
  mutable written : int list; (* rids written since the last barrier *)
  learned : (int, int list) Hashtbl.t; (* rid -> consumer nodes *)
}

(* The learning window spans the first two barriers *at which this node has
   writes to publish*: consumers of a region written before write-barrier N
   register their read misses in the phase that follows it, so their
   identities are only complete at write-barrier N+1 (EM3D: writes to E
   happen before Barrier(eval), the reads of E in the H phase after it).
   Barriers without pending writes (setup synchronization) do not consume
   the window. *)
let learning_barriers = 2

type Protocol.pstate += Static of static_state

let state (ctx : Protocol.ctx) (sp : Protocol.space) =
  let node = ctx.Protocol.proc.Machine.id in
  match sp.Protocol.pstate.(node) with
  | Static s -> s
  | _ ->
      let s =
        { learning = learning_barriers; written = []; learned = Hashtbl.create 64 }
      in
      sp.Protocol.pstate.(node) <- Static s;
      s

let space_of (ctx : Protocol.ctx) meta =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

let start_read (ctx : Protocol.ctx) meta =
  (* During learning this is the miss that records us as a consumer; in
     steady state pushed data makes it a hit. *)
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let start_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta;
  let s = state ctx (space_of ctx meta) in
  if not (List.mem meta.Store.rid s.written) then
    s.written <- meta.Store.rid :: s.written

(* At a barrier: snapshot consumer lists at the end of the learning
   iteration (one bookkeeping message per written region models shipping
   the directory's sharer list to the writer), then push every region
   written since the previous barrier to its consumers, wait for the data
   to land, and only then let the caller enter the global barrier. *)
let barrier (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = state ctx sp in
  let bctx = ctx.Protocol.bctx in
  let store = ctx.Protocol.rt.Protocol.store in
  let me = ctx.Protocol.proc.Machine.id in
  if s.learning > 0 && s.written <> [] then begin
    (* (Re)snapshot consumer lists while the learning window is open; one
       bookkeeping message per region models shipping the directory's
       sharer list to the writer. *)
    List.iter
      (fun rid ->
        let meta = Store.get store rid in
        let consumers = Store.sharers meta ~except:me in
        let consumers = List.filter (fun n -> n <> meta.Store.home) consumers in
        Hashtbl.replace s.learned rid consumers;
        Machine.advance ctx.Protocol.proc
          ctx.Protocol.rt.Protocol.cost.Ace_net.Cost_model.am_send_overhead)
      s.written;
    s.learning <- s.learning - 1
  end;
  let items =
    List.map
      (fun rid ->
        let meta = Store.get store rid in
        let consumers =
          match Hashtbl.find_opt s.learned rid with
          | Some c -> c
          | None ->
              (* Region first written after learning ended: learn it now. *)
              let c =
                List.filter
                  (fun n -> n <> meta.Store.home)
                  (Store.sharers meta ~except:me)
              in
              Hashtbl.replace s.learned rid c;
              c
        in
        (meta, consumers))
      s.written
  in
  s.written <- [];
  if Ace_net.Reliable.batching bctx.Blocks.net then
    (* Bulk-transfer mode: the whole end-of-phase burst is write-combined —
       one vectored message per consumer instead of one per (region,
       consumer) pair. *)
    Machine.await ctx.Protocol.proc (Blocks.push_to_batch bctx items)
  else begin
    let pending =
      List.map (fun (meta, consumers) -> Blocks.push_to bctx meta ~dsts:consumers) items
    in
    List.iter (fun iv -> Machine.await ctx.Protocol.proc iv) pending
  end

let lock = Ace_runtime.Proto_sc.lock
let unlock = Ace_runtime.Proto_sc.unlock

let detach (ctx : Protocol.ctx) (sp : Protocol.space) =
  (* Push anything still unpublished, then flush to base state. *)
  barrier ctx sp;
  Ace_runtime.Proto_sc.detach ctx sp

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "STATIC_UPDATE";
    optimizable = true;
    has_start_read = true;
    has_start_write = true;
    start_read;
    start_write;
    barrier;
    lock;
    unlock;
    detach;
  }
