(* Pipelined-writes protocol (the Water inter-molecular protocol of paper
   §5.2: "we improve performance by pipelining writes to a molecule during
   the inter-molecular calculation phase").

   Accumulations happen under the region lock, as the application writes
   them. The protocol specializes every step of that pattern:

   - lock: takes the home lock and drops the (possibly stale) local copy,
     so the read inside the critical section fetches the freshly
     accumulated master;
   - start_write: ensures a valid copy (a hit right after that read);
   - end_write: ships the new value home *asynchronously* — the processor
     moves on to the next molecule while the update is in flight;
   - unlock: rides the in-flight update — the home releases the lock the
     moment the data lands (a combined update+release message), so the
     caller never blocks and the next lock holder always sees the
     accumulated value;
   - barrier: drains outstanding updates and drops cached copies so the
     next phase reads fresh data.

   Under the default SC protocol the same source pays a blocking exclusive
   fetch (with an invalidation storm of every position reader) per
   accumulation; here it pays one lock round trip and one data fetch, with
   the write and the release pipelined. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats

let sid_pipelined = Stats.intern "proto.pipeline.writes"
let sid_combined = Stats.intern "proto.pipeline.combined_release"

let stats (ctx : Protocol.ctx) = Machine.stats ctx.Protocol.rt.Protocol.machine

type pipe_state = {
  mutable outstanding : unit Ivar.t list;
  last_push : (int, unit Ivar.t) Hashtbl.t; (* rid -> in-flight update *)
}

type Protocol.pstate += Pipe of pipe_state

let state (ctx : Protocol.ctx) (sp : Protocol.space) =
  let node = ctx.Protocol.proc.Machine.id in
  match sp.Protocol.pstate.(node) with
  | Pipe s -> s
  | _ ->
      let s = { outstanding = []; last_push = Hashtbl.create 32 } in
      sp.Protocol.pstate.(node) <- Pipe s;
      s

let space_of (ctx : Protocol.ctx) meta =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

let start_read (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let start_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let end_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.end_op;
  let s = state ctx (space_of ctx meta) in
  let bctx = ctx.Protocol.bctx in
  (* Bulk-transfer mode write-combines the pipelined update: it parks in
     the queue and rides the next lock request (or a blocking leg / the
     barrier flush) as part of one vectored message, instead of paying its
     own message here. The ivar contract is identical. *)
  let iv =
    if Ace_net.Reliable.batching bctx.Blocks.net then
      Blocks.queue_write_home bctx meta
    else Blocks.write_home_async bctx meta
  in
  Stats.incr_id (stats ctx) sid_pipelined;
  s.outstanding <- iv :: s.outstanding;
  Hashtbl.replace s.last_push meta.Store.rid iv

(* The grant carries the freshly accumulated master, so the critical
   section's read and write hit locally: lock + value in one round trip. *)
let lock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  Blocks.lock_fetch ctx.Protocol.bctx meta

let unlock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  let s = state ctx (space_of ctx meta) in
  match Hashtbl.find_opt s.last_push meta.Store.rid with
  | Some iv when not (Ivar.is_filled iv) ->
      (* combined update+release: the home unlocks when the data lands *)
      Stats.incr_id (stats ctx) sid_combined;
      Blocks.unlock_after ctx.Protocol.bctx meta iv
  | Some _ | None -> Blocks.home_unlock ctx.Protocol.bctx meta

let barrier (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = state ctx sp in
  Blocks.flush_writes ctx.Protocol.bctx;
  List.iter (fun iv -> Machine.await ctx.Protocol.proc iv) s.outstanding;
  s.outstanding <- [];
  Hashtbl.reset s.last_push;
  (* Cached reader copies may be stale after remote accumulation: drop them
     so post-barrier readers refetch the final values. *)
  let node = ctx.Protocol.proc.Machine.id in
  List.iter
    (fun rid ->
      let meta = Store.get ctx.Protocol.rt.Protocol.store rid in
      if node <> meta.Store.home then
        match Store.copy_of meta ~node with
        | Some c -> c.Store.cstate <- Store.Invalid
        | None -> ())
    sp.Protocol.rids

(* Bulk-transfer mode: adopting the protocol prefetches the whole space in
   one batched fetch (one vectored request per home, one bulk grant back) —
   the first intermolecular sweep then starts from warm caches instead of
   paying a read miss per molecule. Harmless for correctness: any value
   accumulated later arrives via the lock grant ([lock_fetch]). *)
let attach (ctx : Protocol.ctx) (sp : Protocol.space) =
  Protocol.null_hook ctx sp;
  let bctx = ctx.Protocol.bctx in
  if Ace_net.Reliable.batching bctx.Blocks.net then
    Blocks.fetch_shared_batch bctx
      (List.map (Store.get ctx.Protocol.rt.Protocol.store) sp.Protocol.rids)

let detach (ctx : Protocol.ctx) (sp : Protocol.space) =
  barrier ctx sp;
  Ace_runtime.Proto_sc.detach ctx sp

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "PIPELINE";
    optimizable = true;
    has_start_read = true;
    has_start_write = true;
    has_end_write = true;
    start_read;
    start_write;
    end_write;
    lock;
    unlock;
    barrier;
    attach;
    detach;
  }
