(* Counter protocol (the TSP protocol of paper §5.2: "better management of
   accesses to a counter that is used to assign jobs to processors").

   The region never migrates and nobody caches it: a write becomes a
   home-serialized read-modify-write (lock at home, fetch the fresh value,
   store it back, release), and a read is a single uncached fetch. Under
   contention this avoids the invalidation storms and three-hop recalls
   that ping-pong an SC counter between writers. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Stats = Ace_engine.Stats
module Machine = Ace_engine.Machine

let sid_fetch_add = Stats.intern "proto.counter.fetch_add"
let sid_home_rmw = Stats.intern "proto.counter.home_rmw"

let stats (ctx : Protocol.ctx) = Machine.stats ctx.Protocol.rt.Protocol.machine

let start_read (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.read_home ctx.Protocol.bctx meta

(* Ship the operation: the home executes the increment atomically in its
   message handler and replies with the old value (one round trip, no lock
   held across it). The protocol asserts the application's read-modify-write
   on this space is exactly "+1" — the kind of application-specific
   assertion that shrinks a custom protocol's state space (paper §6). A
   remote caller's local store of v+1 is then redundant and discarded. The
   home node's copy aliases the master, so there the protocol brackets the
   application's in-place RMW with the (local, message-free) region lock,
   which remote fetch-and-adds also serialize with. *)
let start_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  if ctx.Protocol.proc.Ace_engine.Machine.id = meta.Ace_region.Store.home then begin
    Stats.incr_id (stats ctx) sid_home_rmw;
    Blocks.home_rmw_begin ctx.Protocol.bctx meta
  end
  else begin
    Stats.incr_id (stats ctx) sid_fetch_add;
    Blocks.fetch_add ctx.Protocol.bctx meta ~delta:1.0
  end

let end_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.end_op;
  if ctx.Protocol.proc.Ace_engine.Machine.id = meta.Ace_region.Store.home then
    Blocks.home_rmw_end ctx.Protocol.bctx meta

let lock = Ace_runtime.Proto_sc.lock
let unlock = Ace_runtime.Proto_sc.unlock

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "COUNTER";
    optimizable = false; (* RMW atomicity must not be reordered *)
    has_start_read = true;
    has_start_write = true;
    has_end_write = true;
    start_read;
    start_write;
    end_write;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
