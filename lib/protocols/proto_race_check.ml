(* Data-race checking protocol (paper §2.1 cites Larus et al.'s LCM race
   checker as a protocol that "can be executed either before or after
   accesses"). It piggybacks coherence from the default SC protocol and
   additionally logs every access; at each barrier it reports regions that
   were written by one node and independently accessed by another within
   the epoch without both holding the region lock.

   The per-epoch log lives at the region's home conceptually; in the
   simulator it is a table shared by all per-node pstate slots. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine

type access = {
  node : int;
  writer : bool;
  locked : bool;
  seq : int; (* arrival order within the epoch (global across regions) *)
}

(* [first]/[second] are the epoch's first racy pair on the region: [second]
   is the earliest access that completes a conflict with an earlier one,
   [first] the earliest access it conflicts with. Both are fixed by access
   arrival order, which the simulator makes deterministic — not by log
   iteration order. *)
type report = {
  rid : int;
  epoch : int;
  nodes : int list;
  first : access;
  second : access;
}

type shared_log = {
  mutable epoch : int;
  accesses : (int, access list) Hashtbl.t; (* rid -> epoch accesses *)
  mutable reports : report list;
  mutable holding : (int * int, unit) Hashtbl.t; (* (node, rid) -> lock held *)
  mutable arrived : int; (* barrier arrivals this epoch *)
  mutable ctr : int; (* next access seq *)
}

type Protocol.pstate += Race of shared_log

let shared (sp : Protocol.space) =
  match sp.Protocol.pstate.(0) with
  | Race s -> s
  | _ ->
      let s =
        {
          epoch = 0;
          accesses = Hashtbl.create 64;
          reports = [];
          holding = Hashtbl.create 16;
          arrived = 0;
          ctr = 0;
        }
      in
      sp.Protocol.pstate.(0) <- Race s;
      s

let space_of (ctx : Protocol.ctx) meta =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

let record (ctx : Protocol.ctx) meta ~writer =
  let s = shared (space_of ctx meta) in
  let node = ctx.Protocol.proc.Machine.id in
  let locked = Hashtbl.mem s.holding (node, meta.Store.rid) in
  let prev =
    match Hashtbl.find_opt s.accesses meta.Store.rid with Some l -> l | None -> []
  in
  let seq = s.ctr in
  s.ctr <- s.ctr + 1;
  Hashtbl.replace s.accesses meta.Store.rid
    ({ node; writer; locked; seq } :: prev)

let start_read (ctx : Protocol.ctx) meta =
  Blocks.fetch_shared ctx.Protocol.bctx meta;
  record ctx meta ~writer:false

let start_write (ctx : Protocol.ctx) meta =
  Blocks.fetch_exclusive ctx.Protocol.bctx meta;
  record ctx meta ~writer:true

let lock (ctx : Protocol.ctx) meta =
  Ace_runtime.Proto_sc.lock ctx meta;
  let s = shared (space_of ctx meta) in
  Hashtbl.replace s.holding (ctx.Protocol.proc.Machine.id, meta.Store.rid) ()

let unlock (ctx : Protocol.ctx) meta =
  let s = shared (space_of ctx meta) in
  Hashtbl.remove s.holding (ctx.Protocol.proc.Machine.id, meta.Store.rid);
  Ace_runtime.Proto_sc.unlock ctx meta

(* An epoch has a race on a region iff some unlocked access conflicts with
   an access from a different node (write/any or any/write). The reported
   pair is the first one in access arrival order: scanning forward, the
   earliest access that completes a conflict, paired with the earliest
   earlier access it conflicts with. *)
let conflict a b =
  a.node <> b.node && (a.writer || b.writer) && not (a.locked && b.locked)

let first_racy_pair accesses =
  (* the log is consed newest-first; rescan in arrival order *)
  let ordered = List.rev accesses in
  let rec scan seen = function
    | [] -> None
    | b :: rest -> (
        match List.find_opt (fun a -> conflict a b) (List.rev seen) with
        | Some a -> Some (a, b)
        | None -> scan (b :: seen) rest)
  in
  scan [] ordered

(* The epoch log is swept by the last processor to reach the barrier, so
   every access of the epoch has been recorded. Reports are ordered by the
   moment each race materialized (the completing access's seq), never by
   hash-table iteration order. *)
let barrier (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = shared sp in
  s.arrived <- s.arrived + 1;
  if s.arrived = Machine.nprocs ctx.Protocol.rt.Protocol.machine then begin
    s.arrived <- 0;
    let epoch_reports =
      Hashtbl.fold
        (fun rid accesses acc ->
          match first_racy_pair accesses with
          | None -> acc
          | Some (first, second) ->
              {
                rid;
                epoch = s.epoch;
                nodes =
                  List.sort_uniq compare (List.map (fun a -> a.node) accesses);
                first;
                second;
              }
              :: acc)
        s.accesses []
      |> List.sort (fun a b -> compare (a.second.seq, a.rid) (b.second.seq, b.rid))
    in
    s.reports <- List.rev_append epoch_reports s.reports;
    Hashtbl.reset s.accesses;
    s.ctr <- 0;
    s.epoch <- s.epoch + 1
  end

(* All reports so far, in chronological order (epoch, then the moment the
   race materialized). *)
let reports (sp : Protocol.space) = List.rev (shared sp).reports

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "RACE_CHECK";
    optimizable = false;
    has_start_read = true;
    has_start_write = true;
    start_read;
    start_write;
    barrier;
    lock;
    unlock;
    detach = Ace_runtime.Proto_sc.detach;
  }
