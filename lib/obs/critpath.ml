(* Critical-path analysis over a recorded causal DAG (Ace_engine.Crit).

   The DAG's nodes are in creation order, which is topological: a node's
   predecessors always have smaller ids. Each node completes at

     finish(i) = max (finish(pred i) + cost i, finish(pred2 i))

   so walking backward from the latest node, always into the predecessor
   that determined the node's time, yields the run's critical path; the
   per-step gaps (node time minus chosen-predecessor time) partition the
   whole simulated duration into blame buckets — protocol-op classes,
   spaces, links, nodes. What-if analysis replays the recurrence forward
   with per-class cost scaling (causal-profiling style): the recorded
   dependence structure is held fixed while a chosen latency class
   shrinks or grows, and joins (barrier arrivals, ack fan-ins) re-decide
   which input is last.

   Coalesced compute nodes ("seg" kind) carry an exact per-(kind, space)
   cost split in [bd]. Distributing a seg node's path gap over its split
   is exact, not an approximation: a coalesced run has no external edges
   into its interior, so the critical path traverses it entirely or not
   at all. *)

type dag = {
  nprocs : int;
  kinds : string array; (* kind id -> name *)
  pred : int array;
  pred2 : int array;
  kind : int array;
  a : int array; (* proc / msg src *)
  b : int array; (* space / msg dst *)
  time : float array;
  cost : float array;
  heads : int array; (* per-proc final chain node *)
  bd : (int * int * float) array array;
      (* per-node (kind, space, cost) split; empty for plain nodes *)
  end_time : float;
}

let n_nodes d = Array.length d.kind
let kind_name d k = if k >= 0 && k < Array.length d.kinds then d.kinds.(k) else "?"

let kind_id d name =
  let r = ref (-1) in
  Array.iteri (fun i k -> if String.equal k name then r := i) d.kinds;
  !r

(* ---- construction ---- *)

module Crit = Ace_engine.Crit

(* Gather (node, kind, space, cost) rows into a per-node array. *)
let bd_of_rows n rows =
  let counts = Array.make n 0 in
  List.iter
    (fun (node, _, _, _) ->
      if node < 0 || node >= n then
        failwith "critpath: breakdown row for unknown node";
      counts.(node) <- counts.(node) + 1)
    rows;
  let bd = Array.map (fun c -> Array.make c (0, 0, 0.)) counts in
  let fill = Array.make n 0 in
  List.iter
    (fun (node, k, sp, cost) ->
      bd.(node).(fill.(node)) <- (k, sp, cost);
      fill.(node) <- fill.(node) + 1)
    rows;
  bd

let of_crit c =
  let pred, pred2, kind, a, b, time, cost = Crit.dump c in
  let n = Array.length kind in
  (* breakdown rows straight from the recorder's pool: count, then fill *)
  let m = Crit.bd_count c in
  let counts = Array.make n 0 in
  for j = 0 to m - 1 do
    let nd = Crit.bd_node_of c j in
    counts.(nd) <- counts.(nd) + 1
  done;
  let bd = Array.map (fun cnt -> Array.make cnt (0, 0, 0.)) counts in
  let fill = Array.make n 0 in
  for j = 0 to m - 1 do
    let nd = Crit.bd_node_of c j in
    bd.(nd).(fill.(nd)) <-
      (Crit.bd_kind_of c j, Crit.bd_space_of c j, Crit.bd_cost_of c j);
    fill.(nd) <- fill.(nd) + 1
  done;
  {
    nprocs = Crit.nprocs c;
    kinds = Crit.kinds ();
    pred;
    pred2;
    kind;
    a;
    b;
    time;
    cost;
    heads = Crit.heads_arr c;
    bd;
    end_time = Crit.end_time c;
  }

let jfail what = failwith ("critpath: bad or missing " ^ what)
let jmem what j = match Json.member what j with Some v -> v | None -> jfail what
let jint what v = match Json.to_int v with Some i -> i | None -> jfail what

let jfloat what v =
  match Json.to_float v with Some f -> f | None -> jfail what

let jstr what v = match Json.to_string v with Some s -> s | None -> jfail what
let jlist what v = match Json.to_list v with Some l -> l | None -> jfail what

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str "ace-critpath-v1") -> ()
  | Some _ | None ->
      failwith "critpath: not an ace-critpath-v1 file (bad or missing schema)");
  let nprocs = jint "nprocs" (jmem "nprocs" j) in
  let kinds =
    Array.of_list (List.map (jstr "kinds") (jlist "kinds" (jmem "kinds" j)))
  in
  let heads =
    Array.of_list (List.map (jint "heads") (jlist "heads" (jmem "heads" j)))
  in
  let rows = Array.of_list (jlist "nodes" (jmem "nodes" j)) in
  let n = Array.length rows in
  let row i =
    match rows.(i) with
    | Json.List l when List.length l = 7 -> Array.of_list l
    | _ -> failwith (Printf.sprintf "critpath: node %d is not a 7-element row" i)
  in
  let rowsa = Array.init n row in
  let geti i k = jint "node field" rowsa.(i).(k)
  and getf i k = jfloat "node field" rowsa.(i).(k) in
  let bd_rows =
    match Json.member "bd" j with
    | None -> []
    | Some v ->
        List.map
          (fun r ->
            match r with
            | Json.List [ nd; k; sp; cost ] ->
                ( jint "bd node" nd,
                  jint "bd kind" k,
                  jint "bd space" sp,
                  jfloat "bd cost" cost )
            | _ -> failwith "critpath: bd row is not a 4-element row")
          (jlist "bd" v)
  in
  let d =
    {
      nprocs;
      kinds;
      pred = Array.init n (fun i -> geti i 0);
      pred2 = Array.init n (fun i -> geti i 1);
      kind = Array.init n (fun i -> geti i 2);
      a = Array.init n (fun i -> geti i 3);
      b = Array.init n (fun i -> geti i 4);
      time = Array.init n (fun i -> getf i 5);
      cost = Array.init n (fun i -> getf i 6);
      heads;
      bd = bd_of_rows n bd_rows;
      end_time =
        (match Json.member "end_time" j with
        | Some v -> jfloat "end_time" v
        | None -> 0.);
    }
  in
  (* Topological sanity: refusing malformed input here keeps every later
     walk a plain array recursion with no cycle checks. *)
  if nprocs <= 0 then failwith "critpath: nprocs <= 0";
  if Array.length heads <> nprocs then
    failwith "critpath: heads length does not match nprocs";
  Array.iter
    (fun h -> if h >= n then failwith "critpath: head out of range")
    heads;
  Array.iteri
    (fun i p ->
      if p >= i || d.pred2.(i) >= i then
        failwith (Printf.sprintf "critpath: node %d has a non-causal edge" i);
      if d.kind.(i) < 0 || d.kind.(i) >= Array.length kinds then
        failwith (Printf.sprintf "critpath: node %d has unknown kind" i))
    d.pred;
  d

let of_string s = of_json (Json.parse s)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if String.length (String.trim s) = 0 then
    failwith (Printf.sprintf "critpath: %s is empty" path);
  of_string s

(* ---- critical path ---- *)

(* The terminal is the latest node overall (trailing deliveries can outlive
   every fiber chain head). *)
let terminal d =
  let n = n_nodes d in
  if n = 0 then -1
  else begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      if d.time.(i) > d.time.(!best) then best := i
    done;
    !best
  end

(* From [i], step into the predecessor that determined time(i): pred
   carries cost(i), pred2 is a zero-cost constraint. *)
let step d i =
  let p = d.pred.(i) and p2 = d.pred2.(i) in
  if p < 0 then p2
  else if p2 < 0 then p
  else if d.time.(p) +. d.cost.(i) >= d.time.(p2) then p
  else p2

(* Node ids on the critical path, terminal first. *)
let critical_path d =
  let rec walk acc i = if i < 0 then acc else walk (i :: acc) (step d i) in
  match terminal d with -1 -> [] | t -> List.rev (walk [] t)

(* The path with per-step blame: [(node, gap)] where gap is the simulated
   cycles this step contributed (time(node) - time(chosen pred)). The gaps
   sum to end-of-path time minus start-of-path time = the whole run. *)
let blamed_path d =
  let path = critical_path d in
  List.map
    (fun i ->
      let p = step d i in
      let gap = if p < 0 then 0. else d.time.(i) -. d.time.(p) in
      (i, gap))
    path

let total_blame bp = List.fold_left (fun acc (_, g) -> acc +. g) 0. bp

(* ---- blame buckets ---- *)

let acc_assoc tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add tbl key (ref v)

let sorted_of_tbl tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (_, x) (_, y) -> compare y x)

(* Distribute node [i]'s path gap [g] over its cost split: [f kind space
   share] per entry. Plain nodes have one implicit entry (their own kind
   and [b]); seg nodes distribute proportionally to recorded cost — exact,
   since a coalesced run is on the path all-or-nothing. *)
let distribute d i g f =
  let bdl = d.bd.(i) in
  if Array.length bdl = 0 then f d.kind.(i) d.b.(i) g
  else begin
    let total = Array.fold_left (fun acc (_, _, c) -> acc +. c) 0. bdl in
    if total <= 0. then f d.kind.(i) d.b.(i) g
    else
      Array.iter (fun (k, sp, c) -> f k sp (g *. (c /. total))) bdl
  end

(* Cycles on the critical path per op class (kind name). *)
let blame_by_kind d bp =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, g) -> distribute d i g (fun k _ v -> acc_assoc tbl (kind_name d k) v))
    bp;
  sorted_of_tbl tbl

(* Cycles per space: compute intervals tagged with a space (protocol-op
   activities). Untagged path time (messages, barriers, app compute) is
   reported under space -1. *)
let msg_kind d = kind_id d "msg"
let wake_kind d = kind_id d "wake"
let barrier_kind d = kind_id d "barrier"

let blame_by_space d bp =
  let km = msg_kind d and kb = barrier_kind d and kw = wake_kind d in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, g) ->
      distribute d i g (fun k sp v ->
          let space = if k = km || k = kb || k = kw then -1 else sp in
          acc_assoc tbl space v))
    bp;
  sorted_of_tbl tbl

(* Cycles per link (src, dst): message nodes only. *)
let blame_by_link d bp =
  let km = msg_kind d in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, g) -> if d.kind.(i) = km then acc_assoc tbl (d.a.(i), d.b.(i)) g)
    bp;
  sorted_of_tbl tbl

(* Cycles per simulated node: compute/wake intervals belong to their proc,
   a message to its destination. *)
let blame_by_node d bp =
  let km = msg_kind d in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, g) ->
      let node = if d.kind.(i) = km then d.b.(i) else d.a.(i) in
      if node >= 0 then acc_assoc tbl node g)
    bp;
  sorted_of_tbl tbl

(* ---- top-k contiguous path segments ----

   Chronological runs of path steps sharing one blame bucket (kind plus,
   for messages, the link): "42k cycles of msg 3->17 starting at t=1.2M"
   is the triage-ready form of the path. *)

type seg = {
  seg_kind : string;
  seg_a : int; (* msg src, else proc; -1 n/a *)
  seg_b : int; (* msg dst / space; -1 n/a *)
  seg_cycles : float;
  seg_t0 : float;
  seg_t1 : float;
}

let segments d bp =
  let km = msg_kind d in
  let key i =
    let k = d.kind.(i) in
    if k = km then (k, d.a.(i), d.b.(i)) else (k, -1, d.b.(i))
  in
  let chron = List.rev bp in
  let flush acc = function
    | None -> acc
    | Some ((k, a, b), cyc, t0, t1) ->
        { seg_kind = kind_name d k; seg_a = a; seg_b = b; seg_cycles = cyc;
          seg_t0 = t0; seg_t1 = t1 }
        :: acc
  in
  let acc, open_seg =
    List.fold_left
      (fun (acc, open_seg) (i, g) ->
        let ki = key i in
        match open_seg with
        | Some (k, cyc, t0, _) when k = ki ->
            (acc, Some (k, cyc +. g, t0, d.time.(i)))
        | _ ->
            (flush acc open_seg, Some (ki, g, d.time.(i) -. g, d.time.(i))))
      ([], None) chron
  in
  List.rev (flush acc open_seg)

let top_segments d bp ~k =
  segments d bp
  |> List.sort (fun s1 s2 -> compare s2.seg_cycles s1.seg_cycles)
  |> List.filteri (fun i _ -> i < k)

(* ---- what-if replay ---- *)

type target =
  | Link of int option * int option (* src, dst; None = wildcard *)
  | Op of string (* kind name: "send_ovh", "msg", "start_read", ... *)
  | Space of int

type whatif = { target : target; factor : float }

(* Accepted specs: "link=SRC->DST:F", "link=*:F", "op=NAME:F",
   "space=N:F" — F a nonnegative float cost multiplier. *)
let parse_whatif s =
  let fail msg = Error (Printf.sprintf "bad what-if %S: %s" s msg) in
  match String.index_opt s '=' with
  | None -> fail "expected CLASS=TARGET:FACTOR"
  | Some eq -> (
      let cls = String.sub s 0 eq in
      let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
      match String.rindex_opt rest ':' with
      | None -> fail "missing :FACTOR"
      | Some col -> (
          let tgt = String.sub rest 0 col in
          let fstr = String.sub rest (col + 1) (String.length rest - col - 1) in
          match float_of_string_opt fstr with
          | None -> fail "FACTOR is not a number"
          | Some f when f < 0. || not (Float.is_finite f) ->
              fail "FACTOR must be a finite nonnegative number"
          | Some factor -> (
              match cls with
              | "op" ->
                  if tgt = "" then fail "empty op name"
                  else Ok { target = Op tgt; factor }
              | "space" -> (
                  match int_of_string_opt tgt with
                  | Some sp -> Ok { target = Space sp; factor }
                  | None -> fail "space must be an integer")
              | "link" -> (
                  if tgt = "*" then Ok { target = Link (None, None); factor }
                  else
                    (* SRC->DST with * wildcards on either side *)
                    match String.index_opt tgt '-' with
                    | Some i
                      when i + 1 < String.length tgt && tgt.[i + 1] = '>' ->
                        let sside = String.sub tgt 0 i in
                        let dside =
                          String.sub tgt (i + 2) (String.length tgt - i - 2)
                        in
                        let parse_side = function
                          | "*" -> Ok None
                          | x -> (
                              match int_of_string_opt x with
                              | Some v -> Ok (Some v)
                              | None -> Error ())
                        in
                        (match (parse_side sside, parse_side dside) with
                        | Ok s, Ok t -> Ok { target = Link (s, t); factor }
                        | _ -> fail "link endpoints must be ints or *")
                    | _ -> fail "link target must be SRC->DST or *")
              | _ -> fail "class must be link, op or space")))

let describe_whatif w =
  let t =
    match w.target with
    | Link (None, None) -> "link=*"
    | Link (s, t) ->
        let side = function None -> "*" | Some v -> string_of_int v in
        Printf.sprintf "link=%s->%s" (side s) (side t)
    | Op name -> "op=" ^ name
    | Space sp -> Printf.sprintf "space=%d" sp
  in
  Printf.sprintf "%s:%g" t w.factor

(* The cost multiplier for one (kind, a, b) cost entry under [specs]
   (factors compose): a node's own fields, or one split entry of a
   coalesced node (where a link target can never hit — splits only hold
   compute, and messages never coalesce). *)
let entry_factor d specs ~k ~ea ~eb =
  let km = msg_kind d in
  List.fold_left
    (fun acc w ->
      let hit =
        match w.target with
        | Link (s, t) ->
            k = km
            && (match s with None -> true | Some v -> ea = v)
            && (match t with None -> true | Some v -> eb = v)
        | Op name -> String.equal (kind_name d k) name
        | Space sp -> k <> km && eb = sp
      in
      if hit then acc *. w.factor else acc)
    1. specs

(* Node [i]'s replacement cost under [specs]: scale each split entry (or
   the whole node when unsplit). *)
let scaled_cost d specs i =
  let bdl = d.bd.(i) in
  if Array.length bdl = 0 then
    entry_factor d specs ~k:d.kind.(i) ~ea:d.a.(i) ~eb:d.b.(i) *. d.cost.(i)
  else
    Array.fold_left
      (fun acc (k, sp, c) -> acc +. (entry_factor d specs ~k ~ea:d.a.(i) ~eb:sp *. c))
      0. bdl

(* Replay the recurrence forward with scaled costs; returns the predicted
   end time (max over per-proc chain heads and stray terminals — i.e. over
   every node, since a node's finish dominates its successors' inputs). *)
let replay d specs =
  let n = n_nodes d in
  let nt = Array.make n 0. in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let base =
      if d.pred.(i) >= 0 then nt.(d.pred.(i)) else d.time.(i) -. d.cost.(i)
    in
    let t = base +. scaled_cost d specs i in
    let t = if d.pred2.(i) >= 0 && nt.(d.pred2.(i)) > t then nt.(d.pred2.(i)) else t in
    nt.(i) <- t;
    if t > !worst then worst := t
  done;
  !worst

(* Predicted speedup of the run under [specs] (old time / new time). *)
let predict d specs =
  let old_end = match terminal d with -1 -> 0. | t -> d.time.(t) in
  let new_end = replay d specs in
  if new_end <= 0. then (old_end, new_end, Float.nan)
  else (old_end, new_end, old_end /. new_end)
