(** Critical-path analysis over a causal dependency DAG recorded by
    {!Ace_engine.Crit}: path extraction, blame attribution to (op class,
    space, link, node) buckets, and causal-profiling-style what-if replay
    with per-class latency scaling. *)

type dag = {
  nprocs : int;
  kinds : string array;
  pred : int array;
  pred2 : int array;
  kind : int array;
  a : int array; (* proc / msg src *)
  b : int array; (* space / msg dst *)
  time : float array;
  cost : float array;
  heads : int array;
  bd : (int * int * float) array array;
      (* per-node (kind, space, cost) cost split; empty for plain nodes,
         the exact per-activity breakdown for coalesced "seg" nodes *)
  end_time : float;
}

val n_nodes : dag -> int
val kind_name : dag -> int -> string

(** Kind id for a name in this dag's table, -1 if absent. *)
val kind_id : dag -> string -> int

(** {2 Construction} *)

(** Snapshot a live recorder. *)
val of_crit : Ace_engine.Crit.t -> dag

(** Parse an ace-critpath-v1 document. Raises [Failure] on wrong schema or
    malformed structure, [Json.Parse_error] on malformed JSON. *)
val of_json : Json.t -> dag

val of_string : string -> dag

(** Read a file. Raises [Sys_error] (unreadable), [Failure] (empty file,
    wrong schema, malformed structure), or [Json.Parse_error]. *)
val load : string -> dag

(** {2 Critical path and blame} *)

(** The latest node (path endpoint), -1 when the dag is empty. *)
val terminal : dag -> int

(** Node ids on the critical path, terminal first. *)
val critical_path : dag -> int list

(** The critical path with per-step blame [(node, cycles)]; the cycles sum
    to the whole simulated duration. *)
val blamed_path : dag -> (int * float) list

val total_blame : (int * float) list -> float

(** Each of these partitions the blamed path's cycles, sorted descending. *)

val blame_by_kind : dag -> (int * float) list -> (string * float) list

(** Space -1 collects path time with no space attribution (messages,
    barriers, plain compute). *)
val blame_by_space : dag -> (int * float) list -> (int * float) list

val blame_by_link : dag -> (int * float) list -> ((int * int) * float) list
val blame_by_node : dag -> (int * float) list -> (int * float) list

(** {2 Path segments} *)

type seg = {
  seg_kind : string;
  seg_a : int;
  seg_b : int;
  seg_cycles : float;
  seg_t0 : float;
  seg_t1 : float;
}

(** Chronological maximal runs of path steps in one blame bucket. *)
val segments : dag -> (int * float) list -> seg list

(** The [k] heaviest segments, by cycles. *)
val top_segments : dag -> (int * float) list -> k:int -> seg list

(** {2 What-if replay} *)

type target =
  | Link of int option * int option (* src, dst; None = wildcard *)
  | Op of string
  | Space of int

type whatif = { target : target; factor : float }

(** Parse "link=SRC->DST:F" / "link=*:F" / "op=NAME:F" / "space=N:F". *)
val parse_whatif : string -> (whatif, string) result

val describe_whatif : whatif -> string

(** Replay the DAG with scaled costs; predicted end time in cycles. *)
val replay : dag -> whatif list -> float

(** [(recorded_end, predicted_end, speedup)]. *)
val predict : dag -> whatif list -> float * float * float
