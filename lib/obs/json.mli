(** Minimal dependency-free JSON parsing (reader side of the hand-rolled
    JSON this repo emits). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Parse a complete JSON document. Raises {!Parse_error} on malformed
    input or trailing garbage. *)
val parse : string -> t

val member : string -> t -> t option
val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
val to_int : t -> int option
