(* Reader for the Chrome trace-event JSON files that
   {!Ace_engine.Trace.write_file} produces: the inverse of the writer, as
   plain event records for analysis (and for the trace tests, which parse
   an emitted file back and check its shape). *)

type ev = {
  name : string;
  cat : string;
  ph : char;
  ts : float;
  dur : float;
  tid : int;
  id : int; (* async pair id, -1 when absent *)
  args : (string * float) list; (* numeric args only *)
}

let is_meta e = e.ph = 'M'

let of_json j =
  let str k d =
    match Json.member k j with
    | Some (Json.Str s) -> s
    | _ -> d
  in
  let num k d =
    match Json.member k j with Some v -> Option.value (Json.to_float v) ~default:d | None -> d
  in
  let ph = match str "ph" "?" with s when String.length s = 1 -> s.[0] | _ -> '?' in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match Json.to_float v with Some f -> Some (k, f) | None -> None)
          fields
    | _ -> []
  in
  {
    name = str "name" "";
    cat = str "cat" "";
    ph;
    ts = num "ts" 0.;
    dur = num "dur" 0.;
    tid = int_of_float (num "tid" 0.);
    id = int_of_float (num "id" (-1.));
    args;
  }

let of_string s =
  match Json.parse s with
  | Json.Obj _ as j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) -> List.map of_json evs
      | _ -> failwith "trace: no traceEvents array")
  | _ -> failwith "trace: top level is not an object"

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

(* Number of simulated-processor rows: the thread_name metadata count when
   present, else 1 + the largest tid seen. *)
let nprocs evs =
  let metas =
    List.length (List.filter (fun e -> is_meta e && e.name = "thread_name") evs)
  in
  if metas > 0 then metas
  else 1 + List.fold_left (fun m e -> max m e.tid) 0 evs

let arg k e = List.assoc_opt k e.args
let int_arg k e = Option.map int_of_float (arg k e)
