(** Trace analyses over {!Trace_read.ev} lists (backing [bin/acetrace]). *)

type row = {
  label : string;
  count : int;
  total : float; (* summed duration, simulated cycles *)
  mean : float;
  max : float;
}

(** Time under each protocol call, summed across processors, hottest
    first. *)
val call_breakdown : Trace_read.ev list -> row list

(** Protocol-call + lock-hold time per region ("rid" arg), hottest
    first. *)
val hottest_regions : Trace_read.ev list -> row list

(** Protocol-call time per space ("space" arg), hottest first. Empty for
    CRL traces (no spaces). *)
val hottest_spaces : Trace_read.ev list -> row list

type barrier_row = {
  gen : int;
  arrivals : int;
  first_ts : float;
  skew : float; (* last arrival - first arrival *)
  span : float; (* first arrival - release *)
}

(** Per-generation barrier arrival skew, in generation order. *)
val barrier_skew : Trace_read.ev list -> barrier_row list

type link_row = {
  link : string; (* "src->dst" *)
  lmsgs : int; (* delivered messages *)
  lmean : float; (* mean delivery latency, cycles *)
  lmax : float;
  lretrans : int; (* retransmissions on the link *)
  lpiggy : int; (* ACKs piggybacked onto the link's data messages *)
  lcoalesced : int; (* physical messages saved by coalescing *)
}

type msg_stats = {
  messages : int;
  bytes : int;
  mean_latency : float;
  max_latency : float;
  retransmits : int;
  piggybacked : int;
  coalesced : int;
  links : link_row list; (* per src->dst link, busiest first *)
}

(** Message-arc statistics ('b'/'e' pairs matched by id), with the
    reliability and batching instants ("retransmit", "ack_piggyback",
    "coalesce") folded into the per-link rows. *)
val messages : Trace_read.ev list -> msg_stats

(** First [n] elements of a list (fewer if short). *)
val take : int -> 'a list -> 'a list
