(* Trace analyses backing the [acetrace] CLI: where did simulated time go,
   per protocol call, per region, per space; how skewed were the barrier
   generations; what did the network carry. All times are simulated cycles
   straight from the trace (the viewer calls them "us"; 1 tick = 1 cycle). *)

type row = {
  label : string;
  count : int;
  total : float; (* summed span duration, cycles *)
  mean : float;
  max : float;
}

let group key_of evs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace_read.ev) ->
      match key_of e with
      | None -> ()
      | Some key ->
          let c, tot, mx =
            match Hashtbl.find_opt tbl key with
            | Some acc -> acc
            | None -> (0, 0., 0.)
          in
          Hashtbl.replace tbl key (c + 1, tot +. e.Trace_read.dur, Float.max mx e.Trace_read.dur))
    evs;
  Hashtbl.fold
    (fun label (count, total, max) acc ->
      { label; count; total; mean = total /. float_of_int count; max } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (b.total, b.label) (a.total, a.label))

let span cat (e : Trace_read.ev) = e.Trace_read.ph = 'X' && e.Trace_read.cat = cat

(* Time under each protocol call (start_read, end_write, lock, ...),
   summed across processors. *)
let call_breakdown evs =
  group (fun e -> if span "call" e then Some e.Trace_read.name else None) evs

(* Hottest regions: protocol-call and lock-hold time attributed to the
   region ("rid" span arg). *)
let hottest_regions evs =
  group
    (fun e ->
      if span "call" e || span "lock" e then
        Option.map (Printf.sprintf "region %d") (Trace_read.int_arg "rid" e)
      else None)
    evs

(* Hottest spaces: protocol-call time attributed to the space ("space" span
   arg; CRL traces carry no spaces and yield an empty table). *)
let hottest_spaces evs =
  group
    (fun e ->
      if span "call" e then
        Option.map (Printf.sprintf "space %d") (Trace_read.int_arg "space" e)
      else None)
    evs

(* Per-generation barrier skew: each processor's barrier span starts at its
   arrival and ends when the generation releases, so skew = spread of the
   arrival timestamps and span = first arrival to release. *)
type barrier_row = {
  gen : int;
  arrivals : int;
  first_ts : float;
  skew : float; (* last arrival - first arrival, cycles *)
  span : float; (* first arrival - release, cycles *)
}

let barrier_skew evs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace_read.ev) ->
      if span "barrier" e then
        match Trace_read.int_arg "gen" e with
        | None -> ()
        | Some gen ->
            let t0 = e.Trace_read.ts and t1 = e.Trace_read.ts +. e.Trace_read.dur in
            let n, first, last, rel =
              match Hashtbl.find_opt tbl gen with
              | Some acc -> acc
              | None -> (0, infinity, neg_infinity, neg_infinity)
            in
            Hashtbl.replace tbl gen
              (n + 1, Float.min first t0, Float.max last t0, Float.max rel t1))
    evs;
  Hashtbl.fold
    (fun gen (arrivals, first, last, rel) acc ->
      {
        gen;
        arrivals;
        first_ts = first;
        skew = last -. first;
        span = rel -. first;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.gen b.gen)

(* Message arcs: 'b' (send, on the source row, with src/dst/bytes args) and
   'e' (delivery, on the destination row) paired by id. The per-link rows
   fold in the reliability and batching instants the network layers emit on
   the source row: "retransmit" (reliable transport timer fired),
   "ack_piggyback" (ACKs that rode a data message instead of travelling as
   their own messages; "acks" arg counts them) and "coalesce" (k same-
   destination parts travelled as one vectored message; saves k-1). *)
type link_row = {
  link : string; (* "src->dst" *)
  lmsgs : int; (* delivered messages *)
  lmean : float; (* mean delivery latency, cycles *)
  lmax : float;
  lretrans : int; (* retransmissions on the link *)
  lpiggy : int; (* ACKs piggybacked onto the link's data messages *)
  lcoalesced : int; (* physical messages saved by coalescing *)
}

type msg_stats = {
  messages : int;
  bytes : int;
  mean_latency : float;
  max_latency : float;
  retransmits : int;
  piggybacked : int;
  coalesced : int;
  links : link_row list; (* per src->dst link, ordered by message count *)
}

let messages evs =
  let sends = Hashtbl.create 256 in
  List.iter
    (fun (e : Trace_read.ev) ->
      if e.Trace_read.ph = 'b' && e.Trace_read.cat = "msg" then
        Hashtbl.replace sends e.Trace_read.id e)
    evs;
  let count = ref 0 and bytes = ref 0 in
  let lat_sum = ref 0. and lat_max = ref 0. in
  (* link -> (msgs, lat_total, lat_max, retrans, piggy, coalesced) *)
  let links = Hashtbl.create 64 in
  let get link =
    match Hashtbl.find_opt links link with
    | Some acc -> acc
    | None -> (0, 0., 0., 0, 0, 0)
  in
  List.iter
    (fun (e : Trace_read.ev) ->
      if e.Trace_read.ph = 'e' && e.Trace_read.cat = "msg" then
        (match Hashtbl.find_opt sends e.Trace_read.id with
        | None -> ()
        | Some b ->
            let lat = e.Trace_read.ts -. b.Trace_read.ts in
            incr count;
            bytes := !bytes + Option.value (Trace_read.int_arg "bytes" b) ~default:0;
            lat_sum := !lat_sum +. lat;
            lat_max := Float.max !lat_max lat;
            let link =
              Printf.sprintf "%d->%d" b.Trace_read.tid e.Trace_read.tid
            in
            let c, tot, mx, r, p, co = get link in
            Hashtbl.replace links link
              (c + 1, tot +. lat, Float.max mx lat, r, p, co))
      else if e.Trace_read.ph = 'i' && e.Trace_read.cat = "net" then
        match Trace_read.int_arg "dst" e with
        | None -> ()
        | Some dst -> (
            let link = Printf.sprintf "%d->%d" e.Trace_read.tid dst in
            match e.Trace_read.name with
            | "retransmit" ->
                let c, tot, mx, r, p, co = get link in
                Hashtbl.replace links link (c, tot, mx, r + 1, p, co)
            | "ack_piggyback" ->
                let n = Option.value (Trace_read.int_arg "acks" e) ~default:1 in
                let c, tot, mx, r, p, co = get link in
                Hashtbl.replace links link (c, tot, mx, r, p + n, co)
            | "coalesce" ->
                let k = Option.value (Trace_read.int_arg "parts" e) ~default:1 in
                let c, tot, mx, r, p, co = get link in
                Hashtbl.replace links link (c, tot, mx, r, p, co + k - 1)
            | _ -> ()))
    evs;
  let link_rows =
    Hashtbl.fold
      (fun link (c, tot, mx, r, p, co) acc ->
        {
          link;
          lmsgs = c;
          lmean = (if c = 0 then 0. else tot /. float_of_int c);
          lmax = mx;
          lretrans = r;
          lpiggy = p;
          lcoalesced = co;
        }
        :: acc)
      links []
    |> List.sort (fun a b -> compare (b.lmsgs, b.link) (a.lmsgs, a.link))
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 link_rows in
  {
    messages = !count;
    bytes = !bytes;
    mean_latency = (if !count = 0 then 0. else !lat_sum /. float_of_int !count);
    max_latency = !lat_max;
    retransmits = sum (fun r -> r.lretrans);
    piggybacked = sum (fun r -> r.lpiggy);
    coalesced = sum (fun r -> r.lcoalesced);
    links = link_rows;
  }

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l
