(* A minimal recursive-descent JSON parser, just enough to read the trace
   files this repo writes (and any well-formed JSON). No dependencies: the
   image has no JSON package, and the writer side (Trace.to_buffer,
   bench/main.ml) is hand-rolled for the same reason. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents b
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* ASCII traces only: keep the low byte of the code point. *)
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
              | None -> fail "bad \\u escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let to_int j =
  match to_float j with Some f -> Some (int_of_float f) | None -> None
