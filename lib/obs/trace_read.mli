(** Load Chrome trace-event JSON files written by
    {!Ace_engine.Trace.write_file}. *)

type ev = {
  name : string;
  cat : string;
  ph : char;
  ts : float; (* simulated cycles *)
  dur : float;
  tid : int; (* simulated processor *)
  id : int; (* async pair id, -1 when absent *)
  args : (string * float) list; (* numeric args only *)
}

val is_meta : ev -> bool

(** Parse a trace document (the whole file contents). Raises
    [Json.Parse_error] or [Failure] on malformed input. *)
val of_string : string -> ev list

val load : string -> ev list

(** Simulated-processor row count (thread_name metadata, or max tid + 1). *)
val nprocs : ev list -> int

val arg : string -> ev -> float option
val int_arg : string -> ev -> int option
