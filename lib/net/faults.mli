(** Deterministic per-message network fault injection.

    A fault model attached to an {!Am.t} (via [Am.set_faults]) makes every
    transmission attempt on every link draw — from one seeded
    {!Ace_engine.Det_rng} stream — whether it is dropped, duplicated, and
    how many extra transit cycles of jitter each traveling copy suffers.
    Because the simulation's event order is deterministic, the same seed
    reproduces the same loss/reorder pattern bit for bit. *)

(** An immutable fault configuration, safe to share across parallel
    experiment cells: each simulation instantiates its own {!t} (and thus
    its own RNG stream) with {!make}. *)
type spec = private { drop : float; dup : float; jitter : float; seed : int }

val default_seed : int

(** [spec ?drop ?dup ?jitter ?seed ()] validates and packs a configuration.
    [drop] and [dup] are per-transmission probabilities in [0, 1); [jitter]
    is the maximum extra transit delay in cycles (uniform in [0, jitter)).
    Raises [Invalid_argument] on out-of-range values. *)
val spec :
  ?drop:float -> ?dup:float -> ?jitter:float -> ?seed:int -> unit -> spec

(** Whether the configuration can perturb anything (any knob nonzero).
    A disabled spec need not be attached at all. *)
val enabled : spec -> bool

type t

(** Instantiate a live fault model (fresh RNG stream) from a spec. *)
val make : spec -> t

val create : ?drop:float -> ?dup:float -> ?jitter:float -> ?seed:int -> unit -> t
val seed : t -> int

(** Test hooks: choreograph exact loss patterns mid-simulation (e.g. drop
    everything until time T, then heal the link). Deterministic as long as
    the calls themselves are event-ordered. *)
val set_drop : t -> float -> unit

val set_dup : t -> float -> unit
val set_jitter : t -> float -> unit

type fate = { copies : int; dropped : bool; duplicated : bool }

(** Draw the fate of one send: [copies] is how many copies actually travel
    (0 = dropped; 2 = duplicated; 1 copy still travels when a dropped
    message had already been forked by the network). Consumes exactly two
    RNG draws regardless of the knob settings. *)
val draw : t -> fate

(** Extra transit cycles for one traveling copy (uniform in [0, jitter));
    one RNG draw. *)
val jitter_of : t -> float
