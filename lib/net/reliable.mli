(** Reliable, exactly-once, in-order message delivery over {!Am}.

    The region runtime (coherence building blocks, collectives, the name
    service) routes all its traffic through this transport, so every
    protocol survives a lossy network unchanged. Per directed link the
    sender numbers messages, retransmits on timeout with exponential
    backoff, and the receiver ACKs every copy, suppresses duplicates, and
    releases handlers strictly in sequence order (early arrivals wait in a
    reorder buffer).

    When the underlying [Am.t] has no fault model attached, every entry
    point forwards straight to [Am] with zero protocol overhead — no
    sequence numbers, ACKs or timers — so faultless runs are bit-identical
    to the raw transport.

    Counters (all under the machine's Stats): [net.retransmits] (plus the
    [net.retransmits.by_link] family), [net.timeouts] (timer expirations
    that found the message unACKed), [net.acks], [net.dup_suppressed], and
    [net.giveups] (messages abandoned after [max_retries] failed
    retransmissions — the blocked requester then appears in
    [Machine.run]'s deadlock report). Retransmissions are recorded in an
    attached trace as ["retransmit"] instants (category ["net"]). *)

type t

val default_rto : float
val default_backoff : float
val default_max_retries : int

(** [create ?rto ?backoff ?max_retries am]: [rto] is the initial
    retransmit timeout in cycles (armed after every transmission), scaled
    by [backoff] after each retransmission; after [max_retries] failed
    retransmissions the message is abandoned. Raises [Invalid_argument] on
    a non-positive [rto], [backoff < 1] or negative [max_retries]. *)
val create : ?rto:float -> ?backoff:float -> ?max_retries:int -> Am.t -> t

val am : t -> Am.t
val machine : t -> Ace_engine.Machine.t
val cost : t -> Cost_model.t

(** Messages sent but not yet ACKed, across all channels. Nonzero after a
    completed run means some sender gave up. *)
val pending : t -> int

(** Same contracts as {!Am.send}/{!Am.send_from}/{!Am.rpc}, with the added
    guarantee that under a fault model the handler runs exactly once, and
    handlers on the same directed link run in send order. *)
val send :
  t -> now:float -> src:int -> dst:int -> bytes:int -> (time:float -> unit) -> unit

val send_from :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int -> (time:float -> unit) -> unit

val rpc :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int ->
  ('a Ace_engine.Ivar.t -> time:float -> unit) -> 'a
