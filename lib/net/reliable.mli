(** Reliable, exactly-once, in-order message delivery over {!Am}.

    The region runtime (coherence building blocks, collectives, the name
    service) routes all its traffic through this transport, so every
    protocol survives a lossy network unchanged. Per directed link the
    sender numbers messages, retransmits on timeout with exponential
    backoff, and the receiver owes an ACK for every copy, suppresses
    duplicates, and releases handlers strictly in sequence order (early
    arrivals wait in a reorder buffer).

    ACKs are piggybacked and cumulative: an owed ACK rides the next data
    message on the reverse link for [ack_bytes] of header and zero extra
    messages, and a delayed-ACK timer ([ack_delay] cycles) covers quiet
    links with one dedicated message settling everything owed at once. An
    ACK lost with its carrier regenerates when the unACKed data
    retransmits.

    When the underlying [Am.t] has no fault model attached, every entry
    point forwards straight to [Am] with zero protocol overhead — no
    sequence numbers, ACKs or timers — so faultless runs are bit-identical
    to the raw transport.

    Counters (all under the machine's Stats): [net.retransmits] (plus the
    [net.retransmits.by_link] family), [net.timeouts] (timer expirations
    that found the message unACKed), [net.acks] (obligations created, one
    per received copy), [net.acks.piggybacked] (obligations that rode a
    reverse-link data message), [net.acks.cumulative] (obligations beyond
    the first folded into each dedicated ACK), [net.dup_suppressed], and
    [net.giveups] (messages abandoned after [max_retries] failed
    retransmissions — the blocked requester then appears in
    [Machine.run]'s deadlock report). Retransmissions are recorded in an
    attached trace as ["retransmit"] instants (category ["net"]). *)

type t

val default_rto : float
val default_backoff : float
val default_max_retries : int
val default_ack_delay : float

(** [create ?rto ?backoff ?max_retries ?ack_delay am]: [rto] is the initial
    retransmit timeout in cycles (armed after every transmission), scaled
    by [backoff] after each retransmission; after [max_retries] failed
    retransmissions the message is abandoned. [ack_delay] is the delayed-ACK
    timer: how long the receiver holds an owed ACK hoping for reverse-link
    traffic to piggyback on (keep it well under [rto]). Raises
    [Invalid_argument] on a non-positive [rto] or [ack_delay],
    [backoff < 1] or negative [max_retries]. *)
val create :
  ?rto:float -> ?backoff:float -> ?max_retries:int -> ?ack_delay:float ->
  Am.t -> t

val am : t -> Am.t
val machine : t -> Ace_engine.Machine.t
val cost : t -> Cost_model.t

(** Messages sent but not yet ACKed, across all channels. Nonzero after a
    completed run means some sender gave up. *)
val pending : t -> int

(** Same contracts as {!Am.send}/{!Am.send_from}/{!Am.rpc}, with the added
    guarantee that under a fault model the handler runs exactly once, and
    handlers on the same directed link run in send order. *)
val send :
  t -> now:float -> src:int -> dst:int -> bytes:int -> (time:float -> unit) -> unit

val send_from :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int -> (time:float -> unit) -> unit

val rpc :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int ->
  ('a Ace_engine.Ivar.t -> time:float -> unit) -> 'a

(** Re-export of {!Am.part} for transport clients. *)
val part : dst:int -> bytes:int -> (time:float -> unit) -> Am.part

(** Whether the underlying [Am.t] is in opt-in bulk-transfer mode — the
    switch the batched coherence legs consult (see {!Am.set_batching}). *)
val batching : t -> bool

(** {!Am.send_multi}/{!Am.send_multi_from} with reliable delivery: each
    coalesced destination group travels as one sequenced message, so a
    dropped vector retransmits whole and its parts still release in order
    against the link's other traffic. *)
val send_multi : t -> now:float -> src:int -> Am.part list -> unit

val send_multi_from : t -> Ace_engine.Machine.proc -> Am.part list -> unit
