module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats

let sid_messages = Stats.intern "net.messages"
let sid_bytes = Stats.intern "net.bytes"

type t = {
  machine : Machine.t;
  cost : Cost_model.t;
  mutable messages : int;
  mutable bytes_sent : int;
}

let create machine cost = { machine; cost; messages = 0; bytes_sent = 0 }
let machine t = t.machine
let cost t = t.cost

let send t ~now ~src ~dst ~bytes handler =
  ignore src;
  ignore dst;
  if bytes < 0 then invalid_arg "Am.send: negative size";
  t.messages <- t.messages + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  let stats = Machine.stats t.machine in
  Stats.incr_id stats sid_messages;
  Stats.add_id stats sid_bytes (float_of_int bytes);
  let arrival =
    now +. Cost_model.transit t.cost ~bytes +. t.cost.Cost_model.am_recv_overhead
  in
  Machine.schedule t.machine ~time:arrival (fun () -> handler ~time:arrival)

let send_from t (p : Machine.proc) ~dst ~bytes handler =
  Machine.advance p t.cost.Cost_model.am_send_overhead;
  send t ~now:p.Machine.clock ~src:p.Machine.id ~dst ~bytes handler

let rpc t p ~dst ~bytes handler =
  let reply = Ivar.create () in
  send_from t p ~dst ~bytes (fun ~time -> handler reply ~time);
  Machine.await p reply

let messages t = t.messages
let bytes_sent t = t.bytes_sent
