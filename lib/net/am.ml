module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Trace = Ace_engine.Trace
module Crit = Ace_engine.Crit

let sid_messages = Stats.intern "net.messages"
let sid_bytes = Stats.intern "net.bytes"
let sid_dropped = Stats.intern "net.fault.dropped"
let sid_duplicated = Stats.intern "net.fault.duplicated"
let fam_msgs_src = Stats.fam "net.msgs.by_src"
let fam_msgs_dst = Stats.fam "net.msgs.by_dst"
let fam_bytes_src = Stats.fam "net.bytes.by_src"
let fam_bytes_dst = Stats.fam "net.bytes.by_dst"
let fam_msgs_link = Stats.fam "net.msgs.by_link"
let fam_drop_link = Stats.fam "net.fault.dropped.by_link"
let sid_multi_sends = Stats.intern "net.multi.sends"
let sid_coalesced = Stats.intern "net.coalesced"
let fam_coalesced_link = Stats.fam "net.coalesced.by_link"

let hist_latency =
  Stats.hist "net.latency_cycles"
    ~limits:[| 50.; 100.; 200.; 400.; 800.; 1600.; 3200.; 6400. |]

(* Per-link (src, dst) families index an nprocs² space. Up to this many
   nodes the cells stay a dense pre-opened array — one store per message,
   and byte-identical layout to the historical accounting at the paper's 32
   nodes. Past it the nprocs² array would dominate the simulation's memory
   (1024 nodes → 8 MiB per family), so cells go to Stats' sparse tables,
   sized by the links actually exercised. *)
let dense_links_limit = 256

(* One shard's accounting: logical-send counters plus live Stats cell
   arrays, opened once so the per-message accounting is plain array stores
   (Am.send is the simulator's hottest path; the dimensions are fixed at
   nprocs / nprocs^2 so the references never go stale — see
   Stats.dim_open). Sequentially there is exactly one of these, bound to
   the machine's root stats; under the parallel engine each shard builds
   its own on first send, bound to its private stats instance (merged into
   the root when the run ends), so the hot path stays lock-free. *)
type acct = {
  stats : Stats.t;
  mutable messages : int; (* logical sends: one per [send] call *)
  mutable bytes_sent : int;
  msgs_src : float array;
  msgs_dst : float array;
  bytes_src : float array;
  bytes_dst : float array;
  msgs_link : float array; (* [||] above dense_links_limit: sparse cells *)
  lat_limits : float array;
  lat_counts : float array;
}

type t = {
  machine : Machine.t;
  cost : Cost_model.t;
  mutable faults : Faults.t option;
  mutable batching : bool; (* opt-in bulk-transfer mode; off = historical paths *)
  nprocs : int;
  accts : acct option array; (* slot [i] built and touched only by shard [i] *)
}

(* Bump a per-link family cell in whichever representation this machine
   size selected (cold paths: drops, coalescing). *)
let add_link t stats f link v =
  if t.nprocs <= dense_links_limit then Stats.add_dim stats f link v
  else Stats.add_dim_sparse stats f link v

let mk_acct nprocs stats =
  let lat_limits, lat_counts = Stats.hist_live stats hist_latency in
  {
    stats;
    messages = 0;
    bytes_sent = 0;
    msgs_src = Stats.dim_open stats fam_msgs_src ~size:nprocs;
    msgs_dst = Stats.dim_open stats fam_msgs_dst ~size:nprocs;
    bytes_src = Stats.dim_open stats fam_bytes_src ~size:nprocs;
    bytes_dst = Stats.dim_open stats fam_bytes_dst ~size:nprocs;
    msgs_link =
      (if nprocs <= dense_links_limit then
         Stats.dim_open stats fam_msgs_link ~size:(nprocs * nprocs)
       else [||]);
    lat_limits;
    lat_counts;
  }

(* The executing shard's accounting, built on first use from the stats
   instance current in this context. *)
let acct t =
  let ix = Machine.shard_ix t.machine in
  match t.accts.(ix) with
  | Some a -> a
  | None ->
      let a = mk_acct t.nprocs (Machine.stats t.machine) in
      t.accts.(ix) <- Some a;
      a

let create machine cost =
  {
    machine;
    cost;
    faults = None;
    batching = false;
    nprocs = Machine.nprocs machine;
    accts = Array.make (Machine.nshards machine) None;
  }

let machine t = t.machine
let cost t = t.cost
let set_faults t f = t.faults <- f
let faults t = t.faults
let set_batching t b = t.batching <- b
let batching t = t.batching

(* Put one copy on the wire: physical accounting (the net.* counters count
   copies that actually travel and deliver), latency bucketing, the trace
   arc, and the delivery event. [extra] is fault-injected transit jitter
   (0 on the faultless path, where [arrival] reduces bit-exactly to the
   historical [now + transit + recv_overhead]). *)
let deliver t ~now ~src ~dst ~bytes ~fbytes ~extra handler =
  let a = acct t in
  let stats = a.stats in
  Stats.incr_id stats sid_messages;
  Stats.add_id stats sid_bytes fbytes;
  a.msgs_src.(src) <- a.msgs_src.(src) +. 1.;
  a.msgs_dst.(dst) <- a.msgs_dst.(dst) +. 1.;
  a.bytes_src.(src) <- a.bytes_src.(src) +. fbytes;
  a.bytes_dst.(dst) <- a.bytes_dst.(dst) +. fbytes;
  let link = (src * t.nprocs) + dst in
  if Array.length a.msgs_link > 0 then
    a.msgs_link.(link) <- a.msgs_link.(link) +. 1.
  else Stats.incr_dim_sparse stats fam_msgs_link link;
  let arrival =
    now +. Cost_model.transit t.cost ~bytes
    +. t.cost.Cost_model.am_recv_overhead +. extra
  in
  let b = Stats.bucket a.lat_limits (arrival -. now) in
  a.lat_counts.(b) <- a.lat_counts.(b) +. 1.;
  (match Machine.trace t.machine with
  | None -> ()
  | Some tr ->
      Trace.arc tr ~name:"msg" ~cat:"msg" ~tid_src:src ~tid_dst:dst ~ts:now
        ~ts_end:arrival
        ~args:[ ("src", src); ("dst", dst); ("bytes", bytes) ] ());
  match Machine.crit t.machine with
  | None ->
      (* The handler touches the destination's state: route the delivery
         to [dst]'s shard. Arrival is at least a wire latency away, so it
         lands at or beyond the parallel engine's horizon. *)
      Machine.schedule ~owner:dst t.machine ~time:arrival (fun () ->
          handler ~time:arrival)
  | Some c ->
      (* The send→deliver arc: the handler's cause is this wire message,
         whose own cause is whatever context performed the send. *)
      let node =
        Crit.node c ~pred:(Crit.cur c) ~kind:Crit.k_msg ~a:src ~b:dst
          ~time:arrival ~cost:(arrival -. now) ()
      in
      Machine.schedule_cause t.machine ~time:arrival ~cause:node (fun () ->
          handler ~time:arrival)

(* One wire message (already tallied as a logical send): draw a fault fate
   if a model is attached, then put the surviving copies on the wire. *)
let emit t ~now ~src ~dst ~bytes handler =
  let fbytes = float_of_int bytes in
  match t.faults with
  | None -> deliver t ~now ~src ~dst ~bytes ~fbytes ~extra:0. handler
  | Some f ->
      let fate = Faults.draw f in
      let stats = Machine.stats t.machine in
      if fate.Faults.dropped then begin
        Stats.incr_id stats sid_dropped;
        add_link t stats fam_drop_link ((src * t.nprocs) + dst) 1.;
        match Machine.trace t.machine with
        | None -> ()
        | Some tr ->
            Trace.instant tr ~name:"drop" ~cat:"net" ~tid:src ~ts:now
              ~args:[ ("dst", dst); ("bytes", bytes) ] ()
      end;
      if fate.Faults.duplicated then Stats.incr_id stats sid_duplicated;
      for _ = 1 to fate.Faults.copies do
        deliver t ~now ~src ~dst ~bytes ~fbytes ~extra:(Faults.jitter_of f)
          handler
      done

let send t ~now ~src ~dst ~bytes handler =
  if bytes < 0 then invalid_arg "Am.send: negative size";
  let nprocs = t.nprocs in
  if src < 0 || src >= nprocs then invalid_arg "Am.send: bad src";
  if dst < 0 || dst >= nprocs then invalid_arg "Am.send: bad dst";
  let a = acct t in
  a.messages <- a.messages + 1;
  a.bytes_sent <- a.bytes_sent + bytes;
  emit t ~now ~src ~dst ~bytes handler

(* ---- multicast / vectored sends ---- *)

type part = { p_dst : int; p_bytes : int; p_handler : time:float -> unit }

let part ~dst ~bytes handler = { p_dst = dst; p_bytes = bytes; p_handler = handler }

(* Group a part list by destination, preserving first-appearance order of
   destinations and the relative order of parts within a destination, and
   tally the coalescing: a group of k parts travels as ONE vectored wire
   message, saving k-1 physical messages over k individual sends. *)
let coalesce t ~now ~src parts =
  let nprocs = t.nprocs in
  if src < 0 || src >= nprocs then invalid_arg "Am.send_multi: bad src";
  List.iter
    (fun q ->
      if q.p_bytes < 0 then invalid_arg "Am.send_multi: negative size";
      if q.p_dst < 0 || q.p_dst >= nprocs then
        invalid_arg "Am.send_multi: bad dst")
    parts;
  (* Group by destination with a short assoc, not an nprocs-wide bucket
     array: part lists are a few entries, machine sizes reach 1024. *)
  let by_dst = ref [] in
  List.iter
    (fun q ->
      if List.mem_assoc q.p_dst !by_dst then
        by_dst :=
          List.map
            (fun (d, qs) -> if d = q.p_dst then (d, q :: qs) else (d, qs))
            !by_dst
      else by_dst := (q.p_dst, [ q ]) :: !by_dst)
    parts;
  let stats = Machine.stats t.machine in
  if parts <> [] then Stats.incr_id stats sid_multi_sends;
  List.rev_map
    (fun (dst, rev_group) ->
      let group = List.rev rev_group in
      let bytes = List.fold_left (fun a q -> a + q.p_bytes) 0 group in
      let k = List.length group in
      if k > 1 then begin
        Stats.add_id stats sid_coalesced (float_of_int (k - 1));
        add_link t stats fam_coalesced_link
          ((src * nprocs) + dst)
          (float_of_int (k - 1));
        match Machine.trace t.machine with
        | None -> ()
        | Some tr ->
            Trace.instant tr ~name:"coalesce" ~cat:"net" ~tid:src ~ts:now
              ~args:[ ("dst", dst); ("parts", k); ("bytes", bytes) ] ()
      end;
      let handler ~time = List.iter (fun q -> q.p_handler ~time) group in
      (dst, bytes, handler))
    !by_dst

let send_multi t ~now ~src parts =
  List.iter
    (fun (dst, bytes, handler) ->
      let a = acct t in
      a.messages <- a.messages + 1;
      a.bytes_sent <- a.bytes_sent + bytes;
      emit t ~now ~src ~dst ~bytes handler)
    (coalesce t ~now ~src parts)

let send_multi_from t (p : Machine.proc) parts =
  if parts <> [] then begin
    Machine.advance_as p Crit.k_send_ovh
      t.cost.Cost_model.am_send_overhead;
    send_multi t ~now:p.Machine.clock ~src:p.Machine.id parts
  end

let send_from t (p : Machine.proc) ~dst ~bytes handler =
  Machine.advance_as p Crit.k_send_ovh
    t.cost.Cost_model.am_send_overhead;
  send t ~now:p.Machine.clock ~src:p.Machine.id ~dst ~bytes handler

let rpc t p ~dst ~bytes handler =
  let reply = Ivar.create () in
  send_from t p ~dst ~bytes (fun ~time -> handler reply ~time);
  Machine.await p reply

(* Logical-send totals: the sum over the per-shard accounts. Only stable
   between windows (callers read them after the run). *)
let sum_accts t f =
  Array.fold_left
    (fun n -> function Some a -> n + f a | None -> n)
    0 t.accts

let messages t = sum_accts t (fun a -> a.messages)
let bytes_sent t = sum_accts t (fun a -> a.bytes_sent)
