(* Deterministic per-message network fault model.

   Every transmission attempt on a link draws its fate from one seeded
   splitmix64 stream: drop?, duplicate?, then one jitter draw per copy that
   actually travels. The draws happen in a fixed order on every send —
   including when a probability is zero — so the stream position (and hence
   every later decision) depends only on the fault seed and the simulation's
   deterministic event order, never on which knobs are enabled. *)

module Det_rng = Ace_engine.Det_rng

type spec = { drop : float; dup : float; jitter : float; seed : int }

let default_seed = 0x5eed

let spec ?(drop = 0.) ?(dup = 0.) ?(jitter = 0.) ?(seed = default_seed) () =
  let prob what p =
    if not (Float.is_finite p) || p < 0. || p >= 1. then
      invalid_arg (Printf.sprintf "Faults.spec: %s must be in [0, 1)" what)
  in
  prob "drop" drop;
  prob "dup" dup;
  if not (Float.is_finite jitter) || jitter < 0. then
    invalid_arg "Faults.spec: jitter must be >= 0 cycles";
  { drop; dup; jitter; seed }

let enabled s = s.drop > 0. || s.dup > 0. || s.jitter > 0.

type t = {
  mutable drop : float;
  mutable dup : float;
  mutable jitter : float;
  seed : int;
  rng : Det_rng.t;
}

let make (s : spec) =
  { drop = s.drop; dup = s.dup; jitter = s.jitter; seed = s.seed;
    rng = Det_rng.create s.seed }

let create ?drop ?dup ?jitter ?seed () =
  make (spec ?drop ?dup ?jitter ?seed ())

let seed t = t.seed

(* Mutators for tests that choreograph exact loss patterns (e.g. drop the
   first transmission, then let the retransmit through). *)
let set_drop t p = t.drop <- p
let set_dup t p = t.dup <- p
let set_jitter t j = t.jitter <- j

(* The fate of one send: how many copies travel (0 with a drop, 2 with a
   duplicate, 1 with a drop+duplicate — the network lost the original but
   had already forked a copy) and whether the original was dropped. *)
type fate = { copies : int; dropped : bool; duplicated : bool }

let draw t =
  let dropped = Det_rng.float t.rng < t.drop in
  let duplicated = Det_rng.float t.rng < t.dup in
  { copies = (if dropped then 0 else 1) + (if duplicated then 1 else 0);
    dropped;
    duplicated }

(* Extra transit cycles for one traveling copy; drawn per copy so duplicates
   can overtake their originals. Always draws (jitter = 0 scales the draw to
   0) to keep the stream position independent of the knob settings. *)
let jitter_of t = Det_rng.float t.rng *. t.jitter
