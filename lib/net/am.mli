(** Active Messages over the simulated network.

    A message carries a handler closure that executes atomically at the
    destination at delivery time — the same restriction as real Active
    Messages (von Eicken et al.): handlers must not block; they may send
    further messages and fill ivars. Payload size is declared for the cost
    model; the closure carries the actual data.

    {2 Message accounting}

    Two tallies exist and they deliberately count different things:

    - {!messages}/{!bytes_sent} count {e logical} sends — one per {!send}
      call, whatever the network later does to the message.
    - The [net.messages]/[net.bytes] Stats counters (and the per-src/dst,
      per-link families and the latency histogram) count {e physical}
      copies that travel the wire and deliver: a fault-dropped copy is
      excluded (tallied under [net.fault.dropped] and its per-link family
      instead), a fault-duplicated copy counts twice (the extra copy also
      tallied under [net.fault.duplicated]).

    With no fault model attached the two necessarily agree — every logical
    send is exactly one physical delivery (see the invariant test in
    [test_faults.ml]). *)

type t

(** Machine sizes up to this keep per-link (nprocs²-indexed) stat families
    in dense pre-opened arrays (the historical layout, one store per
    message); above it cells go to {!Ace_engine.Stats.add_dim_sparse}
    tables sized by the links actually exercised. *)
val dense_links_limit : int

val create : Ace_engine.Machine.t -> Cost_model.t -> t

val machine : t -> Ace_engine.Machine.t
val cost : t -> Cost_model.t

(** Attach (or detach) a fault model. With [None] — the default — every
    send takes the historical zero-overhead path and delivers exactly once,
    bit-identically to a build without fault support. With [Some f], every
    transmission draws drop/duplicate/jitter fates from [f]. Raw [Am] users
    see lost and duplicated handlers; route through {!Reliable} to get
    exactly-once delivery on a faulty network. *)
val set_faults : t -> Faults.t option -> unit

val faults : t -> Faults.t option

(** Opt-in bulk-transfer mode. The flag itself changes nothing in [Am] —
    every legacy entry point keeps its exact historical behaviour — it is
    the switch the upper layers ({!Blocks}' batched legs, the write-combining
    protocols) consult before taking a vectored path, so batching-off runs
    stay bit-identical to builds without batching support. *)
val set_batching : t -> bool -> unit

val batching : t -> bool

(** One entry of a multicast/vectored send: destination, declared payload
    size, and the handler to run at delivery. Build with {!part}. *)
type part

val part : dst:int -> bytes:int -> (time:float -> unit) -> part

(** [send_multi t ~now ~src parts] is the multicast primitive: parts for
    the {e same} destination coalesce into one vectored wire message whose
    size is the sum of the part sizes and whose delivery runs the part
    handlers in order at one arrival; distinct destinations each get their
    own copy (per-copy wire costs). Coalescing is tallied in
    [net.multi.sends], [net.coalesced] (physical messages saved, k-1 per
    k-part group) and the [net.coalesced.by_link] family, plus a
    ["coalesce"] trace instant per vectored message. Under a fault model
    each vectored message draws one fate — a dropped message loses all its
    parts (route through {!Reliable.send_multi} for retransmission). *)
val send_multi : t -> now:float -> src:int -> part list -> unit

(** [send_multi] charging the calling fiber {e one} sender overhead for the
    whole vector — the multicast half of the batching story: k same-source
    sends cost one injection. No-op on an empty list. *)
val send_multi_from : t -> Ace_engine.Machine.proc -> part list -> unit

(** Destination groups of a part list — (dst, summed bytes, merged handler)
    in first-appearance order, with the same coalescing accounting as
    {!send_multi} — for transports that put the groups on the wire
    themselves ({!Reliable.send_multi}). *)
val coalesce :
  t -> now:float -> src:int -> part list ->
  (int * int * (time:float -> unit)) list

(** [send t ~now ~src ~dst ~bytes h] injects a message at time [now]; the
    handler [h ~time] runs at the destination at delivery time. Does not
    charge sender processor overhead (see {!send_from}). Usable from inside
    message handlers. [src]/[dst] must name simulated processors — they
    feed the per-node and per-link message counters and the trace's
    send->deliver arcs. Under an attached fault model the handler may run
    zero, one or two times. *)
val send : t -> now:float -> src:int -> dst:int -> bytes:int -> (time:float -> unit) -> unit

(** [send_from t proc ~dst ~bytes h] charges the calling fiber the send
    overhead, then injects. *)
val send_from : t -> Ace_engine.Machine.proc -> dst:int -> bytes:int -> (time:float -> unit) -> unit

(** Send, and block the calling fiber until the handler's reply fills the
    returned value: [h] receives an ivar to fill (possibly after further
    messaging). *)
val rpc :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int ->
  ('a Ace_engine.Ivar.t -> time:float -> unit) -> 'a

(** Logical sends / bytes: one per {!send} call (see {e Message accounting}
    above). *)
val messages : t -> int

val bytes_sent : t -> int
