(** Active Messages over the simulated network.

    A message carries a handler closure that executes atomically at the
    destination at delivery time — the same restriction as real Active
    Messages (von Eicken et al.): handlers must not block; they may send
    further messages and fill ivars. Payload size is declared for the cost
    model; the closure carries the actual data. *)

type t

val create : Ace_engine.Machine.t -> Cost_model.t -> t

val machine : t -> Ace_engine.Machine.t
val cost : t -> Cost_model.t

(** [send t ~now ~src ~dst ~bytes h] injects a message at time [now]; the
    handler [h ~time] runs at the destination at delivery time. Does not
    charge sender processor overhead (see {!send_from}). Usable from inside
    message handlers. [src]/[dst] must name simulated processors — they
    feed the per-node and per-link message counters and the trace's
    send->deliver arcs. *)
val send : t -> now:float -> src:int -> dst:int -> bytes:int -> (time:float -> unit) -> unit

(** [send_from t proc ~dst ~bytes h] charges the calling fiber the send
    overhead, then injects. *)
val send_from : t -> Ace_engine.Machine.proc -> dst:int -> bytes:int -> (time:float -> unit) -> unit

(** Send, and block the calling fiber until the handler's reply fills the
    returned value: [h] receives an ivar to fill (possibly after further
    messaging). *)
val rpc :
  t -> Ace_engine.Machine.proc -> dst:int -> bytes:int ->
  ('a Ace_engine.Ivar.t -> time:float -> unit) -> 'a

val messages : t -> int
val bytes_sent : t -> int
