(* Reliable, exactly-once, in-order delivery over the (possibly faulty)
   Active Messages layer.

   Each directed (src, dst) pair is a channel. The sender stamps every
   message with a per-channel sequence number and keeps it in an in-flight
   table; a timer retransmits with exponential backoff until the receiver's
   ACK lands (ACKs travel the same faulty network and are themselves
   repaired by retransmission). The receiver ACKs every copy it sees,
   suppresses duplicates, and releases handlers strictly in sequence order,
   parking early arrivals in a reorder buffer — so upper layers (the
   coherence building blocks, the collectives) keep their exactly-once,
   FIFO-per-link delivery model on a network that drops, duplicates and
   reorders.

   When no fault model is attached to the underlying [Am.t], every entry
   point forwards straight to [Am] — no sequence numbers, no ACKs, no
   timers — so faultless runs are bit-identical to the historical
   transport. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Trace = Ace_engine.Trace

let sid_retransmits = Stats.intern "net.retransmits"
let sid_timeouts = Stats.intern "net.timeouts"
let sid_acks = Stats.intern "net.acks"
let sid_dup_suppressed = Stats.intern "net.dup_suppressed"
let sid_giveups = Stats.intern "net.giveups"
let fam_retrans_link = Stats.fam "net.retransmits.by_link"

(* Size of an ACK on the wire (sequence number + channel tag). *)
let ack_bytes = 8

type inflight = {
  i_seq : int;
  i_bytes : int;
  i_handler : time:float -> unit;
  mutable acked : bool;
  mutable attempts : int; (* transmissions so far, initial send included *)
  mutable rto : float; (* timeout armed after the latest transmission *)
}

type chan = {
  c_src : int;
  c_dst : int;
  mutable snext : int; (* sender: next sequence number *)
  inflight : (int, inflight) Hashtbl.t;
  mutable rnext : int; (* receiver: next sequence to release *)
  rbuf : (int, time:float -> unit) Hashtbl.t; (* early arrivals, by seq *)
}

type t = {
  am : Am.t;
  nprocs : int;
  rto : float;
  backoff : float;
  max_retries : int;
  chans : chan option array; (* src * nprocs + dst, created on first use *)
}

let default_rto = 4000.
let default_backoff = 2.
let default_max_retries = 20

let create ?(rto = default_rto) ?(backoff = default_backoff)
    ?(max_retries = default_max_retries) am =
  if not (Float.is_finite rto) || rto <= 0. then
    invalid_arg "Reliable.create: rto must be positive";
  if not (Float.is_finite backoff) || backoff < 1. then
    invalid_arg "Reliable.create: backoff must be >= 1";
  if max_retries < 0 then invalid_arg "Reliable.create: negative max_retries";
  let n = Machine.nprocs (Am.machine am) in
  { am; nprocs = n; rto; backoff; max_retries; chans = Array.make (n * n) None }

let am t = t.am
let machine t = Am.machine t.am
let cost t = Am.cost t.am

let channel t ~src ~dst =
  let ix = (src * t.nprocs) + dst in
  match t.chans.(ix) with
  | Some ch -> ch
  | None ->
      let ch =
        {
          c_src = src;
          c_dst = dst;
          snext = 0;
          inflight = Hashtbl.create 8;
          rnext = 0;
          rbuf = Hashtbl.create 8;
        }
      in
      t.chans.(ix) <- Some ch;
      ch

(* Unacked messages across all channels (a diagnosis aid: nonzero after a
   run means senders gave up — see the deadlock report in Machine.run). *)
let pending t =
  Array.fold_left
    (fun acc ch ->
      match ch with None -> acc | Some ch -> acc + Hashtbl.length ch.inflight)
    0 t.chans

(* Receiver side: ACK every copy, release handlers in sequence order. *)
let on_data t ch (m : inflight) ~time =
  let stats = Machine.stats (Am.machine t.am) in
  Stats.incr_id stats sid_acks;
  Am.send t.am ~now:time ~src:ch.c_dst ~dst:ch.c_src ~bytes:ack_bytes
    (fun ~time:_ ->
      if not m.acked then begin
        m.acked <- true;
        Hashtbl.remove ch.inflight m.i_seq
      end);
  if m.i_seq < ch.rnext || Hashtbl.mem ch.rbuf m.i_seq then
    Stats.incr_id stats sid_dup_suppressed
  else begin
    Hashtbl.add ch.rbuf m.i_seq m.i_handler;
    let rec release () =
      match Hashtbl.find_opt ch.rbuf ch.rnext with
      | None -> ()
      | Some h ->
          Hashtbl.remove ch.rbuf ch.rnext;
          ch.rnext <- ch.rnext + 1;
          h ~time;
          release ()
    in
    release ()
  end

let transmit t ch m ~now =
  Am.send t.am ~now ~src:ch.c_src ~dst:ch.c_dst ~bytes:m.i_bytes
    (fun ~time -> on_data t ch m ~time)

(* Arm the retransmit timer for the latest transmission. The event cannot
   be cancelled, so an already-ACKed message just lets it fire as a no-op;
   otherwise the timer retransmits, doubles the timeout and re-arms, until
   [max_retries] retransmissions have failed — then it abandons the message
   (counted in net.giveups) and the blocked requester shows up, with its
   clock, in Machine.run's deadlock report. *)
let rec arm t ch m ~at =
  Machine.schedule (Am.machine t.am) ~time:at (fun () ->
      if not m.acked then begin
        let stats = Machine.stats (Am.machine t.am) in
        Stats.incr_id stats sid_timeouts;
        if m.attempts - 1 >= t.max_retries then
          Stats.incr_id stats sid_giveups
        else begin
          m.attempts <- m.attempts + 1;
          Stats.incr_id stats sid_retransmits;
          Stats.incr_dim stats fam_retrans_link
            ((ch.c_src * t.nprocs) + ch.c_dst);
          (match Machine.trace (Am.machine t.am) with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"retransmit" ~cat:"net" ~tid:ch.c_src
                ~ts:at
                ~args:
                  [
                    ("dst", ch.c_dst); ("seq", m.i_seq); ("attempt", m.attempts);
                  ]
                ());
          transmit t ch m ~now:at;
          m.rto <- m.rto *. t.backoff;
          arm t ch m ~at:(at +. m.rto)
        end
      end)

let send t ~now ~src ~dst ~bytes handler =
  match Am.faults t.am with
  | None -> Am.send t.am ~now ~src ~dst ~bytes handler
  | Some _ ->
      if bytes < 0 then invalid_arg "Reliable.send: negative size";
      if src < 0 || src >= t.nprocs then invalid_arg "Reliable.send: bad src";
      if dst < 0 || dst >= t.nprocs then invalid_arg "Reliable.send: bad dst";
      let ch = channel t ~src ~dst in
      let m =
        {
          i_seq = ch.snext;
          i_bytes = bytes;
          i_handler = handler;
          acked = false;
          attempts = 1;
          rto = t.rto;
        }
      in
      ch.snext <- ch.snext + 1;
      Hashtbl.add ch.inflight m.i_seq m;
      transmit t ch m ~now;
      arm t ch m ~at:(now +. m.rto)

let send_from t (p : Machine.proc) ~dst ~bytes handler =
  Machine.advance p (Am.cost t.am).Cost_model.am_send_overhead;
  send t ~now:p.Machine.clock ~src:p.Machine.id ~dst ~bytes handler

let rpc t p ~dst ~bytes handler =
  let reply = Ivar.create () in
  send_from t p ~dst ~bytes (fun ~time -> handler reply ~time);
  Machine.await p reply
