(* Reliable, exactly-once, in-order delivery over the (possibly faulty)
   Active Messages layer.

   Each directed (src, dst) pair is a channel. The sender stamps every
   message with a per-channel sequence number and keeps it in an in-flight
   table; a timer retransmits with exponential backoff until the receiver's
   ACK lands (ACKs travel the same faulty network and are themselves
   repaired by retransmission). The receiver owes one ACK per copy it sees,
   suppresses duplicates, and releases handlers strictly in sequence order,
   parking early arrivals in a reorder buffer — so upper layers (the
   coherence building blocks, the collectives) keep their exactly-once,
   FIFO-per-link delivery model on a network that drops, duplicates and
   reorders.

   ACK delivery is piggybacked and cumulative rather than one dedicated
   message per copy: an owed ACK rides the next data message travelling the
   reverse link (net.acks.piggybacked), and a delayed-ACK timer covers
   quiet links by sending one dedicated message that settles every owed ACK
   at once (the fold beyond the first counted in net.acks.cumulative). An
   ACK lost with its carrier is regenerated when the un-ACKed data is
   retransmitted, so the repair loop is unchanged.

   When no fault model is attached to the underlying [Am.t], every entry
   point forwards straight to [Am] — no sequence numbers, no ACKs, no
   timers — so faultless runs are bit-identical to the historical
   transport. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Trace = Ace_engine.Trace

let sid_retransmits = Stats.intern "net.retransmits"
let sid_timeouts = Stats.intern "net.timeouts"
let sid_acks = Stats.intern "net.acks"
let sid_dup_suppressed = Stats.intern "net.dup_suppressed"
let sid_giveups = Stats.intern "net.giveups"
let sid_acks_piggybacked = Stats.intern "net.acks.piggybacked"
let sid_acks_cumulative = Stats.intern "net.acks.cumulative"
let fam_retrans_link = Stats.fam "net.retransmits.by_link"

(* Size of an ACK on the wire (sequence number + channel tag). *)
let ack_bytes = 8

type inflight = {
  i_seq : int;
  i_bytes : int;
  i_handler : time:float -> unit;
  mutable acked : bool;
  mutable attempts : int; (* transmissions so far, initial send included *)
  mutable rto : float; (* timeout armed after the latest transmission *)
}

type chan = {
  c_src : int;
  c_dst : int;
  mutable snext : int; (* sender: next sequence number *)
  inflight : (int, inflight) Hashtbl.t;
  mutable rnext : int; (* receiver: next sequence to release *)
  rbuf : (int, time:float -> unit) Hashtbl.t; (* early arrivals, by seq *)
  mutable ack_owed : inflight list; (* receiver: ACKs not yet delivered *)
  mutable ack_timer : bool; (* delayed-ACK timer armed *)
}

type t = {
  am : Am.t;
  nprocs : int;
  rto : float;
  backoff : float;
  max_retries : int;
  ack_delay : float; (* quiet-link delayed-ACK timer *)
  chans : (int, chan) Hashtbl.t; (* src * nprocs + dst, created on first
                                    use — faultless runs, which bypass the
                                    channel machinery entirely, never
                                    materialize any; faulty runs pay for
                                    the links actually exercised instead of
                                    an eager nprocs² table *)
}

let default_rto = 4000.
let default_backoff = 2.
let default_max_retries = 20
let default_ack_delay = 400.

let create ?(rto = default_rto) ?(backoff = default_backoff)
    ?(max_retries = default_max_retries) ?(ack_delay = default_ack_delay) am =
  if not (Float.is_finite rto) || rto <= 0. then
    invalid_arg "Reliable.create: rto must be positive";
  if not (Float.is_finite backoff) || backoff < 1. then
    invalid_arg "Reliable.create: backoff must be >= 1";
  if max_retries < 0 then invalid_arg "Reliable.create: negative max_retries";
  if not (Float.is_finite ack_delay) || ack_delay <= 0. then
    invalid_arg "Reliable.create: ack_delay must be positive";
  let n = Machine.nprocs (Am.machine am) in
  {
    am;
    nprocs = n;
    rto;
    backoff;
    max_retries;
    ack_delay;
    chans = Hashtbl.create 64;
  }

let am t = t.am
let machine t = Am.machine t.am
let cost t = Am.cost t.am

let channel t ~src ~dst =
  let ix = (src * t.nprocs) + dst in
  match Hashtbl.find_opt t.chans ix with
  | Some ch -> ch
  | None ->
      let ch =
        {
          c_src = src;
          c_dst = dst;
          snext = 0;
          inflight = Hashtbl.create 8;
          rnext = 0;
          rbuf = Hashtbl.create 8;
          ack_owed = [];
          ack_timer = false;
        }
      in
      Hashtbl.add t.chans ix ch;
      ch

(* The already-materialized reverse channel, if any: data we send dst-ward
   can carry the ACKs we owe for data that arrived from dst. *)
let rev_channel t ch =
  Hashtbl.find_opt t.chans ((ch.c_dst * t.nprocs) + ch.c_src)

(* Unacked messages across all channels (a diagnosis aid: nonzero after a
   run means senders gave up — see the deadlock report in Machine.run). *)
let pending t =
  Hashtbl.fold (fun _ ch acc -> acc + Hashtbl.length ch.inflight) t.chans 0

(* Settle delivered ACK records at the original sender: mark each in-flight
   entry acked and drop it from the channel's table (idempotent — a record
   may travel more than once when its carrier is duplicated or when a
   retransmitted copy regenerates it). *)
let settle ch ms =
  List.iter
    (fun m ->
      if not m.acked then begin
        m.acked <- true;
        Hashtbl.remove ch.inflight m.i_seq
      end)
    ms

(* Delayed-ACK timer body: one dedicated cumulative ACK message settles
   every ACK still owed on the channel (quiet reverse link — nothing came
   by to piggyback on). *)
let flush_acks t ch ~now =
  ch.ack_timer <- false;
  match ch.ack_owed with
  | [] -> () (* everything piggybacked in the meantime *)
  | ms ->
      ch.ack_owed <- [];
      (match ms with
      | _ :: _ :: _ ->
          Stats.add_id
            (Machine.stats (Am.machine t.am))
            sid_acks_cumulative
            (float_of_int (List.length ms - 1))
      | _ -> ());
      Am.send t.am ~now ~src:ch.c_dst ~dst:ch.c_src ~bytes:ack_bytes
        (fun ~time:_ -> settle ch ms)

(* Receiver side: record the ACK owed for this copy (the delayed timer or a
   reverse-link carrier will deliver it), then release handlers in sequence
   order. *)
let on_data t ch (m : inflight) ~time =
  let stats = Machine.stats (Am.machine t.am) in
  Stats.incr_id stats sid_acks;
  ch.ack_owed <- m :: ch.ack_owed;
  if not ch.ack_timer then begin
    ch.ack_timer <- true;
    let at = time +. t.ack_delay in
    Machine.schedule (Am.machine t.am) ~time:at (fun () ->
        flush_acks t ch ~now:at)
  end;
  if m.i_seq < ch.rnext || Hashtbl.mem ch.rbuf m.i_seq then
    Stats.incr_id stats sid_dup_suppressed
  else begin
    Hashtbl.add ch.rbuf m.i_seq m.i_handler;
    let rec release () =
      match Hashtbl.find_opt ch.rbuf ch.rnext with
      | None -> ()
      | Some h ->
          Hashtbl.remove ch.rbuf ch.rnext;
          ch.rnext <- ch.rnext + 1;
          h ~time;
          release ()
    in
    release ()
  end

let transmit t ch m ~now =
  (* Piggyback every ACK owed on the reverse link onto this data message:
     ack_bytes of header, no extra message. Drawn fresh per transmission,
     so a retransmitted carrier picks up whatever is owed now. *)
  match rev_channel t ch with
  | Some r when r.ack_owed <> [] ->
      let ms = r.ack_owed in
      r.ack_owed <- [];
      Stats.add_id
        (Machine.stats (Am.machine t.am))
        sid_acks_piggybacked
        (float_of_int (List.length ms));
      (match Machine.trace (Am.machine t.am) with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"ack_piggyback" ~cat:"net" ~tid:ch.c_src
            ~ts:now
            ~args:[ ("dst", ch.c_dst); ("acks", List.length ms) ]
            ());
      Am.send t.am ~now ~src:ch.c_src ~dst:ch.c_dst
        ~bytes:(m.i_bytes + ack_bytes) (fun ~time ->
          settle r ms;
          on_data t ch m ~time)
  | _ ->
      Am.send t.am ~now ~src:ch.c_src ~dst:ch.c_dst ~bytes:m.i_bytes
        (fun ~time -> on_data t ch m ~time)

(* Arm the retransmit timer for the latest transmission. The event cannot
   be cancelled, so an already-ACKed message just lets it fire as a no-op;
   otherwise the timer retransmits, doubles the timeout and re-arms, until
   [max_retries] retransmissions have failed — then it abandons the message
   (counted in net.giveups) and the blocked requester shows up, with its
   clock, in Machine.run's deadlock report. *)
let rec arm t ch m ~at =
  Machine.schedule (Am.machine t.am) ~time:at (fun () ->
      if not m.acked then begin
        let stats = Machine.stats (Am.machine t.am) in
        Stats.incr_id stats sid_timeouts;
        if m.attempts - 1 >= t.max_retries then
          Stats.incr_id stats sid_giveups
        else begin
          m.attempts <- m.attempts + 1;
          Stats.incr_id stats sid_retransmits;
          (if t.nprocs <= Am.dense_links_limit then Stats.incr_dim
           else Stats.incr_dim_sparse)
            stats fam_retrans_link
            ((ch.c_src * t.nprocs) + ch.c_dst);
          (match Machine.trace (Am.machine t.am) with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"retransmit" ~cat:"net" ~tid:ch.c_src
                ~ts:at
                ~args:
                  [
                    ("dst", ch.c_dst); ("seq", m.i_seq); ("attempt", m.attempts);
                  ]
                ());
          transmit t ch m ~now:at;
          m.rto <- m.rto *. t.backoff;
          arm t ch m ~at:(at +. m.rto)
        end
      end)

let send t ~now ~src ~dst ~bytes handler =
  match Am.faults t.am with
  | None -> Am.send t.am ~now ~src ~dst ~bytes handler
  | Some _ ->
      if bytes < 0 then invalid_arg "Reliable.send: negative size";
      if src < 0 || src >= t.nprocs then invalid_arg "Reliable.send: bad src";
      if dst < 0 || dst >= t.nprocs then invalid_arg "Reliable.send: bad dst";
      let ch = channel t ~src ~dst in
      let m =
        {
          i_seq = ch.snext;
          i_bytes = bytes;
          i_handler = handler;
          acked = false;
          attempts = 1;
          rto = t.rto;
        }
      in
      ch.snext <- ch.snext + 1;
      Hashtbl.add ch.inflight m.i_seq m;
      transmit t ch m ~now;
      arm t ch m ~at:(now +. m.rto)

let send_from t (p : Machine.proc) ~dst ~bytes handler =
  Machine.advance_as p Ace_engine.Crit.k_send_ovh
    (Am.cost t.am).Cost_model.am_send_overhead;
  send t ~now:p.Machine.clock ~src:p.Machine.id ~dst ~bytes handler

let part = Am.part
let batching t = Am.batching t.am

(* Vectored send: coalescing (and its accounting) happens in [Am.coalesce];
   on a faulty network each destination group then travels as one reliably
   sequenced message, so a dropped vector is retransmitted whole. *)
let send_multi t ~now ~src parts =
  match Am.faults t.am with
  | None -> Am.send_multi t.am ~now ~src parts
  | Some _ ->
      List.iter
        (fun (dst, bytes, handler) -> send t ~now ~src ~dst ~bytes handler)
        (Am.coalesce t.am ~now ~src parts)

let send_multi_from t (p : Machine.proc) parts =
  if parts <> [] then begin
    Machine.advance_as p Ace_engine.Crit.k_send_ovh
      (Am.cost t.am).Cost_model.am_send_overhead;
    send_multi t ~now:p.Machine.clock ~src:p.Machine.id parts
  end

let rpc t p ~dst ~bytes handler =
  let reply = Ivar.create () in
  send_from t p ~dst ~bytes (fun ~time -> handler reply ~time);
  Machine.await p reply
