(* The differential protocol fuzzer: run one Prog under every admissible
   registered protocol (plus the CRL baseline backend) across a grid of
   schedule tie-breaks, fault specs and batching modes, and demand that
   every run produces the same final heap as the sequentially consistent
   reference run — and, for race-free programs, that the coherence oracle
   finds no stale read on any run. A failing cell is shrunk to a minimal
   program and packaged as a replayable Repro. *)

module Protocol = Ace_runtime.Protocol
module Runtime = Ace_runtime.Runtime
module Event_queue = Ace_engine.Event_queue
module Machine = Ace_engine.Machine
module Stats = Ace_engine.Stats
module Faults = Ace_net.Faults
module Cost_model = Ace_net.Cost_model

(* A deliberately broken protocol for exercising the kit itself: dynamic
   update with the propagation dropped on the floor. A non-home writer
   updates only its local copy; the master and every consumer copy go
   stale, which the differential heap check (and, mid-run, the oracle)
   must catch. Registered only on request — never by default. *)
let broken_protocol =
  {
    Ace_protocols.Proto_dyn_update.protocol with
    Protocol.name = "BROKEN_DYN_UPDATE";
    end_write =
      (fun ctx _meta ->
        Protocol.charge ctx (Protocol.cost ctx).Cost_model.end_op);
  }

(* One cell of the conformance grid. [proto] is a registered protocol
   name, or "CRL" for the fixed-protocol baseline backend. [engine] is
   normally [Seq_engine]; the engine-differential mode pins [Par_engine n]
   to fuzz the sharded run loop against the sequential one. *)
type cell = {
  proto : string;
  policy : Event_queue.policy;
  faults : Faults.spec option;
  batch : bool;
  engine : Machine.engine;
}

let cell_to_string c =
  Printf.sprintf "%s / %s%s%s%s" c.proto
    (Event_queue.policy_to_string c.policy)
    (match c.faults with
    | None -> ""
    | Some s ->
        Printf.sprintf " / faults(drop=%g,dup=%g,jitter=%g,seed=%d)" s.drop
          s.dup s.jitter s.seed)
    (if c.batch then " / batch" else "")
    (match c.engine with
    | Machine.Seq_engine -> ""
    | e -> " / " ^ Machine.engine_to_string e)

type failure = { cell : cell; reason : string }

let attach_faults am = function
  | Some spec when Faults.enabled spec ->
      Ace_net.Am.set_faults am (Some (Faults.make spec))
  | Some _ | None -> ()

(* How many parallel cells conservatively fell back to a sequential rerun
   (causality check or unsupported operation mid-run — e.g. a generated
   Ace_ChangeProtocol after the shards split). Those cells pass trivially,
   so the fuzzer reports the count to keep the coverage honest. *)
let par_fallback_count = ref 0
let par_fallbacks () = !par_fallback_count

(* Run one program in one cell; returns node 0's final heap plus the
   delivered active-message count and the final simulated time — the three
   outputs the engine differential compares. [oracle], when given,
   observes every access section on every node (it is not shard-safe, so
   engine-differential cells never carry it). A parallel cell that trips
   the engine's conservative checks is transparently re-run sequentially,
   exactly like the production driver. *)
let run_cell_full ?oracle (p : Prog.t) (c : cell) :
    float array array * float * float =
  let attempt engine =
    let heap = ref [||] in
    let wrap facade =
      match oracle with None -> facade | Some o -> Observe.wrap o facade
    in
    if c.proto = "CRL" then begin
      let sys =
        Ace_crl.Crl.create ~policy:c.policy ~engine ~nprocs:p.Prog.nprocs ()
      in
      attach_faults (Ace_crl.Crl.am sys) c.faults;
      if c.batch then Ace_net.Am.set_batching (Ace_crl.Crl.am sys) true;
      let facade =
        wrap
          (module Ace_crl.Crl.Api : Ace_region.Dsm_intf.S
            with type ctx = Ace_crl.Crl.ctx
             and type h = Ace_region.Store.meta)
      in
      Ace_crl.Crl.run sys (fun ctx ->
          match Prog.interp facade ~flush_to:"SC" p ctx with
          | Some h -> heap := h
          | None -> ());
      let m = Ace_crl.Crl.machine sys in
      ( !heap,
        Stats.get (Machine.stats m) "net.messages",
        Ace_crl.Crl.time_seconds sys )
    end
    else begin
      let rt =
        Runtime.create ~policy:c.policy ~engine ~nprocs:p.Prog.nprocs ()
      in
      attach_faults (Runtime.am rt) c.faults;
      if c.batch then Ace_net.Am.set_batching (Runtime.am rt) true;
      Ace_protocols.Proto_lib.register_all rt;
      Ace_combinator.Library.register_all rt;
      if c.proto = broken_protocol.Protocol.name then
        Runtime.register rt broken_protocol;
      let dsl_broken = Ace_combinator.Library.broken.Ace_combinator.Library.proto in
      if c.proto = dsl_broken.Protocol.name then Runtime.register rt dsl_broken;
      ignore (Runtime.new_space rt c.proto);
      let facade =
        wrap
          (module Ace_runtime.Ops.Api : Ace_region.Dsm_intf.S
            with type ctx = Protocol.ctx
             and type h = Ace_region.Store.meta)
      in
      Runtime.run rt (fun ctx ->
          match Prog.interp facade ~flush_to:c.proto p ctx with
          | Some h -> heap := h
          | None -> ());
      let m = Runtime.machine rt in
      ( !heap,
        Stats.get (Machine.stats m) "net.messages",
        Runtime.time_seconds rt )
    end
  in
  try attempt c.engine
  with e -> (
    match Machine.par_fallback_reason e with
    | Some _ when c.engine <> Machine.Seq_engine ->
        incr par_fallback_count;
        attempt Machine.Seq_engine
    | _ -> raise e)

let run_cell ?oracle p c =
  let heap, _, _ = run_cell_full ?oracle p c in
  heap

let heap_mismatch ~got ~want =
  if Array.length got <> Array.length want then
    Some
      (Printf.sprintf "heap shape differs: %d regions vs %d"
         (Array.length got) (Array.length want))
  else begin
    let msg = ref None in
    Array.iteri
      (fun r g ->
        if !msg = None then
          Array.iteri
            (fun j v ->
              if !msg = None && v <> want.(r).(j) then
                msg :=
                  Some
                    (Printf.sprintf
                       "heap mismatch: region %d slot %d: got %.17g, \
                        reference %.17g"
                       r j v want.(r).(j)))
            g)
      got;
    !msg
  end

(* The protocols the kit checks by default: everything in the registry
   (combinator-built ones included) plus the CRL baseline. *)
let default_protocols =
  ("CRL" :: "SC" :: "NULL" :: Ace_protocols.Proto_lib.names)
  @ Ace_combinator.Library.names

let reference_cell =
  {
    proto = "SC";
    policy = Event_queue.Fifo;
    faults = None;
    batch = false;
    engine = Machine.Seq_engine;
  }

(* Check one program over a grid. The reference heap comes from SC under
   FIFO with no faults and no batching; each schedule index is then paired
   round-robin with a protocol, a fault spec and a batching mode, so
   [schedules] runs cover every admissible protocol several times without
   a full cross product. Race-free programs carry the oracle on every run. *)
let check_prog ?(protocols = default_protocols) ~schedules ~fault_specs
    ~batch_modes (p : Prog.t) : failure option =
  Prog.validate p;
  let f = Prog.features p in
  let with_oracle = not f.Prog.incr in
  let protos = List.filter (Prog.admits f) protocols in
  let run c =
    let oracle =
      if with_oracle then Some (Oracle.create ~nprocs:p.Prog.nprocs ())
      else None
    in
    match run_cell ?oracle p c with
    | exception e ->
        Error
          { cell = c; reason = "crashed: " ^ Printexc.to_string e }
    | heap -> (
        match Option.map Oracle.check oracle with
        | Some (Some v) ->
            Error
              {
                cell = c;
                reason = "oracle: " ^ Oracle.violation_to_string v;
              }
        | _ -> Ok heap)
  in
  let reference =
    (* Racy-by-design increment programs have no trustworthy protocol
       reference (invalidation protocols may legally lose concurrent RMW
       updates); their exact final heap is predictable instead. *)
    if f.Prog.incr then Ok (Prog.predicted_counter_heap p)
    else match run reference_cell with Error fl -> Error fl | Ok h -> Ok h
  in
  match reference with
  | Error fl -> Some fl
  | Ok reference ->
      let protos = Array.of_list protos in
      let faults = Array.of_list (None :: List.map Option.some fault_specs) in
      let batches = Array.of_list batch_modes in
      let rec go i =
        if i >= schedules || Array.length protos = 0 then None
        else begin
          let c =
            {
              proto = protos.(i mod Array.length protos);
              policy = Schedule.of_index i;
              faults = faults.(i mod Array.length faults);
              batch = batches.(i mod Array.length batches);
              engine = Machine.Seq_engine;
            }
          in
          match run c with
          | Error fl -> Some fl
          | Ok heap -> (
              match heap_mismatch ~got:heap ~want:reference with
              | Some m -> Some { cell = c; reason = m }
              | None -> go (i + 1))
        end
      in
      go 0

(* Greedy shrink: keep applying the first structural cut that still fails.
   Re-checking is restricted to the protocol that failed (plus the
   reference), which keeps shrinking fast and the counterexample focused. *)
let shrink ~schedules ~fault_specs ~batch_modes p (fl : failure) =
  let check q =
    check_prog ~protocols:[ fl.cell.proto ] ~schedules ~fault_specs
      ~batch_modes q
  in
  let rec go p fl =
    let next =
      List.find_map
        (fun q ->
          match check q with Some flq -> Some (q, flq) | None -> None)
        (Prog.shrink_candidates p)
    in
    match next with Some (q, flq) -> go q flq | None -> (p, fl)
  in
  go p fl

(* The engine differential: same program, same cell, sequential vs
   parallel run loop — final heap, delivered message count and final
   simulated time must all match bit for bit. No oracle (the observer is
   not shard-safe) and no faults (the production driver gates faulty runs
   to the sequential engine anyway); batching is exercised in both modes. *)
let check_cell_engine (p : Prog.t) (c : cell) : failure option =
  let seq = { c with engine = Machine.Seq_engine } in
  match run_cell_full p seq with
  | exception e ->
      Some { cell = seq; reason = "crashed: " ^ Printexc.to_string e }
  | sh, sm, ss -> (
      match run_cell_full p c with
      | exception e ->
          Some { cell = c; reason = "crashed: " ^ Printexc.to_string e }
      | ph, pm, ps -> (
          match heap_mismatch ~got:ph ~want:sh with
          | Some m -> Some { cell = c; reason = "engine: " ^ m }
          | None ->
              if pm <> sm then
                Some
                  {
                    cell = c;
                    reason =
                      Printf.sprintf
                        "engine: message counts differ: par %g vs seq %g" pm
                        sm;
                  }
              else if ps <> ss then
                Some
                  {
                    cell = c;
                    reason =
                      Printf.sprintf
                        "engine: simulated time differs: par %.17g vs seq \
                         %.17g"
                        ps ss;
                  }
              else None))

(* Engine-differential sweep of one program: every admissible protocol
   (batched and unbatched) under FIFO, sequential vs [engine]. *)
let check_prog_engine ?(protocols = default_protocols) ~engine ~batch_modes
    (p : Prog.t) : failure option =
  Prog.validate p;
  let f = Prog.features p in
  let protos = List.filter (Prog.admits f) protocols in
  List.find_map
    (fun proto ->
      List.find_map
        (fun batch ->
          check_cell_engine p
            { proto; policy = Event_queue.Fifo; faults = None; batch; engine })
        batch_modes)
    protos

(* Greedy shrink for an engine divergence, pinned to the failing
   protocol and batch mode. *)
let shrink_engine ~engine p (fl : failure) =
  let check q =
    check_prog_engine ~protocols:[ fl.cell.proto ] ~engine
      ~batch_modes:[ fl.cell.batch ] q
  in
  let rec go p fl =
    let next =
      List.find_map
        (fun q ->
          match check q with Some flq -> Some (q, flq) | None -> None)
        (Prog.shrink_candidates p)
    in
    match next with Some (q, flq) -> go q flq | None -> (p, fl)
  in
  go p fl

type report = {
  programs : int;
  counterexample : (Prog.t * failure) option; (* already shrunk *)
}

(* The fuzz loop: generate [count] programs from [seed], check each over
   the grid, and shrink the first failure. Deterministic per seed. *)
let fuzz ?protocols ?shape ?nprocs ~seed ~count ~schedules ~fault_specs
    ~batch_modes ?(log = fun _ -> ()) () : report =
  let st = Random.State.make [| seed |] in
  let rec go i =
    if i >= count then { programs = i; counterexample = None }
    else begin
      let p = Prog.generate ?shape ?nprocs () st in
      match check_prog ?protocols ~schedules ~fault_specs ~batch_modes p with
      | None ->
          if (i + 1) mod 25 = 0 then
            log (Printf.sprintf "%d/%d programs clean" (i + 1) count);
          go (i + 1)
      | Some fl ->
          log
            (Printf.sprintf "program %d failed (%s); shrinking" i
               (cell_to_string fl.cell));
          let pmin, flmin = shrink ~schedules ~fault_specs ~batch_modes p fl in
          { programs = i + 1; counterexample = Some (pmin, flmin) }
    end
  in
  go 0

(* The engine-differential fuzz loop: generate [count] programs from
   [seed] — the same stream the conformance fuzz draws for that seed —
   and demand each one's parallel run is bit-identical to its sequential
   run on every admissible protocol, batched and unbatched. Logs how many
   parallel cells conservatively fell back (those pass trivially). *)
let fuzz_engine ?protocols ?shape ?nprocs ~seed ~count ~engine ~batch_modes
    ?(log = fun _ -> ()) () : report =
  let fallbacks0 = par_fallbacks () in
  let st = Random.State.make [| seed |] in
  let rec go i =
    if i >= count then begin
      log
        (Printf.sprintf "%d parallel cells re-run sequentially (conservative \
                         fallback)"
           (par_fallbacks () - fallbacks0));
      { programs = i; counterexample = None }
    end
    else begin
      let p = Prog.generate ?shape ?nprocs () st in
      match check_prog_engine ?protocols ~engine ~batch_modes p with
      | None ->
          if (i + 1) mod 25 = 0 then
            log (Printf.sprintf "%d/%d programs identical" (i + 1) count);
          go (i + 1)
      | Some fl ->
          log
            (Printf.sprintf "program %d diverged (%s); shrinking" i
               (cell_to_string fl.cell));
          let pmin, flmin = shrink_engine ~engine p fl in
          { programs = i + 1; counterexample = Some (pmin, flmin) }
    end
  in
  go 0

let to_repro (p, (fl : failure)) =
  {
    Repro.proto = fl.cell.proto;
    policy = fl.cell.policy;
    faults = fl.cell.faults;
    batch = fl.cell.batch;
    engine = fl.cell.engine;
    reason = fl.reason;
    prog = p;
  }

(* Re-run a saved counterexample: the pinned cell against a fresh
   reference. An engine-differential repro (engine "par:N") is replayed
   as its own seq-vs-par comparison instead. *)
let replay (r : Repro.t) : failure option =
  let cell =
    {
      proto = r.Repro.proto;
      policy = r.Repro.policy;
      faults = r.Repro.faults;
      batch = r.Repro.batch;
      engine = r.Repro.engine;
    }
  in
  let p = r.Repro.prog in
  if cell.engine <> Machine.Seq_engine then check_cell_engine p cell
  else
  let f = Prog.features p in
  let with_oracle = not f.Prog.incr in
  let run c =
    let oracle =
      if with_oracle then Some (Oracle.create ~nprocs:p.Prog.nprocs ())
      else None
    in
    match run_cell ?oracle p c with
    | exception e ->
        Error { cell = c; reason = "crashed: " ^ Printexc.to_string e }
    | heap -> (
        match Option.map Oracle.check oracle with
        | Some (Some v) ->
            Error
              { cell = c; reason = "oracle: " ^ Oracle.violation_to_string v }
        | _ -> Ok heap)
  in
  let reference =
    if f.Prog.incr then Ok (Prog.predicted_counter_heap p)
    else match run reference_cell with Error fl -> Error fl | Ok h -> Ok h
  in
  match reference with
  | Error fl -> Some fl
  | Ok reference -> (
      match run cell with
      | Error fl -> Some fl
      | Ok heap -> (
          match heap_mismatch ~got:heap ~want:reference with
          | Some m -> Some { cell; reason = m }
          | None -> None))
