(* The differential protocol fuzzer: run one Prog under every admissible
   registered protocol (plus the CRL baseline backend) across a grid of
   schedule tie-breaks, fault specs and batching modes, and demand that
   every run produces the same final heap as the sequentially consistent
   reference run — and, for race-free programs, that the coherence oracle
   finds no stale read on any run. A failing cell is shrunk to a minimal
   program and packaged as a replayable Repro. *)

module Protocol = Ace_runtime.Protocol
module Runtime = Ace_runtime.Runtime
module Event_queue = Ace_engine.Event_queue
module Faults = Ace_net.Faults
module Cost_model = Ace_net.Cost_model

(* A deliberately broken protocol for exercising the kit itself: dynamic
   update with the propagation dropped on the floor. A non-home writer
   updates only its local copy; the master and every consumer copy go
   stale, which the differential heap check (and, mid-run, the oracle)
   must catch. Registered only on request — never by default. *)
let broken_protocol =
  {
    Ace_protocols.Proto_dyn_update.protocol with
    Protocol.name = "BROKEN_DYN_UPDATE";
    end_write =
      (fun ctx _meta ->
        Protocol.charge ctx (Protocol.cost ctx).Cost_model.end_op);
  }

(* One cell of the conformance grid. [proto] is a registered protocol
   name, or "CRL" for the fixed-protocol baseline backend. *)
type cell = {
  proto : string;
  policy : Event_queue.policy;
  faults : Faults.spec option;
  batch : bool;
}

let cell_to_string c =
  Printf.sprintf "%s / %s%s%s" c.proto
    (Event_queue.policy_to_string c.policy)
    (match c.faults with
    | None -> ""
    | Some s ->
        Printf.sprintf " / faults(drop=%g,dup=%g,jitter=%g,seed=%d)" s.drop
          s.dup s.jitter s.seed)
    (if c.batch then " / batch" else "")

type failure = { cell : cell; reason : string }

let attach_faults am = function
  | Some spec when Faults.enabled spec ->
      Ace_net.Am.set_faults am (Some (Faults.make spec))
  | Some _ | None -> ()

(* Run one program in one cell; returns node 0's final heap. [oracle],
   when given, observes every access section on every node. *)
let run_cell ?oracle (p : Prog.t) (c : cell) : float array array =
  let heap = ref [||] in
  let wrap facade =
    match oracle with None -> facade | Some o -> Observe.wrap o facade
  in
  if c.proto = "CRL" then begin
    let sys = Ace_crl.Crl.create ~policy:c.policy ~nprocs:p.Prog.nprocs () in
    attach_faults (Ace_crl.Crl.am sys) c.faults;
    if c.batch then Ace_net.Am.set_batching (Ace_crl.Crl.am sys) true;
    let facade =
      wrap
        (module Ace_crl.Crl.Api : Ace_region.Dsm_intf.S
          with type ctx = Ace_crl.Crl.ctx
           and type h = Ace_region.Store.meta)
    in
    Ace_crl.Crl.run sys (fun ctx ->
        match Prog.interp facade ~flush_to:"SC" p ctx with
        | Some h -> heap := h
        | None -> ())
  end
  else begin
    let rt = Runtime.create ~policy:c.policy ~nprocs:p.Prog.nprocs () in
    attach_faults (Runtime.am rt) c.faults;
    if c.batch then Ace_net.Am.set_batching (Runtime.am rt) true;
    Ace_protocols.Proto_lib.register_all rt;
    if c.proto = broken_protocol.Protocol.name then
      Runtime.register rt broken_protocol;
    ignore (Runtime.new_space rt c.proto);
    let facade =
      wrap
        (module Ace_runtime.Ops.Api : Ace_region.Dsm_intf.S
          with type ctx = Protocol.ctx
           and type h = Ace_region.Store.meta)
    in
    Runtime.run rt (fun ctx ->
        match Prog.interp facade ~flush_to:c.proto p ctx with
        | Some h -> heap := h
        | None -> ())
  end;
  !heap

let heap_mismatch ~got ~want =
  if Array.length got <> Array.length want then
    Some
      (Printf.sprintf "heap shape differs: %d regions vs %d"
         (Array.length got) (Array.length want))
  else begin
    let msg = ref None in
    Array.iteri
      (fun r g ->
        if !msg = None then
          Array.iteri
            (fun j v ->
              if !msg = None && v <> want.(r).(j) then
                msg :=
                  Some
                    (Printf.sprintf
                       "heap mismatch: region %d slot %d: got %.17g, \
                        reference %.17g"
                       r j v want.(r).(j)))
            g)
      got;
    !msg
  end

(* The protocols the kit checks by default: everything in the registry
   plus the CRL baseline. *)
let default_protocols =
  "CRL" :: "SC" :: "NULL" :: Ace_protocols.Proto_lib.names

let reference_cell =
  { proto = "SC"; policy = Event_queue.Fifo; faults = None; batch = false }

(* Check one program over a grid. The reference heap comes from SC under
   FIFO with no faults and no batching; each schedule index is then paired
   round-robin with a protocol, a fault spec and a batching mode, so
   [schedules] runs cover every admissible protocol several times without
   a full cross product. Race-free programs carry the oracle on every run. *)
let check_prog ?(protocols = default_protocols) ~schedules ~fault_specs
    ~batch_modes (p : Prog.t) : failure option =
  Prog.validate p;
  let f = Prog.features p in
  let with_oracle = not f.Prog.incr in
  let protos = List.filter (Prog.admits f) protocols in
  let run c =
    let oracle =
      if with_oracle then Some (Oracle.create ~nprocs:p.Prog.nprocs ())
      else None
    in
    match run_cell ?oracle p c with
    | exception e ->
        Error
          { cell = c; reason = "crashed: " ^ Printexc.to_string e }
    | heap -> (
        match Option.map Oracle.check oracle with
        | Some (Some v) ->
            Error
              {
                cell = c;
                reason = "oracle: " ^ Oracle.violation_to_string v;
              }
        | _ -> Ok heap)
  in
  let reference =
    (* Racy-by-design increment programs have no trustworthy protocol
       reference (invalidation protocols may legally lose concurrent RMW
       updates); their exact final heap is predictable instead. *)
    if f.Prog.incr then Ok (Prog.predicted_counter_heap p)
    else match run reference_cell with Error fl -> Error fl | Ok h -> Ok h
  in
  match reference with
  | Error fl -> Some fl
  | Ok reference ->
      let protos = Array.of_list protos in
      let faults = Array.of_list (None :: List.map Option.some fault_specs) in
      let batches = Array.of_list batch_modes in
      let rec go i =
        if i >= schedules || Array.length protos = 0 then None
        else begin
          let c =
            {
              proto = protos.(i mod Array.length protos);
              policy = Schedule.of_index i;
              faults = faults.(i mod Array.length faults);
              batch = batches.(i mod Array.length batches);
            }
          in
          match run c with
          | Error fl -> Some fl
          | Ok heap -> (
              match heap_mismatch ~got:heap ~want:reference with
              | Some m -> Some { cell = c; reason = m }
              | None -> go (i + 1))
        end
      in
      go 0

(* Greedy shrink: keep applying the first structural cut that still fails.
   Re-checking is restricted to the protocol that failed (plus the
   reference), which keeps shrinking fast and the counterexample focused. *)
let shrink ~schedules ~fault_specs ~batch_modes p (fl : failure) =
  let check q =
    check_prog ~protocols:[ fl.cell.proto ] ~schedules ~fault_specs
      ~batch_modes q
  in
  let rec go p fl =
    let next =
      List.find_map
        (fun q ->
          match check q with Some flq -> Some (q, flq) | None -> None)
        (Prog.shrink_candidates p)
    in
    match next with Some (q, flq) -> go q flq | None -> (p, fl)
  in
  go p fl

type report = {
  programs : int;
  counterexample : (Prog.t * failure) option; (* already shrunk *)
}

(* The fuzz loop: generate [count] programs from [seed], check each over
   the grid, and shrink the first failure. Deterministic per seed. *)
let fuzz ?protocols ?shape ?nprocs ~seed ~count ~schedules ~fault_specs
    ~batch_modes ?(log = fun _ -> ()) () : report =
  let st = Random.State.make [| seed |] in
  let rec go i =
    if i >= count then { programs = i; counterexample = None }
    else begin
      let p = Prog.generate ?shape ?nprocs () st in
      match check_prog ?protocols ~schedules ~fault_specs ~batch_modes p with
      | None ->
          if (i + 1) mod 25 = 0 then
            log (Printf.sprintf "%d/%d programs clean" (i + 1) count);
          go (i + 1)
      | Some fl ->
          log
            (Printf.sprintf "program %d failed (%s); shrinking" i
               (cell_to_string fl.cell));
          let pmin, flmin = shrink ~schedules ~fault_specs ~batch_modes p fl in
          { programs = i + 1; counterexample = Some (pmin, flmin) }
    end
  in
  go 0

let to_repro (p, (fl : failure)) =
  {
    Repro.proto = fl.cell.proto;
    policy = fl.cell.policy;
    faults = fl.cell.faults;
    batch = fl.cell.batch;
    reason = fl.reason;
    prog = p;
  }

(* Re-run a saved counterexample: the pinned cell against a fresh
   reference. *)
let replay (r : Repro.t) : failure option =
  let cell =
    {
      proto = r.Repro.proto;
      policy = r.Repro.policy;
      faults = r.Repro.faults;
      batch = r.Repro.batch;
    }
  in
  let p = r.Repro.prog in
  let f = Prog.features p in
  let with_oracle = not f.Prog.incr in
  let run c =
    let oracle =
      if with_oracle then Some (Oracle.create ~nprocs:p.Prog.nprocs ())
      else None
    in
    match run_cell ?oracle p c with
    | exception e ->
        Error { cell = c; reason = "crashed: " ^ Printexc.to_string e }
    | heap -> (
        match Option.map Oracle.check oracle with
        | Some (Some v) ->
            Error
              { cell = c; reason = "oracle: " ^ Oracle.violation_to_string v }
        | _ -> Ok heap)
  in
  let reference =
    if f.Prog.incr then Ok (Prog.predicted_counter_heap p)
    else match run reference_cell with Error fl -> Error fl | Ok h -> Ok h
  in
  match reference with
  | Error fl -> Some fl
  | Ok reference -> (
      match run cell with
      | Error fl -> Some fl
      | Ok heap -> (
          match heap_mismatch ~got:heap ~want:reference with
          | Some m -> Some { cell; reason = m }
          | None -> None))
