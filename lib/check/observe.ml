(* Attach the coherence oracle to a backend: a facade transformer in the
   sense of Driver's [wrap] — the application (or fuzz program) is compiled
   against the returned module, which records one observation per completed
   access section and delegates everything to the backend untouched.
   Recording never advances the virtual clock, so the simulated output of
   an observed run is bit-identical to an unobserved one; when no wrapper
   is installed the backend is used directly and the oracle costs nothing.

   Epochs advance at [barrier] and at [change_protocol] (an Ace protocol
   change is a collective with internal barriers; on CRL it is a no-op, so
   programs that synchronize only through [change_protocol] should not be
   observed on that backend — all ours barrier explicitly). *)

module Store = Ace_region.Store

let wrap (type c) (oracle : Oracle.t)
    (module D : Ace_region.Dsm_intf.S
      with type ctx = c
       and type h = Store.meta) :
    (module Ace_region.Dsm_intf.S with type ctx = c and type h = Store.meta) =
  (module struct
    type ctx = c
    type h = Store.meta

    let me = D.me
    let nprocs = D.nprocs
    let alloc = D.alloc
    let rid = D.rid
    let map = D.map
    let unmap = D.unmap
    let data = D.data
    let start_read = D.start_read

    let end_read ctx h =
      Oracle.record_read oracle ~node:(D.me ctx) ~rid:(D.rid h)
        ~value:(Oracle.fingerprint (D.data ctx h));
      D.end_read ctx h

    let start_write = D.start_write

    let end_write ctx h =
      Oracle.record_write oracle ~node:(D.me ctx) ~rid:(D.rid h)
        ~value:(Oracle.fingerprint (D.data ctx h));
      D.end_write ctx h

    let lock ctx h =
      D.lock ctx h;
      Oracle.lock oracle ~node:(D.me ctx) ~rid:(D.rid h)

    let unlock ctx h =
      Oracle.unlock oracle ~node:(D.me ctx) ~rid:(D.rid h);
      D.unlock ctx h

    let barrier ctx ~space =
      D.barrier ctx ~space;
      Oracle.barrier oracle ~node:(D.me ctx)

    let change_protocol ctx ~space name =
      D.change_protocol ctx ~space name;
      Oracle.barrier oracle ~node:(D.me ctx)

    let adapt ctx ~space =
      let switched = D.adapt ctx ~space in
      (* an actual switch is a collective with internal barriers *)
      if switched <> None then Oracle.barrier oracle ~node:(D.me ctx);
      switched

    let work = D.work
    let global_id = D.global_id
    let bcast = D.bcast
    let allgather = D.allgather
  end)
