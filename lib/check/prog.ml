(* Small random SPMD programs over the region-DSM facade — the input
   language of the differential fuzzer.

   A program is a grid of epochs (separated by full-machine barriers) times
   processors, each cell a short list of region operations. The generator
   only emits data-race-free access patterns — per epoch a region is either
   read-only, owned by a single writer, or accessed under its lock — plus a
   deliberately racy Incr shape whose unlocked increments commute exactly
   (values are small integers, so float addition is exact and the final
   heap is schedule-independent even though the interleaving is not).

   Programs round-trip through a textual form (the body of a [.repro]
   file), and every value the fuzzer writes is a small integer so heap
   comparisons across protocols, schedules, fault patterns and batching
   modes are exact float equality, never tolerance. *)

module Gen = QCheck.Gen

type op =
  | Read of int
  | Write of int * float (* fill the region with value, value+1, ... *)
  | Locked_add of int * float (* lock; read slot 0; write back +delta *)
  | Incr of int (* unlocked slot-0 increment by exactly 1.0 *)

type epoch = {
  ops : op list array; (* per proc, program order *)
  flush : bool; (* collective re-[change_protocol] after this epoch *)
  switch : string option;
      (* collective mid-run [change_protocol] to a *different* protocol
         after this epoch's barrier; later epochs run under it until a
         [flush] returns the space to the run's base protocol. Generated
         targets are universal protocols (SC, MIGRATORY) so the program
         stays correct whatever the base protocol admits. *)
}

type t = {
  nprocs : int;
  nregions : int;
  rlen : int;
  homes : int array; (* region index -> home node *)
  epochs : epoch list;
}

let rid_of_op = function
  | Read r | Write (r, _) | Locked_add (r, _) | Incr r -> r

let validate p =
  if p.nprocs < 1 then invalid_arg "Prog: nprocs < 1";
  if p.nregions < 1 then invalid_arg "Prog: nregions < 1";
  if p.rlen < 1 then invalid_arg "Prog: rlen < 1";
  if Array.length p.homes <> p.nregions then invalid_arg "Prog: bad homes";
  Array.iter
    (fun h -> if h < 0 || h >= p.nprocs then invalid_arg "Prog: bad home")
    p.homes;
  List.iter
    (fun e ->
      if Array.length e.ops <> p.nprocs then invalid_arg "Prog: bad epoch";
      (match e.switch with
      | Some "" -> invalid_arg "Prog: empty switch target"
      | Some _ | None -> ());
      Array.iter
        (List.iter (fun op ->
             let r = rid_of_op op in
             if r < 0 || r >= p.nregions then invalid_arg "Prog: bad region"))
        e.ops)
    p.epochs

(* ---------- textual form (the body of a .repro file) ---------- *)

let op_to_string = function
  | Read r -> Printf.sprintf "r%d" r
  | Write (r, v) -> Printf.sprintf "w%d=%.17g" r v
  | Locked_add (r, v) -> Printf.sprintf "l%d+%.17g" r v
  | Incr r -> Printf.sprintf "i%d" r

let op_of_string s =
  let fail () = invalid_arg ("Prog.op_of_string: " ^ s) in
  if s = "" then fail ();
  let body = String.sub s 1 (String.length s - 1) in
  let split c =
    match String.index_opt body c with
    | Some i ->
        ( int_of_string (String.sub body 0 i),
          float_of_string (String.sub body (i + 1) (String.length body - i - 1))
        )
    | None -> fail ()
  in
  match s.[0] with
  | 'r' -> Read (int_of_string body)
  | 'i' -> Incr (int_of_string body)
  | 'w' ->
      let r, v = split '=' in
      Write (r, v)
  | 'l' ->
      let r, v = split '+' in
      Locked_add (r, v)
  | _ -> fail ()

let to_string p =
  let b = Buffer.create 256 in
  Printf.bprintf b "nprocs %d\n" p.nprocs;
  Printf.bprintf b "nregions %d\n" p.nregions;
  Printf.bprintf b "rlen %d\n" p.rlen;
  Printf.bprintf b "homes %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int p.homes)));
  List.iter
    (fun e ->
      Printf.bprintf b "epoch %d %s%s\n"
        (if e.flush then 1 else 0)
        (match e.switch with Some q -> "@" ^ q ^ " " | None -> "")
        (String.concat "|"
           (Array.to_list
              (Array.map
                 (fun ops -> String.concat "," (List.map op_to_string ops))
                 e.ops))))
    p.epochs;
  Buffer.contents b

let of_string s =
  let fail line = invalid_arg ("Prog.of_string: bad line: " ^ line) in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let nprocs = ref 0
  and nregions = ref 0
  and rlen = ref 0
  and homes = ref [||]
  and epochs = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "nprocs"; n ] -> nprocs := int_of_string n
      | [ "nregions"; n ] -> nregions := int_of_string n
      | [ "rlen"; n ] -> rlen := int_of_string n
      | "homes" :: hs ->
          homes := Array.of_list (List.map int_of_string hs)
      | "epoch" :: fl :: rest ->
          let switch, rest =
            match rest with
            | tok :: more when String.length tok > 1 && tok.[0] = '@' ->
                (Some (String.sub tok 1 (String.length tok - 1)), more)
            | _ -> (None, rest)
          in
          let cells = String.concat " " rest in
          let ops =
            String.split_on_char '|' cells
            |> List.map (fun cell ->
                   if cell = "" then []
                   else
                     String.split_on_char ',' cell |> List.map op_of_string)
            |> Array.of_list
          in
          epochs := { ops; flush = int_of_string fl <> 0; switch } :: !epochs
      | _ -> fail line)
    lines;
  let p =
    {
      nprocs = !nprocs;
      nregions = !nregions;
      rlen = !rlen;
      homes = !homes;
      epochs = List.rev !epochs;
    }
  in
  validate p;
  p

(* ---------- access-pattern analysis (protocol applicability) ---------- *)

type features = {
  writes : bool; (* any write at all (plain, locked or incr) *)
  incr : bool;
  locked : bool;
  dyn_ok : bool; (* every written (region, epoch) has a single plain
                    writer and no other node touching it *)
  static_ok : bool; (* per region: one fixed writer, write epochs and
                       (stable-reader) read epochs disjoint *)
  write_once_ok : bool; (* home-only plain writes, all before any remote
                           read *)
  counter_ok : bool; (* the only writes are unlocked +1 increments *)
}

let features p =
  let writes = ref false and incr = ref false and locked = ref false in
  let plain = ref false in
  let dyn_ok = ref true
  and static_ok = ref true
  and write_once_ok = ref true in
  (* per region accumulators for the whole-program shapes *)
  let writer = Array.make p.nregions (-1) in
  let readers_sig = Array.make p.nregions None in
  (* (region, epoch) access sets for this epoch *)
  List.iter
    (fun e ->
      let wr = Array.make p.nregions [] (* plain writers *)
      and rd = Array.make p.nregions [] (* unlocked readers *)
      and lk = Array.make p.nregions [] (* locked accessors *)
      and ic = Array.make p.nregions [] in
      Array.iteri
        (fun proc ops ->
          List.iter
            (fun op ->
              let push a r = if not (List.mem proc a.(r)) then a.(r) <- proc :: a.(r) in
              match op with
              | Read r -> push rd r
              | Write (r, _) ->
                  writes := true;
                  plain := true;
                  push wr r
              | Locked_add (r, _) ->
                  writes := true;
                  locked := true;
                  push lk r
              | Incr r ->
                  writes := true;
                  incr := true;
                  push ic r)
            ops)
        e.ops;
      for r = 0 to p.nregions - 1 do
        let wn = List.length wr.(r)
        and rn = List.length rd.(r)
        and ln = List.length lk.(r)
        and inn = List.length ic.(r) in
        (* DYN_UPDATE: single plain writer per epoch, nobody else in the
           epoch (its single-writer producer/consumer assumption), no
           locked or incr traffic anywhere *)
        if ln > 0 || inn > 0 then dyn_ok := false;
        if wn > 1 then dyn_ok := false;
        if wn = 1 && (rn > 1 || (rn = 1 && rd.(r) <> wr.(r))) then
          dyn_ok := false;
        (* STATIC_UPDATE: one fixed writer over the whole program; write
           epochs carry no readers; read epochs always have the same
           reader set (stable consumers, learned in the first window) *)
        if ln > 0 || inn > 0 then static_ok := false;
        if wn > 0 then begin
          if wn > 1 then static_ok := false
          else begin
            let w = List.hd wr.(r) in
            if writer.(r) >= 0 && writer.(r) <> w then static_ok := false;
            writer.(r) <- w
          end;
          if rn > 0 then static_ok := false
        end
        else if rn > 0 then begin
          let sg = List.sort compare rd.(r) in
          match readers_sig.(r) with
          | None -> readers_sig.(r) <- Some sg
          | Some prev -> if prev <> sg then static_ok := false
        end;
        (* WRITE_ONCE: only the home writes, and every remote read comes
           after the last write epoch — tracked below via epoch indices *)
        if ln > 0 || inn > 0 then write_once_ok := false;
        List.iter
          (fun w -> if w <> p.homes.(r) then write_once_ok := false)
          wr.(r)
      done)
    p.epochs;
  (* write-once phase ordering: last write epoch < first remote-read epoch *)
  let last_write = Array.make p.nregions (-1)
  and first_remote_read = Array.make p.nregions max_int in
  List.iteri
    (fun ei e ->
      Array.iteri
        (fun proc ops ->
          List.iter
            (fun op ->
              match op with
              | Write (r, _) | Locked_add (r, _) | Incr r ->
                  last_write.(r) <- max last_write.(r) ei
              | Read r ->
                  if proc <> p.homes.(r) then
                    first_remote_read.(r) <- min first_remote_read.(r) ei)
            ops)
        e.ops)
    p.epochs;
  for r = 0 to p.nregions - 1 do
    if last_write.(r) >= first_remote_read.(r) then write_once_ok := false
  done;
  {
    writes = !writes;
    incr = !incr;
    locked = !locked;
    dyn_ok = (!dyn_ok && not !incr && not !locked);
    static_ok = (!static_ok && not !incr && not !locked);
    write_once_ok = (!write_once_ok && not !incr && not !locked);
    counter_ok = (not !plain && not !locked);
  }

(* Which registered protocols promise to run this access pattern correctly
   (their documented applicability contracts). Unlocked increments are a
   data race under every invalidation protocol — concurrent RMW sections
   can lose updates — so Incr programs are admitted only by COUNTER, the
   protocol whose home-serialized fetch-and-add makes them atomic (and
   whose final value the fuzzer predicts exactly). *)
(* User-authored protocols (combinator-built ones in particular) enroll by
   naming the built-in whose admissibility contract they inherit; unknown
   names stay inadmissible. *)
let admits_alias : (string, string) Hashtbl.t = Hashtbl.create 16

let register_admits_like ~name ~like =
  if Hashtbl.mem admits_alias name then
    invalid_arg ("Prog.register_admits_like: duplicate " ^ name);
  Hashtbl.replace admits_alias name like

let rec admits f = function
  | "SC" | "MIGRATORY" | "RACE_CHECK" | "CRL" -> not f.incr
  | "NULL" -> not f.writes
  | "DYN_UPDATE" | "BROKEN_DYN_UPDATE" -> f.dyn_ok
  | "STATIC_UPDATE" -> f.static_ok
  | "WRITE_ONCE" -> f.write_once_ok
  | "COUNTER" -> f.counter_ok
  | "PIPELINE" -> not f.incr
  | name -> (
      match Hashtbl.find_opt admits_alias name with
      | Some like -> admits f like
      | None -> false)

(* Auto-enroll every combinator-library protocol (and its broken canary)
   under the contract of the hand-written protocol it re-expresses. *)
let () =
  List.iter
    (fun (e : Ace_combinator.Library.entry) ->
      register_admits_like
        ~name:e.Ace_combinator.Library.proto.Ace_runtime.Protocol.name
        ~like:e.Ace_combinator.Library.admits_like)
    (Ace_combinator.Library.broken :: Ace_combinator.Library.all)

(* The exact final heap of a pure-increment program (counter_ok): +1.0 is
   exact in floats and commutes, so slot 0 of each region ends at its
   increment count whatever the interleaving. *)
let predicted_counter_heap p =
  let heap = Array.init p.nregions (fun _ -> Array.make p.rlen 0.) in
  List.iter
    (fun e ->
      Array.iter
        (List.iter (function
          | Incr r -> heap.(r).(0) <- heap.(r).(0) +. 1.
          | Read _ | Write _ | Locked_add _ -> ()))
        e.ops)
    p.epochs;
  heap

(* ---------- generator ---------- *)

type shape = Generic | Static | Write_once | Counter | Locked_chain | Switch_heavy

let shapes =
  [| Generic; Generic; Static; Write_once; Counter; Locked_chain; Switch_heavy |]

(* Mid-run protocol transitions. Targets are the universal protocols — SC
   and MIGRATORY admit every DRF pattern — so a switch never invalidates
   the base protocol's admissibility; epochs after a switch simply run
   under the target until a flush returns to the base. Counter programs
   are excluded: their unlocked increments are only atomic under COUNTER,
   and a mid-run switch would hand them to a protocol that legally loses
   concurrent RMWs. *)
let gen_switch_target st = if Gen.bool st then "SC" else "MIGRATORY"

let add_switches ~prob10 epochs st =
  List.map
    (fun e ->
      if Gen.int_bound 9 st < prob10 then
        { e with switch = Some (gen_switch_target st) }
      else e)
    epochs

let gen_value st = float_of_int (1 + Gen.int_bound 7 st)

(* One generic DRF epoch: each region is read-only, single-writer or
   locked this epoch; each proc draws a few ops compatible with that. *)
let gen_generic_epoch ~nprocs ~nregions st =
  let mode =
    Array.init nregions (fun _ ->
        match Gen.int_bound 4 st with
        | 0 | 1 -> `Read_only
        | 2 | 3 -> `Writer (Gen.int_bound (nprocs - 1) st)
        | _ -> `Locked)
  in
  let ops =
    Array.init nprocs (fun proc ->
        let n = Gen.int_bound 3 st in
        List.init n (fun _ ->
            let r = Gen.int_bound (nregions - 1) st in
            match mode.(r) with
            | `Read_only -> Some (Read r)
            | `Locked -> Some (Locked_add (r, gen_value st))
            | `Writer w ->
                if proc = w then
                  if Gen.bool st then Some (Write (r, gen_value st))
                  else Some (Read r)
                else None)
        |> List.filter_map Fun.id)
  in
  { ops; flush = Gen.int_bound 4 st = 0; switch = None }

let generate ?shape ?nprocs () st =
  let shape =
    match shape with
    | Some s -> s
    | None -> shapes.(Gen.int_bound (Array.length shapes - 1) st)
  in
  (* Default: tiny machines, where schedule interleavings are densest.
     [?nprocs] pins the machine size instead — the scaling axis, which
     exercises the directory's bitset mode and the lazy per-link tables. *)
  let nprocs =
    match nprocs with
    | Some n -> if n < 2 then invalid_arg "Prog.generate: nprocs < 2" else n
    | None -> 2 + Gen.int_bound 2 st
  in
  let nregions = 1 + Gen.int_bound 2 st in
  let rlen = 1 + Gen.int_bound 2 st in
  let homes = Array.init nregions (fun _ -> Gen.int_bound (nprocs - 1) st) in
  let epochs =
    match shape with
    | Generic ->
        add_switches ~prob10:2
          (List.init
             (1 + Gen.int_bound 3 st)
             (fun _ -> gen_generic_epoch ~nprocs ~nregions st))
          st
    | Switch_heavy ->
        (* the transition-torture shape: generic DRF epochs where most
           epoch boundaries carry a mid-run change_protocol (and the usual
           flush draws still return to the base protocol in between) *)
        add_switches ~prob10:6
          (List.init
             (2 + Gen.int_bound 3 st)
             (fun _ -> gen_generic_epoch ~nprocs ~nregions st))
          st
    | Static ->
        (* fixed writer and stable reader set per region; alternating
           write / read phases, at least two cycles so the learning window
           closes while the pattern is still running *)
        let writer =
          Array.init nregions (fun _ -> Gen.int_bound (nprocs - 1) st)
        in
        let readers =
          Array.init nregions (fun r ->
              let rs =
                List.init nprocs Fun.id
                |> List.filter (fun p -> p <> writer.(r) && Gen.bool st)
              in
              if rs <> [] then rs
              else [ (writer.(r) + 1) mod nprocs ])
        in
        let cycles = 2 + Gen.int_bound 2 st in
        List.concat
          (List.init cycles (fun _ ->
               let wops =
                 Array.init nprocs (fun proc ->
                     List.init nregions Fun.id
                     |> List.filter_map (fun r ->
                            if writer.(r) = proc then
                              Some (Write (r, gen_value st))
                            else None))
               in
               let rops =
                 Array.init nprocs (fun proc ->
                     List.init nregions Fun.id
                     |> List.filter_map (fun r ->
                            if List.mem proc readers.(r) then Some (Read r)
                            else None))
               in
               [
                 { ops = wops; flush = false; switch = None };
                 { ops = rops; flush = Gen.int_bound 6 st = 0; switch = None };
               ]))
    | Write_once ->
        let init =
          {
            ops =
              Array.init nprocs (fun proc ->
                  List.init nregions Fun.id
                  |> List.filter_map (fun r ->
                         if homes.(r) = proc then
                           Some (Write (r, gen_value st))
                         else None));
            flush = false;

            switch = None;
          }
        in
        let read_epochs =
          List.init
            (1 + Gen.int_bound 2 st)
            (fun _ ->
              {
                ops =
                  Array.init nprocs (fun _ ->
                      let n = Gen.int_bound 2 st in
                      List.init n (fun _ ->
                          Read (Gen.int_bound (nregions - 1) st)));
                flush = false;

                switch = None;
              })
        in
        init :: read_epochs
    | Counter ->
        List.init
          (1 + Gen.int_bound 2 st)
          (fun _ ->
            {
              ops =
                Array.init nprocs (fun _ ->
                    let n = Gen.int_bound 2 st in
                    List.init n (fun _ ->
                        Incr (Gen.int_bound (nregions - 1) st)));
              flush = false;

              switch = None;
            })
    | Locked_chain ->
        List.init
          (1 + Gen.int_bound 2 st)
          (fun _ ->
            if Gen.int_bound 3 st = 0 then
              {
                ops =
                  Array.init nprocs (fun _ ->
                      let n = Gen.int_bound 2 st in
                      List.init n (fun _ ->
                          Read (Gen.int_bound (nregions - 1) st)));
                flush = false;

                switch = None;
              }
            else
              {
                ops =
                  Array.init nprocs (fun _ ->
                      let n = Gen.int_bound 2 st in
                      List.init n (fun _ ->
                          Locked_add
                            (Gen.int_bound (nregions - 1) st, gen_value st)));
                flush = Gen.int_bound 5 st = 0;
                switch = None;
              })
  in
  let p = { nprocs; nregions; rlen; homes; epochs } in
  validate p;
  p

(* ---------- shrinking ---------- *)

(* Greedy structural shrink candidates, biggest cuts first: drop a whole
   epoch, then drop a single op, then clear flush flags and shrink the
   payload length. The fuzzer keeps a candidate iff it still fails. *)
let shrink_candidates p =
  let nep = List.length p.epochs in
  let drop_epoch =
    if nep <= 1 then []
    else
      List.init nep (fun i ->
          { p with epochs = List.filteri (fun j _ -> j <> i) p.epochs })
  in
  let drop_op =
    List.concat
      (List.mapi
         (fun ei e ->
           List.concat
             (List.init p.nprocs (fun proc ->
                  List.init
                    (List.length e.ops.(proc))
                    (fun oi ->
                      let ops = Array.copy e.ops in
                      ops.(proc) <- List.filteri (fun j _ -> j <> oi) ops.(proc);
                      {
                        p with
                        epochs =
                          List.mapi
                            (fun j e' -> if j = ei then { e' with ops } else e')
                            p.epochs;
                      }))))
         p.epochs)
  in
  let unflush =
    if List.exists (fun e -> e.flush) p.epochs then
      [ { p with epochs = List.map (fun e -> { e with flush = false }) p.epochs } ]
    else []
  in
  let unswitch =
    if List.exists (fun e -> e.switch <> None) p.epochs then
      [
        {
          p with
          epochs = List.map (fun e -> { e with switch = None }) p.epochs;
        };
      ]
    else []
  in
  let shorter = if p.rlen > 1 then [ { p with rlen = 1 } ] else [] in
  drop_epoch @ drop_op @ unflush @ unswitch @ shorter

(* ---------- interpreter ---------- *)

(* Run the program on one simulated processor against any DSM facade.
   [flush_to] is the protocol name a flush epoch re-changes the space to
   (the space's own protocol — a detach/reattach round). Returns the final
   heap (one float array per region, in region-index order) on node 0.

   Region ids are exchanged by index over [allgather] so the heap layout is
   identical whatever order allocations interleave in. *)
let interp (type c)
    (module D : Ace_region.Dsm_intf.S
      with type ctx = c
       and type h = Ace_region.Store.meta) ~flush_to (p : t) (ctx : c) :
    float array array option =
  let me = D.me ctx in
  let mine = ref [] in
  for i = p.nregions - 1 downto 0 do
    if p.homes.(i) = me then begin
      let h = D.alloc ctx ~space:0 ~len:p.rlen in
      mine := (i, D.rid h) :: !mine
    end
  done;
  let packed =
    Array.of_list (List.concat_map (fun (i, r) -> [ i; r ]) !mine)
  in
  let parts = D.allgather ctx packed in
  let rid_of = Array.make p.nregions (-1) in
  Array.iter
    (fun part ->
      let k = ref 0 in
      while !k + 1 < Array.length part do
        rid_of.(part.(!k)) <- part.(!k + 1);
        k := !k + 2
      done)
    parts;
  let handles = Array.init p.nregions (fun i -> D.map ctx rid_of.(i)) in
  D.barrier ctx ~space:0;
  let sink = ref 0. in
  List.iter
    (fun e ->
      List.iter
        (fun op ->
          match op with
          | Read r ->
              let h = handles.(r) in
              D.start_read ctx h;
              sink := !sink +. (D.data ctx h).(0);
              D.end_read ctx h
          | Write (r, v) ->
              let h = handles.(r) in
              D.start_write ctx h;
              let d = D.data ctx h in
              for j = 0 to Array.length d - 1 do
                d.(j) <- v +. float_of_int j
              done;
              D.end_write ctx h
          | Locked_add (r, v) ->
              let h = handles.(r) in
              D.lock ctx h;
              D.start_read ctx h;
              let x = (D.data ctx h).(0) in
              D.end_read ctx h;
              D.start_write ctx h;
              (D.data ctx h).(0) <- x +. v;
              D.end_write ctx h;
              D.unlock ctx h
          | Incr r ->
              let h = handles.(r) in
              D.start_write ctx h;
              let d = D.data ctx h in
              d.(0) <- d.(0) +. 1.;
              D.end_write ctx h)
        e.ops.(me);
      D.barrier ctx ~space:0;
      (* A switch hands the space to a different protocol mid-run; a flush
         returns it to the run's base protocol (both collective). When an
         epoch carries both, the flush wins — the switch round still
         exercises a full transition. *)
      (match e.switch with
      | Some q -> D.change_protocol ctx ~space:0 q
      | None -> ());
      if e.flush then D.change_protocol ctx ~space:0 flush_to)
    p.epochs;
  ignore !sink;
  if me = 0 then
    Some
      (Array.map
         (fun h ->
           D.start_read ctx h;
           let c = Array.copy (D.data ctx h) in
           D.end_read ctx h;
           c)
         handles)
  else None
