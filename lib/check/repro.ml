(* Replayable counterexamples. A [.repro] file pins everything a failing
   fuzz run needs to be reproduced bit for bit: the protocol under test,
   the schedule tie-break policy, the fault spec, the batching mode, and
   the (shrunk) program itself. The header is line-oriented key/value;
   the program body is Prog's textual form. *)

module Event_queue = Ace_engine.Event_queue
module Machine = Ace_engine.Machine
module Faults = Ace_net.Faults

type t = {
  proto : string; (* protocol name, or "CRL" for the baseline backend *)
  policy : Event_queue.policy;
  faults : Faults.spec option;
  batch : bool;
  engine : Machine.engine;
      (* [Par_engine n] marks an engine-differential counterexample:
         replay re-runs seq-vs-par rather than cell-vs-reference *)
  reason : string;
  prog : Prog.t;
}

let faults_to_string = function
  | None -> "none"
  | Some (s : Faults.spec) ->
      Printf.sprintf "drop=%.17g,dup=%.17g,jitter=%.17g,seed=%d" s.drop s.dup
        s.jitter s.seed

let faults_of_string = function
  | "none" -> None
  | s ->
      Scanf.sscanf s "drop=%g,dup=%g,jitter=%g,seed=%d"
        (fun drop dup jitter seed ->
          Some (Faults.spec ~drop ~dup ~jitter ~seed ()))

let to_string r =
  String.concat "\n"
    [
      "ace-check-repro v1";
      "proto " ^ r.proto;
      "policy " ^ Event_queue.policy_to_string r.policy;
      "faults " ^ faults_to_string r.faults;
      "batch " ^ string_of_bool r.batch;
      "engine " ^ Machine.engine_to_string r.engine;
      "reason " ^ String.map (fun c -> if c = '\n' then ';' else c) r.reason;
      Prog.to_string r.prog;
    ]

let of_string s =
  let lines = String.split_on_char '\n' s in
  let header = Hashtbl.create 8 and body = Buffer.create 256 in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | Some i
        when List.mem
               (String.sub line 0 i)
               [ "proto"; "policy"; "faults"; "batch"; "engine"; "reason" ] ->
          Hashtbl.replace header (String.sub line 0 i)
            (String.sub line (i + 1) (String.length line - i - 1))
      | _ ->
          if line <> "" && line <> "ace-check-repro v1" then begin
            Buffer.add_string body line;
            Buffer.add_char body '\n'
          end)
    lines;
  let get k =
    match Hashtbl.find_opt header k with
    | Some v -> v
    | None -> invalid_arg ("Repro.of_string: missing " ^ k)
  in
  {
    proto = get "proto";
    policy = Event_queue.policy_of_string (get "policy");
    faults = faults_of_string (get "faults");
    batch = bool_of_string (get "batch");
    engine =
      (* absent in pre-engine .repro files: they are sequential *)
      (match Hashtbl.find_opt header "engine" with
      | None -> Machine.Seq_engine
      | Some s -> (
          match Machine.engine_of_string s with
          | Ok e -> e
          | Error m -> invalid_arg ("Repro.of_string: " ^ m)));
    reason = (match Hashtbl.find_opt header "reason" with Some r -> r | None -> "");
    prog = Prog.of_string (Buffer.contents body);
  }

let write path r =
  let oc = open_out path in
  output_string oc (to_string r);
  output_char oc '\n';
  close_out oc

let read path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
