(* Schedule exploration: a dense enumeration of event-queue tie-break
   policies. A simulated machine leaves the order of same-timestamp events
   undefined, so every policy below is a legal execution of the same
   program; the conformance kit sweeps an index range and checks that
   results do not depend on the choice.

   Index 0 is FIFO (the historical order — the one every existing
   regression is pinned to), indices 1-9 enumerate the round-robin
   "delay set" rotations (CHESS-style: systematically delay every
   stride-th event), and everything above that seeds an independent
   random-priority stream per index. *)

module Event_queue = Ace_engine.Event_queue

let rotations =
  [| (2, 0); (2, 1); (3, 0); (3, 1); (3, 2); (4, 0); (4, 1); (4, 2); (4, 3) |]

let of_index i =
  if i < 0 then invalid_arg "Schedule.of_index: negative index"
  else if i = 0 then Event_queue.Fifo
  else if i <= Array.length rotations then
    let stride, offset = rotations.(i - 1) in
    Event_queue.Rotate { stride; offset }
  else Event_queue.Random i

let to_string = Event_queue.policy_to_string
let of_string = Event_queue.policy_of_string
