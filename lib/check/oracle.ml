(* The coherence oracle: a release-consistency contract checker over an
   observation log.

   The observer (see Observe) records one observation per completed access
   section: which node touched which region, a fingerprint of the payload
   it saw (reads) or left behind (writes), the node's barrier epoch, and —
   for accesses made under the region lock — the region's global
   lock-acquisition number. Because the simulator is sequential, the global
   record order [oord] is the real execution order, which makes
   counterexamples exact rather than approximate.

   The contract checked is the one every protocol in the registry promises
   (paper §2.1's coherence obligations): at each synchronization point a
   read must see the latest write ordered before it — by program order
   within a node, by the barrier epoch structure across nodes, and by the
   lock-acquisition chain within an epoch. Concretely, per region and per
   epoch:

   - no writes: every read sees the value current at epoch entry;
   - all accesses from one node: program order (each read sees the value
     after the writes preceding it);
   - all accesses under the region lock: the lock chain orders them — each
     read sees the value after every write with a smaller acquisition
     number;
   - anything else is a data race: two accesses from different nodes, at
     least one a write, not both holding the lock, in the same epoch.

   [check] returns the minimal counterexample: the violation whose
   offending access is earliest in (epoch, execution order). *)

type kind = Read | Write

type obs = {
  onode : int;
  orid : int;
  oepoch : int;
  okind : kind;
  olseq : int; (* region's global lock-acquisition number; -1 if unlocked *)
  oord : int; (* global record order (execution order) *)
  ovalue : float; (* payload fingerprint observed / left behind *)
}

type violation = {
  vrid : int;
  vepoch : int;
  vobs : obs; (* the offending access *)
  vwant : float; (* fingerprint it should have seen (reads; nan for races) *)
  vprev : obs option; (* the write it should have seen / the racing access *)
  vrace : bool;
}

type t = {
  mutable nobs : int;
  mutable log : obs list; (* newest first *)
  epochs : int array; (* per-node barrier count *)
  next_lseq : (int, int ref) Hashtbl.t; (* rid -> next acquisition number *)
  held : (int * int, int) Hashtbl.t; (* (node, rid) -> acquisition number *)
}

let create ~nprocs () =
  {
    nobs = 0;
    log = [];
    epochs = Array.make nprocs 0;
    next_lseq = Hashtbl.create 16;
    held = Hashtbl.create 16;
  }

let observations t = t.nobs

(* Position-weighted checksum of a region payload: cheap, order-sensitive
   enough that distinct writes produce distinct fingerprints for the
   small-integer values the fuzzer writes. *)
let fingerprint a =
  let s = ref 0. in
  Array.iteri (fun i v -> s := !s +. (v *. float_of_int (i + 1))) a;
  !s

(* Low-level entry: tests hand-build logs with it; live runs go through
   the tracking helpers below. *)
let add t ~node ~rid ~epoch ~kind ~lseq ~value =
  let o =
    {
      onode = node;
      orid = rid;
      oepoch = epoch;
      okind = kind;
      olseq = lseq;
      oord = t.nobs;
      ovalue = value;
    }
  in
  t.nobs <- t.nobs + 1;
  t.log <- o :: t.log

let lock t ~node ~rid =
  let next =
    match Hashtbl.find_opt t.next_lseq rid with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.next_lseq rid r;
        r
  in
  Hashtbl.replace t.held (node, rid) !next;
  incr next

let unlock t ~node ~rid = Hashtbl.remove t.held (node, rid)
let barrier t ~node = t.epochs.(node) <- t.epochs.(node) + 1

let lseq_of t ~node ~rid =
  Option.value (Hashtbl.find_opt t.held (node, rid)) ~default:(-1)

let record_read t ~node ~rid ~value =
  add t ~node ~rid ~epoch:t.epochs.(node) ~kind:Read
    ~lseq:(lseq_of t ~node ~rid) ~value

let record_write t ~node ~rid ~value =
  add t ~node ~rid ~epoch:t.epochs.(node) ~kind:Write
    ~lseq:(lseq_of t ~node ~rid) ~value

(* Two accesses race when different nodes touch the region in the same
   epoch, at least one writes, and the lock does not order them. *)
let conflicts a b =
  a.onode <> b.onode
  && (a.okind = Write || b.okind = Write)
  && (a.olseq < 0 || b.olseq < 0)

(* First racy pair in execution order: the earliest access that completes
   a conflict with some earlier access, paired with the earliest such
   earlier access. *)
let first_racy_pair es =
  let rec go seen = function
    | [] -> None
    | b :: rest -> (
        match List.find_opt (fun a -> conflicts a b) (List.rev seen) with
        | Some a -> Some (a, b)
        | None -> go (b :: seen) rest)
  in
  go [] es

(* Check one region's observations (execution order). [current] threads the
   latest fingerprint across epochs; [last] remembers the write that put it
   there. *)
let check_region rid es =
  let viols = ref [] in
  let current = ref 0. and last = ref None in
  let emit ?prev ?(race = false) ~want o =
    viols :=
      { vrid = rid; vepoch = o.oepoch; vobs = o; vwant = want; vprev = prev;
        vrace = race }
      :: !viols
  in
  let apply o =
    match o.okind with
    | Write ->
        current := o.ovalue;
        last := Some o
    | Read ->
        if o.ovalue <> !current then
          emit ?prev:!last ~want:!current o
  in
  let epochs_present =
    List.sort_uniq compare (List.map (fun o -> o.oepoch) es)
  in
  List.iter
    (fun e ->
      let eo = List.filter (fun o -> o.oepoch = e) es in
      let writes = List.filter (fun o -> o.okind = Write) eo in
      let nodes = List.sort_uniq compare (List.map (fun o -> o.onode) eo) in
      if writes = [] || List.length nodes <= 1 then
        (* read-only epoch, or a single node: program order *)
        List.iter apply eo
      else if List.for_all (fun o -> o.olseq >= 0) eo then
        (* lock chain: acquisition number orders sections, program order
           within one *)
        List.iter apply
          (List.stable_sort
             (fun a b -> compare (a.olseq, a.oord) (b.olseq, b.oord))
             eo)
      else
        match first_racy_pair eo with
        | Some (a, b) -> emit ~prev:a ~race:true ~want:nan b
        | None -> List.iter apply eo)
    epochs_present;
  List.rev !viols

let violations t =
  let by_rid : (int, obs list ref) Hashtbl.t = Hashtbl.create 16 in
  (* log is newest-first; consing flips each region's list to execution
     order *)
  List.iter
    (fun o ->
      match Hashtbl.find_opt by_rid o.orid with
      | Some l -> l := o :: !l
      | None -> Hashtbl.add by_rid o.orid (ref [ o ]))
    t.log;
  Hashtbl.fold (fun rid l acc -> check_region rid !l @ acc) by_rid []
  |> List.sort (fun a b ->
         compare (a.vepoch, a.vobs.oord) (b.vepoch, b.vobs.oord))

let check t = match violations t with [] -> None | v :: _ -> Some v

let kind_to_string = function Read -> "read" | Write -> "write"

let obs_to_string o =
  Printf.sprintf "%s by node %d (epoch %d, order %d%s, fingerprint %g)"
    (kind_to_string o.okind) o.onode o.oepoch o.oord
    (if o.olseq >= 0 then Printf.sprintf ", lock #%d" o.olseq else "")
    o.ovalue

let violation_to_string v =
  if v.vrace then
    Printf.sprintf
      "region %d epoch %d: data race\n  first : %s\n  second: %s" v.vrid
      v.vepoch
      (match v.vprev with Some a -> obs_to_string a | None -> "?")
      (obs_to_string v.vobs)
  else
    Printf.sprintf
      "region %d epoch %d: stale read\n  read  : %s\n  want  : fingerprint %g%s"
      v.vrid v.vepoch (obs_to_string v.vobs) v.vwant
      (match v.vprev with
      | Some w -> " from " ^ obs_to_string w
      | None -> " (initial contents)")
