(* Compact sharer sets for region directories.

   Two-mode representation in the style of limited-pointer directories
   (Agarwal et al.'s Dir_i B): a region shared by a handful of nodes — the
   overwhelmingly common case, CRL §5 — keeps the sharer ids inline in a
   short sorted array; a widely-shared region overflows once to a packed
   int bitset and stays there until [clear].  Memory is proportional to the
   actual sharer population, not the machine size, so a million
   sparsely-shared regions on 1024 nodes cost the same as on 32.

   Iteration visits nodes in ascending id order in both modes — exactly the
   order the old [bool array] walk produced — so replacing the array keeps
   simulated schedules bit-identical.  Iteration allocates nothing and
   tolerates the callback removing nodes it has already visited (the
   invalidation walk does exactly that via deferred actions that can run
   synchronously). *)

(* 62 usable bits per word: OCaml ints are 63-bit and keeping the sign bit
   clear lets the lowest-set-bit trick [x land (-x)] stay in positive
   territory. *)
let bits_per_word = 62

(* Inline capacity before overflowing to the bitset.  Six ids cover the
   sharing degree of every region in the paper's applications except the
   deliberately widely-shared ones (Barnes-Hut bodies, broadcast columns),
   which overflow once and never look back. *)
let small_cap = 6

type t = {
  nprocs : int;
  (* >= 0: small mode, number of live ids in [small] (sorted ascending).
     -1: bitset mode; [bits]/[bcount] are authoritative. *)
  mutable small_n : int;
  mutable small : int array;
  mutable bits : int array;
  mutable bcount : int;
}

let empty_ints : int array = [||]

let create ~nprocs =
  if nprocs <= 0 then invalid_arg "Dir.create";
  { nprocs; small_n = 0; small = empty_ints; bits = empty_ints; bcount = 0 }

let nprocs t = t.nprocs
let count t = if t.small_n >= 0 then t.small_n else t.bcount
let is_small t = t.small_n >= 0

let check_node t node =
  if node < 0 || node >= t.nprocs then invalid_arg "Dir: bad node"

let mem t node =
  check_node t node;
  if t.small_n >= 0 then begin
    let found = ref false in
    for i = 0 to t.small_n - 1 do
      if t.small.(i) = node then found := true
    done;
    !found
  end
  else t.bits.(node / bits_per_word) land (1 lsl (node mod bits_per_word)) <> 0

(* Switch to bitset mode, migrating the inline ids. *)
let overflow t =
  let words = (t.nprocs + bits_per_word - 1) / bits_per_word in
  if Array.length t.bits <> words then t.bits <- Array.make words 0
  else Array.fill t.bits 0 words 0;
  t.bcount <- 0;
  for i = 0 to t.small_n - 1 do
    let node = t.small.(i) in
    t.bits.(node / bits_per_word) <-
      t.bits.(node / bits_per_word) lor (1 lsl (node mod bits_per_word));
    t.bcount <- t.bcount + 1
  done;
  t.small_n <- -1;
  t.small <- empty_ints

let rec add t node =
  check_node t node;
  if t.small_n >= 0 then begin
    (* sorted insert; no-op if present *)
    let n = t.small_n in
    let pos = ref 0 in
    while !pos < n && t.small.(!pos) < node do incr pos done;
    if !pos < n && t.small.(!pos) = node then ()
    else if n < small_cap then begin
      if Array.length t.small = 0 then t.small <- Array.make small_cap 0;
      for i = n downto !pos + 1 do
        t.small.(i) <- t.small.(i - 1)
      done;
      t.small.(!pos) <- node;
      t.small_n <- n + 1
    end
    else begin
      overflow t;
      add t node
    end
  end
  else begin
    let w = node / bits_per_word and b = 1 lsl (node mod bits_per_word) in
    if t.bits.(w) land b = 0 then begin
      t.bits.(w) <- t.bits.(w) lor b;
      t.bcount <- t.bcount + 1
    end
  end

let remove t node =
  check_node t node;
  if t.small_n >= 0 then begin
    let n = t.small_n in
    let pos = ref (-1) in
    for i = 0 to n - 1 do
      if t.small.(i) = node then pos := i
    done;
    if !pos >= 0 then begin
      for i = !pos to n - 2 do
        t.small.(i) <- t.small.(i + 1)
      done;
      t.small_n <- n - 1
    end
  end
  else begin
    let w = node / bits_per_word and b = 1 lsl (node mod bits_per_word) in
    if t.bits.(w) land b <> 0 then begin
      t.bits.(w) <- t.bits.(w) land lnot b;
      t.bcount <- t.bcount - 1
    end
  end

let clear t =
  if t.small_n < 0 then Array.fill t.bits 0 (Array.length t.bits) 0;
  t.small_n <- 0;
  t.bcount <- 0

(* Number of trailing zeros of a one-bit word [b] (b = x land (-x), b > 0),
   by binary search — branchy but allocation-free and plenty fast for a
   per-sharer cost. *)
let ntz_of_bit b =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin n := !n + 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin n := !n + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin n := !n + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin n := !n + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin n := !n + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then n := !n + 1;
  !n

let iter t ~except f =
  if t.small_n >= 0 then begin
    (* Walk by value, re-finding the successor of the last visited id each
       step: O(n·cap) worst case with cap = 6, but robust against [f]
       removing any already-visited id (which shifts the array under us). *)
    let prev = ref (-1) in
    let continue_ = ref true in
    while !continue_ do
      (* smallest id > !prev *)
      let next = ref max_int in
      for i = 0 to t.small_n - 1 do
        let v = t.small.(i) in
        if v > !prev && v < !next then next := v
      done;
      if !next = max_int then continue_ := false
      else begin
        prev := !next;
        if !next <> except then f !next
      end
    done
  end
  else
    let words = Array.length t.bits in
    for w = 0 to words - 1 do
      (* Re-read the word after every callback: [f] may clear bits of nodes
         it has already visited, and masking off visited bits keeps the
         remaining walk faithful either way. *)
      let base = w * bits_per_word in
      let seen = ref 0 in
      let v = ref (t.bits.(w)) in
      while !v <> 0 do
        let bit = !v land (- !v) in
        let node = base + ntz_of_bit bit in
        seen := !seen lor bit;
        if node <> except then f node;
        v := t.bits.(w) land lnot !seen
      done
    done

let fold t ~except f acc =
  let acc = ref acc in
  iter t ~except (fun node -> acc := f !acc node);
  !acc

(* Heap words attributable to this set (excluding the record itself, which
   is fixed-size): the inline id array plus the bitset words.  Monotone
   over a region's lifetime modulo [clear], which never shrinks storage —
   so an end-of-run sum is the peak. *)
let words t = Array.length t.small + Array.length t.bits
