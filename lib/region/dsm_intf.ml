(* The region-DSM operations shared by the Ace runtime and the CRL baseline
   (paper §5.1 ports applications between the two systems by replacing the
   corresponding primitives; we functorize the applications over this
   signature instead, so both backends run identical source). *)

module type S = sig
  type ctx

  val me : ctx -> int
  val nprocs : ctx -> int

  type h
  (** A mapped region handle. *)

  (** Allocate a region homed at the calling node from [space] ([space] is
      ignored by the CRL backend, which has no spaces). *)
  val alloc : ctx -> space:int -> len:int -> h

  val rid : h -> int
  val map : ctx -> int -> h
  val unmap : ctx -> h -> unit

  (** The calling node's view of the region payload. Only valid between a
      [start_*] and the matching [end_*]. *)
  val data : ctx -> h -> float array

  val start_read : ctx -> h -> unit
  val end_read : ctx -> h -> unit
  val start_write : ctx -> h -> unit
  val end_write : ctx -> h -> unit
  val lock : ctx -> h -> unit
  val unlock : ctx -> h -> unit
  val barrier : ctx -> space:int -> unit

  (** Collective. No-op on CRL (protocol changes are performance hints; a
      correct program stays correct when they are ignored). *)
  val change_protocol : ctx -> space:int -> string -> unit

  (** Collective adaptation point, called by every node at an epoch
      boundary for [space]: consult the runtime's installed adaptation
      policy and collectively switch the space's protocol if it so
      advises, returning the protocol switched to. A no-op returning
      [None] on CRL and when no policy is installed, so fixed-protocol
      runs pay nothing for the hook. *)
  val adapt : ctx -> space:int -> string option

  (** Charge local computation cycles. *)
  val work : ctx -> float -> unit

  (** Deterministic region naming: the rid of the [seq]-th region [owner]
      allocated from [space]. Remote queries cost one name-service round
      trip to the owner; callers must synchronize (barrier) after the
      allocation phase before looking names up. *)
  val global_id : ctx -> space:int -> owner:int -> seq:int -> int

  (** Collective broadcast of an int array computed at [root]. *)
  val bcast : ctx -> root:int -> (unit -> int array) -> int array

  (** Collective all-gather of one int array per node, indexed by node. *)
  val allgather : ctx -> int array -> int array array
end
