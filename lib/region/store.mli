(** Region naming, per-node cached copies, and home directories.

    A region is an arbitrarily-sized coherence unit (user-specified
    granularity, paper §2.3). Every region has a home node; the home holds
    the authoritative [master] copy except while some node holds the region
    exclusively (recorded in the directory). *)

type state = Invalid | Shared | Exclusive

type copy = {
  cdata : float array;     (** node-local cached data *)
  mutable cstate : state;
  mutable readers : int;   (** active start_read..end_read sections *)
  mutable writers : int;   (** active start_write..end_write sections
                               (compiled code may nest them after hoisting) *)
  mutable deferred : (float -> unit) list;
      (** coherence actions (invalidation, recall) that arrived during an
          active access, run at the matching end_* — CRL's access
          atomicity guarantee *)
}

type dir = {
  mutable owner : int;             (** node holding a modified copy; -1 = none *)
  sharers : bool array;            (** nodes with a (possibly) valid copy *)
  mutable busy : bool;             (** home transaction in progress *)
  pending : (float -> unit) Queue.t; (** queued transactions, by arrival *)
}

type hlock = {
  mutable held_by : int;           (** -1 = free *)
  waiting : (int * (float -> unit)) Queue.t;
}

type meta = {
  rid : int;
  home : int;
  len : int;                       (** payload length, floats *)
  mutable space : int;             (** owning space id; -1 = none (CRL) *)
  master : float array;            (** authoritative copy at home *)
  copies : copy option array;      (** per-node cache entries *)
  dir : dir;
  lock : hlock;
}

type t

(** [create ?stats ~nprocs ()] makes an empty store. When [stats] (the
    owning machine's counters) is supplied, every allocation bumps
    [region.allocs]/[region.bytes], the per-home [region.allocs.by_home]
    family, and the [region.alloc_bytes] size histogram. *)
val create : ?stats:Ace_engine.Stats.t -> nprocs:int -> unit -> t

val nprocs : t -> int

(** [alloc t ~home ~len ~space] creates a region homed at [home]. The home's
    cache entry aliases [master] and starts [Shared]. *)
val alloc : t -> home:int -> len:int -> space:int -> meta

val get : t -> int -> meta
val count : t -> int
val bytes : meta -> int

(** The node's cache entry, creating an [Invalid] zeroed one if absent.
    Returns whether it already existed (a "map hit"). *)
val ensure_copy : meta -> node:int -> copy * bool

(** [ensure_copy] without the existence flag (and without allocating the
    pair) — the variant coherence hot paths use. *)
val ensure_copy_c : meta -> node:int -> copy

(** Cache entry if present. *)
val copy_of : meta -> node:int -> copy option

(** [iter_sharers meta ~except f] applies [f] to each current sharer node
    except [except], in ascending node order, without building a list.
    [f] must not toggle sharer bits of nodes it has not yet visited. *)
val iter_sharers : meta -> except:int -> (int -> unit) -> unit

(** Current sharer nodes, excluding [except], ascending. Allocates; prefer
    {!iter_sharers} on hot paths. *)
val sharers : meta -> except:int -> int list

(** Directory invariant checks (used by tests and debug assertions):
    at most one owner; an owner implies no other sharer marked Exclusive. *)
val check_invariants : meta -> unit
