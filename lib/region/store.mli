(** Region naming, per-node cached copies, and home directories.

    A region is an arbitrarily-sized coherence unit (user-specified
    granularity, paper §2.3). Every region has a home node; the home holds
    the authoritative [master] copy except while some node holds the region
    exclusively (recorded in the directory). *)

type state = Invalid | Shared | Exclusive

type copy = {
  cdata : float array;     (** node-local cached data *)
  mutable cstate : state;
  mutable readers : int;   (** active start_read..end_read sections *)
  mutable writers : int;   (** active start_write..end_write sections
                               (compiled code may nest them after hoisting) *)
  mutable deferred : (float -> unit) list;
      (** coherence actions (invalidation, recall) that arrived during an
          active access, run at the matching end_* — CRL's access
          atomicity guarantee *)
}

type dir = {
  mutable owner : int;             (** node holding a modified copy; -1 = none *)
  sharers : Dir.t;                 (** nodes with a (possibly) valid copy —
                                       compact two-mode set, memory
                                       proportional to the sharer count *)
  mutable busy : bool;             (** home transaction in progress *)
  pending : (float -> unit) Queue.t; (** queued transactions, by arrival *)
}

type hlock = {
  mutable held_by : int;           (** -1 = free *)
  waiting : (int * (float -> unit)) Queue.t;
}

(** Per-region cache-entry table: a short assoc list while few nodes hold
    copies, overflowing to a dense per-node array for widely-replicated
    regions (where dense is proportional to the live population anyway).
    Access it through {!ensure_copy}/{!copy_of}/{!drop_copy}. *)
type cmap

type meta = {
  rid : int;
  home : int;
  len : int;                       (** payload length, floats *)
  mutable space : int;             (** owning space id; -1 = none (CRL) *)
  master : float array;            (** authoritative copy at home *)
  copies : cmap;                   (** per-node cache entries *)
  mapped : Dir.t;                  (** nodes that mapped the region but may
                                       not hold a cache entry yet — a map
                                       call costs one compact-set bit, not
                                       a zeroed copy record *)
  dir : dir;
  lock : hlock;
}

type t

(** [create ?stats ~nprocs ()] makes an empty store. When [stats] (the
    owning machine's counters) is supplied, every allocation bumps
    [region.allocs]/[region.bytes], the per-home [region.allocs.by_home]
    family, and the [region.alloc_bytes] size histogram. *)
val create : ?stats:Ace_engine.Stats.t -> nprocs:int -> unit -> t

val nprocs : t -> int

(** [alloc t ~home ~len ~space] creates a region homed at [home]. The home's
    cache entry aliases [master] and starts [Shared]. *)
val alloc : t -> home:int -> len:int -> space:int -> meta

val get : t -> int -> meta
val count : t -> int
val bytes : meta -> int

(** Total heap words of per-region directory bookkeeping (sharer sets plus
    copy-table indexes, payload excluded) across all live regions. Both
    structures only grow over a region's lifetime, so reading this at the
    end of a run yields the run's peak. *)
val dir_words : t -> int

(** [iter_copies meta f] applies [f node copy] to every live cache entry
    (order unspecified — host-side accounting and assertions only). *)
val iter_copies : meta -> (int -> copy -> unit) -> unit

(** The node's cache entry, creating an [Invalid] zeroed one if absent.
    Returns whether it already existed (a "map hit"). *)
val ensure_copy : meta -> node:int -> copy * bool

(** The map-call bookkeeping: marks the node in the compact mapped set and
    returns whether the node already had the region mapped or cached — the
    map_hit/map_miss split. Unlike {!ensure_copy}, no cache entry is
    allocated; it appears on first actual access. *)
val map_note : meta -> node:int -> bool

(** Whether the node has the region mapped (or holds a cache entry). *)
val is_mapped : meta -> node:int -> bool

(** [ensure_copy] without the existence flag (and without allocating the
    pair) — the variant coherence hot paths use. *)
val ensure_copy_c : meta -> node:int -> copy

(** Cache entry if present. *)
val copy_of : meta -> node:int -> copy option

(** {2 Bulk payload movement}

    All region data crossing the simulated wire moves through these blits
    (one [memmove] per region, never a per-element loop). [src]/[dst] is a
    region image — a copy's [cdata] or the home's [master]; [buf] is a
    message payload buffer, with the region's slice at offset [at]. [pos]
    and [len] select a partial slice of the region (default: all of it);
    ranges are validated against the region length so a wrong-sized payload
    fails at the blit instead of silently corrupting a neighbour. *)

(** [blit_out meta ~src ~at buf] copies a region slice of [src] out into
    the payload buffer [buf] at offset [at]. *)
val blit_out :
  meta -> ?pos:int -> ?len:int -> src:float array -> at:int ->
  float array -> unit

(** [blit_in meta ~buf ~at dst] copies the payload slice back into the
    region image [dst]. *)
val blit_in :
  meta -> ?pos:int -> ?len:int -> buf:float array -> at:int ->
  float array -> unit

(** Fresh heap copy of a whole region image (the payload a data message
    carries). Validates the image length. *)
val snapshot : meta -> src:float array -> float array

(** Remove a node's cache entry entirely, returning its memory to the GC —
    the region free/remap path, also used by the batched invalidation leg.
    The entry must be quiescent ([Invalid_argument] otherwise: active
    accesses or parked coherence actions), and the home's entry can never
    be dropped (it aliases [master]). Any cached [copy] pointer taken
    before the drop — including {!Blocks.t}'s one-slot memo — is stale
    after it. *)
val drop_copy : meta -> node:int -> unit

(** [iter_sharers meta ~except f] applies [f] to each current sharer node
    except [except], in ascending node order, without building a list.
    [f] must not toggle sharer bits of nodes it has not yet visited. *)
val iter_sharers : meta -> except:int -> (int -> unit) -> unit

(** Current sharer nodes, excluding [except], ascending. Allocates; prefer
    {!iter_sharers} on hot paths. *)
val sharers : meta -> except:int -> int list

(** Directory invariant checks (used by tests and debug assertions):
    at most one owner; an owner implies no other sharer marked Exclusive. *)
val check_invariants : meta -> unit
