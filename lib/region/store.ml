type state = Invalid | Shared | Exclusive

type copy = {
  cdata : float array;
  mutable cstate : state;
  mutable readers : int;
  mutable writers : int;
  mutable deferred : (float -> unit) list; (* coherence actions parked
                                              until the access ends *)
}

(* Per-region cache-entry table, same two-mode idea as {!Dir}: regions with
   a handful of cached copies (the common case) keep a short assoc list;
   widely-replicated regions — which genuinely hold ~nprocs live copies, so
   dense is proportional to population — overflow to a per-node array. *)
type cmap = {
  mutable csmall : (int * copy) list; (* authoritative while [cdense] empty *)
  mutable cdense : copy option array;
}

let cmap_cap = 6

type dir = {
  mutable owner : int;
  sharers : Dir.t;
  mutable busy : bool;
  pending : (float -> unit) Queue.t;
}

type hlock = { mutable held_by : int; waiting : (int * (float -> unit)) Queue.t }

type meta = {
  rid : int;
  home : int;
  len : int;
  mutable space : int;
  master : float array;
  copies : cmap;
  mapped : Dir.t;
  dir : dir;
  lock : hlock;
}

module Stats = Ace_engine.Stats

let sid_allocs = Stats.intern "region.allocs"
let sid_bytes = Stats.intern "region.bytes"
let fam_allocs_home = Stats.fam "region.allocs.by_home"

let hist_bytes =
  Stats.hist "region.alloc_bytes"
    ~limits:[| 16.; 64.; 256.; 1024.; 4096.; 16384. |]

type t = {
  nprocs : int;
  mutable regions : meta array;
  mutable n : int;
  stats : Stats.t option; (* the owning machine's counters, when attached *)
}

let create ?stats ~nprocs () =
  if nprocs <= 0 then invalid_arg "Store.create";
  { nprocs; regions = [||]; n = 0; stats }

let nprocs t = t.nprocs

let cmap_find m node =
  if Array.length m.cdense > 0 then m.cdense.(node)
  else List.assoc_opt node m.csmall

let cmap_set ~nprocs m node c =
  if Array.length m.cdense > 0 then m.cdense.(node) <- Some c
  else if List.mem_assoc node m.csmall then
    m.csmall <- (node, c) :: List.remove_assoc node m.csmall
  else if List.length m.csmall < cmap_cap then m.csmall <- (node, c) :: m.csmall
  else begin
    let dense = Array.make nprocs None in
    List.iter (fun (n, c) -> dense.(n) <- Some c) m.csmall;
    dense.(node) <- Some c;
    m.cdense <- dense;
    m.csmall <- []
  end

let cmap_remove m node =
  if Array.length m.cdense > 0 then m.cdense.(node) <- None
  else m.csmall <- List.remove_assoc node m.csmall

let iter_copies meta f =
  let m = meta.copies in
  if Array.length m.cdense > 0 then
    Array.iteri
      (fun node c -> match c with Some c -> f node c | None -> ())
      m.cdense
  else List.iter (fun (node, c) -> f node c) m.csmall

(* Heap words of per-region bookkeeping whose size used to scale with
   nprocs: the sharer set plus the copy-table index (3 words per assoc cell
   in small mode, one option slot per node once dense). Payload data is
   deliberately excluded — it is the application's, not the directory's. *)
let meta_dir_words meta =
  let m = meta.copies in
  let cwords =
    if Array.length m.cdense > 0 then Array.length m.cdense
    else 3 * List.length m.csmall
  in
  Dir.words meta.dir.sharers + Dir.words meta.mapped + cwords

let alloc t ~home ~len ~space =
  if home < 0 || home >= t.nprocs then invalid_arg "Store.alloc: bad home";
  if len <= 0 then invalid_arg "Store.alloc: bad length";
  let master = Array.make len 0. in
  let meta =
    {
      rid = t.n;
      home;
      len;
      space;
      master;
      copies = { csmall = []; cdense = [||] };
      mapped = Dir.create ~nprocs:t.nprocs;
      dir =
        {
          owner = -1;
          sharers = Dir.create ~nprocs:t.nprocs;
          busy = false;
          pending = Queue.create ();
        };
      lock = { held_by = -1; waiting = Queue.create () };
    }
  in
  cmap_set ~nprocs:t.nprocs meta.copies home
    { cdata = master; cstate = Shared; readers = 0; writers = 0; deferred = [] };
  Dir.add meta.dir.sharers home;
  if t.n = Array.length t.regions then begin
    let regions = Array.make (max 64 (2 * t.n)) meta in
    Array.blit t.regions 0 regions 0 t.n;
    t.regions <- regions
  end;
  t.regions.(t.n) <- meta;
  t.n <- t.n + 1;
  (match t.stats with
  | None -> ()
  | Some stats ->
      let b = float_of_int (8 * len) in
      Stats.incr_id stats sid_allocs;
      Stats.add_id stats sid_bytes b;
      Stats.incr_dim stats fam_allocs_home home;
      Stats.observe stats hist_bytes b);
  meta

let get t rid =
  if rid < 0 || rid >= t.n then invalid_arg "Store.get: bad rid";
  t.regions.(rid)

let count t = t.n
let bytes meta = 8 * meta.len

let dir_words t =
  let sum = ref 0 in
  for i = 0 to t.n - 1 do
    sum := !sum + meta_dir_words t.regions.(i)
  done;
  !sum

let ensure_copy_c meta ~node =
  match cmap_find meta.copies node with
  | Some c -> c
  | None ->
      let c =
        {
          cdata = Array.make meta.len 0.;
          cstate = Invalid;
          readers = 0;
          writers = 0;
          deferred = [];
        }
      in
      cmap_set ~nprocs:(Dir.nprocs meta.dir.sharers) meta.copies node c;
      c

let ensure_copy meta ~node =
  match cmap_find meta.copies node with
  | Some c -> (c, true)
  | None -> (ensure_copy_c meta ~node, false)

(* The region-mapping bookkeeping behind ACE_MAP/rgn_map. Mapping used to
   materialize a zeroed Invalid copy record per (region, node) — O(nprocs)
   heap per region for programs that map everything everywhere (EM3D,
   Barnes-Hut). Now a map call only marks the node in a compact set; the
   copy record appears on first actual access (Blocks' local-copy path).
   [map_note] returns whether the node already had the region mapped or
   cached — exactly the condition the old record-existence test computed —
   so the map_hit/map_miss cost split is unchanged. *)
let map_note meta ~node =
  let existed = Dir.mem meta.mapped node || cmap_find meta.copies node <> None in
  Dir.add meta.mapped node;
  existed

let is_mapped meta ~node =
  Dir.mem meta.mapped node || cmap_find meta.copies node <> None

let copy_of meta ~node = cmap_find meta.copies node

let check_range meta ~what pos len =
  if pos < 0 || len < 0 || pos + len > meta.len then
    invalid_arg
      (Printf.sprintf "Store.%s: [%d, %d) outside region %d of length %d" what
         pos (pos + len) meta.rid meta.len)

let blit_out meta ?(pos = 0) ?len ~src ~at buf =
  let len = match len with Some l -> l | None -> meta.len - pos in
  check_range meta ~what:"blit_out" pos len;
  Array.blit src pos buf at len

let blit_in meta ?(pos = 0) ?len ~buf ~at dst =
  let len = match len with Some l -> l | None -> meta.len - pos in
  check_range meta ~what:"blit_in" pos len;
  Array.blit buf at dst pos len

let snapshot meta ~src =
  if Array.length src <> meta.len then
    invalid_arg "Store.snapshot: image length does not match region";
  Array.copy src

let drop_copy meta ~node =
  if node = meta.home then invalid_arg "Store.drop_copy: home aliases master";
  (* Also forget the mapping, so a later re-map pays map_miss again — the
     cost behaviour the eager copy records gave. *)
  match cmap_find meta.copies node with
  | None -> Dir.remove meta.mapped node
  | Some c ->
      if c.readers > 0 || c.writers > 0 || c.deferred <> [] then
        invalid_arg "Store.drop_copy: copy has active accesses";
      cmap_remove meta.copies node;
      Dir.remove meta.mapped node

let iter_sharers meta ~except f = Dir.iter meta.dir.sharers ~except f

let sharers meta ~except =
  List.rev (Dir.fold meta.dir.sharers ~except (fun acc node -> node :: acc) [])

let check_invariants meta =
  let d = meta.dir in
  if d.owner >= 0 then begin
    (* The owner must be a marked sharer and be the only Exclusive copy. *)
    assert (Dir.mem d.sharers d.owner);
    iter_copies meta (fun node c ->
        match c.cstate with
        | Exclusive -> assert (node = d.owner)
        | Shared | Invalid -> ())
  end
  else
    iter_copies meta (fun _ c ->
        match c.cstate with
        | Exclusive -> assert false
        | Shared | Invalid -> ())
