type state = Invalid | Shared | Exclusive

type copy = {
  cdata : float array;
  mutable cstate : state;
  mutable readers : int;
  mutable writers : int;
  mutable deferred : (float -> unit) list; (* coherence actions parked
                                              until the access ends *)
}

type dir = {
  mutable owner : int;
  sharers : bool array;
  mutable busy : bool;
  pending : (float -> unit) Queue.t;
}

type hlock = { mutable held_by : int; waiting : (int * (float -> unit)) Queue.t }

type meta = {
  rid : int;
  home : int;
  len : int;
  mutable space : int;
  master : float array;
  copies : copy option array;
  dir : dir;
  lock : hlock;
}

module Stats = Ace_engine.Stats

let sid_allocs = Stats.intern "region.allocs"
let sid_bytes = Stats.intern "region.bytes"
let fam_allocs_home = Stats.fam "region.allocs.by_home"

let hist_bytes =
  Stats.hist "region.alloc_bytes"
    ~limits:[| 16.; 64.; 256.; 1024.; 4096.; 16384. |]

type t = {
  nprocs : int;
  mutable regions : meta array;
  mutable n : int;
  stats : Stats.t option; (* the owning machine's counters, when attached *)
}

let create ?stats ~nprocs () =
  if nprocs <= 0 then invalid_arg "Store.create";
  { nprocs; regions = [||]; n = 0; stats }

let nprocs t = t.nprocs

let alloc t ~home ~len ~space =
  if home < 0 || home >= t.nprocs then invalid_arg "Store.alloc: bad home";
  if len <= 0 then invalid_arg "Store.alloc: bad length";
  let master = Array.make len 0. in
  let meta =
    {
      rid = t.n;
      home;
      len;
      space;
      master;
      copies = Array.make t.nprocs None;
      dir =
        {
          owner = -1;
          sharers = Array.make t.nprocs false;
          busy = false;
          pending = Queue.create ();
        };
      lock = { held_by = -1; waiting = Queue.create () };
    }
  in
  meta.copies.(home) <-
    Some { cdata = master; cstate = Shared; readers = 0; writers = 0; deferred = [] };
  meta.dir.sharers.(home) <- true;
  if t.n = Array.length t.regions then begin
    let regions = Array.make (max 64 (2 * t.n)) meta in
    Array.blit t.regions 0 regions 0 t.n;
    t.regions <- regions
  end;
  t.regions.(t.n) <- meta;
  t.n <- t.n + 1;
  (match t.stats with
  | None -> ()
  | Some stats ->
      let b = float_of_int (8 * len) in
      Stats.incr_id stats sid_allocs;
      Stats.add_id stats sid_bytes b;
      Stats.incr_dim stats fam_allocs_home home;
      Stats.observe stats hist_bytes b);
  meta

let get t rid =
  if rid < 0 || rid >= t.n then invalid_arg "Store.get: bad rid";
  t.regions.(rid)

let count t = t.n
let bytes meta = 8 * meta.len

let ensure_copy_c meta ~node =
  match meta.copies.(node) with
  | Some c -> c
  | None ->
      let c =
        {
          cdata = Array.make meta.len 0.;
          cstate = Invalid;
          readers = 0;
          writers = 0;
          deferred = [];
        }
      in
      meta.copies.(node) <- Some c;
      c

let ensure_copy meta ~node =
  match meta.copies.(node) with
  | Some c -> (c, true)
  | None -> (ensure_copy_c meta ~node, false)

let copy_of meta ~node = meta.copies.(node)

let check_range meta ~what pos len =
  if pos < 0 || len < 0 || pos + len > meta.len then
    invalid_arg
      (Printf.sprintf "Store.%s: [%d, %d) outside region %d of length %d" what
         pos (pos + len) meta.rid meta.len)

let blit_out meta ?(pos = 0) ?len ~src ~at buf =
  let len = match len with Some l -> l | None -> meta.len - pos in
  check_range meta ~what:"blit_out" pos len;
  Array.blit src pos buf at len

let blit_in meta ?(pos = 0) ?len ~buf ~at dst =
  let len = match len with Some l -> l | None -> meta.len - pos in
  check_range meta ~what:"blit_in" pos len;
  Array.blit buf at dst pos len

let snapshot meta ~src =
  if Array.length src <> meta.len then
    invalid_arg "Store.snapshot: image length does not match region";
  Array.copy src

let drop_copy meta ~node =
  if node = meta.home then invalid_arg "Store.drop_copy: home aliases master";
  match meta.copies.(node) with
  | None -> ()
  | Some c ->
      if c.readers > 0 || c.writers > 0 || c.deferred <> [] then
        invalid_arg "Store.drop_copy: copy has active accesses";
      meta.copies.(node) <- None

let iter_sharers meta ~except f =
  let sh = meta.dir.sharers in
  for node = 0 to Array.length sh - 1 do
    if sh.(node) && node <> except then f node
  done

let sharers meta ~except =
  let out = ref [] in
  for node = Array.length meta.dir.sharers - 1 downto 0 do
    if meta.dir.sharers.(node) && node <> except then out := node :: !out
  done;
  !out

let check_invariants meta =
  let d = meta.dir in
  if d.owner >= 0 then begin
    (* The owner must be a marked sharer and be the only Exclusive copy. *)
    assert (d.sharers.(d.owner));
    Array.iteri
      (fun node c ->
        match c with
        | Some { cstate = Exclusive; _ } -> assert (node = d.owner)
        | Some _ | None -> ())
      meta.copies
  end
  else
    Array.iter
      (fun c ->
        match c with
        | Some { cstate = Exclusive; _ } -> assert false
        | Some _ | None -> ())
      meta.copies
