(** Coherence building blocks.

    The paper's §6 calls for "a library of protocol building blocks (for
    example, a routine for invalidating a cache block)"; this module is that
    library. Protocols (and the CRL baseline) are written by composing these
    primitives. All blocking entry points must be called from a simulated
    processor fiber; home-side transactions are serialized per region by the
    directory's busy/pending queue. *)

(** A dirty-region update parked for write-combining (batching mode). *)
type wpend

type ctx = {
  net : Ace_net.Reliable.t;
      (** the reliable transport all coherence traffic routes through;
          with no fault model attached it forwards straight to [Am] *)
  store : Store.t;
  proc : Ace_engine.Machine.proc;
  node : int;  (** [proc.id], cached for the access hot path *)
  mutable lcache : (Store.meta * Store.copy) option;
      (** one-slot memo of the last local-copy lookup (see [local_copy]).
          Dropped-copy legs must call {!reset_lcache} or the memo serves a
          stale, orphaned entry. *)
  mutable wpending : wpend list;
      (** write-combining queue, newest first; always empty with batching
          off. Every blocking entry point drains it before waiting. *)
}

val make_ctx : Ace_net.Reliable.t -> Store.t -> Ace_engine.Machine.proc -> ctx
val node : ctx -> int

(** Invalidate the local-copy memo. Required after any [Store.drop_copy] on
    this node (the batched invalidation leg calls it itself). *)
val reset_lcache : ctx -> unit

(** Size in bytes of a small control message. *)
val ctl_bytes : int

(** {2 Access sections}

    CRL-style access atomicity: a runtime brackets every access between
    [begin_access] and [end_access]; coherence actions (invalidations,
    recalls, update pushes) that arrive mid-access are deferred to the
    matching [end_access], so the data a program is reading or writing
    never changes underneath it. *)

val begin_access : ctx -> Store.meta -> write:bool -> unit
val end_access : ctx -> Store.meta -> write:bool -> unit

(** {2 Invalidation-protocol legs} *)

(** Obtain a valid [Shared] copy (3-hop recall from an exclusive owner if
    needed). No-op when the local copy is already valid. *)
val fetch_shared : ctx -> Store.meta -> unit

(** Obtain the [Exclusive] copy: recalls the owner, invalidates all other
    sharers (gathering acks), then grants ownership. *)
val fetch_exclusive : ctx -> Store.meta -> unit

(** If this node owns the region, send the data home and downgrade to
    [Shared]; otherwise no messages. *)
val writeback : ctx -> Store.meta -> unit

(** Writeback if owner, then drop the local copy ([Invalid]) and leave the
    sharer set. Used by [change_protocol]'s flush-to-base semantics. *)
val flush : ctx -> Store.meta -> unit

(** {2 Update-protocol legs} *)

(** Send this node's copy to the home; the home refreshes the master and
    forwards the update to every current sharer. The returned ivar fills
    when the home has forwarded (await it for a blocking update; ignore it
    to pipeline). *)
val push_update : ctx -> Store.meta -> unit Ace_engine.Ivar.t

(** Send this node's copy directly to an explicit set of nodes (plus the
    home master), the static-update pattern. Fills when all data messages
    have been delivered. *)
val push_to : ctx -> Store.meta -> dsts:int list -> unit Ace_engine.Ivar.t

(** {2 Home-mediated uncached access (counters, pipelined writes)} *)

(** Copy the master into the local buffer without joining the sharer set. *)
val read_home : ctx -> Store.meta -> unit

(** Blocking master update from the local buffer. *)
val write_home : ctx -> Store.meta -> unit

(** Non-blocking master update; fills on home arrival. *)
val write_home_async : ctx -> Store.meta -> unit Ace_engine.Ivar.t

(** {2 Region locks (queued at the home)} *)

val home_lock : ctx -> Store.meta -> unit
val home_unlock : ctx -> Store.meta -> unit

(** {2 Home-executed read-modify-write}

    [rmw_acquire] takes the region lock and fetches the fresh master in one
    blocking round trip; [rmw_release] ships the updated value and releases
    in a single one-way message. Together they implement fetch-and-add
    without migrating or caching the region. *)

val rmw_acquire : ctx -> Store.meta -> unit

(** Returns an ivar filled when the value+release lands at the home (for
    pipelined drains); the caller is never blocked. *)
val rmw_release : ctx -> Store.meta -> unit Ace_engine.Ivar.t

(** Home-executed fetch-and-add on slot 0: one round trip; the old value is
    left in slot 0 of the caller's local copy. Not for the home node (its
    copy aliases the master) — see {!home_rmw_begin}. *)
val fetch_add : ctx -> Store.meta -> delta:float -> unit

(** Bracket a home-resident in-place read-modify-write of the master so it
    serializes with remote {!fetch_add}s (directory-transaction mutual
    exclusion, independent of the user-visible region lock). *)
val home_rmw_begin : ctx -> Store.meta -> unit

val home_rmw_end : ctx -> Store.meta -> unit

(** Release the region's lock when [after] fills (combined update+release);
    never blocks the caller. *)
val unlock_after : ctx -> Store.meta -> unit Ace_engine.Ivar.t -> unit

(** Home lock acquire whose grant carries the fresh master data (one round
    trip for lock + value). In batching mode, any queued write-combined
    updates ride with the lock request in one vectored message. *)
val lock_fetch : ctx -> Store.meta -> unit

(** {2 Bulk-transfer batching legs}

    Opt-in (consult [Reliable.batching]) coalesced variants of the legs
    above: same-destination messages merge into one vectored bulk message
    ({!Ace_net.Am.send_multi}) and a whole batch pays one sender overhead.
    With batching off these are never called and the ordinary legs behave
    bit-identically to before. *)

(** Batched read misses (bulk prefetch): fetch every [Invalid] region of
    the list with one vectored request per distinct home and one bulk data
    grant per home. Per-region misses are counted as usual; the
    requester-side miss overhead is charged once per batch
    ([coh.bulk_fetch] counts batches). No-op when nothing is missing. *)
val fetch_shared_batch : ctx -> Store.meta list -> unit

(** Batched flush of this node's involvement in the regions (the
    [change_protocol] detach and free/remap path): per-home coalesced
    writebacks and sharer-drops, quiescent cache entries dropped via
    [Store.drop_copy], local-copy memo reset. Caller must be quiescent on
    these regions (no open access sections, no concurrent recalls) —
    call between barriers. [coh.inval_batch] counts batches. *)
val invalidate_batch : ctx -> Store.meta list -> unit

(** Batched {!push_to}: one message per distinct destination for the whole
    (region, consumers) list, single sender overhead. Fills when every
    consumer copy and remote master is refreshed. *)
val push_to_batch :
  ctx -> (Store.meta * int list) list -> unit Ace_engine.Ivar.t

(** Park a dirty-region update for the next {!flush_writes} (the
    write-combining replacement for {!write_home_async}); fills when the
    master holds the update. [coh.write_combined] counts parked updates. *)
val queue_write_home : ctx -> Store.meta -> unit Ace_engine.Ivar.t

(** Flush the write-combining queue as one vectored send (no-op when
    empty). Every blocking entry point calls this implicitly. *)
val flush_writes : ctx -> unit
