module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Net = Ace_net.Reliable

(* A dirty-region update queued for write-combining: flushed to its home as
   part of one vectored message (see [queue_write_home]/[flush_writes]). *)
type wpend = {
  wp_meta : Store.meta;
  wp_payload : float array;
  wp_iv : unit Ivar.t; (* fills when the update lands in the master *)
}

type ctx = {
  net : Net.t;
      (* the reliable transport; all coherence and collective traffic goes
         through it so every protocol survives a lossy link unchanged *)
  store : Store.t;
  proc : Machine.proc;
  node : int; (* proc.id, cached *)
  mutable lcache : (Store.meta * Store.copy) option;
      (* one-slot memo of the last local-copy lookup: applications touch the
         same handle several times per access section (start, data, end), so
         this turns the repeated [copies.(node)] option-match into a pointer
         compare. A cache entry lives until a batched-invalidation or
         free/remap leg drops it ([Store.drop_copy]) — every such leg must
         call [reset_lcache] or the memo serves a stale, orphaned copy. *)
  mutable wpending : wpend list;
      (* write-combining queue, newest first; empty whenever batching is
         off. Every blocking entry point drains it before waiting so a
         queued update (and the lock release ordered behind it via
         [unlock_after]) can never be stranded behind this fiber's block. *)
}

let make_ctx net store proc =
  { net; store; proc; node = proc.Machine.id; lcache = None; wpending = [] }

let node ctx = ctx.node
let reset_lcache ctx = ctx.lcache <- None

(* The calling node's cache entry for [meta], creating it if absent. *)
let local_copy ctx meta =
  match ctx.lcache with
  | Some (m, c) when m == meta -> c
  | _ ->
      let c = Store.ensure_copy_c meta ~node:ctx.node in
      ctx.lcache <- Some (meta, c);
      c

module Stats = Ace_engine.Stats

let sid_read_miss = Stats.intern "coh.read_miss"
let sid_write_miss = Stats.intern "coh.write_miss"
let sid_update_push = Stats.intern "coh.update_push"
let sid_static_push = Stats.intern "coh.static_push"
let sid_inval_batch = Stats.intern "coh.inval_batch"
let sid_late_forward = Stats.intern "coh.late_forward"
let sid_write_combined = Stats.intern "coh.write_combined"
let sid_bulk_fetch = Stats.intern "coh.bulk_fetch"
let fam_read_miss_space = Stats.fam "coh.read_miss.by_space"
let fam_write_miss_space = Stats.fam "coh.write_miss.by_space"
let fam_miss_region = Stats.fam "coh.miss.by_region"
let fam_inval_space = Stats.fam "coh.inval.by_space"

let hist_inval_fanout =
  Stats.hist "coh.inval_fanout" ~limits:[| 0.; 1.; 2.; 4.; 8.; 16.; 32. |]

(* Miss accounting: total, per space (CRL regions live in space -1 and skip
   the space dimension), and per region. *)
let count_miss stats sid fam_space (meta : Store.meta) =
  Stats.incr_id stats sid;
  if meta.Store.space >= 0 then Stats.incr_dim stats fam_space meta.Store.space;
  Stats.incr_dim stats fam_miss_region meta.Store.rid

let ctl_bytes = 16
let data_bytes meta = Store.bytes meta + ctl_bytes

(* Run [f] — work on processor [owner]'s state — from whatever node's
   handler is executing: inline sequentially (and within a shard), a routed
   continuation event on [owner]'s shard across shards. Used wherever a
   handler's tail touches another node's state: the home-side [dir_exit]
   a requester performs when its grant lands, the shared fan-in counters
   that ack/delivery handlers on many nodes decrement toward one
   completion. Call sites must keep it in tail position — nothing may be
   scheduled after it (see Machine.run_at). *)
let at ctx ~owner ~time f = Machine.run_at (Net.machine ctx.net) ~owner ~time f

(* Home-side transaction serialization. A transaction runs as a chain of
   message handlers; [dir_enter] starts it when the directory is free and
   [dir_exit] starts the next queued one. *)
let dir_enter (meta : Store.meta) ~time k =
  let d = meta.Store.dir in
  if d.Store.busy then Queue.push k d.Store.pending
  else begin
    d.Store.busy <- true;
    k time
  end

let dir_exit (meta : Store.meta) ~time =
  let d = meta.Store.dir in
  match Queue.take_opt d.Store.pending with
  | Some k -> k time
  | None -> d.Store.busy <- false

(* CRL-style access atomicity: between start_* and the matching end_*, a
   copy's data must stay stable and valid, so coherence actions that arrive
   mid-access are parked on the copy and run when the access ends (at no
   earlier virtual time than they arrived). *)

let begin_access ctx meta ~write =
  let c = local_copy ctx meta in
  if write then c.Store.writers <- c.Store.writers + 1
  else c.Store.readers <- c.Store.readers + 1

let release_deferred (c : Store.copy) ~time =
  if c.Store.readers = 0 && c.Store.writers = 0 then
    match c.Store.deferred with
    | [] -> ()
    | ds ->
        c.Store.deferred <- [];
        List.iter (fun f -> f time) (List.rev ds)

let end_access ctx meta ~write =
  let c = local_copy ctx meta in
  if write then c.Store.writers <- c.Store.writers - 1
  else c.Store.readers <- c.Store.readers - 1;
  release_deferred c ~time:ctx.proc.Machine.clock

let run_or_defer (c : Store.copy) ~time f =
  if c.Store.readers > 0 || c.Store.writers > 0 then
    c.Store.deferred <- (fun tend -> f (Float.max tend time)) :: c.Store.deferred
  else f time

(* Grant-to-resume pinning. A fetch's grant applies at message-delivery
   time, but the fetching fiber's resumption is a *queued* event — and the
   transaction-closing [dir_exit] starts the next queued directory
   transaction synchronously in between. Without a pin, that transaction's
   recall (or invalidation) would find readers = writers = 0 on the
   just-granted copy and steal it before the requester has even observed
   it; the requester then runs its access section against a dead copy and
   its write never reaches the master (a lost update). So the grant pins
   the copy like a one-access hold, and the requester releases the pin
   after resuming. Deferred actions released by an unpin are *rescheduled*
   rather than run inline: the [begin_access] that normally follows a
   fetch runs later in the same event, so an inline recall would reopen
   the very window the pin closes. Uncontended runs never defer, so the
   pin is a pure counter twiddle there. *)
let pin (c : Store.copy) ~write =
  if write then c.Store.writers <- c.Store.writers + 1
  else c.Store.readers <- c.Store.readers + 1

let unpin ctx (c : Store.copy) ~write =
  if write then c.Store.writers <- c.Store.writers - 1
  else c.Store.readers <- c.Store.readers - 1;
  if c.Store.readers = 0 && c.Store.writers = 0 && c.Store.deferred <> [] then begin
    let time = ctx.proc.Machine.clock in
    Machine.schedule
      (Net.machine ctx.net)
      ~time
      (fun () -> release_deferred c ~time)
  end

(* Run [body] as a home-side directory transaction on behalf of the calling
   fiber. At the home the request leg is free (a local table operation);
   remotely it is a real request message. [body ~time finish] must call
   [finish ~time] exactly once; the fiber resumes at that time. The finish
   at the requester doubles as the transaction-closing ack (equivalent to an
   instantaneous ack message; it prevents a later invalidation from
   overtaking the data grant without paying a fourth network hop). *)
let transact ctx meta body =
  let n = node ctx in
  let home = meta.Store.home in
  if n = home then begin
    let iv = Ivar.create () in
    dir_enter meta ~time:ctx.proc.Machine.clock (fun time ->
        body ~time (fun ~time ->
            Ivar.fill iv ~time ();
            dir_exit meta ~time));
    Machine.await ctx.proc iv
  end
  else
    Net.rpc ctx.net ctx.proc ~dst:home ~bytes:ctl_bytes (fun reply ~time ->
        dir_enter meta ~time (fun time ->
            body ~time (fun ~time ->
                Ivar.fill reply ~time ();
                (* [finish] runs where the grant landed — usually the
                   requester — but closing the transaction (and starting
                   the next queued one) is home-side work. *)
                at ctx ~owner:home ~time (fun () -> dir_exit meta ~time))))

(* Recall the exclusive owner's data into the master. [downgrade] is the
   state the owner's copy is left in. Calls [k] at the home once the master
   is fresh. Must run inside a directory transaction. *)
let recall_owner ctx meta ~time ~downgrade k =
  let d = meta.Store.dir in
  let o = d.Store.owner in
  if o < 0 then k time
  else begin
    let home = meta.Store.home in
    let finish time =
      d.Store.owner <- -1;
      (match Store.copy_of meta ~node:home with
      | Some c -> c.Store.cstate <- Store.Shared
      | None -> ());
      Dir.add d.Store.sharers home;
      k time
    in
    if o = home then begin
      (* The master already aliases the owner's data. *)
      let c =
        match Store.copy_of meta ~node:o with Some c -> c | None -> assert false
      in
      run_or_defer c ~time (fun time ->
          c.Store.cstate <- downgrade;
          if downgrade = Store.Invalid then Dir.remove d.Store.sharers o;
          d.Store.owner <- -1;
          k time)
    end
    else
      Net.send ctx.net ~now:time ~src:home ~dst:o ~bytes:ctl_bytes (fun ~time ->
          let oc =
            match Store.copy_of meta ~node:o with
            | Some c -> c
            | None -> assert false
          in
          run_or_defer oc ~time (fun time ->
              assert (oc.Store.cstate = Store.Exclusive);
              oc.Store.cstate <- downgrade;
              if downgrade = Store.Invalid then Dir.remove d.Store.sharers o;
              let snapshot = Store.snapshot meta ~src:oc.Store.cdata in
              Net.send ctx.net ~now:time ~src:o ~dst:home ~bytes:(data_bytes meta)
                (fun ~time ->
                  Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
                  finish time)))
  end

let stats ctx = Machine.stats (Net.machine ctx.net)

(* ---- causal fan-in (critical-path recording) ----

   Completion events gated on ack/delivery counters (invalidation acks,
   update pushes, batched fetches) depend on ALL their contributing
   arrivals, not just whichever handler happened to decrement the counter
   last. When a Crit recorder is attached, each contributing site folds
   its causal context into a join ref with [merge_cause], and the
   completion adopts the join with [adopt_cause] just before granting or
   filling — so a what-if replay can re-decide which arrival is last.
   Both are a single field read when no recorder is attached. *)

let crit ctx = Machine.crit (Net.machine ctx.net)

let merge_cause ctx jn =
  match crit ctx with
  | None -> ()
  | Some c -> jn := Ace_engine.Crit.join c !jn (Ace_engine.Crit.cur c)

let adopt_cause ctx jn =
  match crit ctx with
  | None -> ()
  | Some c -> if !jn >= 0 then Ace_engine.Crit.set_cur c !jn

(* ---- write-combining (batching): queued dirty-region updates ---- *)

(* One vectored-message part per queued update: at the home, land the
   payload in the master under the directory lock and signal the writer's
   ivar (which also releases any lock ordered behind it via
   [unlock_after]). *)
let wpart w =
  let meta = w.wp_meta in
  Net.part ~dst:meta.Store.home ~bytes:(data_bytes meta) (fun ~time ->
      dir_enter meta ~time (fun time ->
          Store.blit_in meta ~buf:w.wp_payload ~at:0 meta.Store.master;
          Ivar.fill w.wp_iv ~time ();
          dir_exit meta ~time))

(* Flush the queue as one vectored send: same-home updates coalesce into a
   single bulk message, and the whole flush charges one sender overhead. *)
let flush_writes ctx =
  match ctx.wpending with
  | [] -> ()
  | ws ->
      ctx.wpending <- [];
      Net.send_multi_from ctx.net ctx.proc (List.rev_map wpart ws)

(* Drain before blocking: a parked update's ivar may gate another node's
   progress (combined update+release), so no fiber may block with a
   non-empty queue. Free when the queue is empty — always, with batching
   off. *)
let drain ctx = if ctx.wpending <> [] then flush_writes ctx

(* Queue a dirty-region update for the next flush — batching mode's
   write-combining replacement for [write_home_async]; home writes land via
   aliasing immediately. The returned ivar fills when the master holds the
   update. *)
let queue_write_home ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let done_iv = Ivar.create () in
  if n = meta.Store.home then Ivar.fill done_iv ~time:ctx.proc.Machine.clock ()
  else begin
    Stats.incr_id (stats ctx) sid_write_combined;
    let payload = Store.snapshot meta ~src:copy.Store.cdata in
    ctx.wpending <-
      { wp_meta = meta; wp_payload = payload; wp_iv = done_iv } :: ctx.wpending
  end;
  done_iv

let fetch_shared ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  if copy.Store.cstate <> Store.Invalid then ()
  else begin
    drain ctx;
    let home = meta.Store.home in
    count_miss (stats ctx) sid_read_miss fam_read_miss_space meta;
    Machine.advance ctx.proc (Net.cost ctx.net).Ace_net.Cost_model.miss_overhead;
    transact ctx meta (fun ~time finish ->
        recall_owner ctx meta ~time ~downgrade:Store.Shared (fun time ->
            Dir.add meta.Store.dir.Store.sharers n;
            if n = home then begin
              (* master aliased: fresh after the recall *)
              copy.Store.cstate <- Store.Shared;
              pin copy ~write:false;
              finish ~time
            end
            else begin
              let snapshot = Store.snapshot meta ~src:meta.Store.master in
              Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes:(data_bytes meta)
                (fun ~time ->
                  Store.blit_in meta ~buf:snapshot ~at:0 copy.Store.cdata;
                  copy.Store.cstate <- Store.Shared;
                  pin copy ~write:false;
                  finish ~time)
            end));
    unpin ctx copy ~write:false
  end

(* Batched read misses (bulk prefetch): one vectored request per home node
   covering every Invalid region in [metas], answered by one bulk data
   grant per home carrying all the requested payloads — the
   protocol-driven bulk transfer the paper's customizable protocols make
   fall out of user-specified granularity. Misses are still counted per
   region, but the requester-side miss overhead is charged once for the
   whole batch. *)
let fetch_shared_batch ctx metas =
  drain ctx;
  let n = node ctx in
  let missing =
    List.filter
      (fun (meta : Store.meta) ->
        n <> meta.Store.home
        && (local_copy ctx meta).Store.cstate = Store.Invalid)
      metas
  in
  if missing <> [] then begin
    let st = stats ctx in
    List.iter
      (fun meta -> count_miss st sid_read_miss fam_read_miss_space meta)
      missing;
    Stats.incr_id st sid_bulk_fetch;
    Machine.advance ctx.proc (Net.cost ctx.net).Ace_net.Cost_model.miss_overhead;
    (* Group by home in first-appearance order without touching nprocs:
       batches are short, so a linear assoc scan beats a per-node array. *)
    let by_home = ref [] in
    List.iter
      (fun (meta : Store.meta) ->
        let h = meta.Store.home in
        if List.mem_assoc h !by_home then
          by_home :=
            List.map
              (fun (h', ms) -> if h' = h then (h', meta :: ms) else (h', ms))
              !by_home
        else by_home := (h, [ meta ]) :: !by_home)
      missing;
    let homes = List.rev_map (fun (h, ms) -> (h, List.rev ms)) !by_home in
    let done_iv = Ivar.create () in
    let groups = ref (List.length homes) in
    let cjn = ref (-1) in
    let parts =
      List.map
        (fun (h, group) ->
          let total =
            List.fold_left (fun a (m : Store.meta) -> a + m.Store.len) 0 group
          in
          Net.part ~dst:h ~bytes:ctl_bytes (fun ~time ->
              (* At the home: walk the group's directories in order,
                 recalling any exclusive owners and collecting fresh master
                 data into one payload, then answer with a single bulk
                 grant. *)
              let payload = Array.make total 0. in
              let rec collect ~time at = function
                | [] ->
                    Net.send ctx.net ~now:time ~src:h ~dst:n
                      ~bytes:((8 * total) + ctl_bytes) (fun ~time ->
                        let at = ref 0 in
                        List.iter
                          (fun (meta : Store.meta) ->
                            let c = Store.ensure_copy_c meta ~node:n in
                            Store.blit_in meta ~buf:payload ~at:!at
                              c.Store.cdata;
                            c.Store.cstate <- Store.Shared;
                            at := !at + meta.Store.len)
                          group;
                        merge_cause ctx cjn;
                        decr groups;
                        if !groups = 0 then begin
                          adopt_cause ctx cjn;
                          Ivar.fill done_iv ~time ()
                        end)
                | (meta : Store.meta) :: rest ->
                    dir_enter meta ~time (fun time ->
                        recall_owner ctx meta ~time ~downgrade:Store.Shared
                          (fun time ->
                            Dir.add meta.Store.dir.Store.sharers n;
                            Store.blit_out meta ~src:meta.Store.master ~at
                              payload;
                            dir_exit meta ~time;
                            collect ~time (at + meta.Store.len) rest))
              in
              collect ~time 0 group))
        homes
    in
    Net.send_multi_from ctx.net ctx.proc parts;
    Machine.await ctx.proc done_iv
  end

let fetch_exclusive ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let d = meta.Store.dir in
  if copy.Store.cstate = Store.Exclusive && d.Store.owner = n then ()
  else begin
    drain ctx;
    let home = meta.Store.home in
    count_miss (stats ctx) sid_write_miss fam_write_miss_space meta;
    Machine.advance ctx.proc (Net.cost ctx.net).Ace_net.Cost_model.miss_overhead;
    transact ctx meta (fun ~time finish ->
        recall_owner ctx meta ~time ~downgrade:Store.Invalid (fun time ->
            (* Invalidate every sharer except the requester, gathering acks;
               a sharer mid-access defers its invalidation (and thus its
               ack) until the access ends. Victims are counted up front so
               no ack can observe outstanding = 0 early; the send loop below
               revisits the same nodes (invalidations only clear bits the
               loop filters out anyway). *)
            let n_victims = ref 0 in
            Store.iter_sharers meta ~except:n (fun s ->
                if s <> home then incr n_victims);
            let invalidate_home = (Dir.mem d.Store.sharers home) && home <> n in
            let had_valid_copy = copy.Store.cstate = Store.Shared in
            let grant time =
              d.Store.owner <- n;
              Dir.add d.Store.sharers n;
              if n = home then begin
                copy.Store.cstate <- Store.Exclusive;
                pin copy ~write:true;
                finish ~time
              end
              else begin
                let bytes = if had_valid_copy then ctl_bytes else data_bytes meta in
                let snapshot =
                  if had_valid_copy then [||] else Store.snapshot meta ~src:meta.Store.master
                in
                Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes (fun ~time ->
                    if not had_valid_copy then
                      Store.blit_in meta ~buf:snapshot ~at:0 copy.Store.cdata;
                    copy.Store.cstate <- Store.Exclusive;
                    pin copy ~write:true;
                    finish ~time)
              end
            in
            let outstanding =
              ref (!n_victims + if invalidate_home then 1 else 0)
            in
            let cjn = ref (-1) in
            let st = stats ctx in
            Stats.observe st hist_inval_fanout (float_of_int !outstanding);
            if meta.Store.space >= 0 && !outstanding > 0 then
              Stats.add_dim st fam_inval_space meta.Store.space
                (float_of_int !outstanding);
            let acked time =
              merge_cause ctx cjn;
              decr outstanding;
              if !outstanding = 0 then begin
                adopt_cause ctx cjn;
                grant time
              end
            in
            if !outstanding = 0 then grant time
            else begin
              if invalidate_home then begin
                match Store.copy_of meta ~node:home with
                | Some c ->
                    run_or_defer c ~time (fun time ->
                        c.Store.cstate <- Store.Invalid;
                        Dir.remove d.Store.sharers home;
                        acked time)
                | None ->
                    Dir.remove d.Store.sharers home;
                    acked time
              end;
              Store.iter_sharers meta ~except:n (fun s ->
                  if s <> home then
                    Net.send ctx.net ~now:time ~src:home ~dst:s ~bytes:ctl_bytes
                      (fun ~time ->
                        let act time =
                          (match Store.copy_of meta ~node:s with
                          | Some c -> c.Store.cstate <- Store.Invalid
                          | None -> ());
                          (* The sharer bit clears when the ack lands: the
                             sharer set is the home's state, and between
                             invalidation and ack the busy directory keeps
                             every reader of it out anyway. *)
                          Net.send ctx.net ~now:time ~src:s ~dst:home
                            ~bytes:ctl_bytes (fun ~time ->
                              Dir.remove d.Store.sharers s;
                              acked time)
                        in
                        match Store.copy_of meta ~node:s with
                        | Some c -> run_or_defer c ~time act
                        | None -> act time))
            end));
    unpin ctx copy ~write:true
  end

let writeback ctx meta =
  let n = node ctx in
  let d = meta.Store.dir in
  if d.Store.owner <> n then ()
  else begin
    drain ctx;
    let copy =
      match Store.copy_of meta ~node:n with Some c -> c | None -> assert false
    in
    let home = meta.Store.home in
    if n = home then
      transact ctx meta (fun ~time finish ->
          d.Store.owner <- -1;
          copy.Store.cstate <- Store.Shared;
          finish ~time)
    else begin
      let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
      Net.rpc ctx.net ctx.proc ~dst:home ~bytes:(data_bytes meta)
        (fun reply ~time ->
          dir_enter meta ~time (fun time ->
              Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
              d.Store.owner <- -1;
              copy.Store.cstate <- Store.Shared;
              (match Store.copy_of meta ~node:home with
              | Some c -> c.Store.cstate <- Store.Shared
              | None -> ());
              Dir.add d.Store.sharers home;
              Ivar.fill reply ~time ();
              dir_exit meta ~time))
    end
  end

let flush ctx meta =
  let n = node ctx in
  writeback ctx meta;
  if n <> meta.Store.home then begin
    match Store.copy_of meta ~node:n with
    | None -> ()
    | Some copy ->
        if copy.Store.cstate <> Store.Invalid then begin
          copy.Store.cstate <- Store.Invalid;
          transact ctx meta (fun ~time finish ->
              Dir.remove meta.Store.dir.Store.sharers n;
              finish ~time)
        end
  end

(* Batched flush of this node's involvement in [metas] (region free/remap
   and the [change_protocol] detach storm): writebacks and sharer-drops for
   regions with the same home coalesce into one vectored message under one
   sender overhead, quiescent cache entries are dropped outright (memory
   back to the GC — the zero-copy reclaim path), and the local-copy memo
   is reset so it cannot serve a dropped entry. Must be called from a
   quiescent point: no active access sections on these regions and no
   concurrent transaction recalling this node (the change-protocol barrier
   preceding the detach provides exactly this). *)
let invalidate_batch ctx metas =
  drain ctx;
  reset_lcache ctx;
  let n = node ctx in
  let outstanding = ref 0 in
  let cjn = ref (-1) in
  let done_iv = Ivar.create () in
  let parts = ref [] in
  let home_owned = ref [] in
  List.iter
    (fun (meta : Store.meta) ->
      let home = meta.Store.home in
      if n = home then begin
        (* Home involvement never travels: writeback is a local transact. *)
        if meta.Store.dir.Store.owner = n then
          home_owned := meta :: !home_owned
      end
      else
        match Store.copy_of meta ~node:n with
        | None -> ()
        | Some copy ->
            let owned = meta.Store.dir.Store.owner = n in
            let valid = copy.Store.cstate <> Store.Invalid in
            if owned || valid then begin
              let bytes = if owned then data_bytes meta else ctl_bytes in
              let payload =
                if owned then Store.snapshot meta ~src:copy.Store.cdata
                else [||]
              in
              copy.Store.cstate <- Store.Invalid;
              incr outstanding;
              parts :=
                Net.part ~dst:home ~bytes (fun ~time ->
                    dir_enter meta ~time (fun time ->
                        let d = meta.Store.dir in
                        if owned then begin
                          Store.blit_in meta ~buf:payload ~at:0
                            meta.Store.master;
                          d.Store.owner <- -1;
                          (match Store.copy_of meta ~node:home with
                          | Some c -> c.Store.cstate <- Store.Shared
                          | None -> ());
                          Dir.add d.Store.sharers home
                        end;
                        Dir.remove d.Store.sharers n;
                        dir_exit meta ~time;
                        (* Parts fan out to every home in the batch: the
                           completion counter serializes back at the
                           requester. *)
                        at ctx ~owner:n ~time (fun () ->
                            merge_cause ctx cjn;
                            decr outstanding;
                            if !outstanding = 0 then begin
                              adopt_cause ctx cjn;
                              Ivar.fill done_iv ~time ()
                            end)))
                :: !parts
            end;
            if
              copy.Store.readers = 0 && copy.Store.writers = 0
              && copy.Store.deferred = []
            then Store.drop_copy meta ~node:n)
    metas;
  List.iter (fun meta -> writeback ctx meta) (List.rev !home_owned);
  if !outstanding > 0 then begin
    Stats.incr_id (stats ctx) sid_inval_batch;
    Net.send_multi_from ctx.net ctx.proc (List.rev !parts);
    Machine.await ctx.proc done_iv
  end

(* Forward [snapshot] to every current sharer except [n] and the home,
   refreshing their caches. Runs at the home inside a transaction; calls
   [all_delivered ~time] once every forward has landed (immediately when
   there is nothing to forward). *)
let forward_to_sharers ctx meta ~time ~snapshot ~n ~all_delivered =
  let home = meta.Store.home in
  let outstanding = ref 0 in
  let cjn = ref (-1) in
  Store.iter_sharers meta ~except:n (fun s ->
      if s <> home then incr outstanding);
  if !outstanding = 0 then all_delivered ~time
  else
    Store.iter_sharers meta ~except:n (fun s ->
        if s <> home then
          Net.send ctx.net ~now:time ~src:home ~dst:s ~bytes:(data_bytes meta)
            (fun ~time ->
              (match Store.copy_of meta ~node:s with
              | Some c ->
                  run_or_defer c ~time (fun _ ->
                      Store.blit_in meta ~buf:snapshot ~at:0 c.Store.cdata;
                      if c.Store.cstate = Store.Invalid then
                        c.Store.cstate <- Store.Shared)
              | None -> ());
              (* Every sharer's delivery decrements one fan-in counter
                 toward the completion: serialize the counter at the home,
                 which owns the forward. *)
              at ctx ~owner:home ~time (fun () ->
                  merge_cause ctx cjn;
                  decr outstanding;
                  if !outstanding = 0 then begin
                    adopt_cause ctx cjn;
                    all_delivered ~time
                  end)))

(* The ivar fills once every consumer copy has been refreshed, so a writer
   awaiting it cannot race its own update past a barrier. *)
let push_update ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let home = meta.Store.home in
  let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
  let done_iv = Ivar.create () in
  Stats.incr_id (stats ctx) sid_update_push;
  let all_delivered ~time = Ivar.fill done_iv ~time () in
  if n = home then
    (* Home writes land in the master via aliasing: only forward. *)
    dir_enter meta ~time:ctx.proc.Machine.clock (fun time ->
        forward_to_sharers ctx meta ~time ~snapshot ~n ~all_delivered;
        dir_exit meta ~time)
  else
    Net.send_from ctx.net ctx.proc ~dst:home ~bytes:(data_bytes meta)
      (fun ~time ->
        dir_enter meta ~time (fun time ->
            Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
            (match Store.copy_of meta ~node:home with
            | Some c ->
                if c.Store.cstate = Store.Invalid then
                  c.Store.cstate <- Store.Shared
            | None -> ());
            Dir.add meta.Store.dir.Store.sharers home;
            forward_to_sharers ctx meta ~time ~snapshot ~n ~all_delivered;
            dir_exit meta ~time));
  done_iv

let push_to ctx meta ~dsts =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let home = meta.Store.home in
  let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
  let done_iv = Ivar.create () in
  let remote_targets =
    List.sort_uniq compare (List.filter (fun d -> d <> n) (home :: dsts))
  in
  Stats.incr_id (stats ctx) sid_static_push;
  (* When the writer is the home, the master is already fresh (aliasing)
     and only remote consumers appear in [remote_targets]. *)
  let outstanding = ref (List.length remote_targets) in
  let cjn = ref (-1) in
  if !outstanding = 0 then Ivar.fill done_iv ~time:ctx.proc.Machine.clock ()
  else
    List.iter
      (fun dst ->
        Net.send_from ctx.net ctx.proc ~dst ~bytes:(data_bytes meta)
          (fun ~time ->
            (if dst = home then begin
               Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
               match Store.copy_of meta ~node:home with
               | Some c ->
                   if c.Store.cstate = Store.Invalid then
                     c.Store.cstate <- Store.Shared
               | None -> ()
             end
             else begin
               let c = Store.ensure_copy_c meta ~node:dst in
               run_or_defer c ~time (fun _ ->
                   Store.blit_in meta ~buf:snapshot ~at:0 c.Store.cdata;
                   if c.Store.cstate = Store.Invalid then
                     c.Store.cstate <- Store.Shared)
             end);
            (* Sharer-set bookkeeping and the fan-in toward the writer's
               completion are the home's state — serialize them there. *)
            at ctx ~owner:home ~time (fun () ->
                Dir.add meta.Store.dir.Store.sharers dst;
                merge_cause ctx cjn;
                decr outstanding;
                if !outstanding = 0 then begin
                  adopt_cause ctx cjn;
                  Ivar.fill done_iv ~time ()
                end)))
      remote_targets;
  done_iv

(* Write-combined static update: push every (region, consumers) item of the
   batch at once, with messages bound for the same destination coalesced
   into one vectored bulk message and the whole batch charged a single
   sender overhead — the producer's end-of-phase burst becomes one message
   per consumer instead of one per (region, consumer) pair. The returned
   ivar fills once every consumer copy (and every remote master) has been
   refreshed. *)
let push_to_batch ctx items =
  (* The caller blocks on the returned ivar, and no fiber may block with a
     non-empty write-combining queue (see [drain]) — flush parked updates
     first so they cannot be stranded behind the push (e.g. a protocol
     detach publishing its last batch before a change_protocol swap). *)
  drain ctx;
  let n = node ctx in
  let done_iv = Ivar.create () in
  let outstanding = ref 0 in
  let cjn = ref (-1) in
  let parts = ref [] in
  let st = stats ctx in
  List.iter
    (fun ((meta : Store.meta), dsts) ->
      let copy = local_copy ctx meta in
      let home = meta.Store.home in
      Stats.incr_id st sid_static_push;
      let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
      let targets =
        List.sort_uniq compare (List.filter (fun d -> d <> n) (home :: dsts))
      in
      List.iter
        (fun dst ->
          incr outstanding;
          (* Batch items can have different homes, so — unlike [push_to] —
             the fan-in counter serializes at the writer: every delivery
             routes its decrement there. *)
          let delivered ~time =
            merge_cause ctx cjn;
            decr outstanding;
            if !outstanding = 0 then begin
              adopt_cause ctx cjn;
              Ivar.fill done_iv ~time ()
            end
          in
          parts :=
            Net.part ~dst ~bytes:(data_bytes meta) (fun ~time ->
                if dst = home then
                  (* [targets] is the writer's host view of the sharer set
                     from before the send; a reader whose fetch lands at the
                     home in flight holds the old master as a Shared copy and
                     is missing from it. Take the directory like
                     [push_update]'s home path and forward the payload to any
                     sharer the writer's list missed, so the batch refreshes
                     exactly the copies the unbatched push would have. *)
                  dir_enter meta ~time (fun time ->
                      Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
                      (match Store.copy_of meta ~node:home with
                      | Some c ->
                          if c.Store.cstate = Store.Invalid then
                            c.Store.cstate <- Store.Shared
                      | None -> ());
                      Dir.add meta.Store.dir.Store.sharers dst;
                      let late = ref 0 in
                      Store.iter_sharers meta ~except:n (fun s ->
                          if s <> home && not (List.mem s targets) then begin
                            incr late;
                            Stats.incr_id (stats ctx) sid_late_forward;
                            Net.send ctx.net ~now:time ~src:home ~dst:s
                              ~bytes:(data_bytes meta) (fun ~time ->
                                (match Store.copy_of meta ~node:s with
                                | Some c ->
                                    run_or_defer c ~time (fun _ ->
                                        Store.blit_in meta ~buf:snapshot ~at:0
                                          c.Store.cdata;
                                        if c.Store.cstate = Store.Invalid then
                                          c.Store.cstate <- Store.Shared)
                                | None -> ());
                                at ctx ~owner:n ~time (fun () ->
                                    delivered ~time))
                          end);
                      dir_exit meta ~time;
                      let late = !late in
                      (* The late-forward increments land with this part's
                         own decrement, atomically at the writer — and a
                         full message latency before any late delivery can
                         decrement, so the counter can never prematurely
                         hit zero. *)
                      at ctx ~owner:n ~time (fun () ->
                          outstanding := !outstanding + late;
                          delivered ~time))
                else begin
                  (let c = Store.ensure_copy_c meta ~node:dst in
                   run_or_defer c ~time (fun _ ->
                       Store.blit_in meta ~buf:snapshot ~at:0 c.Store.cdata;
                       if c.Store.cstate = Store.Invalid then
                         c.Store.cstate <- Store.Shared));
                  (* Home-side sharer bookkeeping, then the fan-in at the
                     writer. *)
                  at ctx ~owner:home ~time (fun () ->
                      Dir.add meta.Store.dir.Store.sharers dst;
                      at ctx ~owner:n ~time (fun () -> delivered ~time))
                end)
            :: !parts)
        targets)
    items;
  if !outstanding = 0 then Ivar.fill done_iv ~time:ctx.proc.Machine.clock ()
  else Net.send_multi_from ctx.net ctx.proc (List.rev !parts);
  done_iv

let read_home ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  if n = meta.Store.home then ()
  else begin
    drain ctx;
    let home = meta.Store.home in
    transact ctx meta (fun ~time finish ->
        recall_owner ctx meta ~time ~downgrade:Store.Shared (fun time ->
            let snapshot = Store.snapshot meta ~src:meta.Store.master in
            Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes:(data_bytes meta)
              (fun ~time ->
                Store.blit_in meta ~buf:snapshot ~at:0 copy.Store.cdata;
                finish ~time)))
  end

let write_home_async ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let done_iv = Ivar.create () in
  if n = meta.Store.home then Ivar.fill done_iv ~time:ctx.proc.Machine.clock ()
  else begin
    let home = meta.Store.home in
    let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
    Net.send_from ctx.net ctx.proc ~dst:home ~bytes:(data_bytes meta)
      (fun ~time ->
        dir_enter meta ~time (fun time ->
            Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
            Ivar.fill done_iv ~time ();
            dir_exit meta ~time))
  end;
  done_iv

let write_home ctx meta =
  drain ctx;
  Machine.await ctx.proc (write_home_async ctx meta)

(* Queued locks serialized at the region's home. Grant closures either send
   a grant message (remote waiter) or fill the local waiter's ivar. *)
let home_lock ctx meta =
  drain ctx;
  let n = node ctx in
  let l = meta.Store.lock in
  let home = meta.Store.home in
  if n = home then begin
    if l.Store.held_by < 0 then l.Store.held_by <- n
    else begin
      let iv = Ivar.create () in
      Queue.push (n, fun time -> Ivar.fill iv ~time ()) l.Store.waiting;
      Machine.await ctx.proc iv
    end
  end
  else
    Net.rpc ctx.net ctx.proc ~dst:home ~bytes:ctl_bytes (fun reply ~time ->
        let grant time =
          Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes:ctl_bytes
            (fun ~time -> Ivar.fill reply ~time ())
        in
        if l.Store.held_by < 0 then begin
          l.Store.held_by <- n;
          grant time
        end
        else Queue.push (n, grant) l.Store.waiting)

let release_lock (l : Store.hlock) ~time =
  match Queue.take_opt l.Store.waiting with
  | Some (m, grant) ->
      l.Store.held_by <- m;
      grant time
  | None -> l.Store.held_by <- -1

let home_unlock ctx meta =
  let n = node ctx in
  let l = meta.Store.lock in
  if n = meta.Store.home then begin
    assert (l.Store.held_by = n);
    release_lock l ~time:ctx.proc.Machine.clock
  end
  else
    Net.send_from ctx.net ctx.proc ~dst:meta.Store.home ~bytes:ctl_bytes
      (fun ~time ->
        assert (l.Store.held_by = n);
        release_lock l ~time)

(* Home-executed read-modify-write: one blocking round trip acquires the
   region's lock *and* returns the current master value; the release ships
   the new value and unlocks in a single one-way message. This is the
   fetch-and-add building block behind the TSP counter protocol. *)
let rmw_acquire ctx meta =
  drain ctx;
  let n = node ctx in
  let copy = local_copy ctx meta in
  let l = meta.Store.lock in
  if n = meta.Store.home then begin
    if l.Store.held_by < 0 then l.Store.held_by <- n
    else begin
      let iv = Ivar.create () in
      Queue.push (n, fun time -> Ivar.fill iv ~time ()) l.Store.waiting;
      Machine.await ctx.proc iv
    end
  end
  else begin
    let home = meta.Store.home in
    Net.rpc ctx.net ctx.proc ~dst:home ~bytes:ctl_bytes (fun reply ~time ->
        let grant time =
          let snapshot = Store.snapshot meta ~src:meta.Store.master in
          Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes:(data_bytes meta)
            (fun ~time ->
              Store.blit_in meta ~buf:snapshot ~at:0 copy.Store.cdata;
              Ivar.fill reply ~time ())
        in
        if l.Store.held_by < 0 then begin
          l.Store.held_by <- n;
          grant time
        end
        else Queue.push (n, grant) l.Store.waiting)
  end

let rmw_release ctx meta =
  let n = node ctx in
  let l = meta.Store.lock in
  let done_iv = Ivar.create () in
  if n = meta.Store.home then begin
    assert (l.Store.held_by = n);
    release_lock l ~time:ctx.proc.Machine.clock;
    Ivar.fill done_iv ~time:ctx.proc.Machine.clock ()
  end
  else begin
    let copy =
      match Store.copy_of meta ~node:n with Some c -> c | None -> assert false
    in
    let snapshot = Store.snapshot meta ~src:copy.Store.cdata in
    Net.send_from ctx.net ctx.proc ~dst:meta.Store.home ~bytes:(data_bytes meta)
      (fun ~time ->
        assert (l.Store.held_by = n);
        Store.blit_in meta ~buf:snapshot ~at:0 meta.Store.master;
        release_lock l ~time;
        Ivar.fill done_iv ~time ())
  end;
  done_iv

(* Ship-the-operation fetch-and-add: the home's message handler applies the
   increment and replies with the old value — one round trip, no lock held
   across the requester's round trip; home occupancy is one handler
   execution. The old value is deposited in slot 0 of the caller's local
   copy. The operation serializes with the region's home lock, so a
   home-resident caller can instead take the lock and modify the (aliased)
   master in place — see the COUNTER protocol. Must not be called from the
   home node (the local copy aliases the master there). *)
let fetch_add ctx meta ~delta =
  drain ctx;
  let n = node ctx in
  let copy = local_copy ctx meta in
  assert (n <> meta.Store.home);
  Net.rpc ctx.net ctx.proc ~dst:meta.Store.home ~bytes:ctl_bytes
    (fun reply ~time ->
      dir_enter meta ~time (fun time ->
          let old = meta.Store.master.(0) in
          meta.Store.master.(0) <- old +. delta;
          Net.send ctx.net ~now:time ~src:meta.Store.home ~dst:n ~bytes:ctl_bytes
            (fun ~time ->
              copy.Store.cdata.(0) <- old;
              Ivar.fill reply ~time ());
          dir_exit meta ~time))

(* Bracket a home-resident in-place read-modify-write of the (aliased)
   master so it serializes with remote fetch_adds and other directory
   transactions — deliberately NOT the user-visible region lock, which the
   application may already hold around the access. Home node only. *)
let home_rmw_begin ctx meta =
  drain ctx;
  assert (node ctx = meta.Store.home);
  let iv = Ivar.create () in
  dir_enter meta ~time:ctx.proc.Machine.clock (fun time -> Ivar.fill iv ~time ());
  Machine.await ctx.proc iv

let home_rmw_end ctx meta =
  assert (node ctx = meta.Store.home);
  dir_exit meta ~time:ctx.proc.Machine.clock

(* Release the region lock as soon as [after] fills (e.g. when an in-flight
   update lands at the home), modelling a combined update+release message.
   The caller does not block. *)
let unlock_after ctx meta (after : unit Ivar.t) =
  let n = node ctx in
  let l = meta.Store.lock in
  Ivar.on_fill after (fun ~time () ->
      assert (l.Store.held_by = n);
      release_lock l ~time)

(* Acquire the region's home lock with the grant carrying the master data
   (one round trip for lock + fresh value). The local copy becomes a valid
   snapshot of the master as of grant time. *)
let lock_fetch ctx meta =
  let n = node ctx in
  let copy = local_copy ctx meta in
  let l = meta.Store.lock in
  let home = meta.Store.home in
  if n = home then begin
    drain ctx;
    if l.Store.held_by < 0 then l.Store.held_by <- n
    else begin
      let iv = Ivar.create () in
      Queue.push (n, fun time -> Ivar.fill iv ~time ()) l.Store.waiting;
      Machine.await ctx.proc iv
    end
  end
  else begin
    let request reply ~time =
      let grant time =
        let snapshot = Store.snapshot meta ~src:meta.Store.master in
        Net.send ctx.net ~now:time ~src:home ~dst:n ~bytes:(data_bytes meta)
          (fun ~time ->
            Store.blit_in meta ~buf:snapshot ~at:0 copy.Store.cdata;
            copy.Store.cstate <- Store.Shared;
            Ivar.fill reply ~time ())
      in
      if l.Store.held_by < 0 then begin
        l.Store.held_by <- n;
        grant time
      end
      else Queue.push (n, grant) l.Store.waiting
    in
    match ctx.wpending with
    | [] -> Net.rpc ctx.net ctx.proc ~dst:home ~bytes:ctl_bytes request
    | ws ->
        (* Write-combining: queued updates ride with the lock request —
           updates for this home coalesce with it into one vectored message
           (the request part runs after the updates land, preserving queue
           order), and pending updates for other homes flush in the same
           injection under one sender overhead. *)
        ctx.wpending <- [];
        let reply = Ivar.create () in
        let parts =
          List.rev_map wpart ws
          @ [ Net.part ~dst:home ~bytes:ctl_bytes (fun ~time ->
                request reply ~time) ]
        in
        Net.send_multi_from ctx.net ctx.proc parts;
        Machine.await ctx.proc reply
  end
