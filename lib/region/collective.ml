(* SPMD collectives for distributing region ids (the bootstrap role that a
   startup broadcast plays in CRL). Every processor must execute the same
   sequence of collective calls; ops are matched by a per-processor call
   counter. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Net = Ace_net.Reliable

type t = {
  slots : (int, int array Ivar.t array) Hashtbl.t; (* op id -> per-node ivar *)
  nprocs : int;
}

let create ~nprocs = { slots = Hashtbl.create 16; nprocs }

let entry t op =
  match Hashtbl.find_opt t.slots op with
  | Some e -> e
  | None ->
      let e = Array.init t.nprocs (fun _ -> Ivar.create ()) in
      Hashtbl.add t.slots op e;
      e

(* [bcast t bctx ~ctr ~root f]: the root evaluates [f ()] and sends the
   array to every other node; everyone returns the array. *)
let bcast t (bctx : Blocks.ctx) ~ctr ~root f =
  let p = bctx.Blocks.proc in
  let me = p.Machine.id in
  let op = !ctr in
  incr ctr;
  let e = entry t op in
  if me = root then begin
    let arr = f () in
    let bytes = (8 * Array.length arr) + Blocks.ctl_bytes in
    for dst = 0 to t.nprocs - 1 do
      if dst <> root then
        Net.send_from bctx.Blocks.net p ~dst ~bytes (fun ~time ->
            Ivar.fill e.(dst) ~time arr)
    done;
    Ivar.fill e.(root) ~time:p.Machine.clock arr;
    arr
  end
  else Machine.await p e.(me)

(* [allgather t bctx ~ctr mine] returns an array of every node's
   contribution, indexed by node. Implemented as P rooted broadcasts. *)
let allgather t bctx ~ctr mine =
  Array.init t.nprocs (fun root -> bcast t bctx ~ctr ~root (fun () -> mine))
