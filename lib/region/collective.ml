(* SPMD collectives for distributing region ids (the bootstrap role that a
   startup broadcast plays in CRL). Every processor must execute the same
   sequence of collective calls; ops are matched by a per-processor call
   counter.

   Slots are materialised lazily, one ivar per (op, consumer) pair, created
   by whichever of the delivery or the consumer's await comes first and
   removed once the consumer has taken the value. Live state is therefore
   bounded by the number of in-flight deliveries, where the old
   [Array.init nprocs] per op held nprocs ivars for every op ever started —
   nprocs² of them across an allgather. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Net = Ace_net.Reliable

type t = {
  slots : (int, int array Ivar.t) Hashtbl.t array;
      (* per consumer node, keyed by op. Split per node — not one table
         keyed by op * nprocs + consumer — so each table is only ever
         touched from its consumer's context (the delivery handler runs on
         the consumer's shard under the parallel engine, the await in the
         consumer's own fiber). *)
  nprocs : int;
}

let create ~nprocs =
  { slots = Array.init nprocs (fun _ -> Hashtbl.create 8); nprocs }

let slot t ~op ~node =
  let h = t.slots.(node) in
  match Hashtbl.find_opt h op with
  | Some v -> v
  | None ->
      let v = Ivar.create () in
      Hashtbl.add h op v;
      v

(* [bcast t bctx ~ctr ~root f]: the root evaluates [f ()] and sends the
   array to every other node; everyone returns the array. The root takes
   its own result directly — no self-slot is ever created. *)
let bcast t (bctx : Blocks.ctx) ~ctr ~root f =
  let p = bctx.Blocks.proc in
  let me = p.Machine.id in
  let op = !ctr in
  incr ctr;
  if me = root then begin
    let arr = f () in
    let bytes = (8 * Array.length arr) + Blocks.ctl_bytes in
    for dst = 0 to t.nprocs - 1 do
      if dst <> root then
        Net.send_from bctx.Blocks.net p ~dst ~bytes (fun ~time ->
            Ivar.fill (slot t ~op ~node:dst) ~time arr)
    done;
    arr
  end
  else begin
    let v = slot t ~op ~node:me in
    let arr = Machine.await p v in
    Hashtbl.remove t.slots.(me) op;
    arr
  end

(* [allgather t bctx ~ctr mine] returns an array of every node's
   contribution, indexed by node. Implemented as P rooted broadcasts. *)
let allgather t bctx ~ctr mine =
  Array.init t.nprocs (fun root -> bcast t bctx ~ctr ~root (fun () -> mine))
