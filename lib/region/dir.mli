(** Compact sharer sets for region directories.

    A two-mode set of node ids in [0, nprocs): a limited-pointer inline
    encoding (a short sorted array, the common sparsely-shared case) that
    overflows to a packed int-word bitset once the sharing degree exceeds
    the inline capacity. Memory is proportional to the sharer population,
    not the machine size.

    Iteration visits nodes in ascending id order in both modes — the same
    order the previous [bool array] directory walk produced — allocates
    nothing, and tolerates the callback removing nodes already visited. *)

type t

(** Raises [Invalid_argument] when [nprocs <= 0]. All node arguments below
    must lie in [0, nprocs) ([Invalid_argument] otherwise). *)
val create : nprocs:int -> t

val nprocs : t -> int

(** Number of members. O(1). *)
val count : t -> int

(** Still in the inline small-set encoding (exposed for tests and memory
    accounting; coherence code never needs to know). *)
val is_small : t -> bool

val mem : t -> int -> bool

(** Idempotent insert. May switch the set to bitset mode; the set never
    switches back until {!clear}. *)
val add : t -> int -> unit

(** Idempotent removal. *)
val remove : t -> int -> unit

(** Remove every member, keeping whichever storage is already allocated. *)
val clear : t -> unit

(** [iter t ~except f] applies [f] to each member except [except] in
    ascending node order, without allocating. [f] may {!remove} nodes it
    has already been applied to (including its argument) but must not
    otherwise mutate the set mid-iteration. Pass [~except:(-1)] to visit
    every member. *)
val iter : t -> except:int -> (int -> unit) -> unit

(** [fold t ~except f acc] folds over members in ascending order. *)
val fold : t -> except:int -> ('a -> int -> 'a) -> 'a -> 'a

(** Heap words of storage attributable to this set — the inline array plus
    any bitset words. Never shrinks except across mode resets, so an
    end-of-run sum over regions is the run's peak. *)
val words : t -> int
