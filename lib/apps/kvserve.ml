(* Adaptive key-value serving: N-key spaces served by simulated client
   drivers with Zipfian-skewed get/put mixes (kv_core), hot-key churn and
   rolling quiesce phases. Each space's access profile favours a different
   protocol, and the profiles drift over time — the workload the paper's
   customizable-protocol argument is about: no single compiled-in protocol
   serves all six spaces, and with the adaptation engine installed
   (Driver.run_ace ~adapt) each space finds its own at epoch boundaries
   via Ace_ChangeProtocol.

   Region naming is lazy: key [k] of a space is the [(k - lo)]-th region
   its owner allocated there, resolved through [global_id] on first touch
   and cached — a name-service round trip per distinct key a node serves,
   never a full-table exchange (at ~1M keys that is the only pattern that
   scales). *)

module Core = Kv_core

type config = Core.config

let default = Core.default
let n_spaces = Core.n_spaces

module Make (D : Ace_region.Dsm_intf.S) = struct
  let run (cfg : config) (ctx : D.ctx) =
    let me = D.me ctx and nprocs = D.nprocs ctx in
    let n = cfg.Core.n_keys in
    let lo, hi = Core.block_of ~n ~nprocs me in
    (* Allocate and initialize my key block of every space, in key order
       (the order [global_id] names assume). *)
    for s = 0 to n_spaces - 1 do
      for k = lo to hi - 1 do
        let h = D.alloc ctx ~space:s ~len:1 in
        D.start_write ctx h;
        (D.data ctx h).(0) <- Core.init_value ~space:s ~key:k;
        D.end_write ctx h
      done
    done;
    D.barrier ctx ~space:0;
    (match cfg.Core.protocol with
    | Some p ->
        for s = 0 to n_spaces - 1 do
          D.change_protocol ctx ~space:s p
        done
    | None -> ());
    (* Lazy handle cache: (space, key) -> mapped handle. *)
    let cache = Hashtbl.create 1024 in
    let handle s k =
      match Hashtbl.find_opt cache (s, k) with
      | Some h -> h
      | None ->
          let owner = Core.owner_of ~n ~nprocs k in
          let olo, _ = Core.block_of ~n ~nprocs owner in
          let h = D.map ctx (D.global_id ctx ~space:s ~owner ~seq:(k - olo)) in
          Hashtbl.add cache (s, k) h;
          h
    in
    let serve s = function
      | Core.Get k ->
          let h = handle s k in
          D.start_read ctx h;
          ignore (D.data ctx h).(0);
          D.end_read ctx h;
          D.work ctx Core.get_cycles
      | Core.Put (k, d) ->
          (* Lock-serialized read-modify-write: correct under every
             candidate protocol (DYN_UPDATE awaits its push before the
             unlock releases the next writer). *)
          let h = handle s k in
          D.lock ctx h;
          D.start_write ctx h;
          let a = D.data ctx h in
          a.(0) <- a.(0) +. d;
          D.end_write ctx h;
          D.unlock ctx h;
          D.work ctx Core.put_cycles
    in
    for e = 0 to cfg.Core.epochs - 1 do
      for s = 0 to n_spaces - 1 do
        Array.iter (serve s) (Core.ops cfg ~nprocs ~space:s ~node:me ~epoch:e)
      done;
      (* Epoch boundary: barrier each space (update protocols publish
         here), then give the adaptation engine its collective decision
         point per space. *)
      for s = 0 to n_spaces - 1 do
        D.barrier ctx ~space:s;
        ignore (D.adapt ctx ~space:s)
      done
    done;
    (* Settle every space back on SC so a plain scan observes all
       updates, whatever protocols adaptation left the spaces on. *)
    for s = 0 to n_spaces - 1 do
      D.change_protocol ctx ~space:s "SC"
    done;
    D.barrier ctx ~space:0;
    if me = 0 then begin
      let sum = ref 0. in
      for s = 0 to n_spaces - 1 do
        for k = 0 to n - 1 do
          let h = handle s k in
          D.start_read ctx h;
          sum := !sum +. (D.data ctx h).(0);
          D.end_read ctx h
        done
      done;
      !sum
    end
    else 0.
end
