(* EM3D (Culler et al., Split-C): electromagnetic wave propagation on a
   bipartite graph. New E values are weighted sums of neighbouring H nodes
   and vice versa (paper §3.3, Fig. 2). Each graph node is one region —
   user-specified granularity puts exactly one logical datum in each
   coherence unit, so the producer-consumer pattern is visible to the
   protocol. *)

module Rng = Ace_engine.Det_rng

type config = {
  n_nodes : int; (* nodes per side (E and H each) *)
  degree : int;
  pct_remote : int; (* percentage of edges crossing processors *)
  steps : int;
  seed : int;
  protocol : string option; (* switch both spaces after setup *)
}

let default =
  { n_nodes = 800; degree = 10; pct_remote = 20; steps = 10; seed = 42; protocol = None }

(* Deterministic bipartite graph. Node [i] of a side is owned by processor
   [i * nprocs / n]; its in-neighbours come from the opposite side, local
   with probability (100-pct_remote)%. Both the SPMD program and the
   sequential reference generate exactly this graph. *)
type graph = {
  nprocs : int;
  n : int;
  owner : int array; (* same for both sides *)
  e_nbr : int array array; (* in-neighbours (H indices) of each E node *)
  h_nbr : int array array; (* in-neighbours (E indices) of each H node *)
  weight : float array array; (* per E node edge weights; reused for H *)
}

let owner_of ~n ~nprocs i = i * nprocs / n

let block_of ~n ~nprocs p =
  (* nodes owned by processor p: [lo, hi). [owner_of] is monotone in [i],
     so the bounds are closed-form: the first node of [p] is the first [i]
     with [i * nprocs >= p * n]. (0, 0) marks an empty block, as the old
     O(n) scan produced. *)
  let lo = ((p * n) + nprocs - 1) / nprocs in
  let hi = (((p + 1) * n) + nprocs - 1) / nprocs in
  if hi > lo then (lo, hi) else (0, 0)

let generate_uncached cfg ~nprocs =
  let n = cfg.n_nodes in
  let owner = Array.init n (fun i -> owner_of ~n ~nprocs i) in
  let blocks = Array.init nprocs (fun p -> block_of ~n ~nprocs p) in
  let pick_neighbor rng me_owner =
    let remote = Rng.int rng 100 < cfg.pct_remote && nprocs > 1 in
    let target =
      if not remote then me_owner
      else (me_owner + 1 + Rng.int rng (nprocs - 1)) mod nprocs
    in
    let lo, hi = blocks.(target) in
    if hi > lo then lo + Rng.int rng (hi - lo) else Rng.int rng n
  in
  let side salt =
    Array.init n (fun i ->
        let rng = Rng.create ((cfg.seed * 1_000_003) + (salt * 7919) + i) in
        Array.init cfg.degree (fun _ -> pick_neighbor rng owner.(i)))
  in
  let weight =
    Array.init n (fun i ->
        let rng = Rng.create ((cfg.seed * 29) + i) in
        Array.init cfg.degree (fun _ ->
            (0.5 +. Rng.float rng) /. (2. *. float_of_int cfg.degree)))
  in
  { nprocs; n; owner; e_nbr = side 1; h_nbr = side 2; weight }

(* The graph is a pure function of (cfg, nprocs) and is read-only once
   built, but [run] is executed by every simulated processor — without
   sharing, a 1024-node machine would build 1024 identical copies. A
   domain-local one-slot memo de-duplicates them (fibers of one simulation
   all run on one domain; the pool's parallel cells live on separate
   domains and never share the slot). Simulated output is unaffected. *)
let graph_memo : (config * int * graph) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let generate cfg ~nprocs =
  let memo = Domain.DLS.get graph_memo in
  match !memo with
  | Some (c, p, g) when c = cfg && p = nprocs -> g
  | _ ->
      let g = generate_uncached cfg ~nprocs in
      memo := Some (cfg, nprocs, g);
      g

let init_value side i = float_of_int ((side * 31) + i) /. 1000.

(* Sequential reference: the exact computation the SPMD program performs.
   [nprocs] must match the simulated run — the graph structure (which edges
   are remote) depends on it. *)
let reference cfg ~nprocs =
  let g = generate cfg ~nprocs in
  let e = Array.init g.n (init_value 0) and h = Array.init g.n (init_value 1) in
  for _ = 1 to cfg.steps do
    for i = 0 to g.n - 1 do
      let acc = ref e.(i) in
      Array.iteri (fun k j -> acc := !acc -. (g.weight.(i).(k) *. h.(j))) g.e_nbr.(i);
      e.(i) <- !acc
    done;
    for i = 0 to g.n - 1 do
      let acc = ref h.(i) in
      Array.iteri (fun k j -> acc := !acc -. (g.weight.(i).(k) *. e.(j))) g.h_nbr.(i);
      h.(i) <- !acc
    done
  done;
  (e, h)

let checksum (e, h) =
  Array.fold_left ( +. ) 0. e +. Array.fold_left ( +. ) 0. h

(* Cycle cost of one edge update on the simulated 33 MHz SPARC: load, fmul,
   fsub, index arithmetic. *)
let edge_cycles = 8.

let n_spaces = 2

module Make (D : Ace_region.Dsm_intf.S) = struct
  (* Space layout: 0 = E values, 1 = H values (Fig. 2's eval/hval). *)

  let run cfg (ctx : D.ctx) =
    let me = D.me ctx and nprocs = D.nprocs ctx in
    let g = generate cfg ~nprocs in
    (* MakeGraph: every node allocates its own regions, then rids are
       exchanged so neighbours can be mapped. *)
    let mine side_space =
      let rids = ref [] in
      for i = g.n - 1 downto 0 do
        if g.owner.(i) = me then begin
          let h = D.alloc ctx ~space:side_space ~len:1 in
          rids := (i, D.rid h) :: !rids
        end
      done;
      !rids
    in
    let my_e = mine 0 and my_h = mine 1 in
    let pack l = Array.of_list (List.concat_map (fun (i, r) -> [ i; r ]) l) in
    let unpack parts =
      let t = Array.make g.n (-1) in
      Array.iter
        (fun part ->
          let k = Array.length part / 2 in
          for j = 0 to k - 1 do
            t.(part.(2 * j)) <- part.((2 * j) + 1)
          done)
        parts;
      t
    in
    let e_rid = unpack (D.allgather ctx (pack my_e)) in
    let h_rid = unpack (D.allgather ctx (pack my_h)) in
    (* Initialize own values (home writes). *)
    let init side rid_of l =
      List.iter
        (fun (i, _) ->
          let h = D.map ctx rid_of.(i) in
          D.start_write ctx h;
          (D.data ctx h).(0) <- init_value side i;
          D.end_write ctx h)
        l
    in
    init 0 e_rid my_e;
    init 1 h_rid my_h;
    D.barrier ctx ~space:0;
    (* Fig. 2 lines 8-9: plug in the custom protocol library. *)
    (match cfg.protocol with
    | Some p ->
        D.change_protocol ctx ~space:0 p;
        D.change_protocol ctx ~space:1 p
    | None -> ());
    (* Pre-map handles (the hand-optimized pattern of §5.3). *)
    let e_h = Array.map (fun r -> if r >= 0 then Some (D.map ctx r) else None) e_rid in
    let h_h = Array.map (fun r -> if r >= 0 then Some (D.map ctx r) else None) h_rid in
    let handle side i =
      match (if side = 0 then e_h.(i) else h_h.(i)) with
      | Some h -> h
      | None -> assert false
    in
    let compute ~dst_side ~nbr ~mine =
      List.iter
        (fun (i, _) ->
          let hd = handle dst_side i in
          D.start_read ctx hd;
          let acc = ref (D.data ctx hd).(0) in
          D.end_read ctx hd;
          Array.iteri
            (fun k j ->
              let hs = handle (1 - dst_side) j in
              D.start_read ctx hs;
              let v = (D.data ctx hs).(0) in
              D.end_read ctx hs;
              acc := !acc -. (g.weight.(i).(k) *. v);
              D.work ctx edge_cycles)
            nbr.(i);
          D.start_write ctx hd;
          (D.data ctx hd).(0) <- !acc;
          D.end_write ctx hd)
        mine
    in
    for _ = 1 to cfg.steps do
      (* compute E from H, then Ace_Barrier(eval) — the barrier names the
         space that was written so its protocol can propagate (Fig. 2). *)
      compute ~dst_side:0 ~nbr:g.e_nbr ~mine:my_e;
      D.barrier ctx ~space:0;
      compute ~dst_side:1 ~nbr:g.h_nbr ~mine:my_h;
      D.barrier ctx ~space:1
    done;
    (* Deterministic checksum: node 0 reads every node. *)
    if me = 0 then begin
      let sum = ref 0. in
      let read_all rid_of =
        for i = 0 to g.n - 1 do
          let h = D.map ctx rid_of.(i) in
          D.start_read ctx h;
          sum := !sum +. (D.data ctx h).(0);
          D.end_read ctx h
        done
      in
      read_all e_rid;
      read_all h_rid;
      !sum
    end
    else 0.
end
