(* Host-side core of the adaptive key-value serving workload (kvserve):
   Zipfian key popularity, per-space access profiles, hot-key churn and
   rolling quiesce phases — everything that must be bit-identical between
   the SPMD program and the sequential reference lives here, as with the
   other app cores (tsp_core, water_core, chol_core).

   All stored values are integral floats (initial values and put deltas),
   so every key's final value and the grand total are exact integers in
   double precision: the result is independent of summation order and of
   the protocol serving each space. *)

module Rng = Ace_engine.Det_rng

type config = {
  n_keys : int;  (* keys (one region each) per space *)
  ops_per_epoch : int;  (* client ops per active node per space per epoch *)
  epochs : int;
  theta : float;  (* Zipf exponent: 0 = uniform, ~1 = classic skew *)
  churn_every : int;  (* epochs between hot-key permutation rotations *)
  quiesce : bool;  (* rolling node join/leave: one node idle per epoch *)
  seed : int;
  protocol : string option;  (* fix every space after setup (baselines) *)
}

let default =
  {
    n_keys = 256;
    ops_per_epoch = 48;
    epochs = 12;
    theta = 0.99;
    churn_every = 4;
    quiesce = true;
    seed = 42;
    protocol = None;
  }

(* Six spaces, two of each serving profile, so the adaptation engine has
   spaces that should settle on different protocols. *)
type profile = Read_mostly | Mixed | Migratory

let n_spaces = 6
let profile_of_space s =
  match s mod 3 with 0 -> Read_mostly | 1 -> Mixed | _ -> Migratory

(* Blocked key ownership, as in em3d: key [k] of every space is homed at
   processor [k * nprocs / n], and an owner allocates its block in key
   order — so (space, owner, k - lo) names key [k]'s region for
   [global_id] without any rid exchange (at ~1M keys an allgather of the
   full table is exactly what a serving system would not do). *)
let owner_of ~n ~nprocs k = k * nprocs / n

let block_of ~n ~nprocs p =
  let lo = ((p * n) + nprocs - 1) / nprocs in
  let hi = (((p + 1) * n) + nprocs - 1) / nprocs in
  if hi > lo then (lo, hi) else (0, 0)

(* Integral, so sums are exact (see header). *)
let init_value ~space ~key = float_of_int (((space * 131) + (key * 17)) mod 97)

(* --- Zipf sampler: CDF table + binary search --------------------------- *)

type zipf = { cdf : float array (* cdf.(r) = P(rank <= r); cdf.(n-1) = 1 *) }

let zipf_make ~n ~theta =
  if n <= 0 then invalid_arg "Kv_core.zipf_make: n must be positive";
  let cdf = Array.create_float n in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) theta);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  { cdf }

(* First rank whose cdf covers [u]; O(log n). *)
let zipf_sample z rng =
  let u = Rng.float rng in
  let n = Array.length z.cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Probability mass of the most popular rank — used by the frequency
   test to check the sampler against the exponent. *)
let rank1_mass z = z.cdf.(0)

(* The CDF is a pure function of (n, theta) and costs O(n) to build; a
   domain-local one-slot memo keeps a 1M-key machine from building one
   per simulated processor (same pattern as em3d's graph memo). *)
let zipf_memo : (int * float * zipf) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let zipf_for cfg =
  let memo = Domain.DLS.get zipf_memo in
  match !memo with
  | Some (n, th, z) when n = cfg.n_keys && th = cfg.theta -> z
  | _ ->
      let z = zipf_make ~n:cfg.n_keys ~theta:cfg.theta in
      memo := Some (cfg.n_keys, cfg.theta, z);
      z

(* --- Hot-key churn: an affine permutation of ranks, rotated per era ---- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* key = (stride * rank + offset) mod n with gcd(stride, n) = 1 is a
   bijection, so rotating (stride, offset) every [churn_every] epochs
   re-seats the entire popularity ranking without changing its shape. *)
let churn_params ~n ~seed ~era =
  let rng = Rng.create ((seed * 2_654_435_761) + (era * 40_503) + 11) in
  let stride = ref (if n > 1 then 1 + Rng.int rng (n - 1) else 1) in
  while gcd !stride n <> 1 do
    stride := (!stride mod n) + 1
  done;
  (!stride, Rng.int rng n)

let churn_key ~n ~seed ~era rank =
  let stride, offset = churn_params ~n ~seed ~era in
  ((stride * rank) + offset) mod n

(* --- Rolling quiesce -------------------------------------------------- *)

(* One node per epoch drains for "maintenance": it issues no client ops
   but still participates in every collective (barriers, adaptation,
   protocol switches), exactly like a serving node taken out of rotation. *)
let active cfg ~nprocs ~epoch ~node =
  (not cfg.quiesce) || nprocs < 2 || node <> epoch mod nprocs

(* --- Client op streams ------------------------------------------------- *)

type op = Get of int | Put of int * float

(* Simulated client-side cycles per op (request decode + response). *)
let get_cycles = 12.
let put_cycles = 20.

let op_seed cfg ~space ~node ~epoch =
  (cfg.seed * 1_000_003) + (space * 97_561) + (node * 7919) + epoch

(* The op stream of one (space, node, epoch) — a pure function of the
   config, so the sequential reference replays exactly the streams the
   simulated nodes serve. Get/put mix and key locality follow the
   space's profile:
     - Read_mostly: 90% gets over the churned Zipf ranking (a cache-ish
       space: invalidation punishes it, updates serve it).
     - Mixed: an even get/put mix over the churned ranking — contended
       enough that neither updates nor migration dominate.
     - Migratory: 80% puts, and epoch [e] steers node [p] at the key
       block of node [(p + e) mod nprocs] — each block has exactly one
       writer at a time, rotating, the migratory pattern of paper §2.1. *)
let ops cfg ~nprocs ~space ~node ~epoch =
  if not (active cfg ~nprocs ~epoch ~node) then [||]
  else begin
    let n = cfg.n_keys in
    let z = zipf_for cfg in
    let era = epoch / cfg.churn_every in
    let rng = Rng.create (op_seed cfg ~space ~node ~epoch) in
    let delta rng = float_of_int (1 + Rng.int rng 8) in
    Array.init cfg.ops_per_epoch (fun _ ->
        match profile_of_space space with
        | Read_mostly ->
            let k = churn_key ~n ~seed:cfg.seed ~era (zipf_sample z rng) in
            if Rng.int rng 100 < 90 then Get k else Put (k, delta rng)
        | Mixed ->
            let k = churn_key ~n ~seed:cfg.seed ~era (zipf_sample z rng) in
            if Rng.int rng 100 < 50 then Get k else Put (k, delta rng)
        | Migratory ->
            let b = (node + epoch) mod nprocs in
            let lo, hi = block_of ~n ~nprocs b in
            let r = zipf_sample z rng in
            let k = if hi > lo then lo + (r mod (hi - lo)) else r mod n in
            if Rng.int rng 100 < 20 then Get k else Put (k, delta rng))
  end

(* --- Sequential reference ---------------------------------------------- *)

(* Grand total over all spaces and keys after every epoch's puts: initial
   values plus every active node's put deltas (gets leave no trace, but
   their stream positions are consumed identically by [ops]). Exact — all
   terms are integers. *)
let reference cfg ~nprocs =
  let sum = ref 0. in
  for s = 0 to n_spaces - 1 do
    for k = 0 to cfg.n_keys - 1 do
      sum := !sum +. init_value ~space:s ~key:k
    done
  done;
  for e = 0 to cfg.epochs - 1 do
    for s = 0 to n_spaces - 1 do
      for p = 0 to nprocs - 1 do
        Array.iter
          (function Put (_, d) -> sum := !sum +. d | Get _ -> ())
          (ops cfg ~nprocs ~space:s ~node:p ~epoch:e)
      done
    done
  done;
  !sum
