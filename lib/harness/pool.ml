(* A bounded worker pool over OCaml 5 domains.

   The evaluation grid — every (benchmark x runtime x protocol x opt-level)
   cell — is embarrassingly parallel: each cell builds its own
   [Runtime.create]-rooted simulation and shares no mutable state with any
   other (the only cross-cell global, the stats intern table, is
   mutex-protected). Workers pull cell indices from an atomic counter and
   write results into a per-index slot, so the assembled output is
   positionally identical to a serial run no matter how cells are scheduled:
   parallelism changes wall-clock only, never results.

   [jobs = 1] (or a single task) bypasses domains entirely and runs the
   cells in order on the calling domain — that path is the determinism
   baseline the tests compare against. *)

let default_jobs () =
  match Sys.getenv_opt "ACE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> invalid_arg "ACE_JOBS must be a positive integer")
  | None -> Domain.recommended_domain_count ()

(* [run_all ?jobs tasks] runs every task and returns their results in task
   order. Exceptions are captured per task and the first (lowest-index) one
   is re-raised after all workers have joined. *)
let run_all ?jobs (tasks : (unit -> 'a) array) : 'a array =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results : ('a, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some (match tasks.(i) () with v -> Ok v | exception e -> Error e)
      done
    in
    let helpers = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

(* Wrap a cell so it also reports its wall-clock seconds. *)
let timed f () =
  let t0 = Unix.gettimeofday () in
  let out = f () in
  (out, Unix.gettimeofday () -. t0)
