(* Table 4: compiler-generated code at each optimization level vs code
   written by hand for the runtime system. The compiled versions run the
   MiniAce kernels through the Ace compiler pipeline at O0..O3; the hand
   versions are the same computations written directly against the runtime
   the way an experienced programmer would (pre-mapped handles, one access
   section per loop nest, no dispatch where the protocol is known). *)

module Ops = Ace_runtime.Ops
module Runtime = Ace_runtime.Runtime
module Machine = Ace_engine.Machine

let fresh_runtime ~nprocs =
  let rt = Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  rt

(* Record the runtime's simulation as a trace file when asked (simulated
   output is unaffected; see Ace_engine.Trace). *)
let traced ?trace rt ~nprocs body =
  match trace with
  | None -> body ()
  | Some path ->
      let tr = Ace_engine.Trace.create () in
      Runtime.set_trace rt (Some tr);
      let out = body () in
      Ace_engine.Trace.write_file tr ~nprocs path;
      out

(* ---- compiled versions ---- *)

let run_compiled ?trace ~nprocs ~level source =
  let rt = fresh_runtime ~nprocs in
  traced ?trace rt ~nprocs (fun () ->
      let registry = Ace_lang.Registry.of_runtime rt in
      let ir, _diag = Ace_lang.Compile.compile ~registry ~level source in
      let result = Ace_lang.Interp.run_spmd rt ir in
      (Runtime.time_seconds rt, result))

(* ---- hand-written runtime versions of the same kernels ---- *)

(* Shared rid exchange in the hand versions uses the same collective the
   applications use. *)

let hand_em3d (ctx : Ops.ctx) =
  let k = 8 and d = 4 and steps = 8 in
  let me = Ops.me ctx and nprocs = Ops.nprocs ctx in
  let alloc space i v =
    let h = Ops.alloc ctx ~space ~len:1 in
    Ops.start_write ctx h;
    (Ops.data ctx h).(0) <- v;
    Ops.end_write ctx h;
    ignore i;
    h
  in
  let e = Array.init k (fun i -> alloc 0 i (float_of_int ((me * 100) + i))) in
  let h = Array.init k (fun i -> alloc 1 i (float_of_int ((me * 100) + i) +. 0.5)) in
  Ops.barrier ctx ~space:0;
  Ops.change_protocol ctx ~space:0 "STATIC_UPDATE";
  Ops.change_protocol ctx ~space:1 "STATIC_UPDATE";
  let nb = (me + 1) mod nprocs in
  (* pre-mapped neighbour handles: the hand optimization the compiler
     misses (§5.3's extra ACE_MAP discussion) *)
  let enbr =
    Array.init (k * d) (fun idx ->
        let i = idx / d and dd = idx mod d in
        if dd < d - 1 then h.((i + dd) mod k)
        else Ops.map ctx (Ops.global_id ctx ~space:1 ~owner:nb ~seq:i))
  in
  let hnbr =
    Array.init (k * d) (fun idx ->
        let i = idx / d and dd = idx mod d in
        if dd < d - 1 then e.((i + dd) mod k)
        else Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:nb ~seq:i))
  in
  Ops.barrier ctx ~space:0;
  let compute own nbr space =
    for i = 0 to k - 1 do
      Ops.start_read ctx own.(i);
      let acc = ref (Ops.data ctx own.(i)).(0) in
      Ops.end_read ctx own.(i);
      for dd = 0 to d - 1 do
        let hh = nbr.((i * d) + dd) in
        Ops.start_read ctx hh;
        acc := !acc -. (0.05 *. (Ops.data ctx hh).(0));
        Ops.end_read ctx hh;
        Ops.work ctx 24.
      done;
      Ops.start_write ctx own.(i);
      (Ops.data ctx own.(i)).(0) <- !acc;
      Ops.end_write ctx own.(i)
    done;
    Ops.barrier ctx ~space
  in
  for _ = 1 to steps do
    compute e enbr 0;
    compute h hnbr 1
  done;
  Ops.start_read ctx e.(0);
  let r = (Ops.data ctx e.(0)).(0) in
  Ops.end_read ctx e.(0);
  r

let hand_bsc (ctx : Ops.ctx) =
  let nb = 8 and b = 6 in
  let me = Ops.me ctx and nprocs = Ops.nprocs ctx in
  for kk = 0 to nb - 1 do
    if kk mod nprocs = me then begin
      let init f =
        let h = Ops.alloc ctx ~space:0 ~len:(b * b) in
        Ops.start_write ctx h;
        let d = Ops.data ctx h in
        for i = 0 to b - 1 do
          for j = 0 to b - 1 do
            d.((i * b) + j) <- f i j
          done
        done;
        Ops.end_write ctx h;
        h
      in
      ignore
        (init (fun i j ->
             if i = j then 10. +. float_of_int kk
             else 0.5 /. float_of_int (1 + i + j)));
      ignore (init (fun i j -> 0.3 /. float_of_int (1 + i + j + kk)))
    end
  done;
  Ops.barrier ctx ~space:0;
  let handle_of kk which =
    let owner = kk mod nprocs in
    let t = (kk - owner) / nprocs in
    Ops.map ctx (Ops.global_id ctx ~space:0 ~owner ~seq:((2 * t) + which))
  in
  let diag = Array.init nb (fun kk -> Some (handle_of kk 0)) in
  let sub = Array.init nb (fun kk -> Some (handle_of kk 1)) in
  let get a kk = match a.(kk) with Some h -> h | None -> assert false in
  Ops.barrier ctx ~space:0;
  Ops.change_protocol ctx ~space:0 "WRITE_ONCE";
  for kk = 0 to nb - 1 do
    if kk mod nprocs = me then begin
      let hd = get diag kk in
      Ops.start_write ctx hd;
      let dg = Ops.data ctx hd in
      for j = 0 to b - 1 do
        let dd = ref dg.((j * b) + j) in
        for s = 0 to j - 1 do
          dd := !dd -. (dg.((j * b) + s) *. dg.((j * b) + s));
          Ops.work ctx 24.
        done;
        let dj = sqrt !dd in
        Ops.work ctx 30.;
        dg.((j * b) + j) <- dj;
        for i = j + 1 to b - 1 do
          let v = ref dg.((i * b) + j) in
          for s = 0 to j - 1 do
            v := !v -. (dg.((i * b) + s) *. dg.((j * b) + s));
            Ops.work ctx 24.
          done;
          dg.((i * b) + j) <- !v /. dj
        done;
        for i = 0 to j - 1 do
          dg.((i * b) + j) <- 0.
        done
      done;
      Ops.end_write ctx hd;
      if kk + 1 < nb then begin
        let hs = get sub kk in
        Ops.start_read ctx hd;
        Ops.start_write ctx hs;
        let sb = Ops.data ctx hs in
        for x = 0 to b - 1 do
          for j = 0 to b - 1 do
            let v = ref sb.((x * b) + j) in
            for s = 0 to j - 1 do
              v := !v -. (sb.((x * b) + s) *. dg.((j * b) + s));
              Ops.work ctx 24.
            done;
            sb.((x * b) + j) <- !v /. dg.((j * b) + j)
          done
        done;
        Ops.end_write ctx hs;
        Ops.end_read ctx hd
      end
    end;
    Ops.barrier ctx ~space:0;
    if kk + 1 < nb && (kk + 1) mod nprocs = me then begin
      let hs = get sub kk and hd = get diag (kk + 1) in
      Ops.start_read ctx hs;
      Ops.start_write ctx hd;
      let sb = Ops.data ctx hs and dg = Ops.data ctx hd in
      for i = 0 to b - 1 do
        for j = 0 to b - 1 do
          let acc = ref 0. in
          for s = 0 to b - 1 do
            acc := !acc +. (sb.((i * b) + s) *. sb.((j * b) + s));
            Ops.work ctx 24.
          done;
          dg.((i * b) + j) <- dg.((i * b) + j) -. !acc
        done
      done;
      Ops.end_write ctx hd;
      Ops.end_read ctx hs
    end;
    Ops.barrier ctx ~space:0
  done;
  let hd = get diag (nb - 1) in
  Ops.start_read ctx hd;
  let r = (Ops.data ctx hd).(0) in
  Ops.end_read ctx hd;
  r

let hand_tsp (ctx : Ops.ctx) =
  let me = Ops.me ctx in
  if me = 0 then begin
    let counter = Ops.alloc ctx ~space:0 ~len:1 in
    let best = Ops.alloc ctx ~space:1 ~len:1 in
    ignore counter;
    Ops.start_write ctx best;
    (Ops.data ctx best).(0) <- 1000000.;
    Ops.end_write ctx best
  end;
  Ops.barrier ctx ~space:0;
  let counter = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
  let best = Ops.map ctx (Ops.global_id ctx ~space:1 ~owner:0 ~seq:0) in
  Ops.barrier ctx ~space:0;
  Ops.change_protocol ctx ~space:0 "COUNTER";
  let njobs = 160 in
  let rec loop () =
    (* hand version: bare fetch-and-add, no lock (the programmer knows the
       counter protocol's RMW is already atomic) *)
    Ops.start_write ctx counter;
    let j = int_of_float (Ops.data ctx counter).(0) in
    (Ops.data ctx counter).(0) <- float_of_int (j + 1);
    Ops.end_write ctx counter;
    if j < njobs then begin
      Ops.start_read ctx best;
      let bound = (Ops.data ctx best).(0) in
      Ops.end_read ctx best;
      Ops.work ctx (4000. +. (float_of_int (j * 37 mod 29) *. 400.));
      let result = float_of_int (900000 - (j * 13)) in
      if result < bound then begin
        Ops.lock ctx best;
        Ops.start_write ctx best;
        if result < (Ops.data ctx best).(0) then
          (Ops.data ctx best).(0) <- result;
        Ops.end_write ctx best;
        Ops.unlock ctx best
      end;
      loop ()
    end
  in
  loop ();
  Ops.barrier ctx ~space:1;
  Ops.start_read ctx best;
  let r = (Ops.data ctx best).(0) in
  Ops.end_read ctx best;
  r

let hand_water (ctx : Ops.ctx) =
  let k = 4 and sw = 30 and steps = 4 in
  let me = Ops.me ctx and nprocs = Ops.nprocs ctx in
  let mols =
    Array.init k (fun i ->
        let h = Ops.alloc ctx ~space:0 ~len:4 in
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- float_of_int me +. (float_of_int i *. 0.1) +. 1.;
        (Ops.data ctx h).(1) <- 0.;
        Ops.end_write ctx h;
        h)
  in
  Ops.barrier ctx ~space:0;
  let p = (me + 1) mod nprocs in
  let others =
    Array.init k (fun i ->
        Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:p ~seq:i))
  in
  for _ = 1 to steps do
    Ops.change_protocol ctx ~space:0 "NULL";
    for i = 0 to k - 1 do
      (* hand version: one access section around the whole sweep loop *)
      Ops.start_write ctx mols.(i);
      let d = Ops.data ctx mols.(i) in
      for _ = 1 to sw do
        d.(0) <- d.(0) -. (0.01 *. d.(0));
        Ops.work ctx 30.
      done;
      Ops.end_write ctx mols.(i)
    done;
    Ops.change_protocol ctx ~space:0 "PIPELINE";
    for i = 0 to k - 1 do
      let other = others.(i) in
      Ops.lock ctx other;
      Ops.start_write ctx other;
      let d = Ops.data ctx other in
      d.(1) <- d.(1) +. 0.5;
      Ops.end_write ctx other;
      Ops.unlock ctx other;
      Ops.work ctx 40.
    done;
    Ops.barrier ctx ~space:0
  done;
  Ops.change_protocol ctx ~space:0 "SC";
  Ops.barrier ctx ~space:0;
  Ops.start_read ctx mols.(0);
  let d = Ops.data ctx mols.(0) in
  let r = d.(0) +. d.(1) in
  Ops.end_read ctx mols.(0);
  r

let hand_bh (ctx : Ops.ctx) =
  let k = 4 and steps = 4 in
  let me = Ops.me ctx and nprocs = Ops.nprocs ctx in
  let n = nprocs * k in
  let mine =
    Array.init k (fun i ->
        let h = Ops.alloc ctx ~space:0 ~len:2 in
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- float_of_int ((me * 10) + i);
        (Ops.data ctx h).(1) <- 1.;
        Ops.end_write ctx h;
        h)
  in
  Ops.barrier ctx ~space:0;
  let all =
    Array.init n (fun idx ->
        Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:(idx / k) ~seq:(idx mod k)))
  in
  Ops.change_protocol ctx ~space:0 "DYN_UPDATE";
  Ops.barrier ctx ~space:0;
  for _ = 1 to steps do
    for i = 0 to k - 1 do
      Ops.start_read ctx mine.(i);
      let x = (Ops.data ctx mine.(i)).(0) in
      Ops.end_read ctx mine.(i);
      let fsum = ref 0. in
      for jj = 0 to n - 1 do
        let h = all.(jj) in
        Ops.start_read ctx h;
        fsum := !fsum +. (((Ops.data ctx h).(0) -. x) *. (Ops.data ctx h).(1) *. 0.001);
        Ops.end_read ctx h;
        Ops.work ctx 70.
      done;
      Ops.start_write ctx mine.(i);
      (Ops.data ctx mine.(i)).(0) <- x +. (!fsum *. 0.01);
      Ops.end_write ctx mine.(i)
    done;
    Ops.barrier ctx ~space:0
  done;
  Ops.start_read ctx mine.(0);
  let r = (Ops.data ctx mine.(0)).(0) in
  Ops.end_read ctx mine.(0);
  r

let hands =
  [
    ("Barnes-Hut", (hand_bh, 1));
    ("BSC", (hand_bsc, 1));
    ("EM3D", (hand_em3d, 2));
    ("TSP", (hand_tsp, 2));
    ("WATER", (hand_water, 1));
  ]

let run_hand ?trace ~nprocs name =
  let hand, n_spaces = List.assoc name hands in
  let rt = fresh_runtime ~nprocs in
  for _ = 1 to n_spaces do
    ignore (Runtime.new_space rt "SC")
  done;
  traced ?trace rt ~nprocs (fun () ->
      let result = ref nan in
      Runtime.run rt (fun ctx ->
          let r = hand ctx in
          if Ops.me ctx = 0 then result := r);
      (Runtime.time_seconds rt, !result))

type row = {
  name : string;
  base : float;
  li : float;
  li_mc : float;
  li_mc_dc : float;
  hand : float;
  results_agree : bool;
  wall : float; (* host seconds spent simulating this row *)
}

(* Each (benchmark x variant) cell — four optimization levels plus the hand
   version — is an independent simulation, so the whole table fans out
   through the domain pool; reassembly is positional and the simulated
   times are identical to a serial run. *)
let variants = 5

let table4 ?(nprocs = 32) ?jobs ?trace_dir () =
  let benchmarks = Array.of_list Ace_lang.Kernels.all in
  let cell i =
    let name, source = benchmarks.(i / variants) in
    let variant = [| "o0"; "o1"; "o2"; "o3"; "hand" |].(i mod variants) in
    let trace =
      Experiments.trace_path trace_dir ~fig:"table4" ~row:name ~side:variant
    in
    match i mod variants with
    | 4 -> fun () -> run_hand ?trace ~nprocs name
    | v ->
        let level =
          match v with
          | 0 -> Ace_lang.Opt.O0
          | 1 -> Ace_lang.Opt.O1
          | 2 -> Ace_lang.Opt.O2
          | _ -> Ace_lang.Opt.O3
        in
        fun () -> run_compiled ?trace ~nprocs ~level source
  in
  let cells =
    Array.init (variants * Array.length benchmarks) (fun i -> Pool.timed (cell i))
  in
  let out = Pool.run_all ?jobs cells in
  let close a b = abs_float (a -. b) <= 1e-6 *. (1. +. abs_float a) in
  Array.to_list
    (Array.mapi
       (fun b (name, _) ->
         let at v = out.((b * variants) + v) in
         let (base_t, base_r), w0 = at 0 in
         let (li_t, li_r), w1 = at 1 in
         let (mc_t, mc_r), w2 = at 2 in
         let (dc_t, dc_r), w3 = at 3 in
         let (hand_t, hand_r), w4 = at 4 in
         {
           name;
           base = base_t;
           li = li_t;
           li_mc = mc_t;
           li_mc_dc = dc_t;
           hand = hand_t;
           results_agree =
             close base_r li_r && close base_r mc_r && close base_r dc_r
             && close base_r hand_r;
           wall = w0 +. w1 +. w2 +. w3 +. w4;
         })
       benchmarks)

let print_rows rows =
  Printf.printf "%-24s %10s %10s %10s %10s %10s  %s\n" "Optimization"
    "Barnes-Hut" "BSC" "EM3D" "TSP" "WATER" "";
  let line name f =
    Printf.printf "%-24s" name;
    List.iter (fun r -> Printf.printf " %10.4f" (f r)) rows;
    Printf.printf "\n"
  in
  line "Base case" (fun r -> r.base);
  line "Loop Invariance (LI)" (fun r -> r.li);
  line "LI + Merging Calls (MC)" (fun r -> r.li_mc);
  line "LI + MC + Direct Calls" (fun r -> r.li_mc_dc);
  line "Hand-optimized" (fun r -> r.hand);
  Printf.printf "%-24s" "compiled/hand ratio";
  List.iter (fun r -> Printf.printf " %9.2fx" (r.li_mc_dc /. r.hand)) rows;
  Printf.printf "\n";
  List.iter
    (fun r ->
      if not r.results_agree then
        Printf.printf "WARNING: %s results disagree across levels!\n" r.name)
    rows
