(* The paper's evaluation (Section 5), regenerated. Every row reports
   simulated seconds on the modelled 32-node CM-5. *)

module Stats = Ace_engine.Stats
module Faults = Ace_net.Faults
module Em3d = Ace_apps.Em3d
module Barnes_hut = Ace_apps.Barnes_hut
module Cholesky = Ace_apps.Cholesky
module Tsp = Ace_apps.Tsp
module Water = Ace_apps.Water

type scale = { nprocs : int; factor : int }

let default_scale = { nprocs = 32; factor = 1 }

(* Benchmark instances, scaled-down versions of Table 3's inputs (see
   DESIGN.md). [factor] multiplies the dominant size dimension. *)
let em3d_cfg s steps =
  { Em3d.default with Em3d.n_nodes = 800 * s.factor; steps }

let bh_cfg s steps =
  { Barnes_hut.default with Barnes_hut.n_bodies = 512 * s.factor; steps }

let water_cfg s steps =
  {
    Water.default with
    Water.core = { Water.default.Water.core with Ace_apps.Water_core.n_mol = 128 * s.factor; steps };
  }

let bsc_cfg s =
  {
    Cholesky.default with
    Cholesky.core =
      { Cholesky.default.Cholesky.core with Ace_apps.Chol_core.nb = 12 * s.factor };
  }

let tsp_cfg _s = Tsp.default

(* Branch-and-bound timing depends on work assignment, so TSP times are
   averaged over three instances, as the paper averages three runs. *)
let tsp_seeds = [ 3; 5; 7 ]

let tsp_avg run =
  let outcomes =
    List.map
      (fun seed ->
        run
          {
            Tsp.default with
            Tsp.core = { Tsp.default.Tsp.core with Ace_apps.Tsp_core.seed = seed };
          })
      tsp_seeds
  in
  let n = float_of_int (List.length outcomes) in
  ( List.fold_left (fun a o -> a +. o.Driver.seconds) 0. outcomes /. n,
    (List.hd outcomes).Driver.result )

(* File-name slug for a row name: lowercase alphanumerics, runs of anything
   else collapsed to one '-'. *)
let slug name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
      | _ ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-'
          then Buffer.add_char b '-')
    name;
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '-' then String.sub s 0 (n - 1) else s

(* One trace file per grid cell: DIR/FIG-ROW-SIDE.trace.json. Cells that
   run several simulations (per-iteration pairs, the TSP average) overwrite
   the file, leaving the trace of the last — largest — run. *)
let trace_path trace_dir ~fig ~row ~side =
  Option.map
    (fun dir ->
      Filename.concat dir (Printf.sprintf "%s-%s-%s.trace.json" fig (slug row) side))
    trace_dir

type row = {
  name : string;
  baseline : float; (* seconds *)
  ace : float;
  base_result : float;
  ace_result : float;
  per_iteration : bool;
  wall : float; (* host seconds spent simulating this row *)
}

let speedup r = r.baseline /. r.ace

(* A figure is assembled from independent cells — one per (row, system)
   pair, each a closed thunk running its own simulations — so the pool can
   execute them on parallel domains. Results are gathered positionally;
   simulated seconds are bit-identical to a serial (jobs = 1) run. *)
type spec = {
  sname : string;
  sper_iteration : bool;
  sbase : unit -> Driver.outcome;
  sace : unit -> Driver.outcome;
}

let collect ?jobs (specs : spec array) =
  let cells =
    Array.init
      (2 * Array.length specs)
      (fun i ->
        let s = specs.(i / 2) in
        Pool.timed (if i mod 2 = 0 then s.sbase else s.sace))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list
    (Array.mapi
       (fun i s ->
         let b, wall_b = out.(2 * i) in
         let a, wall_a = out.((2 * i) + 1) in
         {
           name = s.sname;
           baseline = b.Driver.seconds;
           ace = a.Driver.seconds;
           base_result = b.Driver.result;
           ace_result = a.Driver.result;
           per_iteration = s.sper_iteration;
           wall = wall_b +. wall_a;
         })
       specs)

(* Fig. 7a: Ace runtime vs CRL, both under the SC invalidation protocol. *)
let fig7a ?(scale = default_scale) ?jobs ?trace_dir ?faults () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let pi run = Driver.per_iteration ~run_with_steps:run ~iters in
  let avg run = let t, r = tsp_avg run in { Driver.seconds = t; result = r } in
  let tp row side = trace_path trace_dir ~fig:"fig7a" ~row ~side in
  collect ?jobs
    [|
      {
        sname = "Barnes-Hut";
        sper_iteration = true;
        sbase =
          (fun () ->
            pi (fun steps ->
                Driver.run_crl ?faults ?trace:(tp "Barnes-Hut" "crl") ~nprocs
                  (module Barnes_hut) (bh_cfg scale steps)));
        sace =
          (fun () ->
            pi (fun steps ->
                Driver.run_ace ?faults ?trace:(tp "Barnes-Hut" "ace") ~nprocs
                  (module Barnes_hut) (bh_cfg scale steps)));
      };
      {
        sname = "BSC";
        sper_iteration = false;
        sbase =
          (fun () ->
            Driver.run_crl ?faults ?trace:(tp "BSC" "crl") ~nprocs (module Cholesky)
              (bsc_cfg scale));
        sace =
          (fun () ->
            Driver.run_ace ?faults ?trace:(tp "BSC" "ace") ~nprocs (module Cholesky)
              (bsc_cfg scale));
      };
      {
        sname = "EM3D";
        sper_iteration = true;
        sbase =
          (fun () ->
            pi (fun steps ->
                Driver.run_crl ?faults ?trace:(tp "EM3D" "crl") ~nprocs (module Em3d)
                  (em3d_cfg scale steps)));
        sace =
          (fun () ->
            pi (fun steps ->
                Driver.run_ace ?faults ?trace:(tp "EM3D" "ace") ~nprocs (module Em3d)
                  (em3d_cfg scale steps)));
      };
      {
        sname = "TSP";
        sper_iteration = false;
        sbase =
          (fun () -> avg (Driver.run_crl ?faults ?trace:(tp "TSP" "crl") ~nprocs (module Tsp)));
        sace =
          (fun () -> avg (Driver.run_ace ?faults ?trace:(tp "TSP" "ace") ~nprocs (module Tsp)));
      };
      {
        sname = "Water";
        sper_iteration = true;
        sbase =
          (fun () ->
            pi (fun steps ->
                Driver.run_crl ?faults ?trace:(tp "Water" "crl") ~nprocs (module Water)
                  (water_cfg scale steps)));
        sace =
          (fun () ->
            pi (fun steps ->
                Driver.run_ace ?faults ?trace:(tp "Water" "ace") ~nprocs (module Water)
                  (water_cfg scale steps)));
      };
    |]

(* Fig. 7b: single (SC) protocol vs application-specific protocols, both on
   the Ace runtime. *)
let fig7b ?(scale = default_scale) ?jobs ?trace_dir ?faults () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let pi run = Driver.per_iteration ~run_with_steps:run ~iters in
  let avg run = let t, r = tsp_avg run in { Driver.seconds = t; result = r } in
  let tp row side = trace_path trace_dir ~fig:"fig7b" ~row ~side in
  (* sides: "sc" = default protocol, "custom" = application-specific *)
  let em3d side proto steps =
    Driver.run_ace ?faults ?trace:(tp "EM3D (static update)" side) ~nprocs (module Em3d)
      { (em3d_cfg scale steps) with Em3d.protocol = proto }
  in
  let bh side proto steps =
    Driver.run_ace ?faults ?trace:(tp "Barnes-Hut (dyn update)" side) ~nprocs
      (module Barnes_hut)
      { (bh_cfg scale steps) with Barnes_hut.protocol = proto }
  in
  let water side protos steps =
    Driver.run_ace ?faults ?trace:(tp "Water (null+pipeline)" side) ~nprocs
      (module Water)
      { (water_cfg scale steps) with Water.phase_protocols = protos }
  in
  let bsc side proto =
    Driver.run_ace ?faults ?trace:(tp "BSC (write-once)" side) ~nprocs (module Cholesky)
      { (bsc_cfg scale) with Cholesky.protocol = proto }
  in
  let tsp side proto cfg =
    Driver.run_ace ?faults ?trace:(tp "TSP (counter)" side) ~nprocs (module Tsp)
      { cfg with Tsp.counter_protocol = proto }
  in
  collect ?jobs
    [|
      {
        sname = "Barnes-Hut (dyn update)";
        sper_iteration = true;
        sbase = (fun () -> pi (bh "sc" None));
        sace = (fun () -> pi (bh "custom" (Some "DYN_UPDATE")));
      };
      {
        sname = "BSC (write-once)";
        sper_iteration = false;
        sbase = (fun () -> bsc "sc" None);
        sace = (fun () -> bsc "custom" (Some "WRITE_ONCE"));
      };
      {
        sname = "EM3D (static update)";
        sper_iteration = true;
        sbase = (fun () -> pi (em3d "sc" None));
        sace = (fun () -> pi (em3d "custom" (Some "STATIC_UPDATE")));
      };
      {
        sname = "TSP (counter)";
        sper_iteration = false;
        sbase = (fun () -> avg (tsp "sc" None));
        sace = (fun () -> avg (tsp "custom" (Some "COUNTER")));
      };
      {
        sname = "Water (null+pipeline)";
        sper_iteration = true;
        sbase = (fun () -> pi (water "sc" None));
        sace = (fun () -> pi (water "custom" (Some ("NULL", "PIPELINE"))));
      };
    |]

let print_rows ~left ~right rows =
  Printf.printf "%-26s %12s %12s %9s  %s\n" "benchmark" left right "speedup"
    "unit";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.6f %12.6f %8.2fx  %s\n" r.name r.baseline r.ace
        (speedup r)
        (if r.per_iteration then "s/iter" else "s total"))
    rows

(* {2 Fault sweep}

   Every benchmark on the Ace runtime across a list of drop rates: the
   protocols themselves are unchanged, so any completion at all is the
   reliable transport doing its job, and the counters quantify what it
   cost. One cell per (benchmark, drop rate) pair, parallelised like the
   figures; each cell instantiates its own RNG stream from the shared
   spec's seed, so rows are independent of pool scheduling. *)

type fault_row = {
  fr_bench : string;
  fr_drop : float;
  fr_seconds : float; (* simulated, total *)
  fr_retransmits : float;
  fr_timeouts : float;
  fr_dup_suppressed : float;
  fr_dropped : float; (* transmissions eaten by the network *)
  fr_giveups : float;
  fr_wall : float;
}

let fault_sweep ?(scale = default_scale) ?jobs
    ?(drops = [ 0.0; 0.01; 0.02; 0.05 ]) ?(base = Faults.spec ()) () =
  let nprocs = scale.nprocs in
  (* Short runs: the sweep measures transport behaviour, not steady-state
     application speed, so two steps per iterative benchmark suffice. *)
  let benches :
      (string
      * (?faults:Faults.spec ->
         ?stats:(Stats.t -> unit) ->
         unit ->
         Driver.outcome))
      array =
    [|
      ( "Barnes-Hut",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Barnes_hut)
            (bh_cfg scale 2) );
      ( "BSC",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Cholesky)
            (bsc_cfg scale) );
      ( "EM3D",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Em3d)
            (em3d_cfg scale 2) );
      ( "TSP",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Tsp) (tsp_cfg scale) );
      ( "Water",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Water)
            (water_cfg scale 2) );
    |]
  in
  let drops = Array.of_list drops in
  let cells =
    Array.init
      (Array.length drops * Array.length benches)
      (fun i ->
        let drop = drops.(i / Array.length benches) in
        let name, run = benches.(i mod Array.length benches) in
        Pool.timed (fun () ->
            let faults =
              Faults.spec ~drop ~dup:base.Faults.dup ~jitter:base.Faults.jitter
                ~seed:base.Faults.seed ()
            in
            let row = ref None in
            let out =
              run ~faults
                ~stats:(fun st ->
                  row :=
                    Some
                      {
                        fr_bench = name;
                        fr_drop = drop;
                        fr_seconds = 0.;
                        fr_retransmits = Stats.get st "net.retransmits";
                        fr_timeouts = Stats.get st "net.timeouts";
                        fr_dup_suppressed = Stats.get st "net.dup_suppressed";
                        fr_dropped = Stats.get st "net.fault.dropped";
                        fr_giveups = Stats.get st "net.giveups";
                        fr_wall = 0.;
                      })
                ()
            in
            { (Option.get !row) with fr_seconds = out.Driver.seconds }))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list (Array.map (fun (r, wall) -> { r with fr_wall = wall }) out)

let print_fault_rows rows =
  Printf.printf "%-12s %6s %12s %8s %8s %8s %8s %8s\n" "benchmark" "drop"
    "sim s" "rexmit" "timeout" "dupsup" "dropped" "giveup";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun r ->
      Printf.printf "%-12s %6.3f %12.6f %8.0f %8.0f %8.0f %8.0f %8.0f\n"
        r.fr_bench r.fr_drop r.fr_seconds r.fr_retransmits r.fr_timeouts
        r.fr_dup_suppressed r.fr_dropped r.fr_giveups)
    rows
