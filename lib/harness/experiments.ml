(* The paper's evaluation (Section 5), regenerated. Every row reports
   simulated seconds on the modelled 32-node CM-5. *)

module Stats = Ace_engine.Stats
module Faults = Ace_net.Faults
module Em3d = Ace_apps.Em3d
module Barnes_hut = Ace_apps.Barnes_hut
module Cholesky = Ace_apps.Cholesky
module Tsp = Ace_apps.Tsp
module Water = Ace_apps.Water

type scale = { nprocs : int; factor : int }

let default_scale = { nprocs = 32; factor = 1 }

(* Benchmark instances, scaled-down versions of Table 3's inputs (see
   DESIGN.md). [factor] multiplies the dominant size dimension. *)
let em3d_cfg s steps =
  { Em3d.default with Em3d.n_nodes = 800 * s.factor; steps }

let bh_cfg s steps =
  { Barnes_hut.default with Barnes_hut.n_bodies = 512 * s.factor; steps }

let water_cfg s steps =
  {
    Water.default with
    Water.core = { Water.default.Water.core with Ace_apps.Water_core.n_mol = 128 * s.factor; steps };
  }

let bsc_cfg s =
  {
    Cholesky.default with
    Cholesky.core =
      { Cholesky.default.Cholesky.core with Ace_apps.Chol_core.nb = 12 * s.factor };
  }

let tsp_cfg _s = Tsp.default

(* Branch-and-bound timing depends on work assignment, so TSP times are
   averaged over three instances, as the paper averages three runs. *)
let tsp_seeds = [ 3; 5; 7 ]

let tsp_avg run =
  let outcomes =
    List.map
      (fun seed ->
        run
          {
            Tsp.default with
            Tsp.core = { Tsp.default.Tsp.core with Ace_apps.Tsp_core.seed = seed };
          })
      tsp_seeds
  in
  let n = float_of_int (List.length outcomes) in
  ( List.fold_left (fun a o -> a +. o.Driver.seconds) 0. outcomes /. n,
    (List.hd outcomes).Driver.result )

(* File-name slug for a row name: lowercase alphanumerics, runs of anything
   else collapsed to one '-'. *)
let slug name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
      | _ ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-'
          then Buffer.add_char b '-')
    name;
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '-' then String.sub s 0 (n - 1) else s

(* One trace file per grid cell: DIR/FIG-ROW-SIDE.trace.json. Cells that
   run several simulations (per-iteration pairs, the TSP average) overwrite
   the file, leaving the trace of the last — largest — run. *)
let trace_path trace_dir ~fig ~row ~side =
  Option.map
    (fun dir ->
      Filename.concat dir (Printf.sprintf "%s-%s-%s.trace.json" fig (slug row) side))
    trace_dir

type row = {
  name : string;
  baseline : float; (* seconds *)
  ace : float;
  base_result : float;
  ace_result : float;
  base_msgs : float; (* physical messages, summed over the cell's runs *)
  ace_msgs : float;
  per_iteration : bool;
  wall : float; (* host seconds spent simulating this row *)
}

let speedup r = r.baseline /. r.ace

(* A figure is assembled from independent cells — one per (row, system)
   pair, each a closed thunk running its own simulations — so the pool can
   execute them on parallel domains. Results are gathered positionally;
   simulated seconds are bit-identical to a serial (jobs = 1) run. Each
   thunk forwards the supplied [stats] probe to every simulation it runs,
   so the row can also report the cell's physical message traffic. *)
type spec = {
  sname : string;
  sper_iteration : bool;
  sbase : stats:(Stats.t -> unit) -> Driver.outcome;
  sace : stats:(Stats.t -> unit) -> Driver.outcome;
}

let collect ?jobs (specs : spec array) =
  let cells =
    Array.init
      (2 * Array.length specs)
      (fun i ->
        let s = specs.(i / 2) in
        let run = if i mod 2 = 0 then s.sbase else s.sace in
        Pool.timed (fun () ->
            let msgs = ref 0. in
            let out =
              run ~stats:(fun st -> msgs := !msgs +. Stats.get st "net.messages")
            in
            (out, !msgs)))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list
    (Array.mapi
       (fun i s ->
         let (b, bm), wall_b = out.(2 * i) in
         let (a, am), wall_a = out.((2 * i) + 1) in
         {
           name = s.sname;
           baseline = b.Driver.seconds;
           ace = a.Driver.seconds;
           base_result = b.Driver.result;
           ace_result = a.Driver.result;
           base_msgs = bm;
           ace_msgs = am;
           per_iteration = s.sper_iteration;
           wall = wall_b +. wall_a;
         })
       specs)

(* Fig. 7a: Ace runtime vs CRL, both under the SC invalidation protocol. *)
let fig7a ?(scale = default_scale) ?jobs ?trace_dir ?faults ?batch ?engine () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let pi run = Driver.per_iteration ~run_with_steps:run ~iters in
  let avg run = let t, r = tsp_avg run in { Driver.seconds = t; result = r } in
  let tp row side = trace_path trace_dir ~fig:"fig7a" ~row ~side in
  collect ?jobs
    [|
      {
        sname = "Barnes-Hut";
        sper_iteration = true;
        sbase =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_crl ?faults ?batch ?engine ~stats
                  ?trace:(tp "Barnes-Hut" "crl")
                  ~nprocs (module Barnes_hut) (bh_cfg scale steps)));
        sace =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_ace ?faults ?batch ?engine ~stats
                  ?trace:(tp "Barnes-Hut" "ace")
                  ~nprocs (module Barnes_hut) (bh_cfg scale steps)));
      };
      {
        sname = "BSC";
        sper_iteration = false;
        sbase =
          (fun ~stats ->
            Driver.run_crl ?faults ?batch ?engine ~stats
              ?trace:(tp "BSC" "crl") ~nprocs
              (module Cholesky) (bsc_cfg scale));
        sace =
          (fun ~stats ->
            Driver.run_ace ?faults ?batch ?engine ~stats
              ?trace:(tp "BSC" "ace") ~nprocs
              (module Cholesky) (bsc_cfg scale));
      };
      {
        sname = "EM3D";
        sper_iteration = true;
        sbase =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_crl ?faults ?batch ?engine ~stats
                  ?trace:(tp "EM3D" "crl")
                  ~nprocs (module Em3d) (em3d_cfg scale steps)));
        sace =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_ace ?faults ?batch ?engine ~stats
                  ?trace:(tp "EM3D" "ace")
                  ~nprocs (module Em3d) (em3d_cfg scale steps)));
      };
      {
        sname = "TSP";
        sper_iteration = false;
        sbase =
          (fun ~stats ->
            avg
              (Driver.run_crl ?faults ?batch ?engine ~stats
                 ?trace:(tp "TSP" "crl")
                 ~nprocs (module Tsp)));
        sace =
          (fun ~stats ->
            avg
              (Driver.run_ace ?faults ?batch ?engine ~stats
                 ?trace:(tp "TSP" "ace")
                 ~nprocs (module Tsp)));
      };
      {
        sname = "Water";
        sper_iteration = true;
        sbase =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_crl ?faults ?batch ?engine ~stats
                  ?trace:(tp "Water" "crl")
                  ~nprocs (module Water) (water_cfg scale steps)));
        sace =
          (fun ~stats ->
            pi (fun steps ->
                Driver.run_ace ?faults ?batch ?engine ~stats
                  ?trace:(tp "Water" "ace")
                  ~nprocs (module Water) (water_cfg scale steps)));
      };
    |]

(* Fig. 7b: single (SC) protocol vs application-specific protocols, both on
   the Ace runtime. *)
let fig7b ?(scale = default_scale) ?jobs ?trace_dir ?faults ?batch ?engine () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let pi run = Driver.per_iteration ~run_with_steps:run ~iters in
  let avg run = let t, r = tsp_avg run in { Driver.seconds = t; result = r } in
  let tp row side = trace_path trace_dir ~fig:"fig7b" ~row ~side in
  (* sides: "sc" = default protocol, "custom" = application-specific *)
  let em3d ~stats side proto steps =
    Driver.run_ace ?faults ?batch ?engine ~stats
      ?trace:(tp "EM3D (static update)" side) ~nprocs (module Em3d)
      { (em3d_cfg scale steps) with Em3d.protocol = proto }
  in
  let bh ~stats side proto steps =
    Driver.run_ace ?faults ?batch ?engine ~stats
      ?trace:(tp "Barnes-Hut (dyn update)" side) ~nprocs
      (module Barnes_hut)
      { (bh_cfg scale steps) with Barnes_hut.protocol = proto }
  in
  let water ~stats side protos steps =
    Driver.run_ace ?faults ?batch ?engine ~stats
      ?trace:(tp "Water (null+pipeline)" side) ~nprocs
      (module Water)
      { (water_cfg scale steps) with Water.phase_protocols = protos }
  in
  let bsc ~stats side proto =
    Driver.run_ace ?faults ?batch ?engine ~stats
      ?trace:(tp "BSC (write-once)" side)
      ~nprocs (module Cholesky)
      { (bsc_cfg scale) with Cholesky.protocol = proto }
  in
  let tsp ~stats side proto cfg =
    Driver.run_ace ?faults ?batch ?engine ~stats
      ?trace:(tp "TSP (counter)" side)
      ~nprocs (module Tsp)
      { cfg with Tsp.counter_protocol = proto }
  in
  collect ?jobs
    [|
      {
        sname = "Barnes-Hut (dyn update)";
        sper_iteration = true;
        sbase = (fun ~stats -> pi (bh ~stats "sc" None));
        sace = (fun ~stats -> pi (bh ~stats "custom" (Some "DYN_UPDATE")));
      };
      {
        sname = "BSC (write-once)";
        sper_iteration = false;
        sbase = (fun ~stats -> bsc ~stats "sc" None);
        sace = (fun ~stats -> bsc ~stats "custom" (Some "WRITE_ONCE"));
      };
      {
        sname = "EM3D (static update)";
        sper_iteration = true;
        sbase = (fun ~stats -> pi (em3d ~stats "sc" None));
        sace = (fun ~stats -> pi (em3d ~stats "custom" (Some "STATIC_UPDATE")));
      };
      {
        sname = "TSP (counter)";
        sper_iteration = false;
        sbase = (fun ~stats -> avg (tsp ~stats "sc" None));
        sace = (fun ~stats -> avg (tsp ~stats "custom" (Some "COUNTER")));
      };
      {
        sname = "Water (null+pipeline)";
        sper_iteration = true;
        sbase = (fun ~stats -> pi (water ~stats "sc" None));
        sace =
          (fun ~stats -> pi (water ~stats "custom" (Some ("NULL", "PIPELINE"))));
      };
    |]

(* Combinator-compiler identity grid: each row runs one benchmark twice on
   the Ace runtime — once under a hand-written protocol, once under its
   combinator-built re-expression — and must be bit-identical (simulated
   seconds, checksum, physical messages). Both sides pin the protocol via
   the app's override (a collective Ace_ChangeProtocol), so the SC rows
   pay the same switch storm on both sides and the comparison is
   symmetric. *)
let combinator ?(scale = default_scale) ?jobs ?faults ?batch ?engine () =
  let iters = 4 in
  let nprocs = scale.nprocs in
  let pi run = Driver.per_iteration ~run_with_steps:run ~iters in
  let avg run = let t, r = tsp_avg run in { Driver.seconds = t; result = r } in
  let em3d ~stats proto steps =
    Driver.run_ace ?faults ?batch ?engine ~stats ~nprocs (module Em3d)
      { (em3d_cfg scale steps) with Em3d.protocol = Some proto }
  in
  let bh ~stats proto steps =
    Driver.run_ace ?faults ?batch ?engine ~stats ~nprocs (module Barnes_hut)
      { (bh_cfg scale steps) with Barnes_hut.protocol = Some proto }
  in
  let water ~stats proto steps =
    Driver.run_ace ?faults ?batch ?engine ~stats ~nprocs (module Water)
      { (water_cfg scale steps) with Water.phase_protocols = Some (proto, proto) }
  in
  let bsc ~stats proto =
    Driver.run_ace ?faults ?batch ?engine ~stats ~nprocs (module Cholesky)
      { (bsc_cfg scale) with Cholesky.protocol = Some proto }
  in
  let tsp ~stats proto cfg =
    Driver.run_ace ?faults ?batch ?engine ~stats ~nprocs (module Tsp)
      { cfg with Tsp.counter_protocol = Some proto }
  in
  let pair name hand dsl run =
    {
      sname = name;
      sper_iteration = true;
      sbase = (fun ~stats -> pi (run ~stats hand));
      sace = (fun ~stats -> pi (run ~stats dsl));
    }
  in
  collect ?jobs
    [|
      pair "EM3D / SC" "SC" "DSL_SC" em3d;
      pair "Barnes-Hut / SC" "SC" "DSL_SC" bh;
      pair "Water / SC" "SC" "DSL_SC" water;
      {
        sname = "BSC / SC";
        sper_iteration = false;
        sbase = (fun ~stats -> bsc ~stats "SC");
        sace = (fun ~stats -> bsc ~stats "DSL_SC");
      };
      {
        sname = "TSP / SC";
        sper_iteration = false;
        sbase = (fun ~stats -> avg (tsp ~stats "SC"));
        sace = (fun ~stats -> avg (tsp ~stats "DSL_SC"));
      };
      pair "EM3D / MIGRATORY" "MIGRATORY" "DSL_MIGRATORY" em3d;
      pair "Barnes-Hut / MIGRATORY" "MIGRATORY" "DSL_MIGRATORY" bh;
      pair "Water / MIGRATORY" "MIGRATORY" "DSL_MIGRATORY" water;
      {
        sname = "BSC / WRITE_ONCE";
        sper_iteration = false;
        sbase = (fun ~stats -> bsc ~stats "WRITE_ONCE");
        sace = (fun ~stats -> bsc ~stats "DSL_WRITE_ONCE");
      };
    |]

let print_rows ~left ~right rows =
  Printf.printf "%-26s %12s %12s %9s  %s\n" "benchmark" left right "speedup"
    "unit";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.6f %12.6f %8.2fx  %s\n" r.name r.baseline r.ace
        (speedup r)
        (if r.per_iteration then "s/iter" else "s total"))
    rows

(* {2 Fault sweep}

   Every benchmark on the Ace runtime across a list of drop rates: the
   protocols themselves are unchanged, so any completion at all is the
   reliable transport doing its job, and the counters quantify what it
   cost. One cell per (benchmark, drop rate) pair, parallelised like the
   figures; each cell instantiates its own RNG stream from the shared
   spec's seed, so rows are independent of pool scheduling. *)

type fault_row = {
  fr_bench : string;
  fr_drop : float;
  fr_seconds : float; (* simulated, total *)
  fr_retransmits : float;
  fr_timeouts : float;
  fr_dup_suppressed : float;
  fr_dropped : float; (* transmissions eaten by the network *)
  fr_giveups : float;
  fr_messages : float; (* physical messages *)
  fr_acks : float; (* ACK obligations (one per received copy) *)
  fr_acks_piggybacked : float; (* obligations that rode reverse-link data *)
  fr_acks_cumulative : float; (* extra obligations folded into dedicated ACKs *)
  fr_wall : float;
}

let fault_sweep ?(scale = default_scale) ?jobs
    ?(drops = [ 0.0; 0.01; 0.02; 0.05 ]) ?(base = Faults.spec ()) () =
  let nprocs = scale.nprocs in
  (* Short runs: the sweep measures transport behaviour, not steady-state
     application speed, so two steps per iterative benchmark suffice. *)
  let benches :
      (string
      * (?faults:Faults.spec ->
         ?stats:(Stats.t -> unit) ->
         unit ->
         Driver.outcome))
      array =
    [|
      ( "Barnes-Hut",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Barnes_hut)
            (bh_cfg scale 2) );
      ( "BSC",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Cholesky)
            (bsc_cfg scale) );
      ( "EM3D",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Em3d)
            (em3d_cfg scale 2) );
      ( "TSP",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Tsp) (tsp_cfg scale) );
      ( "Water",
        fun ?faults ?stats () ->
          Driver.run_ace ?faults ?stats ~nprocs (module Water)
            (water_cfg scale 2) );
    |]
  in
  let drops = Array.of_list drops in
  let cells =
    Array.init
      (Array.length drops * Array.length benches)
      (fun i ->
        let drop = drops.(i / Array.length benches) in
        let name, run = benches.(i mod Array.length benches) in
        Pool.timed (fun () ->
            let faults =
              Faults.spec ~drop ~dup:base.Faults.dup ~jitter:base.Faults.jitter
                ~seed:base.Faults.seed ()
            in
            let row = ref None in
            let out =
              run ~faults
                ~stats:(fun st ->
                  row :=
                    Some
                      {
                        fr_bench = name;
                        fr_drop = drop;
                        fr_seconds = 0.;
                        fr_retransmits = Stats.get st "net.retransmits";
                        fr_timeouts = Stats.get st "net.timeouts";
                        fr_dup_suppressed = Stats.get st "net.dup_suppressed";
                        fr_dropped = Stats.get st "net.fault.dropped";
                        fr_giveups = Stats.get st "net.giveups";
                        fr_messages = Stats.get st "net.messages";
                        fr_acks = Stats.get st "net.acks";
                        fr_acks_piggybacked =
                          Stats.get st "net.acks.piggybacked";
                        fr_acks_cumulative = Stats.get st "net.acks.cumulative";
                        fr_wall = 0.;
                      })
                ()
            in
            { (Option.get !row) with fr_seconds = out.Driver.seconds }))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list (Array.map (fun (r, wall) -> { r with fr_wall = wall }) out)

(* {2 Bulk-transfer batching}

   Each benchmark under its application-specific protocol, batching off vs
   on, on the faultless network. Simulated results must agree exactly
   (batching changes when data travels, not what the program computes at
   its synchronization points); the interesting columns are the physical
   message counts and where the savings came from (same-destination
   coalescing, write-combined updates, batched invalidations, bulk
   prefetches). *)

type batch_row = {
  br_bench : string;
  br_off : float; (* simulated seconds, batching off *)
  br_on : float; (* simulated seconds, batching on *)
  br_off_msgs : float; (* physical messages, batching off *)
  br_on_msgs : float;
  br_coalesced : float; (* messages removed by same-destination coalescing *)
  br_combined : float; (* write-combined updates parked in queues *)
  br_results_agree : bool; (* batching left the computed result unchanged *)
  br_wall : float;
}

(* Fraction of the baseline's physical messages that batching removed. *)
let batch_reduction r =
  if r.br_off_msgs > 0. then 1. -. (r.br_on_msgs /. r.br_off_msgs) else 0.

let batching ?(scale = default_scale) ?jobs () =
  let nprocs = scale.nprocs in
  (* Short steady-state runs: the experiment measures traffic shape, not
     application speed. Each benchmark uses the protocol with the richest
     batching behaviour (fig. 7b's custom protocols). *)
  let benches :
      (string
      * (?batch:bool -> ?stats:(Stats.t -> unit) -> unit -> Driver.outcome))
      array =
    [|
      ( "Barnes-Hut (dyn update)",
        fun ?batch ?stats () ->
          Driver.run_ace ?batch ?stats ~nprocs (module Barnes_hut)
            {
              (bh_cfg scale 2) with
              Barnes_hut.n_bodies = 192 * scale.factor;
              protocol = Some "DYN_UPDATE";
            } );
      ( "BSC (write-once)",
        fun ?batch ?stats () ->
          Driver.run_ace ?batch ?stats ~nprocs (module Cholesky)
            { (bsc_cfg scale) with Cholesky.protocol = Some "WRITE_ONCE" } );
      ( "EM3D (static update)",
        fun ?batch ?stats () ->
          Driver.run_ace ?batch ?stats ~nprocs (module Em3d)
            { (em3d_cfg scale 6) with Em3d.protocol = Some "STATIC_UPDATE" } );
      ( "TSP (counter)",
        fun ?batch ?stats () ->
          Driver.run_ace ?batch ?stats ~nprocs (module Tsp)
            { (tsp_cfg scale) with Tsp.counter_protocol = Some "COUNTER" } );
      ( "Water (null+pipeline)",
        fun ?batch ?stats () ->
          let cfg = water_cfg scale 2 in
          Driver.run_ace ?batch ?stats ~nprocs (module Water)
            {
              Water.core =
                { cfg.Water.core with Ace_apps.Water_core.n_mol = 96 * scale.factor };
              phase_protocols = Some ("NULL", "PIPELINE");
            } );
    |]
  in
  let cells =
    Array.init
      (2 * Array.length benches)
      (fun i ->
        let name, run = benches.(i / 2) in
        let batch = i mod 2 = 1 in
        ignore name;
        Pool.timed (fun () ->
            let msgs = ref 0. and coal = ref 0. and comb = ref 0. in
            let out =
              run ~batch
                ~stats:(fun st ->
                  msgs := Stats.get st "net.messages";
                  coal := Stats.get st "net.coalesced";
                  comb :=
                    Stats.get st "coh.write_combined"
                    +. Stats.get st "coh.inval_batch"
                    +. Stats.get st "coh.bulk_fetch")
                ()
            in
            (out, !msgs, !coal, !comb)))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list
    (Array.init (Array.length benches) (fun i ->
         let (off, off_msgs, _, _), wall_off = out.(2 * i) in
         let (on, on_msgs, coal, comb), wall_on = out.((2 * i) + 1) in
         let name, _ = benches.(i) in
         {
           br_bench = name;
           br_off = off.Driver.seconds;
           br_on = on.Driver.seconds;
           br_off_msgs = off_msgs;
           br_on_msgs = on_msgs;
           br_coalesced = coal;
           br_combined = comb;
           br_results_agree =
             (off.Driver.result = on.Driver.result
             || (Float.is_nan off.Driver.result && Float.is_nan on.Driver.result));
           br_wall = wall_off +. wall_on;
         }))

let print_batch_rows rows =
  Printf.printf "%-26s %10s %10s %8s %9s %9s %6s\n" "benchmark" "msgs off"
    "msgs on" "saved" "coalesced" "combined" "ok";
  Printf.printf "%s\n" (String.make 84 '-');
  List.iter
    (fun r ->
      Printf.printf "%-26s %10.0f %10.0f %7.1f%% %9.0f %9.0f %6s\n" r.br_bench
        r.br_off_msgs r.br_on_msgs
        (100. *. batch_reduction r)
        r.br_coalesced r.br_combined
        (if r.br_results_agree then "yes" else "NO"))
    rows

(* {2 Weak scaling past the CM-5}

   The paper stops at the CM-5's 32 processors; this experiment rides the
   compact directory representation up to 1024. EM3D and Barnes-Hut are
   weak-scaled (problem size proportional to nprocs) and run under both the
   invalidation protocol (SC) and their update protocols — the
   invalidation-vs-update crossover as the consumer set grows is the
   headline curve. BSC runs at a fixed size as a strong-scaling control.
   Every cell also reports the end-of-run (= peak: the structures only
   grow) words of directory state, which is how the sublinear-memory claim
   is measured.

   Sizes are deliberately lean — EM3D keeps 8 graph nodes per side per
   processor and Barnes-Hut 2 bodies per processor — because a 1024-node
   Barnes-Hut step genuinely replicates every body everywhere: the
   simulation's live state is O(bodies × nprocs) no matter how compact the
   directory is. *)

type scaling_row = {
  sc_bench : string; (* "EM3D" | "Barnes-Hut" | "BSC" *)
  sc_proto : string; (* "inval" | "update" *)
  sc_nprocs : int;
  sc_seconds : float; (* simulated, total for the cell's run *)
  sc_messages : float; (* physical messages *)
  sc_dir_words : float; (* peak live words of directory state *)
  sc_regions : float; (* regions allocated *)
  sc_wall : float; (* host seconds for the cell *)
}

(* Directory words per region, the sublinearity metric. *)
let scaling_words_per_region r =
  if r.sc_regions > 0. then r.sc_dir_words /. r.sc_regions else 0.

let default_scaling_nprocs = [ 32; 64; 128; 256; 512; 1024 ]

let scaling ?jobs ?(nprocs_list = default_scaling_nprocs) ?engine () =
  List.iter
    (fun n -> if n < 2 then invalid_arg "Experiments.scaling: nprocs < 2")
    nprocs_list;
  let em3d_cfg nprocs proto =
    {
      Em3d.default with
      Em3d.n_nodes = 8 * nprocs;
      steps = 2;
      protocol = proto;
    }
  in
  let bh_cfg nprocs proto =
    {
      Barnes_hut.default with
      Barnes_hut.n_bodies = 2 * nprocs;
      steps = 1;
      protocol = proto;
    }
  in
  let cells =
    List.concat_map
      (fun nprocs ->
        let cell bench proto run =
          Pool.timed (fun () ->
              let msgs = ref 0. and words = ref 0. and regions = ref 0. in
              let out =
                run ~stats:(fun st ->
                    msgs := Stats.get st "net.messages";
                    words := Stats.get st "region.dir_words";
                    regions := Stats.get st "region.regions")
              in
              {
                sc_bench = bench;
                sc_proto = proto;
                sc_nprocs = nprocs;
                sc_seconds = out.Driver.seconds;
                sc_messages = !msgs;
                sc_dir_words = !words;
                sc_regions = !regions;
                sc_wall = 0.;
              })
        in
        [
          cell "EM3D" "inval" (fun ~stats ->
              Driver.run_ace ?engine ~stats ~nprocs (module Em3d)
                (em3d_cfg nprocs None));
          cell "EM3D" "update" (fun ~stats ->
              Driver.run_ace ?engine ~stats ~nprocs (module Em3d)
                (em3d_cfg nprocs (Some "STATIC_UPDATE")));
          cell "Barnes-Hut" "inval" (fun ~stats ->
              Driver.run_ace ?engine ~stats ~nprocs (module Barnes_hut)
                (bh_cfg nprocs None));
          cell "Barnes-Hut" "update" (fun ~stats ->
              Driver.run_ace ?engine ~stats ~nprocs (module Barnes_hut)
                (bh_cfg nprocs (Some "DYN_UPDATE")));
          cell "BSC" "inval" (fun ~stats ->
              Driver.run_ace ?engine ~stats ~nprocs (module Cholesky)
                (bsc_cfg default_scale));
        ])
      nprocs_list
  in
  let out = Pool.run_all ?jobs (Array.of_list cells) in
  Array.to_list (Array.map (fun (r, wall) -> { r with sc_wall = wall }) out)

let print_scaling_rows rows =
  Printf.printf "%-12s %-7s %7s %12s %12s %12s %9s %10s\n" "benchmark"
    "proto" "nprocs" "sim s" "messages" "dir words" "regions" "words/rgn";
  Printf.printf "%s\n" (String.make 92 '-');
  List.iter
    (fun r ->
      Printf.printf "%-12s %-7s %7d %12.6f %12.0f %12.0f %9.0f %10.2f\n"
        r.sc_bench r.sc_proto r.sc_nprocs r.sc_seconds r.sc_messages
        r.sc_dir_words r.sc_regions
        (scaling_words_per_region r))
    rows;
  (* The headline: simulated-time ratio of update over invalidation per
     machine size — below 1.0 the update protocol wins. *)
  Printf.printf "\n%-12s %7s %14s %14s %8s\n" "crossover" "nprocs" "inval s"
    "update s" "ratio";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun bench ->
      List.iter
        (fun r ->
          if r.sc_bench = bench && r.sc_proto = "inval" then
            match
              List.find_opt
                (fun u ->
                  u.sc_bench = bench && u.sc_proto = "update"
                  && u.sc_nprocs = r.sc_nprocs)
                rows
            with
            | Some u ->
                Printf.printf "%-12s %7d %14.6f %14.6f %8.3f\n" bench
                  r.sc_nprocs r.sc_seconds u.sc_seconds
                  (if r.sc_seconds > 0. then u.sc_seconds /. r.sc_seconds
                   else nan)
            | None -> ())
        rows)
    [ "EM3D"; "Barnes-Hut" ]

(* {2 Critical-path profiling}

   Every benchmark under the invalidation (SC) protocol and under its
   application-specific protocol (fig. 7b's custom protocols), each run
   with a causal-DAG recorder attached. The recorded DAG yields the
   critical path, a per-op-class blame breakdown (whose cycles sum to the
   run's whole simulated duration — checked in the tests), and two
   causal-profiling what-if predictions: all wire latency halved and the
   AM send overhead halved. Short steady-state runs, same sizes as the
   batching experiment: the profile's shape, not application speed, is
   the measurement. *)

module Crit = Ace_engine.Crit
module Critpath = Ace_obs.Critpath

type critpath_row = {
  cp_bench : string;
  cp_proto : string; (* "inval" | the custom protocol's name *)
  cp_seconds : float; (* simulated, total *)
  cp_cycles : float; (* recorded end time = total path blame *)
  cp_nodes : int; (* DAG size *)
  cp_path : int; (* steps on the critical path *)
  cp_blame : (string * float) list; (* cycles by op class, descending *)
  cp_whatif_net : float; (* predicted speedup, every link at half latency *)
  cp_whatif_send : float; (* predicted speedup, send overhead halved *)
  cp_wall : float;
}

(* The op class carrying the most critical-path cycles, with its share. *)
let critpath_top r =
  match r.cp_blame with
  | [] -> ("-", 0.)
  | (k, c) :: _ -> (k, if r.cp_cycles > 0. then c /. r.cp_cycles else 0.)

let whatif_net_half = { Critpath.target = Critpath.Link (None, None); factor = 0.5 }
let whatif_send_half = { Critpath.target = Critpath.Op "send_ovh"; factor = 0.5 }

(* One DAG file per cell when [dir] is given: DIR/critpath-BENCH-PROTO.json. *)
let critpath_path dir ~bench ~proto =
  Option.map
    (fun d ->
      Filename.concat d (Printf.sprintf "critpath-%s-%s.json" (slug bench) (slug proto)))
    dir

let critpath ?(scale = default_scale) ?jobs ?dir () =
  let nprocs = scale.nprocs in
  let benches :
      (string
      * string
      * (crit:Crit.t -> Driver.outcome)
      * (crit:Crit.t -> Driver.outcome))
      array =
    [|
      ( "Barnes-Hut",
        "DYN_UPDATE",
        (fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Barnes_hut) (bh_cfg scale 2)),
        fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Barnes_hut)
            { (bh_cfg scale 2) with Barnes_hut.protocol = Some "DYN_UPDATE" } );
      ( "BSC",
        "WRITE_ONCE",
        (fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Cholesky) (bsc_cfg scale)),
        fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Cholesky)
            { (bsc_cfg scale) with Cholesky.protocol = Some "WRITE_ONCE" } );
      ( "EM3D",
        "STATIC_UPDATE",
        (fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Em3d) (em3d_cfg scale 2)),
        fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Em3d)
            { (em3d_cfg scale 2) with Em3d.protocol = Some "STATIC_UPDATE" } );
      ( "TSP",
        "COUNTER",
        (fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Tsp) (tsp_cfg scale)),
        fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Tsp)
            { (tsp_cfg scale) with Tsp.counter_protocol = Some "COUNTER" } );
      ( "Water",
        "NULL+PIPELINE",
        (fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Water) (water_cfg scale 2)),
        fun ~crit ->
          Driver.run_ace ~crit ~nprocs (module Water)
            {
              (water_cfg scale 2) with
              Water.phase_protocols = Some ("NULL", "PIPELINE");
            } );
    |]
  in
  let cells =
    Array.init
      (2 * Array.length benches)
      (fun i ->
        let bench, custom_name, sc, custom = benches.(i / 2) in
        let proto, run =
          if i mod 2 = 0 then ("inval", sc) else (custom_name, custom)
        in
        Pool.timed (fun () ->
            let cr = Crit.create ~nprocs () in
            let out = run ~crit:cr in
            (match critpath_path dir ~bench ~proto with
            | None -> ()
            | Some path -> Crit.write_file cr path);
            let dag = Critpath.of_crit cr in
            let bp = Critpath.blamed_path dag in
            let _, _, sp_net = Critpath.predict dag [ whatif_net_half ] in
            let _, _, sp_send = Critpath.predict dag [ whatif_send_half ] in
            {
              cp_bench = bench;
              cp_proto = proto;
              cp_seconds = out.Driver.seconds;
              cp_cycles = Critpath.total_blame bp;
              cp_nodes = Critpath.n_nodes dag;
              cp_path = List.length bp;
              cp_blame = Critpath.blame_by_kind dag bp;
              cp_whatif_net = sp_net;
              cp_whatif_send = sp_send;
              cp_wall = 0.;
            }))
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list (Array.map (fun (r, wall) -> { r with cp_wall = wall }) out)

let print_critpath_rows rows =
  Printf.printf "%-12s %-14s %12s %9s %8s %-22s %8s %8s\n" "benchmark" "proto"
    "sim s" "dag" "path" "top op-class" "net x0.5" "snd x0.5";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun r ->
      let top, share = critpath_top r in
      Printf.printf "%-12s %-14s %12.6f %9d %8d %-15s %5.1f%%  %7.3fx %7.3fx\n"
        r.cp_bench r.cp_proto r.cp_seconds r.cp_nodes r.cp_path top
        (100. *. share) r.cp_whatif_net r.cp_whatif_send)
    rows

(* {2 Adaptive serving}

   The kvserve workload (Zipfian key-value serving with per-space access
   profiles, hot-key churn and rolling quiesce phases) under each fixed
   candidate protocol and under online adaptation. The fixed rows are the
   menu a static deployment would have to choose from; the adaptive row
   lets every space pick — and re-pick, as churn and quiesce shift the
   profiles — its own protocol at epoch boundaries through
   Ace_ChangeProtocol. The headline comparison is total physical
   messages: adaptation should match or beat the best fixed protocol,
   which no single row can do per-space. All rows compute the same exact
   (integral) total, checked against the sequential reference. *)

module Kvserve = Ace_apps.Kvserve
module Kv_core = Ace_apps.Kv_core
module Adapt = Ace_runtime.Adapt

type serving_row = {
  sv_mode : string; (* "SC" | "DYN_UPDATE" | "MIGRATORY" | "adaptive" *)
  sv_seconds : float; (* simulated, total *)
  sv_messages : float; (* physical messages *)
  sv_result : float; (* grand total served (exact integer) *)
  sv_ok : bool; (* result equals the sequential reference *)
  sv_switches : float; (* collective protocol switches performed *)
  sv_residency : (string * float) list; (* space-epochs per candidate *)
  sv_wall : float;
}

let serving_fixed = [ "SC"; "DYN_UPDATE"; "MIGRATORY" ]

(* Physical messages of the best fixed row vs the adaptive row — the
   experiment's acceptance ratio (<= 1.0 means adaptation won). *)
let serving_headline rows =
  let fixed =
    List.filter (fun r -> List.mem r.sv_mode serving_fixed) rows
  in
  let adaptive = List.find_opt (fun r -> r.sv_mode = "adaptive") rows in
  match (fixed, adaptive) with
  | [], _ | _, None -> None
  | f :: fs, Some a ->
      let best = List.fold_left (fun b r -> if r.sv_messages < b.sv_messages then r else b) f fs in
      Some (best, a, if best.sv_messages > 0. then a.sv_messages /. best.sv_messages else nan)

let serving ?(scale = default_scale) ?jobs ?batch ?trace_dir () =
  let nprocs = scale.nprocs in
  let cfg =
    {
      Kv_core.default with
      Kv_core.n_keys = 96 * scale.factor;
      ops_per_epoch = 24;
      epochs = 12;
    }
  in
  let reference = Kv_core.reference cfg ~nprocs in
  let fam_res = Stats.fam "ace.adapt.residency.by_proto" in
  let tp mode = trace_path trace_dir ~fig:"serving" ~row:mode ~side:"ace" in
  let modes =
    List.map (fun p -> (p, Some p)) serving_fixed @ [ ("adaptive", None) ]
  in
  let cells =
    Array.of_list
      (List.map
         (fun (mode, fixed) ->
           Pool.timed (fun () ->
               let msgs = ref 0.
               and switches = ref 0.
               and res = ref [] in
               let stats st =
                 msgs := Stats.get st "net.messages";
                 switches := Stats.get st "ace.adapt.switches";
                 res :=
                   Array.to_list
                     (Array.mapi
                        (fun i name -> (name, Stats.get_dim st fam_res i))
                        Adapt.candidates)
               in
               let adapt =
                 match fixed with None -> Some Adapt.default | Some _ -> None
               in
               let out =
                 Driver.run_ace ?batch ?adapt ?trace:(tp mode) ~stats ~nprocs
                   (module Kvserve)
                   { cfg with Kv_core.protocol = fixed }
               in
               {
                 sv_mode = mode;
                 sv_seconds = out.Driver.seconds;
                 sv_messages = !msgs;
                 sv_result = out.Driver.result;
                 sv_ok = out.Driver.result = reference;
                 sv_switches = !switches;
                 sv_residency = !res;
                 sv_wall = 0.;
               }))
         modes)
  in
  let out = Pool.run_all ?jobs cells in
  Array.to_list (Array.map (fun (r, wall) -> { r with sv_wall = wall }) out)

let print_serving_rows rows =
  Printf.printf "%-12s %12s %12s %9s %6s  %s\n" "mode" "sim s" "messages"
    "switches" "ok" "residency (space-epochs)";
  Printf.printf "%s\n" (String.make 92 '-');
  List.iter
    (fun r ->
      let res =
        String.concat " "
          (List.filter_map
             (fun (name, n) ->
               if n > 0. then Some (Printf.sprintf "%s:%.0f" name n) else None)
             r.sv_residency)
      in
      Printf.printf "%-12s %12.6f %12.0f %9.0f %6s  %s\n" r.sv_mode
        r.sv_seconds r.sv_messages r.sv_switches
        (if r.sv_ok then "yes" else "NO")
        res)
    rows;
  match serving_headline rows with
  | None -> ()
  | Some (best, a, ratio) ->
      Printf.printf
        "\nadaptive vs best fixed (%s): %.0f vs %.0f messages (%.3fx)\n"
        best.sv_mode a.sv_messages best.sv_messages ratio

let print_fault_rows rows =
  Printf.printf "%-12s %6s %12s %8s %8s %8s %8s %8s %9s %8s\n" "benchmark"
    "drop" "sim s" "rexmit" "timeout" "dupsup" "dropped" "giveup" "piggyack"
    "cumack";
  Printf.printf "%s\n" (String.make 96 '-');
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %6.3f %12.6f %8.0f %8.0f %8.0f %8.0f %8.0f %9.0f %8.0f\n"
        r.fr_bench r.fr_drop r.fr_seconds r.fr_retransmits r.fr_timeouts
        r.fr_dup_suppressed r.fr_dropped r.fr_giveups r.fr_acks_piggybacked
        r.fr_acks_cumulative)
    rows

(* {2 Parallel engine speedup}

   Wall-clock of the sharded engine vs the sequential engine on weak-scaled
   EM3D and Barnes-Hut (same per-processor sizes as the scaling
   experiment), where event counts are large enough for the conservative
   lookahead to win. Cells run strictly serially — never through the
   domain pool — because each parallel cell wants the host's cores for its
   own shard domains, and the wall-clock ratio *is* the measurement.
   Simulated output must be bit-identical between the two engines; every
   row carries the comparison so the caller (and CI) can assert it. *)

type engine_row = {
  en_bench : string; (* "EM3D" | "Barnes-Hut" *)
  en_nprocs : int;
  en_shards : int; (* requested shard count of the parallel run *)
  en_seq_wall : float; (* host seconds, sequential engine *)
  en_par_wall : float; (* host seconds, sharded engine *)
  en_seconds : float; (* simulated seconds (identical on both engines) *)
  en_messages : float; (* physical messages (identical on both engines) *)
  en_result : float;
  en_identical : bool; (* par output matched seq bit-for-bit *)
}

let engine_wall_speedup r =
  if r.en_par_wall > 0. then r.en_seq_wall /. r.en_par_wall else nan

let default_engine_nprocs = [ 128; 512; 1024 ]

let engine_speedup ?(shards = 4) ?(nprocs_list = default_engine_nprocs) () =
  let em3d_cfg nprocs =
    { Em3d.default with Em3d.n_nodes = 8 * nprocs; steps = 2 }
  in
  let bh_cfg nprocs =
    { Barnes_hut.default with Barnes_hut.n_bodies = 2 * nprocs; steps = 1 }
  in
  let probe st (msgs : float ref) = msgs := Stats.get st "net.messages" in
  let cell bench nprocs run =
    let timed engine =
      let msgs = ref 0. in
      let t0 = Unix.gettimeofday () in
      let out = run ~engine ~stats:(fun st -> probe st msgs) in
      (out, !msgs, Unix.gettimeofday () -. t0)
    in
    let seq, seq_msgs, seq_wall = timed Ace_engine.Machine.Seq_engine in
    let par, par_msgs, par_wall =
      timed (Ace_engine.Machine.Par_engine shards)
    in
    {
      en_bench = bench;
      en_nprocs = nprocs;
      en_shards = shards;
      en_seq_wall = seq_wall;
      en_par_wall = par_wall;
      en_seconds = seq.Driver.seconds;
      en_messages = seq_msgs;
      en_result = seq.Driver.result;
      en_identical =
        seq.Driver.seconds = par.Driver.seconds
        && seq_msgs = par_msgs
        && (seq.Driver.result = par.Driver.result
           || (Float.is_nan seq.Driver.result
              && Float.is_nan par.Driver.result));
    }
  in
  List.concat_map
    (fun nprocs ->
      [
        cell "EM3D" nprocs (fun ~engine ~stats ->
            Driver.run_ace ~engine ~stats ~nprocs (module Em3d)
              (em3d_cfg nprocs));
        cell "Barnes-Hut" nprocs (fun ~engine ~stats ->
            Driver.run_ace ~engine ~stats ~nprocs (module Barnes_hut)
              (bh_cfg nprocs));
      ])
    nprocs_list

let print_engine_rows rows =
  Printf.printf "%-12s %7s %7s %10s %10s %8s %6s %12s\n" "benchmark" "nprocs"
    "shards" "seq wall" "par wall" "speedup" "ok" "sim s";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun r ->
      Printf.printf "%-12s %7d %7d %9.3fs %9.3fs %7.2fx %6s %12.6f\n"
        r.en_bench r.en_nprocs r.en_shards r.en_seq_wall r.en_par_wall
        (engine_wall_speedup r)
        (if r.en_identical then "yes" else "NO")
        r.en_seconds)
    rows
