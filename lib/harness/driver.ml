(* Generic drivers: run any application (functorized over the DSM facade) on
   the CRL baseline or on the Ace runtime, returning simulated seconds and
   the node-0 result value. Pass [?trace] to record the run as a Chrome
   trace-event JSON file (simulated output is unaffected; see
   Ace_engine.Trace). Pass [?faults] to run on a lossy network: each
   simulation instantiates its own RNG stream from the spec's seed, so
   results are reproducible and independent of how the pool schedules
   cells; the reliable transport keeps every protocol correct. *)

module Machine = Ace_engine.Machine
module Trace = Ace_engine.Trace
module Faults = Ace_net.Faults
module Stats = Ace_engine.Stats
module Store = Ace_region.Store

(* End-of-run directory footprint, recorded into the machine's counters so
   stats probes (and the scaling experiment) can read it alongside the
   net.* families. Both the sharer sets and the copy tables only grow over
   a region's lifetime, so these end-of-run values are the run's peak. *)
let sid_dir_words = Stats.intern "region.dir_words"
let sid_regions = Stats.intern "region.regions"

let record_dir_stats stats store =
  Stats.add_id stats sid_dir_words (float_of_int (Store.dir_words store));
  Stats.add_id stats sid_regions (float_of_int (Store.count store))

(* A disabled spec (all knobs zero) attaches nothing, keeping the
   zero-overhead faultless path and its bit-identical output. *)
let attach_faults am = function
  | Some spec when Faults.enabled spec ->
      Ace_net.Am.set_faults am (Some (Faults.make spec))
  | Some _ | None -> ()

(* Opt-in bulk-transfer batching (default off — off runs are bit-identical
   to a build without the batching layer). *)
let attach_batch am = function
  | Some true -> Ace_net.Am.set_batching am true
  | Some false | None -> ()

module type APP = sig
  type config

  val n_spaces : int

  module Make (D : Ace_region.Dsm_intf.S) : sig
    val run : config -> D.ctx -> float
  end
end

type outcome = { seconds : float; result : float }

(* A facade transformer: given the backend's DSM module, return the module
   the application is actually compiled against. The conformance kit's
   coherence oracle is such a transformer (it records every access); [None]
   — the default — compiles against the backend directly, so oracle-off
   runs are bit-identical to builds without the hook. *)
type 'c wrap =
  (module Ace_region.Dsm_intf.S with type ctx = 'c and type h = Ace_region.Store.meta) ->
  (module Ace_region.Dsm_intf.S with type ctx = 'c and type h = Ace_region.Store.meta)

(* Attach a tracer for the duration of [body] and write the trace out
   afterwards; with no trace path this is exactly the untraced run. *)
let traced ?trace machine ~nprocs body =
  match trace with
  | None -> body ()
  | Some path ->
      let tr = Trace.create () in
      Machine.set_trace machine (Some tr);
      let out = body () in
      Trace.write_file tr ~nprocs path;
      out

(* Attach a caller-supplied causal-DAG recorder for the duration of [body]
   (critical-path profiling; the caller keeps the recorder for analysis or
   serialization). After the run the critical path is walked once and the
   per-space cycles-on-critical-path land in the machine's stats as the
   coh.blame.by_space dimensioned family, so downstream consumers — e.g. a
   protocol-adaptation loop — can read blame like any other counter,
   without parsing the DAG. Space -1 (unattributed path time: messages,
   barriers, app compute) is folded into the scalar coh.blame.other. *)
let fam_blame_space = Stats.fam "coh.blame.by_space"
let sid_blame_other = Stats.intern "coh.blame.other"

let critted ?crit machine body =
  match crit with
  | None -> body ()
  | Some cr ->
      Machine.set_crit machine (Some cr);
      let out = body () in
      Machine.set_crit machine None;
      let dag = Ace_obs.Critpath.of_crit cr in
      let bp = Ace_obs.Critpath.blamed_path dag in
      let stats = Machine.stats machine in
      List.iter
        (fun (space, cycles) ->
          if space >= 0 then Stats.add_dim stats fam_blame_space space cycles
          else Stats.add_id stats sid_blame_other cycles)
        (Ace_obs.Critpath.blame_by_space dag bp);
      out

(* Engine selection and fallback. The parallel engine claims bit-identical
   simulated output only on the paths it supports: fault injection,
   critical-path recording, non-FIFO tie-break policies, and online
   adaptation silently select the sequential engine instead, and a
   parallel run that trips a causality check or an unsupported operation
   mid-run is transparently re-run sequentially from scratch (simulation
   state is rebuilt, so the rerun is exactly a sequential run). The engine
   can change wall-clock time, never results. *)
let resolve_engine ?faults ?crit ?policy ?adapt engine =
  match engine with
  | None | Some Machine.Seq_engine -> None
  | Some (Machine.Par_engine _ as e) ->
      let gated =
        (match faults with Some spec -> Faults.enabled spec | None -> false)
        || Option.is_some crit
        || (match policy with
           | Some p -> p <> Ace_engine.Event_queue.Fifo
           | None -> false)
        || Option.is_some adapt
      in
      if gated then None else Some e

(* The CLI/env spelling of an engine choice lives next to the type
   (Machine.engine_of_string) so bench, acecheck and .repro files agree. *)
let engine_of_string = Machine.engine_of_string
let engine_to_string = Machine.engine_to_string

let with_seq_fallback engine attempt =
  match engine with
  | None -> attempt None
  | Some _ -> (
      try attempt engine
      with e -> (
        match Machine.par_fallback_reason e with
        | Some _ -> attempt None
        | None -> raise e))

let run_crl (type cfg) ?faults ?batch ?trace ?crit ?stats ?policy ?engine
    ?(wrap : Ace_crl.Crl.ctx wrap option) ~nprocs
    (module App : APP with type config = cfg) (cfg : cfg) =
  with_seq_fallback (resolve_engine ?faults ?crit ?policy engine)
  @@ fun engine ->
  let sys = Ace_crl.Crl.create ?policy ?engine ~nprocs () in
  attach_faults (Ace_crl.Crl.am sys) faults;
  attach_batch (Ace_crl.Crl.am sys) batch;
  let machine = Ace_crl.Crl.machine sys in
  let facade =
    match wrap with
    | None -> (module Ace_crl.Crl.Api : Ace_region.Dsm_intf.S
                 with type ctx = Ace_crl.Crl.ctx and type h = Ace_region.Store.meta)
    | Some w -> w (module Ace_crl.Crl.Api)
  in
  let out =
    traced ?trace machine ~nprocs (fun () ->
        critted ?crit machine (fun () ->
            let module A = App.Make ((val facade)) in
            let result = ref nan in
            Ace_crl.Crl.run sys (fun ctx ->
                let r = A.run cfg ctx in
                if Ace_crl.Crl.me ctx = 0 then result := r);
            { seconds = Ace_crl.Crl.time_seconds sys; result = !result }))
  in
  record_dir_stats (Machine.stats machine) (Ace_crl.Crl.store sys);
  Option.iter (fun f -> f (Machine.stats machine)) stats;
  out

let run_ace (type cfg) ?faults ?batch ?trace ?crit ?cost ?stats ?policy
    ?adapt ?engine ?(wrap : Ace_runtime.Protocol.ctx wrap option) ~nprocs
    (module App : APP with type config = cfg) (cfg : cfg) =
  with_seq_fallback (resolve_engine ?faults ?crit ?policy ?adapt engine)
  @@ fun engine ->
  let rt = Ace_runtime.Runtime.create ?cost ?policy ?engine ~nprocs () in
  attach_faults (Ace_runtime.Runtime.am rt) faults;
  attach_batch (Ace_runtime.Runtime.am rt) batch;
  Ace_protocols.Proto_lib.register_all rt;
  Ace_combinator.Library.register_all rt;
  (* Install the online protocol-adaptation engine (default absent: the
     Ops.adapt hook then returns None and fixed-protocol runs pay nothing,
     keeping their output bit-identical). *)
  (match adapt with
  | Some acfg -> ignore (Ace_runtime.Adapt.install rt acfg)
  | None -> ());
  for _ = 1 to App.n_spaces do
    ignore (Ace_runtime.Runtime.new_space rt "SC")
  done;
  let machine = Ace_runtime.Runtime.machine rt in
  let facade =
    match wrap with
    | None -> (module Ace_runtime.Ops.Api : Ace_region.Dsm_intf.S
                 with type ctx = Ace_runtime.Protocol.ctx
                  and type h = Ace_region.Store.meta)
    | Some w -> w (module Ace_runtime.Ops.Api)
  in
  let out =
    traced ?trace machine ~nprocs (fun () ->
        critted ?crit machine (fun () ->
            let module A = App.Make ((val facade)) in
            let result = ref nan in
            Ace_runtime.Runtime.run rt (fun ctx ->
                let r = A.run cfg ctx in
                if Ace_runtime.Ops.me ctx = 0 then result := r);
            { seconds = Ace_runtime.Runtime.time_seconds rt; result = !result }))
  in
  record_dir_stats (Machine.stats machine) (Ace_runtime.Runtime.store rt);
  Option.iter (fun f -> f (Machine.stats machine)) stats;
  out

(* Per-iteration timing as in the paper ("average time per iteration ...
   discard the first iteration"): run once with a single step and once with
   [1 + iters] steps; the difference isolates the steady-state iterations,
   cancelling setup and cold-start costs exactly (the simulator is
   deterministic). *)
let per_iteration ~run_with_steps ~iters =
  let warm = run_with_steps 1 in
  let full = run_with_steps (1 + iters) in
  {
    seconds = (full.seconds -. warm.seconds) /. float_of_int iters;
    result = full.result;
  }
