(* The Ace library routines of Table 2, as seen by application code. Every
   access-control call looks up the region's space and dispatches to its
   current protocol (paper §4.1), charging the dispatch indirection from the
   cost model. *)

module Machine = Ace_engine.Machine
module Stats = Ace_engine.Stats
module Trace = Ace_engine.Trace
module Store = Ace_region.Store
module Blocks = Ace_region.Blocks
module Cost_model = Ace_net.Cost_model
module Crit = Ace_engine.Crit

let fam_dispatch_space = Stats.fam "ace.dispatch.by_space"

(* Critical-path activity kinds: while a protocol-op dispatch (or the
   pre-barrier hook) is running, the processor's compute intervals — the
   dispatch charge, the handler's own charges, and any miss latency paid
   inside — are blamed on the op and the region's space. *)
let k_start_read = Crit.kind "start_read"
let k_end_read = Crit.kind "end_read"
let k_start_write = Crit.kind "start_write"
let k_end_write = Crit.kind "end_write"
let k_lock = Crit.kind "lock"
let k_unlock = Crit.kind "unlock"
let k_barrier_hook = Crit.kind "barrier_hook"

type ctx = Protocol.ctx
type h = Store.meta

let me (ctx : ctx) = ctx.Protocol.proc.Machine.id
let nprocs (ctx : ctx) = Machine.nprocs ctx.Protocol.rt.Protocol.machine
let cost (ctx : ctx) = ctx.Protocol.rt.Protocol.cost
let rid (h : h) = h.Store.rid

let charge ctx c = Machine.advance ctx.Protocol.proc c

let space_of (ctx : ctx) (h : h) =
  Runtime.space ctx.Protocol.rt h.Store.space

(* Ace_GMalloc: allocate a region homed at the caller from [space]. *)
let alloc (ctx : ctx) ~space ~len =
  (* Region ids are global sequence numbers: allocation order must be the
     sequential execution order, so it cannot run once the parallel
     engine's shards have split (programs allocate during setup, which
     runs before the split). *)
  Machine.assert_seq_context ctx.Protocol.rt.Protocol.machine
    "Ace_GMalloc after the parallel engine split";
  let sp = Runtime.space ctx.Protocol.rt space in
  let meta =
    Store.alloc ctx.Protocol.rt.Protocol.store ~home:(me ctx) ~len
      ~space:sp.Protocol.sid
  in
  sp.Protocol.rids <- meta.Store.rid :: sp.Protocol.rids;
  let rt = ctx.Protocol.rt in
  let seq =
    match Hashtbl.find_opt rt.Protocol.alloc_seq (space, me ctx) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add rt.Protocol.alloc_seq (space, me ctx) r;
        r
  in
  Hashtbl.replace rt.Protocol.names (space, me ctx, !seq) meta.Store.rid;
  incr seq;
  charge ctx (cost ctx).Cost_model.map_miss;
  meta

(* ACE_MAP: translate a region id into a local handle. Ace's mapping is the
   cheap cached lookup the paper credits for its edge over CRL. *)
let map (ctx : ctx) r =
  let meta = Store.get ctx.Protocol.rt.Protocol.store r in
  let existed = Store.map_note meta ~node:(me ctx) in
  let c = cost ctx in
  charge ctx (if existed then c.Cost_model.map_hit else c.Cost_model.map_miss);
  meta

let unmap (ctx : ctx) (_ : h) = charge ctx (cost ctx).Cost_model.unmap

let data (ctx : ctx) (h : h) =
  match Store.copy_of h ~node:(me ctx) with
  | Some c -> c.Store.cdata
  | None ->
      (* Mapped but never accessed: materialize the (zeroed, Invalid) cache
         entry mapping used to create eagerly. Host-side only — no cost. *)
      if Store.is_mapped h ~node:(me ctx) then
        (Store.ensure_copy_c h ~node:(me ctx)).Store.cdata
      else invalid_arg "Ops.data: region not mapped on this node"

(* The dispatcher charges only the space-indirection cost; each protocol
   handler charges its own processing (so a null handler really is nearly
   free, and direct-dispatched compiled code can drop even the
   indirection). Each dispatch bumps the per-space call counter and, when a
   tracer is attached, records a span covering the protocol handler on the
   calling processor's row (recording never touches the virtual clock). *)
let dispatch_access ctx h name kid hook =
  let rt = ctx.Protocol.rt in
  let m = rt.Protocol.machine in
  let run () =
    charge ctx (cost ctx).Cost_model.dispatch;
    Stats.incr_dim (Machine.stats m) fam_dispatch_space h.Store.space;
    match Machine.trace m with
    | None -> hook (space_of ctx h).Protocol.proto ctx h
    | Some tr ->
        let p = ctx.Protocol.proc in
        let t0 = p.Machine.clock in
        hook (space_of ctx h).Protocol.proto ctx h;
        Trace.span tr ~name ~cat:"call" ~tid:p.Machine.id ~ts:t0
          ~dur:(p.Machine.clock -. t0)
          ~args:[ ("space", h.Store.space); ("rid", h.Store.rid) ] ()
  in
  match Machine.crit m with
  | None -> run ()
  | Some c ->
      let proc = ctx.Protocol.proc.Machine.id in
      let old_k, old_s =
        Crit.swap_activity c ~proc ~kind:kid ~space:h.Store.space
      in
      run ();
      Crit.set_activity c ~proc ~kind:old_k ~space:old_s

let start_read (ctx : ctx) h =
  dispatch_access ctx h "start_read" k_start_read (fun p -> p.Protocol.start_read);
  Blocks.begin_access ctx.Protocol.bctx h ~write:false

let end_read (ctx : ctx) h =
  dispatch_access ctx h "end_read" k_end_read (fun p -> p.Protocol.end_read);
  Blocks.end_access ctx.Protocol.bctx h ~write:false

let start_write (ctx : ctx) h =
  dispatch_access ctx h "start_write" k_start_write (fun p -> p.Protocol.start_write);
  Blocks.begin_access ctx.Protocol.bctx h ~write:true

let end_write (ctx : ctx) h =
  dispatch_access ctx h "end_write" k_end_write (fun p -> p.Protocol.end_write);
  Blocks.end_access ctx.Protocol.bctx h ~write:true

(* Lock spans come in two kinds: the [lock]/[unlock] protocol-call spans
   (cat "call", like any other dispatch) and a [lock.hold] span (cat
   "lock") stretching from lock acquisition to the matching unlock. *)
let lock (ctx : ctx) h =
  dispatch_access ctx h "lock" k_lock (fun p -> p.Protocol.lock);
  match Machine.trace ctx.Protocol.rt.Protocol.machine with
  | None -> ()
  | Some tr ->
      let p = ctx.Protocol.proc in
      Trace.lock_acquired tr ~tid:p.Machine.id ~rid:h.Store.rid
        ~ts:p.Machine.clock

let unlock (ctx : ctx) h =
  (match Machine.trace ctx.Protocol.rt.Protocol.machine with
  | None -> ()
  | Some tr ->
      let p = ctx.Protocol.proc in
      Trace.lock_released tr ~tid:p.Machine.id ~rid:h.Store.rid
        ~ts:p.Machine.clock);
  dispatch_access ctx h "unlock" k_unlock (fun p -> p.Protocol.unlock)

let base_barrier (ctx : ctx) =
  Machine.Barrier.wait ctx.Protocol.rt.Protocol.base_barrier ctx.Protocol.proc

(* Ace_Barrier(space): the space's protocol gets to act first (e.g. a static
   update protocol propagates its writes), then the processors synchronize.
   The protocol's pre-barrier work is traced as a "call" span; the global
   synchronization itself is traced (per generation) by Machine.Barrier. *)
let barrier (ctx : ctx) ~space =
  let sp = Runtime.space ctx.Protocol.rt space in
  let m = ctx.Protocol.rt.Protocol.machine in
  let run_hook () =
    charge ctx (cost ctx).Cost_model.dispatch;
    match Machine.trace m with
    | None -> sp.Protocol.proto.Protocol.barrier ctx sp
    | Some tr ->
        let p = ctx.Protocol.proc in
        let t0 = p.Machine.clock in
        sp.Protocol.proto.Protocol.barrier ctx sp;
        Trace.span tr ~name:"barrier_hook" ~cat:"call" ~tid:p.Machine.id ~ts:t0
          ~dur:(p.Machine.clock -. t0)
          ~args:[ ("space", space) ] ()
  in
  (match Machine.crit m with
  | None -> run_hook ()
  | Some c ->
      let proc = ctx.Protocol.proc.Machine.id in
      let old_k, old_s =
        Crit.swap_activity c ~proc ~kind:k_barrier_hook ~space
      in
      run_hook ();
      Crit.set_activity c ~proc ~kind:old_k ~space:old_s);
  base_barrier ctx

(* Ace_ChangeProtocol: collective. The old protocol defines the transition
   semantics via its detach hook (flush to base state for the default
   protocol); barriers separate detach, the swap, and attach so no node can
   race ahead with the new protocol while another still runs the old one. *)
let change_protocol (ctx : ctx) ~space name =
  (* The detach/attach storm is an order-dependent global operation; under
     the parallel engine it forces the sequential fallback. *)
  Machine.assert_seq_context ctx.Protocol.rt.Protocol.machine
    "Ace_ChangeProtocol after the parallel engine split";
  let rt = ctx.Protocol.rt in
  let sp = Runtime.space rt space in
  let newp = Runtime.find_protocol rt name in
  (* Collective-call matching is a correctness condition, not a debug
     check (cf. [new_space]): it must survive -noassert builds and name
     the mismatch. The first node to arrive posts its request; every later
     node compares before any node can reach the swap barrier, so node 0
     can never silently win over a disagreeing peer. *)
  (match Hashtbl.find_opt rt.Protocol.change_req space with
  | None -> Hashtbl.replace rt.Protocol.change_req space (name, me ctx)
  | Some (first_name, first_node) ->
      if not (String.equal first_name name) then
        invalid_arg
          (Printf.sprintf
             "Ops.change_protocol: collective call on node %d requests \
              protocol %S for space %d but node %d requested %S (mismatched \
              Ace_ChangeProtocol across nodes?)"
             (me ctx) name sp.Protocol.sid first_node first_name));
  (match Machine.trace ctx.Protocol.rt.Protocol.machine with
  | None -> ()
  | Some tr ->
      let p = ctx.Protocol.proc in
      Trace.instant tr
        ~name:(Printf.sprintf "change_protocol->%s" name)
        ~cat:"proto" ~tid:p.Machine.id ~ts:p.Machine.clock
        ~args:[ ("space", space) ] ());
  (* No fiber may block with a non-empty write-combining queue, and the
     swap barriers below block without passing through a Blocks entry
     point: a parked [queue_write_home] update crossing the swap would be
     invisible to readers under the new protocol (and a combined
     update+release gated on it could stall another node forever). Free
     when the queue is empty — always, with batching off. *)
  Blocks.flush_writes ctx.Protocol.bctx;
  sp.Protocol.proto.Protocol.detach ctx sp;
  base_barrier ctx;
  if me ctx = 0 then begin
    Hashtbl.remove rt.Protocol.change_req space;
    sp.Protocol.proto <- newp;
    Array.fill sp.Protocol.pstate 0 (Array.length sp.Protocol.pstate)
      Protocol.Pstate_none
  end;
  base_barrier ctx;
  newp.Protocol.attach ctx sp;
  base_barrier ctx

(* Collective adaptation point: every node calls this at an epoch boundary
   for [space]. The installed engine (Adapt.install) memoizes one decision
   per (space, epoch) from a single counter snapshot, so all nodes see the
   same advice and the collective [change_protocol] below cannot disagree.
   Without an installed engine this is free and returns [None]. *)
let adapt (ctx : ctx) ~space =
  match Adapt.installed ctx.Protocol.rt with
  | None -> None
  | Some t ->
      let sp = Runtime.space ctx.Protocol.rt space in
      let advice =
        Adapt.note_epoch t ~space:sp.Protocol.sid ~node:(me ctx)
          ~current:sp.Protocol.proto.Protocol.name
      in
      (match advice with
      | Some name -> change_protocol ctx ~space name
      | None -> ());
      advice

(* Collective Ace_NewSpace for SPMD program text (Fig. 2 lines 2-3): the
   k-th collective call on every node denotes the same space. *)
let new_space (ctx : ctx) proto_name =
  Machine.assert_seq_context ctx.Protocol.rt.Protocol.machine
    "Ace_NewSpace after the parallel engine split";
  let k = ctx.Protocol.space_ctr in
  ctx.Protocol.space_ctr <- k + 1;
  let rt = ctx.Protocol.rt in
  let sp =
    if k < rt.Protocol.nspaces then Runtime.space rt k
    else Runtime.new_space rt proto_name
  in
  (* Collective-call matching is a correctness condition, not a debug
     check: it must survive -noassert builds and name the mismatch. *)
  if not (String.equal sp.Protocol.proto.Protocol.name proto_name) then
    invalid_arg
      (Printf.sprintf
         "Ops.new_space: collective call %d on node %d requests protocol %S \
          but space %d is bound to %S (mismatched Ace_NewSpace sequence \
          across nodes?)"
         k (me ctx) proto_name sp.Protocol.sid sp.Protocol.proto.Protocol.name);
  sp.Protocol.proto.Protocol.attach ctx sp;
  sp.Protocol.sid

let work (ctx : ctx) cycles = charge ctx cycles

(* Deterministic region naming: the rid of the [seq]-th region [owner]
   allocated from [space]. Remote queries are one name-service round trip
   to the owner. Callers must synchronize (barrier) after the allocation
   phase before looking names up. *)
let global_id (ctx : ctx) ~space ~owner ~seq =
  let rt = ctx.Protocol.rt in
  let lookup () =
    match Hashtbl.find_opt rt.Protocol.names (space, owner, seq) with
    | Some rid -> rid
    | None ->
        invalid_arg
          (Printf.sprintf "global_id (%d, %d, %d): not allocated (missing barrier?)"
             space owner seq)
  in
  if owner = me ctx then begin
    charge ctx (cost ctx).Cost_model.map_hit;
    lookup ()
  end
  else
    Ace_net.Reliable.rpc ctx.Protocol.bctx.Blocks.net ctx.Protocol.proc
      ~dst:owner ~bytes:Blocks.ctl_bytes (fun reply ~time ->
        let rid = lookup () in
        Ace_net.Reliable.send ctx.Protocol.bctx.Blocks.net ~now:time ~src:owner
          ~dst:(me ctx) ~bytes:Blocks.ctl_bytes (fun ~time ->
            Ace_engine.Ivar.fill reply ~time rid))

let bcast (ctx : ctx) ~root f =
  let ctr = ref ctx.Protocol.coll_ctr in
  let out =
    Ace_region.Collective.bcast ctx.Protocol.rt.Protocol.coll ctx.Protocol.bctx
      ~ctr ~root f
  in
  ctx.Protocol.coll_ctr <- !ctr;
  out

let allgather (ctx : ctx) mine =
  let ctr = ref ctx.Protocol.coll_ctr in
  let out =
    Ace_region.Collective.allgather ctx.Protocol.rt.Protocol.coll
      ctx.Protocol.bctx ~ctr mine
  in
  ctx.Protocol.coll_ctr <- !ctr;
  out

(* The shared DSM facade (paper §5.1: same sources on both systems). *)
module Api : Ace_region.Dsm_intf.S with type ctx = Protocol.ctx and type h = Store.meta =
struct
  type nonrec ctx = ctx
  type nonrec h = h

  let me = me
  let nprocs = nprocs
  let alloc = alloc
  let rid = rid
  let map = map
  let unmap = unmap
  let data = data
  let start_read = start_read
  let end_read = end_read
  let start_write = start_write
  let end_write = end_write
  let lock = lock
  let unlock = unlock
  let barrier = barrier
  let change_protocol = change_protocol
  let adapt = adapt
  let work = work
  let global_id = global_id
  let bcast = bcast
  let allgather = allgather
end
