(** The Ace library routines (paper Table 2) plus the runtime annotations of
    Fig. 3, as seen by application code.

    Every access-control call ([start_read] .. [unlock]) looks up the
    region's space and dispatches to the space's current protocol (§4.1),
    charging the dispatch indirection from the cost model; the protocol's
    handler does the rest. All calls must run inside a simulated processor
    fiber ({!Runtime.run}). *)

type ctx = Protocol.ctx
type h = Ace_region.Store.meta

(** Calling processor's id / the machine size. *)
val me : ctx -> int

val nprocs : ctx -> int

(** Region id of a handle. *)
val rid : h -> int

(** Ace_GMalloc: allocate a region of [len] floats from [space], homed at
    the caller; records its deterministic global name for {!global_id}. *)
val alloc : ctx -> space:int -> len:int -> h

(** ACE_MAP: translate a region id into a local handle (cached mapping). *)
val map : ctx -> int -> h

(** ACE_UNMAP. *)
val unmap : ctx -> h -> unit

(** The calling node's view of the region payload; valid between a
    [start_*] and the matching [end_*]. Raises [Invalid_argument] if the
    region is not mapped on this node. *)
val data : ctx -> h -> float array

(** ACE_START_READ / ACE_END_READ / ACE_START_WRITE / ACE_END_WRITE:
    dispatch to the space's protocol, then maintain the access section
    (coherence actions arriving mid-section are deferred to the end). *)
val start_read : ctx -> h -> unit

val end_read : ctx -> h -> unit
val start_write : ctx -> h -> unit
val end_write : ctx -> h -> unit

(** Ace_Lock / Ace_UnLock on a region, via the space's protocol. *)
val lock : ctx -> h -> unit

val unlock : ctx -> h -> unit

(** The machine-wide barrier with no protocol hook (used by protocols and
    by [change_protocol] internally). *)
val base_barrier : ctx -> unit

(** Ace_Barrier(space): the space's protocol acts first (e.g. a static
    update protocol propagates its writes), then the processors
    synchronize. *)
val barrier : ctx -> space:int -> unit

(** Ace_ChangeProtocol: collective. The old protocol defines the transition
    semantics via its detach hook (flush to base state for the default
    protocol); barriers fence the detach, the swap, and the attach. *)
val change_protocol : ctx -> space:int -> string -> unit

(** Collective adaptation point: consult the runtime's installed
    adaptation engine ({!Adapt.install}) for [space] and collectively
    switch its protocol if the engine so advises, returning the protocol
    switched to. Free (and [None]) when no engine is installed. *)
val adapt : ctx -> space:int -> string option

(** Collective Ace_NewSpace for SPMD program text (Fig. 2): the k-th
    collective call on every node denotes the same space; returns its id. *)
val new_space : ctx -> string -> int

(** Charge local computation cycles. *)
val work : ctx -> float -> unit

(** Deterministic region naming: the rid of the [seq]-th region [owner]
    allocated from [space]. Remote queries cost one name-service round
    trip. Callers must synchronize (barrier) after the allocation phase. *)
val global_id : ctx -> space:int -> owner:int -> seq:int -> int

(** Collective broadcast of an int array computed at [root]. *)
val bcast : ctx -> root:int -> (unit -> int array) -> int array

(** Collective all-gather of one int array per node, indexed by node. *)
val allgather : ctx -> int array -> int array array

(** The backend-neutral DSM facade shared with {!Ace_crl.Crl.Api} (paper
    §5.1: the same application sources run on both systems). *)
module Api :
  Ace_region.Dsm_intf.S with type ctx = Protocol.ctx and type h = h
