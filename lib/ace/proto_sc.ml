(* The default protocol: a sequentially consistent, home-based invalidation
   protocol (MSI over regions) — what Ace programs get until they opt into
   a custom protocol. Not optimizable: SC forbids reordering protocol calls
   (paper §4.2). *)

module Blocks = Ace_region.Blocks
module Store = Ace_region.Store

let start_read (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_shared ctx.Protocol.bctx meta

let start_write (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.start_hit;
  Blocks.fetch_exclusive ctx.Protocol.bctx meta

let end_access (ctx : Protocol.ctx) _meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.end_op
let lock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  Blocks.home_lock ctx.Protocol.bctx meta

let unlock (ctx : Protocol.ctx) meta =
  Protocol.charge ctx (Protocol.cost ctx).Ace_net.Cost_model.lock_base;
  Blocks.home_unlock ctx.Protocol.bctx meta

(* Flush every cached copy this node holds of the space's regions — the
   base-state semantics of Ace_ChangeProtocol away from the default
   protocol (paper §3.1). In bulk-transfer mode the whole detach storm is
   one batched invalidation: per-home coalesced writebacks/sharer-drops,
   cache entries reclaimed outright. *)
let detach (ctx : Protocol.ctx) (sp : Protocol.space) =
  let bctx = ctx.Protocol.bctx in
  let store = ctx.Protocol.rt.Protocol.store in
  if Ace_net.Reliable.batching bctx.Blocks.net then
    Blocks.invalidate_batch bctx (List.map (Store.get store) sp.Protocol.rids)
  else begin
    let node = Blocks.node bctx in
    List.iter
      (fun rid ->
        let meta = Store.get store rid in
        match Store.copy_of meta ~node with
        | Some c when c.Store.cstate <> Store.Invalid -> Blocks.flush bctx meta
        | Some _ | None -> ())
      sp.Protocol.rids
  end

let protocol =
  {
    Protocol.null_protocol with
    Protocol.name = "SC";
    optimizable = false;
    has_start_read = true;
    has_end_read = true;
    has_start_write = true;
    has_end_write = true;
    start_read;
    end_read = end_access;
    start_write;
    end_write = end_access;
    lock;
    unlock;
    detach;
  }
