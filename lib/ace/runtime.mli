(** Global Ace runtime state: the protocol registry, spaces, and SPMD
    program execution on the simulated machine. *)

(** Build a runtime on a fresh [nprocs]-node simulated machine. [cost]
    defaults to the Ace profile ({!Ace_net.Cost_model.cm5_ace}); pass the
    CRL profile (or a custom one) for ablations. [policy] fixes the event
    queue's same-timestamp tie-break (default FIFO — bit-identical to
    historical builds); program results must not depend on it. [engine]
    (default sequential) selects the simulation engine; [Par_engine n]
    runs the event loop sharded over [n] domains with bit-identical
    simulated output, and the machine's lookahead is set from [cost]'s
    minimum cross-processor latency. SC and NULL are pre-registered. *)
val create :
  ?cost:Ace_net.Cost_model.t ->
  ?policy:Ace_engine.Event_queue.policy ->
  ?engine:Ace_engine.Machine.engine ->
  nprocs:int -> unit -> Protocol.runtime

val machine : Protocol.runtime -> Ace_engine.Machine.t

(** The raw Active Messages layer (attach a fault model here with
    [Am.set_faults]) and the reliable transport the runtime routes
    through. *)
val am : Protocol.runtime -> Ace_net.Am.t

val net : Protocol.runtime -> Ace_net.Reliable.t
val store : Protocol.runtime -> Ace_region.Store.t
val nprocs : Protocol.runtime -> int

(** Attach/detach an event tracer on the underlying machine (see
    {!Ace_engine.Machine.set_trace}); tracing never perturbs simulated
    time. *)
val set_trace : Protocol.runtime -> Ace_engine.Trace.t option -> unit

val trace : Protocol.runtime -> Ace_engine.Trace.t option

(** Add a protocol to the registry (the paper's registration script plus
    link step). Raises [Invalid_argument] on duplicate names. *)
val register : Protocol.runtime -> Protocol.protocol -> unit

(** Look a protocol up by name; raises [Invalid_argument] if unknown. *)
val find_protocol : Protocol.runtime -> string -> Protocol.protocol

(** All registered protocols, sorted by name. *)
val protocols : Protocol.runtime -> Protocol.protocol list

(** Check every registered protocol's [has_*] access flags against its
    handlers: a flag is inconsistent when it is true but the handler is
    the shared null hook, or when a live handler is declared null (so
    direct-dispatch deletion would skip it). The latter is legitimate
    only for purely observational handlers; pass those as
    [(protocol_name, hook_name)] pairs in [allow] (hook names:
    ["start_read"], ["end_read"], ["start_write"], ["end_write"]).
    Returns human-readable problem descriptions; [[]] means clean. *)
val lint_flags :
  ?allow:(string * string) list -> Protocol.runtime -> string list

(** Ace_NewSpace before the simulation starts (experiment setup); from SPMD
    code use {!Ops.new_space}. *)
val new_space : Protocol.runtime -> string -> Protocol.space

(** The space with the given id; raises [Invalid_argument] if out of
    range. *)
val space : Protocol.runtime -> int -> Protocol.space

(** Per-processor context construction (done by {!run}). *)
val make_ctx : Protocol.runtime -> Ace_engine.Machine.proc -> Protocol.ctx

(** Drive an SPMD program: every simulated processor runs [program] with
    its own context. May be called repeatedly for successive phases. *)
val run : Protocol.runtime -> (Protocol.ctx -> unit) -> unit

(** Total simulated time so far, in seconds at the modelled clock rate. *)
val time_seconds : Protocol.runtime -> float
