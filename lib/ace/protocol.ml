(* The Ace protocol interface: full access control (paper §2.1/§3.2).

   A protocol supplies handlers for every access and synchronization point —
   start/end read, start/end write, barrier, lock, unlock — plus attach and
   detach hooks run when a space adopts or drops the protocol
   (Ace_NewSpace / Ace_ChangeProtocol). The [has_*] flags mirror the
   registration script of Fig. 1: they tell the compiler which handlers are
   null so direct-dispatch can delete the calls, and [optimizable] gates the
   optimization passes (§4.2). *)

module Machine = Ace_engine.Machine
module Store = Ace_region.Store
module Blocks = Ace_region.Blocks

(* Protocol-private, per-space per-node state. Each protocol extends this
   type with its own constructor (OCaml's answer to the paper's untyped
   space-data pointer, but type-safe). *)
type pstate = ..
type pstate += Pstate_none

(* Slot for an installed protocol-adaptation engine (see Adapt): extensible
   so the runtime record can hold it without depending on the module that
   defines it. *)
type adapt_slot = ..
type adapt_slot += Adapt_none

type runtime = {
  machine : Machine.t;
  am : Ace_net.Am.t;
  net : Ace_net.Reliable.t; (* reliable transport over [am]; all region
                               traffic routes through it *)
  cost : Ace_net.Cost_model.t;
  store : Store.t;
  mutable spaces : space array;
  mutable nspaces : int;
  registry : (string, protocol) Hashtbl.t;
  base_barrier : Machine.Barrier.b;
  coll : Ace_region.Collective.t;
  (* deterministic region naming: (space, owner, allocation seq) -> rid,
     queried remotely via Ops.global_id *)
  names : (int * int * int, int) Hashtbl.t;
  alloc_seq : (int * int, int ref) Hashtbl.t;
  (* collective Ace_ChangeProtocol agreement: space sid -> (protocol name,
     node) posted by the first arriving node; later nodes must match it
     before any node reaches the swap barrier (cleared during the swap) *)
  change_req : (int, string * int) Hashtbl.t;
  (* installed adaptation engine, if any (Adapt.install) *)
  mutable adapt : adapt_slot;
}

and space = {
  sid : int;
  mutable proto : protocol;
  mutable rids : int list; (* regions allocated from this space *)
  mutable pstate : pstate array; (* per node *)
}

and ctx = {
  rt : runtime;
  proc : Machine.proc;
  bctx : Blocks.ctx;
  mutable coll_ctr : int; (* collective-op matching counter *)
  mutable space_ctr : int; (* collective new_space matching counter *)
}

and protocol = {
  name : string;
  optimizable : bool;
  has_start_read : bool;
  has_end_read : bool;
  has_start_write : bool;
  has_end_write : bool;
  start_read : ctx -> Store.meta -> unit;
  end_read : ctx -> Store.meta -> unit;
  start_write : ctx -> Store.meta -> unit;
  end_write : ctx -> Store.meta -> unit;
  barrier : ctx -> space -> unit;
  lock : ctx -> Store.meta -> unit;
  unlock : ctx -> Store.meta -> unit;
  attach : ctx -> space -> unit;
  detach : ctx -> space -> unit;
}


let charge (ctx : ctx) cycles = Machine.advance ctx.proc cycles
let cost (ctx : ctx) = ctx.rt.cost

(* A registered null handler still costs its call unless the compiler's
   direct-dispatch pass deletes it (paper §4.2). *)
let null_hook ctx _ = charge ctx (cost ctx).Ace_net.Cost_model.null_hook

(* A skeleton whose every handler is null; protocols override the points
   they care about (Fig. 1's registration lists exactly these points). *)
let null_protocol =
  {
    name = "NULL";
    optimizable = true;
    has_start_read = false;
    has_end_read = false;
    has_start_write = false;
    has_end_write = false;
    start_read = null_hook;
    end_read = null_hook;
    start_write = null_hook;
    end_write = null_hook;
    barrier = null_hook;
    lock = null_hook;
    unlock = null_hook;
    attach = null_hook;
    detach = null_hook;
  }

