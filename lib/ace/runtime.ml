(* Global Ace runtime state: the protocol registry, spaces, and per-processor
   context construction. *)

module Machine = Ace_engine.Machine
module Blocks = Ace_region.Blocks
module Cost_model = Ace_net.Cost_model

let sid_spaces = Ace_engine.Stats.intern "ace.spaces"

let create ?(cost = Cost_model.cm5_ace) ?policy ?engine ~nprocs () =
  let machine = Machine.create ?policy ?engine ~nprocs () in
  (* The parallel engine's conservative window: no cross-processor
     interaction lands sooner than wire transit plus receive overhead. *)
  Machine.set_lookahead machine
    (Cost_model.transit cost ~bytes:0 +. cost.Cost_model.am_recv_overhead);
  let am = Ace_net.Am.create machine cost in
  let store =
    Ace_region.Store.create ~stats:(Machine.stats machine) ~nprocs ()
  in
  let rt =
    {
      Protocol.machine;
      am;
      net = Ace_net.Reliable.create am;
      cost;
      store;
      spaces = [||];
      nspaces = 0;
      registry = Hashtbl.create 16;
      base_barrier =
        Machine.Barrier.create machine ~cost:(fun p -> Cost_model.barrier_cost cost p);
      coll = Ace_region.Collective.create ~nprocs;
      names = Hashtbl.create 64;
      alloc_seq = Hashtbl.create 16;
      change_req = Hashtbl.create 8;
      adapt = Protocol.Adapt_none;
    }
  in
  Hashtbl.add rt.Protocol.registry "SC" Proto_sc.protocol;
  Hashtbl.add rt.Protocol.registry "NULL" Proto_null.protocol;
  rt

let machine (rt : Protocol.runtime) = rt.Protocol.machine
let am (rt : Protocol.runtime) = rt.Protocol.am
let net (rt : Protocol.runtime) = rt.Protocol.net
let store (rt : Protocol.runtime) = rt.Protocol.store
let nprocs (rt : Protocol.runtime) = Machine.nprocs rt.Protocol.machine
let set_trace (rt : Protocol.runtime) tr = Machine.set_trace rt.Protocol.machine tr
let trace (rt : Protocol.runtime) = Machine.trace rt.Protocol.machine

let register (rt : Protocol.runtime) (p : Protocol.protocol) =
  if Hashtbl.mem rt.Protocol.registry p.Protocol.name then
    invalid_arg ("Runtime.register: duplicate protocol " ^ p.Protocol.name);
  Hashtbl.add rt.Protocol.registry p.Protocol.name p

let find_protocol (rt : Protocol.runtime) name =
  match Hashtbl.find_opt rt.Protocol.registry name with
  | Some p -> p
  | None -> invalid_arg ("unknown protocol " ^ name)

let protocols (rt : Protocol.runtime) =
  Hashtbl.fold (fun _ p acc -> p :: acc) rt.Protocol.registry []
  |> List.sort (fun a b -> String.compare a.Protocol.name b.Protocol.name)

(* has_*-flag consistency lint: a registered flag must match whether the
   handler really is the (physically shared) null hook, because the
   direct-dispatch deletion pass trusts the flags. The dangerous direction
   is a live handler declared null — dispatch deletion would skip it —
   which is legitimate only for purely observational handlers (WRITE_ONCE's
   home-only assertion); callers allowlist those as (protocol, hook)
   pairs. The barrier/lock/unlock/attach/detach hooks have no declared
   flags (the registry derives them physically), so only the four access
   points are linted. *)
let lint_flags ?(allow = []) (rt : Protocol.runtime) =
  let problems = ref [] in
  let check (p : Protocol.protocol) hook handler flag =
    let live = handler != Protocol.null_hook in
    if flag && not live then
      problems :=
        Printf.sprintf "%s.%s: has_%s is true but the handler is null"
          p.Protocol.name hook hook
        :: !problems
    else if (live && not flag) && not (List.mem (p.Protocol.name, hook) allow)
    then
      problems :=
        Printf.sprintf
          "%s.%s: live handler declared null (direct dispatch would skip it)"
          p.Protocol.name hook
        :: !problems
  in
  List.iter
    (fun (p : Protocol.protocol) ->
      check p "start_read" p.Protocol.start_read p.Protocol.has_start_read;
      check p "end_read" p.Protocol.end_read p.Protocol.has_end_read;
      check p "start_write" p.Protocol.start_write p.Protocol.has_start_write;
      check p "end_write" p.Protocol.end_write p.Protocol.has_end_write)
    (protocols rt);
  List.rev !problems

(* Ace_NewSpace: create a space bound to a protocol. Usable before the
   simulation starts (experiment setup) or collectively from SPMD code via
   [Ops.new_space]. *)
let new_space (rt : Protocol.runtime) proto_name =
  let proto = find_protocol rt proto_name in
  let sp =
    {
      Protocol.sid = rt.Protocol.nspaces;
      proto;
      rids = [];
      pstate = Array.make (nprocs rt) Protocol.Pstate_none;
    }
  in
  if rt.Protocol.nspaces = Array.length rt.Protocol.spaces then begin
    let spaces = Array.make (max 8 (2 * rt.Protocol.nspaces)) sp in
    Array.blit rt.Protocol.spaces 0 spaces 0 rt.Protocol.nspaces;
    rt.Protocol.spaces <- spaces
  end;
  rt.Protocol.spaces.(rt.Protocol.nspaces) <- sp;
  rt.Protocol.nspaces <- rt.Protocol.nspaces + 1;
  Ace_engine.Stats.incr_id (Machine.stats rt.Protocol.machine) sid_spaces;
  sp

let space (rt : Protocol.runtime) sid =
  if sid < 0 || sid >= rt.Protocol.nspaces then invalid_arg "Runtime.space: bad id";
  rt.Protocol.spaces.(sid)

let make_ctx (rt : Protocol.runtime) (proc : Machine.proc) =
  {
    Protocol.rt;
    proc;
    bctx = Blocks.make_ctx rt.Protocol.net rt.Protocol.store proc;
    coll_ctr = 0;
    space_ctr = 0;
  }

(* [run rt program] drives an SPMD program, handing each fiber its Ace
   context. *)
let run (rt : Protocol.runtime) program =
  Machine.run rt.Protocol.machine (fun proc -> program (make_ctx rt proc))

let time_seconds (rt : Protocol.runtime) =
  Machine.seconds rt.Protocol.machine
    ~cycles_per_sec:rt.Protocol.cost.Cost_model.cycles_per_sec
