(* Online per-space protocol adaptation (ROADMAP item 3): at application
   epoch boundaries each space consults its dimensioned per-space counters
   (read/write misses, invalidations, dispatches — and critical-path blame
   when a profiler run has folded it in) and decides whether to move the
   space between the invalidation protocol (SC), an update protocol
   (DYN_UPDATE) and MIGRATORY.

   The measurement and decision logic lives here, below [Ops]; the
   collective switch itself is orchestrated by [Ops.adapt], which calls
   [Ops.change_protocol] with the decision this module memoizes. The memo
   is what makes the collective safe: the first node to reach an epoch
   point decides from a single counter snapshot, and every other node
   reads the same decision — no node can observe a different snapshot
   (e.g. after the first node's detach traffic) and disagree at the
   change_protocol agreement check.

   The hysteresis rule: decisions fire only every [window] epochs (the
   learning window — counters accumulate long enough to mean something),
   a protocol must win by a [margin] factor to displace the incumbent,
   and a quiet space (no misses to speak of) is never moved — the current
   protocol is evidently serving it. *)

module Stats = Ace_engine.Stats
module Machine = Ace_engine.Machine

type config = {
  window : int;  (* epochs per learning window between decisions *)
  margin : float;  (* dominance factor required to displace the incumbent *)
  min_traffic : float;  (* per-window miss+inval floor below which we stay *)
}

let default = { window = 2; margin = 1.2; min_traffic = 8. }

(* Candidate protocols, in the residency family's index order. *)
let candidates = [| "SC"; "DYN_UPDATE"; "MIGRATORY" |]

let candidate_index name =
  let rec go i =
    if i >= Array.length candidates then -1
    else if String.equal candidates.(i) name then i
    else go (i + 1)
  in
  go 0

let fam_read_miss = Stats.fam "coh.read_miss.by_space"
let fam_write_miss = Stats.fam "coh.write_miss.by_space"
let fam_inval = Stats.fam "coh.inval.by_space"
let fam_dispatch = Stats.fam "ace.dispatch.by_space"
let fam_blame = Stats.fam "coh.blame.by_space"

(* Published results, readable through the ordinary stats probes: total
   collective switches, and per-candidate epoch residency summed over
   spaces (index = position in [candidates]). *)
let sid_switches = Stats.intern "ace.adapt.switches"
let fam_residency = Stats.fam "ace.adapt.residency.by_proto"

type t = {
  cfg : config;
  stats : Stats.t;
  mutable switches : int;
  ctr : (int * int, int ref) Hashtbl.t;  (* (space, node) -> epochs seen *)
  memo : (int * int, string option) Hashtbl.t;  (* (space, epoch) -> advice *)
  last : (int, float array) Hashtbl.t;  (* space -> snapshot at last decision *)
  residency : (int * int, int) Hashtbl.t;  (* (space, candidate ix) -> epochs *)
}

type Protocol.adapt_slot += Adapt of t

let create (cfg : config) stats =
  if cfg.window < 1 then invalid_arg "Adapt.create: window must be >= 1";
  {
    cfg;
    stats;
    switches = 0;
    ctr = Hashtbl.create 32;
    memo = Hashtbl.create 64;
    last = Hashtbl.create 32;
    residency = Hashtbl.create 16;
  }

let install (rt : Protocol.runtime) cfg =
  let t = create cfg (Machine.stats rt.Protocol.machine) in
  rt.Protocol.adapt <- Adapt t;
  t

let installed (rt : Protocol.runtime) =
  match rt.Protocol.adapt with Adapt t -> Some t | _ -> None

let switches t = t.switches

(* Per-candidate epoch residency summed over spaces, in candidate order. *)
let residency t =
  Array.to_list
    (Array.mapi
       (fun i name ->
         let n =
           Hashtbl.fold
             (fun (_, ix) v acc -> if ix = i then acc + v else acc)
             t.residency 0
         in
         (name, n))
       candidates)

let snapshot t ~space =
  [|
    Stats.get_dim t.stats fam_read_miss space;
    Stats.get_dim t.stats fam_write_miss space;
    Stats.get_dim t.stats fam_inval space;
    Stats.get_dim t.stats fam_dispatch space;
    Stats.get_dim t.stats fam_blame space;
  |]

(* The decision rule over one learning window's counter deltas:

   - writes missing far more often than reads (every write fights for
     ownership, reads mostly local) is the migratory pattern — reading
     *and* writing exclusively makes the whole visit one transfer;
   - read misses and invalidations dominating writes is invalidation
     thrash over read-mostly data — push updates instead of invalidating
     ([DYN_UPDATE]);
   - anything else (or a quiet space) keeps the incumbent, and the
     invalidation default wins back a space whose pattern degenerates. *)
let advise (cfg : config) ~current deltas =
  let rm = deltas.(0) and wm = deltas.(1) and inv = deltas.(2) in
  let traffic = rm +. wm +. inv in
  if traffic < cfg.min_traffic then current
  else if wm >= cfg.margin *. (rm +. inv) then "MIGRATORY"
  else if rm +. inv >= cfg.margin *. wm then "DYN_UPDATE"
  else if String.equal current "MIGRATORY" || String.equal current "DYN_UPDATE"
  then current
  else "SC"

(* One node's arrival at an epoch point for [space]. The first node of an
   epoch charges residency and, at window boundaries, computes and
   memoizes the advice from a fresh counter snapshot; every node gets the
   memoized advice back ([Some name] = collectively switch to [name]). *)
let note_epoch t ~space ~node ~current =
  let c =
    match Hashtbl.find_opt t.ctr (space, node) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.ctr (space, node) r;
        r
  in
  let epoch = !c in
  incr c;
  match Hashtbl.find_opt t.memo (space, epoch) with
  | Some advice -> advice
  | None ->
      (* first node to reach this (space, epoch) *)
      (let ix = candidate_index current in
       if ix >= 0 then begin
         let key = (space, ix) in
         Hashtbl.replace t.residency key
           (1 + Option.value ~default:0 (Hashtbl.find_opt t.residency key));
         Stats.incr_dim t.stats fam_residency ix
       end);
      let advice =
        if (epoch + 1) mod t.cfg.window <> 0 then None
        else begin
          let now = snapshot t ~space in
          let last =
            match Hashtbl.find_opt t.last space with
            | Some l -> l
            | None -> Array.make (Array.length now) 0.
          in
          Hashtbl.replace t.last space now;
          let deltas = Array.mapi (fun i v -> v -. last.(i)) now in
          let target = advise t.cfg ~current deltas in
          if String.equal target current then None
          else begin
            t.switches <- t.switches + 1;
            Stats.incr_id t.stats sid_switches;
            Some target
          end
        end
      in
      Hashtbl.replace t.memo (space, epoch) advice;
      advice
