(** A deterministic priority queue of timestamped thunks.

    Events are ordered by timestamp; ties are broken by insertion order, so a
    simulation run is bit-reproducible. Implemented as a 4-ary implicit heap
    over parallel arrays; the pop path is exceptionless and allocation-free
    (results land in per-queue slots rather than an option). *)

type t

val create : unit -> t

(** [push t ~time f] schedules [f] to run at virtual time [time].
    Raises [Invalid_argument] if [time] is negative or not finite. *)
val push : t -> time:float -> (unit -> unit) -> unit

(** [pop_min t] removes the earliest event and stores it in the slots read
    by {!popped_time} and {!popped_thunk}, returning [true]; returns [false]
    (touching nothing) if the queue is empty. Allocation-free. *)
val pop_min : t -> bool

(** Timestamp of the event most recently removed by {!pop_min}.
    Meaningless before the first successful [pop_min]. *)
val popped_time : t -> float

(** Thunk of the event most recently removed by {!pop_min}. *)
val popped_thunk : t -> unit -> unit

(** [drain t f] pops every event in order, calling [f time thunk] for each.
    [f] may push further events; draining continues until the queue is
    empty. On return the {!popped_thunk} slot is cleared, so the queue
    retains no reference into the last event's closure graph. *)
val drain : t -> (float -> (unit -> unit) -> unit) -> unit

val is_empty : t -> bool
val length : t -> int

(** Timestamp of the earliest pending event. *)
val peek_time : t -> float option
