(** A deterministic priority queue of timestamped thunks.

    Events are ordered by timestamp; ties are broken by a pluggable
    {!policy} (insertion order by default), so a simulation run is
    bit-reproducible per policy. Implemented as a 4-ary implicit heap
    over parallel arrays; the pop path is exceptionless and allocation-free
    (results land in per-queue slots rather than an option). *)

(** How same-timestamp events are ordered. A simulated machine does not
    define an order for simultaneous events, so every policy yields a legal
    execution; the conformance kit ({!Ace_check}) runs one program under
    many policies to check that program results are schedule-independent.

    - [Fifo] (default): insertion order — the historical behaviour,
      bit-identical to builds without policy support.
    - [Random seed]: each event draws a priority from a seeded splitmix64
      stream at push time; deterministic per seed.
    - [Rotate {stride; offset}]: every [stride]-th inserted event (those
      with [seq mod stride = offset]) is delayed behind its tie group — a
      round-robin "delay set" explorer in the CHESS style. *)
type policy =
  | Fifo
  | Random of int
  | Rotate of { stride : int; offset : int }

(** Round-trippable textual form ("fifo", "random:SEED",
    "rotate:STRIDE:OFFSET") — the representation [.repro] files use. *)
val policy_to_string : policy -> string

(** Raises [Invalid_argument] on anything {!policy_to_string} cannot
    produce. *)
val policy_of_string : string -> policy

type t

(** [create ?policy ()] makes an empty queue. Raises [Invalid_argument] on
    a [Rotate] with [stride < 2] or [offset] outside [0..stride-1]. *)
val create : ?policy:policy -> unit -> t

(** The tie-break policy fixed at creation. *)
val policy : t -> policy

(** [push t ~time f] schedules [f] to run at virtual time [time].
    Raises [Invalid_argument] if [time] is negative or not finite. *)
val push : t -> time:float -> (unit -> unit) -> unit

(** [pop_min t] removes the earliest event and stores it in the slots read
    by {!popped_time} and {!popped_thunk}, returning [true]; returns [false]
    (touching nothing) if the queue is empty. Allocation-free. *)
val pop_min : t -> bool

(** Timestamp of the event most recently removed by {!pop_min}.
    Meaningless before the first successful [pop_min]. *)
val popped_time : t -> float

(** Thunk of the event most recently removed by {!pop_min}. *)
val popped_thunk : t -> unit -> unit

(** [drain t f] pops every event in order, calling [f time thunk] for each.
    [f] may push further events; draining continues until the queue is
    empty. On return the {!popped_thunk} slot is cleared, so the queue
    retains no reference into the last event's closure graph. *)
val drain : t -> (float -> (unit -> unit) -> unit) -> unit

val is_empty : t -> bool
val length : t -> int

(** Timestamp of the earliest pending event. *)
val peek_time : t -> float option
