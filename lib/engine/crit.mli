(** Causal dependency-DAG recorder for critical-path profiling.

    Attach one to a machine with {!Machine.set_crit} to record, for every
    simulated happening that can bound completion time, a node with a
    "last cause" edge: compute intervals, message deliveries, ivar
    fill→wakeup edges, fan-in joins, and barrier releases. The DAG is
    analyzed by [Ace_obs.Critpath] (critical-path extraction, blame
    attribution, what-if replay).

    Recording never advances a virtual clock — simulated output is
    bit-identical to an unrecorded run — and with no recorder attached
    every hook in the simulator reduces to a single field read.

    A node [i] completes, under replay with per-class cost scaling, at
    [max (completion pred(i) + scale * cost(i), completion pred2(i))]:
    [pred] carries the node's own latency, [pred2] (usually -1, absent)
    is a pure happens-before constraint. *)

type t

val create : nprocs:int -> unit -> t
val nprocs : t -> int

(** Number of nodes recorded so far. *)
val length : t -> int

(** {2 Interned node kinds} (global, shared across recorders) *)

(** Intern a kind name (idempotent; e.g. a protocol-op activity label). *)
val kind : string -> int

val kind_name : int -> string

(** All interned kind names, indexed by kind id. *)
val kinds : unit -> string array

val k_root : int
val k_app : int
val k_msg : int
val k_wake : int
val k_join : int
val k_barrier : int
val k_send_ovh : int

(** A coalesced compute run of mixed activities; the exact per-activity
    cost split lives in the breakdown pool ({!bd_count} et al.). *)
val k_seg : int

(** {2 Recording} — called by the simulator's hooks. *)

(** The causal context of the event currently executing (-1 outside any). *)
val cur : t -> int

val set_cur : t -> int -> unit

(** The current causal context, frozen: use instead of {!cur} whenever
    the id escapes into a deferred closure or an ivar — freezing fixes the
    node's time, cost, and meaning so later coalescing cannot mutate what
    the capture refers to. *)
val export_cur : t -> int

(** Run [f] with [cur] temporarily set (e.g. around a barrier-release
    fill, so woken fibers inherit the release as their cause). *)
val with_cur : t -> int -> (unit -> 'a) -> 'a

(** Per-processor chain head: the last node of the fiber's own activity. *)
val head : t -> int -> int

val set_head : t -> proc:int -> int -> unit

(** Append a node; returns its id. [time] is its completion time. *)
val node :
  t ->
  pred:int ->
  ?pred2:int ->
  kind:int ->
  a:int ->
  b:int ->
  time:float ->
  cost:float ->
  unit ->
  int

(** [join c x y] merges two causes into one happens-before node (zero
    cost, completion = the later input); -1 is the identity, so fan-in
    counters fold their contributions with no first-arrival case. *)
val join : t -> int -> int -> int

(** A compute interval on [proc] ending at [time], blamed on the proc's
    current activity. Consecutive intervals coalesce into one open node —
    across activity changes, with an exact per-(kind, space) split kept on
    the side — until the node freezes (acquires an incoming edge). *)
val advance : t -> proc:int -> time:float -> cycles:float -> unit

(** A fiber wakeup at [time] caused by [cause] (the filler's context, -1
    unknown); pred2 is the fiber's own prior chain. Sets the proc head. *)
val wake : t -> proc:int -> cause:int -> time:float -> int

(** Phase start for [proc] (Machine.run), caused by [cause] (the join of
    all previous heads, -1 on the first phase). Sets the proc head. *)
val root : t -> proc:int -> cause:int -> time:float -> int

(** {2 Activity tagging} — what compute intervals are blamed on. *)

(** Set the activity kind only (space preserved); returns the old kind. *)
val swap_kind : t -> proc:int -> int -> int

val set_act_kind : t -> proc:int -> int -> unit

(** Set kind and space; returns the old pair. *)
val swap_activity : t -> proc:int -> kind:int -> space:int -> int * int

val set_activity : t -> proc:int -> kind:int -> space:int -> unit

(** {2 Node accessors} (for analysis) *)

val time_of : t -> int -> float
val pred_of : t -> int -> int
val pred2_of : t -> int -> int
val kind_of : t -> int -> int
val a_of : t -> int -> int
val b_of : t -> int -> int
val cost_of : t -> int -> float
val heads_arr : t -> int array

(** Exact-length bulk copies of the node arrays
    [(pred, pred2, kind, a, b, time, cost)] — flushes open nodes first.
    Much cheaper than per-node accessor loops for snapshot construction. *)
val dump :
  t ->
  int array * int array * int array * int array * int array * float array
  * float array

(** Flush every still-open mixed node's split to the breakdown pool; call
    before reading the pool or node kinds at the end of recording
    (serialization does it internally). *)
val flush_open : t -> unit

(** The breakdown pool: per-activity splits of mixed ("seg") nodes, as
    rows (node, kind, space, cost). *)
val bd_count : t -> int

val bd_node_of : t -> int -> int
val bd_kind_of : t -> int -> int
val bd_space_of : t -> int -> int
val bd_cost_of : t -> int -> float

(** Latest node completion time (0 when empty). *)
val end_time : t -> float

(** {2 Active-recorder registry} — used by {!Machine.run} so {!Ivar.fill}
    can snapshot the filler's causal context without a machine in scope.
    Domain-local; the no-recorder fast path is one atomic load. *)

val activate : t -> unit
val deactivate : unit -> unit

(** The active recorder's [cur], or -1 when none is active. *)
val fill_cause : unit -> int

(** {2 Serialization} — the ace-critpath-v1 JSON format. *)

val to_buffer : t -> Buffer.t -> unit
val write_file : t -> string -> unit
