(** Write-once synchronization cells.

    An ivar is filled exactly once, at a virtual time; waiters registered
    before the fill are notified with the fill time and value. *)

type 'a t

val create : unit -> 'a t

(** [fill t ~time v] fills the ivar and notifies all waiters.
    Raises [Failure] if already filled. *)
val fill : 'a t -> time:float -> 'a -> unit

(** [peek t] returns [Some (time, v)] if filled. *)
val peek : 'a t -> (float * 'a) option

val is_filled : 'a t -> bool

(** [on_fill t f] calls [f ~time v] now if filled, otherwise when filled. *)
val on_fill : 'a t -> (time:float -> 'a -> unit) -> unit

(** The causal context of the fill — the active {!Crit} recorder's current
    node at fill time, or -1 when none was active (or not yet filled). *)
val cause : 'a t -> int
