type 'a state =
  | Empty of (time:float -> 'a -> unit) list (* waiters, reverse order *)
  | Full of float * 'a

(* [cause] is the causal context of the fill (a Crit node id, -1 when no
   recorder was active): a fiber that awaits only after the fill has
   already happened needs the filler's identity to record the
   cross-processor dependency edge (see Machine's Await handler). *)
type 'a t = { mutable state : 'a state; mutable cause : int }

let create () = { state = Empty []; cause = -1 }

let fill t ~time v =
  match t.state with
  | Full _ -> failwith "Ivar.fill: already filled"
  | Empty waiters ->
      t.cause <- Crit.fill_cause ();
      t.state <- Full (time, v);
      List.iter (fun f -> f ~time v) (List.rev waiters)

let cause t = t.cause

let peek t = match t.state with Empty _ -> None | Full (time, v) -> Some (time, v)
let is_filled t = match t.state with Empty _ -> false | Full _ -> true

let on_fill t f =
  match t.state with
  | Full (time, v) -> f ~time v
  | Empty waiters -> t.state <- Empty (f :: waiters)
