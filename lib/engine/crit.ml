(* Causal dependency-DAG recorder for critical-path profiling.

   When a recorder is attached to a machine (Machine.set_crit), every
   simulated happening that can bound completion time becomes a node:
   processor compute intervals (Advance), message deliveries, ivar
   fill->wakeup edges, fan-in joins (ack counters, barrier arrivals), and
   barrier releases. Each node keeps a "last cause" edge [pred] (the
   predecessor whose completion enabled it, carrying this node's [cost] in
   cycles) and an optional zero-cost secondary edge [pred2] (the other
   input of a join, or a woken fiber's own prior activity). Walking [pred]
   edges backward from the latest node yields the run's critical path;
   replaying the DAG forward with per-class cost scaling yields causal
   what-if predictions (see Ace_obs.Critpath).

   Recording never advances a virtual clock — a recorded run's simulated
   output is bit-identical to an unrecorded one — and the recorder is
   allocation-lean: nodes live in struct-of-arrays with doubling growth
   (Trace-style), node kinds are interned once into dense global ids
   (Stats-style), and with no recorder attached every hook in the
   simulator reduces to one field read.

   Coalescing and freezing. Advances are the hot path (every compute
   charge in the simulator), so a processor's consecutive compute — across
   activity changes — accumulates into ONE open node per proc, with an
   exact per-(kind, space) cost breakdown kept on the side. A node stays
   open (extensible) until some edge actually references it: being made a
   [pred]/[pred2], captured by a deferred scheduling context, snapshotted
   by an ivar fill, or folded into a join FREEZES it, fixing its time and
   cost forever. This is sound for blame because an open run has no
   external edges into its interior: the critical path traverses it
   entirely or not at all, so distributing a coalesced node's path time
   over its recorded breakdown is exact, not an approximation.

   The open node's accumulating time and cost live in per-proc mirror
   arrays (open_time/open_cost/open_kind/open_space) and are written back
   to the node arrays only when the node closes: the advance fast path
   then touches nothing but nprocs-sized arrays, which stay in L1 no
   matter how large the DAG grows.

   Node field conventions by kind:
     activity kinds ("app", protocol-op names, "send_ovh", ...):
                a = proc, b = space (-1 if none), cost = cycles
     "seg":     a = proc, b = -1; a coalesced compute run of mixed
                activities, cost = total cycles; the exact per-activity
                split lives in the breakdown pool (see below)
     "msg":     a = src, b = dst, cost = transit + recv overhead
     "wake":    a = proc, b = -1, cost = 0 (pred = filler, pred2 = own past)
     "join":    a = b = -1, cost = 0 (pred/pred2 = the two inputs)
     "barrier": a = releasing proc, b = generation, cost = release latency
     "root":    a = proc, b = -1, cost = 0 (phase start)

   Replay semantics (what the costs mean): a node completes at
     max (completion(pred) + scale * cost, completion(pred2))
   so pred carries the node's own latency and pred2 is a pure
   happens-before constraint. *)

(* ---- interned node kinds (global, shared across recorders) ---- *)

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 32
let names = ref ([||] : string array)
let n_kinds = ref 0

let kind name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table name with
      | Some k -> k
      | None ->
          let k = !n_kinds in
          if k = Array.length !names then begin
            let a = Array.make (max 16 (2 * k)) "" in
            Array.blit !names 0 a 0 k;
            names := a
          end;
          !names.(k) <- name;
          incr n_kinds;
          Hashtbl.add table name k;
          k)

let kind_name k =
  Mutex.protect mutex (fun () ->
      if k < 0 || k >= !n_kinds then invalid_arg "Crit.kind_name"
      else !names.(k))

let kinds () =
  Mutex.protect mutex (fun () -> Array.sub !names 0 !n_kinds)

let k_root = kind "root"
let k_app = kind "app"
let k_msg = kind "msg"
let k_wake = kind "wake"
let k_join = kind "join"
let k_barrier = kind "barrier"
let k_send_ovh = kind "send_ovh"
let k_seg = kind "seg"

(* ---- the recorder ---- *)

type t = {
  nprocs : int;
  mutable pred : int array;
  mutable pred2 : int array;
  mutable kind : int array;
  mutable a : int array;
  mutable b : int array;
  mutable time : float array;
  mutable cost : float array;
  mutable n : int;
  mutable cur : int; (* causal context of the event being executed *)
  heads : int array; (* per-proc last node of the fiber's own chain *)
  open_node : int array; (* per-proc extensible compute node, -1 if none *)
  open_time : float array; (* accumulating end time of the open node *)
  open_cost : float array; (* accumulating cost of the open node *)
  open_kind : int array; (* activity of the open node (before any mix) *)
  open_space : int array;
  act_kind : int array; (* per-proc current activity kind (blame bucket) *)
  act_space : int array; (* per-proc current activity space, -1 none *)
  (* per-proc split accumulator for the open run, direct-indexed by kind:
     spl_cost.(p).(k) is kind k's cycles in the run, spl_space.(p).(k)
     that kind's space (-2 = kind unused), spl_kinds.(p) the kinds in use
     (spl_n.(p) of them; 0 = the run is still a single activity, the
     common case). A second space under one kind spills to the small
     overflow arrays. *)
  spl_cost : float array array;
  spl_space : int array array;
  spl_kinds : int array array;
  spl_n : int array;
  ov_kind : int array array;
  ov_space : int array array;
  ov_cost : float array array;
  ov_n : int array;
  (* flushed breakdown pool: (node, kind, space, cost) rows for every
     mixed node, appended when the node freezes *)
  mutable bd_node : int array;
  mutable bd_kind : int array;
  mutable bd_space : int array;
  mutable bd_cost : float array;
  mutable bd_n : int;
}

let create ~nprocs () =
  if nprocs <= 0 then invalid_arg "Crit.create: nprocs <= 0";
  {
    nprocs;
    pred = [||];
    pred2 = [||];
    kind = [||];
    a = [||];
    b = [||];
    time = [||];
    cost = [||];
    n = 0;
    cur = -1;
    heads = Array.make nprocs (-1);
    open_node = Array.make nprocs (-1);
    open_time = Array.make nprocs 0.;
    open_cost = Array.make nprocs 0.;
    open_kind = Array.make nprocs (-1);
    open_space = Array.make nprocs (-1);
    act_kind = Array.make nprocs k_app;
    act_space = Array.make nprocs (-1);
    spl_cost = Array.make nprocs [||];
    spl_space = Array.make nprocs [||];
    spl_kinds = Array.make nprocs [||];
    spl_n = Array.make nprocs 0;
    ov_kind = Array.make nprocs [||];
    ov_space = Array.make nprocs [||];
    ov_cost = Array.make nprocs [||];
    ov_n = Array.make nprocs 0;
    bd_node = [||];
    bd_kind = [||];
    bd_space = [||];
    bd_cost = [||];
    bd_n = 0;
  }

let nprocs c = c.nprocs
let length c = c.n

let grow_int old n =
  let a = Array.make (max 1024 (2 * n)) (-1) in
  Array.blit old 0 a 0 n;
  a

let grow_float old n =
  let a = Array.make (max 1024 (2 * n)) 0. in
  Array.blit old 0 a 0 n;
  a

(* ---- breakdown accumulator ---- *)

let bd_push c ~node ~kind ~space ~cost =
  let n = c.bd_n in
  if n = Array.length c.bd_kind then begin
    c.bd_node <- grow_int c.bd_node n;
    c.bd_kind <- grow_int c.bd_kind n;
    c.bd_space <- grow_int c.bd_space n;
    c.bd_cost <- grow_float c.bd_cost n
  end;
  c.bd_node.(n) <- node;
  c.bd_kind.(n) <- kind;
  c.bd_space.(n) <- space;
  c.bd_cost.(n) <- cost;
  c.bd_n <- n + 1

(* Same kind, second space within one run: rare, short linear scan. *)
let ov_add c p k sp cycles =
  let len = c.ov_n.(p) in
  let ok = c.ov_kind.(p) in
  let rec find j =
    if j >= len then begin
      if len = Array.length ok then begin
        let g = max 4 (2 * len) in
        let nk = Array.make g (-1)
        and nsp = Array.make g (-1)
        and nc = Array.make g 0. in
        Array.blit ok 0 nk 0 len;
        Array.blit c.ov_space.(p) 0 nsp 0 len;
        Array.blit c.ov_cost.(p) 0 nc 0 len;
        c.ov_kind.(p) <- nk;
        c.ov_space.(p) <- nsp;
        c.ov_cost.(p) <- nc
      end;
      c.ov_kind.(p).(len) <- k;
      c.ov_space.(p).(len) <- sp;
      c.ov_cost.(p).(len) <- cycles;
      c.ov_n.(p) <- len + 1
    end
    else if ok.(j) = k && c.ov_space.(p).(j) = sp then
      c.ov_cost.(p).(j) <- c.ov_cost.(p).(j) +. cycles
    else find (j + 1)
  in
  find 0

(* Add [cycles] of activity (k, sp) to proc's open-run split: one
   direct-indexed load/compare/add in the common case (the advance hot
   path inlines exactly that and only calls here on a miss). *)
let rec spl_add c p k sp cycles =
  let ss = c.spl_space.(p) in
  if k >= Array.length ss then begin
    let cap = max 32 (2 * (k + 1)) in
    let nsp = Array.make cap (-2) and nc = Array.make cap 0. in
    let len = Array.length ss in
    Array.blit ss 0 nsp 0 len;
    Array.blit c.spl_cost.(p) 0 nc 0 len;
    c.spl_space.(p) <- nsp;
    c.spl_cost.(p) <- nc;
    spl_add c p k sp cycles
  end
  else
    let cur = ss.(k) in
    if cur = sp then c.spl_cost.(p).(k) <- c.spl_cost.(p).(k) +. cycles
    else if cur = -2 then begin
      ss.(k) <- sp;
      c.spl_cost.(p).(k) <- cycles;
      let n = c.spl_n.(p) in
      let kl = c.spl_kinds.(p) in
      if n = Array.length kl then begin
        let nk = Array.make (max 8 (2 * n)) 0 in
        Array.blit kl 0 nk 0 n;
        c.spl_kinds.(p) <- nk
      end;
      c.spl_kinds.(p).(n) <- k;
      c.spl_n.(p) <- n + 1
    end
    else ov_add c p k sp cycles

(* The open node of [proc] has a mixed split: rewrite it as a "seg" node
   and move the split into the breakdown pool. *)
let flush_split c p node =
  let n = c.spl_n.(p) in
  if n > 0 || c.ov_n.(p) > 0 then begin
    c.kind.(node) <- k_seg;
    c.b.(node) <- -1;
    for j = 0 to n - 1 do
      let k = c.spl_kinds.(p).(j) in
      bd_push c ~node ~kind:k ~space:c.spl_space.(p).(k)
        ~cost:c.spl_cost.(p).(k);
      c.spl_space.(p).(k) <- -2
    done;
    c.spl_n.(p) <- 0;
    for j = 0 to c.ov_n.(p) - 1 do
      bd_push c ~node ~kind:c.ov_kind.(p).(j) ~space:c.ov_space.(p).(j)
        ~cost:c.ov_cost.(p).(j)
    done;
    c.ov_n.(p) <- 0
  end

(* Close [proc]'s open node: write the accumulated time and cost back
   into the node arrays and flush any pending mixed split. *)
let close c p =
  let i = c.open_node.(p) in
  if i >= 0 then begin
    c.time.(i) <- c.open_time.(p);
    c.cost.(i) <- c.open_cost.(p);
    flush_split c p i;
    c.open_node.(p) <- -1
  end

(* Fix node [i]'s time, cost, and meaning forever: called the moment any
   edge or deferred context records a reference to it. Only an open node
   has anything pending; everything else is already immutable. *)
let freeze c i =
  if i >= 0 then begin
    let p = c.a.(i) in
    if p >= 0 && p < c.nprocs && c.open_node.(p) = i then close c p
  end

(* Close every still-open node (end of recording, before a snapshot or
   serialization). *)
let flush_open c =
  for p = 0 to c.nprocs - 1 do
    close c p
  done

let node c ~pred ?(pred2 = -1) ~kind ~a ~b ~time ~cost () =
  freeze c pred;
  freeze c pred2;
  let n = c.n in
  if n = Array.length c.kind then begin
    c.pred <- grow_int c.pred n;
    c.pred2 <- grow_int c.pred2 n;
    c.kind <- grow_int c.kind n;
    c.a <- grow_int c.a n;
    c.b <- grow_int c.b n;
    c.time <- grow_float c.time n;
    c.cost <- grow_float c.cost n
  end;
  c.pred.(n) <- pred;
  c.pred2.(n) <- pred2;
  c.kind.(n) <- kind;
  c.a.(n) <- a;
  c.b.(n) <- b;
  c.time.(n) <- time;
  c.cost.(n) <- cost;
  c.n <- n + 1;
  n

let cur c = c.cur
let set_cur c v = c.cur <- v

(* The current causal context, frozen — for capture into a deferred
   scheduling closure or an ivar, where it outlives this instant. *)
let export_cur c =
  freeze c c.cur;
  c.cur

let with_cur c v f =
  let old = c.cur in
  c.cur <- v;
  let out = f () in
  c.cur <- old;
  out

let head c proc = c.heads.(proc)

let set_head c ~proc v =
  close c proc;
  c.heads.(proc) <- v

let time_of c i = if i < 0 then 0. else c.time.(i)
let pred_of c i = c.pred.(i)
let pred2_of c i = c.pred2.(i)
let kind_of c i = c.kind.(i)
let a_of c i = c.a.(i)
let b_of c i = c.b.(i)
let cost_of c i = c.cost.(i)
let heads_arr c = Array.copy c.heads

let dump c =
  flush_open c;
  let n = c.n in
  ( Array.sub c.pred 0 n,
    Array.sub c.pred2 0 n,
    Array.sub c.kind 0 n,
    Array.sub c.a 0 n,
    Array.sub c.b 0 n,
    Array.sub c.time 0 n,
    Array.sub c.cost 0 n )
let bd_count c = c.bd_n
let bd_node_of c j = c.bd_node.(j)
let bd_kind_of c j = c.bd_kind.(j)
let bd_space_of c j = c.bd_space.(j)
let bd_cost_of c j = c.bd_cost.(j)

(* Merge two causes into one happens-before node whose completion is the
   later of the two; -1 is the identity, so folding a fan-in counter's
   contributions through [join] needs no special first-arrival case. Both
   inputs freeze — even on the identity paths the returned id escapes into
   deferred contexts (fan-in counters, barrier folds). *)
let join c x y =
  freeze c x;
  freeze c y;
  if x < 0 then y
  else if y < 0 then x
  else if x = y then x
  else
    let tm = if c.time.(x) >= c.time.(y) then c.time.(x) else c.time.(y) in
    node c ~pred:x ~pred2:y ~kind:k_join ~a:(-1) ~b:(-1) ~time:tm ~cost:0. ()

(* A compute interval on [proc] ending at [time]: the simulator's hottest
   hook. While the proc has an open node the interval coalesces into it —
   same activity extends in place; a different activity turns the node
   into a mixed segment via the accumulator. Otherwise a fresh node
   chains onto the proc's head. *)
let advance c ~proc ~time ~cycles =
  let h = Array.unsafe_get c.open_node proc in
  (* proc-indexed reads below are in-bounds by construction: Machine only
     passes proc ids 0..nprocs-1 *)
  if h >= 0 then begin
    let prev = Array.unsafe_get c.open_cost proc in
    Array.unsafe_set c.open_time proc time;
    Array.unsafe_set c.open_cost proc (prev +. cycles);
    let k = Array.unsafe_get c.act_kind proc
    and sp = Array.unsafe_get c.act_space proc in
    if
      Array.unsafe_get c.spl_n proc = 0
      && Array.unsafe_get c.open_kind proc = k
      && Array.unsafe_get c.open_space proc = sp
    then ()
    else begin
      if c.spl_n.(proc) = 0 then
        (* first mixed activity: seed the split with what the node holds *)
        spl_add c proc c.open_kind.(proc) c.open_space.(proc) prev;
      (* direct-indexed hit (same kind and space seen before in this run)
         stays inline; anything else takes the out-of-line slow path *)
      let ss = Array.unsafe_get c.spl_space proc in
      if k < Array.length ss && Array.unsafe_get ss k = sp then begin
        let sc = Array.unsafe_get c.spl_cost proc in
        Array.unsafe_set sc k (Array.unsafe_get sc k +. cycles)
      end
      else spl_add c proc k sp cycles
    end
  end
  else begin
    let k = c.act_kind.(proc) and sp = c.act_space.(proc) in
    let n =
      node c ~pred:c.heads.(proc) ~kind:k ~a:proc ~b:sp ~time ~cost:cycles ()
    in
    c.heads.(proc) <- n;
    c.open_node.(proc) <- n;
    c.open_time.(proc) <- time;
    c.open_cost.(proc) <- cycles;
    c.open_kind.(proc) <- k;
    c.open_space.(proc) <- sp
  end

(* A fiber wakeup: [cause] is the filler's causal context (or -1 when
   unknown), pred2 the fiber's own prior chain. Zero cost: the wakeup
   itself is free, its time is determined by its inputs. *)
let wake c ~proc ~cause ~time =
  let n =
    node c ~pred:cause ~pred2:c.heads.(proc) ~kind:k_wake ~a:proc ~b:(-1)
      ~time ~cost:0. ()
  in
  c.heads.(proc) <- n;
  n

(* Phase start: every proc's root depends on [cause] (the join of all
   previous heads — successive Machine.run phases start at the global
   max clock, which is exactly that join). *)
let root c ~proc ~cause ~time =
  let n =
    node c ~pred:cause ~kind:k_root ~a:proc ~b:(-1) ~time ~cost:0. ()
  in
  c.heads.(proc) <- n;
  n

(* ---- activity tagging (blame buckets for compute intervals) ---- *)

let swap_kind c ~proc k =
  let old = c.act_kind.(proc) in
  c.act_kind.(proc) <- k;
  old

let set_act_kind c ~proc k = c.act_kind.(proc) <- k

let swap_activity c ~proc ~kind ~space =
  let old = (c.act_kind.(proc), c.act_space.(proc)) in
  c.act_kind.(proc) <- kind;
  c.act_space.(proc) <- space;
  old

let set_activity c ~proc ~kind ~space =
  c.act_kind.(proc) <- kind;
  c.act_space.(proc) <- space

let end_time c =
  let e = ref 0. in
  for i = 0 to c.n - 1 do
    if c.time.(i) > !e then e := c.time.(i)
  done;
  !e

(* ---- the active recorder (for Ivar.fill's cause capture) ----

   Ivar fills happen deep inside simulation code with no machine in scope,
   yet the causal context of a fill must survive until a *later* await
   peeks the value. Machine.run registers its recorder here (domain-local:
   each domain drains at most one machine at a time; parallel bench pools
   keep their recorders separate), and Ivar.fill snapshots the current
   cause. The atomic count keeps the common no-recorder case to a single
   uncontended load. *)

let actives = Atomic.make 0
let active_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let activate c =
  Atomic.incr actives;
  Domain.DLS.get active_key := Some c

let deactivate () =
  Domain.DLS.get active_key := None;
  Atomic.decr actives

let fill_cause () =
  if Atomic.get actives = 0 then -1
  else
    match !(Domain.DLS.get active_key) with
    | None -> -1
    | Some c -> export_cur c

(* ---- serialization: ace-critpath-v1 ----

   One JSON object; [kinds] names the interned kind ids used by [nodes];
   [heads] is each processor's final chain node; [nodes] is the flat
   struct-of-arrays as rows [pred, pred2, kind, a, b, time, cost] in
   creation (= topological) order; [bd] carries the per-activity split of
   mixed ("seg") nodes as rows [node, kind, space, cost]. *)

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_buffer c buf =
  flush_open c;
  Buffer.add_string buf "{\"schema\":\"ace-critpath-v1\",";
  Buffer.add_string buf (Printf.sprintf "\"nprocs\":%d," c.nprocs);
  Buffer.add_string buf "\"end_time\":";
  add_float buf (end_time c);
  Buffer.add_string buf ",\"kinds\":[";
  let ks = kinds () in
  Array.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf k;
      Buffer.add_char buf '"')
    ks;
  Buffer.add_string buf "],\"heads\":[";
  Array.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int h))
    c.heads;
  Buffer.add_string buf "],\"nodes\":[";
  for i = 0 to c.n - 1 do
    if i > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "[%d,%d,%d,%d,%d," c.pred.(i) c.pred2.(i) c.kind.(i)
         c.a.(i) c.b.(i));
    add_float buf c.time.(i);
    Buffer.add_char buf ',';
    add_float buf c.cost.(i);
    Buffer.add_char buf ']'
  done;
  Buffer.add_string buf "],\"bd\":[";
  for j = 0 to c.bd_n - 1 do
    if j > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "[%d,%d,%d," c.bd_node.(j) c.bd_kind.(j) c.bd_space.(j));
    add_float buf c.bd_cost.(j);
    Buffer.add_char buf ']'
  done;
  Buffer.add_string buf "]}\n"

let write_file c path =
  let buf = Buffer.create (256 + (c.n * 32)) in
  to_buffer c buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
