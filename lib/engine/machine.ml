type t = {
  nprocs : int;
  events : Event_queue.t;
  stats : Stats.t;
  mutable live : int; (* fibers spawned and not yet returned *)
  mutable max_clock : float;
  mutable trace : Trace.t option;
      (* event tracer; None (the default) keeps every instrumentation
         point down to a single field read *)
  mutable crit : Crit.t option;
      (* causal-DAG recorder, same contract: None = one field read *)
}

and proc = { id : int; mutable clock : float; machine : t }

type _ Effect.t += Advance : proc * float -> unit Effect.t
type _ Effect.t += Await : proc * 'a Ivar.t -> 'a Effect.t

let create ?policy ~nprocs () =
  if nprocs <= 0 then invalid_arg "Machine.create: nprocs <= 0";
  {
    nprocs;
    events = Event_queue.create ?policy ();
    stats = Stats.create ();
    live = 0;
    max_clock = 0.;
    trace = None;
    crit = None;
  }

let nprocs t = t.nprocs
let stats t = t.stats
let policy t = Event_queue.policy t.events
let set_trace t tr = t.trace <- tr
let trace t = t.trace
let set_crit t c = t.crit <- c
let crit t = t.crit

(* When a recorder is attached, every queued thunk carries the causal
   context it was created in, restored just before it runs — so the DAG
   hooks inside the thunk (message sends, ivar fills, compute intervals)
   see their true cause. With no recorder this is a plain push. *)
let schedule_cause t ~time ~cause f =
  match t.crit with
  | None -> Event_queue.push t.events ~time f
  | Some c ->
      Event_queue.push t.events ~time (fun () ->
          Crit.set_cur c cause;
          f ())

let schedule t ~time f =
  match t.crit with
  | None -> Event_queue.push t.events ~time f
  | Some c -> schedule_cause t ~time ~cause:(Crit.export_cur c) f

let advance p cycles =
  if cycles < 0. || not (Float.is_finite cycles) then
    invalid_arg "Machine.advance: bad cycle count";
  if cycles > 0. then Effect.perform (Advance (p, cycles))

(* Advance with the compute blamed on [kindid] (e.g. send overhead)
   instead of the processor's current activity. *)
let advance_as p kindid cycles =
  match p.machine.crit with
  | None -> advance p cycles
  | Some c ->
      let old = Crit.swap_kind c ~proc:p.id kindid in
      advance p cycles;
      ignore (Crit.swap_kind c ~proc:p.id old)

let await p iv = Effect.perform (Await (p, iv))

(* Run one fiber under a deep handler. The handler turns Advance into a
   rescheduled resumption (so processors interleave in timestamp order) and
   Await into an ivar waiter. *)
let spawn_fiber t (body : unit -> unit) =
  let open Effect.Deep in
  t.live <- t.live + 1;
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance (p, cycles) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.clock <- p.clock +. cycles;
                  match t.crit with
                  | None ->
                      Event_queue.push t.events ~time:p.clock (fun () ->
                          continue k ())
                  | Some c ->
                      Crit.advance c ~proc:p.id ~time:p.clock ~cycles;
                      let cause = Crit.head c p.id in
                      Event_queue.push t.events ~time:p.clock (fun () ->
                          Crit.set_cur c cause;
                          continue k ()))
          | Await (p, iv) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Ivar.peek iv with
                  | Some (time, v) ->
                      (* Already filled. If the fill is in this fiber's
                         future, the resume time is bound by the filler:
                         record that cross-chain edge (the fill snapshotted
                         its causal context into the ivar). *)
                      (match t.crit with
                      | Some c when time > p.clock ->
                          let n =
                            Crit.wake c ~proc:p.id ~cause:(Ivar.cause iv)
                              ~time
                          in
                          Crit.set_cur c n
                      | Some _ | None -> ());
                      if time > p.clock then p.clock <- time;
                      continue k v
                  | None ->
                      (* This callback runs synchronously inside Ivar.fill,
                         i.e. in the *filler's* causal context — exactly the
                         fill→wakeup edge. *)
                      Ivar.on_fill iv (fun ~time v ->
                          if time > p.clock then p.clock <- time;
                          match t.crit with
                          | None ->
                              Event_queue.push t.events ~time:p.clock
                                (fun () -> continue k v)
                          | Some c ->
                              let n =
                                Crit.wake c ~proc:p.id ~cause:(Crit.cur c)
                                  ~time:p.clock
                              in
                              Event_queue.push t.events ~time:p.clock
                                (fun () ->
                                  Crit.set_cur c n;
                                  continue k v)))
          | _ -> None);
    }

let run t program =
  let procs = Array.init t.nprocs (fun id -> { id; clock = t.max_clock; machine = t }) in
  let finished = Array.make t.nprocs false in
  let spawn p () =
    spawn_fiber t (fun () ->
        program p;
        finished.(p.id) <- true)
  in
  (match t.crit with
  | None ->
      Array.iter
        (fun p -> Event_queue.push t.events ~time:p.clock (spawn p))
        procs
  | Some c ->
      (* Successive phases start at the global max clock: every root
         depends on the join of all previous chain heads. *)
      let gj =
        Array.fold_left (fun acc p -> Crit.join c acc (Crit.head c p.id)) (-1)
          procs
      in
      Array.iter
        (fun p ->
          let r = Crit.root c ~proc:p.id ~cause:gj ~time:p.clock in
          Event_queue.push t.events ~time:p.clock (fun () ->
              Crit.set_cur c r;
              spawn p ()))
        procs);
  (match t.crit with None -> () | Some c -> Crit.activate c);
  Fun.protect
    ~finally:(fun () ->
      match t.crit with None -> () | Some _ -> Crit.deactivate ())
    (fun () ->
      Event_queue.drain t.events (fun time thunk ->
          if time > t.max_clock then t.max_clock <- time;
          thunk ()));
  if t.live > 0 then begin
    (* Name the stuck processors and where their clocks stopped, so a
       deadlock (a lost-and-abandoned message, a mis-tuned retransmit
       timeout, a missing barrier arrival) is diagnosable from the error
       alone. *)
    let blocked =
      Array.to_list procs
      |> List.filter (fun p -> not finished.(p.id))
      |> List.map (fun p -> Printf.sprintf "P%d@%.0f" p.id p.clock)
    in
    failwith
      (Printf.sprintf
         "Machine.run: deadlock: %d fiber(s) blocked forever with no \
          pending events (last event at t=%.0f); blocked processors: %s"
         t.live t.max_clock
         (String.concat ", " blocked))
  end;
  Array.iter (fun p -> if p.clock > t.max_clock then t.max_clock <- p.clock) procs

let time t = t.max_clock
let seconds t ~cycles_per_sec = t.max_clock /. cycles_per_sec

module Barrier = struct
  let sid_arrivals = Stats.intern "barrier.arrivals"

  type b = {
    owner : t;
    cost : int -> float;
    mutable arrived : int;
    mutable latest : float;
    mutable gen : unit Ivar.t;
    mutable gen_no : int; (* generation counter, for trace labelling *)
    mutable cjoin : int;
        (* causal join of this generation's arrivals so far (-1 = none):
           the release node depends on ALL arrivals, so a what-if replay
           can re-decide which processor arrives last *)
  }

  let create owner ~cost =
    {
      owner;
      cost;
      arrived = 0;
      latest = 0.;
      gen = Ivar.create ();
      gen_no = 0;
      cjoin = -1;
    }

  (* Every arrival awaits the current generation's ivar; the last arrival
     fills it at [latest + cost P], which releases (and time-advances)
     everyone, including itself. Tracing records one span per processor per
     generation, arrival to release: the per-proc span lengths within a
     generation expose barrier skew (who arrived early and waited). *)
  let wait b p =
    let t = b.owner in
    let gen = b.gen in
    let gen_no = b.gen_no in
    let arrival = p.clock in
    b.arrived <- b.arrived + 1;
    if p.clock > b.latest then b.latest <- p.clock;
    (match t.crit with
    | None -> ()
    | Some c -> b.cjoin <- Crit.join c b.cjoin (Crit.head c p.id));
    if b.arrived = t.nprocs then begin
      let release = b.latest +. b.cost t.nprocs in
      b.arrived <- 0;
      b.latest <- 0.;
      b.gen <- Ivar.create ();
      b.gen_no <- gen_no + 1;
      match t.crit with
      | None -> Ivar.fill gen ~time:release ()
      | Some c ->
          let jn = b.cjoin in
          b.cjoin <- -1;
          let bn =
            Crit.node c ~pred:jn ~kind:Crit.k_barrier ~a:p.id ~b:gen_no
              ~time:release
              ~cost:(release -. Crit.time_of c jn)
              ()
          in
          Crit.set_head c ~proc:p.id bn;
          (* Waiters wake inside this fill: make the release node their
             cause. *)
          Crit.with_cur c bn (fun () -> Ivar.fill gen ~time:release ())
    end;
    await p gen;
    Stats.incr_id t.stats sid_arrivals;
    match t.trace with
    | None -> ()
    | Some tr ->
        Trace.span tr ~name:"barrier" ~cat:"barrier" ~tid:p.id ~ts:arrival
          ~dur:(p.clock -. arrival)
          ~args:[ ("gen", gen_no) ] ()
end
