(* The simulated machine: N processors as cooperative fibers over a
   discrete-event loop.

   Two engines share this module:

   - [Seq_engine] (the default): one event queue, drained in (time, order)
     order on the calling domain. This is the historical engine; its hot
     paths are untouched by the parallel work below.

   - [Par_engine n]: a conservative parallel discrete-event engine
     (Chandy–Misra–Bryant style). Processors are partitioned into [n]
     shards, each with its own event queue running on its own OCaml domain.
     All shards advance window-by-window to a safe horizon [W + L], where
     [W] is the global minimum pending timestamp and [L] the lookahead —
     the minimum cross-processor wire latency (see [set_lookahead]): a
     message sent by an event executing inside the window is delivered at
     or beyond the horizon, so within one window shards only interact
     through the explicitly synchronized channels below (outboxes for
     zero-latency cross-shard work, buffered barrier arrivals), all drained
     serially between rounds.

     Simulated output is bit-identical to the sequential engine. The
     sequential tie-break is global push order; push order is exactly
     lexicographic (execution position of the pushing event, push index),
     so events here carry orders of that form (Pdes.Order), with execution
     ranks assigned in global key order when a window closes — after which
     no event below the horizon remains anywhere, so the window's key order
     is final. Anything that would break the equivalence — a delivery
     landing behind its processor's execution front, an order-dependent
     global operation after the shards have split — raises [Par_violation]
     / [Par_unsupported]; the driver catches either and reruns the
     simulation sequentially, so the parallel engine can change wall-clock
     time but never results. *)

type engine = Seq_engine | Par_engine of int

exception Par_violation of string
exception Par_unsupported of string

(* Map either fallback exception to a human-readable reason. *)
(* The CLI/env/.repro spelling of an engine choice: "seq", "par" (one
   shard per recommended domain), or "par:N". *)
let engine_to_string = function
  | Seq_engine -> "seq"
  | Par_engine n -> Printf.sprintf "par:%d" n

let engine_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "seq" then Ok Seq_engine
  else if s = "par" then Ok (Par_engine (Domain.recommended_domain_count ()))
  else if String.length s > 4 && String.sub s 0 4 = "par:" then
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some n when n >= 1 -> Ok (Par_engine n)
    | Some _ | None -> Error (Printf.sprintf "bad shard count in %S" s)
  else Error (Printf.sprintf "unknown engine %S (want seq, par, or par:N)" s)

let par_fallback_reason = function
  | Par_violation m -> Some ("violation: " ^ m)
  | Par_unsupported m -> Some ("unsupported: " ^ m)
  | _ -> None

type t = {
  nprocs : int;
  events : Event_queue.t;
  stats : Stats.t;
  mutable live : int; (* fibers spawned and not yet returned *)
  mutable max_clock : float;
  mutable trace : Trace.t option;
      (* event tracer; None (the default) keeps every instrumentation
         point down to a single field read *)
  mutable crit : Crit.t option;
      (* causal-DAG recorder, same contract: None = one field read *)
  mutable mode : mode;
}

and mode = Mseq | Mpar of par

and par = {
  nshards : int;
  mutable lookahead : float; (* cycles; min cross-processor wire latency *)
  shards : shard array;
  shard_of : int array; (* proc id -> shard index *)
  mutable rank_ctr : int;
  mutable par_active : bool; (* false during the sequential warmup phase *)
  last_ord : Pdes.Order.t array; (* per proc: order of last executed event *)
  last_time : float array; (* per proc: time of last executed event *)
  mutable horizon : float;
  mutable wbase : float; (* current window's base time W *)
  mutable barriers : barrier_state list; (* all barriers on this machine *)
}

and shard = {
  six : int;
  q : Pdes.Pq.t;
  pop : Pdes.Pq.popped;
  sstats : Stats.t;
  mutable cur_ord : Pdes.Order.t; (* key order of the executing event *)
  mutable cur_parent : Pdes.Order.t; (* order its pushes descend from *)
  mutable cur_idx : int; (* next push index *)
  mutable cur_owner : int;
  mutable in_event : bool;
  mutable log : Pdes.Order.t array; (* rank-bearing events, this window *)
  mutable log_t : float array; (* their execution times, for the rank sort *)
  mutable log_n : int;
  mutable obox : obox list; (* cross-shard pushes, delivered serially *)
  mutable arrivals : bwaiter list; (* barrier arrivals, merged serially *)
  mutable live_delta : int;
  mutable smax_clock : float;
  mutable failure : exn option;
  (* worker handshake *)
  wm : Mutex.t;
  wcv : Condition.t;
  mutable wcmd : wcmd;
}

and wcmd = W_idle | W_go | W_done | W_stop

and obox = {
  ob_time : float;
  ob_ord : Pdes.Order.t;
  ob_owner : int;
  ob_parent : Pdes.Order.t;
  ob_base : int;
  ob_thunk : unit -> unit;
}

and barrier_state = {
  bowner : t;
  bcost : int -> float;
  mutable arrived : int;
  mutable latest : float;
  mutable gen : unit Ivar.t;
  mutable gen_no : int; (* generation counter, for trace labelling *)
  mutable cjoin : int;
      (* causal join of this generation's arrivals so far (-1 = none):
         the release node depends on ALL arrivals, so a what-if replay
         can re-decide which processor arrives last *)
  mutable waiters : bwaiter list; (* par mode: this generation's arrivals *)
}

and bwaiter = {
  w_b : barrier_state;
  w_proc : proc;
  w_ord : Pdes.Order.t; (* key order of the arrival event *)
  w_time : float;
      (* the arrival event's scheduled time: arrivals registered in
         sequential execution order = (w_time, w_ord) lexicographic —
         w_ord alone only orders events at equal times *)
  w_idx : int; (* the arrival event's push counter at suspension *)
  w_clock : float; (* processor clock at suspension (>= w_time) *)
  w_k : (unit, unit) Effect.Deep.continuation;
}

and proc = { id : int; mutable clock : float; machine : t }

type _ Effect.t += Advance : proc * float -> unit Effect.t
type _ Effect.t += Await : proc * 'a Ivar.t -> 'a Effect.t
type _ Effect.t += Par_wait : barrier_state * proc -> unit Effect.t

(* The executing shard, for the machine whose run loop owns this domain.
   Rebound per run and compared against the machine on every lookup, so a
   simulation nested under another machine's pool worker never sees a
   stale binding. *)
let shard_dls : (t * shard) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_shard t =
  match !(Domain.DLS.get shard_dls) with
  | Some (m, s) when m == t -> Some s
  | _ -> None

let mk_shard six =
  {
    six;
    q = Pdes.Pq.create ();
    pop = Pdes.Pq.make_popped ();
    sstats = Stats.create ();
    cur_ord = Pdes.Order.dummy;
    cur_parent = Pdes.Order.dummy;
    cur_idx = 0;
    cur_owner = 0;
    in_event = false;
    log = Array.make 256 Pdes.Order.dummy;
    log_t = Array.make 256 0.;
    log_n = 0;
    obox = [];
    arrivals = [];
    live_delta = 0;
    smax_clock = 0.;
    failure = None;
    wm = Mutex.create ();
    wcv = Condition.create ();
    wcmd = W_idle;
  }

let create ?policy ?(engine = Seq_engine) ~nprocs () =
  if nprocs <= 0 then invalid_arg "Machine.create: nprocs <= 0";
  let t =
    {
      nprocs;
      events = Event_queue.create ?policy ();
      stats = Stats.create ();
      live = 0;
      max_clock = 0.;
      trace = None;
      crit = None;
      mode = Mseq;
    }
  in
  (match engine with
  | Seq_engine -> ()
  | Par_engine n ->
      if n <= 0 then invalid_arg "Machine.create: shards <= 0";
      (match Event_queue.policy t.events with
      | Event_queue.Fifo -> ()
      | _ ->
          raise
            (Par_unsupported
               "parallel engine requires the Fifo tie-break policy"));
      let nshards = min n nprocs in
      let per = (nprocs + nshards - 1) / nshards in
      t.mode <-
        Mpar
          {
            nshards;
            lookahead = 0.;
            shards = Array.init nshards mk_shard;
            shard_of = Array.init nprocs (fun p -> p / per);
            rank_ctr = 0;
            par_active = false;
            last_ord = Array.make nprocs Pdes.Order.dummy;
            last_time = Array.make nprocs neg_infinity;
            horizon = 0.;
            wbase = 0.;
            barriers = [];
          });
  t

let nprocs t = t.nprocs

let engine t =
  match t.mode with Mseq -> Seq_engine | Mpar pp -> Par_engine pp.nshards

let nshards t = match t.mode with Mseq -> 1 | Mpar pp -> pp.nshards

let shard_ix t =
  match t.mode with
  | Mseq -> 0
  | Mpar _ -> ( match current_shard t with Some s -> s.six | None -> 0)

(* Shard-local stats while a parallel run is executing (merged into the
   root instance at the end of the run); the root instance otherwise. *)
let stats t =
  match t.mode with
  | Mseq -> t.stats
  | Mpar _ -> (
      match current_shard t with Some s -> s.sstats | None -> t.stats)

let root_stats t = t.stats
let policy t = Event_queue.policy t.events
let set_trace t tr = t.trace <- tr
let trace t = t.trace

let set_crit t c =
  (match (t.mode, c) with
  | Mpar _, Some _ ->
      raise (Par_unsupported "critical-path recording requires --engine seq")
  | _ -> ());
  t.crit <- c

let crit t = t.crit

let set_lookahead t cycles =
  match t.mode with
  | Mseq -> ()
  | Mpar pp -> pp.lookahead <- max 0. cycles

(* Order-dependent global operations (region allocation, space creation,
   protocol changes) are only deterministic when events execute one at a
   time; callers invoke this to force the sequential fallback if one is
   reached after the shards have split. *)
let assert_seq_context t what =
  match t.mode with
  | Mpar pp when pp.par_active -> raise (Par_unsupported what)
  | _ -> ()

(* ---- parallel push path ---- *)

let par_push pp s ~time ~owner thunk =
  let idx = s.cur_idx in
  s.cur_idx <- idx + 1;
  let ord = Pdes.Order.child s.cur_parent ~idx in
  if pp.par_active && pp.shard_of.(owner) <> s.six then
    s.obox <-
      {
        ob_time = time;
        ob_ord = ord;
        ob_owner = owner;
        ob_parent = ord;
        ob_base = 0;
        ob_thunk = thunk;
      }
      :: s.obox
  else Pdes.Pq.push s.q ~time ~ord ~owner ~parent:ord ~base:0 thunk

(* When a recorder is attached, every queued thunk carries the causal
   context it was created in, restored just before it runs — so the DAG
   hooks inside the thunk (message sends, ivar fills, compute intervals)
   see their true cause. With no recorder this is a plain push. *)
let schedule_cause t ~time ~cause f =
  match t.crit with
  | None -> Event_queue.push t.events ~time f
  | Some c ->
      Event_queue.push t.events ~time (fun () ->
          Crit.set_cur c cause;
          f ())

let schedule ?owner t ~time f =
  match t.mode with
  | Mseq -> (
      match t.crit with
      | None -> Event_queue.push t.events ~time f
      | Some c -> schedule_cause t ~time ~cause:(Crit.export_cur c) f)
  | Mpar pp -> (
      match current_shard t with
      | Some s when s.in_event ->
          let owner = match owner with Some o -> o | None -> s.cur_owner in
          par_push pp s ~time ~owner f
      | _ -> raise (Par_unsupported "schedule outside an event"))

(* [run_at t ~owner ~time f] runs [f] — simulated work belonging to
   processor [owner] at time [time] — from inside another processor's
   event. Sequentially (and within a shard) it is exactly an inline call,
   preserving the historical engine's behaviour bit for bit. Across shards
   it becomes a continuation event on [owner]'s shard: [f]'s pushes inherit
   the calling event's order and push counter, so they tie-break exactly as
   the sequential inline call would have. The call must be in tail position
   within its event (nothing may be pushed after it), and [f] must only
   touch [owner]'s state. If [owner]'s shard has already executed past the
   call's position, the delivery is a causality violation and the run falls
   back to the sequential engine. *)
let run_at t ~owner ~time f =
  match t.mode with
  | Mseq -> f ()
  | Mpar pp -> (
      match current_shard t with
      | Some s when s.in_event ->
          if (not pp.par_active) || pp.shard_of.(owner) = s.six then f ()
          else begin
            let idx = s.cur_idx in
            s.cur_idx <- idx + 1;
            let ord = Pdes.Order.child s.cur_parent ~idx in
            s.obox <-
              {
                ob_time = time;
                ob_ord = ord;
                ob_owner = owner;
                ob_parent = s.cur_parent;
                ob_base = idx + 1;
                ob_thunk = f;
              }
              :: s.obox
          end
      | _ -> raise (Par_unsupported "run_at outside an event"))

let advance p cycles =
  if cycles < 0. || not (Float.is_finite cycles) then
    invalid_arg "Machine.advance: bad cycle count";
  if cycles > 0. then Effect.perform (Advance (p, cycles))

(* Advance with the compute blamed on [kindid] (e.g. send overhead)
   instead of the processor's current activity. *)
let advance_as p kindid cycles =
  match p.machine.crit with
  | None -> advance p cycles
  | Some c ->
      let old = Crit.swap_kind c ~proc:p.id kindid in
      advance p cycles;
      ignore (Crit.swap_kind c ~proc:p.id old)

let await p iv = Effect.perform (Await (p, iv))

(* Run one fiber under a deep handler. The handler turns Advance into a
   rescheduled resumption (so processors interleave in timestamp order) and
   Await into an ivar waiter. The parallel branches differ only in where
   the resumption is pushed (the owner's shard, with an order descending
   from the current event); the sequential branches are the historical code
   unchanged. *)
let spawn_fiber t (body : unit -> unit) =
  let open Effect.Deep in
  (match t.mode with
  | Mseq -> t.live <- t.live + 1
  | Mpar _ -> (
      match current_shard t with
      | Some s -> s.live_delta <- s.live_delta + 1
      | None -> t.live <- t.live + 1));
  match_with body ()
    {
      retc =
        (fun () ->
          match t.mode with
          | Mseq -> t.live <- t.live - 1
          | Mpar _ -> (
              match current_shard t with
              | Some s -> s.live_delta <- s.live_delta - 1
              | None -> t.live <- t.live - 1));
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance (p, cycles) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.clock <- p.clock +. cycles;
                  match t.mode with
                  | Mseq -> (
                      match t.crit with
                      | None ->
                          Event_queue.push t.events ~time:p.clock (fun () ->
                              continue k ())
                      | Some c ->
                          Crit.advance c ~proc:p.id ~time:p.clock ~cycles;
                          let cause = Crit.head c p.id in
                          Event_queue.push t.events ~time:p.clock (fun () ->
                              Crit.set_cur c cause;
                              continue k ()))
                  | Mpar pp ->
                      let s = Option.get (current_shard t) in
                      par_push pp s ~time:p.clock ~owner:p.id (fun () ->
                          continue k ()))
          | Await (p, iv) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Ivar.peek iv with
                  | Some (time, v) ->
                      (* Already filled. If the fill is in this fiber's
                         future, the resume time is bound by the filler:
                         record that cross-chain edge (the fill snapshotted
                         its causal context into the ivar). *)
                      (match t.crit with
                      | Some c when time > p.clock ->
                          let n =
                            Crit.wake c ~proc:p.id ~cause:(Ivar.cause iv)
                              ~time
                          in
                          Crit.set_cur c n
                      | Some _ | None -> ());
                      if time > p.clock then p.clock <- time;
                      continue k v
                  | None -> (
                      (* This callback runs synchronously inside Ivar.fill,
                         i.e. in the *filler's* causal context — exactly
                         the fill→wakeup edge. In the parallel engine the
                         filler may be on another shard: the resumption
                         then goes through the filler's outbox as a child
                         of the filling event, which is exactly where the
                         sequential engine's push counter would have put
                         it. *)
                      match t.mode with
                      | Mseq ->
                          Ivar.on_fill iv (fun ~time v ->
                              if time > p.clock then p.clock <- time;
                              match t.crit with
                              | None ->
                                  Event_queue.push t.events ~time:p.clock
                                    (fun () -> continue k v)
                              | Some c ->
                                  let n =
                                    Crit.wake c ~proc:p.id
                                      ~cause:(Crit.cur c) ~time:p.clock
                                  in
                                  Event_queue.push t.events ~time:p.clock
                                    (fun () ->
                                      Crit.set_cur c n;
                                      continue k v))
                      | Mpar pp ->
                          Ivar.on_fill iv (fun ~time v ->
                              if time > p.clock then p.clock <- time;
                              let s = Option.get (current_shard t) in
                              par_push pp s ~time:p.clock ~owner:p.id
                                (fun () -> continue k v))))
          | Par_wait (b, p) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Buffer the arrival on the executing shard; the
                     coordinator merges arrivals and releases complete
                     generations between rounds. No shared state is
                     touched here. *)
                  let s = Option.get (current_shard t) in
                  let w_time =
                    match t.mode with
                    | Mpar pp -> pp.last_time.(p.id)
                    | Mseq -> p.clock
                  in
                  s.arrivals <-
                    {
                      w_b = b;
                      w_proc = p;
                      w_ord = s.cur_ord;
                      w_time;
                      w_idx = s.cur_idx;
                      w_clock = p.clock;
                      w_k = k;
                    }
                    :: s.arrivals)
          | _ -> None);
    }

(* ---- sequential run loop (the historical engine, unchanged) ---- *)

let deadlock_report t procs finished =
  let blocked =
    Array.to_list procs
    |> List.filter (fun p -> not finished.(p.id))
    |> List.map (fun p -> Printf.sprintf "P%d@%.0f" p.id p.clock)
  in
  failwith
    (Printf.sprintf
       "Machine.run: deadlock: %d fiber(s) blocked forever with no \
        pending events (last event at t=%.0f); blocked processors: %s"
       t.live t.max_clock
       (String.concat ", " blocked))

let run_seq t program =
  let procs =
    Array.init t.nprocs (fun id -> { id; clock = t.max_clock; machine = t })
  in
  let finished = Array.make t.nprocs false in
  let spawn p () =
    spawn_fiber t (fun () ->
        program p;
        finished.(p.id) <- true)
  in
  (match t.crit with
  | None ->
      Array.iter
        (fun p -> Event_queue.push t.events ~time:p.clock (spawn p))
        procs
  | Some c ->
      (* Successive phases start at the global max clock: every root
         depends on the join of all previous chain heads. *)
      let gj =
        Array.fold_left
          (fun acc p -> Crit.join c acc (Crit.head c p.id))
          (-1) procs
      in
      Array.iter
        (fun p ->
          let r = Crit.root c ~proc:p.id ~cause:gj ~time:p.clock in
          Event_queue.push t.events ~time:p.clock (fun () ->
              Crit.set_cur c r;
              spawn p ()))
        procs);
  (match t.crit with None -> () | Some c -> Crit.activate c);
  Fun.protect
    ~finally:(fun () ->
      match t.crit with None -> () | Some _ -> Crit.deactivate ())
    (fun () ->
      Event_queue.drain t.events (fun time thunk ->
          if time > t.max_clock then t.max_clock <- time;
          thunk ()));
  if t.live > 0 then deadlock_report t procs finished;
  Array.iter
    (fun p -> if p.clock > t.max_clock then t.max_clock <- p.clock)
    procs

(* ---- parallel run loop ---- *)

(* Is (time, ord) at or behind processor [owner]'s execution front? The
   front is the (time, key) of the owner's last executed event; the
   sequential engine pops in exactly that lexicographic order, so an
   arrival at or behind the front could never happen sequentially. *)
let behind_front pp ~owner ~time ~ord =
  let last = pp.last_ord.(owner) in
  last != Pdes.Order.dummy
  && (time < pp.last_time.(owner)
     || (time = pp.last_time.(owner) && Pdes.Order.compare ord last <= 0))

(* Execute one shard's events up to the window horizon. Events exactly at
   the window base are always eligible, even with zero lookahead:
   same-timestamp events on different shards cannot affect each other
   below the wire latency, and zero-latency channels go through outboxes
   with causality checks. *)
let shard_round pp s ~wbase ~horizon =
  let q = s.q in
  let eligible () =
    s.failure = None
    &&
    let mt = Pdes.Pq.min_time q in
    mt < horizon || mt = wbase
  in
  while eligible () && Pdes.Pq.pop_min q s.pop do
    let time = s.pop.p_time in
    let ord = s.pop.p_ord in
    let owner = s.pop.p_owner in
    if behind_front pp ~owner ~time ~ord then
      s.failure <-
        Some
          (Par_violation
             (Printf.sprintf "event behind processor %d's front" owner))
    else begin
      if time > s.smax_clock then s.smax_clock <- time;
      pp.last_ord.(owner) <- ord;
      pp.last_time.(owner) <- time;
      s.cur_ord <- ord;
      s.cur_parent <- s.pop.p_parent;
      s.cur_idx <- s.pop.p_base;
      s.cur_owner <- owner;
      s.in_event <- true;
      (* rank-bearing events (their own order parents their pushes) are
         logged for ranking at the window close *)
      if s.pop.p_parent == ord then begin
        if s.log_n = Array.length s.log then begin
          let a = Array.make (2 * s.log_n) Pdes.Order.dummy in
          Array.blit s.log 0 a 0 s.log_n;
          s.log <- a;
          let b = Array.make (2 * s.log_n) 0. in
          Array.blit s.log_t 0 b 0 s.log_n;
          s.log_t <- b
        end;
        s.log.(s.log_n) <- ord;
        s.log_t.(s.log_n) <- time;
        s.log_n <- s.log_n + 1
      end;
      (try s.pop.p_thunk ()
       with e -> if s.failure = None then s.failure <- Some e);
      s.in_event <- false
    end
  done

let worker_loop t pp s =
  Domain.DLS.get shard_dls := Some (t, s);
  let rec loop () =
    Mutex.lock s.wm;
    while s.wcmd = W_idle || s.wcmd = W_done do
      Condition.wait s.wcv s.wm
    done;
    let cmd = s.wcmd in
    Mutex.unlock s.wm;
    match cmd with
    | W_stop -> ()
    | W_go ->
        shard_round pp s ~wbase:pp.wbase ~horizon:pp.horizon;
        Mutex.lock s.wm;
        s.wcmd <- W_done;
        Condition.signal s.wcv;
        Mutex.unlock s.wm;
        loop ()
    | W_idle | W_done -> loop ()
  in
  loop ()

(* ---- serial phases, run on the coordinating domain between rounds ---- *)

(* Move buffered cross-shard pushes into their target shards' queues.
   Returns whether anything landed below the horizon (= the window needs
   another round). *)
let deliver_obox pp =
  let hot = ref false in
  Array.iter
    (fun s ->
      match s.obox with
      | [] -> ()
      | items ->
          s.obox <- [];
          List.iter
            (fun ob ->
              if
                behind_front pp ~owner:ob.ob_owner ~time:ob.ob_time
                  ~ord:ob.ob_ord
              then
                raise
                  (Par_violation
                     (Printf.sprintf
                        "cross-shard delivery behind processor %d's front"
                        ob.ob_owner));
              if ob.ob_time < pp.horizon then hot := true;
              let dst = pp.shards.(pp.shard_of.(ob.ob_owner)) in
              Pdes.Pq.push dst.q ~time:ob.ob_time ~ord:ob.ob_ord
                ~owner:ob.ob_owner ~parent:ob.ob_parent ~base:ob.ob_base
                ob.ob_thunk)
            (List.rev items))
    pp.shards;
  !hot

(* Fold buffered barrier arrivals into their barrier states. *)
let merge_arrivals pp =
  Array.iter
    (fun s ->
      match s.arrivals with
      | [] -> ()
      | ws ->
          s.arrivals <- [];
          List.iter
            (fun (w : bwaiter) ->
              let b = w.w_b in
              b.arrived <- b.arrived + 1;
              if w.w_clock > b.latest then b.latest <- w.w_clock;
              b.waiters <- w :: b.waiters)
            ws)
    pp.shards

(* Release every barrier whose generation is complete, replicating the
   sequential release exactly. Sequentially the last arrival fills the
   generation ivar inside its own event: the other waiters' resumptions
   are pushed there in registration order, and the last arriver continues
   inline, its later pushes following theirs. Registration order is the
   arrival events' execution order — (time, key) lexicographic, since key
   order alone only ranks events at equal times. Here the last arrival
   becomes a continuation event inheriting its order and push counter,
   and the other waiters' resumptions take the next push indexes in
   registration order. Returns whether anything was released (wakeups
   land inside the current window's rounds). *)
let release_ready t pp =
  let released = ref false in
  List.iter
    (fun b ->
      if b.arrived = t.nprocs && b.waiters <> [] then begin
        released := true;
        let release = b.latest +. b.bcost t.nprocs in
        let ws =
          List.sort
            (fun (a : bwaiter) b ->
              let c = Float.compare a.w_time b.w_time in
              if c <> 0 then c else Pdes.Order.compare a.w_ord b.w_ord)
            b.waiters
        in
        b.arrived <- 0;
        b.latest <- 0.;
        b.waiters <- [];
        b.gen <- Ivar.create ();
        b.gen_no <- b.gen_no + 1;
        let n = List.length ws in
        let last = List.nth ws (n - 1) in
        let base = last.w_idx in
        let push_wakeup ~ord ~parent ~pbase (w : bwaiter) =
          let p = w.w_proc in
          let dst =
            if pp.par_active then pp.shards.(pp.shard_of.(p.id))
            else pp.shards.(0)
          in
          Pdes.Pq.push dst.q ~time:release ~ord ~owner:p.id ~parent
            ~base:pbase (fun () ->
              if release > p.clock then p.clock <- release;
              Effect.Deep.continue w.w_k ())
        in
        push_wakeup
          ~ord:(Pdes.Order.child last.w_ord ~idx:base)
          ~parent:last.w_ord ~pbase:(base + n) last;
        List.iteri
          (fun i w ->
            if i < n - 1 then begin
              let ord = Pdes.Order.child last.w_ord ~idx:(base + 1 + i) in
              push_wakeup ~ord ~parent:ord ~pbase:0 w
            end)
          ws
      end)
    pp.barriers;
  !released

(* Close the window: sort its rank-bearing events by (time, order) — the
   sequential engine's pop order — and assign execution ranks in that
   order, resolving the keys their pushes' orders are built from. Time is
   the major sort key: the order comparator alone only reproduces the
   sequential tie-break between events at equal times (its
   resolved-before-unresolved rule is justified by pending ranks
   exceeding assigned ones, which says nothing about events at different
   times). Sound because the window only closes once no event below the
   horizon remains anywhere — the window's (time, order) sequence is
   final and every later event sorts greater. *)
let rank_window pp =
  let total = Array.fold_left (fun a s -> a + s.log_n) 0 pp.shards in
  if total > 0 then begin
    let all = Array.make total (0., Pdes.Order.dummy) in
    let off = ref 0 in
    Array.iter
      (fun s ->
        for i = 0 to s.log_n - 1 do
          all.(!off + i) <- (s.log_t.(i), s.log.(i))
        done;
        off := !off + s.log_n;
        s.log_n <- 0)
      pp.shards;
    Array.sort
      (fun (ta, oa) (tb, ob) ->
        let c = Float.compare ta tb in
        if c <> 0 then c else Pdes.Order.compare oa ob)
      all;
    Array.iter
      (fun ((_, o) : float * Pdes.Order.t) ->
        o.Pdes.Order.rank <- pp.rank_ctr;
        pp.rank_ctr <- pp.rank_ctr + 1)
      all
  end

let global_min pp =
  Array.fold_left
    (fun a s -> Float.min a (Pdes.Pq.min_time s.q))
    infinity pp.shards

let merge_live t pp =
  Array.iter
    (fun s ->
      t.live <- t.live + s.live_delta;
      s.live_delta <- 0)
    pp.shards

let check_failures pp =
  Array.iter
    (fun s -> match s.failure with Some e -> raise e | None -> ())
    pp.shards

let run_par t pp program =
  if t.crit <> None then
    raise (Par_unsupported "critical-path recording requires --engine seq");
  let procs =
    Array.init t.nprocs (fun id -> { id; clock = t.max_clock; machine = t })
  in
  let finished = Array.make t.nprocs false in
  let s0 = pp.shards.(0) in
  let dls = Domain.DLS.get shard_dls in
  let saved_dls = !dls in
  dls := Some (t, s0);
  (match t.trace with
  | None -> ()
  | Some tr ->
      Trace.set_par tr
        (Some
           (fun () ->
             match current_shard t with
             | Some s when s.in_event ->
                 let idx = s.cur_idx in
                 s.cur_idx <- idx + 1;
                 (s.cur_parent, idx)
             | _ -> (Pdes.Order.dummy, -1))));
  (* Initial spawns: root orders in processor order — the sequential
     engine's spawn push order. Key space [rank_ctr, rank_ctr + nprocs) is
     reserved for them; execution ranks continue above it. *)
  Array.iter
    (fun p ->
      let ord = Pdes.Order.root ~rank:(pp.rank_ctr + p.id) in
      Pdes.Pq.push s0.q ~time:p.clock ~ord ~owner:p.id ~parent:ord ~base:0
        (fun () ->
          spawn_fiber t (fun () ->
              program p;
              finished.(p.id) <- true)))
    procs;
  pp.rank_ctr <- pp.rank_ctr + t.nprocs;

  let workers = ref [||] in
  let stop_workers () =
    Array.iter
      (fun (s : shard) ->
        Mutex.lock s.wm;
        s.wcmd <- W_stop;
        Condition.signal s.wcv;
        Mutex.unlock s.wm)
      (Array.sub pp.shards 1 (pp.nshards - 1));
    Array.iter Domain.join !workers;
    workers := [||]
  in
  let finish_run () =
    if Array.length !workers > 0 then stop_workers ();
    merge_live t pp;
    Array.iter
      (fun s ->
        if s.smax_clock > t.max_clock then t.max_clock <- s.smax_clock;
        Stats.merge_into t.stats s.sstats;
        Stats.reset s.sstats;
        s.smax_clock <- 0.;
        s.log_n <- 0;
        s.obox <- [];
        s.arrivals <- [];
        s.failure <- None)
      pp.shards;
    pp.par_active <- false;
    (match t.trace with None -> () | Some tr -> Trace.set_par tr None);
    dls := saved_dls
  in
  Fun.protect ~finally:finish_run (fun () ->
      (* ---- warmup: all shards merged, one event at a time on this
         domain. The order-dependent setup phase (region allocation, space
         and name tables) runs here sequentially; the first barrier
         release — the natural end of setup in every Ace program —
         triggers the split. Ranks are assigned at pop: warmup pops in
         global key order. *)
      let split_at_release = pp.nshards > 1 in
      let split_pending = ref false in
      while
        (not !split_pending)
        && s0.failure = None
        && not (Pdes.Pq.is_empty s0.q)
      do
        ignore (Pdes.Pq.pop_min s0.q s0.pop);
        let time = s0.pop.p_time in
        if time > s0.smax_clock then s0.smax_clock <- time;
        let ord = s0.pop.p_ord in
        pp.last_ord.(s0.pop.p_owner) <- ord;
        pp.last_time.(s0.pop.p_owner) <- time;
        s0.cur_ord <- ord;
        s0.cur_parent <- s0.pop.p_parent;
        s0.cur_idx <- s0.pop.p_base;
        s0.cur_owner <- s0.pop.p_owner;
        s0.in_event <- true;
        if s0.pop.p_parent == ord then begin
          ord.Pdes.Order.rank <- pp.rank_ctr;
          pp.rank_ctr <- pp.rank_ctr + 1
        end;
        (try s0.pop.p_thunk ()
         with e -> if s0.failure = None then s0.failure <- Some e);
        s0.in_event <- false;
        if s0.arrivals <> [] then begin
          merge_arrivals pp;
          if release_ready t pp && split_at_release then
            split_pending := true
        end
      done;
      (match s0.failure with Some e -> raise e | None -> ());
      merge_live t pp;

      if !split_pending then begin
        (* ---- split: partition the merged queue by owning shard, spawn
           the worker domains, and run window by window *)
        pp.par_active <- true;
        let q = s0.q in
        let n = Pdes.Pq.length q in
        let entries =
          Array.init n (fun i ->
              ( q.Pdes.Pq.times.(i),
                q.Pdes.Pq.ords.(i),
                q.Pdes.Pq.owners.(i),
                q.Pdes.Pq.parents.(i),
                q.Pdes.Pq.bases.(i),
                q.Pdes.Pq.thunks.(i) ))
        in
        q.Pdes.Pq.size <- 0;
        Array.fill q.Pdes.Pq.thunks 0 (Array.length q.Pdes.Pq.thunks) ignore;
        Array.iter
          (fun (time, ord, owner, parent, base, thunk) ->
            Pdes.Pq.push pp.shards.(pp.shard_of.(owner)).q ~time ~ord ~owner
              ~parent ~base thunk)
          entries;
        workers :=
          Array.init (pp.nshards - 1) (fun i ->
              Domain.spawn (fun () -> worker_loop t pp pp.shards.(i + 1)));

        let running = ref true in
        while !running do
          let w = global_min pp in
          if w = infinity then running := false
          else begin
            pp.wbase <- w;
            pp.horizon <- w +. pp.lookahead;
            let quiet = ref false in
            while not !quiet do
              Array.iteri
                (fun i (s : shard) ->
                  if i > 0 then begin
                    Mutex.lock s.wm;
                    s.wcmd <- W_go;
                    Condition.signal s.wcv;
                    Mutex.unlock s.wm
                  end)
                pp.shards;
              shard_round pp s0 ~wbase:pp.wbase ~horizon:pp.horizon;
              Array.iteri
                (fun i (s : shard) ->
                  if i > 0 then begin
                    Mutex.lock s.wm;
                    while s.wcmd <> W_done do
                      Condition.wait s.wcv s.wm
                    done;
                    s.wcmd <- W_idle;
                    Mutex.unlock s.wm
                  end)
                pp.shards;
              check_failures pp;
              merge_live t pp;
              let hot = deliver_obox pp in
              merge_arrivals pp;
              let released = release_ready t pp in
              let mn = global_min pp in
              quiet :=
                (not (hot || released))
                && not (mn < pp.horizon || mn = pp.wbase)
            done;
            rank_window pp
          end
        done;
        stop_workers ()
      end;
      merge_live t pp;
      Array.iter
        (fun s ->
          if s.smax_clock > t.max_clock then t.max_clock <- s.smax_clock)
        pp.shards;
      if t.live > 0 then deadlock_report t procs finished;
      Array.iter
        (fun p -> if p.clock > t.max_clock then t.max_clock <- p.clock)
        procs)

let run t program =
  match t.mode with
  | Mseq -> run_seq t program
  | Mpar pp -> run_par t pp program

let time t = t.max_clock
let seconds t ~cycles_per_sec = t.max_clock /. cycles_per_sec

module Barrier = struct
  let sid_arrivals = Stats.intern "barrier.arrivals"

  type b = barrier_state

  let create owner ~cost =
    let b =
      {
        bowner = owner;
        bcost = cost;
        arrived = 0;
        latest = 0.;
        gen = Ivar.create ();
        gen_no = 0;
        cjoin = -1;
        waiters = [];
      }
    in
    (match owner.mode with
    | Mseq -> ()
    | Mpar pp -> pp.barriers <- b :: pp.barriers);
    b

  (* Every arrival awaits the current generation's ivar; the last arrival
     fills it at [latest + cost P], which releases (and time-advances)
     everyone, including itself. Tracing records one span per processor per
     generation, arrival to release: the per-proc span lengths within a
     generation expose barrier skew (who arrived early and waited). *)
  let wait b p =
    let t = b.bowner in
    let gen = b.gen in
    let gen_no = b.gen_no in
    let arrival = p.clock in
    (match t.mode with
    | Mseq ->
        b.arrived <- b.arrived + 1;
        if p.clock > b.latest then b.latest <- p.clock;
        (match t.crit with
        | None -> ()
        | Some c -> b.cjoin <- Crit.join c b.cjoin (Crit.head c p.id));
        if b.arrived = t.nprocs then begin
          let release = b.latest +. b.bcost t.nprocs in
          b.arrived <- 0;
          b.latest <- 0.;
          b.gen <- Ivar.create ();
          b.gen_no <- gen_no + 1;
          match t.crit with
          | None -> Ivar.fill gen ~time:release ()
          | Some c ->
              let jn = b.cjoin in
              b.cjoin <- -1;
              let bn =
                Crit.node c ~pred:jn ~kind:Crit.k_barrier ~a:p.id ~b:gen_no
                  ~time:release
                  ~cost:(release -. Crit.time_of c jn)
                  ()
              in
              Crit.set_head c ~proc:p.id bn;
              (* Waiters wake inside this fill: make the release node their
                 cause. *)
              Crit.with_cur c bn (fun () -> Ivar.fill gen ~time:release ())
        end;
        await p gen
    | Mpar _ ->
        (* Generation bookkeeping is serialized on the coordinator: the
           Par_wait handler buffers this arrival on the executing shard and
           the run loop merges and releases between rounds. [gen] is unused
           in this mode; [gen_no] advances at release for the trace label
           below, which all of a generation's arrivals read before any
           release can run. *)
        ignore gen;
        Effect.perform (Par_wait (b, p)));
    Stats.incr_id (stats t) sid_arrivals;
    match t.trace with
    | None -> ()
    | Some tr ->
        Trace.span tr ~name:"barrier" ~cat:"barrier" ~tid:p.id ~ts:arrival
          ~dur:(p.clock -. arrival)
          ~args:[ ("gen", gen_no) ] ()
end
