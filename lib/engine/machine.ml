type t = {
  nprocs : int;
  events : Event_queue.t;
  stats : Stats.t;
  mutable live : int; (* fibers spawned and not yet returned *)
  mutable max_clock : float;
  mutable trace : Trace.t option;
      (* event tracer; None (the default) keeps every instrumentation
         point down to a single field read *)
}

and proc = { id : int; mutable clock : float; machine : t }

type _ Effect.t += Advance : proc * float -> unit Effect.t
type _ Effect.t += Await : proc * 'a Ivar.t -> 'a Effect.t

let create ?policy ~nprocs () =
  if nprocs <= 0 then invalid_arg "Machine.create: nprocs <= 0";
  {
    nprocs;
    events = Event_queue.create ?policy ();
    stats = Stats.create ();
    live = 0;
    max_clock = 0.;
    trace = None;
  }

let nprocs t = t.nprocs
let stats t = t.stats
let policy t = Event_queue.policy t.events
let set_trace t tr = t.trace <- tr
let trace t = t.trace
let schedule t ~time f = Event_queue.push t.events ~time f

let advance p cycles =
  if cycles < 0. || not (Float.is_finite cycles) then
    invalid_arg "Machine.advance: bad cycle count";
  if cycles > 0. then Effect.perform (Advance (p, cycles))

let await p iv = Effect.perform (Await (p, iv))

(* Run one fiber under a deep handler. The handler turns Advance into a
   rescheduled resumption (so processors interleave in timestamp order) and
   Await into an ivar waiter. *)
let spawn_fiber t (body : unit -> unit) =
  let open Effect.Deep in
  t.live <- t.live + 1;
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance (p, cycles) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.clock <- p.clock +. cycles;
                  Event_queue.push t.events ~time:p.clock (fun () -> continue k ()))
          | Await (p, iv) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Ivar.peek iv with
                  | Some (time, v) ->
                      if time > p.clock then p.clock <- time;
                      continue k v
                  | None ->
                      Ivar.on_fill iv (fun ~time v ->
                          if time > p.clock then p.clock <- time;
                          Event_queue.push t.events ~time:p.clock (fun () ->
                              continue k v)))
          | _ -> None);
    }

let run t program =
  let procs = Array.init t.nprocs (fun id -> { id; clock = t.max_clock; machine = t }) in
  let finished = Array.make t.nprocs false in
  Array.iter
    (fun p ->
      Event_queue.push t.events ~time:p.clock (fun () ->
          spawn_fiber t (fun () ->
              program p;
              finished.(p.id) <- true)))
    procs;
  Event_queue.drain t.events (fun time thunk ->
      if time > t.max_clock then t.max_clock <- time;
      thunk ());
  if t.live > 0 then begin
    (* Name the stuck processors and where their clocks stopped, so a
       deadlock (a lost-and-abandoned message, a mis-tuned retransmit
       timeout, a missing barrier arrival) is diagnosable from the error
       alone. *)
    let blocked =
      Array.to_list procs
      |> List.filter (fun p -> not finished.(p.id))
      |> List.map (fun p -> Printf.sprintf "P%d@%.0f" p.id p.clock)
    in
    failwith
      (Printf.sprintf
         "Machine.run: deadlock: %d fiber(s) blocked forever with no \
          pending events (last event at t=%.0f); blocked processors: %s"
         t.live t.max_clock
         (String.concat ", " blocked))
  end;
  Array.iter (fun p -> if p.clock > t.max_clock then t.max_clock <- p.clock) procs

let time t = t.max_clock
let seconds t ~cycles_per_sec = t.max_clock /. cycles_per_sec

module Barrier = struct
  let sid_arrivals = Stats.intern "barrier.arrivals"

  type b = {
    owner : t;
    cost : int -> float;
    mutable arrived : int;
    mutable latest : float;
    mutable gen : unit Ivar.t;
    mutable gen_no : int; (* generation counter, for trace labelling *)
  }

  let create owner ~cost =
    { owner; cost; arrived = 0; latest = 0.; gen = Ivar.create (); gen_no = 0 }

  (* Every arrival awaits the current generation's ivar; the last arrival
     fills it at [latest + cost P], which releases (and time-advances)
     everyone, including itself. Tracing records one span per processor per
     generation, arrival to release: the per-proc span lengths within a
     generation expose barrier skew (who arrived early and waited). *)
  let wait b p =
    let t = b.owner in
    let gen = b.gen in
    let gen_no = b.gen_no in
    let arrival = p.clock in
    b.arrived <- b.arrived + 1;
    if p.clock > b.latest then b.latest <- p.clock;
    if b.arrived = t.nprocs then begin
      let release = b.latest +. b.cost t.nprocs in
      b.arrived <- 0;
      b.latest <- 0.;
      b.gen <- Ivar.create ();
      b.gen_no <- gen_no + 1;
      Ivar.fill gen ~time:release ()
    end;
    await p gen;
    Stats.incr_id t.stats sid_arrivals;
    match t.trace with
    | None -> ()
    | Some tr ->
        Trace.span tr ~name:"barrier" ~cat:"barrier" ~tid:p.id ~ts:arrival
          ~dur:(p.clock -. arrival)
          ~args:[ ("gen", gen_no) ] ()
end
