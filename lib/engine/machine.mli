(** A deterministic discrete-event simulation of an N-processor
    distributed-memory machine.

    Each simulated processor runs an OCaml function as a cooperative fiber
    (OCaml 5 effects). A fiber advances its private virtual clock with
    {!advance} and blocks on {!await}; the run loop always executes the
    earliest-timestamped pending work, so execution is sequentially
    deterministic. *)

type t

type proc = private {
  id : int;
  mutable clock : float; (* virtual cycles *)
  machine : t;
}

(** Which run loop drives the simulation. [Seq_engine] (the default) is
    the historical single-domain event loop. [Par_engine n] partitions the
    processors into [n] shards, each draining its own event queue on its
    own OCaml domain, advancing window-by-window to a safe horizon derived
    from the minimum cross-processor wire latency ({!set_lookahead});
    simulated output — times, statistics, traces — is bit-identical to
    [Seq_engine]. Requires the {!Event_queue.Fifo} tie-break policy. *)
type engine = Seq_engine | Par_engine of int

(** Round-trippable textual form ("seq", "par:N"; "par" alone picks one
    shard per recommended host domain) — the spelling CLIs and [.repro]
    files use. *)
val engine_to_string : engine -> string

val engine_of_string : string -> (engine, string) result

(** The parallel engine detected an execution it cannot replicate
    sequential order for (a delivery behind a processor's execution
    front). Deterministically re-runnable with [Seq_engine]. *)
exception Par_violation of string

(** The program used a feature the parallel engine does not support
    (non-Fifo policy, critical-path recording, an order-dependent global
    operation after the shards split). Re-runnable with [Seq_engine]. *)
exception Par_unsupported of string

(** [Some reason] for the two fallback exceptions above, [None] for
    anything else — drivers match on this to decide whether to rerun
    sequentially. *)
val par_fallback_reason : exn -> string option

(** [create ?policy ?engine ~nprocs ()] builds a fresh machine. [policy]
    fixes how same-timestamp events are ordered (default
    {!Event_queue.Fifo}, the historical bit-identical behaviour); any
    policy is a legal execution of the simulated machine, so program
    results at synchronization points must not depend on it — the
    conformance kit checks exactly that. [engine] (default {!Seq_engine})
    selects the run loop; [Par_engine n] raises {!Par_unsupported} if
    [policy] is not [Fifo]. *)
val create : ?policy:Event_queue.policy -> ?engine:engine -> nprocs:int -> unit -> t

val nprocs : t -> int

(** This machine's engine ([Par_engine n] reports the effective shard
    count, clamped to [nprocs]). *)
val engine : t -> engine

(** Number of shards: 1 sequentially, the clamped shard count in parallel. *)
val nshards : t -> int

(** The executing shard's index (0 sequentially or outside a run). Hot
    paths use this to index per-shard accumulator arrays. *)
val shard_ix : t -> int

(** The statistics instance to record into *right now*: the executing
    shard's private accumulator during a parallel run (merged into the
    root instance when the run finishes), the root instance otherwise.
    Hot paths may cache it per shard but never across runs. *)
val stats : t -> Stats.t

(** The root statistics instance — the merged totals. Only complete
    between runs. *)
val root_stats : t -> Stats.t

(** [set_lookahead t cycles] declares the minimum simulated latency of any
    cross-processor interaction (wire latency + receive overhead); the
    parallel engine uses it as the conservative window width. No-op
    sequentially. Larger is faster; too large is caught by the causality
    checks, not silently wrong. *)
val set_lookahead : t -> float -> unit

(** [assert_seq_context t what] raises [Par_unsupported what] if the
    parallel engine has split into concurrent shards — used by
    order-dependent global operations (region allocation, space creation,
    protocol changes) that are only deterministic one-event-at-a-time. *)
val assert_seq_context : t -> string -> unit

(** The event queue's tie-break policy. *)
val policy : t -> Event_queue.policy

(** Attach (or detach) an event tracer. With [None] — the default — every
    instrumentation point in the simulator reduces to one field read, and
    a traced run's simulated times are bit-identical to an untraced run's
    (the tracer only records; it never advances a clock). *)
val set_trace : t -> Trace.t option -> unit

val trace : t -> Trace.t option

(** Attach (or detach) a causal-DAG recorder for critical-path profiling,
    same contract as tracing: with [None] every hook is one field read,
    and a recorded run's simulated output is bit-identical. *)
val set_crit : t -> Crit.t option -> unit

val crit : t -> Crit.t option

(** [schedule ?owner t ~time f] runs [f] at virtual [time] on the event
    loop (used for message deliveries; [f] must not block). When a
    recorder is attached, [f] runs in the scheduling event's causal
    context. [owner] names the processor whose state [f] touches — the
    parallel engine routes the event to that processor's shard (default:
    the scheduling event's owner); the sequential engine ignores it. *)
val schedule : ?owner:int -> t -> time:float -> (unit -> unit) -> unit

(** [run_at t ~owner ~time f] runs [f] — simulated work belonging to
    processor [owner] at time [time] — from inside another processor's
    event. Sequentially it is exactly [f ()]; under the parallel engine a
    cross-shard call becomes a continuation event on [owner]'s shard that
    inherits the calling event's order and push counter, so everything
    [f] pushes tie-breaks exactly as the inline call would have. The call
    must be in tail position within its event (nothing may be pushed
    after it returns), and [f] must only touch [owner]'s state. *)
val run_at : t -> owner:int -> time:float -> (unit -> unit) -> unit

(** Like {!schedule} but [f] runs with the given {!Crit} node as its
    causal context (used by message delivery, whose cause is the freshly
    recorded send→deliver arc). Plain push when no recorder is attached. *)
val schedule_cause : t -> time:float -> cause:int -> (unit -> unit) -> unit

(** {2 Fiber operations} — may only be called from inside a running fiber. *)

(** Advance the calling processor's clock by [cycles] (>= 0). *)
val advance : proc -> float -> unit

(** Like {!advance}, but when a recorder is attached the cycles are blamed
    on the given {!Crit} kind instead of the current activity (e.g.
    [Crit.k_send_ovh] for message send overhead). *)
val advance_as : proc -> int -> float -> unit

(** Block the calling fiber until the ivar is filled; the processor clock is
    advanced to at least the fill time. Returns the value. *)
val await : proc -> 'a Ivar.t -> 'a

(** {2 Running} *)

(** [run t program] spawns [program proc] on every processor at time 0 and
    runs to completion. Raises [Failure] on deadlock (fibers alive, no
    events); the message names each blocked processor and the clock it
    stopped at. May be called repeatedly (e.g., successive phases). *)
val run : t -> (proc -> unit) -> unit

(** Maximum processor clock observed (total simulated time, cycles). *)
val time : t -> float

(** Convenience: simulated time in seconds at a given clock rate. *)
val seconds : t -> cycles_per_sec:float -> float

(** {2 Global synchronization primitives} *)

module Barrier : sig
  type b

  (** [create t ~cost] makes a reusable barrier whose release adds
      [cost nprocs] cycles after the last arrival. *)
  val create : t -> cost:(int -> float) -> b

  (** Block until all processors have arrived at this generation. *)
  val wait : b -> proc -> unit
end
