(** A deterministic discrete-event simulation of an N-processor
    distributed-memory machine.

    Each simulated processor runs an OCaml function as a cooperative fiber
    (OCaml 5 effects). A fiber advances its private virtual clock with
    {!advance} and blocks on {!await}; the run loop always executes the
    earliest-timestamped pending work, so execution is sequentially
    deterministic. *)

type t

type proc = private {
  id : int;
  mutable clock : float; (* virtual cycles *)
  machine : t;
}

(** [create ?policy ~nprocs ()] builds a fresh machine. [policy] fixes how
    same-timestamp events are ordered (default {!Event_queue.Fifo}, the
    historical bit-identical behaviour); any policy is a legal execution of
    the simulated machine, so program results at synchronization points must
    not depend on it — the conformance kit checks exactly that. *)
val create : ?policy:Event_queue.policy -> nprocs:int -> unit -> t

val nprocs : t -> int
val stats : t -> Stats.t

(** The event queue's tie-break policy. *)
val policy : t -> Event_queue.policy

(** Attach (or detach) an event tracer. With [None] — the default — every
    instrumentation point in the simulator reduces to one field read, and
    a traced run's simulated times are bit-identical to an untraced run's
    (the tracer only records; it never advances a clock). *)
val set_trace : t -> Trace.t option -> unit

val trace : t -> Trace.t option

(** Attach (or detach) a causal-DAG recorder for critical-path profiling,
    same contract as tracing: with [None] every hook is one field read,
    and a recorded run's simulated output is bit-identical. *)
val set_crit : t -> Crit.t option -> unit

val crit : t -> Crit.t option

(** [schedule t ~time f] runs [f] at virtual [time] on the event loop
    (used for message deliveries; [f] must not block). When a recorder is
    attached, [f] runs in the scheduling event's causal context. *)
val schedule : t -> time:float -> (unit -> unit) -> unit

(** Like {!schedule} but [f] runs with the given {!Crit} node as its
    causal context (used by message delivery, whose cause is the freshly
    recorded send→deliver arc). Plain push when no recorder is attached. *)
val schedule_cause : t -> time:float -> cause:int -> (unit -> unit) -> unit

(** {2 Fiber operations} — may only be called from inside a running fiber. *)

(** Advance the calling processor's clock by [cycles] (>= 0). *)
val advance : proc -> float -> unit

(** Like {!advance}, but when a recorder is attached the cycles are blamed
    on the given {!Crit} kind instead of the current activity (e.g.
    [Crit.k_send_ovh] for message send overhead). *)
val advance_as : proc -> int -> float -> unit

(** Block the calling fiber until the ivar is filled; the processor clock is
    advanced to at least the fill time. Returns the value. *)
val await : proc -> 'a Ivar.t -> 'a

(** {2 Running} *)

(** [run t program] spawns [program proc] on every processor at time 0 and
    runs to completion. Raises [Failure] on deadlock (fibers alive, no
    events); the message names each blocked processor and the clock it
    stopped at. May be called repeatedly (e.g., successive phases). *)
val run : t -> (proc -> unit) -> unit

(** Maximum processor clock observed (total simulated time, cycles). *)
val time : t -> float

(** Convenience: simulated time in seconds at a given clock rate. *)
val seconds : t -> cycles_per_sec:float -> float

(** {2 Global synchronization primitives} *)

module Barrier : sig
  type b

  (** [create t ~cost] makes a reusable barrier whose release adds
      [cost nprocs] cycles after the last arrival. *)
  val create : t -> cost:(int -> float) -> b

  (** Block until all processors have arrived at this generation. *)
  val wait : b -> proc -> unit
end
