(* Support structures for the conservative parallel discrete-event engine
   (see Machine's par mode).

   The whole point of the parallel engine is that its simulated output is
   bit-identical to the sequential engine's. The sequential engine breaks
   same-timestamp ties by global push order (Event_queue's seq counter).
   Observe that sequential push order is exactly lexicographic

     (execution position of the pushing event, push index within the pusher)

   because the sequential loop runs one event at a time: all pushes of an
   earlier event precede all pushes of a later one, and pushes within one
   event are in program order. Execution position in turn equals (time,
   order) rank — the loop pops in key order. So the parallel engine can
   reproduce the sequential tie-break without ever running sequentially: give
   every event an order of the form (rank of pusher, push index), where
   ranks are assigned to executed events in global key order.

   Ranks cannot be assigned online (shards execute concurrently), so orders
   start life as a [parent] pointer to the pusher's order plus the push
   index, and are resolved to packed integers at window boundaries, once the
   window's executed events have been globally sorted and ranked. Before
   resolution, two orders compare by their ancestor paths — (resolved
   ancestor key, idx, idx, ...) lexicographically — which is the same total
   order the resolved integers will have. An ancestor always resolves before
   its descendants (a pusher executes before its pushes), so paths are
   well-founded, and chains only span one window (every executed event is
   ranked when its window closes), so path compares stay shallow. *)

module Order = struct
  (* 22 bits of push index leaves 40+ for the rank: a single event would
     need 4M pushes to overflow (the largest real burst, a barrier release
     at 4096 nodes, is 3 orders of magnitude smaller). *)
  let idx_bits = 22
  let max_idx = 1 lsl idx_bits

  type t = {
    mutable key : int; (* pusher_rank lsl idx_bits lor idx; -1 = unresolved *)
    mutable rank : int; (* own execution rank; -1 until ranked *)
    parent : t option; (* pusher's order; None for root orders *)
    idx : int; (* push index within the pusher *)
  }

  let dummy = { key = 0; rank = 0; parent = None; idx = 0 }

  (* A root order with an explicit packed key: initial spawns, whose
     relative order is fixed by the spawner, not by a pusher event. *)
  let root ~rank = { key = rank lsl idx_bits; rank = -1; parent = None; idx = 0 }

  let child parent ~idx =
    if idx >= max_idx then failwith "Pdes.Order.child: push index overflow";
    { key = -1; rank = -1; parent = Some parent; idx }

  (* Resolve [o]'s packed key if its pusher has been ranked (memoized). *)
  let key o =
    if o.key >= 0 then o.key
    else
      match o.parent with
      | Some p when p.rank >= 0 ->
          let k = (p.rank lsl idx_bits) lor o.idx in
          o.key <- k;
          k
      | _ -> -1

  (* Total order matching the packed-integer order after resolution, and
     — crucially — time-invariant: a verdict reached while a key is still
     unresolved never flips once ranks are assigned. An unresolved order's
     pusher executes in the current window, so its rank (assigned at the
     window close) exceeds every rank already assigned: at equal event
     times, resolved orders precede unresolved ones. Two unresolved
     orders' eventual pusher ranks follow the pushers' own order (that is
     exactly the order the window close ranks them in), so the comparison
     recurses into the pushers; a shared pusher falls through to the push
     index. Lexicographic ancestor-path comparison would NOT be safe
     here: a pusher's own later pushes (high index) sequentially precede
     everything its earlier-pushed children push when they execute, so
     lineage order and push-counter order disagree. *)
  let rec compare a b =
    if a == b then 0
    else
      let ka = key a and kb = key b in
      if ka >= 0 && kb >= 0 then Int.compare ka kb
      else if ka >= 0 then -1
      else if kb >= 0 then 1
      else
        let c = compare (Option.get a.parent) (Option.get b.parent) in
        if c <> 0 then c else Int.compare a.idx b.idx
end

(* A 4-ary min-heap on (time, Order.t), the parallel sibling of
   Event_queue. Each entry also carries the event's owning processor (for
   causality checks), the order its pushes are children of, and the first
   push index (continuation events inherit their pusher's order so their
   pushes tie-break exactly like the sequential engine's inline execution
   of the same code). *)
module Pq = struct
  type t = {
    mutable times : float array;
    mutable ords : Order.t array;
    mutable owners : int array;
    mutable parents : Order.t array; (* order this event's pushes descend from *)
    mutable bases : int array; (* first push index *)
    mutable thunks : (unit -> unit) array;
    mutable size : int;
  }

  let create () =
    {
      times = Array.make 64 0.;
      ords = Array.make 64 Order.dummy;
      owners = Array.make 64 0;
      parents = Array.make 64 Order.dummy;
      bases = Array.make 64 0;
      thunks = Array.make 64 ignore;
      size = 0;
    }

  let length q = q.size
  let is_empty q = q.size = 0
  let min_time q = if q.size = 0 then infinity else q.times.(0)

  let grow q =
    let cap = 2 * Array.length q.times in
    let blit : 'a. 'a array -> 'a -> 'a array =
     fun a dummy ->
      let b = Array.make cap dummy in
      Array.blit a 0 b 0 q.size;
      b
    in
    q.times <- blit q.times 0.;
    q.ords <- blit q.ords Order.dummy;
    q.owners <- blit q.owners 0;
    q.parents <- blit q.parents Order.dummy;
    q.bases <- blit q.bases 0;
    q.thunks <- blit q.thunks ignore

  let lt q i time ord =
    let ti = q.times.(i) in
    ti < time || (ti = time && Order.compare q.ords.(i) ord < 0)

  let set q i time ord owner parent base thunk =
    q.times.(i) <- time;
    q.ords.(i) <- ord;
    q.owners.(i) <- owner;
    q.parents.(i) <- parent;
    q.bases.(i) <- base;
    q.thunks.(i) <- thunk

  let copy q dst src =
    set q dst q.times.(src) q.ords.(src) q.owners.(src) q.parents.(src)
      q.bases.(src) q.thunks.(src)

  let push q ~time ~ord ~owner ~parent ~base thunk =
    if not (Float.is_finite time) || time < 0. then
      invalid_arg "Pdes.Pq.push: bad time";
    if q.size = Array.length q.times then grow q;
    let i = ref q.size in
    q.size <- q.size + 1;
    let placed = ref false in
    while (not !placed) && !i > 0 do
      let p = (!i - 1) lsr 2 in
      if lt q p time ord then placed := true
      else begin
        copy q !i p;
        i := p
      end
    done;
    set q !i time ord owner parent base thunk

  (* Popped-entry slots, Event_queue-style: drain loops allocate nothing. *)
  type popped = {
    mutable p_time : float;
    mutable p_ord : Order.t;
    mutable p_owner : int;
    mutable p_parent : Order.t;
    mutable p_base : int;
    mutable p_thunk : unit -> unit;
  }

  let make_popped () =
    {
      p_time = 0.;
      p_ord = Order.dummy;
      p_owner = 0;
      p_parent = Order.dummy;
      p_base = 0;
      p_thunk = ignore;
    }

  let pop_min q (out : popped) =
    if q.size = 0 then false
    else begin
      out.p_time <- q.times.(0);
      out.p_ord <- q.ords.(0);
      out.p_owner <- q.owners.(0);
      out.p_parent <- q.parents.(0);
      out.p_base <- q.bases.(0);
      out.p_thunk <- q.thunks.(0);
      let n = q.size - 1 in
      q.size <- n;
      if n > 0 then begin
        let time = q.times.(n) and ord = q.ords.(n) in
        let owner = q.owners.(n)
        and parent = q.parents.(n)
        and base = q.bases.(n)
        and thunk = q.thunks.(n) in
        q.thunks.(n) <- ignore;
        let i = ref 0 in
        let placed = ref false in
        while not !placed do
          let base_c = (!i lsl 2) + 1 in
          if base_c >= n then placed := true
          else begin
            let best = ref base_c in
            let last = if base_c + 3 < n then base_c + 3 else n - 1 in
            for c = base_c + 1 to last do
              if lt q c q.times.(!best) q.ords.(!best) then best := c
            done;
            if lt q !best time ord then begin
              copy q !i !best;
              i := !best
            end
            else placed := true
          end
        done;
        set q !i time ord owner parent base thunk
      end
      else q.thunks.(0) <- ignore;
      true
    end
end
