(** A low-overhead event tracer keyed to simulated time.

    Instrumentation points record spans (protocol calls, barrier
    generations, lock holds) and send->deliver arcs into an in-memory
    buffer; {!write_file} emits Chrome trace-event JSON (loadable in
    chrome://tracing or Perfetto) with one "thread" row per simulated
    processor. Timestamps are simulated cycles. Recording never advances a
    virtual clock, so traced runs produce bit-identical simulated output. *)

type ev = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'b'/'e' async begin/end, 'i' instant *)
  ts : float;
  dur : float;
  tid : int;
  id : int;
  args : (string * int) list;
}

type t

val create : unit -> t

(** Number of buffered events. *)
val n_events : t -> int

(** A completed span on processor [tid]: [[ts, ts + dur]]. *)
val span :
  t -> name:string -> cat:string -> tid:int -> ts:float -> dur:float ->
  ?args:(string * int) list -> unit -> unit

val instant :
  t -> name:string -> cat:string -> tid:int -> ts:float ->
  ?args:(string * int) list -> unit -> unit

(** A send->deliver arc from [tid_src] at [ts] to [tid_dst] at [ts_end],
    emitted as an async-nestable begin/end pair sharing a fresh id. *)
val arc :
  t -> name:string -> cat:string -> tid_src:int -> tid_dst:int -> ts:float ->
  ts_end:float -> ?args:(string * int) list -> unit -> unit

(** [lock_acquired]/[lock_released] bracket a lock hold; the release emits a
    ["lock.hold"] span (category ["lock"]) covering acquire to release. *)
val lock_acquired : t -> tid:int -> rid:int -> ts:float -> unit
val lock_released : t -> tid:int -> rid:int -> ts:float -> unit

(** Parallel-engine hook: install (or clear) a tag function returning the
    executing event's (order, push index). While installed, records append
    under an internal mutex (so shards may record concurrently) and the
    dump emits them sorted by tag — sequential append order — with
    async-pair ids renumbered by first appearance, making the serialized
    file byte-identical to a sequential run's. The sequential engine never
    installs one and pays nothing. *)
val set_par : t -> (unit -> Pdes.Order.t * int) option -> unit

val to_buffer : t -> nprocs:int -> Buffer.t -> unit
val write_file : t -> nprocs:int -> string -> unit
