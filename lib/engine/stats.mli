(** Named counters, dimensioned counter families, and fixed-bucket
    histograms accumulated during a simulation run.

    Names are interned to dense integer slots; hot callers intern once at
    module initialization and bump counters by id, which costs an array
    load/store per event instead of a string-keyed hash lookup. The string
    API remains for tests and one-off queries. *)

type t

(** A counter's interned slot. Interning is global (shared by all stats
    instances and all domains) and thread-safe. *)
type id

(** A dimensioned counter family: one named counter per small integer index
    (node id, space id, region id, link id). Interned like {!id}. *)
type fam

(** A fixed-bucket histogram, with limits declared at intern time. *)
type hist

val intern : string -> id

(** [fam name] interns a counter family. *)
val fam : string -> fam

(** [hist name ~limits] interns a histogram with the given strictly
    increasing bucket limits. A value [v] lands in the first bucket whose
    limit satisfies [v <= limit] ("le" semantics); values above the last
    limit land in an extra overflow bucket. Raises [Invalid_argument] on
    empty or non-increasing limits, or if [name] was already interned with
    different limits. *)
val hist : string -> limits:float array -> hist

val create : unit -> t
val add_id : t -> id -> float -> unit
val incr_id : t -> id -> unit
val get_id : t -> id -> float

val add : t -> string -> float -> unit
val incr : t -> string -> unit
val get : t -> string -> float
val reset : t -> unit

(** [add_dim t f ix v] bumps cell [ix] of family [f]. Raises
    [Invalid_argument] if [ix < 0]. *)
val add_dim : t -> fam -> int -> float -> unit

val incr_dim : t -> fam -> int -> unit
val get_dim : t -> fam -> int -> float

(** Sparse variants of {!add_dim}/{!incr_dim} for families whose index
    space is huge (e.g. nprocs² link ids) but whose populated set is small:
    cells live in a per-family hash table, so memory is proportional to the
    indexes actually touched rather than the largest one. A family may mix
    dense and sparse cells; {!get_dim}, {!dim_cells} and {!dims_to_list}
    sum both populations. *)
val add_dim_sparse : t -> fam -> int -> float -> unit

val incr_dim_sparse : t -> fam -> int -> unit

(** The nonzero [(index, value)] cells of family [f], in index order. *)
val dim_cells : t -> fam -> (int * float) list

(** [dim_open t f ~size] grows family [f] to at least [size] cells and
    returns the live cell array for direct indexing — the per-event cost
    becomes one array store. The reference stays valid as long as no later
    access grows the family past [size], so callers must fix the dimension
    up front (e.g. [nprocs] or [nprocs * nprocs]). Raises
    [Invalid_argument] if [size <= 0]. *)
val dim_open : t -> fam -> size:int -> float array

(** [bucket limits v] is the index of [v]'s bucket under "le" semantics
    (see {!hist}): the first [i] with [v <= limits.(i)], or
    [Array.length limits] for overflow. *)
val bucket : float array -> float -> int

(** [observe t h v] increments [v]'s bucket. *)
val observe : t -> hist -> float -> unit

(** [hist_counts t h] returns [(limits, counts)]; [counts] has one more
    entry than [limits] (the overflow bucket). *)
val hist_counts : t -> hist -> float array * float array

(** The live [(limits, counts)] arrays of [h], for hot paths that bucket
    inline with {!bucket} instead of calling {!observe} per event. Treat
    [limits] as read-only. *)
val hist_live : t -> hist -> float array * float array

(** [merge_into dst src] sums every counter, family cell, and histogram
    bucket of [src] into [dst] (used by the parallel engine to fold
    per-shard accumulators into the run's root instance). [src] is not
    modified. *)
val merge_into : t -> t -> unit

(** All scalar counters with a nonzero value, sorted by name. *)
val to_list : t -> (string * float) list

(** All families with at least one nonzero cell, sorted by name; each with
    its nonzero [(index, value)] cells in index order. *)
val dims_to_list : t -> (string * (int * float) list) list

(** All histograms with at least one observation, sorted by name. *)
val hists_to_list : t -> (string * (float array * float array)) list

val pp : Format.formatter -> t -> unit
