(** Named counters accumulated during a simulation run.

    Names are interned to dense integer slots; hot callers intern once at
    module initialization and bump counters by id, which costs an array
    load/store per event instead of a string-keyed hash lookup. The string
    API remains for tests and one-off queries. *)

type t

(** A counter's interned slot. Interning is global (shared by all stats
    instances and all domains) and thread-safe. *)
type id

val intern : string -> id

val create : unit -> t
val add_id : t -> id -> float -> unit
val incr_id : t -> id -> unit
val get_id : t -> id -> float

val add : t -> string -> float -> unit
val incr : t -> string -> unit
val get : t -> string -> float
val reset : t -> unit

(** All counters with a nonzero value, sorted by name. *)
val to_list : t -> (string * float) list

val pp : Format.formatter -> t -> unit
