(* A 4-ary implicit min-heap on (time, seq), stored in parallel arrays.

   The simulator pops one event per simulated action, so this is the hottest
   data structure in the tree. Three deliberate layout choices:

   - [times] is a bare [float array], which OCaml unboxes: the comparisons
     that dominate sift cost touch flat memory, never a boxed float.
   - A 4-ary heap halves the tree depth of the binary heap; sift-down does
     slightly more comparisons per level but far fewer cache-missing levels.
   - Popping writes the result into the per-queue [popped_*] slots instead
     of allocating a [Some (time, thunk)] pair, so draining a run of N
     events allocates nothing. *)

type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable thunks : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  mutable popped_time : float; (* last event removed by [pop_min] *)
  mutable popped_thunk : unit -> unit;
}

let initial_capacity = 256

let create () =
  {
    times = Array.make initial_capacity 0.;
    seqs = Array.make initial_capacity 0;
    thunks = Array.make initial_capacity ignore;
    size = 0;
    next_seq = 0;
    popped_time = 0.;
    popped_thunk = ignore;
  }

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  let thunks = Array.make cap ignore in
  Array.blit t.thunks 0 thunks 0 t.size;
  t.thunks <- thunks

(* Insert (time, seq, thunk) by walking a hole up from [i]: elements move at
   most once and the new entry is written exactly once. *)
let sift_up t i time seq thunk =
  let i = ref i in
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let pt = t.times.(parent) in
    if pt < time || (pt = time && t.seqs.(parent) < seq) then placed := true
    else begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.thunks.(!i) <- t.thunks.(parent);
      i := parent
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.thunks.(!i) <- thunk

(* Walk a hole down from the root, pulling the smallest of up to four
   children up each level, until (time, seq) fits. *)
let sift_down t time seq thunk =
  let size = t.size in
  let i = ref 0 in
  let placed = ref false in
  while not !placed do
    let base = (!i lsl 2) + 1 in
    if base >= size then placed := true
    else begin
      let best = ref base in
      let bt = ref t.times.(base) in
      let bs = ref t.seqs.(base) in
      let last = if base + 3 < size then base + 3 else size - 1 in
      for c = base + 1 to last do
        let ct = t.times.(c) in
        if ct < !bt || (ct = !bt && t.seqs.(c) < !bs) then begin
          best := c;
          bt := ct;
          bs := t.seqs.(c)
        end
      done;
      if !bt < time || (!bt = time && !bs < seq) then begin
        t.times.(!i) <- !bt;
        t.seqs.(!i) <- !bs;
        t.thunks.(!i) <- t.thunks.(!best);
        i := !best
      end
      else placed := true
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.thunks.(!i) <- thunk

let push t ~time thunk =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = t.size in
  t.size <- i + 1;
  sift_up t i time seq thunk

let pop_min t =
  if t.size = 0 then false
  else begin
    t.popped_time <- t.times.(0);
    t.popped_thunk <- t.thunks.(0);
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let time = t.times.(n) in
      let seq = t.seqs.(n) in
      let thunk = t.thunks.(n) in
      t.thunks.(n) <- ignore;
      sift_down t time seq thunk
    end
    else t.thunks.(0) <- ignore;
    true
  end

let popped_time t = t.popped_time
let popped_thunk t = t.popped_thunk

let drain t f =
  while pop_min t do
    f t.popped_time t.popped_thunk
  done;
  (* Drop the last popped closure: leaving it in [popped_thunk] would keep
     one arbitrary run's whole closure graph (captured regions, handlers,
     continuations) live for as long as the queue object is — across every
     later grid cell that reuses the machine. *)
  t.popped_thunk <- ignore

let is_empty t = t.size = 0
let length t = t.size
let peek_time t = if t.size = 0 then None else Some t.times.(0)
