(* A 4-ary implicit min-heap on (time, order), stored in parallel arrays.

   The simulator pops one event per simulated action, so this is the hottest
   data structure in the tree. Three deliberate layout choices:

   - [times] is a bare [float array], which OCaml unboxes: the comparisons
     that dominate sift cost touch flat memory, never a boxed float.
   - A 4-ary heap halves the tree depth of the binary heap; sift-down does
     slightly more comparisons per level but far fewer cache-missing levels.
   - Popping writes the result into the per-queue [popped_*] slots instead
     of allocating a [Some (time, thunk)] pair, so draining a run of N
     events allocates nothing.

   Ties (same timestamp) are broken by a pluggable policy. Rather than a
   second tie-break array (which measurably slows the sifts), the policy's
   per-event priority [key] and the insertion number [seq] are packed into
   one word, [order = key lsl seq_bits lor seq], compared as a single int:
   lexicographic (key, seq) order at the memory traffic of the original
   (time, seq) heap. Under the default [Fifo] every key is 0, so [order]
   IS [seq] and ordering degenerates to insertion order — exactly the
   historical behaviour, bit-identical to builds without policy support. *)

type policy =
  | Fifo
  | Random of int (* seed *)
  | Rotate of { stride : int; offset : int }

let validate_policy = function
  | Fifo | Random _ -> ()
  | Rotate { stride; offset } ->
      if stride < 2 || offset < 0 || offset >= stride then
        invalid_arg "Event_queue: Rotate needs stride >= 2 and 0 <= offset < stride"

let policy_to_string = function
  | Fifo -> "fifo"
  | Random seed -> Printf.sprintf "random:%d" seed
  | Rotate { stride; offset } -> Printf.sprintf "rotate:%d:%d" stride offset

let policy_of_string s =
  let fail () = invalid_arg ("Event_queue.policy_of_string: " ^ s) in
  match String.split_on_char ':' s with
  | [ "fifo" ] -> Fifo
  | [ "random"; seed ] -> (
      match int_of_string_opt seed with Some n -> Random n | None -> fail ())
  | [ "rotate"; stride; offset ] -> (
      match (int_of_string_opt stride, int_of_string_opt offset) with
      | Some st, Some off when st >= 2 && off >= 0 && off < st ->
          Rotate { stride = st; offset = off }
      | _ -> fail ())
  | _ -> fail ()

(* 40 bits of seq leaves 22 for the key on 63-bit ints. A queue would need
   a trillion pushes to overflow; [push] checks anyway (one compare). *)
let seq_bits = 40
let max_seq = 1 lsl seq_bits
let max_key = 1 lsl (62 - seq_bits)

type t = {
  mutable times : float array;
  mutable orders : int array; (* key lsl seq_bits lor seq *)
  mutable thunks : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  mutable popped_time : float; (* last event removed by [pop_min] *)
  mutable popped_thunk : unit -> unit;
  policy : policy;
  rng : Det_rng.t option; (* Some iff policy is Random *)
}

let initial_capacity = 256

let create ?(policy = Fifo) () =
  validate_policy policy;
  {
    times = Array.make initial_capacity 0.;
    orders = Array.make initial_capacity 0;
    thunks = Array.make initial_capacity ignore;
    size = 0;
    next_seq = 0;
    popped_time = 0.;
    popped_thunk = ignore;
    policy;
    rng = (match policy with Random seed -> Some (Det_rng.create seed) | _ -> None);
  }

let policy t = t.policy

(* The policy's priority for the event about to get [seq]. Keys only matter
   relative to other same-timestamp events; [Rotate] delays every
   [stride]-th insertion (round-robin by [offset]) behind its tie group,
   [Random] draws a fresh priority per event from the seeded stream (push
   order is itself deterministic, so the whole run is deterministic per
   seed). *)
let next_key t seq =
  match t.policy with
  | Fifo -> 0
  | Random _ -> Det_rng.int (Option.get t.rng) max_key
  | Rotate { stride; offset } -> if seq mod stride = offset then 1 else 0

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let orders = Array.make cap 0 in
  Array.blit t.orders 0 orders 0 t.size;
  t.orders <- orders;
  let thunks = Array.make cap ignore in
  Array.blit t.thunks 0 thunks 0 t.size;
  t.thunks <- thunks

(* Insert (time, order, thunk) by walking a hole up from [i]: elements move
   at most once and the new entry is written exactly once.

   Both sifts run once per simulated event — the simulator's innermost
   loop — so they bind the arrays to locals (a mutable record field
   cannot be cached across the stores inside the loop) and use unchecked
   accesses: every index is either the hole [i] (< capacity, ensured by
   [grow]/[pop_min] before the call), a parent (i-1)/4 < i, or a child
   index already compared against [size]. *)
let sift_up t i time order thunk =
  let times = t.times and orders = t.orders and thunks = t.thunks in
  let i = ref i in
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let pt = Array.unsafe_get times parent in
    if pt < time || (pt = time && Array.unsafe_get orders parent < order)
    then placed := true
    else begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set orders !i (Array.unsafe_get orders parent);
      Array.unsafe_set thunks !i (Array.unsafe_get thunks parent);
      i := parent
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set orders !i order;
  Array.unsafe_set thunks !i thunk

(* Walk a hole down from the root, pulling the smallest of up to four
   children up each level, until (time, order) fits. *)
let sift_down t time order thunk =
  let times = t.times and orders = t.orders and thunks = t.thunks in
  let size = t.size in
  let i = ref 0 in
  let placed = ref false in
  while not !placed do
    let base = (!i lsl 2) + 1 in
    if base >= size then placed := true
    else begin
      let best = ref base in
      let bt = ref (Array.unsafe_get times base) in
      let bo = ref (Array.unsafe_get orders base) in
      let last = if base + 3 < size then base + 3 else size - 1 in
      for c = base + 1 to last do
        let ct = Array.unsafe_get times c in
        if ct < !bt || (ct = !bt && Array.unsafe_get orders c < !bo)
        then begin
          best := c;
          bt := ct;
          bo := Array.unsafe_get orders c
        end
      done;
      if !bt < time || (!bt = time && !bo < order) then begin
        Array.unsafe_set times !i !bt;
        Array.unsafe_set orders !i !bo;
        Array.unsafe_set thunks !i (Array.unsafe_get thunks !best);
        i := !best
      end
      else placed := true
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set orders !i order;
  Array.unsafe_set thunks !i thunk

let push t ~time thunk =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  if seq >= max_seq then invalid_arg "Event_queue.push: seq overflow";
  t.next_seq <- seq + 1;
  let order = (next_key t seq lsl seq_bits) lor seq in
  let i = t.size in
  t.size <- i + 1;
  sift_up t i time order thunk

let pop_min t =
  if t.size = 0 then false
  else begin
    t.popped_time <- t.times.(0);
    t.popped_thunk <- t.thunks.(0);
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let time = t.times.(n) in
      let order = t.orders.(n) in
      let thunk = t.thunks.(n) in
      t.thunks.(n) <- ignore;
      sift_down t time order thunk
    end
    else t.thunks.(0) <- ignore;
    true
  end

let popped_time t = t.popped_time
let popped_thunk t = t.popped_thunk

let drain t f =
  while pop_min t do
    f t.popped_time t.popped_thunk
  done;
  (* Drop the last popped closure: leaving it in [popped_thunk] would keep
     one arbitrary run's whole closure graph (captured regions, handlers,
     continuations) live for as long as the queue object is — across every
     later grid cell that reuses the machine. *)
  t.popped_thunk <- ignore

let is_empty t = t.size = 0
let length t = t.size
let peek_time t = if t.size = 0 then None else Some t.times.(0)
