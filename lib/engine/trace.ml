(* A low-overhead event tracer keyed to *simulated* time.

   The simulator's instrumentation points (protocol-call dispatch, barrier
   generations, lock holds, message send->deliver arcs) call into this
   module only when a tracer is attached to the machine; with no tracer the
   hot paths pay a single field read, and a traced run records events
   without ever advancing a virtual clock, so simulated output is
   bit-identical to an untraced run.

   Events buffer in memory as plain records and serialize on demand to the
   Chrome trace-event JSON format (chrome://tracing, Perfetto): one process,
   one "thread" row per simulated processor, timestamps in simulated cycles
   (the viewer labels them "us"; 1 tick = 1 cycle). Spans are complete
   events (ph "X"); message arcs are async-nestable pairs (ph "b"/"e")
   matched by id, which both viewers draw as an arc-like bar spanning
   send to delivery. *)

type ev = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'b'/'e' async begin/end, 'i' instant *)
  ts : float; (* simulated cycles *)
  dur : float; (* complete events only *)
  tid : int; (* simulated processor *)
  id : int; (* async pair id, -1 when unused *)
  args : (string * int) list;
}

type t = {
  mutable evs : ev array;
  mutable n : int;
  mutable next_id : int; (* async (message-arc) id generator *)
  open_locks : (int * int, float) Hashtbl.t; (* (tid, rid) -> acquire ts *)
  (* Parallel-engine support. With [par = None] (always the case for the
     sequential engine) every path below is the historical single-domain
     code. The parallel engine installs a tag function returning the
     executing event's (order, push index): records are then appended under
     [pmutex] from whichever shard produced them and the dump emits them
     sorted by tag — which is exactly sequential append order, so the
     serialized file is byte-identical to a sequential run's. *)
  mutable par : (unit -> Pdes.Order.t * int) option;
  pmutex : Mutex.t;
  mutable tags : (Pdes.Order.t * int) array;
  mutable tagged : bool;
}

let no_tag = (Pdes.Order.dummy, -1)

let create () =
  {
    evs = [||];
    n = 0;
    next_id = 0;
    open_locks = Hashtbl.create 32;
    par = None;
    pmutex = Mutex.create ();
    tags = [||];
    tagged = false;
  }

let n_events t = t.n
let set_par t f = t.par <- f

let dummy =
  { name = ""; cat = ""; ph = 'i'; ts = 0.; dur = 0.; tid = 0; id = -1; args = [] }

let push_raw t ev =
  if t.n = Array.length t.evs then begin
    let a = Array.make (max 1024 (2 * t.n)) dummy in
    Array.blit t.evs 0 a 0 t.n;
    t.evs <- a
  end;
  t.evs.(t.n) <- ev;
  t.n <- t.n + 1

let push t ev =
  match t.par with
  | None -> push_raw t ev
  | Some tag ->
      Mutex.protect t.pmutex (fun () ->
          push_raw t ev;
          if Array.length t.tags < Array.length t.evs then begin
            let a = Array.make (Array.length t.evs) no_tag in
            Array.blit t.tags 0 a 0 (t.n - 1);
            t.tags <- a
          end;
          t.tags.(t.n - 1) <- tag ();
          t.tagged <- true)

let span t ~name ~cat ~tid ~ts ~dur ?(args = []) () =
  push t { name; cat; ph = 'X'; ts; dur; tid; id = -1; args }

let instant t ~name ~cat ~tid ~ts ?(args = []) () =
  push t { name; cat; ph = 'i'; ts; dur = 0.; tid; id = -1; args }

(* A send->deliver arc: an async pair anchored on the source row at [ts]
   and the destination row at [ts_end]. Both times are known at send time
   (delivery is scheduled then), so the pair is recorded at once. Pair ids
   allocated under the parallel engine reflect wall-clock interleaving;
   the dump renumbers them in (sorted) record order, which is the order a
   sequential run would have allocated them in. *)
let arc t ~name ~cat ~tid_src ~tid_dst ~ts ~ts_end ?(args = []) () =
  let emit push1 =
    let id = t.next_id in
    t.next_id <- id + 1;
    push1 { name; cat; ph = 'b'; ts; dur = 0.; tid = tid_src; id; args };
    push1 { name; cat; ph = 'e'; ts = ts_end; dur = 0.; tid = tid_dst; id; args = [] }
  in
  match t.par with
  | None -> emit (push_raw t)
  | Some tag ->
      Mutex.protect t.pmutex (fun () ->
          emit (fun ev ->
              push_raw t ev;
              if Array.length t.tags < Array.length t.evs then begin
                let a = Array.make (Array.length t.evs) no_tag in
                Array.blit t.tags 0 a 0 (t.n - 1);
                t.tags <- a
              end;
              t.tags.(t.n - 1) <- tag ();
              t.tagged <- true))

(* Lock-hold spans: the acquire site deposits its timestamp, the release
   site emits the [lock.hold] span covering the whole hold. A release with
   no recorded acquire (lock taken before tracing started) is dropped. *)
let lock_acquired t ~tid ~rid ~ts =
  match t.par with
  | None -> Hashtbl.replace t.open_locks (tid, rid) ts
  | Some _ ->
      Mutex.protect t.pmutex (fun () ->
          Hashtbl.replace t.open_locks (tid, rid) ts)

let lock_released t ~tid ~rid ~ts =
  let t0 =
    match t.par with
    | None ->
        let r = Hashtbl.find_opt t.open_locks (tid, rid) in
        if r <> None then Hashtbl.remove t.open_locks (tid, rid);
        r
    | Some _ ->
        Mutex.protect t.pmutex (fun () ->
            let r = Hashtbl.find_opt t.open_locks (tid, rid) in
            if r <> None then Hashtbl.remove t.open_locks (tid, rid);
            r)
  in
  match t0 with
  | None -> ()
  | Some t0 ->
      span t ~name:"lock.hold" ~cat:"lock" ~tid ~ts:t0 ~dur:(ts -. t0)
        ~args:[ ("rid", rid) ] ()

(* ---- Chrome trace-event JSON serialization ---- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_ev buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%d,\"ts\":%.17g"
       (escape ev.name) (escape ev.cat) ev.ph ev.tid ev.ts);
  if ev.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.17g" ev.dur);
  if ev.id >= 0 then Buffer.add_string buf (Printf.sprintf ",\"id\":%d" ev.id);
  if ev.ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape k) v))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_buffer t ~nprocs buf =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"ace simulated machine\"}}";
  for tid = 0 to nprocs - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc %d\"}}"
         tid tid);
    Buffer.add_string buf
      (Printf.sprintf
         ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
         tid tid)
  done;
  (* Parallel-engine records carry (event order, push index) tags; emitting
     in tag order reproduces sequential append order exactly (untagged
     records — none in practice — keep their original position up front).
     Async-pair ids are renumbered by first appearance in that order, which
     is the order a sequential run allocates them in. *)
  if t.tagged then begin
    let perm = Array.init t.n Fun.id in
    let tag i = if i < Array.length t.tags then t.tags.(i) else no_tag in
    Array.sort
      (fun i j ->
        let oi, xi = tag i and oj, xj = tag j in
        let c = Pdes.Order.compare oi oj in
        if c <> 0 then c
        else if xi <> xj then Int.compare xi xj
        else Int.compare i j)
      perm;
    let ids = Hashtbl.create 64 in
    let next = ref 0 in
    Array.iter
      (fun i ->
        Buffer.add_string buf ",\n";
        let ev = t.evs.(i) in
        let ev =
          if ev.id < 0 then ev
          else begin
            let id =
              match Hashtbl.find_opt ids ev.id with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.add ids ev.id id;
                  id
            in
            { ev with id }
          end
        in
        add_ev buf ev)
      perm
  end
  else
    for i = 0 to t.n - 1 do
      Buffer.add_string buf ",\n";
      add_ev buf t.evs.(i)
    done;
  Buffer.add_string buf "\n]}\n"

let write_file t ~nprocs path =
  let buf = Buffer.create (256 * (t.n + 1)) in
  to_buffer t ~nprocs buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
