(* A low-overhead event tracer keyed to *simulated* time.

   The simulator's instrumentation points (protocol-call dispatch, barrier
   generations, lock holds, message send->deliver arcs) call into this
   module only when a tracer is attached to the machine; with no tracer the
   hot paths pay a single field read, and a traced run records events
   without ever advancing a virtual clock, so simulated output is
   bit-identical to an untraced run.

   Events buffer in memory as plain records and serialize on demand to the
   Chrome trace-event JSON format (chrome://tracing, Perfetto): one process,
   one "thread" row per simulated processor, timestamps in simulated cycles
   (the viewer labels them "us"; 1 tick = 1 cycle). Spans are complete
   events (ph "X"); message arcs are async-nestable pairs (ph "b"/"e")
   matched by id, which both viewers draw as an arc-like bar spanning
   send to delivery. *)

type ev = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'b'/'e' async begin/end, 'i' instant *)
  ts : float; (* simulated cycles *)
  dur : float; (* complete events only *)
  tid : int; (* simulated processor *)
  id : int; (* async pair id, -1 when unused *)
  args : (string * int) list;
}

type t = {
  mutable evs : ev array;
  mutable n : int;
  mutable next_id : int; (* async (message-arc) id generator *)
  open_locks : (int * int, float) Hashtbl.t; (* (tid, rid) -> acquire ts *)
}

let create () =
  { evs = [||]; n = 0; next_id = 0; open_locks = Hashtbl.create 32 }

let n_events t = t.n

let dummy =
  { name = ""; cat = ""; ph = 'i'; ts = 0.; dur = 0.; tid = 0; id = -1; args = [] }

let push t ev =
  if t.n = Array.length t.evs then begin
    let a = Array.make (max 1024 (2 * t.n)) dummy in
    Array.blit t.evs 0 a 0 t.n;
    t.evs <- a
  end;
  t.evs.(t.n) <- ev;
  t.n <- t.n + 1

let span t ~name ~cat ~tid ~ts ~dur ?(args = []) () =
  push t { name; cat; ph = 'X'; ts; dur; tid; id = -1; args }

let instant t ~name ~cat ~tid ~ts ?(args = []) () =
  push t { name; cat; ph = 'i'; ts; dur = 0.; tid; id = -1; args }

(* A send->deliver arc: an async pair anchored on the source row at [ts]
   and the destination row at [ts_end]. Both times are known at send time
   (delivery is scheduled then), so the pair is recorded at once. *)
let arc t ~name ~cat ~tid_src ~tid_dst ~ts ~ts_end ?(args = []) () =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { name; cat; ph = 'b'; ts; dur = 0.; tid = tid_src; id; args };
  push t { name; cat; ph = 'e'; ts = ts_end; dur = 0.; tid = tid_dst; id; args = [] }

(* Lock-hold spans: the acquire site deposits its timestamp, the release
   site emits the [lock.hold] span covering the whole hold. A release with
   no recorded acquire (lock taken before tracing started) is dropped. *)
let lock_acquired t ~tid ~rid ~ts =
  Hashtbl.replace t.open_locks (tid, rid) ts

let lock_released t ~tid ~rid ~ts =
  match Hashtbl.find_opt t.open_locks (tid, rid) with
  | None -> ()
  | Some t0 ->
      Hashtbl.remove t.open_locks (tid, rid);
      span t ~name:"lock.hold" ~cat:"lock" ~tid ~ts:t0 ~dur:(ts -. t0)
        ~args:[ ("rid", rid) ] ()

(* ---- Chrome trace-event JSON serialization ---- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_ev buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%d,\"ts\":%.17g"
       (escape ev.name) (escape ev.cat) ev.ph ev.tid ev.ts);
  if ev.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.17g" ev.dur);
  if ev.id >= 0 then Buffer.add_string buf (Printf.sprintf ",\"id\":%d" ev.id);
  if ev.ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape k) v))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_buffer t ~nprocs buf =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"ace simulated machine\"}}";
  for tid = 0 to nprocs - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc %d\"}}"
         tid tid);
    Buffer.add_string buf
      (Printf.sprintf
         ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
         tid tid)
  done;
  for i = 0 to t.n - 1 do
    Buffer.add_string buf ",\n";
    add_ev buf t.evs.(i)
  done;
  Buffer.add_string buf "\n]}\n"

let write_file t ~nprocs path =
  let buf = Buffer.create (256 * (t.n + 1)) in
  to_buffer t ~nprocs buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
