(* Counter names are static program text (a handful of sites name them at
   module initialization), while counter values are bumped once per
   simulated message. So names are interned once into dense global ids and
   a stats instance is just a float array indexed by id: the per-message
   hot path is an array load/store, not a string hash plus bucket walk.

   The intern table is global and mutex-protected so simulations running on
   parallel domains can share it; each [t] (the values) belongs to a single
   simulation and is never shared across domains. *)

type id = int

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref ([||] : string array)
let n_ids = ref 0

let intern name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table name with
      | Some sid -> sid
      | None ->
          let sid = !n_ids in
          if sid = Array.length !names then begin
            let a = Array.make (max 16 (2 * sid)) "" in
            Array.blit !names 0 a 0 sid;
            names := a
          end;
          !names.(sid) <- name;
          incr n_ids;
          Hashtbl.add table name sid;
          sid)

type t = { mutable slots : float array }

let create () = { slots = Array.make (max 16 !n_ids) 0. }

let ensure t sid =
  if sid >= Array.length t.slots then begin
    let a = Array.make (max (sid + 1) (2 * Array.length t.slots)) 0. in
    Array.blit t.slots 0 a 0 (Array.length t.slots);
    t.slots <- a
  end

let add_id t sid v =
  if sid >= Array.length t.slots then ensure t sid;
  t.slots.(sid) <- t.slots.(sid) +. v

let incr_id t sid = add_id t sid 1.
let get_id t sid = if sid < Array.length t.slots then t.slots.(sid) else 0.
let add t name v = add_id t (intern name) v
let incr t name = add t name 1.
let get t name = get_id t (intern name)
let reset t = Array.fill t.slots 0 (Array.length t.slots) 0.

let to_list t =
  let snapshot = Mutex.protect mutex (fun () -> Array.sub !names 0 !n_ids) in
  let acc = ref [] in
  for sid = Array.length snapshot - 1 downto 0 do
    let v = get_id t sid in
    if v <> 0. then acc := (snapshot.(sid), v) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %.0f@." k v) (to_list t)
