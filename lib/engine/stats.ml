(* Counter names are static program text (a handful of sites name them at
   module initialization), while counter values are bumped once per
   simulated message. So names are interned once into dense global ids and
   a stats instance is just a float array indexed by id: the per-message
   hot path is an array load/store, not a string hash plus bucket walk.

   The same scheme extends to two dimensioned forms:

   - counter *families*: a named counter with an integer dimension (space
     id, node id, link id, region id). A family interns once; a bump is two
     array loads and a store. Cell vectors grow on demand, so families
     indexed by region id stay proportional to the regions actually
     touched.

   - fixed-bucket *histograms*: bucket limits are declared at intern time
     (Prometheus-style "le" semantics: value v lands in the first bucket
     with v <= limit, or the overflow bucket past the last limit).

   The intern tables are global and mutex-protected so simulations running
   on parallel domains can share them; each [t] (the values) belongs to a
   single simulation and is never shared across domains. [create] snapshots
   the registry sizes under the same mutex — unsynchronized reads of the
   growing tables would race with [intern] on another domain. *)

type id = int
type fam = int
type hist = int

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref ([||] : string array)
let n_ids = ref 0
let fam_table : (string, int) Hashtbl.t = Hashtbl.create 16
let fam_names = ref ([||] : string array)
let n_fams = ref 0
let hist_table : (string, int) Hashtbl.t = Hashtbl.create 16
let hist_names = ref ([||] : string array)
let hist_limits = ref ([||] : float array array)
let n_hists = ref 0

(* Append [x] to the packed prefix of [!arr] at index [n], growing. *)
let append arr n x dummy =
  if n = Array.length !arr then begin
    let a = Array.make (max 16 (2 * n)) dummy in
    Array.blit !arr 0 a 0 n;
    arr := a
  end;
  !arr.(n) <- x

let intern name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table name with
      | Some sid -> sid
      | None ->
          let sid = !n_ids in
          append names sid name "";
          incr n_ids;
          Hashtbl.add table name sid;
          sid)

let fam name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt fam_table name with
      | Some fid -> fid
      | None ->
          let fid = !n_fams in
          append fam_names fid name "";
          incr n_fams;
          Hashtbl.add fam_table name fid;
          fid)

let hist name ~limits =
  if Array.length limits = 0 then invalid_arg "Stats.hist: no bucket limits";
  Array.iteri
    (fun i v ->
      if i > 0 && not (v > limits.(i - 1)) then
        invalid_arg "Stats.hist: limits must be strictly increasing")
    limits;
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt hist_table name with
      | Some hid ->
          if !hist_limits.(hid) <> limits then
            invalid_arg ("Stats.hist: conflicting limits for " ^ name);
          hid
      | None ->
          let hid = !n_hists in
          append hist_names hid name "";
          append hist_limits hid (Array.copy limits) [||];
          incr n_hists;
          Hashtbl.add hist_table name hid;
          hid)

type t = {
  mutable slots : float array;
  mutable fams : float array array; (* family id -> cells, grown on demand *)
  mutable fsparse : (int, float) Hashtbl.t option array;
      (* family id -> sparse cells, for families whose index space is huge
         (nprocs² link ids) but whose populated set is small: memory is
         proportional to the cells actually touched. A family may hold both
         dense and sparse cells; readers sum them. *)
  mutable hists : float array array; (* hist id -> bucket counts (limits+1) *)
  mutable hlimits : float array array;
      (* per-instance cache of each histogram's (immutable) limits: filled
         from the global registry under the mutex on first observation, so
         the per-observation path never touches shared state *)
}

let create () =
  let ids, fams, hists =
    Mutex.protect mutex (fun () -> (!n_ids, !n_fams, !n_hists))
  in
  {
    slots = Array.make (max 16 ids) 0.;
    fams = Array.make fams [||];
    fsparse = Array.make fams None;
    hists = Array.make hists [||];
    hlimits = Array.make hists [||];
  }

let ensure t sid =
  if sid >= Array.length t.slots then begin
    let a = Array.make (max (sid + 1) (2 * Array.length t.slots)) 0. in
    Array.blit t.slots 0 a 0 (Array.length t.slots);
    t.slots <- a
  end

let add_id t sid v =
  if sid >= Array.length t.slots then ensure t sid;
  t.slots.(sid) <- t.slots.(sid) +. v

let incr_id t sid = add_id t sid 1.
let get_id t sid = if sid < Array.length t.slots then t.slots.(sid) else 0.
let add t name v = add_id t (intern name) v
let incr t name = add t name 1.
let get t name = get_id t (intern name)

(* ---- dimensioned counters ---- *)

let fam_cells t f =
  if f >= Array.length t.fams then begin
    let a = Array.make (f + 1) [||] in
    Array.blit t.fams 0 a 0 (Array.length t.fams);
    t.fams <- a
  end;
  t.fams.(f)

let add_dim t f ix v =
  if ix < 0 then invalid_arg "Stats.add_dim: negative index";
  let cells = fam_cells t f in
  let cells =
    if ix < Array.length cells then cells
    else begin
      let a = Array.make (max (ix + 1) (max 8 (2 * Array.length cells))) 0. in
      Array.blit cells 0 a 0 (Array.length cells);
      t.fams.(f) <- a;
      a
    end
  in
  cells.(ix) <- cells.(ix) +. v

let incr_dim t f ix = add_dim t f ix 1.

(* ---- sparse family cells ---- *)

let sparse_table t f =
  if f >= Array.length t.fsparse then begin
    let a = Array.make (f + 1) None in
    Array.blit t.fsparse 0 a 0 (Array.length t.fsparse);
    t.fsparse <- a
  end;
  match t.fsparse.(f) with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 16 in
      t.fsparse.(f) <- Some h;
      h

let add_dim_sparse t f ix v =
  if ix < 0 then invalid_arg "Stats.add_dim_sparse: negative index";
  let h = sparse_table t f in
  let cur = match Hashtbl.find_opt h ix with Some c -> c | None -> 0. in
  Hashtbl.replace h ix (cur +. v)

let incr_dim_sparse t f ix = add_dim_sparse t f ix 1.

let get_dim_sparse t f ix =
  if f >= Array.length t.fsparse then 0.
  else
    match t.fsparse.(f) with
    | None -> 0.
    | Some h -> ( match Hashtbl.find_opt h ix with Some v -> v | None -> 0.)

(* Hot-path escape hatch: grow family [f] to at least [size] cells and hand
   the caller the live array for direct indexing. The reference stays valid
   while the family never grows past [size] — callers fix the dimension up
   front (e.g. nprocs or nprocs^2) and keep the array for the simulation's
   lifetime, turning a per-event [add_dim] call into one array store. *)
let dim_open t f ~size =
  if size <= 0 then invalid_arg "Stats.dim_open: size must be positive";
  add_dim t f (size - 1) 0.;
  t.fams.(f)

let get_dim t f ix =
  let dense =
    if f >= Array.length t.fams then 0.
    else
      let cells = t.fams.(f) in
      if ix < 0 || ix >= Array.length cells then 0. else cells.(ix)
  in
  dense +. get_dim_sparse t f ix

let dim_cells t f =
  let dense =
    if f >= Array.length t.fams then []
    else begin
      let cells = t.fams.(f) in
      let acc = ref [] in
      for ix = Array.length cells - 1 downto 0 do
        if cells.(ix) <> 0. then acc := (ix, cells.(ix)) :: !acc
      done;
      !acc
    end
  in
  let sparse =
    if f >= Array.length t.fsparse then []
    else
      match t.fsparse.(f) with
      | None -> []
      | Some h ->
          Hashtbl.fold
            (fun ix v acc -> if v <> 0. then (ix, v) :: acc else acc)
            h []
  in
  match sparse with
  | [] -> dense
  | _ ->
      (* merge the two populations, summing cells present in both *)
      let all =
        List.sort (fun (a, _) (b, _) -> compare a b) (dense @ sparse)
      in
      let rec merge = function
        | (i1, v1) :: (i2, v2) :: rest when i1 = i2 ->
            merge ((i1, v1 +. v2) :: rest)
        | cell :: rest -> cell :: merge rest
        | [] -> []
      in
      merge all

(* ---- histograms ---- *)

let bucket limits v =
  let n = Array.length limits in
  let i = ref 0 in
  while !i < n && v > limits.(!i) do
    i := !i + 1
  done;
  !i

(* Cache [h]'s limits in [t] (registry access, cold) and size its counts. *)
let hist_open t h =
  if h >= Array.length t.hists then begin
    let a = Array.make (h + 1) [||] and l = Array.make (h + 1) [||] in
    Array.blit t.hists 0 a 0 (Array.length t.hists);
    Array.blit t.hlimits 0 l 0 (Array.length t.hlimits);
    t.hists <- a;
    t.hlimits <- l
  end;
  if Array.length t.hlimits.(h) = 0 then begin
    let limits = Mutex.protect mutex (fun () -> !hist_limits.(h)) in
    t.hlimits.(h) <- limits;
    t.hists.(h) <- Array.make (Array.length limits + 1) 0.
  end

let observe t h v =
  if h >= Array.length t.hlimits || Array.length t.hlimits.(h) = 0 then
    hist_open t h;
  let limits = t.hlimits.(h) in
  let counts = t.hists.(h) in
  let b = bucket limits v in
  counts.(b) <- counts.(b) +. 1.

let hist_counts t h =
  hist_open t h;
  (Array.copy t.hlimits.(h), Array.copy t.hists.(h))

(* Hot-path escape hatch, like [dim_open]: the live (limits, counts) pair
   for callers that bucket inline instead of paying an [observe] call per
   event. *)
let hist_live t h =
  hist_open t h;
  (t.hlimits.(h), t.hists.(h))

let reset t =
  Array.fill t.slots 0 (Array.length t.slots) 0.;
  Array.iter (fun cells -> Array.fill cells 0 (Array.length cells) 0.) t.fams;
  Array.iter
    (function Some h -> Hashtbl.reset h | None -> ())
    t.fsparse;
  Array.iter (fun counts -> Array.fill counts 0 (Array.length counts) 0.) t.hists

(* Sum every counter, family cell, and histogram bucket of [src] into
   [dst]. The parallel engine runs each shard against its own instance and
   merges them into the root at the end of the run: addition is the only
   combining operation any accumulator needs, so the merged totals are
   identical to what a sequential run would have produced. *)
let merge_into dst src =
  for sid = 0 to Array.length src.slots - 1 do
    let v = src.slots.(sid) in
    if v <> 0. then add_id dst sid v
  done;
  Array.iteri
    (fun f cells ->
      Array.iteri (fun ix v -> if v <> 0. then add_dim dst f ix v) cells)
    src.fams;
  Array.iteri
    (fun f tbl ->
      match tbl with
      | None -> ()
      | Some h ->
          Hashtbl.iter
            (fun ix v -> if v <> 0. then add_dim_sparse dst f ix v)
            h)
    src.fsparse;
  Array.iteri
    (fun h counts ->
      if Array.exists (fun c -> c <> 0.) counts then begin
        hist_open dst h;
        let dc = dst.hists.(h) in
        Array.iteri (fun b c -> dc.(b) <- dc.(b) +. c) counts
      end)
    src.hists

let to_list t =
  let snapshot = Mutex.protect mutex (fun () -> Array.sub !names 0 !n_ids) in
  let acc = ref [] in
  for sid = Array.length snapshot - 1 downto 0 do
    let v = get_id t sid in
    if v <> 0. then acc := (snapshot.(sid), v) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let dims_to_list t =
  let snapshot = Mutex.protect mutex (fun () -> Array.sub !fam_names 0 !n_fams) in
  let acc = ref [] in
  for f = Array.length snapshot - 1 downto 0 do
    match dim_cells t f with
    | [] -> ()
    | cells -> acc := (snapshot.(f), cells) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let hists_to_list t =
  let snapshot =
    Mutex.protect mutex (fun () -> Array.sub !hist_names 0 !n_hists)
  in
  let acc = ref [] in
  for h = Array.length snapshot - 1 downto 0 do
    if h < Array.length t.hists && Array.exists (fun c -> c <> 0.) t.hists.(h)
    then acc := (snapshot.(h), hist_counts t h) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %.0f@." k v) (to_list t);
  List.iter
    (fun (name, cells) ->
      List.iter
        (fun (ix, v) -> Format.fprintf ppf "%-32s %.0f@." (Printf.sprintf "%s[%d]" name ix) v)
        cells)
    (dims_to_list t);
  List.iter
    (fun (name, (limits, counts)) ->
      Array.iteri
        (fun b c ->
          if c <> 0. then
            let le =
              if b < Array.length limits then Printf.sprintf "%g" limits.(b)
              else "inf"
            in
            Format.fprintf ppf "%-32s %.0f@." (Printf.sprintf "%s{le=%s}" name le) c)
        counts)
    (hists_to_list t)
