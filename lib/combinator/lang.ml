(* A combinator language for coherence protocols (ROADMAP item 4; the
   paper's "linguistic mechanisms" claim taken further than the paper did).

   A protocol is declared as a {!spec}: one list of primitive actions per
   hook point of {!Ace_runtime.Protocol.protocol} — start/end read,
   start/end write, lock, unlock on regions; barrier, attach, detach on
   spaces. {!compile} lowers a spec to the existing handler record:

   - an empty action list compiles to the *physically shared*
     {!Ace_runtime.Protocol.null_hook}, so the acelang registry's
     [handler != null_hook] derivation and the runtime's null-hook fast
     paths see compiled protocols exactly like hand-written ones;
   - a non-empty list compiles to a closure chain built once at compile
     time (no per-dispatch list traversal of the spec itself);
   - the [has_*] flags are derived automatically from the action lists, so
     the Table-4 direct-dispatch deletion pass can never skip a live hook.
     The one escape hatch, [unregistered], declares a hook as null for
     dispatch even though a handler exists; compilation rejects it unless
     every action at that point is observational (assertions, counters) —
     exactly the WRITE_ONCE "assertion only; registered as null" idiom.

   Layers ({!counting}, {!write_combining}) are spec-to-spec transforms, so
   composition happens before compilation and costs nothing at dispatch
   time. *)

module Protocol = Ace_runtime.Protocol
module Blocks = Ace_region.Blocks
module Store = Ace_region.Store
module Machine = Ace_engine.Machine
module Stats = Ace_engine.Stats

(* Cost-model selectors, so specs name charges symbolically. *)
type charge = Start_hit | End_op | Lock_base | Null_hook

(* Primitive actions at region hook points (start/end read/write, lock,
   unlock). Each lowers to one step of the compiled handler. *)
type raction =
  | Charge of charge  (* advance the clock by a cost-model field *)
  | Fetch_shared      (* ensure a valid local copy (read miss path) *)
  | Fetch_exclusive   (* ensure the sole valid copy (invalidation) *)
  | Push_update       (* push the local value to home + sharers, await *)
  | Queue_update      (* write-combining: record the rid for the next
                         sync-point publish (see [Publish]) *)
  | Publish_writes    (* drain this region's space's write-combining
                         queue (unlock is a region-hook sync point) *)
  | Assert_home       (* debug assertion: only the home node writes *)
  | Home_lock         (* acquire the region's home-based lock *)
  | Home_unlock       (* release the region's home-based lock *)
  | Count of string   (* bump a named counter; simulated-time free *)

(* Primitive actions at space hook points (barrier, attach, detach). *)
type saction =
  | Publish             (* drain the write-combining queue *)
  | Flush_space         (* SC detach: write back / drop every cached copy *)
  | Drop_remote_copies  (* NULL detach: discard non-home copies unsent *)
  | SCount of string    (* bump a named counter; simulated-time free *)

type point = Start_read | End_read | Start_write | End_write

type spec = {
  name : string;
  optimizable : bool;
  start_read : raction list;
  end_read : raction list;
  start_write : raction list;
  end_write : raction list;
  lock : raction list;
  unlock : raction list;
  barrier : saction list;
  attach : saction list;
  detach : saction list;
  unregistered : point list;
      (* hooks forced to [has_* = false] despite having actions; only
         observational actions are allowed there (checked by compile) *)
}

let define ?(optimizable = true) ?(start_read = []) ?(end_read = [])
    ?(start_write = []) ?(end_write = []) ?(lock = []) ?(unlock = [])
    ?(barrier = []) ?(attach = []) ?(detach = []) ?(unregistered = []) name =
  {
    name;
    optimizable;
    start_read;
    end_read;
    start_write;
    end_write;
    lock;
    unlock;
    barrier;
    attach;
    detach;
    unregistered;
  }

(* {2 Write-combining state}

   One dirty-rid queue per (space, node), kept in the space's per-node
   protocol state — the same shape as DYN_UPDATE's batching mode, but here
   it is a layer any update-style spec can be wrapped in. *)

type wc_state = { mutable written : int list }
type Protocol.pstate += Wc of wc_state

let wc_state (ctx : Protocol.ctx) (sp : Protocol.space) =
  let node = ctx.Protocol.proc.Machine.id in
  match sp.Protocol.pstate.(node) with
  | Wc s -> s
  | _ ->
      let s = { written = [] } in
      sp.Protocol.pstate.(node) <- Wc s;
      s

let space_of (ctx : Protocol.ctx) (meta : Store.meta) =
  ctx.Protocol.rt.Protocol.spaces.(meta.Store.space)

(* Publish everything queued since the last sync point. In bulk-transfer
   mode this is one batched push (one vectored message per consumer);
   otherwise per-region awaited pushes in program order. *)
let publish (ctx : Protocol.ctx) (sp : Protocol.space) =
  let s = wc_state ctx sp in
  match s.written with
  | [] -> ()
  | rids ->
      s.written <- [];
      let store = ctx.Protocol.rt.Protocol.store in
      let bctx = ctx.Protocol.bctx in
      if Ace_net.Reliable.batching bctx.Blocks.net then begin
        let me = ctx.Protocol.proc.Machine.id in
        let items =
          List.rev_map
            (fun rid ->
              let meta = Store.get store rid in
              let consumers =
                List.filter
                  (fun n -> n <> meta.Store.home)
                  (Store.sharers meta ~except:me)
              in
              (meta, consumers))
            rids
        in
        Machine.await ctx.Protocol.proc (Blocks.push_to_batch bctx items)
      end
      else
        List.iter
          (fun rid ->
            Machine.await ctx.Protocol.proc
              (Blocks.push_update bctx (Store.get store rid)))
          (List.rev rids)

(* {2 Compilation} *)

let charge_field c (m : Ace_net.Cost_model.t) =
  match c with
  | Start_hit -> m.Ace_net.Cost_model.start_hit
  | End_op -> m.Ace_net.Cost_model.end_op
  | Lock_base -> m.Ace_net.Cost_model.lock_base
  | Null_hook -> m.Ace_net.Cost_model.null_hook

let raction_fn : raction -> Protocol.ctx -> Store.meta -> unit = function
  | Charge c -> fun ctx _ -> Protocol.charge ctx (charge_field c (Protocol.cost ctx))
  | Fetch_shared -> fun ctx meta -> Blocks.fetch_shared ctx.Protocol.bctx meta
  | Fetch_exclusive ->
      fun ctx meta -> Blocks.fetch_exclusive ctx.Protocol.bctx meta
  | Push_update ->
      fun ctx meta ->
        Machine.await ctx.Protocol.proc
          (Blocks.push_update ctx.Protocol.bctx meta)
  | Queue_update ->
      fun ctx meta ->
        let s = wc_state ctx (space_of ctx meta) in
        if not (List.mem meta.Store.rid s.written) then
          s.written <- meta.Store.rid :: s.written
  | Publish_writes -> fun ctx meta -> publish ctx (space_of ctx meta)
  | Assert_home ->
      fun ctx meta -> assert (ctx.Protocol.proc.Machine.id = meta.Store.home)
  | Home_lock -> fun ctx meta -> Blocks.home_lock ctx.Protocol.bctx meta
  | Home_unlock -> fun ctx meta -> Blocks.home_unlock ctx.Protocol.bctx meta
  | Count key ->
      let id = Stats.intern key in
      fun ctx _ ->
        Stats.incr_id (Machine.stats ctx.Protocol.rt.Protocol.machine) id

let saction_fn : saction -> Protocol.ctx -> Protocol.space -> unit = function
  | Publish -> publish
  | Flush_space -> Ace_runtime.Proto_sc.detach
  | Drop_remote_copies -> Ace_runtime.Proto_null.detach
  | SCount key ->
      let id = Stats.intern key in
      fun ctx _ ->
        Stats.incr_id (Machine.stats ctx.Protocol.rt.Protocol.machine) id

(* Compile one hook: the empty list is THE null hook (physical equality
   matters — the registry and the flag lint both compare with [!=]); a
   single action is its bare function (no wrapper closure on the hot
   path); longer chains fold into nested calls, still closure-chained at
   compile time. *)
let compile_hook fn_of = function
  | [] -> Protocol.null_hook
  | [ a ] -> fn_of a
  | acts ->
      let fns = List.map fn_of acts in
      fun ctx x -> List.iter (fun f -> f ctx x) fns

(* Only observational actions may live on an [unregistered] hook: the
   direct-dispatch pass deletes these calls, so anything that charges
   cycles or moves data there would silently change simulated output. *)
let observational = function
  | Assert_home | Count _ -> true
  | Charge _ | Fetch_shared | Fetch_exclusive | Push_update | Queue_update
  | Publish_writes | Home_lock | Home_unlock ->
      false

let point_name = function
  | Start_read -> "start_read"
  | End_read -> "end_read"
  | Start_write -> "start_write"
  | End_write -> "end_write"

let compile (s : spec) : Protocol.protocol =
  let acts_of = function
    | Start_read -> s.start_read
    | End_read -> s.end_read
    | Start_write -> s.start_write
    | End_write -> s.end_write
  in
  List.iter
    (fun pt ->
      let acts = acts_of pt in
      if not (List.for_all observational acts) then
        invalid_arg
          (Printf.sprintf
             "Lang.compile: %s.%s is unregistered but has effectful actions"
             s.name (point_name pt)))
    s.unregistered;
  let has pt = acts_of pt <> [] && not (List.mem pt s.unregistered) in
  {
    Protocol.name = s.name;
    optimizable = s.optimizable;
    has_start_read = has Start_read;
    has_end_read = has End_read;
    has_start_write = has Start_write;
    has_end_write = has End_write;
    start_read = compile_hook raction_fn s.start_read;
    end_read = compile_hook raction_fn s.end_read;
    start_write = compile_hook raction_fn s.start_write;
    end_write = compile_hook raction_fn s.end_write;
    barrier = compile_hook saction_fn s.barrier;
    lock = compile_hook raction_fn s.lock;
    unlock = compile_hook raction_fn s.unlock;
    attach = compile_hook saction_fn s.attach;
    detach = compile_hook saction_fn s.detach;
  }

(* {2 Layers}

   Layers transform specs, not compiled records, so a stack of layers still
   compiles to one flat closure chain per hook and the [has_*] flags stay
   truthful after composition. *)

let with_name name s = { s with name }

(* Logging/counting layer: prepend a counter bump to every hook that
   already has actions. Counters cost zero simulated cycles and no hook
   goes from null to live (or back), so the layered protocol is
   semantics-transparent: bit-identical simulated output, plus
   [<prefix>.<hook>] observation counters. *)
let counting ?prefix s =
  let prefix =
    match prefix with
    | Some p -> p
    | None -> "comb." ^ String.lowercase_ascii s.name
  in
  let r hook acts =
    match acts with [] -> [] | _ -> Count (prefix ^ "." ^ hook) :: acts
  in
  let sp hook acts =
    match acts with [] -> [] | _ -> SCount (prefix ^ "." ^ hook) :: acts
  in
  {
    s with
    start_read = r "start_read" s.start_read;
    end_read = r "end_read" s.end_read;
    start_write = r "start_write" s.start_write;
    end_write = r "end_write" s.end_write;
    lock = r "lock" s.lock;
    unlock = r "unlock" s.unlock;
    barrier = sp "barrier" s.barrier;
    attach = sp "attach" s.attach;
    detach = sp "detach" s.detach;
  }

(* Write-combining layer: every [Push_update] in end_write becomes a queue
   entry, and every synchronization point — barrier, unlock, detach —
   publishes the queue before its own actions. Same contract as
   DYN_UPDATE's bulk-transfer mode, but applied uniformly in both batching
   modes: consumers synchronize before reading, so they observe the same
   values at the same sync points as the immediate-push base. *)
let write_combining s =
  let defer = List.map (function Push_update -> Queue_update | a -> a) in
  {
    s with
    end_write = defer s.end_write;
    barrier = Publish :: s.barrier;
    unlock = Publish_writes :: s.unlock;
    detach = Publish :: s.detach;
  }
