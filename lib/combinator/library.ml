(* The combinator-built protocol library. Three of the hand-written
   protocols (SC, WRITE_ONCE, MIGRATORY) are re-expressed as specs and
   must stay bit-identical to the originals on the full benchmark grid
   (bench `combinator` enforces this); two more exercise the layers. Every
   entry is auto-enrolled in the conformance kit: [admits_like] names the
   hand-written protocol whose program-admissibility rule it inherits, and
   lib/check registers that alias with [Prog.register_admits_like], so
   `acecheck` fuzzes DSL protocols exactly like built-in ones. *)

module Protocol = Ace_runtime.Protocol
module Runtime = Ace_runtime.Runtime

type entry = {
  spec : Lang.spec;
  proto : Protocol.protocol;
  admits_like : string;
      (* built-in protocol whose admissibility rule this one inherits *)
}

let entry ?admits_like spec =
  let admits_like =
    (* default: the spec is a re-expression of a built-in, named DSL_<X> *)
    match admits_like with
    | Some n -> n
    | None ->
        let n = spec.Lang.name in
        let prefix = "DSL_" in
        assert (String.length n > String.length prefix);
        String.sub n (String.length prefix)
          (String.length n - String.length prefix)
  in
  { spec; proto = Lang.compile spec; admits_like }

open Lang

(* SC as a term: the default invalidation protocol, hook for hook. *)
let sc_spec =
  define "DSL_SC" ~optimizable:false
    ~start_read:[ Charge Start_hit; Fetch_shared ]
    ~end_read:[ Charge End_op ]
    ~start_write:[ Charge Start_hit; Fetch_exclusive ]
    ~end_write:[ Charge End_op ]
    ~lock:[ Charge Lock_base; Home_lock ]
    ~unlock:[ Charge Lock_base; Home_unlock ]
    ~detach:[ Flush_space ]

let sc = entry sc_spec

(* WRITE_ONCE as a term: null write side (direct dispatch deletes the
   calls), with the home-only assertion kept as an unregistered hook. *)
let write_once =
  entry
    (define "DSL_WRITE_ONCE" ~optimizable:true
       ~start_read:[ Charge Start_hit; Fetch_shared ]
       ~start_write:[ Assert_home ]
       ~unregistered:[ Start_write ]
       ~lock:[ Charge Lock_base; Home_lock ]
       ~unlock:[ Charge Lock_base; Home_unlock ]
       ~detach:[ Flush_space ])

(* MIGRATORY as a term: reads migrate ownership too. *)
let migratory =
  entry
    (define "DSL_MIGRATORY" ~optimizable:false
       ~start_read:[ Charge Start_hit; Fetch_exclusive ]
       ~start_write:[ Charge Start_hit; Fetch_exclusive ]
       ~lock:[ Charge Lock_base; Home_lock ]
       ~unlock:[ Charge Lock_base; Home_unlock ]
       ~detach:[ Flush_space ])

(* An update-style base (single writer pushes values to sharers), wrapped
   in the write-combining layer: pushes defer to barrier/unlock/detach. *)
let wc_update =
  entry ~admits_like:"DYN_UPDATE"
    (write_combining
       (define "DSL_WC_UPDATE" ~optimizable:true
          ~start_read:[ Charge Start_hit; Fetch_shared ]
          ~start_write:[ Charge Start_hit; Fetch_shared ]
          ~end_write:[ Push_update ]
          ~lock:[ Charge Lock_base; Home_lock ]
          ~unlock:[ Charge Lock_base; Home_unlock ]
          ~detach:[ Flush_space ]))

(* SC under the counting layer: bit-identical simulated output to SC, plus
   comb.dsl_sc_stats.* observation counters. *)
let sc_stats =
  entry ~admits_like:"SC"
    (with_name "DSL_SC_STATS" (counting ~prefix:"comb.dsl_sc_stats" sc_spec))

(* The canary: SC whose start_write only fetches a *shared* copy, so
   writes land in a local copy that is never invalidated out of other
   readers nor written back — the conformance kit must catch the stale
   reads. Not part of [all]; registered only by the `--inject-broken`
   style self-tests. *)
let broken =
  entry ~admits_like:"SC"
    (define "DSL_BROKEN_SC" ~optimizable:false
       ~start_read:[ Charge Start_hit; Fetch_shared ]
       ~end_read:[ Charge End_op ]
       ~start_write:[ Charge Start_hit; Fetch_shared ]
       ~end_write:[ Charge End_op ]
       ~lock:[ Charge Lock_base; Home_lock ]
       ~unlock:[ Charge Lock_base; Home_unlock ]
       ~detach:[ Flush_space ])

let all = [ sc; write_once; migratory; wc_update; sc_stats ]
let names = List.map (fun e -> e.proto.Protocol.name) all
let register_all rt = List.iter (fun e -> Runtime.register rt e.proto) all
