(* Tests for the protocol-combinator DSL (lib/combinator): golden
   handler-table equivalence against the hand-written protocols, layer
   semantics (counting is transparent, write-combining publishes at sync
   points), the has_*-flag lint, duplicate-registration rejection on the
   combinator surfaces, and the broken-canary combinator that the
   conformance kit must catch and shrink. *)

module Lang = Ace_combinator.Lang
module Library = Ace_combinator.Library
module Runtime = Ace_runtime.Runtime
module Protocol = Ace_runtime.Protocol
module Ops = Ace_runtime.Ops
module Store = Ace_region.Store
module Registry = Ace_lang.Registry
module Stats = Ace_engine.Stats
module Runner = Ace_check.Runner
module Prog = Ace_check.Prog
module Repro = Ace_check.Repro
module Driver = Ace_harness.Driver
module E = Ace_harness.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dsl_pairs =
  [
    (Ace_runtime.Proto_sc.protocol, Library.sc.Library.proto);
    (Ace_protocols.Proto_write_once.protocol, Library.write_once.Library.proto);
    (Ace_protocols.Proto_migratory.protocol, Library.migratory.Library.proto);
  ]

(* The compiled handler table must be indistinguishable from the
   hand-written one at the registry level: same declared access flags,
   same physically-derived sync flags, same optimizable bit. *)
let golden_handler_tables () =
  List.iter
    (fun ((hand : Protocol.protocol), dsl) ->
      let eh = Registry.of_protocol hand in
      let ed = Registry.of_protocol dsl in
      check
        ("table " ^ dsl.Protocol.name ^ " = " ^ hand.Protocol.name)
        true
        ({ ed with Registry.name = hand.Protocol.name } = eh))
    dsl_pairs

(* Absent hooks must compile to THE null hook (physical equality), not a
   lookalike — the registry derivation and direct dispatch depend on it. *)
let null_hooks_are_physical () =
  let p = Library.migratory.Library.proto in
  check "end_read is the null hook" true (p.Protocol.end_read == Protocol.null_hook);
  check "barrier is the null hook" true (p.Protocol.barrier == Protocol.null_hook);
  check "attach is the null hook" true (p.Protocol.attach == Protocol.null_hook);
  let wo = Library.write_once.Library.proto in
  check "write_once start_write is live" true
    (wo.Protocol.start_write != Protocol.null_hook);
  check "write_once start_write unregistered" false wo.Protocol.has_start_write

let effectful_unregistered_rejected () =
  let bad =
    Lang.define
      ~start_write:[ Lang.Charge Lang.Start_hit ]
      ~unregistered:[ Lang.Start_write ] "BAD_UNREG"
  in
  check "compile rejects effectful unregistered hook" true
    (match Lang.compile bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- run equivalence (small grid) ---------- *)

(* Run one small benchmark twice — hand-written vs combinator protocol —
   and demand identical simulated seconds, checksum, message count and
   per-space dispatch counters. *)
let run_pair (type c) (module App : Driver.APP with type config = c)
    (cfg : c) ~nprocs hand dsl ~with_proto =
  let capture proto =
    let msgs = ref 0. and dispatch = ref [] in
    let out =
      Driver.run_ace ~nprocs
        ~stats:(fun st ->
          msgs := Stats.get st "net.messages";
          let fam = Stats.fam "ace.dispatch.by_space" in
          dispatch :=
            List.init App.n_spaces (fun i -> Stats.get_dim st fam i))
        (module App)
        (with_proto cfg proto)
    in
    (out, !msgs, !dispatch)
  in
  let oh, mh, dh = capture hand and od, md, dd = capture dsl in
  check (dsl ^ " seconds = " ^ hand) true
    (oh.Driver.seconds = od.Driver.seconds);
  check (dsl ^ " result = " ^ hand) true (oh.Driver.result = od.Driver.result);
  check (dsl ^ " messages = " ^ hand) true (mh = md);
  check (dsl ^ " dispatch counters = " ^ hand) true (dh = dd)

let em3d_cfg =
  { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }

let bsc_cfg =
  {
    Ace_apps.Cholesky.default with
    Ace_apps.Cholesky.core =
      { Ace_apps.Cholesky.default.Ace_apps.Cholesky.core with
        Ace_apps.Chol_core.nb = 4 };
  }

let em3d_with cfg p = { cfg with Ace_apps.Em3d.protocol = Some p }
let bsc_with cfg p = { cfg with Ace_apps.Cholesky.protocol = Some p }

let sc_run_equivalence () =
  run_pair (module Ace_apps.Em3d) em3d_cfg ~nprocs:4 "SC" "DSL_SC"
    ~with_proto:em3d_with

let migratory_run_equivalence () =
  run_pair (module Ace_apps.Em3d) em3d_cfg ~nprocs:4 "MIGRATORY"
    "DSL_MIGRATORY" ~with_proto:em3d_with

let write_once_run_equivalence () =
  run_pair (module Ace_apps.Cholesky) bsc_cfg ~nprocs:4 "WRITE_ONCE"
    "DSL_WRITE_ONCE" ~with_proto:bsc_with

(* ---------- layers ---------- *)

(* The counting layer charges no simulated cycles, so SC under it is
   bit-identical to plain SC — while its counters observe the run. *)
let counting_layer_transparent () =
  let sr = ref 0. in
  let plain = Driver.run_ace ~nprocs:4 (module Ace_apps.Em3d)
      (em3d_with em3d_cfg "SC")
  in
  let layered =
    Driver.run_ace ~nprocs:4
      ~stats:(fun st -> sr := Stats.get st "comb.dsl_sc_stats.start_read")
      (module Ace_apps.Em3d)
      (em3d_with em3d_cfg "DSL_SC_STATS")
  in
  check "seconds identical" true (plain.Driver.seconds = layered.Driver.seconds);
  check "result identical" true (plain.Driver.result = layered.Driver.result);
  check "counters observed the run" true (!sr > 0.)

(* The write-combining layer defers a non-home writer's update pushes: the
   master must be stale right after end_write and fresh after the next
   sync point (barrier; and separately unlock). *)
let write_combining_flushes_at_sync () =
  let run_with ~sync =
    let rt = Runtime.create ~nprocs:2 () in
    Library.register_all rt;
    ignore (Runtime.new_space rt "DSL_WC_UPDATE");
    let before = ref nan and after = ref nan in
    Runtime.run rt (fun ctx ->
        let me = Ops.me ctx in
        if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
        Ops.barrier ctx ~space:0;
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
        (* node 1 becomes a sharer, then writes (single-writer contract) *)
        Ops.start_read ctx h;
        Ops.end_read ctx h;
        Ops.barrier ctx ~space:0;
        if me = 1 then begin
          Ops.start_write ctx h;
          (Ops.data ctx h).(0) <- 42.;
          Ops.end_write ctx h;
          (* queued, not pushed: the home master is still stale *)
          before := h.Store.master.(0);
          sync ctx h
        end;
        Ops.barrier ctx ~space:0;
        if me = 0 then after := h.Store.master.(0));
    (!before, !after)
  in
  let b1, a1 = run_with ~sync:(fun _ _ -> ()) in
  check "stale before the barrier" true (b1 = 0.);
  check "published by the barrier" true (a1 = 42.);
  let b2, a2 =
    run_with ~sync:(fun ctx h ->
        (* an unlock is also a sync point: publish without waiting for the
           epoch barrier *)
        Ops.lock ctx h;
        Ops.unlock ctx h;
        check "published by the unlock" true (h.Store.master.(0) = 42.))
  in
  check "stale before the unlock too" true (b2 = 0.);
  check "still published at the end" true (a2 = 42.)

(* ---------- registry and lint ---------- *)

let dsl_names_registered () =
  let rt = Runtime.create ~nprocs:2 () in
  Ace_protocols.Proto_lib.register_all rt;
  Library.register_all rt;
  let names = List.map (fun p -> p.Protocol.name) (Runtime.protocols rt) in
  List.iter
    (fun n -> check ("has " ^ n) true (List.mem n names))
    Library.names

let duplicate_dsl_registration_rejected () =
  let rt = Runtime.create ~nprocs:2 () in
  Library.register_all rt;
  Alcotest.check_raises "re-registering the library"
    (Invalid_argument "Runtime.register: duplicate protocol DSL_SC")
    (fun () -> Library.register_all rt);
  Alcotest.check_raises "duplicate admits alias"
    (Invalid_argument "Prog.register_admits_like: duplicate DSL_SC")
    (fun () -> Prog.register_admits_like ~name:"DSL_SC" ~like:"SC")

let flag_lint_clean_on_registry () =
  let rt = Runtime.create ~nprocs:2 () in
  Ace_protocols.Proto_lib.register_all rt;
  Library.register_all rt;
  Runtime.register rt Runner.broken_protocol;
  Runtime.register rt Library.broken.Library.proto;
  let allow =
    [ ("WRITE_ONCE", "start_write"); ("DSL_WRITE_ONCE", "start_write") ]
  in
  Alcotest.(check (list string)) "no inconsistencies" []
    (Runtime.lint_flags ~allow rt);
  (* without the allowlist, the assertion-only write hooks are flagged as
     the dangerous direction: live handler declared null *)
  check_int "write-once hooks flagged" 2
    (List.length (Runtime.lint_flags rt))

let flag_lint_catches_inconsistencies () =
  let rt = Runtime.create ~nprocs:2 () in
  Runtime.register rt
    { Protocol.null_protocol with Protocol.name = "BAD_NULL";
      has_start_read = true };
  Runtime.register rt
    { Ace_runtime.Proto_sc.protocol with Protocol.name = "BAD_LIVE";
      has_end_write = false };
  let problems = Runtime.lint_flags rt in
  let mentions s = List.exists (fun m ->
      String.length m >= String.length s
      && String.sub m 0 (String.length s) = s)
      problems
  in
  check "null handler with flag set is flagged" true
    (mentions "BAD_NULL.start_read");
  check "live handler declared null is flagged" true
    (mentions "BAD_LIVE.end_write")

(* ---------- conformance-kit enrollment ---------- *)

let dsl_protocols_in_default_grid () =
  List.iter
    (fun n -> check ("fuzzed by default: " ^ n) true
        (List.mem n Runner.default_protocols))
    Library.names

let admits_follows_alias () =
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let p = Prog.generate () st in
    let f = Prog.features p in
    List.iter
      (fun (e : Library.entry) ->
        check "alias admissibility" true
          (Prog.admits f e.Library.proto.Protocol.name
          = Prog.admits f e.Library.admits_like))
      (Library.broken :: Library.all)
  done

(* The canary: the kit must catch the broken combinator, shrink it, and
   the .repro must round-trip and still fail. *)
let fuzz_catches_broken_combinator () =
  let name = Library.broken.Library.proto.Protocol.name in
  let report =
    Runner.fuzz ~protocols:[ "SC"; name ] ~seed:3 ~count:200 ~schedules:8
      ~fault_specs:[] ~batch_modes:[ false ] ()
  in
  match report.Runner.counterexample with
  | None -> Alcotest.fail "broken combinator escaped the fuzzer"
  | Some ((p, fl) as cex) ->
      check "blames the broken combinator" true
        (fl.Runner.cell.Runner.proto = name);
      check "counterexample is shrunk" true (List.length p.Prog.epochs <= 2);
      let r = Runner.to_repro cex in
      let path = Filename.temp_file "acecheck" ".repro" in
      Repro.write path r;
      let r2 = Repro.read path in
      Sys.remove path;
      check "repro round-trips" true
        (Prog.to_string r2.Repro.prog = Prog.to_string p
        && r2.Repro.proto = r.Repro.proto);
      check "replay still fails" true (Runner.replay r2 <> None)

(* Mid-run switching into and out of a DSL protocol stays coherent (the
   Ace_ChangeProtocol surface the bench identity grid leans on). *)
let change_protocol_roundtrip_through_dsl () =
  let rt = Runtime.create ~nprocs:4 () in
  Ace_protocols.Proto_lib.register_all rt;
  Library.register_all rt;
  ignore (Runtime.new_space rt "SC");
  let captured = ref 0. in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      let mine = Ops.alloc ctx ~space:0 ~len:1 in
      Ops.barrier ctx ~space:0;
      Ops.change_protocol ctx ~space:0 "DSL_SC";
      Ops.start_write ctx mine;
      (Ops.data ctx mine).(0) <- float_of_int me;
      Ops.end_write ctx mine;
      Ops.change_protocol ctx ~space:0 "DSL_MIGRATORY";
      Ops.start_write ctx mine;
      (Ops.data ctx mine).(0) <- (Ops.data ctx mine).(0) +. 100.;
      Ops.end_write ctx mine;
      Ops.change_protocol ctx ~space:0 "SC";
      let sum = ref 0. in
      for o = 0 to 3 do
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:o ~seq:0) in
        Ops.start_read ctx h;
        sum := !sum +. (Ops.data ctx h).(0);
        Ops.end_read ctx h
      done;
      if me = 2 then captured := !sum);
  check "sum of (me + 100)" true (!captured = 406.)

let () =
  Alcotest.run "ace_combinator"
    [
      ( "compile",
        [
          Alcotest.test_case "golden handler tables" `Quick
            golden_handler_tables;
          Alcotest.test_case "null hooks physical" `Quick
            null_hooks_are_physical;
          Alcotest.test_case "effectful unregistered rejected" `Quick
            effectful_unregistered_rejected;
        ] );
      ( "run equivalence",
        [
          Alcotest.test_case "SC" `Quick sc_run_equivalence;
          Alcotest.test_case "MIGRATORY" `Quick migratory_run_equivalence;
          Alcotest.test_case "WRITE_ONCE" `Quick write_once_run_equivalence;
        ] );
      ( "layers",
        [
          Alcotest.test_case "counting transparent" `Quick
            counting_layer_transparent;
          Alcotest.test_case "write-combining sync flush" `Quick
            write_combining_flushes_at_sync;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names registered" `Quick dsl_names_registered;
          Alcotest.test_case "duplicates rejected" `Quick
            duplicate_dsl_registration_rejected;
          Alcotest.test_case "flag lint clean" `Quick flag_lint_clean_on_registry;
          Alcotest.test_case "flag lint catches bad flags" `Quick
            flag_lint_catches_inconsistencies;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "enrolled in default grid" `Quick
            dsl_protocols_in_default_grid;
          Alcotest.test_case "admissibility follows alias" `Quick
            admits_follows_alias;
          Alcotest.test_case "kit catches broken combinator" `Slow
            fuzz_catches_broken_combinator;
          Alcotest.test_case "change_protocol through DSL" `Quick
            change_protocol_roundtrip_through_dsl;
        ] );
    ]
