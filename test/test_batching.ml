(* Tests for the bulk-transfer batching layer: the zero-copy blit paths,
   the multicast/coalescing primitive, write-combining, the batched
   coherence legs (including the lcache stale-memo regression), the
   piggybacked/cumulative ACKs, and the end-to-end message reduction the
   batching experiment reports. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Store = Ace_region.Store
module Dir = Ace_region.Dir
module Blocks = Ace_region.Blocks
module Am = Ace_net.Am
module Reliable = Ace_net.Reliable
module Faults = Ace_net.Faults
module Cost_model = Ace_net.Cost_model
module Driver = Ace_harness.Driver

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.))

(* ---- zero-copy blit paths vs per-element loops ---- *)

let blit_matches_loop ~len ~pos ~sub ~at =
  let meta =
    let s = Store.create ~nprocs:2 () in
    Store.alloc s ~home:0 ~len ~space:0
  in
  let src = Array.init len (fun i -> float_of_int (i + 1) *. 1.5) in
  (* blit_out vs an element loop *)
  let buf = Array.make (at + sub + 3) (-1.) in
  let expect_buf = Array.copy buf in
  Store.blit_out meta ~pos ~len:sub ~src ~at buf;
  for i = 0 to sub - 1 do
    expect_buf.(at + i) <- src.(pos + i)
  done;
  if buf <> expect_buf then false
  else begin
    (* blit_in vs an element loop, back into a distinct image *)
    let dst = Array.make len 9. in
    let expect_dst = Array.copy dst in
    Store.blit_in meta ~pos ~len:sub ~buf ~at dst;
    for i = 0 to sub - 1 do
      expect_dst.(pos + i) <- buf.(at + i)
    done;
    dst = expect_dst
  end

let blit_property =
  QCheck.Test.make ~name:"blits agree with per-element loops" ~count:300
    QCheck.(
      quad (int_range 1 32) (int_range 0 31) (int_range 0 32) (int_range 0 5))
    (fun (len, pos, sub, at) ->
      (* clamp to a valid partial slice of the region *)
      let pos = pos mod len in
      let sub = min sub (len - pos) in
      blit_matches_loop ~len ~pos ~sub ~at)

let blit_validates () =
  let s = Store.create ~nprocs:2 () in
  let meta = Store.alloc s ~home:0 ~len:4 ~space:0 in
  let src = Array.make 4 0. and buf = Array.make 8 0. in
  let rejects f =
    match f () with () -> false | exception Invalid_argument _ -> true
  in
  check "slice past region end" true (rejects (fun () ->
      Store.blit_out meta ~pos:2 ~len:3 ~src ~at:0 buf));
  check "negative pos" true (rejects (fun () ->
      Store.blit_out meta ~pos:(-1) ~src ~at:0 buf));
  check "payload window past buffer end" true (rejects (fun () ->
      Store.blit_out meta ~src ~at:5 buf));
  check "wrong-sized image" true (rejects (fun () ->
      Store.blit_in meta ~buf ~at:0 (Array.make 3 0.)));
  check "full blit accepted" false (rejects (fun () ->
      Store.blit_out meta ~src ~at:4 buf));
  let snap = Store.snapshot meta ~src in
  check "snapshot equal" true (snap = src);
  check "snapshot fresh" true (snap != src);
  check "snapshot validates length" true (rejects (fun () ->
      ignore (Store.snapshot meta ~src:(Array.make 5 0.))))

(* ---- Blocks rigs (the test_region idiom) ---- *)

type world = {
  m : Machine.t;
  am : Am.t;
  net : Reliable.t;
  store : Store.t;
  barrier : Machine.Barrier.b;
}

let make_world ?(batching = false) ~nprocs () =
  let m = Machine.create ~nprocs () in
  let am = Am.create m Cost_model.cm5_ace in
  Am.set_batching am batching;
  {
    m;
    am;
    net = Reliable.create am;
    store = Store.create ~nprocs ();
    barrier = Machine.Barrier.create m ~cost:(fun _ -> 10.);
  }

let run w f =
  Machine.run w.m (fun p -> f (Blocks.make_ctx w.net w.store p) p)

let bar w p = Machine.Barrier.wait w.barrier p

(* ---- multicast / coalescing accounting ---- *)

let send_multi_coalesces () =
  let w = make_world ~nprocs:3 () in
  let ran = ref 0 in
  Machine.run w.m (fun p ->
      if p.Machine.id = 0 then begin
        let part dst = Am.part ~dst ~bytes:8 (fun ~time:_ -> incr ran) in
        Am.send_multi_from w.am p [ part 1; part 1; part 1; part 2 ];
        (* empty part list: free, no message, no sender overhead *)
        let t = p.Machine.clock in
        Am.send_multi_from w.am p [];
        checkf "empty multi free" t p.Machine.clock
      end);
  checki "all part handlers ran" 4 !ran;
  checki "two physical messages" 2 (Am.messages w.am);
  let st = Machine.stats w.m in
  checkf "coalesced = parts - groups" 2. (Stats.get st "net.coalesced");
  checkf "one multi send" 1. (Stats.get st "net.multi.sends");
  checkf "net.messages agrees" 2. (Stats.get st "net.messages")

(* ---- write-combining: queue, flush, blocking-leg drain ---- *)

let write_combining_flushes () =
  let w = make_world ~batching:true ~nprocs:2 () in
  let m1 = Store.alloc w.store ~home:0 ~len:2 ~space:0 in
  let m2 = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  let filled = ref false in
  run w (fun ctx p ->
      if p.Machine.id = 1 then begin
        Blocks.fetch_shared ctx m1;
        Blocks.fetch_shared ctx m2;
        let c1 = Option.get (Store.copy_of m1 ~node:1) in
        let c2 = Option.get (Store.copy_of m2 ~node:1) in
        c1.Store.cdata.(0) <- 3.5;
        c1.Store.cdata.(1) <- -2.;
        c2.Store.cdata.(0) <- 8.;
        let iv1 = Blocks.queue_write_home ctx m1 in
        let iv2 = Blocks.queue_write_home ctx m2 in
        (* nothing on the wire yet: both updates are parked *)
        check "parked, not sent" true (not (Ivar.is_filled iv1));
        let before = Am.messages w.am in
        Blocks.flush_writes ctx;
        checki "one coalesced bulk message" 1 (Am.messages w.am - before);
        Machine.await p iv1;
        Machine.await p iv2;
        filled := true
      end);
  check "ivars filled" true !filled;
  checkf "m1 master updated" 3.5 m1.Store.master.(0);
  checkf "m1 master updated (2)" (-2.) m1.Store.master.(1);
  checkf "m2 master updated" 8. m2.Store.master.(0);
  checkf "write-combined counted" 2.
    (Stats.get (Machine.stats w.m) "coh.write_combined")

let blocking_leg_drains_queue () =
  (* A queued update must flush before any blocking leg waits: here the
     blocking leg is a plain read miss on another region. *)
  let w = make_world ~batching:true ~nprocs:2 () in
  let upd = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  let other = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 0 then other.Store.master.(0) <- 5.;
      bar w p;
      if p.Machine.id = 1 then begin
        Blocks.fetch_shared ctx upd;
        (Option.get (Store.copy_of upd ~node:1)).Store.cdata.(0) <- 7.;
        let iv = Blocks.queue_write_home ctx upd in
        Blocks.fetch_shared ctx other;
        (* the miss drained the queue; the parked update is in flight or
           landed, never stranded *)
        Machine.await p iv;
        checkf "update landed" 7. upd.Store.master.(0)
      end)

(* ---- batched invalidation: writeback + the lcache stale-memo case ---- *)

let invalidate_batch_writes_back () =
  let w = make_world ~batching:true ~nprocs:2 () in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 1 then begin
        Blocks.fetch_exclusive ctx meta;
        (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) <- 11.;
        Blocks.invalidate_batch ctx [ meta ]
      end;
      bar w p;
      if p.Machine.id = 0 then begin
        checkf "dirty copy written back" 11. meta.Store.master.(0);
        checki "ownership returned" (-1) meta.Store.dir.Store.owner;
        check "sharer bit cleared" false (Dir.mem meta.Store.dir.Store.sharers 1);
        check "copy dropped" true (Store.copy_of meta ~node:1 = None)
      end);
  checkf "batch counted" 1. (Stats.get (Machine.stats w.m) "coh.inval_batch")

let lcache_reset_on_invalidate () =
  (* Regression for the one-slot local-copy memo: [invalidate_batch] drops
     the node's cache entry ([Store.drop_copy]), so it must also reset the
     memo. If it didn't, the next fetch would hit the memo, land the data
     in the dropped (orphaned) record, and leave [copies.(node)] empty —
     this test fails on exactly that: the refetched value must be visible
     in the store's actual cache entry. *)
  let w = make_world ~batching:true ~nprocs:2 () in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 0 then meta.Store.master.(0) <- 1.;
      bar w p;
      if p.Machine.id = 1 then begin
        Blocks.fetch_shared ctx meta;
        (* memo now caches this region's copy record *)
        checkf "first fetch" 1.
          (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0);
        Blocks.invalidate_batch ctx [ meta ]
      end;
      bar w p;
      if p.Machine.id = 0 then meta.Store.master.(0) <- 42.;
      bar w p;
      if p.Machine.id = 1 then begin
        Blocks.fetch_shared ctx meta;
        match Store.copy_of meta ~node:1 with
        | None -> Alcotest.fail "refetch landed in an orphaned copy record"
        | Some c -> checkf "refetch sees the new value" 42. c.Store.cdata.(0)
      end)

let drop_copy_guards () =
  let s = Store.create ~nprocs:2 () in
  let meta = Store.alloc s ~home:0 ~len:1 ~space:0 in
  Alcotest.check_raises "home copy can never drop"
    (Invalid_argument "Store.drop_copy: home aliases master") (fun () ->
      Store.drop_copy meta ~node:0);
  let c = Store.ensure_copy_c meta ~node:1 in
  c.Store.readers <- 1;
  Alcotest.check_raises "active access blocks drop"
    (Invalid_argument "Store.drop_copy: copy has active accesses") (fun () ->
      Store.drop_copy meta ~node:1);
  c.Store.readers <- 0;
  Store.drop_copy meta ~node:1;
  check "entry gone" true (Store.copy_of meta ~node:1 = None)

(* ---- bulk prefetch ---- *)

let fetch_shared_batch_bulk_grants () =
  (* Three regions on two homes: one vectored request per home plus one
     bulk grant per home = 4 physical messages (vs 6 for per-region
     misses). *)
  let w = make_world ~batching:true ~nprocs:3 () in
  let m1 = Store.alloc w.store ~home:0 ~len:2 ~space:0 in
  let m2 = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  let m3 = Store.alloc w.store ~home:1 ~len:3 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 0 then begin
        m1.Store.master.(1) <- 4.;
        m2.Store.master.(0) <- 5.
      end;
      if p.Machine.id = 1 then m3.Store.master.(2) <- 6.;
      bar w p;
      if p.Machine.id = 2 then begin
        let before = Am.messages w.am in
        Blocks.fetch_shared_batch ctx [ m1; m2; m3 ];
        checki "2 requests + 2 bulk grants" 4 (Am.messages w.am - before);
        let v (m : Store.meta) i =
          (Option.get (Store.copy_of m ~node:2)).Store.cdata.(i)
        in
        checkf "m1 data" 4. (v m1 1);
        checkf "m2 data" 5. (v m2 0);
        checkf "m3 data" 6. (v m3 2);
        check "sharer bits set" true
          ((Dir.mem m1.Store.dir.Store.sharers 2) && (Dir.mem m3.Store.dir.Store.sharers 2))
      end);
  let st = Machine.stats w.m in
  checkf "one bulk fetch" 1. (Stats.get st "coh.bulk_fetch");
  checkf "misses still counted per region" 3. (Stats.get st "coh.read_miss")

(* ---- piggybacked and cumulative ACKs ---- *)

let cumulative_ack_settles_burst () =
  (* A one-way burst with no reverse traffic: the delayed-ACK timer fires
     once and one dedicated ACK message settles the whole burst. Jitter > 0
     enables the reliability machinery without dropping anything. *)
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  Am.set_faults am (Some (Faults.create ~jitter:50. ~seed:7 ()));
  let r = Reliable.create am in
  let got = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for _ = 1 to 5 do
          Reliable.send_from r p ~dst:1 ~bytes:8 (fun ~time:_ -> incr got)
        done);
  checki "all delivered" 5 !got;
  let st = Machine.stats m in
  checkf "five obligations" 5. (Stats.get st "net.acks");
  checkf "four folded into the one ACK" 4. (Stats.get st "net.acks.cumulative");
  checkf "no piggyback possible" 0. (Stats.get st "net.acks.piggybacked");
  (* 5 data messages + exactly 1 dedicated cumulative ACK *)
  checki "one ack message" 6 (Am.messages am);
  checki "nothing pending" 0 (Reliable.pending r)

let piggybacked_ack_rides_reply () =
  (* Request/reply traffic: the ACK for each request rides the reply data
     message on the reverse link, so no dedicated ACK ever travels. *)
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  Am.set_faults am (Some (Faults.create ~jitter:20. ~seed:3 ()));
  let r = Reliable.create am in
  let replies = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for _ = 1 to 4 do
          let (_ : unit) =
            Reliable.rpc r p ~dst:1 ~bytes:16 (fun reply ~time ->
                Reliable.send r ~now:time ~src:1 ~dst:0 ~bytes:16
                  (fun ~time -> Ivar.fill reply ~time ()))
          in
          incr replies
        done);
  checki "all round trips" 4 !replies;
  let st = Machine.stats m in
  check "acks piggybacked on replies" true
    (Stats.get st "net.acks.piggybacked" >= 4.);
  checki "nothing pending" 0 (Reliable.pending r)

(* ---- end-to-end: batching reduces physical messages, same results ---- *)

let messages_and_result run =
  let msgs = ref 0. in
  let out =
    run ~stats:(fun st -> msgs := Stats.get st "net.messages")
  in
  (out.Driver.result, !msgs)

let em3d_reduction () =
  let cfg =
    {
      Ace_apps.Em3d.default with
      Ace_apps.Em3d.n_nodes = 400;
      steps = 6;
      protocol = Some "STATIC_UPDATE";
    }
  in
  let run ?batch ~stats () =
    Driver.run_ace ?batch ~stats ~nprocs:8 (module Ace_apps.Em3d) cfg
  in
  let r_off, m_off = messages_and_result (fun ~stats -> run ~stats ()) in
  let r_on, m_on =
    messages_and_result (fun ~stats -> run ~batch:true ~stats ())
  in
  checkf "same result" r_off r_on;
  check "at least 25% fewer messages" true (m_on <= 0.75 *. m_off)

let water_reduction () =
  let cfg : Ace_apps.Water.config =
    {
      Ace_apps.Water.core =
        {
          Ace_apps.Water.default.Ace_apps.Water.core with
          Ace_apps.Water_core.n_mol = 48;
          steps = 2;
        };
      phase_protocols = Some ("NULL", "PIPELINE");
    }
  in
  let run ?batch ~stats () =
    Driver.run_ace ?batch ~stats ~nprocs:8 (module Ace_apps.Water) cfg
  in
  let r_off, m_off = messages_and_result (fun ~stats -> run ~stats ()) in
  let r_on, m_on =
    messages_and_result (fun ~stats -> run ~batch:true ~stats ())
  in
  checkf "same result" r_off r_on;
  check "at least 25% fewer messages" true (m_on <= 0.75 *. m_off)

let () =
  Alcotest.run "batching"
    [
      ( "blits",
        [
          QCheck_alcotest.to_alcotest blit_property;
          Alcotest.test_case "range validation and snapshot" `Quick
            blit_validates;
        ] );
      ( "multicast",
        [ Alcotest.test_case "send_multi coalesces" `Quick send_multi_coalesces ]
      );
      ( "write combining",
        [
          Alcotest.test_case "queue then flush" `Quick write_combining_flushes;
          Alcotest.test_case "blocking leg drains" `Quick
            blocking_leg_drains_queue;
        ] );
      ( "batched invalidation",
        [
          Alcotest.test_case "dirty writeback" `Quick
            invalidate_batch_writes_back;
          Alcotest.test_case "lcache memo reset" `Quick
            lcache_reset_on_invalidate;
          Alcotest.test_case "drop_copy guards" `Quick drop_copy_guards;
        ] );
      ( "bulk prefetch",
        [
          Alcotest.test_case "grouped grants" `Quick
            fetch_shared_batch_bulk_grants;
        ] );
      ( "acks",
        [
          Alcotest.test_case "cumulative settles burst" `Quick
            cumulative_ack_settles_burst;
          Alcotest.test_case "piggyback rides replies" `Quick
            piggybacked_ack_rides_reply;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "EM3D >= 25% fewer messages" `Quick em3d_reduction;
          Alcotest.test_case "Water >= 25% fewer messages" `Quick
            water_reduction;
        ] );
    ]
